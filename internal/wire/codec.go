// Package wire implements the transfer syntax of the engineering viewpoint:
// the concrete byte representations of values and the message frames that
// protocol objects exchange over a communications interface.
//
// Two codecs are provided on purpose:
//
//   - native: a compact little-endian encoding, standing in for a host's
//     local representation;
//   - canonical: an XDR-style big-endian encoding with 4-byte alignment,
//     standing in for the network-canonical representation of a
//     heterogeneous federation.
//
// Access transparency (tutorial Section 9.1) is achieved by stubs that
// marshal into whichever codec the channel negotiated; the measurable cost
// difference between the codecs is Experiment E4 in EXPERIMENTS.md.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/values"
)

// Decoding error sentinels.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrBadTag    = errors.New("wire: unknown tag")
	ErrTooLarge  = errors.New("wire: length exceeds limit")
)

// MaxLen bounds any single length field (strings, sequences, records) to
// keep a corrupted or malicious frame from causing huge allocations.
const MaxLen = 16 << 20

// CodecID identifies a codec in a frame header.
type CodecID uint8

// The registered codec identifiers.
const (
	CodecCanonical CodecID = 1
	CodecNative    CodecID = 2
)

// Codec converts between values and bytes. Implementations are stateless
// and safe for concurrent use.
type Codec interface {
	// ID returns the codec's frame identifier.
	ID() CodecID
	// Name returns the codec's human-readable name.
	Name() string
	// AppendValue appends the encoding of v to dst and returns the
	// extended slice.
	AppendValue(dst []byte, v values.Value) ([]byte, error)
	// ReadValue decodes one value from data starting at off, returning the
	// value and the offset just past it.
	ReadValue(data []byte, off int) (values.Value, int, error)
}

// ByID returns the codec registered under id.
func ByID(id CodecID) (Codec, error) {
	switch id {
	case CodecCanonical:
		return Canonical, nil
	case CodecNative:
		return Native, nil
	}
	return nil, fmt.Errorf("%w: codec id %d", ErrBadTag, id)
}

// The two codec singletons.
var (
	// Canonical is the XDR-style big-endian network representation.
	Canonical Codec = canonicalCodec{}
	// Native is the compact little-endian host representation.
	Native Codec = nativeCodec{}
)

// ---------------------------------------------------------------------------
// native codec: compact little-endian, no padding.

type nativeCodec struct{}

func (nativeCodec) ID() CodecID  { return CodecNative }
func (nativeCodec) Name() string { return "native" }

func (c nativeCodec) AppendValue(dst []byte, v values.Value) ([]byte, error) {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case values.KindNull:
		return dst, nil
	case values.KindBool:
		b, _ := v.AsBool()
		if b {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case values.KindInt:
		i, _ := v.AsInt()
		return binary.LittleEndian.AppendUint64(dst, uint64(i)), nil
	case values.KindUint:
		u, _ := v.AsUint()
		return binary.LittleEndian.AppendUint64(dst, u), nil
	case values.KindFloat:
		f, _ := v.AsFloat()
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f)), nil
	case values.KindString:
		s, _ := v.AsString()
		return c.appendString(dst, s), nil
	case values.KindEnum:
		s, _ := v.AsEnum()
		return c.appendString(dst, s), nil
	case values.KindBytes:
		b, _ := v.BytesView()
		return c.appendBytes(dst, b), nil
	case values.KindRecord:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.NumFields()))
		var err error
		for i := 0; i < v.NumFields(); i++ {
			f := v.FieldAt(i)
			dst = c.appendString(dst, f.Name)
			if dst, err = c.AppendValue(dst, f.Value); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case values.KindSeq:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Len()))
		var err error
		for i := 0; i < v.Len(); i++ {
			if dst, err = c.AppendValue(dst, v.ElemAt(i)); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case values.KindAny:
		dt, inner, _ := v.AsAny()
		dst = appendDataType(dst, dt, binary.LittleEndian, c.appendString)
		return c.AppendValue(dst, inner)
	}
	return nil, fmt.Errorf("%w: kind %v", ErrBadTag, v.Kind())
}

func (nativeCodec) appendBytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// appendString is appendBytes for strings, avoiding the []byte conversion
// (and its allocation) on the encode hot path.
func (nativeCodec) appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func (c nativeCodec) ReadValue(data []byte, off int) (values.Value, int, error) {
	return readValue(data, off, binary.LittleEndian, false)
}

// ---------------------------------------------------------------------------
// canonical codec: XDR-style big-endian with 4-byte alignment of opaque data.

type canonicalCodec struct{}

func (canonicalCodec) ID() CodecID  { return CodecCanonical }
func (canonicalCodec) Name() string { return "canonical" }

func (c canonicalCodec) AppendValue(dst []byte, v values.Value) ([]byte, error) {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case values.KindNull:
		return dst, nil
	case values.KindBool:
		b, _ := v.AsBool()
		var u uint32
		if b {
			u = 1
		}
		return binary.BigEndian.AppendUint32(dst, u), nil // XDR booleans are 4 bytes
	case values.KindInt:
		i, _ := v.AsInt()
		return binary.BigEndian.AppendUint64(dst, uint64(i)), nil
	case values.KindUint:
		u, _ := v.AsUint()
		return binary.BigEndian.AppendUint64(dst, u), nil
	case values.KindFloat:
		f, _ := v.AsFloat()
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(f)), nil
	case values.KindString:
		s, _ := v.AsString()
		return c.appendString(dst, s), nil
	case values.KindEnum:
		s, _ := v.AsEnum()
		return c.appendString(dst, s), nil
	case values.KindBytes:
		b, _ := v.BytesView()
		return c.appendBytes(dst, b), nil
	case values.KindRecord:
		dst = binary.BigEndian.AppendUint32(dst, uint32(v.NumFields()))
		var err error
		for i := 0; i < v.NumFields(); i++ {
			f := v.FieldAt(i)
			dst = c.appendString(dst, f.Name)
			if dst, err = c.AppendValue(dst, f.Value); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case values.KindSeq:
		dst = binary.BigEndian.AppendUint32(dst, uint32(v.Len()))
		var err error
		for i := 0; i < v.Len(); i++ {
			if dst, err = c.AppendValue(dst, v.ElemAt(i)); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case values.KindAny:
		dt, inner, _ := v.AsAny()
		dst = appendDataType(dst, dt, binary.BigEndian, c.appendString)
		return c.AppendValue(dst, inner)
	}
	return nil, fmt.Errorf("%w: kind %v", ErrBadTag, v.Kind())
}

// zeroPad supplies XDR padding bytes without a per-call allocation.
var zeroPad [4]byte

// appendBytes appends a big-endian length followed by the data padded with
// zeros to a 4-byte boundary, XDR opaque style.
func (canonicalCodec) appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	dst = append(dst, b...)
	if pad := (4 - len(b)%4) % 4; pad > 0 {
		dst = append(dst, zeroPad[:pad]...)
	}
	return dst
}

// appendString is appendBytes for strings, avoiding the []byte conversion
// (and its allocation) on the encode hot path.
func (canonicalCodec) appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	dst = append(dst, s...)
	if pad := (4 - len(s)%4) % 4; pad > 0 {
		dst = append(dst, zeroPad[:pad]...)
	}
	return dst
}

func (c canonicalCodec) ReadValue(data []byte, off int) (values.Value, int, error) {
	return readValue(data, off, binary.BigEndian, true)
}

// ---------------------------------------------------------------------------
// shared decoder

func readValue(data []byte, off int, order binary.ByteOrder, padded bool) (values.Value, int, error) {
	if off >= len(data) {
		return values.Value{}, off, ErrTruncated
	}
	kind := values.Kind(data[off])
	off++
	switch kind {
	case values.KindNull:
		return values.Null(), off, nil
	case values.KindBool:
		if padded {
			u, off2, err := readU32(data, off, order)
			if err != nil {
				return values.Value{}, off, err
			}
			return values.Bool(u != 0), off2, nil
		}
		if off >= len(data) {
			return values.Value{}, off, ErrTruncated
		}
		return values.Bool(data[off] != 0), off + 1, nil
	case values.KindInt:
		u, off2, err := readU64(data, off, order)
		if err != nil {
			return values.Value{}, off, err
		}
		return values.Int(int64(u)), off2, nil
	case values.KindUint:
		u, off2, err := readU64(data, off, order)
		if err != nil {
			return values.Value{}, off, err
		}
		return values.Uint(u), off2, nil
	case values.KindFloat:
		u, off2, err := readU64(data, off, order)
		if err != nil {
			return values.Value{}, off, err
		}
		return values.Float(math.Float64frombits(u)), off2, nil
	case values.KindString:
		b, off2, err := readBytes(data, off, order, padded)
		if err != nil {
			return values.Value{}, off, err
		}
		return values.Str(internBytes(b)), off2, nil
	case values.KindEnum:
		b, off2, err := readBytes(data, off, order, padded)
		if err != nil {
			return values.Value{}, off, err
		}
		return values.Enum(internBytes(b)), off2, nil
	case values.KindBytes:
		b, off2, err := readBytes(data, off, order, padded)
		if err != nil {
			return values.Value{}, off, err
		}
		return values.BytesVal(b), off2, nil
	case values.KindRecord:
		return readRecordValue(data, off, order, padded)
	case values.KindSeq:
		return readSeqValue(data, off, order, padded)
	case values.KindAny:
		dt, off2, err := readDataType(data, off, order, padded)
		if err != nil {
			return values.Value{}, off, err
		}
		inner, off3, err := readValue(data, off2, order, padded)
		if err != nil {
			return values.Value{}, off2, err
		}
		return values.Any(dt, inner), off3, nil
	}
	return values.Value{}, off, fmt.Errorf("%w: value tag %d", ErrBadTag, kind)
}

// readRecordValue parses record fields into a pooled scratch slice, then
// copies them into an exactly-sized slice owned by the resulting value.
// Parsing into scratch (rather than pre-allocating from the length prefix)
// means a forged field count cannot reserve huge capacity, and the single
// copy-out replaces the two allocations of grow-while-parsing plus
// values.Record's defensive copy.
func readRecordValue(data []byte, off int, order binary.ByteOrder, padded bool) (values.Value, int, error) {
	n, off2, err := readU32(data, off, order)
	if err != nil {
		return values.Value{}, off, err
	}
	if n > MaxLen {
		return values.Value{}, off, fmt.Errorf("%w: %d record fields", ErrTooLarge, n)
	}
	off = off2
	sp := getFieldScratch()
	scratch := (*sp)[:0]
	defer func() { putFieldScratch(sp, scratch) }()
	for i := uint32(0); i < n; i++ {
		nameB, offN, err := readBytes(data, off, order, padded)
		if err != nil {
			return values.Value{}, off, err
		}
		fv, offV, err := readValue(data, offN, order, padded)
		if err != nil {
			return values.Value{}, offN, err
		}
		scratch = append(scratch, values.F(internBytes(nameB), fv))
		off = offV
	}
	out := make([]values.Field, len(scratch))
	copy(out, scratch)
	return values.RecordOwned(out), off, nil
}

// readSeqValue is readRecordValue for sequences; see there.
func readSeqValue(data []byte, off int, order binary.ByteOrder, padded bool) (values.Value, int, error) {
	n, off2, err := readU32(data, off, order)
	if err != nil {
		return values.Value{}, off, err
	}
	if n > MaxLen {
		return values.Value{}, off, fmt.Errorf("%w: %d elements", ErrTooLarge, n)
	}
	off = off2
	sp := getValueScratch()
	scratch := (*sp)[:0]
	defer func() { putValueScratch(sp, scratch) }()
	for i := uint32(0); i < n; i++ {
		ev, offE, err := readValue(data, off, order, padded)
		if err != nil {
			return values.Value{}, off, err
		}
		scratch = append(scratch, ev)
		off = offE
	}
	out := make([]values.Value, len(scratch))
	copy(out, scratch)
	return values.SeqOwned(out), off, nil
}

func readU32(data []byte, off int, order binary.ByteOrder) (uint32, int, error) {
	if off+4 > len(data) {
		return 0, off, ErrTruncated
	}
	return order.Uint32(data[off : off+4]), off + 4, nil
}

func readU64(data []byte, off int, order binary.ByteOrder) (uint64, int, error) {
	if off+8 > len(data) {
		return 0, off, ErrTruncated
	}
	return order.Uint64(data[off : off+8]), off + 8, nil
}

func readBytes(data []byte, off int, order binary.ByteOrder, padded bool) ([]byte, int, error) {
	n, off2, err := readU32(data, off, order)
	if err != nil {
		return nil, off, err
	}
	if n > MaxLen {
		return nil, off, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	off = off2
	end := off + int(n)
	if end > len(data) {
		return nil, off, ErrTruncated
	}
	b := data[off:end]
	if padded {
		end += (4 - int(n)%4) % 4
		if end > len(data) {
			return nil, off, ErrTruncated
		}
	}
	return b, end, nil
}

// ---------------------------------------------------------------------------
// data type encoding (used for Any payloads)

func appendDataType(dst []byte, t *values.DataType, order binary.AppendByteOrder, appendString func(dst []byte, s string) []byte) []byte {
	if t == nil {
		return append(dst, 0xff) // nil marker
	}
	dst = append(dst, byte(t.Kind))
	dst = appendString(dst, t.Name)
	switch t.Kind {
	case values.KindEnum:
		dst = order.AppendUint32(dst, uint32(len(t.Symbols)))
		for _, s := range t.Symbols {
			dst = appendString(dst, s)
		}
	case values.KindRecord:
		dst = order.AppendUint32(dst, uint32(len(t.Fields)))
		for _, f := range t.Fields {
			dst = appendString(dst, f.Name)
			dst = appendDataType(dst, f.Type, order, appendString)
		}
	case values.KindSeq:
		dst = appendDataType(dst, t.Elem, order, appendString)
	}
	return dst
}

func readDataType(data []byte, off int, order binary.ByteOrder, padded bool) (*values.DataType, int, error) {
	if off >= len(data) {
		return nil, off, ErrTruncated
	}
	tag := data[off]
	off++
	if tag == 0xff {
		return nil, off, nil
	}
	kind := values.Kind(tag)
	if !kind.Valid() {
		return nil, off, fmt.Errorf("%w: data type tag %d", ErrBadTag, tag)
	}
	nameB, off2, err := readBytes(data, off, order, padded)
	if err != nil {
		return nil, off, err
	}
	off = off2
	dt := &values.DataType{Kind: kind, Name: internBytes(nameB)}
	switch kind {
	case values.KindEnum:
		n, off3, err := readU32(data, off, order)
		if err != nil {
			return nil, off, err
		}
		if n > MaxLen {
			return nil, off, fmt.Errorf("%w: %d symbols", ErrTooLarge, n)
		}
		off = off3
		for i := uint32(0); i < n; i++ {
			sb, offS, err := readBytes(data, off, order, padded)
			if err != nil {
				return nil, off, err
			}
			dt.Symbols = append(dt.Symbols, internBytes(sb))
			off = offS
		}
	case values.KindRecord:
		n, off3, err := readU32(data, off, order)
		if err != nil {
			return nil, off, err
		}
		if n > MaxLen {
			return nil, off, fmt.Errorf("%w: %d fields", ErrTooLarge, n)
		}
		off = off3
		for i := uint32(0); i < n; i++ {
			fb, offF, err := readBytes(data, off, order, padded)
			if err != nil {
				return nil, off, err
			}
			ft, offT, err := readDataType(data, offF, order, padded)
			if err != nil {
				return nil, offF, err
			}
			dt.Fields = append(dt.Fields, values.FT(internBytes(fb), ft))
			off = offT
		}
	case values.KindSeq:
		elem, off3, err := readDataType(data, off, order, padded)
		if err != nil {
			return nil, off, err
		}
		dt.Elem = elem
		off = off3
	}
	return dt, off, nil
}
