package wire

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/values"
)

func TestEncodeAppendMatchesEncode(t *testing.T) {
	for _, c := range codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			m := sampleMessage()
			want, err := m.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.EncodeAppend(nil, c)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("EncodeAppend(nil) differs from Encode:\n%x\n%x", got, want)
			}
			// Appending after an existing prefix must preserve it.
			prefix := []byte("prefix")
			buf := append([]byte(nil), prefix...)
			buf, err = m.EncodeAppend(buf, c)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(buf, prefix) {
				t.Fatal("EncodeAppend clobbered existing bytes")
			}
			if !bytes.Equal(buf[len(prefix):], want) {
				t.Fatal("EncodeAppend after prefix differs from Encode")
			}
		})
	}
}

func TestSizeHintBoundsEncodedSize(t *testing.T) {
	msgs := []*Message{
		sampleMessage(),
		{Kind: OneWay, Operation: "Notify"},
		{Kind: Reply, Termination: "OK", Args: []values.Value{
			values.Record(
				values.F("a", values.Str("x")),
				values.F("b", values.Seq(values.Int(1), values.Int(2))),
			),
			values.BytesVal([]byte{9, 9, 9}),
			values.Any(values.TBool(), values.Bool(true)),
		}},
	}
	for _, c := range codecs() {
		for _, m := range msgs {
			enc, err := m.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			if hint := m.SizeHint(); len(enc) > hint {
				t.Errorf("%s %v: encoded %d bytes > SizeHint %d", c.Name(), m.Kind, len(enc), hint)
			}
		}
	}
}

// TestDecodeCopiesOutOfFrame is the pooling correctness edge: after Decode
// returns, the frame buffer may be scribbled over (recycled) without
// affecting any decoded payload.
func TestDecodeCopiesOutOfFrame(t *testing.T) {
	for _, c := range codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			src := sampleMessage()
			src.Args = append(src.Args, values.BytesVal([]byte{0xAA, 0xBB}),
				values.Record(values.F("k", values.Str("deep"))))
			frame, err := src.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Decode(frame)
			if err != nil {
				t.Fatal(err)
			}
			for i := range frame {
				frame[i] = 0xFF
			}
			if m.Operation != "Withdraw" {
				t.Errorf("Operation corrupted by frame reuse: %q", m.Operation)
			}
			if !bytes.Equal(m.Auth, []byte{1, 2, 3}) {
				t.Errorf("Auth corrupted by frame reuse: %x", m.Auth)
			}
			if s, _ := m.Args[0].AsString(); s != "alice" {
				t.Errorf("string arg corrupted by frame reuse: %q", s)
			}
			if b, _ := m.Args[3].AsBytes(); !bytes.Equal(b, []byte{0xAA, 0xBB}) {
				t.Errorf("bytes arg corrupted by frame reuse: %x", b)
			}
			if f, ok := m.Args[4].FieldByName("k"); !ok {
				t.Error("record field lost")
			} else if s, _ := f.AsString(); s != "deep" {
				t.Errorf("record field corrupted by frame reuse: %q", s)
			}
		})
	}
}

func TestInternBytesDoesNotAlias(t *testing.T) {
	buf := []byte("Deposit")
	s := internBytes(buf)
	if s != "Deposit" {
		t.Fatalf("internBytes = %q", s)
	}
	buf[0] = 'X'
	if s != "Deposit" {
		t.Fatalf("interned string aliases its input: %q", s)
	}
	// A second lookup with the same contents hits the table.
	if s2 := internBytes([]byte("Deposit")); s2 != "Deposit" {
		t.Fatalf("second intern = %q", s2)
	}
	// Oversized strings bypass the table but still decode correctly.
	long := bytes.Repeat([]byte("x"), internMaxLen+1)
	if got := internBytes(long); got != string(long) {
		t.Fatalf("oversized intern = %q", got)
	}
	if got := internBytes(nil); got != "" {
		t.Fatalf("empty intern = %q", got)
	}
}

func TestInternBytesConcurrent(t *testing.T) {
	names := []string{"Deposit", "Withdraw", "Balance", "OK", "Error", "NotToday"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, 16)
			for i := 0; i < 1000; i++ {
				want := names[i%len(names)]
				buf = append(buf[:0], want...)
				if got := internBytes(buf); got != want {
					t.Errorf("internBytes(%q) = %q", want, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMessagePoolZeroes(t *testing.T) {
	m := GetMessage()
	m.Kind = Call
	m.Operation = "Echo"
	m.Args = []values.Value{values.Int(1)}
	PutMessage(m)
	PutMessage(nil) // must not panic
	got := GetMessage()
	// The pool may or may not hand back the same struct, but whatever it
	// hands back must be zero.
	if got.Kind != 0 || got.Operation != "" || got.Args != nil {
		t.Fatalf("pooled message not zeroed: %+v", got)
	}
	PutMessage(got)
}

func TestFramePoolRoundTrip(t *testing.T) {
	f := GetFrame(512)
	if len(f) != 0 || cap(f) < 512 {
		t.Fatalf("GetFrame: len=%d cap=%d", len(f), cap(f))
	}
	f = append(f, 1, 2, 3)
	PutFrame(f)
	// Reuse through the encode path: a full encode into a pooled frame
	// decodes back intact.
	m := sampleMessage()
	buf, err := m.EncodeAppend(GetFrame(m.SizeHint()), Canonical)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	PutFrame(buf)
	if dec.Operation != m.Operation || dec.BindingID != m.BindingID {
		t.Fatalf("round trip through pooled frame: %+v", dec)
	}
}
