package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/naming"
	"repro/internal/values"
)

// Framing error sentinels.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
)

const (
	frameMagic   uint16 = 0x0D90 // "ODP"
	frameVersion byte   = 1
)

// Header flag bits. flagExtensions marks a frame carrying an extension
// block between the Auth field and the argument count. Extensions are
// typed and length-prefixed so a decoder skips the kinds it does not
// know: a traced peer and an untraced peer interoperate, and future
// extension kinds pass through today's decoder untouched.
const (
	flagExtensions byte = 1 << 0
)

// Extension kinds.
const (
	extTrace byte = 1 // 16 bytes: trace id, span id (big endian)
)

// maxExtensionLen bounds one extension payload so a forged length cannot
// reserve unbounded memory; extensions are small metadata, not payload.
const maxExtensionLen = 1024

// MsgKind classifies a frame.
type MsgKind uint8

// The frame kinds exchanged by protocol objects. Call/Reply carry
// interrogations, OneWay carries announcements, SignalMsg carries raw
// signal-interface primitives, FlowMsg carries stream elements, ErrReply
// carries infrastructure failures (as opposed to application terminations),
// and Probe/ProbeAck support liveness checks.
const (
	Call MsgKind = iota + 1
	Reply
	OneWay
	SignalMsg
	FlowMsg
	ErrReply
	Probe
	ProbeAck
	// CreditGrant is the streaming back-channel: the consumer end grants
	// transmission credit to the producer of one flow stream. It reuses
	// existing header fields instead of a payload so a grant costs a bare
	// header: Correlation carries the stream id, Seq the cumulative element
	// credit and Epoch the cumulative byte credit (both monotone totals
	// since stream open, so a lost or reordered grant is subsumed by the
	// next one). Args is empty.
	CreditGrant
	// FlowBatch carries a batch of stream elements for one flow, plus the
	// stream's open/close markers. Operation names the flow, Correlation
	// carries the stream id, Seq the cumulative element count before this
	// batch (the per-flow FIFO position), and Args the elements.
	// Termination distinguishes the markers: StreamOpenMark opens the
	// stream (no elements; the consumer answers with the initial
	// CreditGrant), StreamEOSMark closes it, and "" is an ordinary
	// element batch.
	FlowBatch
)

// FlowBatch termination markers (see the FlowBatch kind).
const (
	StreamOpenMark = "STREAM_OPEN"
	StreamEOSMark  = "STREAM_EOS"
)

// String returns the name of the message kind.
func (k MsgKind) String() string {
	switch k {
	case Call:
		return "call"
	case Reply:
		return "reply"
	case OneWay:
		return "oneway"
	case SignalMsg:
		return "signal"
	case FlowMsg:
		return "flow"
	case ErrReply:
		return "error"
	case Probe:
		return "probe"
	case ProbeAck:
		return "probeack"
	case CreditGrant:
		return "creditgrant"
	case FlowBatch:
		return "flowbatch"
	}
	return fmt.Sprintf("msgkind(%d)", int(k))
}

// Message is one frame on a channel. The header travels in the canonical
// representation regardless of codec; only the argument payload uses the
// negotiated codec (heterogeneous peers must at least agree on headers).
// The (BindingID, Correlation) pair is the session demux key: many
// bindings multiplex one transport session (package channel's session
// layer), and since correlations are allocated per binding, the pair
// uniquely routes every Reply/ErrReply/ProbeAck on a shared connection
// without any extra wire fields.
type Message struct {
	Kind        MsgKind
	BindingID   uint64             // identifies the binding within the channel (session demux, replay guard)
	Seq         uint64             // binder sequence number (replay defence)
	Correlation uint64             // matches a Reply/ErrReply to its Call; per-binding allocation
	Epoch       uint64             // sender's view of the target's relocation epoch
	Target      naming.InterfaceID // destination interface
	Operation   string             // operation, signal or flow name
	Termination string             // termination name (Reply) or error code (ErrReply)
	Auth        []byte             // security credentials, if any
	Args        []values.Value     // payload

	// TraceID/SpanID carry the management trace context. When TraceID is
	// nonzero the frame gains a trace extension (flagExtensions); a zero
	// TraceID encodes the exact pre-extension byte stream, so untraced
	// frames are bit-identical to those of older encoders. Decoders that
	// predate extensions reject extended frames outright (version policy);
	// current decoders skip extension kinds they do not understand.
	TraceID uint64
	SpanID  uint64

	// Codec records the payload codec of a decoded frame. It is set by
	// Decode and ignored by Encode (which takes the codec explicitly);
	// servers use it to mirror the client's representation in replies.
	Codec CodecID
}

// Encode serialises the message using the given codec for the payload.
func (m *Message) Encode(codec Codec) ([]byte, error) {
	return m.EncodeAppend(make([]byte, 0, m.SizeHint()), codec)
}

// SizeHint returns a conservative estimate of the encoded frame size — an
// upper bound for either codec — so encode buffers are right-sized on
// first use instead of growing through several reallocations.
func (m *Message) SizeHint() int {
	n := 96 + len(m.Target.Object.Cluster.Capsule.Node) +
		len(m.Operation) + len(m.Termination) + len(m.Auth)
	if m.TraceID != 0 {
		n += 1 + 3 + 16 // extension block: count, trace kind+len, payload
	}
	for _, a := range m.Args {
		n += valueSizeHint(a)
	}
	return n
}

// EncodeAppend serialises the message using the given codec for the
// payload, appending the frame to dst (which may be nil, or a pooled
// buffer from GetFrame) and returning the extended slice.
func (m *Message) EncodeAppend(dst []byte, codec Codec) ([]byte, error) {
	var flags byte
	if m.TraceID != 0 {
		flags |= flagExtensions
	}
	dst = binary.BigEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, frameVersion, byte(codec.ID()), byte(m.Kind), flags)
	dst = binary.BigEndian.AppendUint64(dst, m.BindingID)
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint64(dst, m.Correlation)
	dst = binary.BigEndian.AppendUint64(dst, m.Epoch)
	dst = appendHdrString(dst, string(m.Target.Object.Cluster.Capsule.Node))
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Object.Cluster.Capsule.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Object.Cluster.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Object.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Seq)
	dst = binary.BigEndian.AppendUint64(dst, m.Target.Nonce)
	dst = appendHdrString(dst, m.Operation)
	dst = appendHdrString(dst, m.Termination)
	dst = appendHdrBytes(dst, m.Auth)
	if flags&flagExtensions != 0 {
		dst = append(dst, 1)               // extension count
		dst = append(dst, extTrace, 0, 16) // kind, u16 length
		dst = binary.BigEndian.AppendUint64(dst, m.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, m.SpanID)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Args)))
	var err error
	for _, a := range m.Args {
		if dst, err = codec.AppendValue(dst, a); err != nil {
			return nil, fmt.Errorf("wire: encoding argument: %w", err)
		}
	}
	return dst, nil
}

// Decode parses a frame produced by Encode, selecting the payload codec
// from the header. Every string and byte payload is copied out of data, so
// the caller may recycle the frame (PutFrame) as soon as Decode returns.
// The Message itself comes from a pool; a caller that remains its last
// holder may hand it back with PutMessage.
func Decode(data []byte) (*Message, error) {
	if len(data) < 6 {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(data) != frameMagic {
		return nil, ErrBadMagic
	}
	if data[2] != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, data[2])
	}
	codec, err := ByID(CodecID(data[3]))
	if err != nil {
		return nil, err
	}
	m := GetMessage()
	m.Kind = MsgKind(data[4])
	m.Codec = codec.ID()
	flags := data[5]
	off := 6

	if m.BindingID, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	if m.Seq, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	if m.Correlation, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	if m.Epoch, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	var nodeB []byte
	if nodeB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	m.Target.Object.Cluster.Capsule.Node = naming.NodeID(internBytes(nodeB))
	var u32 uint32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Object.Cluster.Capsule.Seq = u32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Object.Cluster.Seq = u32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Object.Seq = u32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Seq = u32
	if m.Target.Nonce, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	var opB, termB, authB []byte
	if opB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	m.Operation = internBytes(opB)
	if termB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	m.Termination = internBytes(termB)
	if authB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	if len(authB) > 0 {
		m.Auth = make([]byte, len(authB))
		copy(m.Auth, authB)
	}
	if flags&flagExtensions != 0 {
		if off, err = m.readExtensions(data, off); err != nil {
			return nil, err
		}
	}
	if off+2 > len(data) {
		return nil, ErrTruncated
	}
	argc := binary.BigEndian.Uint16(data[off:])
	off += 2
	if argc > 0 {
		reserve := int(argc)
		if reserve > 64 {
			reserve = 64 // a forged count must not reserve huge capacity
		}
		m.Args = make([]values.Value, 0, reserve)
		for i := 0; i < int(argc); i++ {
			var v values.Value
			if v, off, err = codec.ReadValue(data, off); err != nil {
				return nil, fmt.Errorf("wire: decoding argument %d: %w", i, err)
			}
			m.Args = append(m.Args, v)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(data)-off)
	}
	return m, nil
}

// readExtensions parses the extension block: a count byte, then per
// extension a kind byte, a big-endian u16 length and that many payload
// bytes. Unknown kinds are skipped over by their declared length — the
// interop rule that lets a peer introduce new extensions without this
// decoder rejecting its frames. A declared length past the end of the
// frame is truncation, as everywhere else in the header.
func (m *Message) readExtensions(data []byte, off int) (int, error) {
	if off >= len(data) {
		return off, ErrTruncated
	}
	count := int(data[off])
	off++
	for i := 0; i < count; i++ {
		if off+3 > len(data) {
			return off, ErrTruncated
		}
		kind := data[off]
		n := int(binary.BigEndian.Uint16(data[off+1:]))
		off += 3
		if n > maxExtensionLen {
			return off, fmt.Errorf("%w: extension %d bytes", ErrTooLarge, n)
		}
		if off+n > len(data) {
			return off, ErrTruncated
		}
		if kind == extTrace && n == 16 {
			m.TraceID = binary.BigEndian.Uint64(data[off:])
			m.SpanID = binary.BigEndian.Uint64(data[off+8:])
		}
		off += n
	}
	return off, nil
}

// ValueSizeHint exposes the per-value size bound to the streaming layer:
// byte-denominated credit windows debit and grant the same deterministic
// measure on both ends of a flow stream, so producer and consumer
// accounting can never drift even though neither sees the other's
// encoded frames.
func ValueSizeHint(v values.Value) int { return valueSizeHint(v) }

// valueSizeHint returns an upper bound on the encoded size of v under
// either codec (the canonical codec's 4-byte padding and wide booleans are
// what make the bound conservative for the native one).
func valueSizeHint(v values.Value) int {
	const strOverhead = 1 + 4 + 3 // tag + length + worst-case padding
	switch v.Kind() {
	case values.KindNull:
		return 1
	case values.KindBool:
		return 5
	case values.KindInt, values.KindUint, values.KindFloat:
		return 9
	case values.KindString:
		s, _ := v.AsString()
		return strOverhead + len(s)
	case values.KindEnum:
		s, _ := v.AsEnum()
		return strOverhead + len(s)
	case values.KindBytes:
		b, _ := v.BytesView()
		return strOverhead + len(b)
	case values.KindRecord:
		n := 5
		for i := 0; i < v.NumFields(); i++ {
			f := v.FieldAt(i)
			n += 4 + 3 + len(f.Name) + valueSizeHint(f.Value)
		}
		return n
	case values.KindSeq:
		n := 5
		for i := 0; i < v.Len(); i++ {
			n += valueSizeHint(v.ElemAt(i))
		}
		return n
	case values.KindAny:
		dt, inner, _ := v.AsAny()
		return 1 + dataTypeSizeHint(dt) + valueSizeHint(inner)
	}
	return 16
}

func dataTypeSizeHint(t *values.DataType) int {
	if t == nil {
		return 1
	}
	n := 1 + 4 + 3 + len(t.Name)
	switch t.Kind {
	case values.KindEnum:
		n += 4
		for _, s := range t.Symbols {
			n += 4 + 3 + len(s)
		}
	case values.KindRecord:
		n += 4
		for _, f := range t.Fields {
			n += 4 + 3 + len(f.Name) + dataTypeSizeHint(f.Type)
		}
	case values.KindSeq:
		n += dataTypeSizeHint(t.Elem)
	}
	return n
}

func appendHdrBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendHdrString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readHdrBytes(data []byte, off int) ([]byte, int, error) {
	n, off2, err := readU32(data, off, binary.BigEndian)
	if err != nil {
		return nil, off, err
	}
	if n > MaxLen {
		return nil, off, fmt.Errorf("%w: header field %d bytes", ErrTooLarge, n)
	}
	end := off2 + int(n)
	if end > len(data) {
		return nil, off2, ErrTruncated
	}
	return data[off2:end], end, nil
}
