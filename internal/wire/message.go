package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/naming"
	"repro/internal/values"
)

// Framing error sentinels.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
)

const (
	frameMagic   uint16 = 0x0D90 // "ODP"
	frameVersion byte   = 1
)

// MsgKind classifies a frame.
type MsgKind uint8

// The frame kinds exchanged by protocol objects. Call/Reply carry
// interrogations, OneWay carries announcements, SignalMsg carries raw
// signal-interface primitives, FlowMsg carries stream elements, ErrReply
// carries infrastructure failures (as opposed to application terminations),
// and Probe/ProbeAck support liveness checks.
const (
	Call MsgKind = iota + 1
	Reply
	OneWay
	SignalMsg
	FlowMsg
	ErrReply
	Probe
	ProbeAck
)

// String returns the name of the message kind.
func (k MsgKind) String() string {
	switch k {
	case Call:
		return "call"
	case Reply:
		return "reply"
	case OneWay:
		return "oneway"
	case SignalMsg:
		return "signal"
	case FlowMsg:
		return "flow"
	case ErrReply:
		return "error"
	case Probe:
		return "probe"
	case ProbeAck:
		return "probeack"
	}
	return fmt.Sprintf("msgkind(%d)", int(k))
}

// Message is one frame on a channel. The header travels in the canonical
// representation regardless of codec; only the argument payload uses the
// negotiated codec (heterogeneous peers must at least agree on headers).
type Message struct {
	Kind        MsgKind
	BindingID   uint64             // identifies the binding within the channel
	Seq         uint64             // binder sequence number (replay defence)
	Correlation uint64             // matches a Reply/ErrReply to its Call
	Epoch       uint64             // sender's view of the target's relocation epoch
	Target      naming.InterfaceID // destination interface
	Operation   string             // operation, signal or flow name
	Termination string             // termination name (Reply) or error code (ErrReply)
	Auth        []byte             // security credentials, if any
	Args        []values.Value     // payload

	// Codec records the payload codec of a decoded frame. It is set by
	// Decode and ignored by Encode (which takes the codec explicitly);
	// servers use it to mirror the client's representation in replies.
	Codec CodecID
}

// Encode serialises the message using the given codec for the payload.
func (m *Message) Encode(codec Codec) ([]byte, error) {
	// Header size estimate; the payload appends as needed.
	dst := make([]byte, 0, 96+16*len(m.Args))
	dst = binary.BigEndian.AppendUint16(dst, frameMagic)
	dst = append(dst, frameVersion, byte(codec.ID()), byte(m.Kind), 0 /* flags */)
	dst = binary.BigEndian.AppendUint64(dst, m.BindingID)
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint64(dst, m.Correlation)
	dst = binary.BigEndian.AppendUint64(dst, m.Epoch)
	dst = appendHdrBytes(dst, []byte(m.Target.Object.Cluster.Capsule.Node))
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Object.Cluster.Capsule.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Object.Cluster.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Object.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.Target.Seq)
	dst = binary.BigEndian.AppendUint64(dst, m.Target.Nonce)
	dst = appendHdrBytes(dst, []byte(m.Operation))
	dst = appendHdrBytes(dst, []byte(m.Termination))
	dst = appendHdrBytes(dst, m.Auth)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Args)))
	var err error
	for _, a := range m.Args {
		if dst, err = codec.AppendValue(dst, a); err != nil {
			return nil, fmt.Errorf("wire: encoding argument: %w", err)
		}
	}
	return dst, nil
}

// Decode parses a frame produced by Encode, selecting the payload codec
// from the header.
func Decode(data []byte) (*Message, error) {
	if len(data) < 6 {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(data) != frameMagic {
		return nil, ErrBadMagic
	}
	if data[2] != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, data[2])
	}
	codec, err := ByID(CodecID(data[3]))
	if err != nil {
		return nil, err
	}
	m := &Message{Kind: MsgKind(data[4]), Codec: codec.ID()}
	off := 6 // skip flags byte

	if m.BindingID, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	if m.Seq, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	if m.Correlation, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	if m.Epoch, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	var nodeB []byte
	if nodeB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	m.Target.Object.Cluster.Capsule.Node = naming.NodeID(nodeB)
	var u32 uint32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Object.Cluster.Capsule.Seq = u32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Object.Cluster.Seq = u32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Object.Seq = u32
	if u32, off, err = readU32(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	m.Target.Seq = u32
	if m.Target.Nonce, off, err = readU64(data, off, binary.BigEndian); err != nil {
		return nil, err
	}
	var opB, termB, authB []byte
	if opB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	m.Operation = string(opB)
	if termB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	m.Termination = string(termB)
	if authB, off, err = readHdrBytes(data, off); err != nil {
		return nil, err
	}
	if len(authB) > 0 {
		m.Auth = make([]byte, len(authB))
		copy(m.Auth, authB)
	}
	if off+2 > len(data) {
		return nil, ErrTruncated
	}
	argc := binary.BigEndian.Uint16(data[off:])
	off += 2
	if argc > 0 {
		m.Args = make([]values.Value, 0, argc)
		for i := 0; i < int(argc); i++ {
			var v values.Value
			if v, off, err = codec.ReadValue(data, off); err != nil {
				return nil, fmt.Errorf("wire: decoding argument %d: %w", i, err)
			}
			m.Args = append(m.Args, v)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(data)-off)
	}
	return m, nil
}

func appendHdrBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func readHdrBytes(data []byte, off int) ([]byte, int, error) {
	n, off2, err := readU32(data, off, binary.BigEndian)
	if err != nil {
		return nil, off, err
	}
	if n > MaxLen {
		return nil, off, fmt.Errorf("%w: header field %d bytes", ErrTooLarge, n)
	}
	end := off2 + int(n)
	if end > len(data) {
		return nil, off2, ErrTruncated
	}
	return data[off2:end], end, nil
}
