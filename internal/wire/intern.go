package wire

import "sync/atomic"

// The decode hot path turns the same handful of byte strings — operation
// names, termination names, record field names, enum symbols — into Go
// strings over and over, and each conversion allocates. A small lock-free
// intern table short-circuits the conversion: a slot holds the last string
// cached for its hash, and a hit returns the shared instance with zero
// allocations. Collisions simply overwrite, so the table is bounded and
// needs no eviction; a miss costs one conversion, exactly what the code
// paid before.
const (
	internSlots  = 1024 // power of two
	internMaxLen = 64   // longer strings are unlikely to repeat; skip them
)

var internTab [internSlots]atomic.Pointer[string]

// internBytes returns a string equal to b, reusing a cached instance when
// one exists. The result never aliases b.
func internBytes(b []byte) string {
	n := len(b)
	if n == 0 {
		return ""
	}
	if n > internMaxLen {
		return string(b)
	}
	// FNV-1a.
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	slot := &internTab[h&(internSlots-1)]
	if p := slot.Load(); p != nil && *p == string(b) {
		return *p
	}
	s := string(b)
	slot.Store(&s)
	return s
}
