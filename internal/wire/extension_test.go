package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// tracedSample returns a message carrying trace context and no payload,
// so the extension block sits at a known offset from the end of the
// frame: [count=1][kind][len u16][16-byte payload][argc u16].
func tracedSample() *Message {
	m := sampleMessage()
	m.Args = nil
	m.TraceID = 0xDEADBEEFCAFE
	m.SpanID = 0x123456789A
	return m
}

const extBlockLen = 1 + 3 + 16 // count, kind+len, trace payload

func TestTraceExtensionRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		m := sampleMessage()
		m.TraceID = 42
		m.SpanID = 7
		frame, err := m.Encode(c)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name(), err)
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name(), err)
		}
		if got.TraceID != 42 || got.SpanID != 7 {
			t.Fatalf("%s: trace context lost: trace=%d span=%d",
				c.Name(), got.TraceID, got.SpanID)
		}
	}
}

// TestUntracedFrameIsPreExtensionEncoding: a zero TraceID must produce
// the exact byte stream of the pre-extension format — flags byte zero, no
// extension block — so traced and untraced peers interoperate and old
// captures stay byte-comparable.
func TestUntracedFrameIsPreExtensionEncoding(t *testing.T) {
	traced := tracedSample()
	plain := tracedSample()
	plain.TraceID, plain.SpanID = 0, 0

	tf, err := traced.Encode(Canonical)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := plain.Encode(Canonical)
	if err != nil {
		t.Fatal(err)
	}
	if pf[5] != 0 {
		t.Fatalf("untraced frame has flags %#x", pf[5])
	}
	if tf[5] != flagExtensions {
		t.Fatalf("traced frame has flags %#x", tf[5])
	}
	if len(tf) != len(pf)+extBlockLen {
		t.Fatalf("extension block is %d bytes, want %d", len(tf)-len(pf), extBlockLen)
	}
	// The traced frame is the untraced one with the extension block (and
	// the flags bit) spliced in just before the argument count.
	spliced := append([]byte(nil), tf[:len(tf)-2-extBlockLen]...)
	spliced = append(spliced, tf[len(tf)-2:]...)
	spliced[5] = 0
	if !bytes.Equal(spliced, pf) {
		t.Fatal("traced frame differs from untraced beyond the extension block")
	}
}

// TestUnknownExtensionKindSkipped: the decoder must step over extension
// kinds it does not recognise by their declared length, both when the
// unknown kind stands alone and when it precedes a trace extension.
func TestUnknownExtensionKindSkipped(t *testing.T) {
	frame, err := tracedSample().Encode(Canonical)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the trace kind byte to an unknown kind: same length, so the
	// frame still parses, but the trace context is not recognised.
	mut := append([]byte(nil), frame...)
	mut[len(mut)-2-extBlockLen+1] = 0x7F
	m, err := Decode(mut)
	if err != nil {
		t.Fatalf("unknown kind rejected: %v", err)
	}
	if m.TraceID != 0 || m.SpanID != 0 {
		t.Fatalf("unknown kind decoded as trace: %d/%d", m.TraceID, m.SpanID)
	}

	// Two extensions: an unknown 4-byte one, then the real trace. The
	// decoder must skip the first and still recover the trace context.
	blockStart := len(frame) - 2 - extBlockLen
	two := append([]byte(nil), frame[:blockStart]...)
	two = append(two, 2)                       // extension count
	two = append(two, 0x7F, 0, 4, 1, 2, 3, 4)  // unknown kind, 4 bytes
	two = append(two, frame[blockStart+1:]...) // trace extension + argc
	m, err = Decode(two)
	if err != nil {
		t.Fatalf("two-extension frame rejected: %v", err)
	}
	if m.TraceID != 0xDEADBEEFCAFE || m.SpanID != 0x123456789A {
		t.Fatalf("trace context lost behind unknown extension: %d/%d",
			m.TraceID, m.SpanID)
	}
}

// TestExtensionMalformed exercises the failure modes of the extension
// block: truncation inside the block, a declared length running past the
// frame, and a length beyond the per-extension cap.
func TestExtensionMalformed(t *testing.T) {
	frame, err := tracedSample().Encode(Canonical)
	if err != nil {
		t.Fatal(err)
	}
	blockStart := len(frame) - 2 - extBlockLen
	lenOff := blockStart + 2 // big-endian u16 after count and kind bytes

	t.Run("truncated", func(t *testing.T) {
		// Every cut inside the extension block must fail cleanly.
		for cut := blockStart; cut < len(frame); cut++ {
			if m, err := Decode(frame[:cut]); err == nil {
				t.Fatalf("cut at %d/%d decoded: %+v", cut, len(frame), m)
			}
		}
	})
	t.Run("length-past-frame", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		binary.BigEndian.PutUint16(mut[lenOff:], 255)
		if _, err := Decode(mut); !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("length-over-cap", func(t *testing.T) {
		mut := append([]byte(nil), frame...)
		binary.BigEndian.PutUint16(mut[lenOff:], maxExtensionLen+1)
		if _, err := Decode(mut); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("want ErrTooLarge, got %v", err)
		}
	})
	t.Run("flags-without-block", func(t *testing.T) {
		// Setting the extensions bit on an untraced frame makes the decoder
		// read the argument count as an extension block; whatever happens,
		// the frame must not decode cleanly into the original message.
		plain := tracedSample()
		plain.TraceID, plain.SpanID = 0, 0
		pf, err := plain.Encode(Canonical)
		if err != nil {
			t.Fatal(err)
		}
		pf[5] |= flagExtensions
		if m, err := Decode(pf); err == nil && (m.TraceID != 0 || len(m.Args) != 0) {
			t.Fatalf("forged flags decoded trace context: %+v", m)
		}
	})
}

// TestPooledMessageClearsTraceContext: a message returned to the pool
// must not leak its trace identifiers into the next frame decoded.
func TestPooledMessageClearsTraceContext(t *testing.T) {
	m := GetMessage()
	m.TraceID, m.SpanID = 9, 9
	PutMessage(m)
	m2 := GetMessage()
	defer PutMessage(m2)
	if m2.TraceID != 0 || m2.SpanID != 0 {
		t.Fatalf("pooled message retained trace context: %d/%d", m2.TraceID, m2.SpanID)
	}
}
