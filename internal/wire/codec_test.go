package wire

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/values"
)

func codecs() []Codec { return []Codec{Native, Canonical} }

func sampleValues() []values.Value {
	return []values.Value{
		values.Null(),
		values.Bool(true),
		values.Bool(false),
		values.Int(-1234567890123),
		values.Int(math.MaxInt64),
		values.Int(math.MinInt64),
		values.Uint(math.MaxUint64),
		values.Float(3.14159),
		values.Float(math.Inf(-1)),
		values.Str(""),
		values.Str("hello, 世界"),
		values.Str("odd"), // 3 bytes: exercises canonical padding
		values.BytesVal(nil),
		values.BytesVal([]byte{0, 1, 2, 3, 4}),
		values.Enum("NotToday"),
		values.Record(),
		values.Record(values.F("balance", values.Int(100)), values.F("owner", values.Str("kr"))),
		values.Seq(),
		values.Seq(values.Int(1), values.Str("two"), values.Bool(true)),
		values.Record(values.F("nested", values.Seq(values.Record(values.F("x", values.Float(1)))))),
		values.Any(values.TInt(), values.Int(42)),
		values.Any(values.TRecord("R", values.FT("a", values.TEnum("E", "x", "y"))),
			values.Record(values.F("a", values.Enum("x")))),
		values.Any(values.TSeq(values.TString()), values.Seq(values.Str("s"))),
		values.Any(nil, values.Null()),
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, c := range codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			for _, v := range sampleValues() {
				buf, err := c.AppendValue(nil, v)
				if err != nil {
					t.Fatalf("encode %v: %v", v, err)
				}
				got, off, err := c.ReadValue(buf, 0)
				if err != nil {
					t.Fatalf("decode %v: %v", v, err)
				}
				if off != len(buf) {
					t.Errorf("decode %v: consumed %d of %d bytes", v, off, len(buf))
				}
				if !got.Equal(v) {
					t.Errorf("round trip: got %v, want %v", got, v)
				}
			}
		})
	}
}

func TestCanonicalPadsTo4(t *testing.T) {
	// XDR-style: opaque data padded to a 4-byte boundary.
	buf, err := Canonical.AppendValue(nil, values.Str("abc"))
	if err != nil {
		t.Fatal(err)
	}
	// tag(1) + len(4) + data(3) + pad(1) = 9
	if len(buf) != 9 {
		t.Errorf("canonical 'abc' = %d bytes, want 9", len(buf))
	}
	nbuf, err := Native.AppendValue(nil, values.Str("abc"))
	if err != nil {
		t.Fatal(err)
	}
	// tag(1) + len(4) + data(3) = 8
	if len(nbuf) != 8 {
		t.Errorf("native 'abc' = %d bytes, want 8", len(nbuf))
	}
}

func TestCodecsDiffer(t *testing.T) {
	// The two representations of the same value must actually differ —
	// otherwise access transparency would be vacuous.
	v := values.Int(1)
	n, _ := Native.AppendValue(nil, v)
	c, _ := Canonical.AppendValue(nil, v)
	if string(n) == string(c) {
		t.Error("native and canonical encodings of Int(1) are identical")
	}
}

func TestByID(t *testing.T) {
	for _, c := range codecs() {
		got, err := ByID(c.ID())
		if err != nil || got.Name() != c.Name() {
			t.Errorf("ByID(%d) = %v, %v", c.ID(), got, err)
		}
	}
	if _, err := ByID(99); err == nil {
		t.Error("ByID(99) should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, c := range codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			for _, v := range sampleValues() {
				buf, err := c.AppendValue(nil, v)
				if err != nil {
					t.Fatal(err)
				}
				// Every strict prefix must fail cleanly, never panic.
				for cut := 0; cut < len(buf); cut++ {
					if _, _, err := c.ReadValue(buf[:cut], 0); err == nil {
						// A prefix can be a valid shorter value only if the
						// consumed length equals the prefix; ReadValue reports
						// how much it consumed, so check it didn't overrun.
						got, off, _ := c.ReadValue(buf[:cut], 0)
						if off > cut {
							t.Fatalf("decode of %d-byte prefix of %v overran: off=%d got=%v", cut, v, off, got)
						}
					}
				}
			}
		})
	}
}

func TestDecodeBadTag(t *testing.T) {
	for _, c := range codecs() {
		if _, _, err := c.ReadValue([]byte{0x7f}, 0); err == nil || !errors.Is(err, ErrBadTag) {
			t.Errorf("%s: bad tag error = %v", c.Name(), err)
		}
		if _, _, err := c.ReadValue(nil, 0); !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: empty input error = %v", c.Name(), err)
		}
	}
}

func TestDecodeOversizedLength(t *testing.T) {
	// A string claiming MaxLen+1 bytes must be rejected before allocation.
	for _, c := range codecs() {
		var buf []byte
		buf = append(buf, byte(values.KindString))
		n := uint32(MaxLen + 1)
		if c.ID() == CodecNative {
			buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		} else {
			buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		}
		if _, _, err := c.ReadValue(buf, 0); !errors.Is(err, ErrTooLarge) {
			t.Errorf("%s: oversized length error = %v", c.Name(), err)
		}
	}
}

// randomValue mirrors the generator in package values' tests.
func randomValue(r *rand.Rand, depth int) values.Value {
	max := 8
	if depth <= 0 {
		max = 6
	}
	switch r.Intn(max) {
	case 0:
		return values.Bool(r.Intn(2) == 0)
	case 1:
		return values.Int(r.Int63() - r.Int63())
	case 2:
		return values.Uint(r.Uint64())
	case 3:
		return values.Float(r.NormFloat64())
	case 4:
		var sb strings.Builder
		for i, n := 0, r.Intn(20); i < n; i++ {
			sb.WriteRune(rune('a' + r.Intn(26)))
		}
		return values.Str(sb.String())
	case 5:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		return values.BytesVal(b)
	case 6:
		n := r.Intn(5)
		fields := make([]values.Field, n)
		for i := range fields {
			fields[i] = values.F(string(rune('a'+i)), randomValue(r, depth-1))
		}
		return values.Record(fields...)
	default:
		n := r.Intn(5)
		elems := make([]values.Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return values.Seq(elems...)
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				v := randomValue(r, 3)
				buf, err := c.AppendValue(nil, v)
				if err != nil {
					return false
				}
				got, off, err := c.ReadValue(buf, 0)
				return err == nil && off == len(buf) && got.Equal(v)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestAppendAtOffset(t *testing.T) {
	// Values must be readable mid-buffer.
	c := Canonical
	buf := []byte{0xde, 0xad}
	buf, err := c.AppendValue(buf, values.Str("x"))
	if err != nil {
		t.Fatal(err)
	}
	buf, err = c.AppendValue(buf, values.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	v1, off, err := c.ReadValue(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v1.AsString(); s != "x" {
		t.Errorf("first value = %v", v1)
	}
	v2, off2, err := c.ReadValue(buf, off)
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v2.AsInt(); i != 7 {
		t.Errorf("second value = %v", v2)
	}
	if off2 != len(buf) {
		t.Errorf("offset = %d, want %d", off2, len(buf))
	}
}
