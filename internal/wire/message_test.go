package wire

import (
	"errors"
	"testing"

	"repro/internal/naming"
	"repro/internal/values"
)

func sampleTarget() naming.InterfaceID {
	return naming.InterfaceID{
		Object: naming.ObjectID{
			Cluster: naming.ClusterID{
				Capsule: naming.CapsuleID{Node: "alpha", Seq: 1},
				Seq:     2,
			},
			Seq: 3,
		},
		Seq:   4,
		Nonce: 0xfeedface,
	}
}

func sampleMessage() *Message {
	return &Message{
		Kind:        Call,
		BindingID:   77,
		Seq:         12,
		Correlation: 99,
		Epoch:       3,
		Target:      sampleTarget(),
		Operation:   "Withdraw",
		Auth:        []byte{1, 2, 3},
		Args: []values.Value{
			values.Str("alice"),
			values.Str("acct-1"),
			values.Int(400),
		},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		t.Run(c.Name(), func(t *testing.T) {
			m := sampleMessage()
			buf, err := m.Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != m.Kind || got.BindingID != m.BindingID || got.Seq != m.Seq ||
				got.Correlation != m.Correlation || got.Epoch != m.Epoch ||
				got.Target != m.Target || got.Operation != m.Operation ||
				got.Termination != m.Termination {
				t.Errorf("header mismatch: got %+v, want %+v", got, m)
			}
			if string(got.Auth) != string(m.Auth) {
				t.Errorf("auth mismatch: %v vs %v", got.Auth, m.Auth)
			}
			if len(got.Args) != len(m.Args) {
				t.Fatalf("args len %d, want %d", len(got.Args), len(m.Args))
			}
			for i := range m.Args {
				if !got.Args[i].Equal(m.Args[i]) {
					t.Errorf("arg %d: got %v, want %v", i, got.Args[i], m.Args[i])
				}
			}
		})
	}
}

func TestMessageRoundTripVariants(t *testing.T) {
	variants := []*Message{
		{Kind: Reply, Termination: "OK", Correlation: 1, Args: []values.Value{values.Int(500)}},
		{Kind: OneWay, Operation: "Notify"},
		{Kind: ErrReply, Termination: "ERR_NO_SUCH_OPERATION", Correlation: 9},
		{Kind: Probe},
		{Kind: ProbeAck},
		{Kind: FlowMsg, Operation: "video", Args: []values.Value{values.BytesVal([]byte{9})}},
		{Kind: SignalMsg, Operation: "connect"},
	}
	for _, m := range variants {
		buf, err := m.Encode(Canonical)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if got.Kind != m.Kind || got.Termination != m.Termination || got.Operation != m.Operation {
			t.Errorf("round trip %v: got %+v", m.Kind, got)
		}
		if got.Auth != nil {
			t.Errorf("%v: empty auth should decode to nil", m.Kind)
		}
	}
}

func TestDecodeRejectsBadFrames(t *testing.T) {
	m := sampleMessage()
	buf, err := m.Encode(Native)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("short", func(t *testing.T) {
		if _, err := Decode(buf[:3]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte{}, buf...)
		bad[0] ^= 0xff
		if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte{}, buf...)
		bad[2] = 99
		if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("codec", func(t *testing.T) {
		bad := append([]byte{}, buf...)
		bad[3] = 99
		if _, err := Decode(bad); !errors.Is(err, ErrBadTag) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("trailing", func(t *testing.T) {
		bad := append(append([]byte{}, buf...), 0xee)
		if _, err := Decode(bad); err == nil {
			t.Error("trailing bytes should fail")
		}
	})
	t.Run("truncated-everywhere", func(t *testing.T) {
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Decode(buf[:cut]); err == nil {
				t.Fatalf("decode of %d-byte prefix should fail", cut)
			}
		}
	})
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{
		Call: "call", Reply: "reply", OneWay: "oneway", SignalMsg: "signal",
		FlowMsg: "flow", ErrReply: "error", Probe: "probe", ProbeAck: "probeack",
		MsgKind(99): "msgkind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("MsgKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestHeaderAlwaysCanonical(t *testing.T) {
	// The same message encoded with either codec must carry an identical
	// header region (bytes before the payload): heterogeneous peers parse
	// headers before knowing the payload codec.
	m := &Message{Kind: Call, Target: sampleTarget(), Operation: "Op"}
	a, err := m.Encode(Native)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Encode(Canonical)
	if err != nil {
		t.Fatal(err)
	}
	// Only byte 3 (codec id) may differ.
	if len(a) != len(b) {
		t.Fatalf("frame lengths differ with no args: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if i == 3 {
			continue
		}
		if a[i] != b[i] {
			t.Fatalf("header byte %d differs between codecs", i)
		}
	}
}
