package wire

import (
	"testing"

	"repro/internal/values"
)

// fuzzSeeds returns well-formed frames in both codecs plus assorted
// payload shapes, so the fuzzer starts from inputs that reach deep into
// readValue and readDataType.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	msgs := []*Message{
		sampleMessage(),
		{Kind: OneWay, BindingID: 1, Operation: "Notify",
			Args: []values.Value{values.Str("x")}},
		{Kind: Reply, Correlation: 7, Termination: "OK", Args: []values.Value{
			values.Record(
				values.F("nested", values.Record(values.F("n", values.Int(-1)))),
				values.F("seq", values.Seq(values.Str("a"), values.Str("b"))),
			),
			values.Enum("sym"),
			values.BytesVal([]byte{0, 1, 2, 3}),
			values.Any(values.TSeq(values.TString()), values.Seq(values.Str("s"))),
			values.Float(3.5),
			values.Uint(9),
			values.Bool(true),
		}},
		{Kind: ErrReply, Termination: "Error",
			Args: []values.Value{values.Str("detail")}},
		{Kind: Probe, BindingID: 3},
		// Traced frames: the extension block path must be in the corpus.
		{Kind: Call, BindingID: 9, Operation: "Get",
			TraceID: 0xa11c0ffee, SpanID: 0x1,
			Args: []values.Value{values.Int(1)}},
		{Kind: Reply, Correlation: 9, Termination: "OK",
			TraceID: ^uint64(0), SpanID: ^uint64(0)},
	}
	var seeds [][]byte
	for _, c := range codecs() {
		for _, m := range msgs {
			frame, err := m.Encode(c)
			if err != nil {
				tb.Fatalf("seed encode: %v", err)
			}
			seeds = append(seeds, frame)
		}
	}
	return seeds
}

// FuzzDecode asserts the frame parser is total: any byte string either
// decodes into a message or returns an error — never a panic, over-read or
// runaway allocation. Run with `go test -fuzz=FuzzDecode ./internal/wire`.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x0D, 0x09, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// A frame that decodes must re-encode: the decoded message contains
		// only representable values.
		if _, err := m.Encode(Canonical); err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
	})
}

// TestDecodeTruncatedAtEveryByte feeds every proper prefix of valid frames
// to Decode: each must fail cleanly (no panic) because the payload length
// checks run before any slicing.
func TestDecodeTruncatedAtEveryByte(t *testing.T) {
	for _, frame := range fuzzSeeds(t) {
		for i := 0; i < len(frame); i++ {
			if m, err := Decode(frame[:i]); err == nil {
				// Only a prefix that is itself a complete frame may decode;
				// with trailing-junk rejection there is none.
				t.Fatalf("prefix of %d/%d bytes decoded: %+v", i, len(frame), m)
			}
		}
	}
}

// TestDecodeCorruptedBytes flips each byte of a valid frame and checks the
// decoder stays total (either outcome is fine; it must not panic).
func TestDecodeCorruptedBytes(t *testing.T) {
	for _, frame := range fuzzSeeds(t) {
		for i := 0; i < len(frame); i++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0xFF
			_, _ = Decode(mut)
		}
	}
}
