package wire

import (
	"testing"

	"repro/internal/values"
)

// fuzzSeeds returns well-formed frames in both codecs plus assorted
// payload shapes, so the fuzzer starts from inputs that reach deep into
// readValue and readDataType.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	msgs := []*Message{
		sampleMessage(),
		{Kind: OneWay, BindingID: 1, Operation: "Notify",
			Args: []values.Value{values.Str("x")}},
		{Kind: Reply, Correlation: 7, Termination: "OK", Args: []values.Value{
			values.Record(
				values.F("nested", values.Record(values.F("n", values.Int(-1)))),
				values.F("seq", values.Seq(values.Str("a"), values.Str("b"))),
			),
			values.Enum("sym"),
			values.BytesVal([]byte{0, 1, 2, 3}),
			values.Any(values.TSeq(values.TString()), values.Seq(values.Str("s"))),
			values.Float(3.5),
			values.Uint(9),
			values.Bool(true),
		}},
		{Kind: ErrReply, Termination: "Error",
			Args: []values.Value{values.Str("detail")}},
		{Kind: Probe, BindingID: 3},
		// Traced frames: the extension block path must be in the corpus.
		{Kind: Call, BindingID: 9, Operation: "Get",
			TraceID: 0xa11c0ffee, SpanID: 0x1,
			Args: []values.Value{values.Int(1)}},
		{Kind: Reply, Correlation: 9, Termination: "OK",
			TraceID: ^uint64(0), SpanID: ^uint64(0)},
		// Streaming frames: the credit back-channel packs its numbers into
		// header fields (Correlation = stream id, Seq = element credit,
		// Epoch = byte credit) and must stay a bare header on the wire.
		{Kind: CreditGrant, BindingID: 4, Correlation: 0x51, Seq: 4096,
			Epoch: 1 << 20},
		{Kind: CreditGrant, Correlation: ^uint64(0), Seq: ^uint64(0),
			Epoch: ^uint64(0)},
		// FlowBatch in all three Termination shapes: open marker (no
		// elements), element batch mid-stream, end-of-stream marker.
		{Kind: FlowBatch, BindingID: 4, Operation: "ticks",
			Correlation: 0x51, Termination: StreamOpenMark},
		{Kind: FlowBatch, BindingID: 4, Operation: "ticks",
			Correlation: 0x51, Seq: 128, Args: []values.Value{
				values.Int(1), values.Int(2), values.Int(3)}},
		{Kind: FlowBatch, BindingID: 4, Operation: "ticks",
			Correlation: 0x51, Seq: 131, Termination: StreamEOSMark},
	}
	var seeds [][]byte
	for _, c := range codecs() {
		for _, m := range msgs {
			frame, err := m.Encode(c)
			if err != nil {
				tb.Fatalf("seed encode: %v", err)
			}
			seeds = append(seeds, frame)
		}
	}
	return seeds
}

// FuzzDecode asserts the frame parser is total: any byte string either
// decodes into a message or returns an error — never a panic, over-read or
// runaway allocation. Run with `go test -fuzz=FuzzDecode ./internal/wire`.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x0D, 0x09, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// A frame that decodes must re-encode: the decoded message contains
		// only representable values.
		if _, err := m.Encode(Canonical); err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
	})
}

// TestDecodeTruncatedAtEveryByte feeds every proper prefix of valid frames
// to Decode: each must fail cleanly (no panic) because the payload length
// checks run before any slicing.
func TestDecodeTruncatedAtEveryByte(t *testing.T) {
	for _, frame := range fuzzSeeds(t) {
		for i := 0; i < len(frame); i++ {
			if m, err := Decode(frame[:i]); err == nil {
				// Only a prefix that is itself a complete frame may decode;
				// with trailing-junk rejection there is none.
				t.Fatalf("prefix of %d/%d bytes decoded: %+v", i, len(frame), m)
			}
		}
	}
}

// TestDecodeCorruptedBytes flips each byte of a valid frame and checks the
// decoder stays total (either outcome is fine; it must not panic).
func TestDecodeCorruptedBytes(t *testing.T) {
	for _, frame := range fuzzSeeds(t) {
		for i := 0; i < len(frame); i++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0xFF
			_, _ = Decode(mut)
		}
	}
}

// TestStreamFrameCorruptions runs structural corruptions — targeted, not
// byte-flip-shaped — against a valid CreditGrant and FlowBatch frame.
// The streaming data plane decodes these kinds on the session hot path,
// so each named failure mode must come back as a clean error.
func TestStreamFrameCorruptions(t *testing.T) {
	grant := &Message{Kind: CreditGrant, BindingID: 4, Correlation: 0x51,
		Seq: 4096, Epoch: 1 << 20}
	batch := &Message{Kind: FlowBatch, BindingID: 4, Operation: "ticks",
		Correlation: 0x51, Seq: 128, Termination: StreamEOSMark,
		Args: []values.Value{values.Int(1), values.Int(2)}}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func([]byte) []byte { return nil }},
		{"bad magic", func(f []byte) []byte { f[0] ^= 0xFF; return f }},
		{"bad version", func(f []byte) []byte { f[2] = 0xEE; return f }},
		{"unknown codec", func(f []byte) []byte { f[3] = 0xEE; return f }},
		{"header only", func(f []byte) []byte { return f[:6] }},
		{"half frame", func(f []byte) []byte { return f[:len(f)/2] }},
		{"last byte gone", func(f []byte) []byte { return f[:len(f)-1] }},
		{"trailing junk", func(f []byte) []byte { return append(f, 0xAB) }},
	}
	for _, m := range []*Message{grant, batch} {
		for _, c := range codecs() {
			frame, err := m.Encode(c)
			if err != nil {
				t.Fatalf("%v/%v: encode: %v", m.Kind, c.ID(), err)
			}
			for _, tc := range cases {
				mut := tc.mutate(append([]byte(nil), frame...))
				if _, err := Decode(mut); err == nil {
					t.Errorf("%v/%v/%s: corrupted frame decoded", m.Kind, c.ID(), tc.name)
				}
			}
		}
	}

	// A credit grant is a bare header, so its final two bytes are the u16
	// argument count. Forging a huge count with no payload behind it must
	// read as truncation — not an allocation or an over-read.
	for _, c := range codecs() {
		frame, err := grant.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		frame[len(frame)-2], frame[len(frame)-1] = 0xFF, 0xFF
		if _, err := Decode(frame); err == nil {
			t.Errorf("codec %v: forged arg count on a bare-header grant decoded", c.ID())
		}
	}
}

// TestStreamFramesRoundTrip pins the header-field packing of the
// streaming kinds across both codecs: a credit grant's numbers travel in
// Seq/Epoch/Correlation with no payload, and a FlowBatch keeps its flow
// name, FIFO position and termination marker.
func TestStreamFramesRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: CreditGrant, BindingID: 9, Correlation: 7, Seq: 100, Epoch: 65536},
		{Kind: FlowBatch, BindingID: 9, Operation: "quotes", Correlation: 7,
			Termination: StreamOpenMark},
		{Kind: FlowBatch, BindingID: 9, Operation: "quotes", Correlation: 7,
			Seq: 3, Args: []values.Value{values.Str("a"), values.Str("b")}},
		{Kind: FlowBatch, BindingID: 9, Operation: "quotes", Correlation: 7,
			Seq: 5, Termination: StreamEOSMark},
	}
	for _, m := range msgs {
		for _, c := range codecs() {
			frame, err := m.Encode(c)
			if err != nil {
				t.Fatalf("%v/%v: encode: %v", m.Kind, c.ID(), err)
			}
			got, err := Decode(frame)
			if err != nil {
				t.Fatalf("%v/%v: decode: %v", m.Kind, c.ID(), err)
			}
			if got.Kind != m.Kind || got.Correlation != m.Correlation ||
				got.Seq != m.Seq || got.Epoch != m.Epoch ||
				got.Operation != m.Operation || got.Termination != m.Termination ||
				len(got.Args) != len(m.Args) {
				t.Fatalf("%v/%v: round trip mismatch: %+v", m.Kind, c.ID(), got)
			}
		}
	}
}
