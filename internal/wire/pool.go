package wire

import (
	"sync"

	"repro/internal/bufpool"
	"repro/internal/values"
)

// Frame buffers are the dominant allocation of the invocation hot path:
// every Call, Reply and OneWay serialises into a fresh []byte. The pool
// below (backed by the size-classed free lists in internal/bufpool, which
// the transports share) lets channel ends reuse those buffers across
// invocations.
//
// Ownership protocol: GetFrame hands the caller exclusive use of the
// buffer; PutFrame ends it. A frame may be recycled once no decoded view
// of it can escape — Decode copies out every string and byte payload
// precisely so that received frames can be recycled immediately after
// decoding. A frame that is retained (for example in a replay-guard reply
// cache) must NOT be put back.

// GetFrame returns a pooled zero-length buffer with capacity at least
// sizeHint, for use with Message.EncodeAppend.
func GetFrame(sizeHint int) []byte { return bufpool.Get(sizeHint) }

// PutFrame recycles a frame buffer obtained from GetFrame or received from
// a transport. The caller must not touch the buffer afterwards.
func PutFrame(b []byte) { bufpool.Put(b) }

// PutFrames recycles a batch of frame buffers at once and clears the slice
// entries so a reused batch slice cannot pin recycled buffers. The batched
// session sender uses it after a vectored write: the frames were appended
// into the shared batch without copying, so returning them here is the
// single ownership hand-back for the whole write.
func PutFrames(frames [][]byte) {
	for i, f := range frames {
		bufpool.Put(f)
		frames[i] = nil
	}
}

// ---------------------------------------------------------------------------
// decode scratch: records and sequences are parsed into pooled scratch
// slices, then copied out into an exactly-sized slice handed to the owned
// values constructors. This costs one allocation per composite value
// (instead of two: grow-while-parsing plus the constructor's defensive
// copy) and keeps a hostile length prefix from reserving huge capacity
// up front.

// messagePool recycles Message structs themselves. Decode draws from it,
// so a channel end that knows a message is finished (for example a server
// that has answered a call) can return the struct with PutMessage and make
// the next Decode allocation-free. Recycling only zeroes the struct: any
// slices it referenced (Args, Auth) keep whatever owners they escaped to.
var messagePool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage returns a zeroed Message from the pool.
func GetMessage() *Message { return messagePool.Get().(*Message) }

// PutMessage recycles a Message. The caller must be the last holder of the
// pointer: a Message handed to application code that may retain it (for
// example a reply delivered to an Invoke caller) must not be put back.
func PutMessage(m *Message) {
	if m == nil {
		return
	}
	*m = Message{}
	messagePool.Put(m)
}

var fieldScratchPool = sync.Pool{
	New: func() any { s := make([]values.Field, 0, 16); return &s },
}

var valueScratchPool = sync.Pool{
	New: func() any { s := make([]values.Value, 0, 16); return &s },
}

func getFieldScratch() *[]values.Field { return fieldScratchPool.Get().(*[]values.Field) }

func putFieldScratch(p *[]values.Field, used []values.Field) {
	clear(used) // drop references so pooled scratch does not pin decoded data
	*p = used[:0]
	fieldScratchPool.Put(p)
}

func getValueScratch() *[]values.Value { return valueScratchPool.Get().(*[]values.Value) }

func putValueScratch(p *[]values.Value, used []values.Value) {
	clear(used)
	*p = used[:0]
	valueScratchPool.Put(p)
}
