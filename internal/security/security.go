// Package security implements the ODP security functions of Section 8.4
// of the tutorial — access control, authentication and auditing — in the
// form the engineering viewpoint needs them: as channel components.
//
// Authentication uses shared-secret HMAC credentials. The client end's
// SignStage (a binder: no application semantics needed) attaches a
// credential covering the message's identity-relevant header fields; the
// server end's VerifyStage checks the credential against its Realm and
// then enforces the access-control Policy. Together with the channel's
// replay guard (sequence numbers in the binder, Section 6.1) this defends
// against the tutorial's example threat of "capturing and replaying
// operations".
package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/channel"
	"repro/internal/wire"
)

// ErrBadCredential is returned when a credential cannot even be parsed;
// verification failures and policy denials surface to peers as
// channel.CodeAuth errors with audit Decisions recording the reason.
var ErrBadCredential = errors.New("security: malformed credential")

const macSize = sha256.Size

// Realm holds the shared secrets of a security domain's principals.
type Realm struct {
	mu      sync.RWMutex
	secrets map[string][]byte
}

// NewRealm returns an empty realm.
func NewRealm() *Realm {
	return &Realm{secrets: make(map[string][]byte)}
}

// AddPrincipal registers (or rotates) a principal's secret.
func (r *Realm) AddPrincipal(name string, secret []byte) {
	cp := make([]byte, len(secret))
	copy(cp, secret)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.secrets[name] = cp
}

// RemovePrincipal revokes a principal.
func (r *Realm) RemovePrincipal(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.secrets, name)
}

func (r *Realm) secret(name string) ([]byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.secrets[name]
	return s, ok
}

// mac computes the credential MAC over the fields that identify an
// interaction: principal, target interface, operation, binding, sequence
// and correlation. Covering seq and correlation ties the credential to
// one transmission, so a captured credential cannot authenticate a
// different (or replayed-with-new-seq) message.
func computeMAC(secret []byte, principal string, m *wire.Message) []byte {
	h := hmac.New(sha256.New, secret)
	h.Write([]byte(principal))
	h.Write([]byte{0})
	h.Write([]byte(m.Target.String()))
	h.Write([]byte{0})
	h.Write([]byte(m.Operation))
	h.Write([]byte{0})
	var buf [8 * 3]byte
	binary.BigEndian.PutUint64(buf[0:], m.BindingID)
	binary.BigEndian.PutUint64(buf[8:], m.Seq)
	binary.BigEndian.PutUint64(buf[16:], m.Correlation)
	h.Write(buf[:])
	return h.Sum(nil)
}

func encodeCredential(principal string, mac []byte) []byte {
	out := make([]byte, 2+len(principal)+len(mac))
	binary.BigEndian.PutUint16(out, uint16(len(principal)))
	copy(out[2:], principal)
	copy(out[2+len(principal):], mac)
	return out
}

func decodeCredential(auth []byte) (principal string, mac []byte, err error) {
	if len(auth) < 2 {
		return "", nil, ErrBadCredential
	}
	n := int(binary.BigEndian.Uint16(auth))
	if len(auth) != 2+n+macSize {
		return "", nil, ErrBadCredential
	}
	return string(auth[2 : 2+n]), auth[2+n:], nil
}

// SignStage is the client-side authentication binder: it attaches the
// principal's credential to every outbound request.
type SignStage struct {
	Principal string
	Secret    []byte
}

var _ channel.Stage = (*SignStage)(nil)

// Name identifies the stage.
func (*SignStage) Name() string { return "security-sign" }

// Process signs outbound requests; replies pass through.
func (s *SignStage) Process(dir channel.Direction, m *wire.Message) error {
	if dir != channel.Outbound {
		return nil
	}
	switch m.Kind {
	case wire.Call, wire.OneWay, wire.FlowMsg, wire.SignalMsg:
		m.Auth = encodeCredential(s.Principal, computeMAC(s.Secret, s.Principal, m))
	}
	return nil
}

// Decision is one audit record from a VerifyStage.
type Decision struct {
	Principal string
	Operation string
	Allowed   bool
	Reason    string
}

// VerifyStage is the server-side authentication and access-control
// component: it verifies inbound credentials against the realm and
// enforces the policy, emitting an audit Decision for every check.
type VerifyStage struct {
	Realm  *Realm
	Policy *Policy
	// Audit, when set, receives every access decision (the security
	// auditing function).
	Audit func(Decision)
}

var _ channel.Stage = (*VerifyStage)(nil)

// Name identifies the stage.
func (*VerifyStage) Name() string { return "security-verify" }

// Process verifies inbound requests; outbound replies pass through.
func (s *VerifyStage) Process(dir channel.Direction, m *wire.Message) error {
	if dir != channel.Inbound {
		return nil
	}
	switch m.Kind {
	case wire.Call, wire.OneWay, wire.FlowMsg, wire.SignalMsg:
	default:
		return nil
	}
	decision, err := s.check(m)
	if s.Audit != nil {
		s.Audit(decision)
	}
	return err
}

func (s *VerifyStage) check(m *wire.Message) (Decision, error) {
	d := Decision{Operation: m.Operation}
	principal, mac, err := decodeCredential(m.Auth)
	if err != nil {
		d.Reason = "malformed credential"
		return d, &channel.StageError{Code: channel.CodeAuth, Detail: d.Reason}
	}
	d.Principal = principal
	secret, ok := s.Realm.secret(principal)
	if !ok {
		d.Reason = "unknown principal"
		return d, &channel.StageError{Code: channel.CodeAuth, Detail: d.Reason}
	}
	want := computeMAC(secret, principal, m)
	if !hmac.Equal(mac, want) {
		d.Reason = "bad credential"
		return d, &channel.StageError{Code: channel.CodeAuth, Detail: d.Reason}
	}
	if s.Policy != nil && !s.Policy.Allowed(principal, m.Operation) {
		d.Reason = "denied by policy"
		return d, &channel.StageError{Code: channel.CodeAuth, Detail: fmt.Sprintf("%s may not call %s", principal, m.Operation)}
	}
	d.Allowed = true
	return d, nil
}

// Policy is the access-control function: which principals may invoke
// which operations. The zero policy denies everything; Allow grants
// per-operation or wildcard ("*") rights.
type Policy struct {
	mu    sync.RWMutex
	rules map[string]map[string]bool
}

// NewPolicy returns an empty (deny-all) policy.
func NewPolicy() *Policy {
	return &Policy{rules: make(map[string]map[string]bool)}
}

// Allow grants principal the right to invoke op ("*" for all operations).
func (p *Policy) Allow(principal, op string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ops, ok := p.rules[principal]
	if !ok {
		ops = make(map[string]bool)
		p.rules[principal] = ops
	}
	ops[op] = true
}

// Revoke withdraws a previously granted right.
func (p *Policy) Revoke(principal, op string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ops, ok := p.rules[principal]; ok {
		delete(ops, op)
	}
}

// Allowed reports whether principal may invoke op.
func (p *Policy) Allowed(principal, op string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ops, ok := p.rules[principal]
	if !ok {
		return false
	}
	return ops[op] || ops["*"]
}

// AuditLog is a concurrency-safe sink for access decisions.
type AuditLog struct {
	mu   sync.Mutex
	recs []Decision
}

// Record appends a decision; pass it as VerifyStage.Audit.
func (a *AuditLog) Record(d Decision) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recs = append(a.recs, d)
}

// Decisions returns a copy of the recorded decisions.
func (a *AuditLog) Decisions() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Decision, len(a.recs))
	copy(out, a.recs)
	return out
}
