package security

import (
	"context"
	"testing"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

func echoType() *types.Interface {
	return types.OpInterface("Echo",
		types.Op("Echo", types.Params(types.P("x", values.TString())), types.Term("OK", types.P("x", values.TString()))),
		types.Op("Admin", nil, types.Term("OK")),
	)
}

type echoServant struct{}

func (echoServant) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if op == "Admin" {
		return "OK", nil, nil
	}
	return "OK", []values.Value{args[0]}, nil
}

type secureEnv struct {
	net    *netsim.Network
	server *channel.Server
	realm  *Realm
	policy *Policy
	audit  *AuditLog
	ref    naming.InterfaceRef
}

func newSecureEnv(t *testing.T) *secureEnv {
	t.Helper()
	env := &secureEnv{
		net:    netsim.New(1),
		realm:  NewRealm(),
		policy: NewPolicy(),
		audit:  &AuditLog{},
	}
	env.realm.AddPrincipal("alice", []byte("alice-secret"))
	env.realm.AddPrincipal("mallory", []byte("mallory-secret"))
	env.policy.Allow("alice", "Echo")

	l, err := env.net.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	env.server = channel.NewServer(l, channel.ServerConfig{
		ReplayGuard: true,
		Stages: []channel.Stage{
			&VerifyStage{Realm: env.realm, Policy: env.policy, Audit: env.audit.Record},
		},
	})
	id := naming.InterfaceID{Nonce: 1}
	if err := env.server.Register(id, echoType(), echoServant{}); err != nil {
		t.Fatal(err)
	}
	env.server.Start()
	t.Cleanup(func() { env.server.Close() })
	env.ref = naming.InterfaceRef{ID: id, TypeName: "Echo", Endpoint: "sim://server"}
	return env
}

func (e *secureEnv) bindAs(t *testing.T, principal string, secret []byte) *channel.Binding {
	t.Helper()
	b, err := channel.Bind(e.ref, channel.BindConfig{
		Transport: e.net,
		Stages:    []channel.Stage{&SignStage{Principal: principal, Secret: secret}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestAuthenticatedInvocation(t *testing.T) {
	env := newSecureEnv(t)
	b := env.bindAs(t, "alice", []byte("alice-secret"))
	term, res, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("hi")})
	if err != nil || term != "OK" {
		t.Fatalf("Invoke = %q, %v, %v", term, res, err)
	}
	ds := env.audit.Decisions()
	if len(ds) != 1 || !ds[0].Allowed || ds[0].Principal != "alice" || ds[0].Operation != "Echo" {
		t.Errorf("audit = %+v", ds)
	}
}

func TestMissingCredentialRejected(t *testing.T) {
	env := newSecureEnv(t)
	b, err := channel.Bind(env.ref, channel.BindConfig{Transport: env.net})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, _, err = b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")})
	if !channel.IsRemote(err, channel.CodeAuth) {
		t.Errorf("err = %v", err)
	}
}

func TestWrongSecretRejected(t *testing.T) {
	env := newSecureEnv(t)
	b := env.bindAs(t, "alice", []byte("wrong"))
	_, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")})
	if !channel.IsRemote(err, channel.CodeAuth) {
		t.Errorf("err = %v", err)
	}
	ds := env.audit.Decisions()
	if len(ds) != 1 || ds[0].Allowed || ds[0].Reason != "bad credential" {
		t.Errorf("audit = %+v", ds)
	}
}

func TestUnknownPrincipalRejected(t *testing.T) {
	env := newSecureEnv(t)
	b := env.bindAs(t, "eve", []byte("whatever"))
	_, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")})
	if !channel.IsRemote(err, channel.CodeAuth) {
		t.Errorf("err = %v", err)
	}
}

func TestPolicyDeniesUnauthorizedOperation(t *testing.T) {
	env := newSecureEnv(t)
	// mallory authenticates fine but has no rights.
	b := env.bindAs(t, "mallory", []byte("mallory-secret"))
	_, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")})
	if !channel.IsRemote(err, channel.CodeAuth) {
		t.Errorf("err = %v", err)
	}
	// alice may Echo but not Admin.
	ba := env.bindAs(t, "alice", []byte("alice-secret"))
	if _, _, err := ba.Invoke(context.Background(), "Admin", nil); !channel.IsRemote(err, channel.CodeAuth) {
		t.Errorf("Admin = %v", err)
	}
	// Grant, call, revoke, call.
	env.policy.Allow("alice", "Admin")
	if _, _, err := ba.Invoke(context.Background(), "Admin", nil); err != nil {
		t.Errorf("Admin after grant = %v", err)
	}
	env.policy.Revoke("alice", "Admin")
	if _, _, err := ba.Invoke(context.Background(), "Admin", nil); !channel.IsRemote(err, channel.CodeAuth) {
		t.Errorf("Admin after revoke = %v", err)
	}
}

func TestWildcardPolicy(t *testing.T) {
	p := NewPolicy()
	p.Allow("root", "*")
	if !p.Allowed("root", "Anything") {
		t.Error("wildcard should allow")
	}
	if p.Allowed("other", "Anything") {
		t.Error("unknown principal should be denied")
	}
	p.Revoke("root", "*")
	if p.Allowed("root", "Anything") {
		t.Error("revoked wildcard should deny")
	}
	p.Revoke("ghost", "x") // no-op
}

func TestRevokedPrincipal(t *testing.T) {
	env := newSecureEnv(t)
	b := env.bindAs(t, "alice", []byte("alice-secret"))
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	env.realm.RemovePrincipal("alice")
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); !channel.IsRemote(err, channel.CodeAuth) {
		t.Errorf("after revocation = %v", err)
	}
}

func TestCredentialBoundToMessage(t *testing.T) {
	// A credential lifted from one message must not authenticate another
	// operation: the MAC covers target, operation, binding and sequence.
	secret := []byte("alice-secret")
	m1 := &wire.Message{Kind: wire.Call, Operation: "Echo", BindingID: 1, Seq: 1, Correlation: 1}
	m2 := &wire.Message{Kind: wire.Call, Operation: "Admin", BindingID: 1, Seq: 1, Correlation: 1}
	mac1 := computeMAC(secret, "alice", m1)
	mac2 := computeMAC(secret, "alice", m2)
	if string(mac1) == string(mac2) {
		t.Error("MACs for different operations must differ")
	}
	m3 := *m1
	m3.Seq = 2
	if string(computeMAC(secret, "alice", &m3)) == string(mac1) {
		t.Error("MACs for different sequence numbers must differ")
	}
}

func TestDecodeCredentialErrors(t *testing.T) {
	if _, _, err := decodeCredential(nil); err == nil {
		t.Error("nil credential should fail")
	}
	if _, _, err := decodeCredential([]byte{0, 5, 'a'}); err == nil {
		t.Error("truncated credential should fail")
	}
	cred := encodeCredential("alice", make([]byte, macSize))
	if p, mac, err := decodeCredential(cred); err != nil || p != "alice" || len(mac) != macSize {
		t.Errorf("round trip = %q, %d, %v", p, len(mac), err)
	}
}

func TestVerifyStagePassesRepliesThrough(t *testing.T) {
	s := &VerifyStage{Realm: NewRealm(), Policy: NewPolicy()}
	reply := &wire.Message{Kind: wire.Reply}
	if err := s.Process(channel.Inbound, reply); err != nil {
		t.Errorf("reply should pass: %v", err)
	}
	if err := s.Process(channel.Outbound, &wire.Message{Kind: wire.Call}); err != nil {
		t.Errorf("outbound should pass: %v", err)
	}
}
