package coordination

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/hashring"
	"repro/internal/mgmt"
	"repro/internal/values"
)

// Bounded-queue delivery preserves per-subscriber publication order even
// with racing publishers: events are enqueued under the lock that
// assigns their Seq, so the queue is drained in strictly ascending Seq
// order.
func TestQueuedSubscriberPreservesOrder(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	var seqs []uint64
	cancel := b.SubscribeQueued("tick", nil, 2048, func(ev Event) {
		mu.Lock()
		seqs = append(seqs, ev.Seq)
		mu.Unlock()
	})

	const publishers, per = 4, 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish("tick", values.Int(int64(i)))
			}
		}()
	}
	wg.Wait()
	cancel() // blocks until the backlog is drained

	if len(seqs) != publishers*per {
		t.Fatalf("delivered %d events, want %d", len(seqs), publishers*per)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("delivery out of order at %d: seq %d after %d", i, seqs[i], seqs[i-1])
		}
	}
	if st := b.QueueStats(); st.Dropped != 0 || st.Queued != 0 {
		t.Fatalf("unexpected queue stats: %+v", st)
	}
}

// A full bounded queue drops new events for that subscriber (counted)
// instead of stalling the publisher, and the drops are visible in both
// QueueStats and the mgmt gauges.
func TestQueuedSubscriberDropsWhenFull(t *testing.T) {
	b := NewBus()
	m := mgmt.New()
	b.Instrument(m.Bus("b0"))

	entered := make(chan struct{})
	release := make(chan struct{})
	var delivered int
	var mu sync.Mutex
	cancel := b.SubscribeQueued("tick", nil, 1, func(ev Event) {
		mu.Lock()
		delivered++
		first := delivered == 1
		mu.Unlock()
		if first {
			close(entered)
			<-release
		}
	})

	b.Publish("tick", values.Int(0))
	<-entered // the drain goroutine is now wedged inside the callback
	b.Publish("tick", values.Int(1))
	// The queue (capacity 1) now holds event 1; everything below drops.
	const extra = 8
	for i := 0; i < extra; i++ {
		if got := b.Publish("tick", values.Int(int64(2+i))); got != 0 {
			t.Fatalf("full-queue Publish reported %d deliveries, want 0", got)
		}
	}
	st := b.QueueStats()
	if st.Dropped != extra {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, extra)
	}
	if st.Stalls != extra {
		t.Fatalf("Stalls = %d, want %d", st.Stalls, extra)
	}
	if got := m.Registry.Gauge("bus.b0.queue_depth").Load(); got != 1 {
		t.Fatalf("bus.b0.queue_depth = %d while one event queued, want 1", got)
	}
	close(release)
	cancel()
	mu.Lock()
	got := delivered
	mu.Unlock()
	if got != 2 {
		t.Fatalf("delivered %d events, want 2 (wedged + queued)", got)
	}
	if got := m.Registry.Gauge("bus.b0.queue_depth").Load(); got != 0 {
		t.Fatalf("bus.b0.queue_depth = %d after drain, want 0", got)
	}
	if got := m.Registry.Counter("bus.b0.dropped").Load(); got != extra {
		t.Fatalf("bus.b0.dropped = %d, want %d", got, extra)
	}
}

// A slow queued subscriber must not stall publishers or other
// subscribers: while one consumer is wedged, publishes keep completing
// and an inline subscriber keeps receiving.
func TestSlowQueuedSubscriberDoesNotStallBus(t *testing.T) {
	b := NewBus()
	wedged := make(chan struct{})
	release := make(chan struct{})
	cancelSlow := b.SubscribeQueued("tick", nil, 1, func(Event) {
		select {
		case <-wedged:
		default:
			close(wedged)
		}
		<-release
	})
	var fast int
	cancelFast := b.Subscribe("tick", nil, func(Event) { fast++ })

	for i := 0; i < 100; i++ {
		b.Publish("tick", values.Int(int64(i)))
	}
	if fast != 100 {
		t.Fatalf("inline subscriber received %d events, want 100", fast)
	}
	close(release)
	cancelSlow()
	cancelFast()
	if st := b.QueueStats(); st.Dropped == 0 {
		t.Fatalf("expected drops at the wedged subscriber, got %+v", st)
	}
}

// Topic routing is a pure function of the ring's membership: the same
// topic lands on the same shard regardless of the order members joined
// or how many epochs the ring has been through.
func TestShardedBusRoutingStableAcrossEpochs(t *testing.T) {
	sb := NewShardedBus(4)
	topics := make([]string, 64)
	for i := range topics {
		topics[i] = fmt.Sprintf("topic-%d", i)
	}

	// A second front-end with identical membership routes identically.
	sb2 := NewShardedBus(4)
	for _, topic := range topics {
		if a, b := sb.ShardFor(topic), sb2.ShardFor(topic); a != b {
			t.Fatalf("routing differs between identical buses: %s -> %s vs %s", topic, a, b)
		}
	}

	// A ring that reached the same membership through extra epochs
	// (members added in reverse, a transient member added and removed)
	// owns every topic identically.
	ring := hashring.New(64)
	for i := 3; i >= 0; i-- {
		ring.Add(fmt.Sprintf("b%d", i))
	}
	ring.Add("transient")
	ring.Remove("transient")
	if ring.Epoch() < 6 {
		t.Fatalf("ring epochs did not advance: %d", ring.Epoch())
	}
	for _, topic := range topics {
		if a, b := sb.ShardFor(topic), ring.Owner(topic); a != b {
			t.Fatalf("routing depends on ring history: %s -> %s vs %s", topic, a, b)
		}
	}

	// And the mapping actually spreads topics over multiple shards.
	used := map[string]bool{}
	for _, topic := range topics {
		used[sb.ShardFor(topic)] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 topics all routed to one shard: %v", used)
	}
}

// Publishing and topic subscription agree on placement: a subscriber on
// a topic receives every event published on it, with per-topic total
// order (the topic's shard assigns Seq).
func TestShardedBusTopicDelivery(t *testing.T) {
	sb := NewShardedBus(4)
	var mu sync.Mutex
	got := map[string][]uint64{}
	var cancels []func()
	topics := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, topic := range topics {
		topic := topic
		cancels = append(cancels, sb.Subscribe(topic, nil, func(ev Event) {
			mu.Lock()
			got[topic] = append(got[topic], ev.Seq)
			mu.Unlock()
		}))
	}
	const per = 20
	for i := 0; i < per; i++ {
		for _, topic := range topics {
			if err := sb.PublishSync(topic, values.Int(int64(i))); err != nil {
				t.Fatalf("PublishSync(%s): %v", topic, err)
			}
		}
	}
	for _, c := range cancels {
		c()
	}
	for _, topic := range topics {
		seqs := got[topic]
		if len(seqs) != per {
			t.Fatalf("topic %s: received %d events, want %d", topic, len(seqs), per)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("topic %s: seq order violated: %v", topic, seqs)
			}
		}
	}
	pub, del := sb.Stats()
	if pub != uint64(per*len(topics)) || del != uint64(per*len(topics)) {
		t.Fatalf("Stats = (%d, %d), want (%d, %d)", pub, del, per*len(topics), per*len(topics))
	}
}

// A wildcard ("" topic) subscriber is fanned out to every shard: it
// receives every event exactly once, and within each shard the Seq
// numbers it observes are monotonic (cross-shard interleaving is
// unspecified).
func TestShardedBusWildcardSeesAllShards(t *testing.T) {
	sb := NewShardedBus(4)
	type rec struct {
		shard string
		seq   uint64
		topic string
	}
	var mu sync.Mutex
	var events []rec
	cancel := sb.Subscribe("", nil, func(ev Event) {
		mu.Lock()
		events = append(events, rec{shard: sb.ShardFor(ev.Topic), seq: ev.Seq, topic: ev.Topic})
		mu.Unlock()
	})

	topics := make([]string, 32)
	shardsHit := map[string]bool{}
	for i := range topics {
		topics[i] = fmt.Sprintf("topic-%d", i)
		shardsHit[sb.ShardFor(topics[i])] = true
	}
	if len(shardsHit) != 4 {
		t.Fatalf("test topics cover %d shards, want 4", len(shardsHit))
	}
	const per = 10
	for i := 0; i < per; i++ {
		for _, topic := range topics {
			sb.Publish(topic, values.Int(int64(i)))
		}
	}
	cancel()

	if len(events) != per*len(topics) {
		t.Fatalf("wildcard received %d events, want %d", len(events), per*len(topics))
	}
	lastSeq := map[string]uint64{}
	for _, e := range events {
		if e.seq <= lastSeq[e.shard] {
			t.Fatalf("per-shard seq not monotonic on %s: %d after %d", e.shard, e.seq, lastSeq[e.shard])
		}
		lastSeq[e.shard] = e.seq
	}

	// A queued wildcard subscriber gets one bounded queue per shard.
	var n int
	var nmu sync.Mutex
	qcancel := sb.SubscribeQueued("", nil, 64, func(Event) {
		nmu.Lock()
		n++
		nmu.Unlock()
	})
	for _, topic := range topics {
		sb.Publish(topic, values.Int(0))
	}
	qcancel()
	if n != len(topics) {
		t.Fatalf("queued wildcard received %d events, want %d", n, len(topics))
	}
}

// The sharded front-end aggregates queue stats and resolves one mgmt
// bundle per shard.
func TestShardedBusStatsAndInstruments(t *testing.T) {
	sb := NewShardedBus(2)
	m := mgmt.New()
	sb.Instrument(m)
	var seen int
	cancel := sb.Subscribe("", nil, func(Event) { seen++ })
	sb.Publish("a", values.Int(1))
	sb.Publish("b", values.Int(2))
	cancel()
	if seen != 2 {
		t.Fatalf("wildcard saw %d events, want 2", seen)
	}
	st := sb.QueueStats()
	if st.Published != 2 {
		t.Fatalf("QueueStats.Published = %d, want 2", st.Published)
	}
	var published uint64
	for _, name := range sb.ShardNames() {
		published += m.Registry.Counter("bus." + name + ".published").Load()
	}
	if published != 2 {
		t.Fatalf("per-shard published counters sum to %d, want 2", published)
	}
}
