// The sharded event bus: the Section 8.2 notification function as a
// scaled front-end rather than a process-wide singleton. Topics are
// routed to independent Bus shards over the same consistent-hash ring the
// trader and relocator shard with, so publishers on unrelated topics stop
// contending on one sequencing lock, while every shard keeps the plain
// Bus semantics (per-shard total order, inline and bounded-queue
// subscribers).
package coordination

import (
	"fmt"

	"repro/internal/hashring"
	"repro/internal/mgmt"
	"repro/internal/values"
)

// EventBus is the notification surface shared by the singleton *Bus and
// the topic-sharded *ShardedBus, so call sites (odp.System, QoS
// monitors, relocation watchers) can hold either without caring which.
type EventBus interface {
	Subscribe(topic string, filter Filter, fn func(Event)) (cancel func())
	SubscribeQueued(topic string, filter Filter, capacity int, fn func(Event)) (cancel func())
	Publish(topic string, payload values.Value) int
	PublishSync(topic string, payload values.Value) error
	Stats() (published, delivered uint64)
	QueueStats() BusStats
}

var (
	_ EventBus = (*Bus)(nil)
	_ EventBus = (*ShardedBus)(nil)
)

// ShardedBus routes each topic to one of several Bus shards by
// consistent hash. Routing depends only on the ring's membership, not on
// the order members joined or on the ring epoch, so a topic observed on
// shard b2 stays on b2 for the life of the bus.
//
// Ordering: Seq numbers and total order are per shard. Events on one
// topic (one shard) are totally ordered; a wildcard ("" topic)
// subscriber is fanned out to every shard and sees each shard's events
// in that shard's Seq order, with no ordering defined across shards.
//
// A ShardedBus is safe for concurrent use; its membership is fixed at
// construction (the ring is never mutated afterwards, which is what
// makes lock-free routing reads sound).
type ShardedBus struct {
	ring   *hashring.Ring
	shards map[string]*Bus
	names  []string
}

// NewShardedBus returns a bus with n topic shards (n < 1 is treated as
// 1), named b0..b<n-1> on a 64-virtual-point ring.
func NewShardedBus(n int) *ShardedBus {
	if n < 1 {
		n = 1
	}
	sb := &ShardedBus{
		ring:   hashring.New(64),
		shards: make(map[string]*Bus, n),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("b%d", i)
		sb.ring.Add(name)
		sb.shards[name] = NewBus()
		sb.names = append(sb.names, name)
	}
	return sb
}

// ShardFor reports which shard the topic routes to (exported so tests
// and operators can check placement).
func (sb *ShardedBus) ShardFor(topic string) string { return sb.ring.Owner(topic) }

// ShardNames returns the shard names in b0..bN order.
func (sb *ShardedBus) ShardNames() []string { return append([]string(nil), sb.names...) }

// Publish routes the event to the topic's shard and delivers there.
func (sb *ShardedBus) Publish(topic string, payload values.Value) int {
	return sb.shards[sb.ring.Owner(topic)].Publish(topic, payload)
}

// PublishSync is Publish that fails when no subscriber received the event.
func (sb *ShardedBus) PublishSync(topic string, payload values.Value) error {
	if sb.Publish(topic, payload) == 0 {
		return ErrNoSubscriber
	}
	return nil
}

// Subscribe registers an inline subscriber. A named topic subscribes on
// that topic's shard only; the wildcard "" subscribes on every shard
// (events arrive per-shard ordered, interleaving across shards
// unspecified). The returned cancel covers every underlying
// subscription.
func (sb *ShardedBus) Subscribe(topic string, filter Filter, fn func(Event)) (cancel func()) {
	if topic != "" {
		return sb.shards[sb.ring.Owner(topic)].Subscribe(topic, filter, fn)
	}
	cancels := make([]func(), 0, len(sb.names))
	for _, name := range sb.names {
		cancels = append(cancels, sb.shards[name].Subscribe(topic, filter, fn))
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}
}

// SubscribeQueued registers a bounded-queue subscriber with the same
// topic routing as Subscribe; a wildcard subscriber gets one queue (and
// one drain goroutine) per shard, each of the given capacity, so a slow
// wildcard consumer still cannot couple the shards to each other.
func (sb *ShardedBus) SubscribeQueued(topic string, filter Filter, capacity int, fn func(Event)) (cancel func()) {
	if topic != "" {
		return sb.shards[sb.ring.Owner(topic)].SubscribeQueued(topic, filter, capacity, fn)
	}
	cancels := make([]func(), 0, len(sb.names))
	for _, name := range sb.names {
		cancels = append(cancels, sb.shards[name].SubscribeQueued(topic, filter, capacity, fn))
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}
}

// Stats sums (published, delivered) across shards.
func (sb *ShardedBus) Stats() (published, delivered uint64) {
	for _, name := range sb.names {
		p, d := sb.shards[name].Stats()
		published += p
		delivered += d
	}
	return published, delivered
}

// QueueStats sums the full counter snapshot across shards.
func (sb *ShardedBus) QueueStats() BusStats {
	var out BusStats
	for _, name := range sb.names {
		s := sb.shards[name].QueueStats()
		out.Published += s.Published
		out.Delivered += s.Delivered
		out.Dropped += s.Dropped
		out.Stalls += s.Stalls
		out.Queued += s.Queued
	}
	return out
}

// Instrument resolves one mgmt bundle per shard (bus.<shard>.*) from m;
// a nil m detaches.
func (sb *ShardedBus) Instrument(m *mgmt.Management) {
	for _, name := range sb.names {
		sb.shards[name].Instrument(m.Bus(name))
	}
}
