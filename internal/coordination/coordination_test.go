package coordination

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/types"
	"repro/internal/values"
)

// ---------------------------------------------------------------------------
// event bus

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	var got []Event
	cancel := b.Subscribe("bank.rate", nil, func(ev Event) { got = append(got, ev) })
	defer cancel()
	if n := b.Publish("bank.rate", values.Float(4.5)); n != 1 {
		t.Errorf("deliveries = %d", n)
	}
	if n := b.Publish("other.topic", values.Int(1)); n != 0 {
		t.Errorf("unrelated topic deliveries = %d", n)
	}
	if len(got) != 1 || got[0].Topic != "bank.rate" || got[0].Seq != 1 {
		t.Errorf("events = %+v", got)
	}
}

func TestBusWildcardAndFilter(t *testing.T) {
	b := NewBus()
	var all, filtered int
	b.Subscribe("", nil, func(Event) { all++ })
	b.Subscribe("x", func(ev Event) bool {
		i, _ := ev.Payload.AsInt()
		return i > 5
	}, func(Event) { filtered++ })
	b.Publish("x", values.Int(3))
	b.Publish("x", values.Int(7))
	b.Publish("y", values.Int(9))
	if all != 3 {
		t.Errorf("wildcard deliveries = %d", all)
	}
	if filtered != 1 {
		t.Errorf("filtered deliveries = %d", filtered)
	}
	published, delivered := b.Stats()
	if published != 3 || delivered != 4 {
		t.Errorf("stats = %d, %d", published, delivered)
	}
}

func TestBusCancelAndPublishSync(t *testing.T) {
	b := NewBus()
	calls := 0
	cancel := b.Subscribe("t", nil, func(Event) { calls++ })
	if err := b.PublishSync("t", values.Null()); err != nil {
		t.Errorf("PublishSync = %v", err)
	}
	cancel()
	if err := b.PublishSync("t", values.Null()); !errors.Is(err, ErrNoSubscriber) {
		t.Errorf("after cancel = %v", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestBusOrderingPerSubscriber(t *testing.T) {
	b := NewBus()
	var seqs []uint64
	b.Subscribe("t", nil, func(ev Event) { seqs = append(seqs, ev.Seq) })
	for i := 0; i < 10; i++ {
		b.Publish("t", values.Int(int64(i)))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence not monotonic: %v", seqs)
		}
	}
}

func TestBusConcurrentPublishers(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	n := 0
	b.Subscribe("t", nil, func(Event) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.Publish("t", values.Null())
			}
		}()
	}
	wg.Wait()
	if n != 400 {
		t.Errorf("deliveries = %d", n)
	}
}

// ---------------------------------------------------------------------------
// replica groups

// fakeInvoker is a deterministic in-process replica.
type fakeInvoker struct {
	mu     sync.Mutex
	state  int64
	fail   bool
	closed bool
	calls  int
	warp   int64 // divergence injection: offsets results
}

func (f *fakeInvoker) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.fail {
		return "", nil, errors.New("replica down")
	}
	switch op {
	case "Inc":
		d, _ := args[0].AsInt()
		f.state += d
		return "OK", []values.Value{values.Int(f.state + f.warp)}, nil
	case "Get":
		return "OK", []values.Value{values.Int(f.state + f.warp)}, nil
	}
	return "", nil, fmt.Errorf("unknown op %s", op)
}

func (f *fakeInvoker) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func TestReplicaGroupUpdatesAllMembers(t *testing.T) {
	g := NewReplicaGroup()
	replicas := []*fakeInvoker{{}, {}, {}}
	for i, r := range replicas {
		if err := g.Add(fmt.Sprintf("r%d", i), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Add("r0", &fakeInvoker{}); err == nil {
		t.Error("duplicate member should fail")
	}
	ctx := context.Background()
	term, res, err := g.Invoke(ctx, "Inc", []values.Value{values.Int(5)})
	if err != nil || term != "OK" {
		t.Fatalf("Invoke = %q, %v, %v", term, res, err)
	}
	for i, r := range replicas {
		if r.state != 5 {
			t.Errorf("replica %d state = %d", i, r.state)
		}
	}
	// Reads rotate across replicas.
	for i := 0; i < 3; i++ {
		if _, _, err := g.InvokeRead(ctx, "Get", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range replicas {
		if r.calls != 2 { // one update + one rotated read each
			t.Errorf("replica %d calls = %d, want 2", i, r.calls)
		}
	}
}

func TestReplicaGroupMasksFailures(t *testing.T) {
	g := NewReplicaGroup()
	healthy := &fakeInvoker{}
	sick := &fakeInvoker{fail: true}
	if err := g.Add("healthy", healthy); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("sick", sick); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	term, _, err := g.Invoke(ctx, "Inc", []values.Value{values.Int(1)})
	if err != nil || term != "OK" {
		t.Fatalf("update with sick replica = %q, %v", term, err)
	}
	if g.Size() != 1 {
		t.Errorf("group size after failover = %d", g.Size())
	}
	if !sick.closed {
		t.Error("failed replica should be closed")
	}
	if st := g.Stats(); st.Failovers != 1 || st.Updates != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Reads fail over too.
	g2 := NewReplicaGroup()
	if err := g2.Add("sick", &fakeInvoker{fail: true}); err != nil {
		t.Fatal(err)
	}
	if err := g2.Add("ok", &fakeInvoker{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g2.InvokeRead(ctx, "Get", nil); err != nil {
		t.Errorf("read failover = %v", err)
	}
	if g2.Size() != 1 {
		t.Errorf("size after read failover = %d", g2.Size())
	}
}

func TestReplicaGroupDetectsDivergence(t *testing.T) {
	g := NewReplicaGroup()
	if err := g.Add("a", &fakeInvoker{}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", &fakeInvoker{warp: 100}); err != nil {
		t.Fatal(err)
	}
	_, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v", err)
	}
	if st := g.Stats(); st.Divergences != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReplicaGroupEmpty(t *testing.T) {
	g := NewReplicaGroup()
	ctx := context.Background()
	if _, _, err := g.Invoke(ctx, "Inc", nil); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("empty invoke = %v", err)
	}
	if _, _, err := g.InvokeRead(ctx, "Get", nil); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("empty read = %v", err)
	}
	if err := g.Remove("ghost"); !errors.Is(err, ErrNoSuchGroup) {
		t.Errorf("remove ghost = %v", err)
	}
	// All members failing leaves the group empty mid-call.
	if err := g.Add("a", &fakeInvoker{fail: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Invoke(ctx, "Inc", []values.Value{values.Int(1)}); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("all-dead invoke = %v", err)
	}
}

func TestReplicaGroupRemoveAndClose(t *testing.T) {
	g := NewReplicaGroup()
	a, b := &fakeInvoker{}, &fakeInvoker{}
	if err := g.Add("a", a); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", b); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove("a"); err != nil || !a.closed {
		t.Errorf("remove: %v, closed=%v", err, a.closed)
	}
	if err := g.Close(); err != nil || !b.closed {
		t.Errorf("close: %v, closed=%v", err, b.closed)
	}
	if g.Size() != 0 {
		t.Errorf("size = %d", g.Size())
	}
}

// ---------------------------------------------------------------------------
// checkpoint & recovery (against real engineering clusters)

type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == "Inc" {
		d, _ := args[0].AsInt()
		c.n += d
	}
	return "OK", []values.Value{values.Int(c.n)}, nil
}

func (c *counter) CheckpointState() (values.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return values.Int(c.n), nil
}

func (c *counter) RestoreState(v values.Value) error {
	n, ok := v.AsInt()
	if !ok {
		return errors.New("bad state")
	}
	c.mu.Lock()
	c.n = n
	c.mu.Unlock()
	return nil
}

func counterIface() *types.Interface {
	return types.OpInterface("Counter",
		types.Op("Inc", types.Params(types.P("d", values.TInt())), types.Term("OK", types.P("n", values.TInt()))),
		types.Op("Get", nil, types.Term("OK", types.P("n", values.TInt()))),
	)
}

func newNode(t *testing.T, net *netsim.Network, reloc *relocator.Relocator, name string) *engineering.Node {
	t.Helper()
	n, err := engineering.NewNode(engineering.NodeConfig{
		ID:        naming.NodeID(name),
		Endpoint:  naming.Endpoint("sim://" + name),
		Transport: net.From(name),
		Locations: reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) { return &counter{}, nil })
	t.Cleanup(func() { n.Close() })
	return n
}

func TestCheckpointStoreAndRecovery(t *testing.T) {
	net := netsim.New(1)
	reloc := relocator.New()
	nodeA := newNode(t, net, reloc, "alpha")
	nodeB := newNode(t, net, reloc, "beta")

	capA, _ := nodeA.CreateCapsule()
	k, err := capA.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := k.CreateObject("counter", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := obj.AddInterface(counterIface())
	if err != nil {
		t.Fatal(err)
	}
	bnd, err := nodeA.Bind(ref, channel.BindConfig{Locator: reloc, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer bnd.Close()
	ctx := context.Background()
	if _, _, err := bnd.Invoke(ctx, "Inc", []values.Value{values.Int(42)}); err != nil {
		t.Fatal(err)
	}

	cs := NewCheckpointStore()
	if err := CheckpointNow(k, cs); err != nil {
		t.Fatal(err)
	}
	if cs.Saves() != 1 || len(cs.Keys()) != 1 {
		t.Errorf("store = %d saves, keys %v", cs.Saves(), cs.Keys())
	}
	key := cs.Keys()[0]

	// A later, post-checkpoint update will be lost by recovery — that is
	// the recovery point contract.
	if _, _, err := bnd.Invoke(ctx, "Inc", []values.Value{values.Int(1)}); err != nil {
		t.Fatal(err)
	}

	// The node dies; recover the cluster on beta from the checkpoint.
	if err := nodeA.Close(); err != nil {
		t.Fatal(err)
	}
	capB, _ := nodeB.CreateCapsule()
	if _, err := RecoverCluster(capB, cs, key, engineering.ClusterOptions{}); err != nil {
		t.Fatalf("RecoverCluster: %v", err)
	}
	term, res, err := bnd.Invoke(ctx, "Get", nil)
	if err != nil || term != "OK" {
		t.Fatalf("Get after recovery = %q, %v", term, err)
	}
	if n, _ := res[0].AsInt(); n != 42 {
		t.Errorf("recovered state = %d, want 42 (checkpoint value)", n)
	}

	if _, err := cs.Load("ghost"); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("missing load = %v", err)
	}
	if _, err := RecoverCluster(capB, cs, "ghost", engineering.ClusterOptions{}); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("missing recover = %v", err)
	}
}

func TestCheckpointerPeriodic(t *testing.T) {
	net := netsim.New(1)
	reloc := relocator.New()
	node := newNode(t, net, reloc, "alpha")
	capA, _ := node.CreateCapsule()
	k, err := capA.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateObject("counter", values.Null()); err != nil {
		t.Fatal(err)
	}
	cs := NewCheckpointStore()
	var g Checkpointer
	if err := g.Start(k, cs, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(k, cs, time.Millisecond); !errors.Is(err, ErrGuardRunning) {
		t.Errorf("double start = %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for cs.Saves() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	g.Stop()
	g.Stop() // idempotent
	if cs.Saves() < 2 {
		t.Errorf("saves = %d, want >= 2", cs.Saves())
	}
	// Restartable after stop.
	if err := g.Start(k, cs, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	g.Stop()
}

func TestReplicaGroupOverRealChannels(t *testing.T) {
	// Three replica objects on three nodes behind one group proxy: the
	// client sees a single interface; killing one node is masked.
	net := netsim.New(3)
	reloc := relocator.New()
	g := NewReplicaGroup()
	var nodes []*engineering.Node
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("node%d", i)
		n := newNode(t, net, reloc, name)
		nodes = append(nodes, n)
		cap1, _ := n.CreateCapsule()
		k, err := cap1.CreateCluster(engineering.ClusterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		obj, err := k.CreateObject("counter", values.Null())
		if err != nil {
			t.Fatal(err)
		}
		ref, err := obj.AddInterface(counterIface())
		if err != nil {
			t.Fatal(err)
		}
		bnd, err := n.Bind(ref, channel.BindConfig{Locator: reloc, CallTimeout: 200 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(name, bnd); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Close()
	ctx := context.Background()
	term, res, err := g.Invoke(ctx, "Inc", []values.Value{values.Int(7)})
	if err != nil || term != "OK" {
		t.Fatalf("group Invoke = %q, %v, %v", term, res, err)
	}
	// Kill one node: the next update masks the failure.
	if err := nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	term, res, err = g.Invoke(ctx, "Inc", []values.Value{values.Int(3)})
	if err != nil || term != "OK" {
		t.Fatalf("group Invoke after node death = %q, %v, %v", term, res, err)
	}
	if n, _ := res[0].AsInt(); n != 10 {
		t.Errorf("replicated state = %d, want 10", n)
	}
	if g.Size() != 2 {
		t.Errorf("group size = %d, want 2", g.Size())
	}
	// Reads still served.
	term, res, err = g.InvokeRead(ctx, "Get", nil)
	if err != nil || term != "OK" {
		t.Fatalf("group read = %q, %v", term, err)
	}
	if n, _ := res[0].AsInt(); n != 10 {
		t.Errorf("read state = %d", n)
	}
}
