// Replicated type repository: the Section 8.3.1 authority store served
// by a replica group. TypeGroup adapts a ReplicaGroup of repository
// members to the typerepo.Repository interface, so registrations run
// through the group's ticket-ordered fan-out (every member applies the
// same write stream in the same order) and reads fail over across
// members. It is the intended authority behind typerepo.NewReplicated:
// hot reads come from the front-end's gen-fenced local replicas, and the
// rare writes funnel through the group's total order.
//
// As with whitepages.go and trading.go, the adapter lives in
// coordination so typerepo stays a leaf package.
package coordination

import (
	"context"
	"fmt"

	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
)

// typeMember adapts a typerepo.Repository to Invoker via the repository
// servant vocabulary.
type typeMember struct {
	typerepo.Servant
}

var _ Invoker = (*typeMember)(nil)

// NewTypeMember wraps a repository as a replica-group member.
func NewTypeMember(r typerepo.Repository) Invoker {
	return &typeMember{typerepo.Servant{R: r}}
}

// Close implements Invoker; the repository's lifecycle belongs to its owner.
func (m *typeMember) Close() error { return nil }

// TypeGroup is a typerepo.Repository served by a replica group.
type TypeGroup struct {
	G *ReplicaGroup
}

var _ typerepo.Repository = (*TypeGroup)(nil)

// NewTypeGroup wraps a replica group of repository members.
func NewTypeGroup(g *ReplicaGroup) *TypeGroup { return &TypeGroup{G: g} }

// typeErr rehydrates the sentinel conditions the servant encodes in its
// terminations, so errors.Is works across the group boundary.
func typeErr(op, term string, res []values.Value) error {
	reason := "unknown"
	if len(res) == 1 {
		if s, ok := res[0].AsString(); ok {
			reason = s
		}
	}
	switch term {
	case "NotFound":
		return fmt.Errorf("%w: %s", typerepo.ErrNotFound, reason)
	case "Conflict":
		return fmt.Errorf("%w: %s", typerepo.ErrConflict, reason)
	}
	return fmt.Errorf("coordination: replicated typerepo %s failed: %s", op, reason)
}

func (g *TypeGroup) write(op string, args []values.Value) error {
	term, res, err := g.G.Invoke(context.Background(), op, args)
	if err != nil {
		return err
	}
	if term != "OK" {
		return typeErr(op, term, res)
	}
	return nil
}

func (g *TypeGroup) read(op string, args []values.Value) ([]values.Value, error) {
	term, res, err := g.G.InvokeRead(context.Background(), op, args)
	if err != nil {
		return nil, err
	}
	if term != "OK" {
		return nil, typeErr(op, term, res)
	}
	return res, nil
}

func strsFrom(v values.Value) []string {
	out := make([]string, 0, v.Len())
	for i := 0; i < v.Len(); i++ {
		s, _ := v.ElemAt(i).AsString()
		out = append(out, s)
	}
	return out
}

// RegisterInterface registers it on every member (sequenced).
func (g *TypeGroup) RegisterInterface(it *types.Interface) error {
	if it == nil {
		return fmt.Errorf("%w: nil interface", typerepo.ErrBadType)
	}
	return g.write("RegisterInterface", []values.Value{it.ToValue()})
}

// RegisterData registers a named data type on every member (sequenced).
func (g *TypeGroup) RegisterData(name string, dt *values.DataType) error {
	if dt == nil {
		return fmt.Errorf("%w: nil data type", typerepo.ErrBadType)
	}
	return g.write("RegisterData", []values.Value{values.Str(name), types.DataTypeToValue(dt)})
}

// DeclareSubtype records a declared edge on every member (sequenced).
func (g *TypeGroup) DeclareSubtype(sub, super string) error {
	return g.write("DeclareSubtype", []values.Value{values.Str(sub), values.Str(super)})
}

// Relate records a relationship on every member (sequenced).
func (g *TypeGroup) Relate(relation, from, to string) error {
	return g.write("Relate", []values.Value{values.Str(relation), values.Str(from), values.Str(to)})
}

// LookupInterface resolves an interface type from any live member.
func (g *TypeGroup) LookupInterface(name string) (*types.Interface, error) {
	res, err := g.read("LookupInterface", []values.Value{values.Str(name)})
	if err != nil {
		return nil, err
	}
	return types.InterfaceFromValue(res[0])
}

// LookupData resolves a data type from any live member.
func (g *TypeGroup) LookupData(name string) (*values.DataType, error) {
	res, err := g.read("LookupData", []values.Value{values.Str(name)})
	if err != nil {
		return nil, err
	}
	return types.DataTypeFromValue(res[0])
}

// IsSubtype asks any live member for the substitutability verdict.
func (g *TypeGroup) IsSubtype(sub, super string) (bool, error) {
	res, err := g.read("IsSubtype", []values.Value{values.Str(sub), values.Str(super)})
	if err != nil {
		return false, err
	}
	ok, _ := res[0].AsBool()
	return ok, nil
}

// Interfaces enumerates the registered interface names from any member.
func (g *TypeGroup) Interfaces() []string {
	res, err := g.read("Interfaces", nil)
	if err != nil {
		return nil
	}
	return strsFrom(res[0])
}

// Supertypes enumerates structural supertypes from any member.
func (g *TypeGroup) Supertypes(name string) ([]string, error) {
	res, err := g.read("Supertypes", []values.Value{values.Str(name)})
	if err != nil {
		return nil, err
	}
	return strsFrom(res[0]), nil
}

// Subtypes enumerates structural subtypes from any member.
func (g *TypeGroup) Subtypes(name string) ([]string, error) {
	res, err := g.read("Subtypes", []values.Value{values.Str(name)})
	if err != nil {
		return nil, err
	}
	return strsFrom(res[0]), nil
}

// DeclaredSupertypes enumerates declared supertypes from any member.
func (g *TypeGroup) DeclaredSupertypes(name string) []string {
	res, err := g.read("DeclaredSupertypes", []values.Value{values.Str(name)})
	if err != nil {
		return nil
	}
	return strsFrom(res[0])
}

// Related enumerates relationship targets from any member.
func (g *TypeGroup) Related(relation, from string) []string {
	res, err := g.read("Related", []values.Value{values.Str(relation), values.Str(from)})
	if err != nil {
		return nil
	}
	return strsFrom(res[0])
}

// Gen reads the generation fence from any live member. Members apply the
// same sequenced write stream, so their generations agree once the
// group's Invoke has returned — which is exactly when a front-end's next
// read consults the fence.
func (g *TypeGroup) Gen() uint64 {
	res, err := g.read("Gen", nil)
	if err != nil || len(res) != 1 {
		return 0
	}
	n, _ := res[0].AsInt()
	return uint64(n)
}
