// Package coordination implements the ODP coordination functions of
// Section 8.2 of the tutorial: event notification, groups and
// replication, and checkpoint-and-recovery (deactivation/reactivation and
// migration being provided by package engineering, and transactions by
// package transactions).
package coordination

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mgmt"
	"repro/internal/values"
)

// ErrNoSubscriber is returned by PublishSync when nobody listens.
var ErrNoSubscriber = errors.New("coordination: no subscriber for topic")

// Event is one notification: a topic plus a payload value.
type Event struct {
	Topic   string
	Payload values.Value
	Seq     uint64 // bus-assigned, totally ordered per bus
}

// Filter selects events a subscriber wants; nil accepts all.
type Filter func(Event) bool

// Bus is the event-notification function: typed publish/subscribe with
// per-subscriber filters. A Bus is safe for concurrent use.
//
// Two delivery modes exist. Subscribe registers an inline subscriber:
// delivery is synchronous and in publication order, so tests and
// coordinated functions (e.g. relocation watchers) see a deterministic
// sequence — but a slow inline subscriber holds up its publisher.
// SubscribeQueued registers a bounded-queue subscriber: Publish enqueues
// (never blocks) and a dedicated drain goroutine invokes the callback, so
// one slow subscriber can no longer stall publishers bus-wide. Events are
// enqueued while the bus lock that assigned their sequence number is
// still held, so each queued subscriber observes events in strictly
// ascending Seq order — the same order an inline subscriber would see —
// and a full queue drops the new event (counted in QueueStats) rather
// than blocking or reordering.
type Bus struct {
	mu      sync.Mutex
	nextSub int
	nextSeq uint64
	subs    map[int]*subscription

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	stalls    atomic.Uint64
	queued    atomic.Int64
	ins       atomic.Pointer[mgmt.BusInstruments]
}

type subscription struct {
	id     int
	topic  string // "" matches every topic
	filter Filter
	fn     func(Event)

	// Queued-mode fields; q == nil means inline synchronous delivery.
	q    chan Event
	done chan struct{} // closed when the drain goroutine exits
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*subscription)}
}

// Subscribe registers fn for events on topic (empty topic = all topics),
// optionally filtered. The returned function cancels the subscription.
func (b *Bus) Subscribe(topic string, filter Filter, fn func(Event)) (cancel func()) {
	b.mu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = &subscription{id: id, topic: topic, filter: filter, fn: fn}
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}

// SubscribeQueued registers fn behind a bounded delivery queue of the
// given capacity (minimum 1). Publish enqueues without blocking; a
// dedicated goroutine drains the queue and invokes fn, so a slow fn
// delays only this subscriber. When the queue is full the new event is
// dropped for this subscriber and counted in QueueStats().Dropped. The
// filter runs in the drain goroutine, off the publisher's path.
//
// Per-subscriber order: events arrive in strictly ascending Seq order
// (enqueueing happens under the same lock that assigns Seq), with gaps
// only where events were dropped or filtered.
//
// The returned cancel stops the subscription and blocks until every
// already-queued event has been delivered and the drain goroutine has
// exited, so callers can tear down without leaking goroutines.
func (b *Bus) SubscribeQueued(topic string, filter Filter, capacity int, fn func(Event)) (cancel func()) {
	if capacity < 1 {
		capacity = 1
	}
	s := &subscription{
		topic:  topic,
		filter: filter,
		fn:     fn,
		q:      make(chan Event, capacity),
		done:   make(chan struct{}),
	}
	go b.drain(s)
	b.mu.Lock()
	s.id = b.nextSub
	b.nextSub++
	b.subs[s.id] = s
	b.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, s.id)
			b.mu.Unlock()
			// No publisher can reach s.q any more (enqueues happen under
			// b.mu, and the subscription is gone), so closing it is safe
			// and lets the drain goroutine finish the backlog and exit.
			close(s.q)
			<-s.done
		})
	}
}

// drain is the per-queued-subscriber delivery loop.
func (b *Bus) drain(s *subscription) {
	defer close(s.done)
	for ev := range s.q {
		b.queued.Add(-1)
		if ins := b.ins.Load(); ins != nil {
			ins.QueueDepth.Add(-1)
		}
		if s.filter != nil && !s.filter(ev) {
			continue
		}
		s.fn(ev)
		b.delivered.Add(1)
	}
}

// Publish delivers an event to every matching subscriber and returns the
// number of deliveries (for a queued subscriber, a successful enqueue
// counts as a delivery; the callback runs asynchronously). Inline
// subscribers are called synchronously in subscription order; queued
// subscribers are enqueued under the sequencing lock, so each queue
// receives events in Seq order, and a full queue drops the event rather
// than stalling the publisher.
func (b *Bus) Publish(topic string, payload values.Value) int {
	b.mu.Lock()
	b.nextSeq++
	ev := Event{Topic: topic, Payload: payload, Seq: b.nextSeq}
	var inline []*subscription
	n, stalled := 0, false
	for _, s := range b.subs {
		if s.topic != "" && s.topic != topic {
			continue
		}
		if s.q == nil {
			inline = append(inline, s)
			continue
		}
		select {
		case s.q <- ev:
			b.queued.Add(1)
			if ins := b.ins.Load(); ins != nil {
				ins.QueueDepth.Add(1)
			}
			n++
		default:
			b.dropped.Add(1)
			stalled = true
			if ins := b.ins.Load(); ins != nil {
				ins.Dropped.Inc()
			}
		}
	}
	sort.Slice(inline, func(i, j int) bool { return inline[i].id < inline[j].id })
	b.mu.Unlock()
	b.published.Add(1)
	if stalled {
		b.stalls.Add(1)
	}
	if ins := b.ins.Load(); ins != nil {
		ins.Published.Inc()
	}

	ni := 0
	for _, s := range inline {
		if s.filter != nil && !s.filter(ev) {
			continue
		}
		s.fn(ev)
		ni++
	}
	// Atomic counters spare Publish a second lock round trip for the
	// delivery count (and keep Stats race-free against publishers).
	b.delivered.Add(uint64(ni))
	return n + ni
}

// PublishSync is Publish that fails when no subscriber received the event.
func (b *Bus) PublishSync(topic string, payload values.Value) error {
	if b.Publish(topic, payload) == 0 {
		return ErrNoSubscriber
	}
	return nil
}

// Stats returns (events published, deliveries made).
func (b *Bus) Stats() (published, delivered uint64) {
	return b.published.Load(), b.delivered.Load()
}

// BusStats is the full counter snapshot, including the bounded-queue
// accounting: Dropped counts events discarded at full subscriber queues,
// Stalls counts publishes that found at least one queue full, and Queued
// is the number of events currently sitting in subscriber queues.
type BusStats struct {
	Published uint64
	Delivered uint64
	Dropped   uint64
	Stalls    uint64
	Queued    int64
}

// QueueStats returns the full counter snapshot.
func (b *Bus) QueueStats() BusStats {
	return BusStats{
		Published: b.published.Load(),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
		Stalls:    b.stalls.Load(),
		Queued:    b.queued.Load(),
	}
}

// Instrument attaches (or detaches, with nil) a management bundle: a
// queue-depth gauge plus published/dropped counters.
func (b *Bus) Instrument(ins *mgmt.BusInstruments) {
	b.ins.Store(ins)
}
