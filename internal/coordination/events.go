// Package coordination implements the ODP coordination functions of
// Section 8.2 of the tutorial: event notification, groups and
// replication, and checkpoint-and-recovery (deactivation/reactivation and
// migration being provided by package engineering, and transactions by
// package transactions).
package coordination

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/values"
)

// ErrNoSubscriber is returned by PublishSync when nobody listens.
var ErrNoSubscriber = errors.New("coordination: no subscriber for topic")

// Event is one notification: a topic plus a payload value.
type Event struct {
	Topic   string
	Payload values.Value
	Seq     uint64 // bus-assigned, totally ordered per bus
}

// Filter selects events a subscriber wants; nil accepts all.
type Filter func(Event) bool

// Bus is the event-notification function: typed publish/subscribe with
// per-subscriber filters. Delivery is synchronous and in publication
// order, so tests and coordinated functions (e.g. relocation watchers)
// see a deterministic sequence. A Bus is safe for concurrent use.
type Bus struct {
	mu      sync.Mutex
	nextSub int
	nextSeq uint64
	subs    map[int]*subscription

	published atomic.Uint64
	delivered atomic.Uint64
}

type subscription struct {
	id     int
	topic  string // "" matches every topic
	filter Filter
	fn     func(Event)
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*subscription)}
}

// Subscribe registers fn for events on topic (empty topic = all topics),
// optionally filtered. The returned function cancels the subscription.
func (b *Bus) Subscribe(topic string, filter Filter, fn func(Event)) (cancel func()) {
	b.mu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = &subscription{id: id, topic: topic, filter: filter, fn: fn}
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.mu.Unlock()
	}
}

// Publish delivers an event to every matching subscriber and returns the
// number of deliveries.
func (b *Bus) Publish(topic string, payload values.Value) int {
	b.mu.Lock()
	b.nextSeq++
	ev := Event{Topic: topic, Payload: payload, Seq: b.nextSeq}
	matching := make([]*subscription, 0, len(b.subs))
	for _, s := range b.subs {
		if s.topic == "" || s.topic == topic {
			matching = append(matching, s)
		}
	}
	sort.Slice(matching, func(i, j int) bool { return matching[i].id < matching[j].id })
	b.mu.Unlock()
	b.published.Add(1)

	n := 0
	for _, s := range matching {
		if s.filter != nil && !s.filter(ev) {
			continue
		}
		s.fn(ev)
		n++
	}
	// Atomic counters spare Publish a second lock round trip for the
	// delivery count (and keep Stats race-free against publishers).
	b.delivered.Add(uint64(n))
	return n
}

// PublishSync is Publish that fails when no subscriber received the event.
func (b *Bus) PublishSync(topic string, payload values.Value) error {
	if b.Publish(topic, payload) == 0 {
		return ErrNoSubscriber
	}
	return nil
}

// Stats returns (events published, deliveries made).
func (b *Bus) Stats() (published, delivered uint64) {
	return b.published.Load(), b.delivered.Load()
}
