package coordination

import (
	"sync"
	"testing"

	"repro/internal/values"
)

// TestBusStatsUnderContention publishes from many goroutines while
// another reads Stats concurrently: the counters are atomics, so the
// reader never blocks publishers and the final tallies are exact
// (run with -race).
func TestBusStatsUnderContention(t *testing.T) {
	b := NewBus()
	b.Subscribe("t", nil, func(Event) {})
	b.Subscribe("t", nil, func(Event) {})

	const workers, per = 8, 100
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				b.Stats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish("t", values.Null())
			}
		}()
	}
	wg.Wait()
	close(done)

	published, delivered := b.Stats()
	if published != workers*per || delivered != 2*workers*per {
		t.Fatalf("stats = %d published / %d delivered, want %d / %d",
			published, delivered, workers*per, 2*workers*per)
	}
}
