package coordination

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/values"
)

// Group error sentinels.
var (
	ErrEmptyGroup  = errors.New("coordination: replica group has no live members")
	ErrDiverged    = errors.New("coordination: replicas returned divergent results")
	ErrNoSuchGroup = errors.New("coordination: unknown member")
)

// Invoker is the client end of a channel to one replica;
// *channel.Binding satisfies it.
type Invoker interface {
	Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error)
	Close() error
}

// GroupStats counts replica-group activity.
type GroupStats struct {
	Updates     uint64
	Reads       uint64
	Failovers   uint64 // members skipped or dropped after failure
	Divergences uint64 // update replies that disagreed across replicas
}

// ReplicaGroup realises replication transparency (Section 9): it
// "maintains consistency of a group of replica objects with a common
// interface" while presenting the interface of a single object.
//
// The mechanism is active replication behind a sequencer: the group proxy
// serialises updates (it is the sequencer) and applies each to every live
// replica in the same order, so deterministic replicas stay identical.
// Replies are compared; divergence is counted and reported. Reads go to a
// single replica, rotating for load and failing over on error.
type ReplicaGroup struct {
	mu      sync.Mutex
	members []member
	next    int // read rotation cursor

	updates     uint64
	reads       uint64
	failovers   uint64
	divergences uint64
}

type member struct {
	name string
	inv  Invoker
}

// NewReplicaGroup returns an empty group.
func NewReplicaGroup() *ReplicaGroup { return &ReplicaGroup{} }

// Add attaches a replica under a unique name.
func (g *ReplicaGroup) Add(name string, inv Invoker) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m.name == name {
			return fmt.Errorf("coordination: member %q already in group", name)
		}
	}
	g.members = append(g.members, member{name: name, inv: inv})
	return nil
}

// Remove detaches a replica and closes its channel.
func (g *ReplicaGroup) Remove(name string) error {
	g.mu.Lock()
	for i, m := range g.members {
		if m.name == name {
			g.members = append(g.members[:i], g.members[i+1:]...)
			g.mu.Unlock()
			return m.inv.Close()
		}
	}
	g.mu.Unlock()
	return fmt.Errorf("%w: %q", ErrNoSuchGroup, name)
}

// Size returns the number of attached replicas.
func (g *ReplicaGroup) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Invoke applies an update to every replica in one total order (the group
// lock is the sequencer). Failed replicas are dropped from the group —
// that is the failure-masking half of replication transparency. The reply
// is the first successful one; disagreement among successful replies is
// counted as divergence and reported as an error.
func (g *ReplicaGroup) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.updates++
	if len(g.members) == 0 {
		return "", nil, ErrEmptyGroup
	}
	type result struct {
		term string
		res  []values.Value
	}
	var first *result
	survivors := g.members[:0]
	diverged := false
	for _, m := range g.members {
		term, res, err := m.inv.Invoke(ctx, op, args)
		if err != nil {
			g.failovers++
			_ = m.inv.Close()
			continue // drop the failed replica
		}
		survivors = append(survivors, m)
		if first == nil {
			first = &result{term: term, res: res}
			continue
		}
		if term != first.term || len(res) != len(first.res) {
			diverged = true
			continue
		}
		for i := range res {
			if !res[i].Equal(first.res[i]) {
				diverged = true
				break
			}
		}
	}
	g.members = survivors
	if first == nil {
		return "", nil, ErrEmptyGroup
	}
	if diverged {
		g.divergences++
		return "", nil, fmt.Errorf("%w: operation %s", ErrDiverged, op)
	}
	return first.term, first.res, nil
}

// InvokeRead sends a read-only operation to one replica, rotating across
// members and failing over (and dropping) dead ones.
func (g *ReplicaGroup) InvokeRead(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.reads++
	for len(g.members) > 0 {
		idx := g.next % len(g.members)
		m := g.members[idx]
		term, res, err := m.inv.Invoke(ctx, op, args)
		if err == nil {
			g.next = (idx + 1) % len(g.members)
			return term, res, nil
		}
		g.failovers++
		_ = m.inv.Close()
		g.members = append(g.members[:idx], g.members[idx+1:]...)
	}
	return "", nil, ErrEmptyGroup
}

// Close releases every member channel.
func (g *ReplicaGroup) Close() error {
	g.mu.Lock()
	members := g.members
	g.members = nil
	g.mu.Unlock()
	var first error
	for _, m := range members {
		if err := m.inv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of group counters.
func (g *ReplicaGroup) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{
		Updates:     g.updates,
		Reads:       g.reads,
		Failovers:   g.failovers,
		Divergences: g.divergences,
	}
}
