package coordination

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mgmt"
	"repro/internal/policy"
	"repro/internal/values"
)

// Group error sentinels.
var (
	ErrEmptyGroup  = errors.New("coordination: replica group has no live members")
	ErrDiverged    = errors.New("coordination: replicas returned divergent results")
	ErrNoSuchGroup = errors.New("coordination: unknown member")
)

// Invoker is the client end of a channel to one replica;
// *channel.Binding satisfies it.
type Invoker interface {
	Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error)
	Close() error
}

// maxFanout bounds the goroutines any single group operation spawns; a
// fan-out wider than this is served by maxFanout workers pulling members
// from a shared cursor.
const maxFanout = 16

// GroupStats counts replica-group activity.
type GroupStats struct {
	Updates       uint64
	Reads         uint64
	Failovers     uint64 // members skipped or dropped after failure
	Divergences   uint64 // update replies that disagreed across replicas
	SkippedLegs   uint64 // update legs not attempted because a member's circuit was open
	DegradedReads uint64 // reads served with the staleness flag set
}

// MemberPolicy is the group's failure policy: per-member circuit breakers
// (keyed by member name, typically shared with other groups through one
// BreakerSet) and what to do with members that fail.
type MemberPolicy struct {
	// Breakers gates each member: an update skips members whose breaker is
	// open instead of burning a timeout on them, and the member's half-open
	// probe is re-admitted through OnRejoin.
	Breakers *policy.BreakerSet
	// Retain keeps failed members in the group (recorded against their
	// breaker) instead of dropping and closing them — the mode that lets a
	// crashed replica rejoin after restart. Without breakers, retained dead
	// members are retried on every update, so Retain normally rides with
	// Breakers.
	Retain bool
	// OnRejoin, when set, runs before a member whose breaker grants its
	// half-open probe participates in an update again — the hook where the
	// returning replica's state is caught up (checkpoint recovery, state
	// transfer). A non-nil error counts as a failed probe: the breaker
	// re-opens and the member sits out this update.
	OnRejoin func(ctx context.Context, name string, inv Invoker) error
}

// ReadMeta describes how a degraded-capable read was served.
type ReadMeta struct {
	Member    string // replica that answered
	Stale     bool   // answer may lag: members were skipped/failed, or quorum is gone
	Skipped   int    // members passed over because their circuit was open
	Failovers int    // members that failed before one answered
}

// ReplicaGroup realises replication transparency (Section 9): it
// "maintains consistency of a group of replica objects with a common
// interface" while presenting the interface of a single object.
//
// The mechanism is active replication behind a sequencer: the group proxy
// serialises updates (it is the sequencer) and applies each to every live
// replica in the same order, so deterministic replicas stay identical.
// The sequencer holds the group lock only long enough to assign the
// update its place in the total order and snapshot the membership; the
// update itself then fans out to all replicas concurrently, so one update
// costs max(replica round trip), not the sum. A per-group ticket keeps
// fan-outs strictly in sequence order — replica i receives update k+1
// only after every replica has finished update k — which is what keeps
// deterministic replicas identical under concurrent callers.
//
// Replies are compared; divergence is counted and reported. Reads go to a
// single replica, rotating for load and failing over on error, without
// ever waiting behind the sequencer — so a slow replica delays its own
// readers, not every reader. A read that overlaps an in-flight update may
// observe the pre-update state; reads after Invoke returns see the update
// on every replica.
//
// The group holds one Invoker per replica interface, not per connection:
// when the members are channel bindings created over a shared session
// manager (transparency.Env.Sessions), fan-out to co-located replicas
// multiplexes over one transport session per node, so adding replicas on
// a node adds bindings, not connections.
type ReplicaGroup struct {
	mu      sync.Mutex
	members []member
	next    int    // read rotation cursor
	ticket  uint64 // next update sequence number to hand out

	// The sequencer's admission gate: fan-outs run one at a time, in
	// ticket order.
	seqMu   sync.Mutex
	seqCond *sync.Cond
	serving uint64 // ticket currently admitted to fan out

	peak int // largest membership ever seen; the quorum baseline

	updates       atomic.Uint64
	reads         atomic.Uint64
	failovers     atomic.Uint64
	divergences   atomic.Uint64
	skippedLegs   atomic.Uint64
	degradedReads atomic.Uint64

	insp atomic.Pointer[mgmt.GroupInstruments]
	mpol atomic.Pointer[MemberPolicy]
}

// SetMemberPolicy attaches (nil detaches) the group's failure policy.
// Safe to call at any time; updates snapshot it per invocation.
func (g *ReplicaGroup) SetMemberPolicy(mp *MemberPolicy) {
	g.mpol.Store(mp)
}

// Instrument attaches management instruments to the group (update spans,
// per-replica child spans, fan-out metrics). Safe to call at any time;
// nil detaches.
func (g *ReplicaGroup) Instrument(ins *mgmt.GroupInstruments) {
	g.insp.Store(ins)
}

type member struct {
	name string
	inv  Invoker
}

// NewReplicaGroup returns an empty group.
func NewReplicaGroup() *ReplicaGroup {
	g := &ReplicaGroup{}
	g.seqCond = sync.NewCond(&g.seqMu)
	return g
}

// Add attaches a replica under a unique name.
func (g *ReplicaGroup) Add(name string, inv Invoker) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m.name == name {
			return fmt.Errorf("coordination: member %q already in group", name)
		}
	}
	g.members = append(g.members, member{name: name, inv: inv})
	if len(g.members) > g.peak {
		g.peak = len(g.members)
	}
	return nil
}

// Remove detaches a replica and closes its channel.
func (g *ReplicaGroup) Remove(name string) error {
	g.mu.Lock()
	for i, m := range g.members {
		if m.name == name {
			copy(g.members[i:], g.members[i+1:])
			last := len(g.members) - 1
			g.members[last] = member{} // clear the vacated slot
			g.members = g.members[:last]
			g.mu.Unlock()
			return m.inv.Close()
		}
	}
	g.mu.Unlock()
	return fmt.Errorf("%w: %q", ErrNoSuchGroup, name)
}

// Size returns the number of attached replicas.
func (g *ReplicaGroup) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// reply is one replica's answer to a fanned-out update.
type reply struct {
	term string
	res  []values.Value
	err  error
}

// fanout invokes op on every member of snap concurrently (bounded at
// maxFanout goroutines) and returns the collected replies, index-aligned
// with snap.
func fanout(ctx context.Context, tr *mgmt.Tracer, snap []member, op string, args []values.Value) []reply {
	replies := make([]reply, len(snap))
	// invokeOne runs one replica's leg under its own child span, so a trace
	// shows each replica's round trip separately inside the update.
	invokeOne := func(i int) {
		// The span name is built only when tracing: the concatenation would
		// otherwise allocate on every uninstrumented leg.
		cctx := ctx
		var sp *mgmt.ActiveSpan
		if tr != nil {
			cctx, sp = tr.Start(ctx, "replica:"+snap[i].name)
		}
		r := &replies[i]
		r.term, r.res, r.err = snap[i].inv.Invoke(cctx, op, args)
		sp.Fail(r.err)
		sp.End()
	}
	if len(snap) == 1 {
		invokeOne(0)
		return replies
	}
	workers := len(snap)
	if workers > maxFanout {
		workers = maxFanout
	}
	var cursor atomic.Int64
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(snap) {
				return
			}
			invokeOne(i)
		}
	}
	// The calling goroutine is one of the workers, so a fan-out of width w
	// spawns only w-1 goroutines.
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return replies
}

// Invoke applies an update to every replica in one total order (the
// ticket is the sequencer). Failed replicas are dropped from the group on
// completion — that is the failure-masking half of replication
// transparency. The reply is the first successful one; disagreement among
// successful replies is counted as divergence and reported as an error.
func (g *ReplicaGroup) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	g.updates.Add(1)
	ins := g.insp.Load()
	var tr *mgmt.Tracer
	if ins != nil {
		ins.Updates.Inc()
		tr = ins.Tracer
	}

	// Serial section: assign the sequence number, snapshot the membership.
	g.mu.Lock()
	if len(g.members) == 0 {
		g.mu.Unlock()
		return "", nil, ErrEmptyGroup
	}
	ticket := g.ticket
	g.ticket++
	snap := make([]member, len(g.members))
	copy(snap, g.members)
	g.mu.Unlock()

	// The update span covers the wait for the total order plus the whole
	// fan-out; each replica leg is a child span.
	uctx := ctx
	var usp *mgmt.ActiveSpan
	if tr != nil {
		uctx, usp = tr.Start(ctx, "replica.update:"+op)
	}

	// Wait for this update's place in the total order, fan out, release.
	g.seqMu.Lock()
	for g.serving != ticket {
		g.seqCond.Wait()
	}
	g.seqMu.Unlock()

	// Inside the sequence slot: gate each member on its breaker. Members
	// whose circuit is open sit the update out (a skipped leg, not a
	// failure); a member granted its half-open probe is first caught up by
	// OnRejoin, so it re-enters having seen every update before this one.
	mp := g.mpol.Load()
	legs := snap
	var brs []*policy.Breaker
	skipped := 0
	if mp != nil && mp.Breakers != nil {
		legs = make([]member, 0, len(snap))
		brs = make([]*policy.Breaker, 0, len(snap))
		for _, m := range snap {
			br := mp.Breakers.For(m.name)
			ok, probe := br.Allow()
			if !ok {
				skipped++
				continue
			}
			if probe && mp.OnRejoin != nil {
				if rerr := mp.OnRejoin(uctx, m.name, m.inv); rerr != nil {
					br.Record(false)
					skipped++
					continue
				}
			}
			legs = append(legs, m)
			brs = append(brs, br)
		}
	}
	var replies []reply
	if len(legs) > 0 {
		replies = fanout(uctx, tr, legs, op, args)
	}

	g.seqMu.Lock()
	g.serving++
	g.seqMu.Unlock()
	g.seqCond.Broadcast()

	for i := range brs {
		brs[i].Record(replies[i].err == nil)
	}
	if skipped > 0 {
		g.skippedLegs.Add(uint64(skipped))
	}
	if len(legs) == 0 {
		err := fmt.Errorf("%w: all %d replicas of the group", policy.ErrCircuitOpen, len(snap))
		usp.Fail(err)
		endUpdate(ins, usp)
		return "", nil, err
	}

	// Post-processing is local: detect divergence on the collected set,
	// then drop the replicas that failed (unless the policy retains them
	// for a later rejoin).
	var first *reply
	var failed []member
	diverged := false
	for i := range replies {
		r := &replies[i]
		if r.err != nil {
			failed = append(failed, legs[i])
			continue
		}
		if first == nil {
			first = r
			continue
		}
		if r.term != first.term || len(r.res) != len(first.res) {
			diverged = true
			continue
		}
		for j := range r.res {
			if !r.res[j].Equal(first.res[j]) {
				diverged = true
				break
			}
		}
	}
	if len(failed) > 0 {
		g.failovers.Add(uint64(len(failed)))
		if ins != nil {
			ins.Failovers.Add(uint64(len(failed)))
		}
		if mp == nil || !mp.Retain {
			g.drop(failed)
			for _, m := range failed {
				_ = m.inv.Close()
			}
		}
	}
	if first == nil {
		usp.Fail(ErrEmptyGroup)
		endUpdate(ins, usp)
		return "", nil, ErrEmptyGroup
	}
	if diverged {
		g.divergences.Add(1)
		err := fmt.Errorf("%w: operation %s", ErrDiverged, op)
		usp.Fail(err)
		endUpdate(ins, usp)
		return "", nil, err
	}
	endUpdate(ins, usp)
	return first.term, first.res, nil
}

// endUpdate finishes an update span and feeds its duration to the group's
// latency histogram (both halves tolerate the disabled, nil case).
func endUpdate(ins *mgmt.GroupInstruments, usp *mgmt.ActiveSpan) {
	d := usp.End()
	if ins != nil {
		ins.UpdateLatency.ObserveDuration(d)
	}
}

// drop removes the given members, matching by identity as well as name so
// a replica re-added under a reused name is not removed by a stale
// failure. Vacated tail slots are cleared so dropped invokers can be
// collected.
func (g *ReplicaGroup) drop(failed []member) {
	g.mu.Lock()
	kept := g.members[:0]
	for _, m := range g.members {
		dead := false
		for _, f := range failed {
			if f.name == m.name && f.inv == m.inv {
				dead = true
				break
			}
		}
		if !dead {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(g.members); i++ {
		g.members[i] = member{}
	}
	g.members = kept
	g.mu.Unlock()
}

// InvokeRead sends a read-only operation to one replica, rotating across
// members and failing over (and, without a retaining member policy,
// dropping) dead ones. The group lock is held only to pick the replica,
// never across the network call, so readers proceed in parallel with
// each other and with in-flight updates.
func (g *ReplicaGroup) InvokeRead(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	term, res, _, err := g.InvokeReadMeta(ctx, op, args)
	return term, res, err
}

// InvokeReadMeta is InvokeRead plus the degraded-read metadata of failure
// transparency's weak mode: when replicas are partitioned away or
// circuit-open, the read is still served from a surviving replica, but
// the answer is flagged Stale — it may predate updates the unreachable
// majority could have seen. One full rotation over the membership
// snapshot bounds the attempt count.
func (g *ReplicaGroup) InvokeReadMeta(ctx context.Context, op string, args []values.Value) (string, []values.Value, ReadMeta, error) {
	g.reads.Add(1)
	var meta ReadMeta
	mp := g.mpol.Load()

	g.mu.Lock()
	if len(g.members) == 0 {
		g.mu.Unlock()
		return "", nil, meta, ErrEmptyGroup
	}
	snap := make([]member, len(g.members))
	copy(snap, g.members)
	start := g.next % len(snap)
	g.next = (start + 1) % len(snap)
	peak := g.peak
	g.mu.Unlock()

	var lastErr error
	for k := 0; k < len(snap); k++ {
		m := snap[(start+k)%len(snap)]
		var br *policy.Breaker
		if mp != nil && mp.Breakers != nil {
			br = mp.Breakers.For(m.name)
			ok, probe := br.Allow()
			if !ok {
				meta.Skipped++
				lastErr = fmt.Errorf("%w: replica %s", policy.ErrCircuitOpen, m.name)
				continue
			}
			if probe && mp.OnRejoin != nil {
				// Re-admitting this member is the update path's job: only
				// there does OnRejoin replay missed state inside the update
				// sequence. A read that closed the breaker here would let a
				// stale replica rejoin the fan-out and diverge. Hand the
				// probe token back and read from a survivor instead.
				br.ReturnProbe()
				meta.Skipped++
				lastErr = fmt.Errorf("%w: replica %s awaiting rejoin", policy.ErrCircuitOpen, m.name)
				continue
			}
		}
		term, res, err := m.inv.Invoke(ctx, op, args)
		if br != nil {
			br.Record(err == nil)
		}
		if err == nil {
			meta.Member = m.name
			// Stale when the rotation had to pass over dead or circuit-open
			// members, or when the survivors no longer form a majority of
			// the group's peak membership — either way updates may exist
			// that this replica has not seen.
			live := len(snap) - meta.Skipped - meta.Failovers
			meta.Stale = meta.Skipped+meta.Failovers > 0 || live*2 <= peak
			if meta.Stale {
				g.degradedReads.Add(1)
				if ins := g.insp.Load(); ins != nil {
					if ins.DegradedReads != nil {
						ins.DegradedReads.Inc()
					}
					if ins.Tracer != nil {
						// The staleness flag in the trace: a zero-length
						// marker span under the read's context.
						_, sp := ins.Tracer.Start(ctx, "replica.read.stale:"+m.name)
						sp.End()
					}
				}
			}
			return term, res, meta, nil
		}
		meta.Failovers++
		g.failovers.Add(1)
		if ins := g.insp.Load(); ins != nil {
			ins.Failovers.Inc()
		}
		lastErr = err
		if ctx.Err() != nil {
			return "", nil, meta, ctx.Err()
		}
		if mp == nil || !mp.Retain {
			g.drop([]member{m})
			_ = m.inv.Close()
		}
	}
	if lastErr == nil {
		lastErr = ErrEmptyGroup
	}
	return "", nil, meta, lastErr
}

// Close releases every member channel.
func (g *ReplicaGroup) Close() error {
	g.mu.Lock()
	members := g.members
	g.members = nil
	g.mu.Unlock()
	var first error
	for _, m := range members {
		if err := m.inv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of group counters.
func (g *ReplicaGroup) Stats() GroupStats {
	return GroupStats{
		Updates:       g.updates.Load(),
		Reads:         g.reads.Load(),
		Failovers:     g.failovers.Load(),
		Divergences:   g.divergences.Load(),
		SkippedLegs:   g.skippedLegs.Load(),
		DegradedReads: g.degradedReads.Load(),
	}
}
