// Replicated white pages: one relocator shard served by a replica group.
// The relocator self-hosts on the repo's own machinery — a ReplicaGroup
// fans each update out to every replica in ticket order (with
// MemberPolicy breakers retaining dead members behind open circuits),
// and reads fail over across replicas. LocationGroup adapts that to the
// relocator.Store interface, speaking the same operation vocabulary as
// the wire servant, so a replica can be an in-process relocator (via
// NewLocationMember) or a remote one (via a channel binding)
// interchangeably.
//
// This adapter lives in coordination (not relocator) so the relocator
// stays a leaf the coordination tests can import without a cycle.
package coordination

import (
	"context"
	"fmt"

	"repro/internal/naming"
	"repro/internal/relocator"
	"repro/internal/values"
)

// locationMember adapts a relocator.Store to Invoker: the group's
// member-facing call surface is exactly the servant's operation
// vocabulary, so in-process replicas and channel-backed replicas mix
// freely in one group.
type locationMember struct {
	relocator.Servant
}

var _ Invoker = (*locationMember)(nil)

// NewLocationMember wraps a relocator store as a replica-group member.
func NewLocationMember(s relocator.Store) Invoker {
	return &locationMember{relocator.Servant{R: s}}
}

// Close implements Invoker; the underlying store's lifecycle belongs to
// its owner.
func (m *locationMember) Close() error { return nil }

// LocationGroup is a relocator.Store served by a replica group: updates
// (Register, Move, Remove) run through the group's sequenced fan-out,
// lookups through its failover read path. It satisfies channel.Locator
// and engineering.LocationRegistry the same way a single Relocator does.
type LocationGroup struct {
	G *ReplicaGroup
}

var (
	_ relocator.Store      = (*LocationGroup)(nil)
	_ relocator.Enumerable = (*LocationGroup)(nil)
)

// NewLocationGroup wraps a replica group of relocator replicas.
func NewLocationGroup(g *ReplicaGroup) *LocationGroup { return &LocationGroup{G: g} }

func locationFailure(op string, res []values.Value) error {
	reason := "unknown"
	if len(res) == 1 {
		if s, ok := res[0].AsString(); ok {
			reason = s
		}
	}
	return fmt.Errorf("coordination: replicated relocator %s failed: %s", op, reason)
}

// Register records a location on every replica (sequenced). A stale
// registration surfaces as *relocator.StaleError, same as a local
// relocator.
func (g *LocationGroup) Register(ref naming.InterfaceRef) error {
	term, res, err := g.G.Invoke(context.Background(), "Register", []values.Value{ref.ToValue()})
	if err != nil {
		return err
	}
	switch term {
	case "OK":
		return nil
	case "Stale":
		se := &relocator.StaleError{ID: ref.ID, Refused: ref.Epoch}
		if len(res) == 2 {
			if cur, ok := res[0].AsInt(); ok {
				se.Current = uint64(cur)
			}
			if got, ok := res[1].AsInt(); ok {
				se.Refused = uint64(got)
			}
		}
		return se
	}
	return locationFailure("Register", res)
}

// Lookup resolves a location from any live replica.
func (g *LocationGroup) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	term, res, err := g.G.InvokeRead(context.Background(), "Lookup", []values.Value{values.Str(id.String())})
	if err != nil {
		return naming.InterfaceRef{}, err
	}
	switch term {
	case "OK":
		return naming.RefFromValue(res[0])
	case "Unknown":
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", relocator.ErrUnknown, id)
	}
	return naming.InterfaceRef{}, locationFailure("Lookup", res)
}

// Move relocates an interface on every replica (sequenced).
func (g *LocationGroup) Move(id naming.InterfaceID, to naming.Endpoint) (naming.InterfaceRef, error) {
	term, res, err := g.G.Invoke(context.Background(), "Move", []values.Value{
		values.Str(id.String()), values.Str(string(to)),
	})
	if err != nil {
		return naming.InterfaceRef{}, err
	}
	switch term {
	case "OK":
		return naming.RefFromValue(res[0])
	case "Unknown":
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", relocator.ErrUnknown, id)
	}
	return naming.InterfaceRef{}, locationFailure("Move", res)
}

// Remove deletes a registration on every replica (sequenced; removal of
// an unknown id is a no-op, so errors are not surfaced — matching the
// announcement semantics of the wire operation).
func (g *LocationGroup) Remove(id naming.InterfaceID) {
	_, _, _ = g.G.Invoke(context.Background(), "Remove", []values.Value{values.Str(id.String())})
}

// Snapshot enumerates the registrations from any live replica.
func (g *LocationGroup) Snapshot() ([]naming.InterfaceRef, error) {
	term, res, err := g.G.InvokeRead(context.Background(), "Snapshot", nil)
	if err != nil {
		return nil, err
	}
	if term != "OK" {
		return nil, locationFailure("Snapshot", res)
	}
	seq := res[0]
	out := make([]naming.InterfaceRef, 0, seq.Len())
	for i := 0; i < seq.Len(); i++ {
		ref, err := naming.RefFromValue(seq.ElemAt(i))
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
	}
	return out, nil
}
