package coordination

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/policy"
	"repro/internal/trader"
	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
)

// flakyInvoker injects member failures on demand: while tripped, every
// sequenced leg to this member errors, so its breaker opens and the next
// grant after healing goes through the OnRejoin catch-up path.
type flakyInvoker struct {
	Invoker
	fail atomic.Bool
}

func (f *flakyInvoker) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if f.fail.Load() {
		return "", nil, errors.New("flaky: injected member failure")
	}
	return f.Invoker.Invoke(ctx, op, args)
}

// TestOnRejoinRacesRingEpoch drives a replica-group trader shard through
// member flapping (breaker open → half-open probe → OnRejoin catch-up)
// while the hashring above it changes epochs: shards join and drain away,
// and finally the group shard itself is removed from the ring while the
// flapping member is mid-rejoin. The catch-up mirrors the healthy
// replica's current offers into the returning one — it must never
// resurrect an offer the ring has already reassigned to another shard.
// Post-drain, both replicas must converge to empty, the ring must still
// resolve every service exactly once, and the group's sequenced updates
// must never have diverged. Run under -race: the interleavings are the
// test.
func TestOnRejoinRacesRingEpoch(t *testing.T) {
	const nSvc = 12
	svcName := func(i int) string { return fmt.Sprintf("RejoinSvc%02d", i) }
	repo := typerepo.New()
	for i := 0; i < nSvc; i++ {
		// Subtyping is structural: each type needs a marker operation of
		// its own or the n services all substitute for each other.
		it := types.OpInterface(svcName(i),
			types.Announce("Poke", types.P("x", values.TInt())),
			types.Announce(fmt.Sprintf("Mark%02d", i)))
		if err := repo.RegisterInterface(it); err != nil {
			t.Fatal(err)
		}
	}
	ref := func(i int) naming.InterfaceRef {
		return naming.InterfaceRef{
			ID:       naming.InterfaceID{Nonce: uint64(9000 + i)},
			TypeName: svcName(i),
			Endpoint: "sim://nowhere",
		}
	}

	fe := trader.NewSharded("fe", repo, 0)
	if err := fe.AddShard("s0", trader.New("s0", repo)); err != nil {
		t.Fatal(err)
	}

	// The group shard: two in-process trader replicas sharing the name
	// "g" (identical minted ids under the sequenced update stream), the
	// second one behind the failure injector.
	tg0, tg1 := trader.New("g", repo), trader.New("g", repo)
	m1 := &flakyInvoker{Invoker: NewTradingMember(tg1)}
	group := NewReplicaGroup()
	if err := group.Add("m0", NewTradingMember(tg0)); err != nil {
		t.Fatal(err)
	}
	if err := group.Add("m1", m1); err != nil {
		t.Fatal(err)
	}

	// OnRejoin is the state-transfer hook: mirror the healthy replica's
	// current offer set into the returning member. It runs inside the
	// update's sequence slot, so tg0 is quiescent while it reads — the
	// property that keeps the catch-up from resurrecting offers a
	// concurrent drain already withdrew.
	var rejoins atomic.Int64
	catchUp := func(context.Context, string, Invoker) error {
		rejoins.Add(1)
		for i := 0; i < nSvc; i++ {
			req := trader.ImportRequest{ServiceType: svcName(i)}
			want, err := tg0.Import(req)
			if err != nil {
				return err
			}
			have, err := tg1.Import(req)
			if err != nil {
				return err
			}
			haveIDs := make(map[string]bool, len(have))
			for _, o := range have {
				haveIDs[o.ID] = true
			}
			wantIDs := make(map[string]bool, len(want))
			for _, o := range want {
				wantIDs[o.ID] = true
				if !haveIDs[o.ID] {
					if err := tg1.Install(o); err != nil {
						return err
					}
				}
			}
			for id := range haveIDs {
				if !wantIDs[id] {
					if err := tg1.Withdraw(id); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	group.SetMemberPolicy(&MemberPolicy{
		Breakers: policy.NewBreakerSet(policy.BreakerConfig{
			ConsecutiveFailures: 1,
			OpenFor:             300 * time.Microsecond,
		}),
		Retain:   true,
		OnRejoin: catchUp,
	})
	tgs := NewTradingGroup(group)
	if err := fe.AddShard("g", tgs); err != nil {
		t.Fatal(err)
	}

	offers := make([]trader.Offer, nSvc)
	for i := 0; i < nSvc; i++ {
		if _, err := fe.Export(svcName(i), ref(i), values.Null()); err != nil {
			t.Fatal(err)
		}
		os, err := fe.Import(trader.ImportRequest{ServiceType: svcName(i)})
		if err != nil || len(os) != 1 {
			t.Fatalf("setup import %s: %v (%d offers)", svcName(i), err, len(os))
		}
		offers[i] = os[0]
	}

	// Phase 1: flap the member and hammer sequenced updates (idempotent
	// reinstalls through the front-end) while plain shards join and drain
	// away — every AddShard/RemoveShard is a ring epoch change migrating
	// live offers while OnRejoin fires.
	var stopWorker, stopFlap atomic.Bool
	var workerWG, flapWG sync.WaitGroup
	workerWG.Add(1)
	go func() {
		defer workerWG.Done()
		for i := 0; !stopWorker.Load(); i++ {
			// Failures while the group is degraded are the storm, not a
			// test failure; the final state assertions are the oracle.
			_ = fe.Install(offers[i%nSvc])
		}
	}()
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		for !stopFlap.Load() {
			m1.fail.Store(true)
			time.Sleep(200 * time.Microsecond)
			m1.fail.Store(false)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("x%d", i)
		if err := fe.AddShard(name, trader.New(name, repo)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if err := fe.RemoveShard(name); err != nil {
			t.Fatal(err)
		}
	}
	stopWorker.Store(true)
	workerWG.Wait()

	// Phase 2: the title race. Remove the group shard from the ring while
	// its member is still flapping — the drain's sequenced withdraw
	// stream interleaves with half-open probes and OnRejoin catch-ups.
	if err := fe.RemoveShard("g"); err != nil {
		t.Fatal(err)
	}
	stopFlap.Store(true)
	flapWG.Wait()
	m1.fail.Store(false)

	// Convergence kick: off the ring, the group still sequences updates.
	// Each no-op withdraw admits the pending half-open probe, so the
	// final OnRejoin syncs the flapped member to the healthy (drained)
	// one. Both replicas must reach empty — any offer left is one the
	// catch-up resurrected after the ring reassigned it.
	deadline := time.Now().Add(5 * time.Second)
	for tg0.Len() != 0 || tg1.Len() != 0 {
		_ = tgs.Withdraw("g/nosuch") // term "Error" on every member: a harmless sequenced update
		if time.Now().After(deadline) {
			t.Fatalf("drained group still holds offers: healthy=%d flapped=%d (rejoin resurrected reassigned offers?)",
				tg0.Len(), tg1.Len())
		}
		time.Sleep(time.Millisecond)
	}

	if rejoins.Load() == 0 {
		t.Fatal("no OnRejoin ran — the race never happened")
	}
	if got := group.Stats().Divergences; got != 0 {
		t.Fatalf("replicas diverged %d times under rejoin/epoch churn", got)
	}
	if group.Size() != 2 {
		t.Fatalf("group size = %d, want 2 (Retain must keep the flapping member)", group.Size())
	}
	for i := 0; i < nSvc; i++ {
		os, err := fe.Import(trader.ImportRequest{ServiceType: svcName(i)})
		if err != nil {
			t.Fatalf("post-drain import %s: %v", svcName(i), err)
		}
		if len(os) != 1 {
			t.Fatalf("post-drain %s resolves %d offers, want exactly 1", svcName(i), len(os))
		}
	}
}
