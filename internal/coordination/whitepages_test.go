package coordination

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/naming"
	"repro/internal/relocator"
)

func wpRef(nonce uint64, ep naming.Endpoint, epoch uint64) naming.InterfaceRef {
	return naming.InterfaceRef{
		ID: naming.InterfaceID{
			Object: naming.ObjectID{
				Cluster: naming.ClusterID{Capsule: naming.CapsuleID{Node: "a", Seq: 1}, Seq: 1},
				Seq:     1,
			},
			Seq:   1,
			Nonce: nonce,
		},
		TypeName: "BankTeller",
		Endpoint: ep,
		Epoch:    epoch,
	}
}

func newLocationGroup(t *testing.T, n int) (*LocationGroup, []*relocator.Relocator) {
	t.Helper()
	g := NewReplicaGroup()
	replicas := make([]*relocator.Relocator, n)
	for i := 0; i < n; i++ {
		replicas[i] = relocator.New()
		if err := g.Add(fmt.Sprintf("r%d", i), NewLocationMember(replicas[i])); err != nil {
			t.Fatal(err)
		}
	}
	return NewLocationGroup(g), replicas
}

func TestLocationGroupReplicatesUpdates(t *testing.T) {
	lg, replicas := newLocationGroup(t, 3)
	in := wpRef(1, "sim://a", 0)
	if err := lg.Register(in); err != nil {
		t.Fatal(err)
	}
	// The write fanned out to every replica.
	for i, r := range replicas {
		got, err := r.Lookup(in.ID)
		if err != nil || got != in {
			t.Fatalf("replica %d = %+v, %v", i, got, err)
		}
	}
	got, err := lg.Lookup(in.ID)
	if err != nil || got != in {
		t.Fatalf("group lookup = %+v, %v", got, err)
	}
	moved, err := lg.Move(in.ID, "sim://b")
	if err != nil || moved.Endpoint != "sim://b" || moved.Epoch != 1 {
		t.Fatalf("move = %+v, %v", moved, err)
	}
	for i, r := range replicas {
		got, err := r.Lookup(in.ID)
		if err != nil || got.Epoch != 1 {
			t.Fatalf("replica %d after move = %+v, %v", i, got, err)
		}
	}
	lg.Remove(in.ID)
	if _, err := lg.Lookup(in.ID); !errors.Is(err, relocator.ErrUnknown) {
		t.Fatalf("lookup after remove = %v", err)
	}
}

func TestLocationGroupStaleSurfacesTyped(t *testing.T) {
	lg, _ := newLocationGroup(t, 2)
	in := wpRef(1, "sim://a", 0)
	if err := lg.Register(in); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Move(in.ID, "sim://b"); err != nil {
		t.Fatal(err)
	}
	// Re-registering the epoch-0 snapshot must refuse across the wire
	// vocabulary and still satisfy errors.Is/As at the caller.
	err := lg.Register(in)
	if !errors.Is(err, relocator.ErrStale) {
		t.Fatalf("stale register = %v", err)
	}
	var se *relocator.StaleError
	if !errors.As(err, &se) {
		t.Fatalf("err %v does not carry *StaleError", err)
	}
	if se.Current != 1 || se.Refused != 0 {
		t.Fatalf("stale epochs = %+v", se)
	}
}

func TestLocationGroupSnapshotAndUnknown(t *testing.T) {
	lg, _ := newLocationGroup(t, 2)
	if _, err := lg.Lookup(wpRef(9, "", 0).ID); !errors.Is(err, relocator.ErrUnknown) {
		t.Fatalf("unknown lookup = %v", err)
	}
	if _, err := lg.Move(wpRef(9, "", 0).ID, "sim://x"); !errors.Is(err, relocator.ErrUnknown) {
		t.Fatalf("unknown move = %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := lg.Register(wpRef(uint64(i+1), "sim://a", 0)); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := lg.Snapshot()
	if err != nil || len(refs) != 5 {
		t.Fatalf("snapshot = %d refs, %v", len(refs), err)
	}
}

func TestLocationGroupAsShard(t *testing.T) {
	// The replicated store slots into the sharded relocator unchanged: a
	// shard can be a whole replica group.
	sh := relocator.NewSharded(0)
	lg, _ := newLocationGroup(t, 2)
	if err := sh.AddShard("g0", lg); err != nil {
		t.Fatal(err)
	}
	if err := sh.AddShard("w1", relocator.New()); err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := sh.Register(wpRef(uint64(i+1), "sim://a", 0)); err != nil {
			t.Fatal(err)
		}
	}
	// A further ring change drains registrations in and out of the group
	// via its Snapshot/Register surface.
	if err := sh.AddShard("w2", relocator.New()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sh.Lookup(wpRef(uint64(i+1), "", 0).ID); err != nil {
			t.Fatalf("lookup %d = %v", i, err)
		}
	}
}
