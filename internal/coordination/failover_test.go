package coordination

import (
	"context"
	"errors"
	"testing"

	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/values"
)

func TestFailoverGroupPromotes(t *testing.T) {
	g := NewFailoverGroup()
	sick := &fakeInvoker{fail: true}
	healthy := &fakeInvoker{}
	var promoted []string
	g.OnPromote = func(name string) error {
		promoted = append(promoted, name)
		return nil
	}
	if err := g.Add("primary", sick); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("primary", &fakeInvoker{}); err == nil {
		t.Error("duplicate member should fail")
	}
	if err := g.Add("backup", healthy); err != nil {
		t.Fatal(err)
	}
	if g.Primary() != "primary" || g.Size() != 2 {
		t.Fatalf("initial state: %s/%d", g.Primary(), g.Size())
	}

	term, res, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)})
	if err != nil || term != "OK" {
		t.Fatalf("Invoke = %q, %v, %v", term, res, err)
	}
	if !sick.closed {
		t.Error("failed primary should be closed")
	}
	if g.Primary() != "backup" || g.Promotions() != 1 {
		t.Errorf("after failover: primary=%s promotions=%d", g.Primary(), g.Promotions())
	}
	if len(promoted) != 1 || promoted[0] != "backup" {
		t.Errorf("OnPromote calls = %v", promoted)
	}
	// Only the backup executed the operation: primary-backup, not active.
	if healthy.calls != 1 || sick.calls != 1 /* the failed attempt */ {
		t.Errorf("calls: healthy=%d sick=%d", healthy.calls, sick.calls)
	}
}

func TestFailoverGroupExhaustion(t *testing.T) {
	g := NewFailoverGroup()
	if err := g.Add("a", &fakeInvoker{fail: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", &fakeInvoker{fail: true}); err != nil {
		t.Fatal(err)
	}
	_, _, err := g.Invoke(context.Background(), "Get", nil)
	if !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("err = %v", err)
	}
	if g.Promotions() != 2 || g.Size() != 0 || g.Primary() != "" {
		t.Errorf("state = %d/%d/%q", g.Promotions(), g.Size(), g.Primary())
	}
}

func TestFailoverGroupPromotionHookFailure(t *testing.T) {
	g := NewFailoverGroup()
	g.OnPromote = func(string) error { return errors.New("recovery failed") }
	if err := g.Add("a", &fakeInvoker{fail: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", &fakeInvoker{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Invoke(context.Background(), "Get", nil); err == nil {
		t.Error("promotion hook failure should surface")
	}
}

func TestFailoverGroupClose(t *testing.T) {
	g := NewFailoverGroup()
	a := &fakeInvoker{}
	if err := g.Add("a", a); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil || !a.closed {
		t.Errorf("close: %v, %v", err, a.closed)
	}
	if _, _, err := g.Invoke(context.Background(), "Get", nil); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("invoke after close = %v", err)
	}
}

func TestFailoverWithCheckpointRecovery(t *testing.T) {
	// The full primary-backup story: the primary's cluster is
	// checkpointed; when its node dies, the OnPromote hook recovers the
	// checkpoint at the backup's node, and the promoted member serves with
	// the primary's state.
	net := netsim.New(4)
	reloc := relocator.New()
	primaryNode := newNode(t, net, reloc, "primary")
	backupNode := newNode(t, net, reloc, "backup")

	capP, _ := primaryNode.CreateCapsule()
	cluster, err := capP.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cluster.CreateObject("counter", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	primaryRef, err := obj.AddInterface(counterIface())
	if err != nil {
		t.Fatal(err)
	}

	cs := NewCheckpointStore()
	g := NewFailoverGroup()
	pb, err := channel.Bind(primaryRef, channel.BindConfig{Transport: net.From("client"), Locator: reloc, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add("primary", pb); err != nil {
		t.Fatal(err)
	}
	// The backup invoker targets the SAME interface identity: after
	// recovery at the backup node the relocator redirects it there.
	bb, err := channel.Bind(primaryRef, channel.BindConfig{Transport: net.From("client"), Locator: reloc, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add("backup", bb); err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	ctx := context.Background()
	if _, _, err := g.Invoke(ctx, "Inc", []values.Value{values.Int(41)}); err != nil {
		t.Fatal(err)
	}
	// Checkpoint, then kill the primary node.
	if err := CheckpointNow(cluster, cs); err != nil {
		t.Fatal(err)
	}
	key := cs.Keys()[0]
	g.OnPromote = func(string) error {
		capB, err := backupNode.CreateCapsule()
		if err != nil {
			return err
		}
		_, err = RecoverCluster(capB, cs, key, engineering.ClusterOptions{})
		return err
	}
	if err := primaryNode.Close(); err != nil {
		t.Fatal(err)
	}

	term, res, err := g.Invoke(ctx, "Inc", []values.Value{values.Int(1)})
	if err != nil || term != "OK" {
		t.Fatalf("post-failover Invoke = %q, %v, %v", term, res, err)
	}
	if n, _ := res[0].AsInt(); n != 42 {
		t.Errorf("state after failover = %d, want 42 (checkpoint + 1)", n)
	}
	if g.Primary() != "backup" {
		t.Errorf("primary = %q", g.Primary())
	}
}
