package coordination

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/trader"
	"repro/internal/typerepo"
	"repro/internal/types"
	"repro/internal/values"
)

func tellerType() *types.Interface {
	return types.OpInterface("BankTeller",
		types.Op("Deposit",
			types.Params(types.P("a", values.TString()), types.P("d", values.TInt())),
			types.Term("OK", types.P("new_balance", values.TInt())),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

func managerType() *types.Interface {
	return types.Extend("BankManager", tellerType(),
		types.Op("CreateAccount",
			types.Params(types.P("c", values.TString())),
			types.Term("OK", types.P("a", values.TString())),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

func newTypeGroup(t *testing.T, n int) (*TypeGroup, []*typerepo.Local) {
	t.Helper()
	g := NewReplicaGroup()
	members := make([]*typerepo.Local, n)
	for i := 0; i < n; i++ {
		members[i] = typerepo.New()
		if err := g.Add(fmt.Sprintf("t%d", i), NewTypeMember(members[i])); err != nil {
			t.Fatal(err)
		}
	}
	return NewTypeGroup(g), members
}

func TestTypeGroupReplicatesRegistrations(t *testing.T) {
	tg, members := newTypeGroup(t, 3)
	if err := tg.RegisterInterface(tellerType()); err != nil {
		t.Fatalf("RegisterInterface: %v", err)
	}
	if err := tg.RegisterInterface(managerType()); err != nil {
		t.Fatalf("RegisterInterface: %v", err)
	}
	if err := tg.DeclareSubtype("BankManager", "BankTeller"); err != nil {
		t.Fatalf("DeclareSubtype: %v", err)
	}
	// The sequenced writes reached every member identically.
	for i, m := range members {
		ok, err := m.IsSubtype("BankManager", "BankTeller")
		if err != nil || !ok {
			t.Fatalf("member %d: IsSubtype = %v, %v", i, ok, err)
		}
		if m.Gen() != members[0].Gen() {
			t.Fatalf("member %d gen %d != member 0 gen %d", i, m.Gen(), members[0].Gen())
		}
	}
	// Group reads resolve through the failover path.
	if it, err := tg.LookupInterface("BankManager"); err != nil || it.Name != "BankManager" {
		t.Fatalf("group LookupInterface = %v, %v", it, err)
	}
	ok, err := tg.IsSubtype("BankManager", "BankTeller")
	if err != nil || !ok {
		t.Fatalf("group IsSubtype = %v, %v", ok, err)
	}
	if got := tg.DeclaredSupertypes("BankManager"); len(got) != 1 || got[0] != "BankTeller" {
		t.Fatalf("group DeclaredSupertypes = %v", got)
	}
	if tg.Gen() != members[0].Gen() {
		t.Fatalf("group gen %d != member gen %d", tg.Gen(), members[0].Gen())
	}
	// Sentinel conditions survive the group boundary.
	if _, err := tg.LookupInterface("NoSuch"); !errors.Is(err, typerepo.ErrNotFound) {
		t.Fatalf("LookupInterface(NoSuch) = %v, want ErrNotFound", err)
	}
	conflicting := types.OpInterface("BankTeller",
		types.Op("Different", types.Params(), types.Term("OK")),
	)
	if err := tg.RegisterInterface(conflicting); !errors.Is(err, typerepo.ErrConflict) {
		t.Fatalf("conflicting registration = %v, want ErrConflict", err)
	}
}

// A TypeGroup is the intended authority behind the replicated read
// front-end: writes run ReplicaGroup-ordered across the member stores,
// reads come from the front-end's gen-fenced local replicas.
func TestTypeGroupBehindReplicatedFrontEnd(t *testing.T) {
	tg, members := newTypeGroup(t, 2)
	rep := typerepo.NewReplicated(tg, 2)
	if err := rep.RegisterInterface(tellerType()); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := rep.RegisterInterface(managerType()); err != nil {
		t.Fatalf("register: %v", err)
	}
	ok, err := rep.IsSubtype("BankManager", "BankTeller")
	if err != nil || !ok {
		t.Fatalf("replicated IsSubtype over group authority = %v, %v", ok, err)
	}
	for i, m := range members {
		if got := len(m.Interfaces()); got != 2 {
			t.Fatalf("member %d holds %d interfaces, want 2", i, got)
		}
	}
}

func newTradingGroup(t *testing.T, n int) (*TradingGroup, []*trader.Trader, *typerepo.Local) {
	t.Helper()
	repo := typerepo.New()
	if err := repo.RegisterInterface(tellerType()); err != nil {
		t.Fatal(err)
	}
	g := NewReplicaGroup()
	members := make([]*trader.Trader, n)
	for i := 0; i < n; i++ {
		// Same trader name on every member: offer ids are minted from the
		// name and a local counter, so the sequenced update stream yields
		// identical ids on every replica (no divergence).
		members[i] = trader.New("tg", repo)
		if err := g.Add(fmt.Sprintf("m%d", i), NewTradingMember(members[i])); err != nil {
			t.Fatal(err)
		}
	}
	return NewTradingGroup(g), members, repo
}

func TestTradingGroupReplicatesOffers(t *testing.T) {
	tg, members, _ := newTradingGroup(t, 3)
	ref := wpRef(7, "sim://a", 0)
	ref.TypeName = "BankTeller"
	id, err := tg.Export("BankTeller", ref, values.Record())
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	// Every member holds the offer under the agreed id.
	for i, m := range members {
		offers, err := m.Import(trader.ImportRequest{ServiceType: "BankTeller"})
		if err != nil || len(offers) != 1 || offers[i%1].ID != id {
			t.Fatalf("member %d: offers = %+v, %v", i, offers, err)
		}
	}
	// Group import reads from any live member.
	offers, err := tg.Import(trader.ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 1 || offers[0].ID != id {
		t.Fatalf("group Import = %+v, %v", offers, err)
	}
	// A member crash is masked: drop one member, reads and writes continue.
	if err := tg.G.Remove("m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Import(trader.ImportRequest{ServiceType: "BankTeller"}); err != nil {
		t.Fatalf("Import after member loss: %v", err)
	}
	if err := tg.Withdraw(id); err != nil {
		t.Fatalf("Withdraw after member loss: %v", err)
	}
	offers, err = tg.Import(trader.ImportRequest{ServiceType: "BankTeller"})
	if err != nil || len(offers) != 0 {
		t.Fatalf("offers after withdraw = %+v, %v", offers, err)
	}
}

// A TradingGroup slots into the sharded trader as one shard, and a
// rebalance migration (Install preserving offer identity) replicates
// onto every member.
func TestTradingGroupAsShard(t *testing.T) {
	tg, members, repo := newTradingGroup(t, 2)
	fe := trader.NewSharded("fe", repo, 0)
	if err := fe.AddShard("plain", trader.New("plain", repo)); err != nil {
		t.Fatal(err)
	}
	if err := fe.AddShard("replicated", tg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		ref := wpRef(uint64(100+i), "sim://a", 0)
		ref.TypeName = "BankTeller"
		if _, err := fe.Export("BankTeller", ref, values.Record()); err != nil {
			t.Fatalf("Export %d: %v", i, err)
		}
	}
	offers, err := fe.Import(trader.ImportRequest{ServiceType: "BankTeller", MaxMatches: 16})
	if err != nil || len(offers) == 0 {
		t.Fatalf("front-end Import = %d offers, %v", len(offers), err)
	}
	// If BankTeller routed to the replicated shard, both members hold it.
	if got, _ := members[0].Import(trader.ImportRequest{ServiceType: "BankTeller", MaxMatches: 32}); len(got) > 0 {
		other, _ := members[1].Import(trader.ImportRequest{ServiceType: "BankTeller", MaxMatches: 32})
		if len(other) != len(got) {
			t.Fatalf("members diverge: %d vs %d offers", len(got), len(other))
		}
	}
}
