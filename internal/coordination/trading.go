// Replicated trading: one trader shard served by a replica group, the
// same construction whitepages.go applies to the relocator. A
// ReplicaGroup fans Export/Withdraw/Install out to every trader replica
// in ticket order, and Import reads fail over across replicas — so a
// shard of the sharded trader survives the crash of a replica member
// mid-rebalance, which is exactly the storm E15 drives.
//
// Determinism requirement: replicas must mint identical offer ids for
// the sequenced Export stream, or the group detects divergence. Trader
// ids are minted from a per-trader counter and the trader's name, so
// building every member with trader.New(<same name>, repo) satisfies
// this — the group's total order does the rest.
//
// The adapter lives in coordination (not trader) so the trader stays a
// leaf package, mirroring the whitepages layering.
package coordination

import (
	"context"
	"fmt"

	"repro/internal/naming"
	"repro/internal/trader"
	"repro/internal/values"
)

// tradingMember adapts a *Trader to Invoker via the trader servant's
// operation vocabulary, so in-process replicas and channel-backed remote
// traders mix freely in one group.
type tradingMember struct {
	trader.Servant
}

var _ Invoker = (*tradingMember)(nil)

// NewTradingMember wraps a trader as a replica-group member.
func NewTradingMember(t *trader.Trader) Invoker {
	return &tradingMember{trader.Servant{T: t}}
}

// Close implements Invoker; the trader's lifecycle belongs to its owner.
func (m *tradingMember) Close() error { return nil }

// TradingGroup is a trader.Shard served by a replica group: updates
// (Export, Withdraw, Install) run through the group's sequenced fan-out,
// Import through its failover read path. It slots into
// trader.ShardedTrader.AddShard like a plain *Trader.
type TradingGroup struct {
	G *ReplicaGroup
}

var _ trader.Shard = (*TradingGroup)(nil)

// NewTradingGroup wraps a replica group of trader replicas.
func NewTradingGroup(g *ReplicaGroup) *TradingGroup { return &TradingGroup{G: g} }

func tradingFailure(op string, res []values.Value) error {
	reason := "unknown"
	if len(res) == 1 {
		if s, ok := res[0].AsString(); ok {
			reason = s
		}
	}
	return fmt.Errorf("coordination: replicated trader %s failed: %s", op, reason)
}

// Export advertises the service on every replica (sequenced) and returns
// the offer id the replicas agreed on.
func (g *TradingGroup) Export(serviceType string, ref naming.InterfaceRef, props values.Value) (string, error) {
	if props.IsNull() {
		props = values.Record()
	}
	term, res, err := g.G.Invoke(context.Background(), "Export", []values.Value{
		values.Str(serviceType),
		ref.ToValue(),
		values.Any(values.TypeOf(props), props),
	})
	if err != nil {
		return "", err
	}
	if term != "OK" {
		return "", tradingFailure("Export", res)
	}
	id, _ := res[0].AsString()
	return id, nil
}

// Withdraw removes the offer on every replica (sequenced).
func (g *TradingGroup) Withdraw(offerID string) error {
	term, res, err := g.G.Invoke(context.Background(), "Withdraw", []values.Value{values.Str(offerID)})
	if err != nil {
		return err
	}
	if term != "OK" {
		return tradingFailure("Withdraw", res)
	}
	return nil
}

// Install re-homes an offer (identity preserved) on every replica — the
// rebalance path, so a migrating shard lands replicated.
func (g *TradingGroup) Install(o trader.Offer) error {
	term, res, err := g.G.Invoke(context.Background(), "Install", []values.Value{trader.OfferToValue(o)})
	if err != nil {
		return err
	}
	if term != "OK" {
		return tradingFailure("Install", res)
	}
	return nil
}

// Import queries any live replica, failing over past dead members.
func (g *TradingGroup) Import(req trader.ImportRequest) ([]trader.Offer, error) {
	term, res, err := g.G.InvokeRead(context.Background(), "Import", []values.Value{
		values.Str(req.ServiceType),
		values.Str(req.Constraint),
		values.Int(int64(req.Preference.Kind)),
		values.Str(req.Preference.Expr),
		values.Int(int64(req.MaxMatches)),
		values.Int(int64(req.MaxHops)),
	})
	if err != nil {
		return nil, err
	}
	if term != "OK" {
		return nil, tradingFailure("Import", res)
	}
	seq := res[0]
	out := make([]trader.Offer, 0, seq.Len())
	for i := 0; i < seq.Len(); i++ {
		o, err := trader.OfferFromValue(seq.ElemAt(i))
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}
