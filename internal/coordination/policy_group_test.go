package coordination

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/values"
)

func (f *fakeInvoker) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *fakeInvoker) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func newPolicyGroup(t *testing.T, mp *MemberPolicy, members ...*fakeInvoker) *ReplicaGroup {
	t.Helper()
	g := NewReplicaGroup()
	for i, m := range members {
		if err := g.Add("r"+string(rune('0'+i)), m); err != nil {
			t.Fatal(err)
		}
	}
	g.SetMemberPolicy(mp)
	return g
}

// TestGroupRetainSkipsOpenMembers: with Retain + breakers, a dead member
// is kept in the group but sat out once its breaker opens, so updates
// stop burning attempts on it.
func TestGroupRetainSkipsOpenMembers(t *testing.T) {
	bs := policy.NewBreakerSet(policy.BreakerConfig{ConsecutiveFailures: 2, OpenFor: time.Hour})
	dead := &fakeInvoker{fail: true}
	live := &fakeInvoker{}
	g := newPolicyGroup(t, &MemberPolicy{Breakers: bs, Retain: true}, live, dead)

	for i := 0; i < 5; i++ {
		if _, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)}); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if g.Size() != 2 {
		t.Fatalf("Retain dropped a member: size=%d", g.Size())
	}
	// Two failures tripped the breaker; the remaining three updates never
	// touched the dead member.
	if got := dead.callCount(); got != 2 {
		t.Fatalf("dead member called %d times, want 2 (breaker should gate the rest)", got)
	}
	st := g.Stats()
	if st.SkippedLegs != 3 {
		t.Fatalf("skipped legs = %d, want 3", st.SkippedLegs)
	}
	if bs.For("r1").State() != policy.Open {
		t.Fatal("dead member's breaker not open")
	}
}

// TestGroupRejoinAfterRecovery: the half-open probe re-admits a revived
// member through OnRejoin, which sees the member's name before it serves
// an update again.
func TestGroupRejoinAfterRecovery(t *testing.T) {
	bs := policy.NewBreakerSet(policy.BreakerConfig{ConsecutiveFailures: 1, OpenFor: 10 * time.Millisecond})
	flappy := &fakeInvoker{fail: true}
	live := &fakeInvoker{}
	var rejoined []string
	mp := &MemberPolicy{
		Breakers: bs,
		Retain:   true,
		OnRejoin: func(_ context.Context, name string, _ Invoker) error {
			rejoined = append(rejoined, name)
			// State catch-up: copy the survivor's state into the returning
			// member, as checkpoint recovery would.
			live.mu.Lock()
			s := live.state
			live.mu.Unlock()
			flappy.mu.Lock()
			flappy.state = s
			flappy.mu.Unlock()
			return nil
		},
	}
	g := newPolicyGroup(t, mp, live, flappy)

	// Trip r1's breaker, then revive the member and wait out the cooldown.
	if _, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if bs.For("r1").State() != policy.Open {
		t.Fatal("breaker did not open")
	}
	flappy.setFail(false)
	time.Sleep(15 * time.Millisecond)

	if _, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(rejoined) != 1 || rejoined[0] != "r1" {
		t.Fatalf("rejoin hook calls = %v, want [r1]", rejoined)
	}
	if bs.For("r1").State() != policy.Closed {
		t.Fatal("breaker did not re-close after successful probe leg")
	}
	// The rejoined member now participates normally.
	before := flappy.callCount()
	if _, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if flappy.callCount() != before+1 {
		t.Fatal("rejoined member not participating in updates")
	}
}

// TestReadProbeDoesNotBypassRejoin: a read must never consume the
// half-open probe when a rejoin hook is installed — re-closing the
// breaker without OnRejoin would let a stale member back into the
// update fan-out and diverge. The read hands the probe token back (so
// the next update can claim it) and serves from a survivor.
func TestReadProbeDoesNotBypassRejoin(t *testing.T) {
	bs := policy.NewBreakerSet(policy.BreakerConfig{ConsecutiveFailures: 1, OpenFor: 5 * time.Millisecond})
	flappy := &fakeInvoker{fail: true}
	live := &fakeInvoker{state: 3}
	var rejoined []string
	mp := &MemberPolicy{
		Breakers: bs,
		Retain:   true,
		OnRejoin: func(_ context.Context, name string, _ Invoker) error {
			rejoined = append(rejoined, name)
			live.mu.Lock()
			s := live.state
			live.mu.Unlock()
			flappy.mu.Lock()
			flappy.state = s
			flappy.mu.Unlock()
			return nil
		},
	}
	g := newPolicyGroup(t, mp, live, flappy)

	// Trip r1's breaker, revive the member, wait out the cooldown: the
	// breaker is now half-open with one probe token on offer.
	if _, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)}); err != nil {
		t.Fatal(err)
	}
	flappy.setFail(false)
	time.Sleep(10 * time.Millisecond)

	// Reads land on the half-open member first (rotation) but must not
	// invoke it or close its breaker; they skip to the survivor, flagged
	// stale, and leave the probe for the update path.
	before := flappy.callCount()
	var skippedReads int
	for i := 0; i < 4; i++ {
		_, _, meta, err := g.InvokeReadMeta(context.Background(), "Get", nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if meta.Member != "r0" {
			t.Fatalf("read %d served by %q, want survivor r0", i, meta.Member)
		}
		if meta.Skipped > 0 {
			skippedReads++
			if !meta.Stale {
				t.Fatalf("read %d skipped the half-open member but is not stale: %+v", i, meta)
			}
		}
	}
	// The rotation guarantees at least half the reads started on the
	// half-open member and had to skip it.
	if skippedReads == 0 {
		t.Fatal("no read ever rotated onto the half-open member")
	}
	if flappy.callCount() != before {
		t.Fatal("read consumed the half-open probe and invoked the member")
	}
	if len(rejoined) != 0 {
		t.Fatalf("rejoin ran on the read path: %v", rejoined)
	}
	if bs.For("r1").State() != policy.HalfOpen {
		t.Fatalf("breaker state = %v, want half-open (probe returned)", bs.For("r1").State())
	}

	// The next update claims the probe, runs OnRejoin, and re-closes.
	if _, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(rejoined) != 1 || rejoined[0] != "r1" {
		t.Fatalf("rejoin hook calls = %v, want [r1]", rejoined)
	}
	if bs.For("r1").State() != policy.Closed {
		t.Fatal("breaker did not re-close after the update probe")
	}
}

// TestGroupAllCircuitsOpen: when every member's breaker is open the
// update fails fast with ErrCircuitOpen instead of ErrEmptyGroup — the
// group still exists, it is just unreachable right now.
func TestGroupAllCircuitsOpen(t *testing.T) {
	bs := policy.NewBreakerSet(policy.BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Hour})
	a, b := &fakeInvoker{fail: true}, &fakeInvoker{fail: true}
	g := newPolicyGroup(t, &MemberPolicy{Breakers: bs, Retain: true}, a, b)
	// First update: both legs fail and trip their breakers.
	if _, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)}); err == nil {
		t.Fatal("all-dead update succeeded")
	}
	// Second update fails fast without touching either member.
	_, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)})
	if !errors.Is(err, policy.ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if a.callCount() != 1 || b.callCount() != 1 {
		t.Fatalf("members called %d/%d times, want 1/1", a.callCount(), b.callCount())
	}
	if g.Size() != 2 {
		t.Fatalf("group size = %d, want 2 (retained)", g.Size())
	}
}

// TestDegradedRead: a read that had to pass over a failed member is
// flagged stale, counted, and still answered by a survivor.
func TestDegradedRead(t *testing.T) {
	bs := policy.NewBreakerSet(policy.BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Hour})
	dead := &fakeInvoker{fail: true}
	live := &fakeInvoker{state: 7}
	g := NewReplicaGroup()
	if err := g.Add("dead", dead); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("live", live); err != nil {
		t.Fatal(err)
	}
	g.SetMemberPolicy(&MemberPolicy{Breakers: bs, Retain: true})

	// Rotation starts at "dead": the read fails over and is degraded.
	term, res, meta, err := g.InvokeReadMeta(context.Background(), "Get", nil)
	if err != nil || term != "OK" {
		t.Fatalf("read = %q %v %v", term, res, err)
	}
	if meta.Member != "live" || !meta.Stale || meta.Failovers != 1 {
		t.Fatalf("meta = %+v, want live/stale/1 failover", meta)
	}
	if v, _ := res[0].AsInt(); v != 7 {
		t.Fatalf("read value = %d, want 7", v)
	}
	if g.Size() != 2 {
		t.Fatalf("Retain dropped a member on read: size=%d", g.Size())
	}
	// The next read skips the now-open breaker without calling the member.
	before := dead.callCount()
	_, _, meta, err = g.InvokeReadMeta(context.Background(), "Get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if dead.callCount() != before {
		t.Fatal("open-circuit member still invoked on read")
	}
	if st := g.Stats(); st.DegradedReads < 1 {
		t.Fatalf("degraded reads = %d, want ≥1", st.DegradedReads)
	}
}

// TestDegradedReadQuorumLoss: even when the surviving member answers
// first try, losing a majority of the peak membership flags staleness.
func TestDegradedReadQuorumLoss(t *testing.T) {
	g := NewReplicaGroup()
	live := &fakeInvoker{}
	if err := g.Add("live", live); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"d1", "d2"} {
		if err := g.Add(n, &fakeInvoker{fail: true}); err != nil {
			t.Fatal(err)
		}
	}
	// No member policy: failed members drop out (legacy masking), but the
	// peak membership of 3 is remembered.
	for {
		_, _, _, err := g.InvokeReadMeta(context.Background(), "Get", nil)
		if err != nil {
			t.Fatal(err)
		}
		if g.Size() == 1 {
			break
		}
	}
	_, _, meta, err := g.InvokeReadMeta(context.Background(), "Get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Stale {
		t.Fatalf("1 of 3 peak members alive: read should be stale, meta=%+v", meta)
	}
}

// TestFailoverGroupPolicyBudget: a failover cascade under a policy is
// bounded by the budget and paced by backoff instead of instantly
// burning through every backup.
func TestFailoverGroupPolicyBudget(t *testing.T) {
	g := NewFailoverGroup()
	g.Policy = &policy.RetryPolicy{
		BaseBackoff: 20 * time.Millisecond,
		Multiplier:  1,
		Budget:      200 * time.Millisecond,
	}
	for _, n := range []string{"p", "b1", "b2"} {
		if err := g.Add(n, &fakeInvoker{fail: true}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	_, _, err := g.Invoke(context.Background(), "Get", nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("all-dead failover group succeeded")
	}
	// Three members, two backoffs of 20ms: at least 40ms elapsed; the
	// legacy path would return in microseconds.
	if elapsed < 40*time.Millisecond {
		t.Fatalf("failover cascade finished in %v; backoff not applied", elapsed)
	}
	if g.Promotions() != 3 {
		t.Fatalf("promotions = %d, want 3", g.Promotions())
	}
}

// TestFailoverGroupMaxAttempts: the policy's attempt cap stops the
// cascade before the membership is exhausted.
func TestFailoverGroupMaxAttempts(t *testing.T) {
	g := NewFailoverGroup()
	g.Policy = &policy.RetryPolicy{MaxAttempts: 1}
	if err := g.Add("p", &fakeInvoker{fail: true}); err != nil {
		t.Fatal(err)
	}
	backup := &fakeInvoker{}
	if err := g.Add("b", backup); err != nil {
		t.Fatal(err)
	}
	_, _, err := g.Invoke(context.Background(), "Get", nil)
	if err == nil {
		t.Fatal("MaxAttempts=1 should fail without trying the backup")
	}
	if errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("err = %v, want the primary's failure", err)
	}
	if backup.callCount() != 0 {
		t.Fatal("backup was invoked despite MaxAttempts=1")
	}
}
