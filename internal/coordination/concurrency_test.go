package coordination

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/values"
)

// seqReplica records the order in which it receives "Put" updates, so a
// test can check the sequencer's total-order guarantee replica by replica.
type seqReplica struct {
	mu     sync.Mutex
	seen   []int64
	closed bool

	failAfter int   // fail every Put once this many were recorded (0 = never)
	warpEvery int64 // return a wrong result for values divisible by this (0 = never)
}

func (r *seqReplica) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch op {
	case "Put":
		v, _ := args[0].AsInt()
		if r.failAfter > 0 && len(r.seen) >= r.failAfter {
			return "", nil, errors.New("replica down")
		}
		r.seen = append(r.seen, v)
		if r.warpEvery > 0 && v%r.warpEvery == 0 {
			return "OK", []values.Value{values.Int(v + 1_000_000)}, nil
		}
		return "OK", []values.Value{values.Int(v)}, nil
	case "Last":
		var last int64 = -1
		if n := len(r.seen); n > 0 {
			last = r.seen[n-1]
		}
		return "OK", []values.Value{values.Int(last)}, nil
	}
	return "", nil, fmt.Errorf("unknown op %s", op)
}

func (r *seqReplica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	return nil
}

func (r *seqReplica) snapshot() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.seen...)
}

// TestReplicaGroupConcurrentTotalOrder hammers one group with concurrent
// writers and readers while one replica diverges on some updates and
// another dies partway through. Afterwards every surviving replica must
// have received exactly the same update sequence — the total order the
// sequencer promises — and the dead replica a prefix of it.
func TestReplicaGroupConcurrentTotalOrder(t *testing.T) {
	const (
		writers       = 4
		perWriter     = 50
		dieAfterSeen  = 25
		divergeEvery  = 17
		readersCount  = 3
		readsPerFiber = 40
	)
	healthy := &seqReplica{}
	diverger := &seqReplica{warpEvery: divergeEvery}
	dying := &seqReplica{failAfter: dieAfterSeen}

	g := NewReplicaGroup()
	for name, r := range map[string]*seqReplica{"healthy": healthy, "diverger": diverger, "dying": dying} {
		if err := g.Add(name, r); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				v := int64(w*perWriter + j)
				_, _, err := g.Invoke(ctx, "Put", []values.Value{values.Int(v)})
				// Divergence is reported to the unlucky caller but the
				// update is still applied everywhere; only that error is
				// tolerable here.
				if err != nil && !errors.Is(err, ErrDiverged) {
					t.Errorf("Invoke(%d): %v", v, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readersCount; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < readsPerFiber; j++ {
				if _, _, err := g.InvokeRead(ctx, "Last", nil); err != nil {
					t.Errorf("InvokeRead: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	want := healthy.snapshot()
	if len(want) != writers*perWriter {
		t.Fatalf("healthy replica saw %d updates, want %d", len(want), writers*perWriter)
	}
	got := diverger.snapshot()
	if len(got) != len(want) {
		t.Fatalf("diverger saw %d updates, healthy saw %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("total order violated at %d: diverger saw %d, healthy saw %d", i, got[i], want[i])
		}
	}
	// The dead replica received a prefix of the same order: it recorded
	// updates in sequence until it started failing, and nothing after the
	// group dropped it.
	prefix := dying.snapshot()
	if len(prefix) != dieAfterSeen {
		t.Fatalf("dying replica recorded %d updates, want %d", len(prefix), dieAfterSeen)
	}
	for i := range prefix {
		if prefix[i] != want[i] {
			t.Fatalf("prefix order violated at %d: dying saw %d, healthy saw %d", i, prefix[i], want[i])
		}
	}
	if !dying.closed {
		t.Error("dropped replica's channel was not closed")
	}
	if g.Size() != 2 {
		t.Errorf("group size after failover = %d, want 2", g.Size())
	}

	st := g.Stats()
	if st.Updates != writers*perWriter {
		t.Errorf("Updates = %d, want %d", st.Updates, writers*perWriter)
	}
	if st.Reads != readersCount*readsPerFiber {
		t.Errorf("Reads = %d, want %d", st.Reads, readersCount*readsPerFiber)
	}
	if st.Failovers == 0 {
		t.Error("no failovers counted despite a dead replica")
	}
	if st.Divergences == 0 {
		t.Error("no divergences counted despite a warped replica")
	}
}

// TestReplicaGroupReadsDoNotWaitForUpdates checks that a read can complete
// while an update is parked inside a slow replica — the reader must not
// queue behind the sequencer.
func TestReplicaGroupReadsDoNotWaitForUpdates(t *testing.T) {
	release := make(chan struct{})
	slow := &gatedInvoker{gate: release, entered: make(chan struct{}, 1)}
	g := NewReplicaGroup()
	if err := g.Add("slow", slow); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, _, err := g.Invoke(ctx, "Update", nil)
		done <- err
	}()
	<-started
	<-slow.entered // the update is now blocked inside the replica

	// A read against the same group must still complete: it goes straight
	// to the replica without waiting for the in-flight update's ticket.
	if _, _, err := g.InvokeRead(ctx, "Read", nil); err != nil {
		t.Fatalf("InvokeRead while update in flight: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Invoke: %v", err)
	}
}

// gatedInvoker blocks "Update" until its gate closes; other ops answer
// immediately. entered signals each Update's arrival.
type gatedInvoker struct {
	gate    chan struct{}
	entered chan struct{}
}

func (gi *gatedInvoker) Invoke(_ context.Context, op string, _ []values.Value) (string, []values.Value, error) {
	if op == "Update" {
		gi.entered <- struct{}{}
		<-gi.gate
	}
	return "OK", nil, nil
}

func (gi *gatedInvoker) Close() error { return nil }
