package coordination

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engineering"
)

// Checkpoint error sentinels.
var (
	ErrNoCheckpoint = errors.New("coordination: no checkpoint for cluster")
	ErrGuardRunning = errors.New("coordination: checkpointer already running")
)

// CheckpointStore is the stable repository of cluster checkpoints used by
// the checkpoint-and-recovery function. Keys are cluster identities at
// capture time; each key retains only the newest checkpoint (that is the
// recovery point).
type CheckpointStore struct {
	mu    sync.Mutex
	snaps map[string]*engineering.ClusterCheckpoint
	saves uint64
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{snaps: make(map[string]*engineering.ClusterCheckpoint)}
}

// Save records a checkpoint under its origin cluster id.
func (cs *CheckpointStore) Save(ck *engineering.ClusterCheckpoint) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.snaps[ck.Origin.String()] = ck
	cs.saves++
}

// Load retrieves the newest checkpoint for a cluster key.
func (cs *CheckpointStore) Load(key string) (*engineering.ClusterCheckpoint, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ck, ok := cs.snaps[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, key)
	}
	return ck, nil
}

// Keys lists stored cluster keys, sorted.
func (cs *CheckpointStore) Keys() []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]string, 0, len(cs.snaps))
	for k := range cs.snaps {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Saves returns the cumulative number of checkpoints taken.
func (cs *CheckpointStore) Saves() uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.saves
}

// CheckpointNow captures a cluster into the store.
func CheckpointNow(k *engineering.Cluster, cs *CheckpointStore) error {
	ck, err := k.Checkpoint()
	if err != nil {
		return err
	}
	cs.Save(ck)
	return nil
}

// RecoverCluster re-instantiates a cluster from its newest checkpoint
// into the given capsule — the failure-transparency path when a node is
// lost: bindings re-resolve to the re-instantiated interfaces through the
// relocator.
func RecoverCluster(dst *engineering.Capsule, cs *CheckpointStore, key string, opts engineering.ClusterOptions) (*engineering.Cluster, error) {
	ck, err := cs.Load(key)
	if err != nil {
		return nil, err
	}
	return dst.Instantiate(ck, opts)
}

// Checkpointer periodically checkpoints a cluster into a store.
type Checkpointer struct {
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// Start begins checkpointing the cluster every interval. One Checkpointer
// drives one cluster; Start on a running Checkpointer fails.
func (g *Checkpointer) Start(k *engineering.Cluster, cs *CheckpointStore, interval time.Duration) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stop != nil {
		return ErrGuardRunning
	}
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	stop, done := g.stop, g.done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				// A failed checkpoint (e.g. mid-migration) is skipped; the
				// previous recovery point stays valid.
				_ = CheckpointNow(k, cs)
			case <-stop:
				return
			}
		}
	}()
	return nil
}

// Stop halts periodic checkpointing and waits for the loop to exit.
func (g *Checkpointer) Stop() {
	g.mu.Lock()
	stop, done := g.stop, g.done
	g.stop, g.done = nil, nil
	g.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
