package coordination

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/policy"
	"repro/internal/values"
)

// FailoverGroup is the primary-backup form of the group function: all
// invocations go to the primary member; when it fails, the next member is
// promoted and the invocation retried there. Unlike the actively
// replicated ReplicaGroup, backups receive no traffic — state continuity
// across a promotion comes from the checkpoint-and-recovery function
// (re-instantiate the failed primary's cluster at the backup's node
// before or during promotion), which the OnPromote hook exists to drive.
type FailoverGroup struct {
	// OnPromote, when set, runs before the newly promoted member serves
	// its first invocation; a typical hook recovers the primary's last
	// checkpoint into the backup (coordination.RecoverCluster).
	OnPromote func(name string) error
	// Policy, when set, paces the fail-over loop: its budget bounds the
	// whole invocation (all promotions included), its backoff separates
	// consecutive attempts, and a non-zero MaxAttempts caps how many
	// members are tried. Set before first use; nil keeps the legacy
	// immediate, unbounded cascade.
	Policy *policy.RetryPolicy

	mu         sync.Mutex
	members    []member
	promotions uint64
}

// NewFailoverGroup returns an empty group; the first member added becomes
// the primary.
func NewFailoverGroup() *FailoverGroup { return &FailoverGroup{} }

// Add appends a member (primary first, then backups in promotion order).
func (g *FailoverGroup) Add(name string, inv Invoker) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m.name == name {
			return fmt.Errorf("coordination: member %q already in group", name)
		}
	}
	g.members = append(g.members, member{name: name, inv: inv})
	return nil
}

// Size returns the number of live members.
func (g *FailoverGroup) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Primary returns the current primary's name ("" when the group is empty).
func (g *FailoverGroup) Primary() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.members) == 0 {
		return ""
	}
	return g.members[0].name
}

// Promotions returns how many fail-overs have occurred.
func (g *FailoverGroup) Promotions() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.promotions
}

// Invoke sends the operation to the primary, failing over through the
// backups until one answers. The group lock is held only to read the
// primary and to promote — never across the network call — so concurrent
// invocations proceed in parallel against the primary. When the primary
// fails under several callers at once, exactly one of them performs the
// demotion and promotion (the others observe the new primary and retry),
// so promotions stay race-free.
func (g *FailoverGroup) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	pol := g.Policy
	if pol != nil && pol.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = pol.WithBudget(ctx)
		defer cancel()
	}
	attempt := 0
	for {
		g.mu.Lock()
		if len(g.members) == 0 {
			g.mu.Unlock()
			return "", nil, ErrEmptyGroup
		}
		primary := g.members[0]
		g.mu.Unlock()
		term, res, err := primary.inv.Invoke(ctx, op, args)
		if err == nil {
			return term, res, nil
		}
		if ctx.Err() != nil {
			return "", nil, ctx.Err()
		}
		attempt++
		if pol != nil && pol.MaxAttempts > 0 && attempt >= pol.Attempts() {
			return "", nil, err
		}
		// Primary is gone: drop it and promote the next member — unless a
		// concurrent caller already did (then just retry the new primary).
		g.mu.Lock()
		if len(g.members) > 0 && g.members[0].inv == primary.inv {
			_ = primary.inv.Close()
			copy(g.members, g.members[1:])
			last := len(g.members) - 1
			g.members[last] = member{} // clear the vacated slot
			g.members = g.members[:last]
			g.promotions++
			if len(g.members) > 0 && g.OnPromote != nil {
				// The hook runs under the lock: the promoted member must
				// not serve an invocation before its state is recovered.
				if perr := g.OnPromote(g.members[0].name); perr != nil {
					name := g.members[0].name
					g.mu.Unlock()
					return "", nil, fmt.Errorf("coordination: promotion of %q failed: %w", name, perr)
				}
			}
		}
		g.mu.Unlock()
		if pol != nil {
			// Pace the retry against the freshly promoted member; the
			// promotion itself was immediate and local.
			if werr := policy.Wait(ctx, pol.Backoff(attempt)); werr != nil {
				return "", nil, werr
			}
		}
	}
}

// Close releases every member channel.
func (g *FailoverGroup) Close() error {
	g.mu.Lock()
	members := g.members
	g.members = nil
	g.mu.Unlock()
	var first error
	for _, m := range members {
		if err := m.inv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
