package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Activity error sentinels.
var (
	ErrJoined        = errors.New("core: fork already joined")
	ErrActivityEnded = errors.New("core: activity already ended")
)

// Activity models computational activity structure (Section 5.2): basic
// actions composed in sequence or in parallel, where parallel composition
// is either dependent ("the activity is forked and must subsequently join
// at a synchronisation point") or independent ("the activity is spawned
// and cannot join").
//
// An Activity carries a context; forked and spawned branches receive it,
// so cancelling the activity cancels all branches.
type Activity struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	forks []*Fork
	spawn sync.WaitGroup // tracked only so tests can drain; no join surface
	ended bool
}

// NewActivity starts an activity under the given context.
func NewActivity(ctx context.Context) *Activity {
	actx, cancel := context.WithCancel(ctx)
	return &Activity{ctx: actx, cancel: cancel}
}

// Context returns the activity's context.
func (a *Activity) Context() context.Context { return a.ctx }

// Do runs actions in sequence, stopping at the first error — sequential
// composition of basic actions.
func (a *Activity) Do(actions ...func(ctx context.Context) error) error {
	for _, act := range actions {
		if err := a.ctx.Err(); err != nil {
			return err
		}
		if err := act(a.ctx); err != nil {
			return err
		}
	}
	return nil
}

// Fork is a dependent parallel branch; it must be joined.
type Fork struct {
	done   chan struct{}
	err    error
	joined bool
	mu     sync.Mutex
}

// Fork starts a dependent parallel branch. The branch must later be
// joined with Join (or collectively with the activity's End).
func (a *Activity) Fork(fn func(ctx context.Context) error) (*Fork, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ended {
		return nil, ErrActivityEnded
	}
	f := &Fork{done: make(chan struct{})}
	a.forks = append(a.forks, f)
	go func() {
		err := fn(a.ctx)
		f.mu.Lock()
		f.err = err
		f.mu.Unlock()
		close(f.done)
	}()
	return f, nil
}

// Join waits for the branch and returns its error. Joining twice is an
// error — a join point synchronises exactly once.
func (f *Fork) Join() error {
	f.mu.Lock()
	if f.joined {
		f.mu.Unlock()
		return ErrJoined
	}
	f.joined = true
	f.mu.Unlock()
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Spawn starts an independent parallel branch: it cannot be joined and
// its error (if any) is invisible to the activity, exactly as the model
// prescribes. The branch still inherits the activity's context, so ending
// the activity cancels it.
func (a *Activity) Spawn(fn func(ctx context.Context)) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ended {
		return ErrActivityEnded
	}
	a.spawn.Add(1)
	go func() {
		defer a.spawn.Done()
		fn(a.ctx)
	}()
	return nil
}

// Parallel runs the given actions as dependent branches and joins them
// all, returning the first error (a fork/join block).
func (a *Activity) Parallel(actions ...func(ctx context.Context) error) error {
	forks := make([]*Fork, 0, len(actions))
	for _, act := range actions {
		f, err := a.Fork(act)
		if err != nil {
			return err
		}
		forks = append(forks, f)
	}
	var first error
	for _, f := range forks {
		if err := f.Join(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// End joins every outstanding fork, cancels the context (terminating
// spawned branches) and returns the first fork error. The activity cannot
// be used afterwards.
func (a *Activity) End() error {
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return ErrActivityEnded
	}
	a.ended = true
	forks := a.forks
	a.forks = nil
	a.mu.Unlock()

	var first error
	for _, f := range forks {
		err := f.Join()
		if errors.Is(err, ErrJoined) {
			continue // already joined explicitly
		}
		if err != nil && first == nil {
			first = fmt.Errorf("core: unjoined fork failed: %w", err)
		}
	}
	a.cancel()
	return first
}

// drainSpawned waits for spawned branches; exported to tests via
// export_test.go only.
func (a *Activity) drainSpawned() { a.spawn.Wait() }
