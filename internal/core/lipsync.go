package core

// The tutorial notes that the prescribed transparencies are "not intended
// to be the complete set, merely a starting point", and names the example
// everybody in 1995 cared about: "lip-sync transparency could be defined
// for stream interfaces supporting audio-visual interaction". This file
// defines it, as an additional transparency realised — like replication —
// by a binding object.
//
// A lip-sync binding synchronises a declared set of flows: an element of a
// synchronised flow is delivered to the sinks only when every other
// synchronised flow has produced its matching element, and matched groups
// are released in order. Consumers therefore observe aligned audio/video
// regardless of how the producer's flows interleave in the channel. A
// bounded window caps buffering: if one flow stalls for more than Window
// elements, the others are released unaligned (degraded but live — the
// usual streaming trade-off).

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/values"
)

// LipSyncConfig configures a lip-sync binding object.
type LipSyncConfig struct {
	// Flows lists the flow names to synchronise with each other; elements
	// of other flows pass through immediately.
	Flows []string
	// Window bounds per-flow buffering; once a flow is Window elements
	// ahead of a stalled peer, its queue is flushed unaligned (0 = 16).
	Window int
}

// lipSyncBinding buffers synchronised flows and releases matched groups.
// Sink management and fan-out are delegated to an inner stream binding,
// so the control interface is StreamBindingControlType unchanged.
type lipSyncBinding struct {
	inner  *streamBinding
	synced map[string]bool
	order  []string
	window int

	mu      sync.Mutex
	queues  map[string][]values.Value
	stalled uint64 // forced unaligned releases
	groups  uint64 // aligned groups released
}

var _ engineering.Behavior = (*lipSyncBinding)(nil)

// RegisterLipSyncBinding installs the lip-sync binding behaviour under the
// given name. Objects created from it offer StreamBindingControlType plus
// the stream interface being synchronised.
func RegisterLipSyncBinding(reg *engineering.BehaviorRegistry, name string, bind BinderFunc, cfg LipSyncConfig) {
	window := cfg.Window
	if window <= 0 {
		window = 16
	}
	flows := append([]string(nil), cfg.Flows...)
	reg.Register(name, func(values.Value) (engineering.Behavior, error) {
		if len(flows) < 2 {
			return nil, fmt.Errorf("core: lip-sync needs at least two flows, got %v", flows)
		}
		synced := make(map[string]bool, len(flows))
		for _, f := range flows {
			synced[f] = true
		}
		return &lipSyncBinding{
			inner:  &streamBinding{bind: bind, sinks: make(map[naming.InterfaceID]sinkEntry)},
			synced: synced,
			order:  flows,
			window: window,
			queues: make(map[string][]values.Value, len(flows)),
		}, nil
	})
}

// Invoke delegates the control interface (AddSink/RemoveSink/SinkCount)
// and adds SyncStats, which reports alignment behaviour.
func (l *lipSyncBinding) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if op == "SyncStats" {
		l.mu.Lock()
		defer l.mu.Unlock()
		return "OK", []values.Value{
			values.Uint(l.groups),
			values.Uint(l.stalled),
		}, nil
	}
	return l.inner.Invoke(ctx, op, args)
}

// Flow buffers synchronised flows and forwards matched groups in flow
// order; unsynchronised flows pass straight through.
func (l *lipSyncBinding) Flow(flow string, elem values.Value) {
	if !l.synced[flow] {
		l.inner.Flow(flow, elem)
		return
	}
	type release struct {
		flow string
		elem values.Value
	}
	var releases []release
	l.mu.Lock()
	l.queues[flow] = append(l.queues[flow], elem)
	// Release as many fully-aligned groups as exist.
	for {
		ready := true
		for _, f := range l.order {
			if len(l.queues[f]) == 0 {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		for _, f := range l.order {
			releases = append(releases, release{f, l.queues[f][0]})
			l.queues[f] = l.queues[f][1:]
		}
		l.groups++
	}
	// Window overflow: a stalled peer must not buffer us forever.
	if len(l.queues[flow]) > l.window {
		for _, e := range l.queues[flow] {
			releases = append(releases, release{flow, e})
		}
		l.queues[flow] = nil
		l.stalled++
	}
	l.mu.Unlock()
	for _, r := range releases {
		l.inner.Flow(r.flow, r.elem)
	}
}

// CheckpointState captures the attached sinks (buffered media elements are
// transient and deliberately dropped across moves, like any live stream).
func (l *lipSyncBinding) CheckpointState() (values.Value, error) {
	return l.inner.CheckpointState()
}

// RestoreState re-binds to the checkpointed sinks.
func (l *lipSyncBinding) RestoreState(state values.Value) error {
	return l.inner.RestoreState(state)
}
