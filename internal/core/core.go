// Package core implements the RM-ODP computational viewpoint (Section 5 of
// the tutorial): the model in which an ODP application is specified as
// objects that encapsulate data and behaviour, offer multiple strongly
// typed interfaces, and interact through bindings — all in a
// distribution-transparent manner.
//
// The package provides:
//
//   - object templates: the computational specification of an object (its
//     behaviour plus the interfaces it offers), which the odp facade
//     deploys onto engineering structures;
//   - environment contracts (Section 5.3): the required distribution
//     transparencies and quality-of-service bounds for a binding, consumed
//     by the transparency configurator;
//   - activities (Section 5.2): sequential and parallel composition of
//     actions, with dependent fork/join and independent spawn;
//   - binding objects (Section 5): first-class objects that realise
//     complex multi-party bindings, here a stream binding that fans a
//     producer's flows out to any number of consumers.
package core

import (
	"errors"
	"fmt"

	"repro/internal/types"
	"repro/internal/values"
)

// ErrBadTemplate is wrapped by template validation failures.
var ErrBadTemplate = errors.New("core: invalid object template")

// InterfaceDecl declares one interface a computational object offers,
// together with the environment contract its bindings must satisfy.
type InterfaceDecl struct {
	Type     *types.Interface
	Contract Contract
}

// ObjectTemplate is the computational specification of an object: the
// named behaviour that realises it, the argument that configures the
// behaviour, and the interfaces it offers. Templates are what the
// deployment layer (package odp) instantiates into engineering objects.
type ObjectTemplate struct {
	Name       string
	Behavior   string
	Arg        values.Value
	Interfaces []InterfaceDecl
}

// Validate checks the template: a name, a behaviour, at least one
// interface, all interface types valid and distinctly named.
func (t *ObjectTemplate) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadTemplate)
	}
	if t.Behavior == "" {
		return fmt.Errorf("%w: %s: empty behaviour", ErrBadTemplate, t.Name)
	}
	if len(t.Interfaces) == 0 {
		return fmt.Errorf("%w: %s: offers no interfaces", ErrBadTemplate, t.Name)
	}
	seen := map[string]bool{}
	for i, d := range t.Interfaces {
		if d.Type == nil {
			return fmt.Errorf("%w: %s: interface %d has nil type", ErrBadTemplate, t.Name, i)
		}
		if err := d.Type.Validate(); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrBadTemplate, t.Name, err)
		}
		if seen[d.Type.Name] {
			return fmt.Errorf("%w: %s: duplicate interface type %q", ErrBadTemplate, t.Name, d.Type.Name)
		}
		seen[d.Type.Name] = true
		if err := d.Contract.Validate(); err != nil {
			return fmt.Errorf("%w: %s interface %s: %v", ErrBadTemplate, t.Name, d.Type.Name, err)
		}
	}
	return nil
}

// Interface returns the declaration for the named interface type.
func (t *ObjectTemplate) Interface(typeName string) (InterfaceDecl, bool) {
	for _, d := range t.Interfaces {
		if d.Type.Name == typeName {
			return d, true
		}
	}
	return InterfaceDecl{}, false
}
