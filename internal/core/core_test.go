package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
	"repro/internal/values"
)

func validTemplate() *ObjectTemplate {
	return &ObjectTemplate{
		Name:     "branch",
		Behavior: "bank.branch",
		Arg:      values.Null(),
		Interfaces: []InterfaceDecl{
			{Type: types.OpInterface("T", types.Announce("Ping"))},
			{Type: types.OpInterface("U", types.Announce("Pong")), Contract: Contract{Require: TransparencySet(Access | Relocation)}},
		},
	}
}

func TestTemplateValidate(t *testing.T) {
	if err := validTemplate().Validate(); err != nil {
		t.Fatalf("valid template rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*ObjectTemplate)
	}{
		{"empty-name", func(o *ObjectTemplate) { o.Name = "" }},
		{"empty-behavior", func(o *ObjectTemplate) { o.Behavior = "" }},
		{"no-interfaces", func(o *ObjectTemplate) { o.Interfaces = nil }},
		{"nil-type", func(o *ObjectTemplate) { o.Interfaces[0].Type = nil }},
		{"invalid-type", func(o *ObjectTemplate) {
			o.Interfaces[0].Type = types.OpInterface("X", types.Announce("a"), types.Announce("a"))
		}},
		{"duplicate-type", func(o *ObjectTemplate) { o.Interfaces[1].Type = types.OpInterface("T", types.Announce("Ping")) }},
		{"bad-contract", func(o *ObjectTemplate) { o.Interfaces[0].Contract.MaxLatency = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tmpl := validTemplate()
			c.mut(tmpl)
			if err := tmpl.Validate(); !errors.Is(err, ErrBadTemplate) && !errors.Is(err, ErrBadContract) {
				if err == nil {
					t.Fatal("Validate should fail")
				}
				t.Errorf("err = %v", err)
			}
		})
	}
}

func TestTemplateInterfaceLookup(t *testing.T) {
	tmpl := validTemplate()
	if d, ok := tmpl.Interface("U"); !ok || !d.Contract.Require.Has(Relocation) {
		t.Errorf("Interface(U) = %+v, %v", d, ok)
	}
	if _, ok := tmpl.Interface("Ghost"); ok {
		t.Error("Interface(Ghost) should not be found")
	}
}

func TestTransparencySet(t *testing.T) {
	var s TransparencySet
	s = s.With(Access).With(Failure)
	if !s.Has(Access) || !s.Has(Failure) || s.Has(Migration) {
		t.Errorf("set membership wrong: %v", s)
	}
	s = s.Without(Access)
	if s.Has(Access) {
		t.Error("Without failed")
	}
	if got := TransparencySet(0).String(); got != "none" {
		t.Errorf("empty set = %q", got)
	}
	if got := TransparencySet(Access | Transaction).String(); got != "access+transaction" {
		t.Errorf("set string = %q", got)
	}
	if got := TransparencySet(1 << 12).String(); got == "none" {
		t.Errorf("unknown bits should be reported: %q", got)
	}
}

func TestParseTransparencies(t *testing.T) {
	cases := []struct {
		in      string
		want    TransparencySet
		wantErr bool
	}{
		{"", 0, false},
		{"none", 0, false},
		{"all", TransparencySet(AllTransparencies), false},
		{"access", TransparencySet(Access), false},
		{"access+relocation+failure", TransparencySet(Access | Relocation | Failure), false},
		{"bogus", 0, true},
		{"access+bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTransparencies(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseTransparencies(%q) error = %v", c.in, err)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseTransparencies(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// Round trip every single transparency.
	for _, tr := range []Transparency{Access, Location, Relocation, Migration, Persistence, Failure, Replication, Transaction} {
		s := TransparencySet(tr)
		got, err := ParseTransparencies(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: %v, %v", s, got, err)
		}
	}
}

func TestContractValidate(t *testing.T) {
	good := []Contract{
		{},
		{Require: TransparencySet(AllTransparencies), MaxLatency: time.Second, MaxRetries: 2, Security: SecurityAudited, Replicas: 5},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good contract %d rejected: %v", i, err)
		}
	}
	bad := []Contract{
		{Require: TransparencySet(1 << 12)},
		{MaxLatency: -time.Second},
		{MaxRetries: -1},
		{Replicas: -1},
		{Replicas: 3}, // replicas without Replication
		{Security: SecurityLevel(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadContract) {
			t.Errorf("bad contract %d: err = %v", i, err)
		}
	}
}

func TestContractDefaults(t *testing.T) {
	if got := (Contract{}).EffectiveRetries(); got != 0 {
		t.Errorf("no-failure retries = %d", got)
	}
	if got := (Contract{Require: TransparencySet(Failure)}).EffectiveRetries(); got != 3 {
		t.Errorf("failure default retries = %d", got)
	}
	if got := (Contract{Require: TransparencySet(Failure), MaxRetries: 7}).EffectiveRetries(); got != 7 {
		t.Errorf("explicit retries = %d", got)
	}
	if got := (Contract{}).EffectiveReplicas(); got != 1 {
		t.Errorf("no-replication replicas = %d", got)
	}
	if got := (Contract{Require: TransparencySet(Replication)}).EffectiveReplicas(); got != 3 {
		t.Errorf("replication default = %d", got)
	}
	if got := (Contract{Require: TransparencySet(Replication), Replicas: 5}).EffectiveReplicas(); got != 5 {
		t.Errorf("explicit replicas = %d", got)
	}
}

func TestSecurityLevelString(t *testing.T) {
	for l, want := range map[SecurityLevel]string{
		SecurityNone: "none", SecurityAuthenticated: "authenticated", SecurityAudited: "audited",
		SecurityLevel(9): "securitylevel(9)",
	} {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestActivitySequence(t *testing.T) {
	a := NewActivity(context.Background())
	var order []int
	err := a.Do(
		func(context.Context) error { order = append(order, 1); return nil },
		func(context.Context) error { order = append(order, 2); return nil },
	)
	if err != nil || len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("Do = %v, order = %v", err, order)
	}
	sentinel := errors.New("stop")
	err = a.Do(
		func(context.Context) error { return sentinel },
		func(context.Context) error { order = append(order, 3); return nil },
	)
	if !errors.Is(err, sentinel) || len(order) != 2 {
		t.Errorf("sequence should stop at first error: %v, %v", err, order)
	}
	if err := a.End(); err != nil {
		t.Fatal(err)
	}
}

func TestActivityForkJoin(t *testing.T) {
	a := NewActivity(context.Background())
	f, err := a.Fork(func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Join(); err != nil {
		t.Errorf("Join = %v", err)
	}
	if err := f.Join(); !errors.Is(err, ErrJoined) {
		t.Errorf("second Join = %v", err)
	}
	sentinel := errors.New("branch failed")
	f2, err := a.Fork(func(context.Context) error { return sentinel })
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Join(); !errors.Is(err, sentinel) {
		t.Errorf("failed branch Join = %v", err)
	}
	if err := a.End(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Fork(func(context.Context) error { return nil }); !errors.Is(err, ErrActivityEnded) {
		t.Errorf("fork after end = %v", err)
	}
	if err := a.End(); !errors.Is(err, ErrActivityEnded) {
		t.Errorf("double end = %v", err)
	}
}

func TestActivityEndJoinsOutstandingForks(t *testing.T) {
	a := NewActivity(context.Background())
	sentinel := errors.New("late failure")
	if _, err := a.Fork(func(context.Context) error {
		time.Sleep(5 * time.Millisecond)
		return sentinel
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.End(); !errors.Is(err, sentinel) {
		t.Errorf("End should surface unjoined fork error: %v", err)
	}
}

func TestActivityParallel(t *testing.T) {
	a := NewActivity(context.Background())
	var n atomic.Int32
	err := a.Parallel(
		func(context.Context) error { n.Add(1); return nil },
		func(context.Context) error { n.Add(1); return nil },
		func(context.Context) error { n.Add(1); return nil },
	)
	if err != nil || n.Load() != 3 {
		t.Errorf("Parallel = %v, n = %d", err, n.Load())
	}
	sentinel := errors.New("one failed")
	err = a.Parallel(
		func(context.Context) error { return nil },
		func(context.Context) error { return sentinel },
	)
	if !errors.Is(err, sentinel) {
		t.Errorf("Parallel error = %v", err)
	}
	if err := a.End(); err != nil {
		t.Fatal(err)
	}
	if err := a.Parallel(func(context.Context) error { return nil }); !errors.Is(err, ErrActivityEnded) {
		t.Errorf("parallel after end = %v", err)
	}
}

func TestActivitySpawnIsIndependent(t *testing.T) {
	a := NewActivity(context.Background())
	started := make(chan struct{})
	cancelled := make(chan struct{})
	if err := a.Spawn(func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		close(cancelled)
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := a.End(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("spawned branch not cancelled by End")
	}
	a.drainSpawned()
	if err := a.Spawn(func(context.Context) {}); !errors.Is(err, ErrActivityEnded) {
		t.Errorf("spawn after end = %v", err)
	}
}

func TestActivityContextCancellationStopsSequence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	a := NewActivity(ctx)
	cancel()
	err := a.Do(func(context.Context) error {
		t.Error("action should not run after cancellation")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}
