package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/types"
	"repro/internal/values"
)

// FlowSender is the producer end of a stream binding to one consumer;
// *channel.Binding satisfies it.
type FlowSender interface {
	Flow(ctx context.Context, flow string, elem values.Value) error
	Close() error
}

// BinderFunc creates the channel to a consumer's stream interface. The
// deployment layer supplies one that uses the node's transport, locator
// and contract-derived stages.
type BinderFunc func(ref naming.InterfaceRef) (FlowSender, error)

// StreamBindingControlType is the control interface of a stream binding
// object: consumers are attached and detached at run time, which is what
// makes the binding a first-class "binding object" rather than a primitive
// binding.
func StreamBindingControlType() *types.Interface {
	return types.OpInterface("StreamBindingControl",
		types.Op("AddSink",
			types.Params(types.P("sink", naming.RefDataType())),
			types.Term("OK", types.P("sinks", values.TInt())),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("RemoveSink",
			types.Params(types.P("sink", naming.RefDataType())),
			types.Term("OK", types.P("sinks", values.TInt())),
			types.Term("NotFound"),
		),
		types.Op("SinkCount", nil,
			types.Term("OK", types.P("sinks", values.TInt())),
		),
	)
}

// streamBinding is the binding-object behaviour: every flow element it
// receives on its stream interface is forwarded to every attached sink.
type streamBinding struct {
	bind BinderFunc

	mu    sync.Mutex
	sinks map[naming.InterfaceID]sinkEntry
}

type sinkEntry struct {
	ref    naming.InterfaceRef
	sender FlowSender
}

var _ engineering.Behavior = (*streamBinding)(nil)

// RegisterStreamBinding installs the stream-binding behaviour in a
// behaviour registry under the given name. Objects created from it should
// offer StreamBindingControlType (for control) plus the stream interface
// type being bound (to receive the producer's flows).
func RegisterStreamBinding(reg *engineering.BehaviorRegistry, name string, bind BinderFunc) {
	reg.Register(name, func(values.Value) (engineering.Behavior, error) {
		return &streamBinding{bind: bind, sinks: make(map[naming.InterfaceID]sinkEntry)}, nil
	})
}

// Invoke implements the control interface.
func (s *streamBinding) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	switch op {
	case "AddSink":
		ref, err := naming.RefFromValue(args[0])
		if err != nil {
			return "Error", []values.Value{values.Str(err.Error())}, nil
		}
		sender, err := s.bind(ref)
		if err != nil {
			return "Error", []values.Value{values.Str(err.Error())}, nil
		}
		s.mu.Lock()
		if old, dup := s.sinks[ref.ID]; dup {
			s.mu.Unlock()
			_ = sender.Close()
			_ = old
			return "Error", []values.Value{values.Str("sink already attached")}, nil
		}
		s.sinks[ref.ID] = sinkEntry{ref: ref, sender: sender}
		n := len(s.sinks)
		s.mu.Unlock()
		return "OK", []values.Value{values.Int(int64(n))}, nil
	case "RemoveSink":
		ref, err := naming.RefFromValue(args[0])
		if err != nil {
			return "NotFound", nil, nil
		}
		s.mu.Lock()
		entry, ok := s.sinks[ref.ID]
		if ok {
			delete(s.sinks, ref.ID)
		}
		n := len(s.sinks)
		s.mu.Unlock()
		if !ok {
			return "NotFound", nil, nil
		}
		_ = entry.sender.Close()
		return "OK", []values.Value{values.Int(int64(n))}, nil
	case "SinkCount":
		s.mu.Lock()
		n := len(s.sinks)
		s.mu.Unlock()
		return "OK", []values.Value{values.Int(int64(n))}, nil
	}
	return "", nil, fmt.Errorf("core: stream binding has no operation %q", op)
}

// Flow fans the element out to every sink. Delivery is best-effort per
// sink (a dead consumer does not block the others); failed sinks stay
// attached so that transient failures heal via the sender's own retry and
// relocation machinery.
func (s *streamBinding) Flow(flow string, elem values.Value) {
	s.mu.Lock()
	senders := make([]FlowSender, 0, len(s.sinks))
	for _, e := range s.sinks {
		senders = append(senders, e.sender)
	}
	s.mu.Unlock()
	ctx := context.Background()
	for _, snd := range senders {
		_ = snd.Flow(ctx, flow, elem)
	}
}

// CheckpointState captures the attached sink references, so a migrated
// binding object reattaches to its consumers.
func (s *streamBinding) CheckpointState() (values.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	refs := make([]values.Value, 0, len(s.sinks))
	for _, e := range s.sinks {
		refs = append(refs, e.ref.ToValue())
	}
	return values.Seq(refs...), nil
}

// RestoreState re-binds to the checkpointed sinks.
func (s *streamBinding) RestoreState(state values.Value) error {
	if state.Kind() != values.KindSeq {
		return fmt.Errorf("core: stream binding state must be a seq, got %v", state.Kind())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < state.Len(); i++ {
		ref, err := naming.RefFromValue(state.ElemAt(i))
		if err != nil {
			return fmt.Errorf("core: restoring sink %d: %w", i, err)
		}
		sender, err := s.bind(ref)
		if err != nil {
			return fmt.Errorf("core: rebinding sink %s: %w", ref.ID, err)
		}
		s.sinks[ref.ID] = sinkEntry{ref: ref, sender: sender}
	}
	return nil
}
