package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/types"
	"repro/internal/values"
)

func frameStream() *types.Interface {
	return types.StreamInterface("Frames",
		types.FlowOf("video", types.Consumer, values.TBytes()),
	)
}

// collector is a consumer behaviour that records received flow elements.
type collector struct {
	mu    sync.Mutex
	elems []values.Value
}

func (c *collector) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "", nil, nil
}

func (c *collector) Flow(_ string, elem values.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elems = append(c.elems, elem)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.elems)
}

func TestStreamBindingObjectFansOut(t *testing.T) {
	net := netsim.New(1)
	reloc := relocator.New()
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID: "alpha", Endpoint: "sim://alpha", Transport: net.From("alpha"), Locations: reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Behaviours: consumers plus the binding object itself.
	node.Behaviors().Register("collector", func(values.Value) (engineering.Behavior, error) {
		return &collector{}, nil
	})
	RegisterStreamBinding(node.Behaviors(), "core.stream-binding", func(ref naming.InterfaceRef) (FlowSender, error) {
		return node.Bind(ref, channel.BindConfig{Locator: reloc})
	})

	capsule, err := node.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Two consumers, each offering the stream interface.
	consumers := make([]*collector, 2)
	sinkRefs := make([]naming.InterfaceRef, 2)
	for i := range consumers {
		obj, err := cluster.CreateObject("collector", values.Null())
		if err != nil {
			t.Fatal(err)
		}
		ref, err := obj.AddInterface(frameStream())
		if err != nil {
			t.Fatal(err)
		}
		sinkRefs[i] = ref
		consumers[i] = obj.Behavior().(*collector)
	}

	// The binding object offers control + stream interfaces.
	bindObj, err := cluster.CreateObject("core.stream-binding", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	ctrlRef, err := bindObj.AddInterface(StreamBindingControlType())
	if err != nil {
		t.Fatal(err)
	}
	streamRef, err := bindObj.AddInterface(frameStream())
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ctrl, err := node.Bind(ctrlRef, channel.BindConfig{Type: StreamBindingControlType()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// Attach both sinks through the control interface.
	for i, ref := range sinkRefs {
		term, res, err := ctrl.Invoke(ctx, "AddSink", []values.Value{ref.ToValue()})
		if err != nil || term != "OK" {
			t.Fatalf("AddSink %d = %q, %v, %v", i, term, res, err)
		}
	}
	// Duplicate attachment is rejected.
	if term, _, err := ctrl.Invoke(ctx, "AddSink", []values.Value{sinkRefs[0].ToValue()}); err != nil || term != "Error" {
		t.Errorf("duplicate AddSink = %q, %v", term, err)
	}
	if term, res, err := ctrl.Invoke(ctx, "SinkCount", nil); err != nil || term != "OK" {
		t.Fatalf("SinkCount = %q, %v", term, err)
	} else if n, _ := res[0].AsInt(); n != 2 {
		t.Errorf("sink count = %d", n)
	}

	// Produce three frames into the binding object.
	producer, err := node.Bind(streamRef, channel.BindConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	for i := 0; i < 3; i++ {
		if err := producer.Flow(ctx, "video", values.BytesVal([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, func() bool { return consumers[0].count() == 3 && consumers[1].count() == 3 })

	// Detach one sink; further frames only reach the other.
	if term, _, err := ctrl.Invoke(ctx, "RemoveSink", []values.Value{sinkRefs[0].ToValue()}); err != nil || term != "OK" {
		t.Fatalf("RemoveSink = %q, %v", term, err)
	}
	if term, _, err := ctrl.Invoke(ctx, "RemoveSink", []values.Value{sinkRefs[0].ToValue()}); err != nil || term != "NotFound" {
		t.Errorf("second RemoveSink = %q, %v", term, err)
	}
	if err := producer.Flow(ctx, "video", values.BytesVal([]byte{9})); err != nil {
		t.Fatal(err)
	}
	waitCond(t, func() bool { return consumers[1].count() == 4 })
	if consumers[0].count() != 3 {
		t.Errorf("detached consumer received %d frames, want 3", consumers[0].count())
	}

	// Bad sink reference value.
	if term, _, err := ctrl.Invoke(ctx, "AddSink", []values.Value{naming.RefDataType().ZeroValue()}); err != nil {
		t.Fatal(err)
	} else if term != "Error" {
		// A zero ref decodes but fails to bind.
		t.Errorf("zero-ref AddSink = %q", term)
	}
}

func TestStreamBindingCheckpointRestore(t *testing.T) {
	net := netsim.New(2)
	reloc := relocator.New()
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID: "alpha", Endpoint: "sim://alpha", Transport: net.From("alpha"), Locations: reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Behaviors().Register("collector", func(values.Value) (engineering.Behavior, error) {
		return &collector{}, nil
	})
	RegisterStreamBinding(node.Behaviors(), "core.stream-binding", func(ref naming.InterfaceRef) (FlowSender, error) {
		return node.Bind(ref, channel.BindConfig{Locator: reloc})
	})
	capsule, _ := node.CreateCapsule()
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cobj, err := cluster.CreateObject("collector", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	sinkRef, err := cobj.AddInterface(frameStream())
	if err != nil {
		t.Fatal(err)
	}
	bindObj, err := cluster.CreateObject("core.stream-binding", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	sb := bindObj.Behavior().(*streamBinding)
	term, _, err := sb.Invoke(context.Background(), "AddSink", []values.Value{sinkRef.ToValue()})
	if err != nil || term != "OK" {
		t.Fatalf("AddSink = %q, %v", term, err)
	}
	state, err := sb.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	restored := &streamBinding{
		bind: func(ref naming.InterfaceRef) (FlowSender, error) {
			return node.Bind(ref, channel.BindConfig{Locator: reloc})
		},
		sinks: make(map[naming.InterfaceID]sinkEntry),
	}
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	restored.Flow("video", values.BytesVal([]byte{1}))
	coll := cobj.Behavior().(*collector)
	waitCond(t, func() bool { return coll.count() == 1 })

	if err := restored.RestoreState(values.Int(1)); err == nil {
		t.Error("non-seq state should fail")
	}
	if err := restored.RestoreState(values.Seq(values.Int(1))); err == nil {
		t.Error("bad ref in state should fail")
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
