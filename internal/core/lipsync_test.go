package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/values"
)

// orderedCollector records flow elements in arrival order.
type orderedCollector struct {
	mu     sync.Mutex
	events []string // "flow:seq"
}

func (c *orderedCollector) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "", nil, nil
}

func (c *orderedCollector) Flow(flow string, elem values.Value) {
	seq, _ := elem.AsUint()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, flow+":"+string(rune('0'+seq)))
}

func (c *orderedCollector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.events...)
}

// directSender short-circuits the channel: flows go straight to the
// collector, so ordering assertions are deterministic.
type directSender struct{ c *orderedCollector }

func (d directSender) Flow(_ context.Context, flow string, elem values.Value) error {
	d.c.Flow(flow, elem)
	return nil
}

func (directSender) Close() error { return nil }

func newLipSync(t *testing.T, cfg LipSyncConfig, c *orderedCollector) *lipSyncBinding {
	t.Helper()
	reg := engineering.NewBehaviorRegistry()
	RegisterLipSyncBinding(reg, "lipsync", func(naming.InterfaceRef) (FlowSender, error) {
		return directSender{c}, nil
	}, cfg)
	b, err := reg.New("lipsync", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	ls := b.(*lipSyncBinding)
	// Attach one sink directly (bypassing the ref plumbing covered by the
	// stream-binding tests).
	ls.inner.sinks[naming.InterfaceID{Nonce: 1}] = sinkEntry{sender: directSender{c}}
	return ls
}

func TestLipSyncAlignsFlows(t *testing.T) {
	c := &orderedCollector{}
	ls := newLipSync(t, LipSyncConfig{Flows: []string{"audio", "video"}}, c)

	// Video runs ahead: nothing is delivered until audio catches up.
	ls.Flow("video", values.Uint(0))
	ls.Flow("video", values.Uint(1))
	if got := c.snapshot(); len(got) != 0 {
		t.Fatalf("delivered before alignment: %v", got)
	}
	ls.Flow("audio", values.Uint(0))
	if got := strings.Join(c.snapshot(), ","); got != "audio:0,video:0" {
		t.Fatalf("first group = %q", got)
	}
	ls.Flow("audio", values.Uint(1))
	if got := strings.Join(c.snapshot(), ","); got != "audio:0,video:0,audio:1,video:1" {
		t.Fatalf("second group = %q", got)
	}
	// Stats: two aligned groups, no stalls.
	term, res, err := ls.Invoke(context.Background(), "SyncStats", nil)
	if err != nil || term != "OK" {
		t.Fatal(err)
	}
	if g, _ := res[0].AsUint(); g != 2 {
		t.Errorf("groups = %d", g)
	}
	if s, _ := res[1].AsUint(); s != 0 {
		t.Errorf("stalled = %d", s)
	}
}

func TestLipSyncUnsyncedFlowPassesThrough(t *testing.T) {
	c := &orderedCollector{}
	ls := newLipSync(t, LipSyncConfig{Flows: []string{"audio", "video"}}, c)
	ls.Flow("subtitles", values.Uint(7))
	if got := strings.Join(c.snapshot(), ","); got != "subtitles:7" {
		t.Fatalf("pass-through = %q", got)
	}
}

func TestLipSyncWindowOverflowReleasesUnaligned(t *testing.T) {
	c := &orderedCollector{}
	ls := newLipSync(t, LipSyncConfig{Flows: []string{"audio", "video"}, Window: 3}, c)
	// Audio stalls entirely; after window+1 video frames the queue flushes.
	for i := uint64(0); i < 4; i++ {
		ls.Flow("video", values.Uint(i))
	}
	if got := len(c.snapshot()); got != 4 {
		t.Fatalf("flushed = %d events (%v)", got, c.snapshot())
	}
	_, res, err := ls.Invoke(context.Background(), "SyncStats", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res[1].AsUint(); s != 1 {
		t.Errorf("stalled = %d, want 1", s)
	}
}

func TestLipSyncRequiresTwoFlows(t *testing.T) {
	reg := engineering.NewBehaviorRegistry()
	RegisterLipSyncBinding(reg, "bad", func(naming.InterfaceRef) (FlowSender, error) {
		return nil, nil
	}, LipSyncConfig{Flows: []string{"solo"}})
	if _, err := reg.New("bad", values.Null()); err == nil {
		t.Fatal("single-flow lip-sync should be rejected")
	}
}

func TestLipSyncControlDelegation(t *testing.T) {
	c := &orderedCollector{}
	ls := newLipSync(t, LipSyncConfig{Flows: []string{"a", "b"}}, c)
	term, res, err := ls.Invoke(context.Background(), "SinkCount", nil)
	if err != nil || term != "OK" {
		t.Fatal(err)
	}
	if n, _ := res[0].AsInt(); n != 1 {
		t.Errorf("sinks = %d", n)
	}
	// Checkpoint round trip keeps the sink set shape.
	state, err := ls.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	if state.Kind() != values.KindSeq {
		t.Errorf("state kind = %v", state.Kind())
	}
}
