package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// ErrBadContract is wrapped by contract validation failures.
var ErrBadContract = errors.New("core: invalid environment contract")

// Transparency identifies one of the distribution transparencies of
// Section 9 of the tutorial.
type Transparency uint16

// The eight prescribed distribution transparencies. The set "is not
// intended to be complete, merely a starting point of common requirements"
// — additional transparencies can be defined as further bits.
const (
	Access Transparency = 1 << iota
	Location
	Relocation
	Migration
	Persistence
	Failure
	Replication
	Transaction
)

var transparencyNames = []struct {
	t    Transparency
	name string
}{
	{Access, "access"},
	{Location, "location"},
	{Relocation, "relocation"},
	{Migration, "migration"},
	{Persistence, "persistence"},
	{Failure, "failure"},
	{Replication, "replication"},
	{Transaction, "transaction"},
}

// AllTransparencies is the full prescribed set.
const AllTransparencies = Access | Location | Relocation | Migration |
	Persistence | Failure | Replication | Transaction

// TransparencySet is a set of required transparencies.
type TransparencySet uint16

// Has reports whether the set requires t.
func (s TransparencySet) Has(t Transparency) bool { return uint16(s)&uint16(t) != 0 }

// With returns the set extended with t.
func (s TransparencySet) With(t Transparency) TransparencySet {
	return TransparencySet(uint16(s) | uint16(t))
}

// Without returns the set with t removed.
func (s TransparencySet) Without(t Transparency) TransparencySet {
	return TransparencySet(uint16(s) &^ uint16(t))
}

// String lists the set's members, e.g. "access+relocation".
func (s TransparencySet) String() string {
	if s == 0 {
		return "none"
	}
	var parts []string
	for _, tn := range transparencyNames {
		if s.Has(tn.t) {
			parts = append(parts, tn.name)
		}
	}
	if extra := uint16(s) &^ uint16(AllTransparencies); extra != 0 {
		parts = append(parts, fmt.Sprintf("unknown(%#x)", extra))
	}
	return strings.Join(parts, "+")
}

// ParseTransparencies parses a "+"-separated list of transparency names,
// e.g. "access+relocation+failure". The empty string and "none" denote the
// empty set; "all" denotes the full prescribed set.
func ParseTransparencies(s string) (TransparencySet, error) {
	switch s {
	case "", "none":
		return 0, nil
	case "all":
		return TransparencySet(AllTransparencies), nil
	}
	var out TransparencySet
	for _, part := range strings.Split(s, "+") {
		found := false
		for _, tn := range transparencyNames {
			if tn.name == part {
				out = out.With(tn.t)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("%w: unknown transparency %q", ErrBadContract, part)
		}
	}
	return out, nil
}

// SecurityLevel states the security a binding requires, realised by
// package security ("the actual interactions must either be communicated
// over a secure network or employ end-to-end security checks" —
// Section 5.3).
type SecurityLevel int

// The security levels.
const (
	// SecurityNone requires no channel security.
	SecurityNone SecurityLevel = iota
	// SecurityAuthenticated requires authenticated, replay-protected
	// interactions.
	SecurityAuthenticated
	// SecurityAudited additionally requires an audit trail of operations.
	SecurityAudited
)

// String returns the level's name.
func (l SecurityLevel) String() string {
	switch l {
	case SecurityNone:
		return "none"
	case SecurityAuthenticated:
		return "authenticated"
	case SecurityAudited:
		return "audited"
	}
	return fmt.Sprintf("securitylevel(%d)", int(l))
}

// Contract is an environment contract (Section 5.3): the requirements a
// computational binding places on its engineering realisation, "expressed
// in high-level quality-of-service terms" rather than naming a particular
// network or mechanism.
type Contract struct {
	// Require lists the distribution transparencies the binding needs.
	Require TransparencySet
	// MaxLatency bounds the acceptable per-interaction latency (0 = none).
	MaxLatency time.Duration
	// MaxRetries bounds the retry budget used when Failure transparency is
	// required (default 3 when Failure is set and this is 0).
	MaxRetries int
	// Security states the required security level.
	Security SecurityLevel
	// Replicas states the required replication degree when Replication
	// transparency is set (default 3 when 0).
	Replicas int
}

// Validate checks internal consistency of the contract.
func (c Contract) Validate() error {
	if extra := uint16(c.Require) &^ uint16(AllTransparencies); extra != 0 {
		return fmt.Errorf("%w: unknown transparencies %#x", ErrBadContract, extra)
	}
	if c.MaxLatency < 0 {
		return fmt.Errorf("%w: negative latency bound", ErrBadContract)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("%w: negative retry budget", ErrBadContract)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("%w: negative replica count", ErrBadContract)
	}
	if c.Replicas > 0 && !c.Require.Has(Replication) {
		return fmt.Errorf("%w: replicas set without replication transparency", ErrBadContract)
	}
	switch c.Security {
	case SecurityNone, SecurityAuthenticated, SecurityAudited:
	default:
		return fmt.Errorf("%w: unknown security level %d", ErrBadContract, c.Security)
	}
	return nil
}

// EffectiveRetries returns the retry budget implied by the contract.
func (c Contract) EffectiveRetries() int {
	if !c.Require.Has(Failure) {
		return 0
	}
	if c.MaxRetries == 0 {
		return 3
	}
	return c.MaxRetries
}

// EffectiveReplicas returns the replication degree implied by the contract.
func (c Contract) EffectiveReplicas() int {
	if !c.Require.Has(Replication) {
		return 1
	}
	if c.Replicas == 0 {
		return 3
	}
	return c.Replicas
}
