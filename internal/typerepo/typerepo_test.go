package typerepo

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/types"
	"repro/internal/values"
)

func teller() *types.Interface {
	return types.OpInterface("BankTeller",
		types.Op("Deposit",
			types.Params(types.P("a", values.TString()), types.P("d", values.TInt())),
			types.Term("OK", types.P("new_balance", values.TInt())),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Withdraw",
			types.Params(types.P("a", values.TString()), types.P("d", values.TInt())),
			types.Term("OK", types.P("new_balance", values.TInt())),
			types.Term("NotToday", types.P("today", values.TInt()), types.P("daily_limit", values.TInt())),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

func manager() *types.Interface {
	return types.Extend("BankManager", teller(),
		types.Op("CreateAccount",
			types.Params(types.P("c", values.TString())),
			types.Term("OK", types.P("a", values.TString())),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

func loans() *types.Interface {
	return types.Extend("LoansOfficer", teller(),
		types.Op("ApproveLoan",
			types.Params(types.P("c", values.TString()), types.P("amount", values.TInt())),
			types.Term("OK"),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

func bankRepo(t *testing.T) Repository {
	t.Helper()
	r := New()
	for _, it := range []*types.Interface{teller(), manager(), loans()} {
		if err := r.RegisterInterface(it); err != nil {
			t.Fatalf("RegisterInterface(%s): %v", it.Name, err)
		}
	}
	return r
}

func TestRegisterAndLookup(t *testing.T) {
	r := bankRepo(t)
	it, err := r.LookupInterface("BankTeller")
	if err != nil || it.Name != "BankTeller" {
		t.Fatalf("LookupInterface = %v, %v", it, err)
	}
	if _, err := r.LookupInterface("Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup = %v", err)
	}
	names := r.Interfaces()
	want := []string{"BankManager", "BankTeller", "LoansOfficer"}
	if len(names) != len(want) {
		t.Fatalf("Interfaces = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Interfaces[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestRegisterIdempotentAndConflict(t *testing.T) {
	r := bankRepo(t)
	if err := r.RegisterInterface(teller()); err != nil {
		t.Errorf("idempotent re-register: %v", err)
	}
	different := types.OpInterface("BankTeller", types.Announce("Nop"))
	if err := r.RegisterInterface(different); !errors.Is(err, ErrConflict) {
		t.Errorf("conflicting register = %v", err)
	}
	if err := r.RegisterInterface(nil); !errors.Is(err, ErrBadType) {
		t.Errorf("nil register = %v", err)
	}
	invalid := types.OpInterface("Bad", types.Announce("x"), types.Announce("x"))
	if err := r.RegisterInterface(invalid); !errors.Is(err, ErrBadType) {
		t.Errorf("invalid register = %v", err)
	}
}

func TestIsSubtype(t *testing.T) {
	r := bankRepo(t)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"BankManager", "BankTeller", true},
		{"LoansOfficer", "BankTeller", true},
		{"BankTeller", "BankManager", false},
		{"LoansOfficer", "BankManager", false},
		{"BankManager", "LoansOfficer", false},
		{"BankTeller", "BankTeller", true},
	}
	for _, c := range cases {
		got, err := r.IsSubtype(c.sub, c.super)
		if err != nil {
			t.Fatalf("IsSubtype(%s, %s): %v", c.sub, c.super, err)
		}
		if got != c.want {
			t.Errorf("IsSubtype(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
		// Second call exercises the memo.
		got2, err := r.IsSubtype(c.sub, c.super)
		if err != nil || got2 != got {
			t.Errorf("memoised IsSubtype(%s, %s) = %v, %v", c.sub, c.super, got2, err)
		}
	}
	if _, err := r.IsSubtype("Ghost", "BankTeller"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown sub = %v", err)
	}
	if _, err := r.IsSubtype("BankTeller", "Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown super = %v", err)
	}
	if _, err := r.IsSubtype("Ghost", "Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown reflexive = %v", err)
	}
}

func TestHierarchyQueries(t *testing.T) {
	r := bankRepo(t)
	subs, err := r.Subtypes("BankTeller")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 || subs[0] != "BankManager" || subs[1] != "LoansOfficer" {
		t.Errorf("Subtypes(BankTeller) = %v", subs)
	}
	supers, err := r.Supertypes("BankManager")
	if err != nil {
		t.Fatal(err)
	}
	if len(supers) != 1 || supers[0] != "BankTeller" {
		t.Errorf("Supertypes(BankManager) = %v", supers)
	}
	if _, err := r.Subtypes("Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Subtypes(Ghost) = %v", err)
	}
	if _, err := r.Supertypes("Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Supertypes(Ghost) = %v", err)
	}
}

func TestDeclareSubtype(t *testing.T) {
	r := bankRepo(t)
	if err := r.DeclareSubtype("BankManager", "BankTeller"); err != nil {
		t.Fatalf("DeclareSubtype: %v", err)
	}
	got := r.DeclaredSupertypes("BankManager")
	if len(got) != 1 || got[0] != "BankTeller" {
		t.Errorf("DeclaredSupertypes = %v", got)
	}
	// An unsound declaration is rejected.
	if err := r.DeclareSubtype("BankTeller", "BankManager"); !errors.Is(err, ErrBadDecl) {
		t.Errorf("unsound declaration = %v", err)
	}
	if err := r.DeclareSubtype("Ghost", "BankTeller"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown sub declaration = %v", err)
	}
	if err := r.DeclareSubtype("BankTeller", "Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown super declaration = %v", err)
	}
	if got := r.DeclaredSupertypes("BankTeller"); len(got) != 0 {
		t.Errorf("BankTeller declared supers = %v", got)
	}
}

func TestDataTypes(t *testing.T) {
	r := New()
	dollars := values.TInt()
	if err := r.RegisterData("Dollars", dollars); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterData("Dollars", values.TInt()); err != nil {
		t.Errorf("idempotent data register: %v", err)
	}
	if err := r.RegisterData("Dollars", values.TFloat()); !errors.Is(err, ErrConflict) {
		t.Errorf("conflicting data register = %v", err)
	}
	if err := r.RegisterData("", values.TInt()); !errors.Is(err, ErrBadName) {
		t.Errorf("empty name = %v", err)
	}
	if err := r.RegisterData("X", nil); !errors.Is(err, ErrBadType) {
		t.Errorf("nil data type = %v", err)
	}
	got, err := r.LookupData("Dollars")
	if err != nil || !got.Equal(dollars) {
		t.Errorf("LookupData = %v, %v", got, err)
	}
	if _, err := r.LookupData("Ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing data = %v", err)
	}
}

func TestRelationships(t *testing.T) {
	r := bankRepo(t)
	if err := r.RegisterData("Dollars", values.TInt()); err != nil {
		t.Fatal(err)
	}
	if err := r.Relate("uses", "BankTeller", "Dollars"); err != nil {
		t.Fatalf("Relate: %v", err)
	}
	if err := r.Relate("uses", "BankTeller", "BankManager"); err != nil {
		t.Fatalf("Relate: %v", err)
	}
	got := r.Related("uses", "BankTeller")
	if len(got) != 2 || got[0] != "BankManager" || got[1] != "Dollars" {
		t.Errorf("Related = %v", got)
	}
	if got := r.Related("uses", "Dollars"); len(got) != 0 {
		t.Errorf("Related(Dollars) = %v", got)
	}
	if got := r.Related("ghost-rel", "BankTeller"); len(got) != 0 {
		t.Errorf("Related(ghost-rel) = %v", got)
	}
	if err := r.Relate("uses", "Ghost", "Dollars"); !errors.Is(err, ErrBadRelate) {
		t.Errorf("unknown from = %v", err)
	}
	if err := r.Relate("uses", "Dollars", "Ghost"); !errors.Is(err, ErrBadRelate) {
		t.Errorf("unknown to = %v", err)
	}
}

func TestCacheInvalidatedOnRegister(t *testing.T) {
	r := New()
	if err := r.RegisterInterface(teller()); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterInterface(manager()); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.IsSubtype("BankManager", "BankTeller"); !ok {
		t.Fatal("manager should be subtype")
	}
	// Register a new type: prior answers must remain correct (the memo is
	// reset, not corrupted).
	if err := r.RegisterInterface(loans()); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.IsSubtype("BankManager", "BankTeller"); !ok {
		t.Error("manager should still be subtype after new registration")
	}
	if ok, _ := r.IsSubtype("LoansOfficer", "BankTeller"); !ok {
		t.Error("loans officer should be subtype")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := bankRepo(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if ok, err := r.IsSubtype("BankManager", "BankTeller"); err != nil || !ok {
					t.Errorf("IsSubtype: %v %v", ok, err)
					return
				}
				extra := types.OpInterface(fmt.Sprintf("Extra-%d-%d", i, j), types.Announce("Nop"))
				if err := r.RegisterInterface(extra); err != nil {
					t.Errorf("RegisterInterface: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
