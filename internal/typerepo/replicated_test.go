package typerepo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/types"
	"repro/internal/values"
)

// variant mints an interface that extends teller() with one unique
// operation, so every variant is structurally a subtype of BankTeller
// and no two variants are mutually substitutable.
func variant(i int) *types.Interface {
	return types.Extend(fmt.Sprintf("Teller_%d", i), teller(),
		types.Op(fmt.Sprintf("Audit_%d", i),
			types.Params(types.P("a", values.TString())),
			types.Term("OK"),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

func TestReplicatedServesReads(t *testing.T) {
	auth := New()
	rep := NewReplicated(auth, 3)
	for _, it := range []*types.Interface{teller(), manager(), loans()} {
		if err := rep.RegisterInterface(it); err != nil {
			t.Fatalf("RegisterInterface(%s): %v", it.Name, err)
		}
	}
	ok, err := rep.IsSubtype("BankManager", "BankTeller")
	if err != nil || !ok {
		t.Fatalf("IsSubtype(BankManager, BankTeller) = %v, %v; want true", ok, err)
	}
	if _, err := rep.LookupInterface("LoansOfficer"); err != nil {
		t.Fatalf("LookupInterface: %v", err)
	}
	if got := rep.Interfaces(); len(got) != 3 {
		t.Fatalf("Interfaces() = %v, want 3 names", got)
	}
	supers, err := rep.Supertypes("BankManager")
	if err != nil || len(supers) != 1 || supers[0] != "BankTeller" {
		t.Fatalf("Supertypes(BankManager) = %v, %v", supers, err)
	}
	st := rep.Stats()
	if st.Reads == 0 || st.Resyncs == 0 {
		t.Fatalf("stats show no replica traffic: %+v", st)
	}
}

func TestReplicatedReadYourWrites(t *testing.T) {
	auth := New()
	rep := NewReplicated(auth, 2)
	if err := rep.RegisterInterface(teller()); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Interleave writes and reads: after each write returns, every replica
	// must serve the new fact (the gen fence forces a resync).
	for i := 0; i < 8; i++ {
		it := variant(i)
		if err := rep.RegisterInterface(it); err != nil {
			t.Fatalf("register %s: %v", it.Name, err)
		}
		// One read per replica: both must see the registration.
		for r := 0; r < 2; r++ {
			ok, err := rep.IsSubtype(it.Name, "BankTeller")
			if err != nil || !ok {
				t.Fatalf("after registering %s: IsSubtype = %v, %v; want true", it.Name, ok, err)
			}
		}
		if err := rep.DeclareSubtype(it.Name, "BankTeller"); err != nil {
			t.Fatalf("declare %s: %v", it.Name, err)
		}
		for r := 0; r < 2; r++ {
			if got := rep.DeclaredSupertypes(it.Name); len(got) != 1 || got[0] != "BankTeller" {
				t.Fatalf("after declaring %s <= BankTeller: DeclaredSupertypes = %v", it.Name, got)
			}
		}
	}
}

// TestReplicatedGenFenceRace is the replication mirror of the trader's
// closure-invalidation test: concurrent registrations and declared-edge
// writes race replicated IsSubtype/DeclaredSupertypes reads, and no read
// may serve a stale memo across a gen bump — once a write has returned,
// every subsequent read observes it. Run under -race this also proves
// the replica swap itself is data-race free.
func TestReplicatedGenFenceRace(t *testing.T) {
	auth := New()
	rep := NewReplicated(auth, 4)
	if err := rep.RegisterInterface(teller()); err != nil {
		t.Fatalf("register: %v", err)
	}

	const writes = 120
	var hi atomic.Int64 // index of the newest fully-written variant
	hi.Store(-1)
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < writes; i++ {
			it := variant(i)
			if err := rep.RegisterInterface(it); err != nil {
				t.Errorf("register %s: %v", it.Name, err)
				return
			}
			if err := rep.DeclareSubtype(it.Name, "BankTeller"); err != nil {
				t.Errorf("declare %s: %v", it.Name, err)
				return
			}
			// Publish i only after both writes returned: readers that
			// observe hi >= i must be served both facts.
			hi.Store(int64(i))
		}
	}()

	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				k := hi.Load()
				if k < 0 {
					continue
				}
				name := fmt.Sprintf("Teller_%d", k)
				ok, err := rep.IsSubtype(name, "BankTeller")
				if err != nil || !ok {
					t.Errorf("stale read: IsSubtype(%s, BankTeller) = %v, %v after write %d returned", name, ok, err, k)
					return
				}
				if got := rep.DeclaredSupertypes(name); len(got) != 1 {
					t.Errorf("stale read: DeclaredSupertypes(%s) = %v after declare returned", name, got)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Steady state: every variant visible, replicas fully caught up.
	for i := 0; i < writes; i++ {
		name := fmt.Sprintf("Teller_%d", i)
		ok, err := rep.IsSubtype(name, "BankTeller")
		if err != nil || !ok {
			t.Fatalf("final read: IsSubtype(%s, BankTeller) = %v, %v", name, ok, err)
		}
	}
	if g, a := rep.Gen(), auth.Gen(); g != a {
		t.Fatalf("front-end gen %d != authority gen %d", g, a)
	}
}

func TestReplicatedDelegatesColdPaths(t *testing.T) {
	auth := New()
	rep := NewReplicated(auth, 2)
	if err := rep.RegisterData("Money", values.TInt()); err != nil {
		t.Fatalf("RegisterData: %v", err)
	}
	if _, err := rep.LookupData("Money"); err != nil {
		t.Fatalf("LookupData: %v", err)
	}
	if err := rep.RegisterInterface(teller()); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := rep.Relate("describes", "Money", "BankTeller"); err != nil {
		t.Fatalf("Relate: %v", err)
	}
	if got := rep.Related("describes", "Money"); len(got) != 1 || got[0] != "BankTeller" {
		t.Fatalf("Related = %v", got)
	}
}
