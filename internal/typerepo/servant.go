package typerepo

// The type repository is itself an ODP infrastructure object (Section 5
// lists "a type repository or a trader" as the canonical examples), so
// it gets the same treatment as the trader and relocator: Servant adapts
// a Repository to the channel.Handler call shape, which is also exactly
// the surface a coordination replica group fans out to. That is what
// lets the registration write path run ReplicaGroup-ordered across a
// fleet of stores while readers keep the plain Repository interface.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/types"
	"repro/internal/values"
)

// Servant adapts a Repository to the servant call shape
// (op string, args []values.Value) -> (term, results, error).
//
// Terms: "OK" on success; "NotFound" and "Conflict" carry the matching
// sentinel condition so proxies can rehydrate ErrNotFound/ErrConflict;
// every other failure is "Error" with a reason string.
type Servant struct {
	R Repository
}

// Invoke dispatches one repository operation.
func (s *Servant) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	fail := func(err error) (string, []values.Value, error) {
		term := "Error"
		switch {
		case errors.Is(err, ErrNotFound):
			term = "NotFound"
		case errors.Is(err, ErrConflict):
			term = "Conflict"
		}
		return term, []values.Value{values.Str(err.Error())}, nil
	}
	strSeq := func(ss []string) values.Value {
		out := make([]values.Value, len(ss))
		for i, v := range ss {
			out[i] = values.Str(v)
		}
		return values.SeqOwned(out)
	}
	switch op {
	case "RegisterInterface":
		it, err := types.InterfaceFromValue(args[0])
		if err != nil {
			return fail(err)
		}
		if err := s.R.RegisterInterface(it); err != nil {
			return fail(err)
		}
		return "OK", nil, nil
	case "RegisterData":
		name, _ := args[0].AsString()
		dt, err := types.DataTypeFromValue(args[1])
		if err != nil {
			return fail(err)
		}
		if err := s.R.RegisterData(name, dt); err != nil {
			return fail(err)
		}
		return "OK", nil, nil
	case "DeclareSubtype":
		sub, _ := args[0].AsString()
		super, _ := args[1].AsString()
		if err := s.R.DeclareSubtype(sub, super); err != nil {
			return fail(err)
		}
		return "OK", nil, nil
	case "Relate":
		relation, _ := args[0].AsString()
		from, _ := args[1].AsString()
		to, _ := args[2].AsString()
		if err := s.R.Relate(relation, from, to); err != nil {
			return fail(err)
		}
		return "OK", nil, nil
	case "LookupInterface":
		name, _ := args[0].AsString()
		it, err := s.R.LookupInterface(name)
		if err != nil {
			return fail(err)
		}
		return "OK", []values.Value{it.ToValue()}, nil
	case "LookupData":
		name, _ := args[0].AsString()
		dt, err := s.R.LookupData(name)
		if err != nil {
			return fail(err)
		}
		return "OK", []values.Value{types.DataTypeToValue(dt)}, nil
	case "IsSubtype":
		sub, _ := args[0].AsString()
		super, _ := args[1].AsString()
		ok, err := s.R.IsSubtype(sub, super)
		if err != nil {
			return fail(err)
		}
		return "OK", []values.Value{values.Bool(ok)}, nil
	case "Interfaces":
		return "OK", []values.Value{strSeq(s.R.Interfaces())}, nil
	case "Supertypes":
		name, _ := args[0].AsString()
		ss, err := s.R.Supertypes(name)
		if err != nil {
			return fail(err)
		}
		return "OK", []values.Value{strSeq(ss)}, nil
	case "Subtypes":
		name, _ := args[0].AsString()
		ss, err := s.R.Subtypes(name)
		if err != nil {
			return fail(err)
		}
		return "OK", []values.Value{strSeq(ss)}, nil
	case "DeclaredSupertypes":
		name, _ := args[0].AsString()
		return "OK", []values.Value{strSeq(s.R.DeclaredSupertypes(name))}, nil
	case "Related":
		relation, _ := args[0].AsString()
		from, _ := args[1].AsString()
		return "OK", []values.Value{strSeq(s.R.Related(relation, from))}, nil
	case "Gen":
		return "OK", []values.Value{values.Int(int64(s.R.Gen()))}, nil
	}
	return "", nil, fmt.Errorf("typerepo: no operation %q", op)
}
