// Replicated is the read-mostly replication front-end over a Repository
// authority. The tutorial's type repository (Section 8.3.1) is consulted
// on every trading match and every bind-time causality check, and at
// swarm scale those reads all contended on one sync.RWMutex. Replication
// transparency says the fix must not change the call-site contract, so
// Replicated implements the same Repository interface: writes funnel to
// the authority (which may itself be a coordination.ReplicaGroup-ordered
// fleet), and reads are served from per-replica copies fenced by the
// authority's generation counter — the same invalidation protocol the
// trader uses for its subtype-closure memo.
package typerepo

import (
	"sync"
	"sync/atomic"

	"repro/internal/types"
	"repro/internal/values"
)

// Replicated serves Repository reads from gen-versioned local replicas
// and delegates writes to the authority. It is safe for concurrent use.
//
// Freshness contract: every mutation bumps the authority's generation
// while the authority's write lock is held, and a replica only marks its
// copy current after confirming the generation did not move during the
// copy. A read therefore never serves a memo from before a completed
// write: once RegisterInterface (or DeclareSubtype, ...) has returned,
// every subsequent read on any replica observes the new fact.
type Replicated struct {
	authority Repository
	replicas  []*replica
	next      atomic.Uint64 // round-robin replica pick

	reads   atomic.Uint64 // reads served from a replica copy
	resyncs atomic.Uint64 // full copy rebuilds
	misses  atomic.Uint64 // reads that found their replica stale
}

// replica is one gen-fenced copy of the authority's interface universe
// and declared hierarchy. local is swapped wholesale on resync so readers
// never observe a half-built copy; synced holds authorityGen+1 (0 means
// "never synced", which is distinct from a fresh authority's gen 0).
type replica struct {
	mu     sync.Mutex // serialises resyncs of this replica
	synced atomic.Uint64
	local  atomic.Pointer[Local]
}

// NewReplicated wraps authority with n read replicas (n < 1 is treated
// as 1 — the front-end degenerates to a single fenced cache). Intended
// use is one replica per host or per trader shard, so hot IsSubtype and
// lookup reads touch only host-local state.
func NewReplicated(authority Repository, n int) *Replicated {
	if n < 1 {
		n = 1
	}
	p := &Replicated{authority: authority, replicas: make([]*replica, n)}
	for i := range p.replicas {
		r := &replica{}
		r.local.Store(New())
		p.replicas[i] = r
	}
	return p
}

// Authority returns the backing write-path repository.
func (p *Replicated) Authority() Repository { return p.authority }

// Gen reports the authority's generation — the fence replicas sync to.
func (p *Replicated) Gen() uint64 { return p.authority.Gen() }

// ReplicatedStats counts front-end traffic: reads served from replica
// copies, reads that found their replica stale, and full resyncs.
type ReplicatedStats struct {
	Reads   uint64
	Misses  uint64
	Resyncs uint64
}

// Stats returns a snapshot of the front-end counters.
func (p *Replicated) Stats() ReplicatedStats {
	return ReplicatedStats{
		Reads:   p.reads.Load(),
		Misses:  p.misses.Load(),
		Resyncs: p.resyncs.Load(),
	}
}

// view returns a replica copy that reflects at least the authority
// generation observed at entry, rebuilding the copy if it is stale.
func (p *Replicated) view() *Local {
	rep := p.replicas[p.next.Add(1)%uint64(len(p.replicas))]
	p.reads.Add(1)
	gen := p.authority.Gen()
	if rep.synced.Load() == gen+1 {
		return rep.local.Load()
	}
	p.misses.Add(1)

	rep.mu.Lock()
	defer rep.mu.Unlock()
	// A concurrent resync may have caught us up while we waited.
	gen = p.authority.Gen()
	if rep.synced.Load() == gen+1 {
		return rep.local.Load()
	}

	// Rebuild from the authority's public surface. The copy is built off
	// to the side and swapped in whole; interfaces are registered first so
	// declared edges always find their endpoints.
	p.resyncs.Add(1)
	fresh := New()
	names := p.authority.Interfaces()
	for _, name := range names {
		it, err := p.authority.LookupInterface(name)
		if err != nil {
			continue // raced a registration conflict rollback; next read refetches
		}
		_ = fresh.RegisterInterface(it)
	}
	for _, name := range names {
		for _, super := range p.authority.DeclaredSupertypes(name) {
			_ = fresh.DeclareSubtype(name, super)
		}
	}
	after := p.authority.Gen()
	rep.local.Store(fresh)
	if after == gen {
		rep.synced.Store(gen + 1)
	} else {
		// A write landed mid-copy: the copy is still a consistent view of
		// some prefix (the store only grows), but it must not be marked
		// current — the next read will resync past the new write.
		rep.synced.Store(0)
	}
	return fresh
}

// --- reads served from a replica copy ---

// LookupInterface returns the interface type registered under name.
func (p *Replicated) LookupInterface(name string) (*types.Interface, error) {
	return p.view().LookupInterface(name)
}

// Interfaces returns the sorted names of all registered interface types.
func (p *Replicated) Interfaces() []string { return p.view().Interfaces() }

// IsSubtype reports whether sub may substitute for super, served from a
// replica's memo table.
func (p *Replicated) IsSubtype(sub, super string) (bool, error) {
	return p.view().IsSubtype(sub, super)
}

// Supertypes returns the sorted names of all registered types that name
// may substitute for (excluding itself).
func (p *Replicated) Supertypes(name string) ([]string, error) {
	return p.view().Supertypes(name)
}

// Subtypes returns the sorted names of all registered types that may
// substitute for name (excluding itself).
func (p *Replicated) Subtypes(name string) ([]string, error) {
	return p.view().Subtypes(name)
}

// DeclaredSupertypes returns the sorted declared supertypes of name.
func (p *Replicated) DeclaredSupertypes(name string) []string {
	return p.view().DeclaredSupertypes(name)
}

// --- writes and cold reads, funnelled to the authority ---

// RegisterInterface registers it with the authority; replicas observe the
// generation bump and resync on their next read.
func (p *Replicated) RegisterInterface(it *types.Interface) error {
	return p.authority.RegisterInterface(it)
}

// RegisterData registers a named data type with the authority.
func (p *Replicated) RegisterData(name string, dt *values.DataType) error {
	return p.authority.RegisterData(name, dt)
}

// LookupData reads a data type from the authority (data types are bound
// at interface-definition time, not per-invocation, so this read is cold
// and not worth replicating).
func (p *Replicated) LookupData(name string) (*values.DataType, error) {
	return p.authority.LookupData(name)
}

// DeclareSubtype records a declared hierarchy edge with the authority.
func (p *Replicated) DeclareSubtype(sub, super string) error {
	return p.authority.DeclareSubtype(sub, super)
}

// Relate records a named relationship with the authority.
func (p *Replicated) Relate(relation, from, to string) error {
	return p.authority.Relate(relation, from, to)
}

// Related reads relationship targets from the authority.
func (p *Replicated) Related(relation, from string) []string {
	return p.authority.Related(relation, from)
}
