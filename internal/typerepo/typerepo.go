// Package typerepo implements the ODP Type Repository function
// (Section 8.3.1 of the tutorial).
//
// "ODP systems must make type information available through the ODP system
// itself; the primary need is to support type checking during trading and
// interface binding." The repository registers named interface types and
// data types, maintains the subtype hierarchy (both declared and
// structurally discovered, with memoisation), and keeps arbitrary named
// relationships between types — the general "relationship repository" the
// tutorial mentions alongside it.
//
// A Repository is safe for concurrent use.
package typerepo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/types"
	"repro/internal/values"
)

// Repository error sentinels.
var (
	ErrNotFound  = errors.New("typerepo: type not found")
	ErrConflict  = errors.New("typerepo: conflicting registration")
	ErrBadDecl   = errors.New("typerepo: declared subtype relation is structurally unsound")
	ErrBadName   = errors.New("typerepo: empty type name")
	ErrBadType   = errors.New("typerepo: invalid type")
	ErrBadRelate = errors.New("typerepo: relationship endpoints must be registered")
)

// Repository is the type-repository service surface: registration of
// interface and data types, the subtype hierarchy (declared and
// structural), and named relationships between types. Two implementations
// exist: *Local, the in-process authority store, and *Replicated, a
// read-mostly front-end serving gen-fenced reads from local replicas.
// Call sites hold the interface so a singleton can be swapped for a
// replicated fleet without changing semantics.
type Repository interface {
	RegisterInterface(it *types.Interface) error
	LookupInterface(name string) (*types.Interface, error)
	Interfaces() []string
	RegisterData(name string, dt *values.DataType) error
	LookupData(name string) (*values.DataType, error)
	DeclareSubtype(sub, super string) error
	IsSubtype(sub, super string) (bool, error)
	Supertypes(name string) ([]string, error)
	Subtypes(name string) ([]string, error)
	DeclaredSupertypes(name string) []string
	Relate(relation, from, to string) error
	Related(relation, from string) []string
	Gen() uint64
}

// Local is the concrete single-store registry for interface types, data
// types and the relationships between them. It is the authority behind
// every Replicated front-end.
type Local struct {
	mu         sync.RWMutex
	interfaces map[string]*types.Interface
	data       map[string]*values.DataType
	declared   map[string]map[string]bool // sub -> set of declared supers
	subCache   map[subKey]bool            // memoised structural results
	relations  map[string]map[string]map[string]bool
	gen        atomic.Uint64 // bumped whenever registered facts change
}

type subKey struct{ sub, super string }

// New returns an empty repository.
func New() *Local {
	return &Local{
		interfaces: make(map[string]*types.Interface),
		data:       make(map[string]*values.DataType),
		declared:   make(map[string]map[string]bool),
		subCache:   make(map[subKey]bool),
		relations:  make(map[string]map[string]map[string]bool),
	}
}

// RegisterInterface validates and registers an interface type under its
// own name. Re-registering an identical (mutually substitutable) type is
// idempotent; registering a different type under an existing name fails
// with ErrConflict.
func (r *Local) RegisterInterface(it *types.Interface) error {
	if it == nil {
		return fmt.Errorf("%w: nil interface", ErrBadType)
	}
	if err := it.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadType, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.interfaces[it.Name]; ok {
		if types.Equal(existing, it) {
			return nil
		}
		return fmt.Errorf("%w: interface %q already registered with a different shape", ErrConflict, it.Name)
	}
	r.interfaces[it.Name] = it
	// Structural facts may change as the universe of types grows; reset
	// the memo rather than reasoning about which entries survive, and
	// advance the generation so external caches (the trader's subtype
	// closure) know theirs went stale too.
	r.subCache = make(map[subKey]bool)
	r.gen.Add(1)
	return nil
}

// Gen returns the repository's type-fact generation: it advances whenever
// a successful mutation may have changed what readers observe (interface
// and data registrations, declared subtype edges, relationships). Callers
// memoising derived facts (the trader's per-service-type subtype closure,
// a Replicated front-end's per-replica copies) compare generations to
// know when to rebuild. The bump happens while the write lock is still
// held, so a reader that observes generation g and then snapshots the
// store sees every fact registered up to g.
func (r *Local) Gen() uint64 { return r.gen.Load() }

// LookupInterface returns the interface type registered under name.
func (r *Local) LookupInterface(name string) (*types.Interface, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	it, ok := r.interfaces[name]
	if !ok {
		return nil, fmt.Errorf("%w: interface %q", ErrNotFound, name)
	}
	return it, nil
}

// Interfaces returns the sorted names of all registered interface types.
func (r *Local) Interfaces() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.interfaces))
	for n := range r.interfaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterData registers a named data type. The same idempotence and
// conflict rules as RegisterInterface apply.
func (r *Local) RegisterData(name string, dt *values.DataType) error {
	if name == "" {
		return ErrBadName
	}
	if dt == nil {
		return fmt.Errorf("%w: nil data type", ErrBadType)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.data[name]; ok {
		if existing.Equal(dt) {
			return nil
		}
		return fmt.Errorf("%w: data type %q already registered with a different shape", ErrConflict, name)
	}
	r.data[name] = dt
	r.gen.Add(1)
	return nil
}

// LookupData returns the data type registered under name.
func (r *Local) LookupData(name string) (*values.DataType, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dt, ok := r.data[name]
	if !ok {
		return nil, fmt.Errorf("%w: data type %q", ErrNotFound, name)
	}
	return dt, nil
}

// DeclareSubtype records that sub is a subtype of super, after verifying
// the claim structurally — the repository never stores unsound hierarchy
// edges. Both types must already be registered.
func (r *Local) DeclareSubtype(sub, super string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	subT, ok := r.interfaces[sub]
	if !ok {
		return fmt.Errorf("%w: interface %q", ErrNotFound, sub)
	}
	superT, ok := r.interfaces[super]
	if !ok {
		return fmt.Errorf("%w: interface %q", ErrNotFound, super)
	}
	if err := types.Subtype(subT, superT); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDecl, err)
	}
	set, ok := r.declared[sub]
	if !ok {
		set = make(map[string]bool)
		r.declared[sub] = set
	}
	set[super] = true
	// Declared edges are read back through DeclaredSupertypes, so replicas
	// mirroring this store must learn their copy went stale.
	r.gen.Add(1)
	return nil
}

// IsSubtype reports whether the registered type sub may substitute for the
// registered type super. Structural results are memoised, so repeated
// checks (as a trader makes during matching) are map lookups.
func (r *Local) IsSubtype(sub, super string) (bool, error) {
	if sub == super {
		// Still require the type to exist.
		if _, err := r.LookupInterface(sub); err != nil {
			return false, err
		}
		return true, nil
	}
	r.mu.RLock()
	if res, ok := r.subCache[subKey{sub, super}]; ok {
		r.mu.RUnlock()
		return res, nil
	}
	subT, okSub := r.interfaces[sub]
	superT, okSuper := r.interfaces[super]
	r.mu.RUnlock()
	if !okSub {
		return false, fmt.Errorf("%w: interface %q", ErrNotFound, sub)
	}
	if !okSuper {
		return false, fmt.Errorf("%w: interface %q", ErrNotFound, super)
	}
	res := types.IsSubtype(subT, superT)
	r.mu.Lock()
	r.subCache[subKey{sub, super}] = res
	r.mu.Unlock()
	return res, nil
}

// Supertypes returns the sorted names of all registered types that name
// may substitute for (excluding itself).
func (r *Local) Supertypes(name string) ([]string, error) {
	it, err := r.LookupInterface(name)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	candidates := make(map[string]*types.Interface, len(r.interfaces))
	for n, t := range r.interfaces {
		candidates[n] = t
	}
	r.mu.RUnlock()
	var out []string
	for n, t := range candidates {
		if n == name {
			continue
		}
		if types.IsSubtype(it, t) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Subtypes returns the sorted names of all registered types that may
// substitute for name (excluding itself).
func (r *Local) Subtypes(name string) ([]string, error) {
	it, err := r.LookupInterface(name)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	candidates := make(map[string]*types.Interface, len(r.interfaces))
	for n, t := range r.interfaces {
		candidates[n] = t
	}
	r.mu.RUnlock()
	var out []string
	for n, t := range candidates {
		if n == name {
			continue
		}
		if types.IsSubtype(t, it) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

// DeclaredSupertypes returns the sorted supertypes explicitly declared for
// name via DeclareSubtype (the curated hierarchy, as opposed to the
// structural one).
func (r *Local) DeclaredSupertypes(name string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for super := range r.declared[name] {
		out = append(out, super)
	}
	sort.Strings(out)
	return out
}

// Relate records a named relationship from one registered type to another
// (e.g. "describes", "manages", "supersedes"). Both endpoints may be
// interface or data type names.
func (r *Local) Relate(relation, from, to string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.known(from) || !r.known(to) {
		return fmt.Errorf("%w: %q -> %q", ErrBadRelate, from, to)
	}
	rel, ok := r.relations[relation]
	if !ok {
		rel = make(map[string]map[string]bool)
		r.relations[relation] = rel
	}
	set, ok := rel[from]
	if !ok {
		set = make(map[string]bool)
		rel[from] = set
	}
	set[to] = true
	r.gen.Add(1)
	return nil
}

// Related returns the sorted targets related to from under relation.
func (r *Local) Related(relation, from string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for to := range r.relations[relation][from] {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

func (r *Local) known(name string) bool {
	if _, ok := r.interfaces[name]; ok {
		return true
	}
	_, ok := r.data[name]
	return ok
}
