package constraint

import (
	"errors"
	"testing"

	"repro/internal/values"
)

func props() values.Value {
	return values.Record(
		values.F("cost", values.Int(10)),
		values.F("rate", values.Float(2.5)),
		values.F("name", values.Str("acme")),
		values.F("fast", values.Bool(true)),
		values.F("loc", values.Record(values.F("city", values.Str("brisbane")))),
	)
}

func TestConstraintMatches(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"", true},
		{"true", true},
		{"false", false},
		{"cost == 10", true},
		{"cost != 10", false},
		{"cost < 20", true},
		{"cost <= 10", true},
		{"cost > 10", false},
		{"cost >= 11", false},
		{"rate > 2", true},
		{"rate < 2.6", true},
		{"name == 'acme'", true},
		{`name == "other"`, false},
		{"name != 'other'", true},
		{"fast", true},
		{"not fast", false},
		{"fast and cost < 20", true},
		{"fast and cost > 20", false},
		{"cost > 20 or rate > 2", true},
		{"not (cost > 20) and fast", true},
		{"exist cost", true},
		{"exist missing", false},
		{"not exist missing", true},
		{"loc.city == 'brisbane'", true},
		{"loc.city == 'perth'", false},
		{"exist loc.city", true},
		{"exist loc.country", false},
		{"cost + 5 == 15", true},
		{"cost - 5 == 5", true},
		{"cost * 2 == 20", true},
		{"cost / 2 == 5", true},
		{"-cost == -10", true},
		{"cost + rate > 12", true},
		{"rate * 2 == 5.0", true},
		{"name + '!' == 'acme!'", true},
		{"2 + 3 * 4 == 14", true},   // precedence
		{"(2 + 3) * 4 == 20", true}, // grouping
		{"cost < 20 and cost > 5 and fast", true},
		{"false or false or cost == 10", true},
	}
	for _, c := range cases {
		t.Run(c.src, func(t *testing.T) {
			e, err := Parse(c.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", c.src, err)
			}
			got, err := e.Matches(props())
			if err != nil {
				t.Fatalf("Matches(%q): %v", c.src, err)
			}
			if got != c.want {
				t.Errorf("Matches(%q) = %v, want %v", c.src, got, c.want)
			}
		})
	}
}

func TestConstraintSyntaxErrors(t *testing.T) {
	bad := []string{
		"cost ==",
		"== 10",
		"(cost == 10",
		"cost == 10)",
		"cost @ 10",
		"'unterminated",
		"1.2.3",
		"and",
		"not",
		"exist",
		"exist 42",
		"cost 10",
	}
	for _, src := range bad {
		if _, err := Parse(src); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want ErrSyntax", src, err)
		}
	}
}

func TestConstraintEvalErrors(t *testing.T) {
	bad := []string{
		"missing == 10",    // unknown property
		"cost and fast",    // non-boolean operand
		"not cost",         // not on non-boolean
		"name < 10",        // unordered cross-kind
		"cost / 0 == 1",    // integer division by zero
		"rate / 0.0 == 1",  // float division by zero
		"-name == 'x'",     // negate string
		"name * 2 == 'xx'", // arithmetic on string
		"fast + 1 == 2",    // arithmetic on bool
	}
	for _, src := range bad {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := e.Matches(props()); !errors.Is(err, ErrEval) {
			t.Errorf("Matches(%q) = %v, want ErrEval", src, err)
		}
	}
	// A non-boolean top-level result is also an evaluation error.
	e, err := Parse("cost + 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Matches(props()); !errors.Is(err, ErrEval) {
		t.Errorf("non-boolean result = %v", err)
	}
}

func TestConstraintShortCircuit(t *testing.T) {
	// The right side references a missing property but is never evaluated.
	for _, src := range []string{
		"false and missing == 1",
		"true or missing == 1",
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Matches(props()); err != nil {
			t.Errorf("short circuit failed for %q: %v", src, err)
		}
	}
}

func TestExprEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want values.Value
	}{
		{"2 + 3", values.Int(5)},
		{"2.0 + 3", values.Float(5)},
		{"cost * rate", values.Float(25)},
		{"'a' + 'b'", values.Str("ab")},
		{"-(2 + 3)", values.Int(-5)},
		{"-2.5", values.Float(-2.5)},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got, err := e.Eval(props())
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprString(t *testing.T) {
	e, err := Parse("cost == 10")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "cost == 10" {
		t.Errorf("String = %q", e.String())
	}
}
