// Package constraint implements the small expression language shared by
// the ODP trading function (import constraints and preferences,
// Section 8.3.2 of the tutorial) and the enterprise viewpoint's policy
// conditions (Section 3). Expressions are evaluated against a record of
// named properties.
//
// The grammar:
//
//	expr    := or
//	or      := and ("or" and)*
//	and     := not ("and" not)*
//	not     := "not" not | cmp
//	cmp     := sum (("=="|"!="|"<"|"<="|">"|">=") sum)?
//	sum     := prod (("+"|"-") prod)*
//	prod    := unary (("*"|"/") unary)*
//	unary   := "-" unary | primary
//	primary := int | float | string | "true" | "false" |
//	           "exist" ident | ident | "(" expr ")"
//
// Identifiers name properties; dotted identifiers (a.b) descend into
// record-valued properties. Comparisons follow values.Compare, so ints,
// uints and floats compare across kinds and strings compare
// lexicographically.
package constraint

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/values"
)

// Constraint error sentinels.
var (
	ErrSyntax = errors.New("constraint: syntax error")
	ErrEval   = errors.New("constraint: evaluation error")
)

// Expr is a parsed constraint or preference expression.
type Expr struct {
	root node
	src  string
}

// String returns the original source text.
func (e *Expr) String() string { return e.src }

// Parse compiles a constraint expression. An empty string parses to the
// always-true constraint.
func Parse(src string) (*Expr, error) {
	if strings.TrimSpace(src) == "" {
		return &Expr{root: litNode{values.Bool(true)}, src: src}, nil
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("%w: trailing input at %q", ErrSyntax, p.toks[p.pos].text)
	}
	return &Expr{root: root, src: src}, nil
}

// Eval evaluates the expression against a property record.
func (e *Expr) Eval(props values.Value) (values.Value, error) {
	return e.root.eval(props)
}

// Matches evaluates the expression and requires a boolean result.
func (e *Expr) Matches(props values.Value) (bool, error) {
	v, err := e.Eval(props)
	if err != nil {
		return false, err
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("%w: constraint %q is not boolean (got %v)", ErrEval, e.src, v.Kind())
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// lexer

type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokInt
	tokFloat
	tokString
	tokOp // punctuation operators
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					if isFloat {
						return nil, fmt.Errorf("%w: bad number at %q", ErrSyntax, src[i:])
					}
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j]})
			i = j
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("%w: unterminated string", ErrSyntax)
			}
			toks = append(toks, token{tokString, src[i+1 : j]})
			i = j + 1
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				toks = append(toks, token{tokOp, two})
				i += 2
				continue
			}
			switch c {
			case '<', '>', '+', '-', '*', '/', '(', ')':
				toks = append(toks, token{tokOp, string(c)})
				i++
			default:
				return nil, fmt.Errorf("%w: unexpected character %q", ErrSyntax, string(c))
			}
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// ---------------------------------------------------------------------------
// parser

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) acceptIdent(word string) bool {
	if t, ok := p.peek(); ok && t.kind == tokIdent && t.text == word {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(ops ...string) (string, bool) {
	t, ok := p.peek()
	if !ok || t.kind != tokOp {
		return "", false
	}
	for _, op := range ops {
		if t.text == op {
			p.pos++
			return op, true
		}
	}
	return "", false
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = boolNode{op: "or", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = boolNode{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (node, error) {
	if p.acceptIdent("not") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notNode{inner}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (node, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if op, ok := p.acceptOp("==", "!=", "<=", ">=", "<", ">"); ok {
		right, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return cmpNode{op: op, left: left, right: right}, nil
	}
	return left, nil
}

func (p *parser) parseSum() (node, error) {
	left, err := p.parseProd()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("+", "-")
		if !ok {
			return left, nil
		}
		right, err := p.parseProd()
		if err != nil {
			return nil, err
		}
		left = arithNode{op: op, left: left, right: right}
	}
}

func (p *parser) parseProd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.acceptOp("*", "/")
		if !ok {
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = arithNode{op: op, left: left, right: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	if _, ok := p.acceptOp("-"); ok {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negNode{inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("%w: unexpected end of expression", ErrSyntax)
	}
	switch t.kind {
	case tokInt:
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return litNode{values.Int(n)}, nil
	case tokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		return litNode{values.Float(f)}, nil
	case tokString:
		p.pos++
		return litNode{values.Str(t.text)}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.pos++
			return litNode{values.Bool(true)}, nil
		case "false":
			p.pos++
			return litNode{values.Bool(false)}, nil
		case "exist":
			p.pos++
			name, ok := p.peek()
			if !ok || name.kind != tokIdent {
				return nil, fmt.Errorf("%w: exist requires a property name", ErrSyntax)
			}
			p.pos++
			return existNode{path: strings.Split(name.text, ".")}, nil
		case "and", "or", "not":
			return nil, fmt.Errorf("%w: unexpected keyword %q", ErrSyntax, t.text)
		default:
			p.pos++
			return identNode{path: strings.Split(t.text, ".")}, nil
		}
	case tokOp:
		if t.text == "(" {
			p.pos++
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, ok := p.acceptOp(")"); !ok {
				return nil, fmt.Errorf("%w: missing closing parenthesis", ErrSyntax)
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("%w: unexpected token %q", ErrSyntax, t.text)
}

// ---------------------------------------------------------------------------
// evaluation

type node interface {
	eval(props values.Value) (values.Value, error)
}

type litNode struct{ v values.Value }

func (n litNode) eval(values.Value) (values.Value, error) { return n.v, nil }

type identNode struct{ path []string }

func (n identNode) eval(props values.Value) (values.Value, error) {
	v, ok := lookup(props, n.path)
	if !ok {
		return values.Value{}, fmt.Errorf("%w: no property %q", ErrEval, strings.Join(n.path, "."))
	}
	return v, nil
}

type existNode struct{ path []string }

func (n existNode) eval(props values.Value) (values.Value, error) {
	_, ok := lookup(props, n.path)
	return values.Bool(ok), nil
}

func lookup(props values.Value, path []string) (values.Value, bool) {
	cur := props
	for _, seg := range path {
		next, ok := cur.FieldByName(seg)
		if !ok {
			return values.Value{}, false
		}
		cur = next
	}
	return cur, true
}

type notNode struct{ inner node }

func (n notNode) eval(props values.Value) (values.Value, error) {
	v, err := n.inner.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	b, ok := v.AsBool()
	if !ok {
		return values.Value{}, fmt.Errorf("%w: 'not' requires a boolean", ErrEval)
	}
	return values.Bool(!b), nil
}

type boolNode struct {
	op          string
	left, right node
}

func (n boolNode) eval(props values.Value) (values.Value, error) {
	lv, err := n.left.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	lb, ok := lv.AsBool()
	if !ok {
		return values.Value{}, fmt.Errorf("%w: %q requires booleans", ErrEval, n.op)
	}
	// Short circuit.
	if n.op == "and" && !lb {
		return values.Bool(false), nil
	}
	if n.op == "or" && lb {
		return values.Bool(true), nil
	}
	rv, err := n.right.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	rb, ok := rv.AsBool()
	if !ok {
		return values.Value{}, fmt.Errorf("%w: %q requires booleans", ErrEval, n.op)
	}
	return values.Bool(rb), nil
}

type cmpNode struct {
	op          string
	left, right node
}

func (n cmpNode) eval(props values.Value) (values.Value, error) {
	lv, err := n.left.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	rv, err := n.right.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	if n.op == "==" || n.op == "!=" {
		// Equality is defined for every kind; ordering is not.
		if c, ok := values.Compare(lv, rv); ok {
			eq := c == 0
			if n.op == "!=" {
				eq = !eq
			}
			return values.Bool(eq), nil
		}
		eq := lv.Equal(rv)
		if n.op == "!=" {
			eq = !eq
		}
		return values.Bool(eq), nil
	}
	c, ok := values.Compare(lv, rv)
	if !ok {
		return values.Value{}, fmt.Errorf("%w: cannot order %v against %v", ErrEval, lv.Kind(), rv.Kind())
	}
	switch n.op {
	case "<":
		return values.Bool(c < 0), nil
	case "<=":
		return values.Bool(c <= 0), nil
	case ">":
		return values.Bool(c > 0), nil
	case ">=":
		return values.Bool(c >= 0), nil
	}
	return values.Value{}, fmt.Errorf("%w: unknown comparison %q", ErrEval, n.op)
}

type negNode struct{ inner node }

func (n negNode) eval(props values.Value) (values.Value, error) {
	v, err := n.inner.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	switch v.Kind() {
	case values.KindInt:
		i, _ := v.AsInt()
		return values.Int(-i), nil
	case values.KindFloat:
		f, _ := v.AsFloat()
		return values.Float(-f), nil
	}
	return values.Value{}, fmt.Errorf("%w: cannot negate %v", ErrEval, v.Kind())
}

type arithNode struct {
	op          string
	left, right node
}

func (n arithNode) eval(props values.Value) (values.Value, error) {
	lv, err := n.left.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	rv, err := n.right.eval(props)
	if err != nil {
		return values.Value{}, err
	}
	// String concatenation with "+".
	if n.op == "+" && lv.Kind() == values.KindString && rv.Kind() == values.KindString {
		ls, _ := lv.AsString()
		rs, _ := rv.AsString()
		return values.Str(ls + rs), nil
	}
	// Integer arithmetic when both sides are ints; float otherwise.
	if lv.Kind() == values.KindInt && rv.Kind() == values.KindInt {
		li, _ := lv.AsInt()
		ri, _ := rv.AsInt()
		switch n.op {
		case "+":
			return values.Int(li + ri), nil
		case "-":
			return values.Int(li - ri), nil
		case "*":
			return values.Int(li * ri), nil
		case "/":
			if ri == 0 {
				return values.Value{}, fmt.Errorf("%w: division by zero", ErrEval)
			}
			return values.Int(li / ri), nil
		}
	}
	lf, lok := AsFloat(lv)
	rf, rok := AsFloat(rv)
	if !lok || !rok {
		return values.Value{}, fmt.Errorf("%w: arithmetic on %v and %v", ErrEval, lv.Kind(), rv.Kind())
	}
	switch n.op {
	case "+":
		return values.Float(lf + rf), nil
	case "-":
		return values.Float(lf - rf), nil
	case "*":
		return values.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return values.Value{}, fmt.Errorf("%w: division by zero", ErrEval)
		}
		return values.Float(lf / rf), nil
	}
	return values.Value{}, fmt.Errorf("%w: unknown operator %q", ErrEval, n.op)
}

// AsFloat widens a numeric value to float64; ok is false for
// non-numeric kinds. Exported for preference scoring in the trader.
func AsFloat(v values.Value) (float64, bool) {
	switch v.Kind() {
	case values.KindInt:
		i, _ := v.AsInt()
		return float64(i), true
	case values.KindUint:
		u, _ := v.AsUint()
		return float64(u), true
	case values.KindFloat:
		f, _ := v.AsFloat()
		return f, true
	}
	return 0, false
}
