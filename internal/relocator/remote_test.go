package relocator

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
	"repro/internal/values"
)

// deployRelocator hosts a Relocator as an ODP object on its own node and
// returns a Remote proxy bound to it.
func deployRelocator(t *testing.T, net *netsim.Network) (*Relocator, *Remote) {
	t.Helper()
	r := New()
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID:        "relocator-host",
		Endpoint:  "sim://relocator-host",
		Transport: net.From("relocator-host"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	node.Behaviors().Register("odp.relocator", func(values.Value) (engineering.Behavior, error) {
		return &Servant{R: r}, nil
	})
	capsule, err := node.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cluster.CreateObject("odp.relocator", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	relocRef, err := obj.AddInterface(InterfaceType())
	if err != nil {
		t.Fatal(err)
	}
	b, err := channel.Bind(relocRef, channel.BindConfig{
		Transport: net.From("client"), Type: InterfaceType(),
	})
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemote(b)
	t.Cleanup(func() { remote.Close() })
	return r, remote
}

func TestRemoteRelocatorRoundTrip(t *testing.T) {
	net := netsim.New(1)
	local, remote := deployRelocator(t, net)

	in := ref(7, "sim://somewhere", 0)
	if err := remote.Register(in); err != nil {
		t.Fatalf("remote Register: %v", err)
	}
	// Visible locally and remotely.
	if got, err := local.Lookup(in.ID); err != nil || got != in {
		t.Errorf("local Lookup = %+v, %v", got, err)
	}
	got, err := remote.Lookup(in.ID)
	if err != nil || got != in {
		t.Errorf("remote Lookup = %+v, %v", got, err)
	}
	// Move through the proxy.
	moved, err := remote.Move(in.ID, "sim://elsewhere")
	if err != nil || moved.Endpoint != "sim://elsewhere" || moved.Epoch != 1 {
		t.Errorf("remote Move = %+v, %v", moved, err)
	}
	// Unknown id surfaces ErrUnknown through the proxy.
	ghost := ref(99, "", 0)
	if _, err := remote.Lookup(ghost.ID); !errors.Is(err, ErrUnknown) {
		t.Errorf("remote Lookup(ghost) = %v", err)
	}
	if _, err := remote.Move(ghost.ID, "sim://x"); !errors.Is(err, ErrUnknown) {
		t.Errorf("remote Move(ghost) = %v", err)
	}
	// Stale registration rejected remotely.
	if err := remote.Register(in); err == nil {
		t.Error("stale remote Register should fail")
	}
	// Remove (announcement) eventually clears the entry.
	remote.Remove(in.ID)
	deadlineLookup(t, local, in.ID)
}

func deadlineLookup(t *testing.T, r *Relocator, id naming.InterfaceID) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := r.Lookup(id); errors.Is(err, ErrUnknown) {
			return
		}
		time.Sleep(time.Millisecond) // Remove is an announcement: asynchronous
	}
	t.Fatal("entry not removed")
}

func TestNodeWithRemoteLocationRegistry(t *testing.T) {
	// A whole node uses a relocator hosted on ANOTHER node as its location
	// registry — the genuinely distributed form of location transparency.
	net := netsim.New(2)
	central, remote := deployRelocator(t, net)

	appNode, err := engineering.NewNode(engineering.NodeConfig{
		ID:        "app",
		Endpoint:  "sim://app",
		Transport: net.From("app"),
		Locations: remote, // Remote satisfies engineering.LocationRegistry
	})
	if err != nil {
		t.Fatal(err)
	}
	defer appNode.Close()
	appNode.Behaviors().Register("echo", func(values.Value) (engineering.Behavior, error) {
		return echoBehavior{}, nil
	})
	capsule, err := appNode.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cluster.CreateObject("echo", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	echoType := types.OpInterface("Echo",
		types.Op("Echo", types.Params(types.P("x", values.TString())),
			types.Term("OK", types.P("x", values.TString()))))
	appRef, err := obj.AddInterface(echoType)
	if err != nil {
		t.Fatal(err)
	}
	// The app node's interface registration landed in the CENTRAL relocator.
	got, err := central.Lookup(appRef.ID)
	if err != nil || got.Endpoint != "sim://app" {
		t.Fatalf("central registry entry = %+v, %v", got, err)
	}
	// A client on a third host binds with the remote locator and a stale
	// endpoint hint: location transparency across three parties.
	stale := appRef
	stale.Endpoint = "sim://wrong"
	clientSide, err := channel.Bind(appRef, channel.BindConfig{
		Transport:  net.From("customer"),
		Locator:    remote,
		MaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clientSide.Close()
	term, res, err := clientSide.Invoke(context.Background(), "Echo", []values.Value{values.Str("hi")})
	if err != nil || term != "OK" {
		t.Fatalf("Invoke = %q, %v, %v", term, res, err)
	}
}

type echoBehavior struct{}

func (echoBehavior) Invoke(_ context.Context, _ string, args []values.Value) (string, []values.Value, error) {
	return "OK", args, nil
}
