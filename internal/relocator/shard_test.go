package relocator

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/naming"
)

func newShardedStore(t *testing.T, n int) (*Sharded, []*Relocator) {
	t.Helper()
	s := NewSharded(0)
	stores := make([]*Relocator, n)
	for i := 0; i < n; i++ {
		stores[i] = New()
		if err := s.AddShard(fmt.Sprintf("w%d", i), stores[i]); err != nil {
			t.Fatal(err)
		}
	}
	return s, stores
}

func TestShardedEmpty(t *testing.T) {
	s := NewSharded(0)
	if err := s.Register(ref(1, "sim://a", 0)); !errors.Is(err, ErrNoShards) {
		t.Fatalf("register on empty ring = %v", err)
	}
	if _, err := s.Lookup(ref(1, "sim://a", 0).ID); !errors.Is(err, ErrNoShards) {
		t.Fatalf("lookup on empty ring = %v", err)
	}
}

func TestShardedRegisterLookupMoveRemove(t *testing.T) {
	s, _ := newShardedStore(t, 3)
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Register(ref(uint64(i+1), "sim://a", 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := s.Lookup(ref(uint64(i+1), "", 0).ID)
		if err != nil || got.Endpoint != "sim://a" {
			t.Fatalf("lookup %d = %+v, %v", i, got, err)
		}
	}
	moved, err := s.Move(ref(1, "", 0).ID, "sim://b")
	if err != nil || moved.Endpoint != "sim://b" || moved.Epoch != 1 {
		t.Fatalf("move = %+v, %v", moved, err)
	}
	s.Remove(ref(2, "", 0).ID)
	if _, err := s.Lookup(ref(2, "", 0).ID); !errors.Is(err, ErrUnknown) {
		t.Fatalf("lookup after remove = %v", err)
	}
	stats := s.Stats()
	if stats.Registers != n || stats.Moves != 1 || stats.Misses != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	refs, err := s.Snapshot()
	if err != nil || len(refs) != n-1 {
		t.Fatalf("snapshot = %d refs, %v", len(refs), err)
	}
}

func TestShardedAddShardDrains(t *testing.T) {
	s, stores := newShardedStore(t, 2)
	const n = 80
	for i := 0; i < n; i++ {
		if err := s.Register(ref(uint64(i+1), "sim://a", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddShard("w2", New()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Lookup(ref(uint64(i+1), "", 0).ID); err != nil {
			t.Fatalf("lookup %d after add: %v", i, err)
		}
	}
	if s.Stats().Migrated == 0 {
		t.Fatal("no registrations migrated")
	}
	// No entry is duplicated across shards after the drain settles.
	total := 0
	for _, st := range stores {
		total += len(st.Entries())
	}
	refs, _ := s.Snapshot()
	if len(refs) != n || total > n {
		t.Fatalf("snapshot = %d, donor entries = %d", len(refs), total)
	}
}

func TestShardedRemoveShardDrains(t *testing.T) {
	s, _ := newShardedStore(t, 3)
	const n = 60
	for i := 0; i < n; i++ {
		if err := s.Register(ref(uint64(i+1), "sim://a", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RemoveShard("w1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Lookup(ref(uint64(i+1), "", 0).ID); err != nil {
			t.Fatalf("lookup %d after remove: %v", i, err)
		}
	}
	if err := s.RemoveShard("ghost"); err == nil {
		t.Fatal("removing unknown shard accepted")
	}
	if err := s.RemoveShard("w0"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveShard("w2"); err == nil {
		t.Fatal("removing last shard accepted")
	}
}

// TestShardedLookupDuringDrain is the -race guarantee: a registration
// being drained to its new owner answers lookups throughout — from the
// old shard or the new one, never a miss.
func TestShardedLookupDuringDrain(t *testing.T) {
	s, _ := newShardedStore(t, 2)
	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Register(ref(uint64(i+1), "sim://a", 0)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var probes, misses atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for i := 0; i < n; i++ {
					if _, err := s.Lookup(ref(uint64(i+1), "", 0).ID); err != nil {
						misses.Add(1)
					}
					probes.Add(1)
				}
			}
		}()
	}

	waitProbes := func(target uint64) {
		for probes.Load() < target {
			runtime.Gosched()
		}
	}
	waitProbes(1)
	for i := 2; i < 5; i++ {
		if err := s.AddShard(fmt.Sprintf("w%d", i), New()); err != nil {
			t.Fatal(err)
		}
		waitProbes(probes.Load() + n)
	}
	if err := s.RemoveShard("w0"); err != nil {
		t.Fatal(err)
	}
	waitProbes(probes.Load() + n)
	stop.Store(true)
	wg.Wait()

	if misses.Load() != 0 {
		t.Fatalf("%d of %d lookups missed a live registration during rebalance", misses.Load(), probes.Load())
	}
}

func TestShardedDrainFencedByEpoch(t *testing.T) {
	// A client moving its registration forward mid-drain must not be
	// overwritten by the older draining copy: the destination's ErrStale
	// guard refuses it and drain treats that as success.
	s, _ := newShardedStore(t, 2)
	w2 := New()
	// Pick an id whose ownership will move to w2 when it joins.
	next := s.ring.Clone()
	if err := next.Add("w2"); err != nil {
		t.Fatal(err)
	}
	var in naming.InterfaceRef
	for nonce := uint64(1); ; nonce++ {
		cand := ref(nonce, "sim://old", 0)
		if next.Owner(cand.ID.String()) == "w2" {
			in = cand
			break
		}
	}
	if err := s.Register(in); err != nil {
		t.Fatal(err)
	}
	// The client's re-registration (newer epoch) lands at the new owner
	// before the drain copies the old snapshot over.
	newer := in
	newer.Endpoint = "sim://new"
	newer.Epoch = 5
	if err := w2.Register(newer); err != nil {
		t.Fatal(err)
	}
	if err := s.AddShard("w2", w2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup(in.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch < 5 || got.Endpoint != "sim://new" {
		t.Fatalf("drain regressed the registration: %+v", got)
	}
}

func TestStaleErrorCarriesEpochs(t *testing.T) {
	r := New()
	if err := r.Register(ref(1, "sim://a", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Move(ref(1, "", 0).ID, "sim://b"); err != nil {
		t.Fatal(err)
	}
	err := r.Register(ref(1, "sim://a", 0))
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v", err)
	}
	var se *StaleError
	if !errors.As(err, &se) {
		t.Fatalf("err %v does not carry *StaleError", err)
	}
	if se.Current != 1 || se.Refused != 0 {
		t.Fatalf("stale epochs = %+v", se)
	}
}
