package relocator

// Like the trader, the relocator is an ODP infrastructure object: nodes in
// other capsules (or other processes) reach it through an ordinary
// operational interface. Servant adapts a *Relocator to channel.Handler;
// Remote is the client proxy, satisfying both channel.Locator (for
// binders) and engineering.LocationRegistry (for nodes), so a whole node
// can be pointed at a relocator living elsewhere.

import (
	"context"
	"fmt"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/types"
	"repro/internal/values"
)

// InterfaceType returns the relocator's operational interface type.
func InterfaceType() *types.Interface {
	return types.OpInterface("odp.Relocator",
		types.Op("Register",
			types.Params(types.P("ref", naming.RefDataType())),
			types.Term("OK"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Lookup",
			types.Params(types.P("id", values.TString())),
			types.Term("OK", types.P("ref", naming.RefDataType())),
			types.Term("Unknown"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Move",
			types.Params(
				types.P("id", values.TString()),
				types.P("to", values.TString()),
			),
			types.Term("OK", types.P("ref", naming.RefDataType())),
			types.Term("Unknown"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Announce("Remove", types.P("id", values.TString())),
	)
}

// Servant adapts a Relocator to channel.Handler.
type Servant struct {
	R *Relocator
}

var _ channel.Handler = (*Servant)(nil)

// Invoke implements channel.Handler.
func (s *Servant) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	fail := func(err error) (string, []values.Value, error) {
		return "Error", []values.Value{values.Str(err.Error())}, nil
	}
	switch op {
	case "Register":
		ref, err := naming.RefFromValue(args[0])
		if err != nil {
			return fail(err)
		}
		if err := s.R.Register(ref); err != nil {
			return fail(err)
		}
		return "OK", nil, nil
	case "Lookup":
		idStr, _ := args[0].AsString()
		id, err := naming.ParseInterfaceID(idStr)
		if err != nil {
			return fail(err)
		}
		ref, err := s.R.Lookup(id)
		if err != nil {
			return "Unknown", nil, nil
		}
		return "OK", []values.Value{ref.ToValue()}, nil
	case "Move":
		idStr, _ := args[0].AsString()
		to, _ := args[1].AsString()
		id, err := naming.ParseInterfaceID(idStr)
		if err != nil {
			return fail(err)
		}
		ref, err := s.R.Move(id, naming.Endpoint(to))
		if err != nil {
			return "Unknown", nil, nil
		}
		return "OK", []values.Value{ref.ToValue()}, nil
	case "Remove":
		idStr, _ := args[0].AsString()
		id, err := naming.ParseInterfaceID(idStr)
		if err != nil {
			return "", nil, nil // announcements have no failure path
		}
		s.R.Remove(id)
		return "", nil, nil
	}
	return "", nil, fmt.Errorf("relocator: no operation %q", op)
}

// Remote is a client proxy to a relocator reachable over a channel. It
// satisfies channel.Locator and engineering.LocationRegistry, so both
// binders and whole nodes can use a relocator hosted elsewhere.
type Remote struct {
	b *channel.Binding
}

// NewRemote wraps a binding to a relocator interface.
func NewRemote(b *channel.Binding) *Remote { return &Remote{b: b} }

// Close releases the underlying binding.
func (r *Remote) Close() error { return r.b.Close() }

// Register records an interface location at the remote relocator.
func (r *Remote) Register(ref naming.InterfaceRef) error {
	term, res, err := r.b.Invoke(context.Background(), "Register", []values.Value{ref.ToValue()})
	if err != nil {
		return err
	}
	if term != "OK" {
		return remoteFailure("Register", res)
	}
	return nil
}

// Lookup resolves an interface's current location.
func (r *Remote) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	term, res, err := r.b.Invoke(context.Background(), "Lookup", []values.Value{values.Str(id.String())})
	if err != nil {
		return naming.InterfaceRef{}, err
	}
	switch term {
	case "OK":
		return naming.RefFromValue(res[0])
	case "Unknown":
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	return naming.InterfaceRef{}, remoteFailure("Lookup", res)
}

// Move relocates an interface at the remote relocator.
func (r *Remote) Move(id naming.InterfaceID, to naming.Endpoint) (naming.InterfaceRef, error) {
	term, res, err := r.b.Invoke(context.Background(), "Move", []values.Value{
		values.Str(id.String()), values.Str(string(to)),
	})
	if err != nil {
		return naming.InterfaceRef{}, err
	}
	switch term {
	case "OK":
		return naming.RefFromValue(res[0])
	case "Unknown":
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	return naming.InterfaceRef{}, remoteFailure("Move", res)
}

// Remove deletes an interface's registration (fire-and-forget, like the
// announcement it is).
func (r *Remote) Remove(id naming.InterfaceID) {
	_ = r.b.Announce(context.Background(), "Remove", []values.Value{values.Str(id.String())})
}

func remoteFailure(op string, res []values.Value) error {
	reason := "unknown"
	if len(res) == 1 {
		if s, ok := res[0].AsString(); ok {
			reason = s
		}
	}
	return fmt.Errorf("relocator: remote %s failed: %s", op, reason)
}
