package relocator

// Like the trader, the relocator is an ODP infrastructure object: nodes in
// other capsules (or other processes) reach it through an ordinary
// operational interface. Servant adapts a *Relocator to channel.Handler;
// Remote is the client proxy, satisfying both channel.Locator (for
// binders) and engineering.LocationRegistry (for nodes), so a whole node
// can be pointed at a relocator living elsewhere.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/types"
	"repro/internal/values"
)

// InterfaceType returns the relocator's operational interface type.
func InterfaceType() *types.Interface {
	return types.OpInterface("odp.Relocator",
		types.Op("Register",
			types.Params(types.P("ref", naming.RefDataType())),
			types.Term("OK"),
			// Stale carries the epoch the relocator currently holds, so a
			// remote caller recovers a structured *StaleError — not just a
			// stringified reason — and can fence its own state with it.
			types.Term("Stale",
				types.P("current_epoch", values.TInt()),
				types.P("refused_epoch", values.TInt()),
			),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Lookup",
			types.Params(types.P("id", values.TString())),
			types.Term("OK", types.P("ref", naming.RefDataType())),
			types.Term("Unknown"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Move",
			types.Params(
				types.P("id", values.TString()),
				types.P("to", values.TString()),
			),
			types.Term("OK", types.P("ref", naming.RefDataType())),
			types.Term("Unknown"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Announce("Remove", types.P("id", values.TString())),
		// Snapshot enumerates every registration — the capability live
		// shard migration needs to drain a relocator shard.
		types.Op("Snapshot",
			types.Params(),
			types.Term("OK", types.P("refs", values.TSeq(naming.RefDataType()))),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

// Servant adapts any location Store (a local *Relocator, a replicated
// Group, a Sharded front-end) to channel.Handler, so each can be hosted
// as an ordinary ODP object.
type Servant struct {
	R Store
}

var _ channel.Handler = (*Servant)(nil)

// Invoke implements channel.Handler.
func (s *Servant) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	fail := func(err error) (string, []values.Value, error) {
		return "Error", []values.Value{values.Str(err.Error())}, nil
	}
	switch op {
	case "Register":
		ref, err := naming.RefFromValue(args[0])
		if err != nil {
			return fail(err)
		}
		if err := s.R.Register(ref); err != nil {
			var stale *StaleError
			if errors.As(err, &stale) {
				return "Stale", []values.Value{
					values.Int(int64(stale.Current)),
					values.Int(int64(stale.Refused)),
				}, nil
			}
			return fail(err)
		}
		return "OK", nil, nil
	case "Lookup":
		idStr, _ := args[0].AsString()
		id, err := naming.ParseInterfaceID(idStr)
		if err != nil {
			return fail(err)
		}
		ref, err := s.R.Lookup(id)
		if err != nil {
			return "Unknown", nil, nil
		}
		return "OK", []values.Value{ref.ToValue()}, nil
	case "Move":
		idStr, _ := args[0].AsString()
		to, _ := args[1].AsString()
		id, err := naming.ParseInterfaceID(idStr)
		if err != nil {
			return fail(err)
		}
		ref, err := s.R.Move(id, naming.Endpoint(to))
		if err != nil {
			return "Unknown", nil, nil
		}
		return "OK", []values.Value{ref.ToValue()}, nil
	case "Remove":
		idStr, _ := args[0].AsString()
		id, err := naming.ParseInterfaceID(idStr)
		if err != nil {
			return "", nil, nil // announcements have no failure path
		}
		s.R.Remove(id)
		return "", nil, nil
	case "Snapshot":
		en, ok := s.R.(Enumerable)
		if !ok {
			return fail(fmt.Errorf("relocator: store cannot enumerate"))
		}
		refs, err := en.Snapshot()
		if err != nil {
			return fail(err)
		}
		out := make([]values.Value, len(refs))
		for i, ref := range refs {
			out[i] = ref.ToValue()
		}
		return "OK", []values.Value{values.Seq(out...)}, nil
	}
	return "", nil, fmt.Errorf("relocator: no operation %q", op)
}

// Remote is a client proxy to a relocator reachable over a channel. It
// satisfies channel.Locator and engineering.LocationRegistry, so both
// binders and whole nodes can use a relocator hosted elsewhere.
type Remote struct {
	b *channel.Binding
}

// NewRemote wraps a binding to a relocator interface.
func NewRemote(b *channel.Binding) *Remote { return &Remote{b: b} }

// Close releases the underlying binding.
func (r *Remote) Close() error { return r.b.Close() }

// Register records an interface location at the remote relocator. A
// stale registration surfaces as a *StaleError carrying the current
// epoch, exactly as it would from a local relocator.
func (r *Remote) Register(ref naming.InterfaceRef) error {
	term, res, err := r.b.Invoke(context.Background(), "Register", []values.Value{ref.ToValue()})
	if err != nil {
		return err
	}
	switch term {
	case "OK":
		return nil
	case "Stale":
		se := &StaleError{ID: ref.ID, Refused: ref.Epoch}
		if len(res) == 2 {
			if cur, ok := res[0].AsInt(); ok {
				se.Current = uint64(cur)
			}
			if got, ok := res[1].AsInt(); ok {
				se.Refused = uint64(got)
			}
		}
		return se
	}
	return remoteFailure("Register", res)
}

// Lookup resolves an interface's current location.
func (r *Remote) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	term, res, err := r.b.Invoke(context.Background(), "Lookup", []values.Value{values.Str(id.String())})
	if err != nil {
		return naming.InterfaceRef{}, err
	}
	switch term {
	case "OK":
		return naming.RefFromValue(res[0])
	case "Unknown":
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	return naming.InterfaceRef{}, remoteFailure("Lookup", res)
}

// Move relocates an interface at the remote relocator.
func (r *Remote) Move(id naming.InterfaceID, to naming.Endpoint) (naming.InterfaceRef, error) {
	term, res, err := r.b.Invoke(context.Background(), "Move", []values.Value{
		values.Str(id.String()), values.Str(string(to)),
	})
	if err != nil {
		return naming.InterfaceRef{}, err
	}
	switch term {
	case "OK":
		return naming.RefFromValue(res[0])
	case "Unknown":
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	return naming.InterfaceRef{}, remoteFailure("Move", res)
}

// Remove deletes an interface's registration (fire-and-forget, like the
// announcement it is).
func (r *Remote) Remove(id naming.InterfaceID) {
	_ = r.b.Announce(context.Background(), "Remove", []values.Value{values.Str(id.String())})
}

// Snapshot enumerates the remote relocator's registrations.
func (r *Remote) Snapshot() ([]naming.InterfaceRef, error) {
	term, res, err := r.b.Invoke(context.Background(), "Snapshot", nil)
	if err != nil {
		return nil, err
	}
	if term != "OK" {
		return nil, remoteFailure("Snapshot", res)
	}
	seq := res[0]
	out := make([]naming.InterfaceRef, 0, seq.Len())
	for i := 0; i < seq.Len(); i++ {
		ref, err := naming.RefFromValue(seq.ElemAt(i))
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
	}
	return out, nil
}

func remoteFailure(op string, res []values.Value) error {
	reason := "unknown"
	if len(res) == 1 {
		if s, ok := res[0].AsString(); ok {
			reason = s
		}
	}
	return fmt.Errorf("relocator: remote %s failed: %s", op, reason)
}
