// Client-side relocation cache: the bounded, epoch-fenced lookaside that
// sits between a binder and the (possibly sharded, possibly remote)
// relocator, so the hot re-bind path pays a map read instead of a remote
// lookup while its entry is fresh.
//
// Freshness is epoch-fenced, reusing the relocation-epoch ordering the
// session layer already trusts: every InterfaceRef carries the count of
// relocations it has survived, so once the cache learns that epoch e
// exists for an interface, any ref with a smaller epoch is provably dead
// and is never served from the cache again (Fence). Staleness signals —
// a server answering "no such interface", a relocator rejecting a
// registration with ErrStale — invalidate the entry (Invalidate), which
// the binding layer calls through channel.LocationInvalidator so the
// next refresh reaches the authority instead of re-reading the same
// stale cache line.
package relocator

import (
	"sync"
	"sync/atomic"

	"repro/internal/naming"
)

// Source is anything the cache can fall back to for an authoritative
// lookup: a *Relocator, *Remote, *Sharded or *Group.
type Source interface {
	Lookup(id naming.InterfaceID) (naming.InterfaceRef, error)
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits        uint64
	Misses      uint64 // lookups that went to the source
	Evictions   uint64 // entries displaced by the capacity bound
	Fenced      uint64 // cached refs dropped because a newer epoch was learned
	Invalidated uint64 // entries dropped by staleness signals
	Entries     int    // records currently held (cached refs + bare fences)
}

type cacheRecord struct {
	ref    naming.InterfaceRef
	hasRef bool
	fence  uint64 // epochs below this are dead for the interface
	token  uint64 // FIFO position for eviction
}

// Cache is a bounded, epoch-fenced location cache in front of a Source.
// It satisfies channel.Locator (Lookup) and channel.LocationInvalidator
// (Invalidate), and is safe for concurrent use.
type Cache struct {
	src Source
	cap int

	mu      sync.Mutex
	records map[naming.InterfaceID]*cacheRecord
	// order is the FIFO of (id, token) insertions; eviction pops entries
	// whose token still matches. It is compacted when it outgrows the
	// live set, so memory stays bounded by the capacity.
	order     []fifoSlot
	nextToken uint64

	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	fenced      atomic.Uint64
	invalidated atomic.Uint64
}

type fifoSlot struct {
	id    naming.InterfaceID
	token uint64
}

// NewCache creates a cache of at most capacity records (cached refs and
// bare fence markers count alike) over the authoritative source.
// capacity <= 0 selects 1024.
func NewCache(src Source, capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cache{
		src:     src,
		cap:     capacity,
		records: make(map[naming.InterfaceID]*cacheRecord, capacity),
	}
}

// Lookup returns the cached location when fresh, otherwise asks the
// source and caches the answer. An answer older than the interface's
// fence is returned (the authority may genuinely lag) but never cached —
// so the cache itself never serves a fenced epoch.
func (c *Cache) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	c.mu.Lock()
	if rec, ok := c.records[id]; ok && rec.hasRef {
		ref := rec.ref
		c.mu.Unlock()
		c.hits.Add(1)
		return ref, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	ref, err := c.src.Lookup(id)
	if err != nil {
		return naming.InterfaceRef{}, err
	}
	c.store(ref)
	return ref, nil
}

// store caches ref unless its epoch is below the interface's fence, and
// advances the fence to the ref's epoch (epochs are monotonic: seeing e
// proves everything below e is dead).
func (c *Cache) store(ref naming.InterfaceRef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.records[ref.ID]
	if !ok {
		c.evictLocked(1)
		rec = &cacheRecord{}
		c.records[ref.ID] = rec
		c.pushLocked(ref.ID, rec)
	}
	if ref.Epoch < rec.fence {
		return // authority lagging behind a known-newer epoch: do not cache
	}
	rec.ref = ref
	rec.hasRef = true
	rec.fence = ref.Epoch
}

// Observe feeds a relocator event into the cache (wire it to
// Relocator.Subscribe when the authority is co-resident): registrations
// and moves refresh the entry and fence older epochs, removals drop it.
func (c *Cache) Observe(ev Event) {
	if ev.Removed {
		c.Invalidate(ev.Ref.ID)
		return
	}
	c.store(ev.Ref)
	c.Fence(ev.Ref.ID, ev.Ref.Epoch)
}

// Fence records that epochs below epoch are dead for the interface,
// dropping any older cached ref. The binding layer calls this when a
// relocation is adopted; a bare fence (no cached ref yet) is retained so
// a lagging authority cannot repopulate the dead epoch.
func (c *Cache) Fence(id naming.InterfaceID, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.records[id]
	if !ok {
		c.evictLocked(1)
		rec = &cacheRecord{fence: epoch}
		c.records[id] = rec
		c.pushLocked(id, rec)
		return
	}
	if epoch > rec.fence {
		rec.fence = epoch
		if rec.hasRef && rec.ref.Epoch < epoch {
			rec.hasRef = false
			rec.ref = naming.InterfaceRef{}
			c.fenced.Add(1)
		}
	}
}

// Invalidate drops the cached ref for the interface (the fence, if any,
// survives). The binding layer calls this on staleness evidence so its
// next refresh reaches the authority.
func (c *Cache) Invalidate(id naming.InterfaceID) {
	c.mu.Lock()
	rec, ok := c.records[id]
	if ok && rec.hasRef {
		rec.hasRef = false
		rec.ref = naming.InterfaceRef{}
		c.invalidated.Add(1)
	}
	c.mu.Unlock()
}

// pushLocked appends the record to the FIFO under a fresh token.
func (c *Cache) pushLocked(id naming.InterfaceID, rec *cacheRecord) {
	c.nextToken++
	rec.token = c.nextToken
	c.order = append(c.order, fifoSlot{id: id, token: rec.token})
	if len(c.order) > 4*c.cap {
		kept := c.order[:0]
		for _, s := range c.order {
			if r, ok := c.records[s.id]; ok && r.token == s.token {
				kept = append(kept, s)
			}
		}
		c.order = kept
	}
}

// evictLocked makes room for n new records by popping the oldest live
// FIFO slots until the capacity bound holds.
func (c *Cache) evictLocked(n int) {
	for len(c.records)+n > c.cap && len(c.order) > 0 {
		slot := c.order[0]
		c.order = c.order[1:]
		rec, ok := c.records[slot.id]
		if !ok || rec.token != slot.token {
			continue // superseded slot; the record moved or is gone
		}
		delete(c.records, slot.id)
		c.evictions.Add(1)
	}
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.records)
	c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Fenced:      c.fenced.Load(),
		Invalidated: c.invalidated.Load(),
		Entries:     entries,
	}
}
