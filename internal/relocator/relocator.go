// Package relocator implements the ODP relocator function
// (Section 8.3.3 of the tutorial): "a repository of interface locations
// (a white pages service)".
//
// Binders register the location of the interfaces they support and consult
// the relocator when a cached location turns out to be stale; that is the
// mechanism behind location and relocation transparency (Section 9.2).
// Every relocation bumps the interface's epoch, so a binder can tell a
// fresh answer from the stale hint it already has.
//
// A Relocator is safe for concurrent use.
package relocator

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/naming"
)

// Relocator error sentinels.
var (
	ErrUnknown = errors.New("relocator: unknown interface")
	ErrStale   = errors.New("relocator: registration is older than current epoch")
)

// StaleError is the structured form of ErrStale: it carries the epoch the
// relocator currently holds for the interface alongside the refused one,
// so a caller that hits errors.Is(err, ErrStale) can also recover the
// current epoch from the chain (errors.As) instead of re-looking it up.
type StaleError struct {
	ID      naming.InterfaceID
	Current uint64 // epoch the relocator holds
	Refused uint64 // epoch the rejected registration carried
}

func (e *StaleError) Error() string {
	return fmt.Sprintf("%v: %s has epoch %d, refusing epoch %d", ErrStale, e.ID, e.Current, e.Refused)
}

// Unwrap makes errors.Is(err, ErrStale) hold.
func (e *StaleError) Unwrap() error { return ErrStale }

// Event describes one change to the location database.
type Event struct {
	Ref     naming.InterfaceRef
	Removed bool
}

// Relocator is the white-pages repository of interface locations.
type Relocator struct {
	mu      sync.RWMutex
	entries map[naming.InterfaceID]naming.InterfaceRef
	nextSub int
	subs    map[int]func(Event)

	lookups   atomic.Uint64
	misses    atomic.Uint64
	relocates atomic.Uint64
}

// New returns an empty relocator.
func New() *Relocator {
	return &Relocator{
		entries: make(map[naming.InterfaceID]naming.InterfaceRef),
		subs:    make(map[int]func(Event)),
	}
}

// Register records the location of an interface. A later registration for
// the same interface must carry an epoch at least as new as the stored
// one, otherwise ErrStale is returned — this stops a delayed registration
// from a previous home overwriting the interface's current location.
func (r *Relocator) Register(ref naming.InterfaceRef) error {
	if ref.IsZero() {
		return fmt.Errorf("%w: zero reference", ErrUnknown)
	}
	r.mu.Lock()
	if cur, ok := r.entries[ref.ID]; ok && ref.Epoch < cur.Epoch {
		r.mu.Unlock()
		return &StaleError{ID: ref.ID, Current: cur.Epoch, Refused: ref.Epoch}
	}
	r.entries[ref.ID] = ref
	subs := r.snapshot()
	r.mu.Unlock()
	notify(subs, Event{Ref: ref})
	return nil
}

// Lookup returns the current location of the interface.
func (r *Relocator) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	// Atomic counters let lookups share the read lock: before, every
	// Lookup took the write lock just to bump the counters, serialising
	// the hottest read path of the white pages.
	r.lookups.Add(1)
	r.mu.RLock()
	ref, ok := r.entries[id]
	r.mu.RUnlock()
	if !ok {
		r.misses.Add(1)
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	return ref, nil
}

// Move relocates an interface to a new endpoint, bumping its epoch, and
// returns the updated reference. This is what a migrating capsule manager
// calls for each interface of a moved cluster.
func (r *Relocator) Move(id naming.InterfaceID, to naming.Endpoint) (naming.InterfaceRef, error) {
	r.mu.Lock()
	ref, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return naming.InterfaceRef{}, fmt.Errorf("%w: %s", ErrUnknown, id)
	}
	ref.Endpoint = to
	ref.Epoch++
	r.entries[id] = ref
	r.relocates.Add(1)
	subs := r.snapshot()
	r.mu.Unlock()
	notify(subs, Event{Ref: ref})
	return ref, nil
}

// Remove deletes an interface's registration (e.g. on object deletion).
// Removing an unknown interface is a no-op.
func (r *Relocator) Remove(id naming.InterfaceID) {
	r.mu.Lock()
	ref, ok := r.entries[id]
	if ok {
		delete(r.entries, id)
	}
	subs := r.snapshot()
	r.mu.Unlock()
	if ok {
		notify(subs, Event{Ref: ref, Removed: true})
	}
}

// Subscribe registers a callback invoked (synchronously, without internal
// locks held) for every registration, move and removal. The returned
// function cancels the subscription.
func (r *Relocator) Subscribe(fn func(Event)) (cancel func()) {
	r.mu.Lock()
	id := r.nextSub
	r.nextSub++
	r.subs[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.subs, id)
		r.mu.Unlock()
	}
}

// Entries returns a snapshot of all registrations, sorted by interface id.
func (r *Relocator) Entries() []naming.InterfaceRef {
	r.mu.RLock()
	out := make([]naming.InterfaceRef, 0, len(r.entries))
	for _, ref := range r.entries {
		out = append(out, ref)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID.String() < out[j].ID.String() })
	return out
}

// Stats reports cumulative lookup, miss and relocation counts.
func (r *Relocator) Stats() (lookups, misses, relocates uint64) {
	return r.lookups.Load(), r.misses.Load(), r.relocates.Load()
}

func (r *Relocator) snapshot() []func(Event) {
	out := make([]func(Event), 0, len(r.subs))
	for _, fn := range r.subs {
		out = append(out, fn)
	}
	return out
}

func notify(subs []func(Event), ev Event) {
	for _, fn := range subs {
		fn(ev)
	}
}
