package relocator

import (
	"sync"
	"testing"
)

// TestStatsUnderContention hammers hit and miss lookups from many
// goroutines while another reads Stats, then checks the counters are
// exact: the counters are atomics on the lock-free read path, so no
// observation may be lost and no reader may race (run with -race).
func TestStatsUnderContention(t *testing.T) {
	r := New()
	hit := ref(1, "sim://alpha", 0)
	if err := r.Register(hit); err != nil {
		t.Fatal(err)
	}
	miss := ref(2, "sim://alpha", 0)

	const workers, per = 8, 200
	done := make(chan struct{})
	go func() { // concurrent stats reader
		for {
			select {
			case <-done:
				return
			default:
				r.Stats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := r.Lookup(hit.ID); err != nil {
					t.Errorf("Lookup(hit): %v", err)
					return
				}
				if _, err := r.Lookup(miss.ID); err == nil {
					t.Error("Lookup(miss) succeeded")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)

	lookups, misses, relocates := r.Stats()
	if lookups != 2*workers*per || misses != workers*per || relocates != 0 {
		t.Fatalf("stats = %d/%d/%d, want %d/%d/0",
			lookups, misses, relocates, 2*workers*per, workers*per)
	}
}
