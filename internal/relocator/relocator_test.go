package relocator

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/naming"
)

func ref(nonce uint64, ep naming.Endpoint, epoch uint64) naming.InterfaceRef {
	return naming.InterfaceRef{
		ID: naming.InterfaceID{
			Object: naming.ObjectID{
				Cluster: naming.ClusterID{Capsule: naming.CapsuleID{Node: "a", Seq: 1}, Seq: 1},
				Seq:     1,
			},
			Seq:   1,
			Nonce: nonce,
		},
		TypeName: "BankTeller",
		Endpoint: ep,
		Epoch:    epoch,
	}
}

func TestRegisterLookup(t *testing.T) {
	r := New()
	in := ref(1, "sim://alpha", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup(in.ID)
	if err != nil || got != in {
		t.Errorf("Lookup = %+v, %v", got, err)
	}
	lookups, misses, relocs := r.Stats()
	if lookups != 1 || misses != 0 || relocs != 0 {
		t.Errorf("stats = %d %d %d", lookups, misses, relocs)
	}
}

func TestLookupUnknown(t *testing.T) {
	r := New()
	if _, err := r.Lookup(ref(9, "", 0).ID); !errors.Is(err, ErrUnknown) {
		t.Errorf("err = %v", err)
	}
	_, misses, _ := r.Stats()
	if misses != 1 {
		t.Errorf("misses = %d", misses)
	}
}

func TestRegisterZeroRef(t *testing.T) {
	r := New()
	if err := r.Register(naming.InterfaceRef{}); err == nil {
		t.Error("zero ref should be rejected")
	}
}

func TestMoveBumpsEpoch(t *testing.T) {
	r := New()
	in := ref(1, "sim://alpha", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	moved, err := r.Move(in.ID, "sim://beta")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Endpoint != "sim://beta" || moved.Epoch != 1 {
		t.Errorf("moved = %+v", moved)
	}
	got, err := r.Lookup(in.ID)
	if err != nil || got != moved {
		t.Errorf("Lookup after move = %+v, %v", got, err)
	}
	if _, err := r.Move(ref(99, "", 0).ID, "sim://x"); !errors.Is(err, ErrUnknown) {
		t.Errorf("move unknown = %v", err)
	}
	_, _, relocs := r.Stats()
	if relocs != 1 {
		t.Errorf("relocates = %d", relocs)
	}
}

func TestStaleRegistrationRejected(t *testing.T) {
	r := New()
	in := ref(1, "sim://alpha", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Move(in.ID, "sim://beta"); err != nil {
		t.Fatal(err)
	}
	// A delayed re-registration from the old home (epoch 0) must lose.
	if err := r.Register(in); !errors.Is(err, ErrStale) {
		t.Errorf("stale register = %v", err)
	}
	// A registration at the current epoch (e.g. a refresh) is fine.
	cur, _ := r.Lookup(in.ID)
	if err := r.Register(cur); err != nil {
		t.Errorf("refresh register = %v", err)
	}
}

func TestRemove(t *testing.T) {
	r := New()
	in := ref(1, "sim://alpha", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	r.Remove(in.ID)
	if _, err := r.Lookup(in.ID); !errors.Is(err, ErrUnknown) {
		t.Errorf("lookup after remove = %v", err)
	}
	r.Remove(in.ID) // idempotent
}

func TestEntriesSorted(t *testing.T) {
	r := New()
	a := ref(1, "sim://alpha", 0)
	b := ref(2, "sim://beta", 0)
	if err := r.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	es := r.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %v", es)
	}
	if es[0].ID.String() > es[1].ID.String() {
		t.Error("entries not sorted")
	}
}

func TestSubscribe(t *testing.T) {
	r := New()
	var mu sync.Mutex
	var events []Event
	cancel := r.Subscribe(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	in := ref(1, "sim://alpha", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Move(in.ID, "sim://beta"); err != nil {
		t.Fatal(err)
	}
	r.Remove(in.ID)
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("events = %d, want 3", n)
	}
	if events[0].Removed || events[1].Removed || !events[2].Removed {
		t.Errorf("event kinds wrong: %+v", events)
	}
	if events[1].Ref.Endpoint != "sim://beta" || events[1].Ref.Epoch != 1 {
		t.Errorf("move event = %+v", events[1])
	}

	cancel()
	if err := r.Register(ref(2, "sim://x", 0)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Errorf("events after cancel = %d, want 3", len(events))
	}
}

func TestConcurrentRegisterAndLookup(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := ref(uint64(i+1), "sim://alpha", 0)
			for j := 0; j < 100; j++ {
				if err := r.Register(in); err != nil && !errors.Is(err, ErrStale) {
					t.Errorf("Register: %v", err)
					return
				}
				if _, err := r.Lookup(in.ID); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				if _, err := r.Move(in.ID, "sim://beta"); err != nil {
					t.Errorf("Move: %v", err)
					return
				}
				in, _ = r.Lookup(in.ID)
			}
		}(i)
	}
	wg.Wait()
}
