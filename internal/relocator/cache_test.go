package relocator

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	r := New()
	in := ref(1, "sim://a", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	c := NewCache(r, 8)
	for i := 0; i < 3; i++ {
		got, err := c.Lookup(in.ID)
		if err != nil || got != in {
			t.Fatalf("lookup %d = %+v, %v", i, got, err)
		}
	}
	stats := c.Stats()
	if stats.Misses != 1 || stats.Hits != 2 || stats.Entries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Source errors pass through and cache nothing.
	if _, err := c.Lookup(ref(99, "", 0).ID); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown lookup = %v", err)
	}
	if c.Stats().Entries != 1 {
		t.Fatalf("error cached: %+v", c.Stats())
	}
}

func TestCacheCapacityBound(t *testing.T) {
	r := New()
	const capLimit = 16
	c := NewCache(r, capLimit)
	for i := 0; i < 100; i++ {
		in := ref(uint64(i+1), "sim://a", 0)
		if err := r.Register(in); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Lookup(in.ID); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.Stats()
	if stats.Entries > capLimit {
		t.Fatalf("entries = %d > cap %d", stats.Entries, capLimit)
	}
	if stats.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
}

func TestCacheInvalidateForcesRefresh(t *testing.T) {
	r := New()
	in := ref(1, "sim://a", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	c := NewCache(r, 8)
	if _, err := c.Lookup(in.ID); err != nil {
		t.Fatal(err)
	}
	// The authority moves the interface; the cache still holds the old
	// endpoint until a staleness signal lands.
	moved, err := r.Move(in.ID, "sim://b")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Lookup(in.ID); got.Endpoint != "sim://a" {
		t.Fatalf("expected stale cached answer, got %+v", got)
	}
	c.Invalidate(in.ID)
	got, err := c.Lookup(in.ID)
	if err != nil || got != moved {
		t.Fatalf("post-invalidate lookup = %+v, %v", got, err)
	}
	if c.Stats().Invalidated != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestCacheFenceBlocksOlderEpoch(t *testing.T) {
	r := New()
	in := ref(1, "sim://a", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	c := NewCache(r, 8)
	// The binding layer learns epoch 3 exists before the authority does.
	c.Fence(in.ID, 3)
	got, err := c.Lookup(in.ID)
	if err != nil || got.Epoch != 0 {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	// The lagging answer was returned but must not have been cached.
	if c.Stats().Hits != 0 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	if _, err := c.Lookup(in.ID); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != 0 || c.Stats().Misses != 2 {
		t.Fatalf("fenced epoch served from cache: %+v", c.Stats())
	}
	// Once the authority catches up to the fence, caching resumes.
	caught := in
	caught.Epoch = 3
	caught.Endpoint = "sim://c"
	if err := r.Register(caught); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Lookup(in.ID); got != caught {
		t.Fatalf("caught-up lookup = %+v", got)
	}
	if got, _ := c.Lookup(in.ID); got != caught {
		t.Fatalf("cached caught-up lookup = %+v", got)
	}
	if c.Stats().Hits != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestCacheObserveFollowsAuthority(t *testing.T) {
	r := New()
	c := NewCache(r, 8)
	cancel := r.Subscribe(c.Observe)
	defer cancel()

	in := ref(1, "sim://a", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	// The event stream pre-warmed the cache: first lookup is a hit.
	if got, err := c.Lookup(in.ID); err != nil || got != in {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if c.Stats().Hits != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// A move refreshes the cached entry and fences the old epoch.
	moved, err := r.Move(in.ID, "sim://b")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Lookup(in.ID); got != moved {
		t.Fatalf("post-move lookup = %+v", got)
	}
	// A removal drops it.
	r.Remove(in.ID)
	if _, err := c.Lookup(in.ID); !errors.Is(err, ErrUnknown) {
		t.Fatalf("post-remove lookup = %v", err)
	}
}

// TestCacheNeverServesFencedEpoch is the -race guarantee: concurrent
// lookups racing a relocation never read an epoch the fence has killed.
func TestCacheNeverServesFencedEpoch(t *testing.T) {
	r := New()
	in := ref(1, "sim://a", 0)
	if err := r.Register(in); err != nil {
		t.Fatal(err)
	}
	c := NewCache(r, 8)

	var stop atomic.Bool
	var violations atomic.Uint64
	fence := new(atomic.Uint64) // highest epoch the fencer has announced
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				known := fence.Load()
				got, err := c.Lookup(in.ID)
				if err != nil {
					continue
				}
				// By the time the fencer publishes epoch e, the authority
				// already holds e and the cache fence is set — so any answer
				// below an epoch published BEFORE the lookup began, cached or
				// sourced, is a stale read.
				if got.Epoch < known {
					violations.Add(1)
				}
			}
		}()
	}

	for epoch := uint64(1); epoch <= 200; epoch++ {
		moved, err := r.Move(in.ID, "sim://b")
		if err != nil {
			t.Fatal(err)
		}
		c.Fence(in.ID, moved.Epoch)
		fence.Store(moved.Epoch)
	}
	stop.Store(true)
	wg.Wait()

	if violations.Load() != 0 {
		t.Fatalf("%d fenced-epoch reads served", violations.Load())
	}
	// Settled: the cache converges on the authority's final epoch.
	got, err := c.Lookup(in.ID)
	if err != nil || got.Epoch != 200 {
		t.Fatalf("settled lookup = %+v, %v", got, err)
	}
}
