// Sharded white pages: the location database partitioned by consistent
// hashing over the interface id. Each shard is any Store — a local
// *Relocator, a *Remote proxy to one hosted elsewhere, or a replicated
// Group — so the relocation function scales horizontally like any other
// ODP service while binders keep talking to one channel.Locator.
//
// Rebalancing is live and mirrors the sharded trader's protocol: a ring
// change first opens a double-read window (lookups that miss on the new
// owner retry the previous owner), then drains the moving registrations
// with Register — which the destination orders by epoch, so a client
// re-registering a newer location mid-migration can never be overwritten
// by the older copy in flight (the ErrStale guard doing fence duty).
package relocator

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hashring"
	"repro/internal/naming"
)

// ErrNoShards reports an operation on a sharded relocator with an empty
// ring.
var ErrNoShards = errors.New("relocator: sharded relocator has no shards")

// Store is one partition of the location database: the white-pages
// operations sharding routes. *Relocator, *Remote, *Group and *Sharded
// all satisfy it (Sharded nests).
type Store interface {
	Register(ref naming.InterfaceRef) error
	Lookup(id naming.InterfaceID) (naming.InterfaceRef, error)
	Move(id naming.InterfaceID, to naming.Endpoint) (naming.InterfaceRef, error)
	Remove(id naming.InterfaceID)
}

// Enumerable is the optional Store capability live migration needs: a
// snapshot of every registration the store holds.
type Enumerable interface {
	Snapshot() ([]naming.InterfaceRef, error)
}

var (
	_ Store      = (*Relocator)(nil)
	_ Store      = (*Remote)(nil)
	_ Enumerable = (*Remote)(nil)
)

// Snapshot adapts the local relocator's Entries to the Enumerable
// capability (same data, error-bearing signature).
func (r *Relocator) Snapshot() ([]naming.InterfaceRef, error) { return r.Entries(), nil }

// ShardedStats counts sharded-relocation activity at the front-end.
type ShardedStats struct {
	Lookups    uint64
	Fallbacks  uint64 // lookups answered by the previous owner mid-rebalance
	Misses     uint64
	Registers  uint64
	Moves      uint64
	Rebalances uint64
	Migrated   uint64 // registrations moved live by rebalances
	RingEpoch  uint64
}

// Sharded partitions the location database over named shards by
// consistent hashing of the interface id. It satisfies Store (and
// channel.Locator / engineering.LocationRegistry through it), so a node
// or a whole system can be pointed at it unchanged.
type Sharded struct {
	mu     sync.RWMutex
	ring   *hashring.Ring
	prev   *hashring.Ring // non-nil while a rebalance is draining
	shards map[string]Store

	rebalanceMu sync.Mutex

	lookups   atomic.Uint64
	fallbacks atomic.Uint64
	misses    atomic.Uint64
	registers atomic.Uint64
	moves     atomic.Uint64
	rebals    atomic.Uint64
	migrated  atomic.Uint64
	ringEpoch atomic.Uint64
}

var _ Store = (*Sharded)(nil)

// NewSharded creates an empty sharded relocator front-end. ringReplicas
// is the virtual-node count per shard (<=0 selects the default).
func NewSharded(ringReplicas int) *Sharded {
	return &Sharded{
		ring:   hashring.New(ringReplicas),
		shards: make(map[string]Store),
	}
}

// Shards returns the sorted shard names on the ring.
func (s *Sharded) Shards() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Members()
}

// RingEpoch returns the current ring generation.
func (s *Sharded) RingEpoch() uint64 { return s.ringEpoch.Load() }

// owner returns the shard owning id under the current ring, plus — when
// a rebalance is draining — the previous owner if it differs.
func (s *Sharded) owner(id naming.InterfaceID) (cur Store, old Store) {
	key := id.String()
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur = s.shards[s.ring.Owner(key)]
	if s.prev != nil {
		if oldName := s.prev.Owner(key); oldName != s.ring.Owner(key) {
			old = s.shards[oldName]
		}
	}
	return cur, old
}

// Register records a location at the owner of its interface id. If a
// ring flip races the write — the registration landing on a shard that
// just donated its key range, after the drain already enumerated it —
// the entry would be stranded, so Register re-checks ownership after the
// write and re-routes itself (pulling the misplaced copy back) until the
// routing holds still.
func (s *Sharded) Register(ref naming.InterfaceRef) error {
	key := ref.ID.String()
	for attempt := 0; ; attempt++ {
		s.mu.RLock()
		name := s.ring.Owner(key)
		cur := s.shards[name]
		s.mu.RUnlock()
		if cur == nil {
			return ErrNoShards
		}
		if err := cur.Register(ref); err != nil {
			return err
		}
		s.mu.RLock()
		moved := s.ring.Owner(key) != name
		s.mu.RUnlock()
		if !moved || attempt >= 3 {
			s.registers.Add(1)
			return nil
		}
		// Ownership flipped mid-write; the drain may never see this copy.
		// Remove it (a no-op if the drain did pick it up) and re-route.
		cur.Remove(ref.ID)
	}
}

// Lookup resolves a location, falling back to the previous owner during
// a rebalance window (the registration may not have drained yet). The
// current owner is read first so a client never trades a fresh answer
// for the stale pre-drain copy; the double-read race that ordering opens
// (entry copied to the new owner after the first read, removed from the
// donor before the second) is closed by re-reading the current owner
// once — the drain registers at the destination before removing from the
// donor, so a miss on both means the copy was already at the destination
// before the re-read started.
func (s *Sharded) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	s.lookups.Add(1)
	var err error
	for attempt := 0; ; attempt++ {
		// Epoch sampled before the routing snapshot: a flip between snapshot
		// and read (which can route the lookup at a shard that donates the
		// entry before the read lands) is caught by the recheck below.
		epoch := s.ringEpoch.Load()
		cur, old := s.owner(id)
		if cur == nil {
			return naming.InterfaceRef{}, ErrNoShards
		}
		var ref naming.InterfaceRef
		ref, err = cur.Lookup(id)
		if err == nil {
			return ref, nil
		}
		if old != nil && errors.Is(err, ErrUnknown) {
			if ref, ferr := old.Lookup(id); ferr == nil {
				s.fallbacks.Add(1)
				return ref, nil
			}
			if ref, rerr := cur.Lookup(id); rerr == nil {
				s.fallbacks.Add(1)
				return ref, nil
			}
		}
		if s.ringEpoch.Load() == epoch || attempt >= 3 {
			break
		}
	}
	s.misses.Add(1)
	return naming.InterfaceRef{}, err
}

// Move relocates an interface. If the registration is still draining off
// the previous owner mid-rebalance, the move drags it to the current
// owner (epoch bumped past the old copy, so the late drain is fenced).
func (s *Sharded) Move(id naming.InterfaceID, to naming.Endpoint) (naming.InterfaceRef, error) {
	var err error
	for attempt := 0; ; attempt++ {
		epoch := s.ringEpoch.Load()
		cur, old := s.owner(id)
		if cur == nil {
			return naming.InterfaceRef{}, ErrNoShards
		}
		var ref naming.InterfaceRef
		ref, err = cur.Move(id, to)
		if err == nil {
			s.moves.Add(1)
			return ref, nil
		}
		if old != nil && errors.Is(err, ErrUnknown) {
			oldRef, lerr := old.Lookup(id)
			if lerr == nil {
				oldRef.Endpoint = to
				oldRef.Epoch++
				if rerr := cur.Register(oldRef); rerr == nil {
					old.Remove(id)
					s.moves.Add(1)
					return oldRef, nil
				}
			}
			// Same double-read race as Lookup: the drain may have landed the
			// entry on the current owner between the two reads.
			if ref, rerr := cur.Move(id, to); rerr == nil {
				s.moves.Add(1)
				return ref, nil
			}
		}
		if s.ringEpoch.Load() == epoch || attempt >= 3 {
			break
		}
	}
	return naming.InterfaceRef{}, err
}

// Remove deletes a registration from its owner (and, mid-rebalance, from
// the previous owner too — removing an unknown id is a no-op).
func (s *Sharded) Remove(id naming.InterfaceID) {
	cur, old := s.owner(id)
	if cur != nil {
		cur.Remove(id)
	}
	if old != nil {
		old.Remove(id)
	}
}

// Snapshot enumerates every shard that can enumerate itself.
func (s *Sharded) Snapshot() ([]naming.InterfaceRef, error) {
	s.mu.RLock()
	stores := make([]Store, 0, len(s.shards))
	for _, st := range s.shards {
		stores = append(stores, st)
	}
	s.mu.RUnlock()
	var out []naming.InterfaceRef
	for _, st := range stores {
		en, ok := st.(Enumerable)
		if !ok {
			return nil, fmt.Errorf("relocator: shard cannot enumerate")
		}
		refs, err := en.Snapshot()
		if err != nil {
			return nil, err
		}
		out = append(out, refs...)
	}
	return out, nil
}

// AddShard joins a shard to the ring and live-drains every registration
// whose ownership moved to it. Lookups keep flowing: until a moving
// registration drains, the previous owner answers the fallback read.
// Shards that cannot enumerate (no Enumerable) stay correct for new
// registrations but cannot donate existing ones; AddShard then reports
// an error after the ring has still been updated.
func (s *Sharded) AddShard(name string, store Store) error {
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()

	s.mu.Lock()
	if _, dup := s.shards[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("relocator: shard %q already present", name)
	}
	prev := s.ring
	next := s.ring.Clone()
	if err := next.Add(name); err != nil {
		s.mu.Unlock()
		return err
	}
	s.shards[name] = store
	s.prev = prev
	s.ring = next
	s.ringEpoch.Store(next.Epoch())
	donors := make(map[string]Store, len(s.shards))
	for n, st := range s.shards {
		if n != name {
			donors[n] = st
		}
	}
	s.mu.Unlock()

	err := s.drain(donors, next, prev)
	s.finishRebalance()
	return err
}

// RemoveShard drains a shard's registrations to their new owners, then
// drops it from the ring. The shard object itself is not closed.
func (s *Sharded) RemoveShard(name string) error {
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()

	s.mu.Lock()
	store, ok := s.shards[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("relocator: no shard %q", name)
	}
	if len(s.shards) == 1 {
		s.mu.Unlock()
		return fmt.Errorf("relocator: cannot remove last shard %q", name)
	}
	prev := s.ring
	next := s.ring.Clone()
	if err := next.Remove(name); err != nil {
		s.mu.Unlock()
		return err
	}
	// The ring flips now; the departing shard stays reachable through the
	// prev-ring fallback until its registrations drain.
	s.prev = prev
	s.ring = next
	s.ringEpoch.Store(next.Epoch())
	s.mu.Unlock()

	err := s.drain(map[string]Store{name: store}, next, prev)
	s.finishRebalance()

	s.mu.Lock()
	delete(s.shards, name)
	s.mu.Unlock()
	return err
}

// drain copies each donor's registrations whose owner changed between
// prev and next onto the new owner, then removes them from the donor.
// Register's epoch ordering makes the copy safe against concurrent
// client re-registrations: a newer epoch already at the destination
// refuses the older draining copy (ErrStale), which drain treats as
// success — the entry has simply moved on.
func (s *Sharded) drain(donors map[string]Store, next, prev *hashring.Ring) error {
	var firstErr error
	for donorName, donor := range donors {
		en, ok := donor.(Enumerable)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("relocator: shard %q cannot enumerate; its registrations were not migrated", donorName)
			}
			continue
		}
		refs, err := en.Snapshot()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("relocator: snapshotting shard %q: %w", donorName, err)
			}
			continue
		}
		for _, ref := range refs {
			key := ref.ID.String()
			newOwner := next.Owner(key)
			if newOwner == donorName && prev.Owner(key) == donorName {
				continue // not moving
			}
			s.mu.RLock()
			dst := s.shards[newOwner]
			s.mu.RUnlock()
			if dst == nil || dst == donor {
				continue
			}
			if err := dst.Register(ref); err != nil && !errors.Is(err, ErrStale) {
				if firstErr == nil {
					firstErr = fmt.Errorf("relocator: migrating %s to %s: %w", ref.ID, newOwner, err)
				}
				continue
			}
			donor.Remove(ref.ID)
			s.migrated.Add(1)
		}
	}
	return firstErr
}

func (s *Sharded) finishRebalance() {
	s.mu.Lock()
	s.prev = nil
	s.mu.Unlock()
	s.rebals.Add(1)
}

// Stats returns a snapshot of front-end counters.
func (s *Sharded) Stats() ShardedStats {
	return ShardedStats{
		Lookups:    s.lookups.Load(),
		Fallbacks:  s.fallbacks.Load(),
		Misses:     s.misses.Load(),
		Registers:  s.registers.Load(),
		Moves:      s.moves.Load(),
		Rebalances: s.rebals.Load(),
		Migrated:   s.migrated.Load(),
		RingEpoch:  s.ringEpoch.Load(),
	}
}
