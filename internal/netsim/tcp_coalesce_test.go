package netsim

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// startCoalescedPair returns a dialed coalescing connection and the
// server-side accepted connection.
func startCoalescedPair(t *testing.T) (client, server Conn) {
	t.Helper()
	tr := NewTCPWithConfig(TCPConfig{Coalesce: true})
	l, err := tr.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err = tr.Dial(context.Background(), l.Endpoint())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	server = <-accepted
	t.Cleanup(func() { server.Close() })
	return client, server
}

func TestTCPCoalesceDeliversAllFrames(t *testing.T) {
	client, server := startCoalescedPair(t)
	const senders = 4
	const frames = 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				if err := client.Send([]byte(fmt.Sprintf("s%d-f%d", s, i))); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if f, ok := client.(Flusher); !ok {
		t.Fatal("coalescing conn does not implement Flusher")
	} else if err := f.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := map[string]bool{}
	for i := 0; i < senders*frames; i++ {
		frame, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv after %d frames: %v", i, err)
		}
		got[string(frame)] = true
	}
	for s := 0; s < senders; s++ {
		for i := 0; i < frames; i++ {
			if !got[fmt.Sprintf("s%d-f%d", s, i)] {
				t.Fatalf("frame s%d-f%d never arrived", s, i)
			}
		}
	}
}

func TestTCPCoalesceFlushEmptyAndRepeated(t *testing.T) {
	client, _ := startCoalescedPair(t)
	f := client.(Flusher)
	for i := 0; i < 3; i++ {
		if err := f.Flush(); err != nil {
			t.Fatalf("Flush %d on idle conn: %v", i, err)
		}
	}
}

// TestTCPCoalesceCloseDrains checks that frames accepted before Close are
// written out: Close flushes, so the peer still receives them.
func TestTCPCoalesceCloseDrains(t *testing.T) {
	client, server := startCoalescedPair(t)
	const frames = 50
	for i := 0; i < frames; i++ {
		if err := client.Send([]byte(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < frames; i++ {
		frame, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv after %d of %d frames: %v", i, frames, err)
		}
		if want := fmt.Sprintf("f%d", i); string(frame) != want {
			t.Fatalf("frame %d = %q, want %q", i, frame, want)
		}
	}
	if _, err := server.Recv(); err != ErrClosed {
		t.Fatalf("Recv after close = %v, want ErrClosed", err)
	}
}

func TestTCPCoalesceSendAfterCloseFails(t *testing.T) {
	client, _ := startCoalescedPair(t)
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := client.Send([]byte("late")); err == nil {
		t.Fatal("Send after Close succeeded")
	}
	// Flush after close must not hang.
	if err := client.(Flusher).Flush(); err != nil && err != ErrClosed {
		t.Logf("Flush after close: %v", err) // any prompt return is fine
	}
}

func TestUncoalescedConnFlushIsNoop(t *testing.T) {
	tr := NewTCP()
	l, err := tr.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	go func() {
		if c, err := l.Accept(); err == nil {
			defer c.Close()
			_, _ = c.Recv()
		}
	}()
	conn, err := tr.Dial(context.Background(), l.Endpoint())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if err := conn.(Flusher).Flush(); err != nil {
		t.Fatalf("Flush on direct-write conn: %v", err)
	}
}
