// Package netsim provides the communications substrate beneath protocol
// objects: the "communications interface" at the bottom of Figure 4 of the
// tutorial.
//
// Two transports are provided. The simulated network (New) is an in-memory,
// deterministic network with configurable per-link latency, jitter, loss,
// duplication and partitions; it lets every experiment in EXPERIMENTS.md
// run on one machine while still exercising the failure modes that the
// distribution transparencies exist to mask. The TCP transport (NewTCP)
// carries the identical frame streams over real loopback sockets, as a
// check that nothing in the stack depends on the simulation.
//
// Frames are opaque byte slices; framing of values into frames is package
// wire's job, and interpretation is the protocol object's (package channel).
package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/naming"
)

// Transport error sentinels.
var (
	ErrClosed        = errors.New("netsim: closed")
	ErrNoSuchHost    = errors.New("netsim: no listener at endpoint")
	ErrUnknownScheme = errors.New("netsim: unknown endpoint scheme")
	// ErrBacklogFull reports that a listener's accept backlog stayed full
	// for the whole dial grace period — the server exists but is not
	// draining connections (e.g. a session storm). Distinct from a
	// partition (which hangs) and from ErrNoSuchHost (nothing listening).
	ErrBacklogFull = errors.New("netsim: accept backlog full")
)

// Conn is one bidirectional frame stream between two endpoints.
// Send and Recv are safe for concurrent use; Recv returns ErrClosed after
// Close (local or remote).
type Conn interface {
	// Send enqueues one frame for delivery to the peer. A nil error means
	// the frame was accepted by the local end, not that it will arrive:
	// lossy links may drop it silently, exactly like a datagram network.
	// The implementation must not retain frame after Send returns, so the
	// caller is free to reuse or recycle the buffer.
	Send(frame []byte) error
	// Recv blocks until a frame arrives or the connection closes. The
	// returned slice is owned by the caller, which may recycle it (e.g.
	// via wire.PutFrame) once no decoded view of it can escape.
	Recv() ([]byte, error)
	// Close tears down both directions.
	Close() error
	// RemoteEndpoint names the peer.
	RemoteEndpoint() naming.Endpoint
	// LocalEndpoint names this end.
	LocalEndpoint() naming.Endpoint
}

// Flusher is implemented by connections that coalesce small outbound
// frames (see TCPConfig.Coalesce). Flush blocks until every frame accepted
// by Send so far has been handed to the underlying transport, and returns
// any write error the background writer has encountered.
type Flusher interface {
	Flush() error
}

// BatchSender is implemented by connections that can transmit several
// frames in one underlying write (vectored I/O on the TCP transport). The
// frames are delivered in order, framed exactly as if each had been passed
// to Send individually — batching changes the syscall count, never the
// byte stream the peer observes. Like Send, implementations must not
// retain the slices after SendBatch returns, so callers may recycle the
// buffers immediately. Senders that batch (package channel's session
// sender) probe for this interface and fall back to per-frame Send when a
// transport does not provide it.
type BatchSender interface {
	SendBatch(frames [][]byte) error
}

// Listener accepts inbound connections at an endpoint.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Endpoint() naming.Endpoint
}

// Transport creates connections and listeners for one endpoint scheme.
type Transport interface {
	Dial(ctx context.Context, ep naming.Endpoint) (Conn, error)
	Listen(ep naming.Endpoint) (Listener, error)
}

// Registry routes Dial and Listen calls to the transport registered for
// the endpoint's scheme. A Registry is safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	transports map[string]Transport
}

// NewRegistry returns an empty transport registry.
func NewRegistry() *Registry {
	return &Registry{transports: make(map[string]Transport)}
}

// Register installs a transport for a scheme ("sim", "tcp", ...),
// replacing any previous registration.
func (r *Registry) Register(scheme string, t Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transports[scheme] = t
}

// ForScheme returns the transport registered for scheme.
func (r *Registry) ForScheme(scheme string) (Transport, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.transports[scheme]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}
	return t, nil
}

// Dial connects to ep using the transport matching its scheme.
func (r *Registry) Dial(ctx context.Context, ep naming.Endpoint) (Conn, error) {
	t, err := r.ForScheme(ep.Scheme())
	if err != nil {
		return nil, err
	}
	return t.Dial(ctx, ep)
}

// Listen opens a listener at ep using the transport matching its scheme.
func (r *Registry) Listen(ep naming.Endpoint) (Listener, error) {
	t, err := r.ForScheme(ep.Scheme())
	if err != nil {
		return nil, err
	}
	return t.Listen(ep)
}
