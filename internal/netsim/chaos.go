package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the chaos harness: a deterministic, scripted fault
// timeline played against a simulated network. The failure modes the
// distribution transparencies exist to mask (Section 7 of the tutorial)
// do not occur on demand in a healthy sim, so experiments inject them
// from a Script — node crashes and restarts, link flaps, partitions and
// heals, latency spikes, bandwidth squeezes — at fixed offsets on the
// harness clock. All randomness (wildcard host picks) comes from one
// seeded RNG, so the same seed and script always produce the same event
// log, byte for byte.

// FaultKind enumerates the scripted fault types.
type FaultKind int

// The fault vocabulary. Crash and Restart act on one host (A); the link
// faults act on the ordered-insensitive pair (A, B).
const (
	// FaultCrash kills host A: its listener is torn down (new dials fail
	// with ErrNoSuchHost), its established connections are severed, and
	// the harness's Crash hook runs for process-level teardown.
	FaultCrash FaultKind = iota
	// FaultRestart brings host A back via the harness's Restart hook,
	// which is expected to listen again and recover state (checkpoint
	// recovery, relocation — whatever the system under test provides).
	FaultRestart
	// FaultPartition splits hosts A and B (both directions).
	FaultPartition
	// FaultHeal removes the A–B partition.
	FaultHeal
	// FaultLink installs Profile on the A–B link — both directions, or
	// asymmetrically when Fault.Reverse is set: a latency spike, a lossy
	// patch, a slow-drip bandwidth squeeze.
	FaultLink
	// FaultLinkClear removes the explicit A–B profile, restoring the
	// network default.
	FaultLinkClear
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultLink:
		return "link"
	case FaultLinkClear:
		return "link-clear"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one injectable failure. Host "*" in A picks uniformly from
// the config's Hosts with the harness RNG — "crash any node"; a "*"
// restart revives the most recently crashed host, so crash/restart
// pairs stay matched. A host of the form "dom:<name>" expands to the
// members of that federated domain (ChaosConfig.Domains): a crash takes
// the whole domain down, a partition splits the two domains pairwise.
// The event log records the resolved names (wildcards pinned, domains
// kept symbolic).
type Fault struct {
	Kind    FaultKind
	A, B    string
	Profile LinkProfile // FaultLink only
	// Reverse, when set on a FaultLink, is the B→A profile while
	// Profile shapes A→B — an asymmetric WAN link. Nil keeps the link
	// symmetric (Profile both ways), the pre-WAN behaviour.
	Reverse *LinkProfile
}

// Schedule places one fault on the harness clock: At is the offset from
// the start of the run (Advance) or from Start's call time (real time).
type Schedule struct {
	At    time.Duration
	Fault Fault
}

// Script is a fault timeline. Order within equal offsets is preserved.
type Script []Schedule

// ChaosEvent records one applied fault: when the clock said it fired,
// the resolved host names (wildcards pinned), and any hook error.
type ChaosEvent struct {
	At   time.Duration
	Kind FaultKind
	A, B string
	Err  error
}

func (e ChaosEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=+%v %s %s", e.At, e.Kind, e.A)
	if e.B != "" {
		fmt.Fprintf(&b, "--%s", e.B)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, " err=%v", e.Err)
	}
	return b.String()
}

// ChaosConfig parameterises a harness.
type ChaosConfig struct {
	// Hosts are the candidates a wildcard ("*") fault picks from.
	Hosts []string
	// Seed drives all harness randomness; equal seeds and scripts give
	// byte-identical event logs.
	Seed int64
	// Domains names federated host sets: a fault addressed to
	// "dom:<name>" applies to every member (crashes/restarts) or to
	// every cross pair (partitions, heals, link faults). Unknown domain
	// names fall back to the literal host string.
	Domains map[string][]string
	// Crash, when set, runs after the transport-level CrashHost — the
	// place to stop the served objects of the host (close their server).
	Crash func(host string) error
	// Restart, when set, runs on FaultRestart — the place to re-listen
	// and recover state. The harness itself does nothing at the network
	// level: a restarted process simply calls Listen again.
	Restart func(host string) error
	// Log, when set, receives one rendered line per applied fault.
	Log func(string)
}

// Chaos plays a Script against a Network. Drive it either in step mode
// (Advance, a sim clock the caller owns) or in real time (Start/Stop).
type Chaos struct {
	net *Network
	cfg ChaosConfig

	mu          sync.Mutex
	script      Script // sorted stably by At
	rng         *rand.Rand
	next        int
	now         time.Duration
	events      []ChaosEvent
	lastCrashed string // target of the most recent crash, for "*" restarts

	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool
}

// NewChaos builds a harness for the network. The script is copied and
// stably sorted by offset, so equal-time faults apply in listed order.
func NewChaos(n *Network, cfg ChaosConfig, script Script) *Chaos {
	s := make(Script, len(script))
	copy(s, script)
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return &Chaos{
		net:    n,
		cfg:    cfg,
		script: s,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Advance moves the harness clock to offset `to`, applying every fault
// scheduled at or before it (in order), and returns how many fired. The
// clock never moves backwards; a smaller `to` is a no-op.
func (c *Chaos) Advance(to time.Duration) int {
	c.mu.Lock()
	if to > c.now {
		c.now = to
	}
	var due []Schedule
	for c.next < len(c.script) && c.script[c.next].At <= c.now {
		due = append(due, c.script[c.next])
		c.next++
	}
	c.mu.Unlock()
	for _, s := range due {
		c.apply(s)
	}
	return len(due)
}

// Done reports whether every scheduled fault has been applied.
func (c *Chaos) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next >= len(c.script)
}

// Events returns the applied-fault log in application order.
func (c *Chaos) Events() []ChaosEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ChaosEvent, len(c.events))
	copy(out, c.events)
	return out
}

// Timeline renders the event log one line per fault — the byte-identical
// artifact the determinism property checks.
func (c *Chaos) Timeline() string {
	var b strings.Builder
	for _, e := range c.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Start plays the script in real time, measuring offsets from the call.
// It returns immediately; Stop (or script exhaustion) ends the run.
func (c *Chaos) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.stopCh = make(chan struct{})
	c.doneCh = make(chan struct{})
	stop, done := c.stopCh, c.doneCh
	c.mu.Unlock()
	go c.run(stop, done)
}

// Stop halts a real-time run and waits for its goroutine to exit.
// Pending faults stay pending; Advance can still flush them.
func (c *Chaos) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	stop, done := c.stopCh, c.doneCh
	c.mu.Unlock()
	close(stop)
	<-done
}

func (c *Chaos) run(stop, done chan struct{}) {
	defer close(done)
	start := time.Now()
	for {
		c.mu.Lock()
		if c.next >= len(c.script) {
			c.mu.Unlock()
			return
		}
		at := c.script[c.next].At
		c.mu.Unlock()
		if wait := at - time.Since(start); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return
			}
		}
		c.Advance(at)
	}
}

// apply resolves wildcards and domains, injects the fault, and logs the
// event.
func (c *Chaos) apply(s Schedule) {
	f := s.Fault
	a := c.resolveHost(f.Kind, f.A)
	ev := ChaosEvent{At: s.At, Kind: f.Kind, A: a, B: f.B}
	as := c.expandDomain(a)
	bs := c.expandDomain(f.B)
	firstErr := func(err error) {
		if err != nil && ev.Err == nil {
			ev.Err = err
		}
	}
	switch f.Kind {
	case FaultCrash:
		c.mu.Lock()
		c.lastCrashed = as[len(as)-1]
		c.mu.Unlock()
		for _, h := range as {
			c.net.CrashHost(h)
			if c.cfg.Crash != nil {
				firstErr(c.cfg.Crash(h))
			}
		}
	case FaultRestart:
		if c.cfg.Restart != nil {
			for _, h := range as {
				firstErr(c.cfg.Restart(h))
			}
		}
	case FaultPartition:
		c.net.PartitionHosts(as, bs)
	case FaultHeal:
		c.net.HealHosts(as, bs)
	case FaultLink:
		rev := f.Profile
		if f.Reverse != nil {
			rev = *f.Reverse
		}
		c.net.SetLinkHosts(as, bs, f.Profile, rev)
	case FaultLinkClear:
		c.net.ClearLinkHosts(as, bs)
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
	if c.cfg.Log != nil {
		c.cfg.Log(ev.String())
	}
}

// domainPrefix marks a fault host as a federated-domain reference.
const domainPrefix = "dom:"

// expandDomain resolves "dom:<name>" to the domain's member hosts; any
// other string (including an unknown domain) is itself the single host.
func (c *Chaos) expandDomain(h string) []string {
	if strings.HasPrefix(h, domainPrefix) {
		if hosts := c.cfg.Domains[h[len(domainPrefix):]]; len(hosts) > 0 {
			return hosts
		}
	}
	return []string{h}
}

// resolveHost pins a wildcard to a concrete host with the seeded RNG.
// A "*" restart revives the most recently crashed host rather than a
// random one, so crash/restart pairs in a script stay matched.
func (c *Chaos) resolveHost(kind FaultKind, h string) string {
	if h != "*" {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if kind == FaultRestart && c.lastCrashed != "" {
		return c.lastCrashed
	}
	if len(c.cfg.Hosts) == 0 {
		return h
	}
	return c.cfg.Hosts[c.rng.Intn(len(c.cfg.Hosts))]
}
