package netsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAcceptBacklogOverflow(t *testing.T) {
	// A listener that never accepts absorbs exactly the configured backlog;
	// the next dial fails with the distinct ErrBacklogFull instead of
	// hanging silently.
	n := New(1)
	n.SetAcceptBacklog(2)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 2; i++ {
		conn, err := n.Dial(context.Background(), "sim://server")
		if err != nil {
			t.Fatalf("dial %d within backlog: %v", i, err)
		}
		defer conn.Close()
	}
	start := time.Now()
	_, err = n.Dial(context.Background(), "sim://server")
	if !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("overflow dial = %v, want ErrBacklogFull", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("overflow dial took %v, should fail after the short grace", time.Since(start))
	}
}

func TestAcceptBacklogDrainWithinGrace(t *testing.T) {
	// A dial that finds the backlog full still succeeds if the listener
	// drains within the grace period — the error is for stuck servers, not
	// momentary bursts.
	n := New(1)
	n.SetAcceptBacklog(1)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	second, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatalf("dial during momentary burst = %v, want success once the backlog drains", err)
	}
	second.Close()
}

func TestAcceptBacklogDialCtxCancel(t *testing.T) {
	// A caller-side deadline shorter than the grace still wins: the dial
	// returns the context error, not ErrBacklogFull.
	n := New(1)
	n.SetAcceptBacklog(1)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = n.Dial(ctx, "sim://server")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled dial = %v, want DeadlineExceeded", err)
	}
}
