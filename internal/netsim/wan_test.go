package netsim

import (
	"math"
	"testing"
	"time"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestComposeProfiles(t *testing.T) {
	got := Compose(
		LinkProfile{Latency: time.Millisecond, Jitter: 100 * time.Microsecond, DropRate: 0.1, Bandwidth: 1 << 20},
		LinkProfile{Latency: 30 * time.Millisecond, Jitter: 3 * time.Millisecond, DropRate: 0.2, DupRate: 0.5},
		LinkProfile{Latency: time.Millisecond, Bandwidth: 1 << 16},
	)
	if got.Latency != 32*time.Millisecond {
		t.Fatalf("latency = %v, want 32ms", got.Latency)
	}
	if got.Jitter != 3100*time.Microsecond {
		t.Fatalf("jitter = %v, want 3.1ms", got.Jitter)
	}
	// Survival across segments: (1-0.1)(1-0.2)(1-0) = 0.72 ⇒ drop 0.28.
	if !near(got.DropRate, 0.28) {
		t.Fatalf("drop = %v, want 0.28", got.DropRate)
	}
	if !near(got.DupRate, 0.5) {
		t.Fatalf("dup = %v, want 0.5", got.DupRate)
	}
	if got.Bandwidth != 1<<16 {
		t.Fatalf("bandwidth = %d, want tightest segment (%d)", got.Bandwidth, 1<<16)
	}
	if z := Compose(); z != (LinkProfile{}) {
		t.Fatalf("empty composition = %+v, want zero profile", z)
	}
}

func TestScaleProfile(t *testing.T) {
	p := LinkProfile{Latency: 80 * time.Millisecond, Jitter: 8 * time.Millisecond, DropRate: 0.005, Bandwidth: 42}
	s := Scale(p, 0.25)
	if s.Latency != 20*time.Millisecond || s.Jitter != 2*time.Millisecond {
		t.Fatalf("scaled delays = %v/%v, want 20ms/2ms", s.Latency, s.Jitter)
	}
	if s.DropRate != p.DropRate || s.Bandwidth != p.Bandwidth {
		t.Fatal("Scale must not touch loss or bandwidth")
	}
}

func TestSetLinkHostsAsymmetric(t *testing.T) {
	n := New(1)
	fwd := LinkProfile{Latency: 40 * time.Millisecond}
	rev := LinkProfile{Latency: 10 * time.Millisecond}
	n.SetLinkHosts([]string{"w1", "w2"}, []string{"e1", "w2"}, fwd, rev)
	for _, a := range []string{"w1", "w2"} {
		if got := n.linkFor(a, "e1"); got != fwd {
			t.Fatalf("%s→e1 = %+v, want forward", a, got)
		}
		if got := n.linkFor("e1", a); got != rev {
			t.Fatalf("e1→%s = %+v, want reverse", a, got)
		}
	}
	// The overlapping name must be skipped, not self-linked.
	if got := n.linkFor("w2", "w2"); got != (LinkProfile{}) {
		t.Fatalf("self link installed: %+v", got)
	}
	n.ClearLinkHosts([]string{"w1", "w2"}, []string{"e1", "w2"})
	if got := n.linkFor("w1", "e1"); got != (LinkProfile{}) {
		t.Fatalf("link survives clear: %+v", got)
	}
}

// TestChaosDomainFaults: "dom:<name>" faults fan out across the domain's
// members — a crash takes every member, a partition splits the domains
// pairwise, and an asymmetric FaultLink installs Profile/Reverse per
// direction.
func TestChaosDomainFaults(t *testing.T) {
	n := New(1)
	var crashed, restarted []string
	c := NewChaos(n, ChaosConfig{
		Domains: map[string][]string{
			"west": {"w1", "w2"},
			"east": {"e1"},
		},
		Crash:   func(h string) error { crashed = append(crashed, h); return nil },
		Restart: func(h string) error { restarted = append(restarted, h); return nil },
	}, Script{
		{At: 0, Fault: Fault{Kind: FaultLink, A: "dom:west", B: "dom:east",
			Profile: LinkProfile{Latency: 80 * time.Millisecond},
			Reverse: &LinkProfile{Latency: 20 * time.Millisecond}}},
		{At: time.Millisecond, Fault: Fault{Kind: FaultPartition, A: "dom:west", B: "dom:east"}},
		{At: 2 * time.Millisecond, Fault: Fault{Kind: FaultHeal, A: "dom:west", B: "dom:east"}},
		{At: 3 * time.Millisecond, Fault: Fault{Kind: FaultLinkClear, A: "dom:west", B: "dom:east"}},
		{At: 4 * time.Millisecond, Fault: Fault{Kind: FaultCrash, A: "dom:west"}},
		{At: 5 * time.Millisecond, Fault: Fault{Kind: FaultRestart, A: "*"}},
		{At: 6 * time.Millisecond, Fault: Fault{Kind: FaultCrash, A: "dom:nosuch"}},
	})

	c.Advance(time.Millisecond / 2)
	for _, w := range []string{"w1", "w2"} {
		if got := n.linkFor(w, "e1"); got.Latency != 80*time.Millisecond {
			t.Fatalf("%s→e1 latency = %v, want 80ms", w, got.Latency)
		}
		if got := n.linkFor("e1", w); got.Latency != 20*time.Millisecond {
			t.Fatalf("e1→%s latency = %v, want 20ms (Reverse)", w, got.Latency)
		}
	}

	c.Advance(time.Millisecond)
	if !n.partitioned("w1", "e1") || !n.partitioned("w2", "e1") {
		t.Fatal("domain partition incomplete")
	}
	if n.partitioned("w1", "w2") {
		t.Fatal("intra-domain pair partitioned")
	}

	c.Advance(3 * time.Millisecond)
	if n.partitioned("w1", "e1") || n.partitioned("w2", "e1") {
		t.Fatal("domain heal incomplete")
	}
	if got := n.linkFor("w1", "e1"); got != (LinkProfile{}) {
		t.Fatalf("domain link-clear incomplete: %+v", got)
	}

	c.Advance(4 * time.Millisecond)
	if len(crashed) != 2 || crashed[0] != "w1" || crashed[1] != "w2" {
		t.Fatalf("crashed = %v, want [w1 w2]", crashed)
	}

	// A "*" restart revives the most recently crashed host — the last
	// domain member.
	c.Advance(5 * time.Millisecond)
	if len(restarted) != 1 || restarted[0] != "w2" {
		t.Fatalf("restarted = %v, want [w2]", restarted)
	}

	// An unknown domain name falls back to the literal host string.
	c.Advance(time.Second)
	if crashed[len(crashed)-1] != "dom:nosuch" {
		t.Fatalf("unknown domain crash target = %q", crashed[len(crashed)-1])
	}
	if !c.Done() {
		t.Fatal("script not exhausted")
	}
}
