package netsim

import (
	"context"
	"testing"
	"time"
)

func TestDefaultLinkProfileApplies(t *testing.T) {
	n := New(7)
	n.SetDefaultLink(LinkProfile{DropRate: 1.0})
	startEcho(t, n, "sim://server")
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		if err := conn.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := n.Stats(); st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3 (default profile)", st.Dropped)
	}
	// Explicit per-link profiles override the default (both directions,
	// since the echo reply crosses the reverse link).
	n.SetLink("client", "server", LinkProfile{})
	n.SetLink("server", "client", LinkProfile{})
	if err := conn.Send([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if got, err := conn.Recv(); err != nil || string(got) != "y" {
		t.Errorf("override echo = %q, %v", got, err)
	}
}

func TestFromTransportView(t *testing.T) {
	n := New(7)
	startEcho(t, n, "sim://server")
	view := n.From("alpha")
	// Listen through the view lands on the shared network.
	l, err := view.Listen("sim://alpha-svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Dial through the view attributes traffic to "alpha": partition it.
	n.Partition("alpha", "server")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := view.Dial(ctx, "sim://server"); err == nil {
		t.Error("dial across partition should time out")
	}
	n.Heal("alpha", "server")
	conn, err := view.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.LocalEndpoint() != "sim://alpha" {
		t.Errorf("local endpoint = %q", conn.LocalEndpoint())
	}
}

func TestBandwidthDelaysLargeFrames(t *testing.T) {
	n := New(7)
	// 1 MB/s: a 10 KB frame should take ~10ms.
	n.SetLink("client", "server", LinkProfile{Bandwidth: 1 << 20})
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted
	start := time.Now()
	if err := conn.Send(make([]byte, 10<<10)); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("10KB over 1MB/s took %v, want >= ~10ms", elapsed)
	}
}

func TestErrorMessages(t *testing.T) {
	n := New(1)
	l, err := n.Listen("sim://x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, err = n.Listen("sim://x")
	if err == nil || err.Error() != "netsim: address in use: x" {
		t.Errorf("addr-in-use = %v", err)
	}
	_, err = n.Dial(context.Background(), "sim://ghost")
	if err == nil || err.Error() != "netsim: no listener at endpoint: ghost" {
		t.Errorf("no-listener = %v", err)
	}
}

func TestDeliverAfterCloseDropped(t *testing.T) {
	// A delayed frame arriving after the receiver closed is counted as
	// dropped, not delivered.
	n := New(7)
	n.SetLink("client", "server", LinkProfile{Latency: 20 * time.Millisecond})
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	if err := conn.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	server.Close() // closes both ends before the 20ms delivery fires
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n.Stats().Dropped >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("stats = %+v, want the late frame dropped", n.Stats())
}
