package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/naming"
)

// startEcho listens at ep on the network and echoes every frame back on
// each accepted connection until the listener closes.
func startEcho(t *testing.T, n *Network, ep naming.Endpoint) Listener {
	t.Helper()
	l, err := n.Listen(ep)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					f, err := conn.Recv()
					if err != nil {
						return
					}
					if err := conn.Send(f); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l
}

func TestSimEcho(t *testing.T) {
	n := New(1)
	startEcho(t, n, "sim://server")
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("frame-%d", i))
		if err := conn.Send(msg); err != nil {
			t.Fatalf("Send: %v", err)
		}
		got, err := conn.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if string(got) != string(msg) {
			t.Errorf("echo = %q, want %q", got, msg)
		}
	}
	st := n.Stats()
	if st.Sent != 20 || st.Delivered != 20 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSimEndpoints(t *testing.T) {
	n := New(1)
	l := startEcho(t, n, "sim://server")
	if l.Endpoint() != "sim://server" {
		t.Errorf("listener endpoint = %q", l.Endpoint())
	}
	conn, err := n.DialFrom(context.Background(), "alpha", "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.RemoteEndpoint() != "sim://server" {
		t.Errorf("remote = %q", conn.RemoteEndpoint())
	}
	if conn.LocalEndpoint() != "sim://alpha" {
		t.Errorf("local = %q", conn.LocalEndpoint())
	}
}

func TestSimDialNoListener(t *testing.T) {
	n := New(1)
	_, err := n.Dial(context.Background(), "sim://ghost")
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, ErrNoSuchHost) {
		t.Errorf("error %v should be ErrNoSuchHost", err)
	}
}

func TestSimListenTwice(t *testing.T) {
	n := New(1)
	startEcho(t, n, "sim://server")
	if _, err := n.Listen("sim://server"); err == nil {
		t.Error("second Listen at same endpoint should fail")
	}
}

func TestSimListenerCloseFreesEndpoint(t *testing.T) {
	n := New(1)
	l, err := n.Listen("sim://x")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	l2, err := n.Listen("sim://x")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	l2.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("Accept after close = %v", err)
	}
}

func TestSimConnClose(t *testing.T) {
	n := New(1)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serverConns := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			serverConns <- c
		}
	}()
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	server := <-serverConns
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v", err)
	}
	if _, err := conn.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after close = %v", err)
	}
	// The peer side must observe the close too.
	if _, err := server.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("peer Recv after close = %v", err)
	}
}

func TestSimDropRate(t *testing.T) {
	n := New(42)
	n.SetLink("client", "server", LinkProfile{DropRate: 1.0})
	startEcho(t, n, "sim://server")
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		if err := conn.Send([]byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Dropped != 5 || st.Delivered != 0 {
		t.Errorf("stats = %+v, want 5 dropped / 0 delivered", st)
	}
}

func TestSimDuplication(t *testing.T) {
	n := New(7)
	n.SetLink("client", "server", LinkProfile{DupRate: 1.0, Latency: time.Microsecond})
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted
	if err := conn.Send([]byte("once")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if string(got) != "once" {
			t.Errorf("Recv %d = %q", i, got)
		}
	}
}

func TestSimLatencyOrdering(t *testing.T) {
	// Even with jitter, frames on one direction arrive in FIFO order.
	n := New(3)
	n.SetLink("client", "server", LinkProfile{Latency: time.Millisecond, Jitter: 2 * time.Millisecond})
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted
	const k = 20
	start := time.Now()
	for i := 0; i < k; i++ {
		if err := conn.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("frame %d arrived out of order: %d", i, got[0])
		}
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestSimPartition(t *testing.T) {
	n := New(5)
	startEcho(t, n, "sim://server")
	conn, err := n.DialFrom(context.Background(), "alpha", "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Sanity: traffic flows before the partition.
	if err := conn.Send([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}

	n.Partition("alpha", "server")
	if err := conn.Send([]byte("during")); err != nil {
		t.Fatal(err) // black-holed, not an error
	}
	if got := n.Stats().Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	// New connections across the partition hang until the context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := n.DialFrom(ctx, "alpha", "sim://server"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("dial across partition = %v", err)
	}

	n.Heal("alpha", "server")
	if err := conn.Send([]byte("post")); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv()
	if err != nil || string(got) != "post" {
		t.Errorf("after heal: %q, %v", got, err)
	}
}

func TestSimDialContextCancelled(t *testing.T) {
	n := New(1)
	l, err := n.Listen("sim://busy")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fill the accept backlog so Dial blocks, then cancel.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	for i := 0; i < 64; i++ {
		if _, err := n.Dial(ctx, "sim://busy"); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("unexpected dial error: %v", err)
			}
			return // backlog filled and the context expired: expected
		}
	}
	t.Fatal("backlog never filled")
}

func TestSimConcurrentSenders(t *testing.T) {
	n := New(9)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	server := <-accepted

	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := conn.Send([]byte("m")); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < senders*per; i++ {
		if _, err := server.Recv(); err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	n := New(1)
	r.Register("sim", n)
	startEcho(t, n, "sim://server")
	conn, err := r.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if got, err := conn.Recv(); err != nil || string(got) != "hi" {
		t.Errorf("echo via registry = %q, %v", got, err)
	}
	if _, err := r.Dial(context.Background(), "quic://x"); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("unknown scheme dial = %v", err)
	}
	if _, err := r.Listen("quic://x"); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("unknown scheme listen = %v", err)
	}
	if _, err := r.ForScheme("sim"); err != nil {
		t.Errorf("ForScheme(sim) = %v", err)
	}
	if l, err := r.Listen("sim://other"); err != nil {
		t.Errorf("Listen via registry: %v", err)
	} else {
		l.Close()
	}
}
