package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

func chaosScript() Script {
	return Script{
		{At: 10 * time.Millisecond, Fault: Fault{Kind: FaultCrash, A: "*"}},
		{At: 20 * time.Millisecond, Fault: Fault{Kind: FaultPartition, A: "n1", B: "n2"}},
		{At: 30 * time.Millisecond, Fault: Fault{Kind: FaultLink, A: "n1", B: "n3",
			Profile: LinkProfile{Latency: 5 * time.Millisecond}}},
		{At: 40 * time.Millisecond, Fault: Fault{Kind: FaultRestart, A: "*"}},
		{At: 50 * time.Millisecond, Fault: Fault{Kind: FaultHeal, A: "n1", B: "n2"}},
		{At: 50 * time.Millisecond, Fault: Fault{Kind: FaultLinkClear, A: "n1", B: "n3"}},
		{At: 60 * time.Millisecond, Fault: Fault{Kind: FaultCrash, A: "*"}},
	}
}

// TestChaosDeterminism: same seed + same script ⇒ byte-identical event
// timeline, including every wildcard host pick.
func TestChaosDeterminism(t *testing.T) {
	run := func() string {
		c := NewChaos(New(1), ChaosConfig{
			Hosts: []string{"n1", "n2", "n3", "n4"},
			Seed:  42,
		}, chaosScript())
		// Step the clock in uneven increments; only the fault offsets
		// should matter.
		for _, at := range []time.Duration{5 * time.Millisecond, 33 * time.Millisecond, time.Second} {
			c.Advance(at)
		}
		if !c.Done() {
			t.Fatal("script not exhausted")
		}
		return c.Timeline()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("timelines differ:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty timeline")
	}
	// A different seed picks different wildcard hosts (with 4 hosts and 3
	// wildcard faults, collision of the whole log is vanishingly unlikely).
	c := NewChaos(New(1), ChaosConfig{Hosts: []string{"n1", "n2", "n3", "n4"}, Seed: 1234}, chaosScript())
	c.Advance(time.Second)
	if c.Timeline() == a {
		t.Fatal("different seed produced an identical timeline")
	}
}

// TestChaosWildcardRestartMatchesCrash: a "*" restart revives the host
// the preceding "*" crash killed.
func TestChaosWildcardRestartMatchesCrash(t *testing.T) {
	var crashed, restarted []string
	c := NewChaos(New(1), ChaosConfig{
		Hosts:   []string{"a", "b", "c"},
		Seed:    7,
		Crash:   func(h string) error { crashed = append(crashed, h); return nil },
		Restart: func(h string) error { restarted = append(restarted, h); return nil },
	}, Script{
		{At: 0, Fault: Fault{Kind: FaultCrash, A: "*"}},
		{At: time.Millisecond, Fault: Fault{Kind: FaultRestart, A: "*"}},
	})
	c.Advance(time.Second)
	if len(crashed) != 1 || len(restarted) != 1 || crashed[0] != restarted[0] {
		t.Fatalf("crash=%v restart=%v, want matched pair", crashed, restarted)
	}
}

// TestCrashHostSeversAndFreesAddress: a crash closes the listener and
// the host's established connections, and the address is immediately
// reusable; closing the stale listener handle afterwards must not tear
// down the new listener.
func TestCrashHostSeversAndFreesAddress(t *testing.T) {
	n := New(1)
	old, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := old.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	<-accepted

	n.CrashHost("server")
	if _, err := conn.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv on severed conn = %v, want ErrClosed", err)
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on severed conn = %v, want ErrClosed", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, err := n.Dial(ctx, "sim://server"); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("dial to crashed host = %v, want ErrNoSuchHost", err)
	}
	cancel()

	// Restart: the address is free again.
	fresh, err := n.Listen("sim://server")
	if err != nil {
		t.Fatalf("re-listen after crash: %v", err)
	}
	// A stale Close of the pre-crash handle must not evict the fresh one.
	old.Close()
	go func() {
		c, err := fresh.Accept()
		if err == nil {
			c.Close()
		}
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	c2, err := n.Dial(ctx2, "sim://server")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	c2.Close()
	fresh.Close()
	if _, err := n.Listen("sim://server"); err != nil {
		t.Fatalf("listen after full teardown: %v", err)
	}
}

// TestDelayedConnNoGoroutineLeak: closing a connection whose link has a
// latency profile releases its delivery goroutine even mid-sleep.
func TestDelayedConnNoGoroutineLeak(t *testing.T) {
	n := New(1)
	n.SetLink("client", "server", LinkProfile{Latency: 10 * time.Second})
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c
		}
	}()
	before := leakcheck.Now()
	for i := 0; i < 8; i++ {
		conn, err := n.Dial(context.Background(), "sim://server")
		if err != nil {
			t.Fatal(err)
		}
		// Force the delayed path to spin up its delivery goroutine, then
		// close with the 10s sleep still pending.
		if err := conn.Send([]byte("stuck")); err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	leakcheck.Check(t, before, 1, 2*time.Second)
}

// TestChaosRealTimeRun: the wall-clock driver applies the script and
// Stop is safe both mid-run and after exhaustion.
func TestChaosRealTimeRun(t *testing.T) {
	n := New(1)
	c := NewChaos(n, ChaosConfig{}, Script{
		{At: 5 * time.Millisecond, Fault: Fault{Kind: FaultPartition, A: "x", B: "y"}},
		{At: 15 * time.Millisecond, Fault: Fault{Kind: FaultHeal, A: "x", B: "y"}},
	})
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for !c.Done() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if !c.Done() {
		t.Fatalf("script incomplete: %s", c.Timeline())
	}
	if n.partitioned("x", "y") {
		t.Fatal("partition not healed")
	}
	evs := c.Events()
	if len(evs) != 2 || evs[0].Kind != FaultPartition || evs[1].Kind != FaultHeal {
		t.Fatalf("events = %v", evs)
	}
}
