package netsim

import (
	"context"
	"errors"
	"testing"
)

func TestTCPEcho(t *testing.T) {
	tr := NewTCP()
	l, err := tr.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	if l.Endpoint().Scheme() != "tcp" {
		t.Errorf("endpoint = %q", l.Endpoint())
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			f, err := conn.Recv()
			if err != nil {
				return
			}
			if err := conn.Send(f); err != nil {
				return
			}
		}
	}()

	conn, err := tr.Dial(context.Background(), l.Endpoint())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if conn.RemoteEndpoint() != l.Endpoint() {
		t.Errorf("remote = %q, want %q", conn.RemoteEndpoint(), l.Endpoint())
	}
	if conn.LocalEndpoint().Scheme() != "tcp" {
		t.Errorf("local = %q", conn.LocalEndpoint())
	}
	payloads := [][]byte{
		[]byte("hello"),
		{},
		make([]byte, 100_000), // larger than one segment
	}
	for _, p := range payloads {
		if err := conn.Send(p); err != nil {
			t.Fatalf("Send: %v", err)
		}
		got, err := conn.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if len(got) != len(p) {
			t.Errorf("echo len = %d, want %d", len(got), len(p))
		}
	}
}

func TestTCPDialFailure(t *testing.T) {
	tr := NewTCP()
	// Port 1 on localhost is almost certainly closed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.Dial(ctx, "tcp://127.0.0.1:1"); err == nil {
		t.Error("expected dial failure")
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	tr := NewTCP()
	l, err := tr.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Close()
	}()
	conn, err := tr.Dial(context.Background(), l.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after peer close = %v, want ErrClosed", err)
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	tr := NewTCP()
	l, err := tr.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Recv() //nolint:errcheck // draining only
	}()
	conn, err := tr.Dial(context.Background(), l.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized Send should fail")
	}
}
