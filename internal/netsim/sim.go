package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/mgmt"
	"repro/internal/naming"
)

// LinkProfile describes the behaviour of one direction of a simulated link.
// The zero profile is a perfect link: instantaneous, lossless, exactly-once.
type LinkProfile struct {
	Latency   time.Duration // fixed one-way delay
	Jitter    time.Duration // uniform random extra delay in [0, Jitter)
	DropRate  float64       // probability a frame is silently lost
	DupRate   float64       // probability a frame is delivered twice
	Bandwidth int           // bytes per second; 0 = infinite
}

func (p LinkProfile) perfect() bool {
	return p.Latency == 0 && p.Jitter == 0 && p.DropRate == 0 && p.DupRate == 0 && p.Bandwidth == 0
}

// Stats counts frames at the network level. Partitioned counts the
// subset of drops caused specifically by a partition, so an operator can
// tell loss from isolation.
type Stats struct {
	Sent        uint64
	Delivered   uint64
	Dropped     uint64
	Partitioned uint64
}

// Network is an in-memory simulated network. Endpoints have the form
// "sim://<host>". Behaviour between each ordered host pair is controlled by
// a LinkProfile (default: the network-wide default profile, itself a
// perfect link unless changed). Partitions block all delivery between two
// hosts until healed. All randomness comes from the seed passed to New, so
// runs are reproducible.
type Network struct {
	mu         sync.Mutex
	rng        *rand.Rand
	listeners  map[string]*simListener
	links      map[[2]string]LinkProfile
	partitions map[[2]string]bool
	conns      map[*simConn]struct{} // client ends of established connections
	defaultLP  LinkProfile
	backlog    int // accept backlog per listener; 0 means defaultBacklog

	sent           atomic.Uint64
	delivered      atomic.Uint64
	dropped        atomic.Uint64
	partitionDrops atomic.Uint64

	insp atomic.Pointer[mgmt.NetInstruments]
}

// Instrument mirrors the network's frame counters into a management
// bundle. Safe to call at any time; nil detaches.
func (n *Network) Instrument(ins *mgmt.NetInstruments) {
	n.insp.Store(ins)
}

func (n *Network) countSent() {
	n.sent.Add(1)
	if ins := n.insp.Load(); ins != nil {
		ins.Sent.Inc()
	}
}

func (n *Network) countDelivered() {
	n.delivered.Add(1)
	if ins := n.insp.Load(); ins != nil {
		ins.Delivered.Inc()
	}
}

func (n *Network) countDropped(partition bool) {
	n.dropped.Add(1)
	if partition {
		n.partitionDrops.Add(1)
	}
	if ins := n.insp.Load(); ins != nil {
		ins.Dropped.Inc()
		if partition {
			ins.Partitioned.Inc()
		}
	}
}

var _ Transport = (*Network)(nil)

// New returns a simulated network seeded for reproducible loss and jitter.
func New(seed int64) *Network {
	return &Network{
		rng:        rand.New(rand.NewSource(seed)),
		listeners:  make(map[string]*simListener),
		links:      make(map[[2]string]LinkProfile),
		partitions: make(map[[2]string]bool),
		conns:      make(map[*simConn]struct{}),
	}
}

// defaultBacklog is the accept backlog per listener when
// SetAcceptBacklog has not been called — small, like a socket's.
const defaultBacklog = 16

// dialGrace bounds how long a dial waits on a full accept backlog before
// failing with ErrBacklogFull. A server that is merely busy usually
// drains within this; one that has stopped accepting fails the dial
// distinctly instead of hanging it forever.
const dialGrace = 500 * time.Millisecond

// SetAcceptBacklog sets the accept backlog used by listeners opened after
// the call (minimum 1; 0 restores the default of 16). Dials that find the
// backlog full wait a bounded grace period and then fail with
// ErrBacklogFull rather than hanging.
func (n *Network) SetAcceptBacklog(size int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if size < 0 {
		size = 0
	}
	n.backlog = size
}

// SetDefaultLink sets the profile used for host pairs without an explicit
// SetLink.
func (n *Network) SetDefaultLink(p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultLP = p
}

// SetLink sets the profile for frames flowing from host a to host b.
func (n *Network) SetLink(a, b string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{a, b}] = p
}

// ClearLink removes any explicit profile between hosts a and b (both
// directions), restoring the network-wide default. Chaos scripts use it to
// end a latency spike or bandwidth squeeze.
func (n *Network) ClearLink(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, [2]string{a, b})
	delete(n.links, [2]string{b, a})
}

// CrashHost fails a node at the transport level: its listener (if any) is
// closed — subsequent dials fail with ErrNoSuchHost — and every
// established connection with an end at the host is severed, exactly as a
// process crash drops its sockets. The host's link profiles and
// partitions are untouched; a restarted process simply listens again.
func (n *Network) CrashHost(host string) {
	n.mu.Lock()
	l := n.listeners[host]
	var victims []*simConn
	for c := range n.conns {
		if c.local.Address() == host || c.remote.Address() == host {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range victims {
		c.Close()
	}
}

func (n *Network) untrack(c *simConn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Partition blocks all traffic between hosts a and b (both directions).
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[[2]string{a, b}] = true
	n.partitions[[2]string{b, a}] = true
}

// Heal removes a partition between hosts a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, [2]string{a, b})
	delete(n.partitions, [2]string{b, a})
}

// Stats returns a snapshot of network-wide frame counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:        n.sent.Load(),
		Delivered:   n.delivered.Load(),
		Dropped:     n.dropped.Load(),
		Partitioned: n.partitionDrops.Load(),
	}
}

func (n *Network) linkFor(a, b string) LinkProfile {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.links[[2]string{a, b}]; ok {
		return p
	}
	return n.defaultLP
}

func (n *Network) partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitions[[2]string{a, b}]
}

// From returns a view of the network whose Dial calls originate at the
// given host name, so per-link profiles and partitions apply. Engineering
// nodes use this so that all their traffic is attributed to the node.
func (n *Network) From(host string) Transport {
	return fromTransport{net: n, host: host}
}

type fromTransport struct {
	net  *Network
	host string
}

func (f fromTransport) Dial(ctx context.Context, ep naming.Endpoint) (Conn, error) {
	return f.net.DialFrom(ctx, f.host, ep)
}

func (f fromTransport) Listen(ep naming.Endpoint) (Listener, error) {
	return f.net.Listen(ep)
}

// Listen opens a listener at ep ("sim://host"). One listener per host.
func (n *Network) Listen(ep naming.Endpoint) (Listener, error) {
	host := ep.Address()
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[host]; exists {
		return nil, &addrInUseError{host}
	}
	size := n.backlog
	if size <= 0 {
		size = defaultBacklog
	}
	l := &simListener{
		net:     n,
		ep:      ep,
		backlog: make(chan *simConn, size),
		done:    make(chan struct{}),
	}
	n.listeners[host] = l
	return l, nil
}

type addrInUseError struct{ host string }

func (e *addrInUseError) Error() string { return "netsim: address in use: " + e.host }

// Dial connects to the listener at ep. The local host name is synthesised
// from the dialling goroutine; for link-profile purposes the connection's
// client side is named by DialFrom if used, else "client".
func (n *Network) Dial(ctx context.Context, ep naming.Endpoint) (Conn, error) {
	return n.DialFrom(ctx, "client", ep)
}

// DialFrom connects to ep with an explicit local host name, so per-link
// profiles and partitions apply to the connection.
func (n *Network) DialFrom(ctx context.Context, fromHost string, ep naming.Endpoint) (Conn, error) {
	host := ep.Address()
	n.mu.Lock()
	l, ok := n.listeners[host]
	n.mu.Unlock()
	if !ok {
		return nil, &hostError{host}
	}
	if n.partitioned(fromHost, host) {
		// Connection attempts across a partition hang until the context
		// gives up, like SYNs into a black hole.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	client := newSimConn(n, naming.Endpoint("sim://"+fromHost), ep)
	server := newSimConn(n, ep, naming.Endpoint("sim://"+fromHost))
	client.peer, server.peer = server, client
	select {
	case l.backlog <- server:
		return n.track(client), nil
	case <-l.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	default:
	}
	// Backlog full: wait a bounded grace for the server to drain it, then
	// fail distinctly instead of hanging the dialler forever.
	grace := time.NewTimer(dialGrace)
	defer grace.Stop()
	select {
	case l.backlog <- server:
		return n.track(client), nil
	case <-l.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-grace.C:
		return nil, fmt.Errorf("%w: %s", ErrBacklogFull, ep)
	}
}

// track registers the client end of an established connection so
// CrashHost can sever it; Close untracks.
func (n *Network) track(c *simConn) *simConn {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
	return c
}

type hostError struct{ host string }

func (e *hostError) Error() string { return "netsim: no listener at endpoint: " + e.host }
func (e *hostError) Is(target error) bool {
	return target == ErrNoSuchHost
}

type simListener struct {
	net     *Network
	ep      naming.Endpoint
	backlog chan *simConn
	done    chan struct{}
	once    sync.Once
}

func (l *simListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *simListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		// Only deregister if the slot still holds this listener: after a
		// crash/restart cycle the address may belong to a fresh listener,
		// which a stale handle's Close must not tear down.
		if l.net.listeners[l.ep.Address()] == l {
			delete(l.net.listeners, l.ep.Address())
		}
		l.net.mu.Unlock()
	})
	return nil
}

func (l *simListener) Endpoint() naming.Endpoint { return l.ep }

// simConn is one end of a simulated connection. Each direction applies the
// sender→receiver link profile. Delivery order is FIFO per direction (like
// a stream transport) even under jitter: frames pass through a single
// delivery goroutine when the link is imperfect.
type simConn struct {
	net    *Network
	local  naming.Endpoint
	remote naming.Endpoint
	peer   *simConn

	mu     sync.Mutex
	queue  [][]byte
	notify chan struct{} // capacity 1: wake one waiting Recv
	closed bool
	done   chan struct{} // closed with the conn; stops the delivery goroutine

	sendQ    chan []byte // delayed-path queue, created lazily
	sendOnce sync.Once
}

func newSimConn(n *Network, local, remote naming.Endpoint) *simConn {
	return &simConn{
		net:    n,
		local:  local,
		remote: remote,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

func (c *simConn) LocalEndpoint() naming.Endpoint  { return c.local }
func (c *simConn) RemoteEndpoint() naming.Endpoint { return c.remote }

func (c *simConn) Send(frame []byte) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	n := c.net
	n.countSent()
	if n.partitioned(c.local.Address(), c.remote.Address()) {
		n.countDropped(true)
		return nil // black hole
	}
	p := n.linkFor(c.local.Address(), c.remote.Address())
	if p.perfect() {
		// Fast path: copy into a pooled buffer. The receiver owns the
		// frame returned by Recv and may recycle it (package channel puts
		// frames back after decoding), closing the loop: the buffer a
		// client encoded into last call is the one the sim copies into
		// this call.
		c.peer.deliver(append(bufpool.Get(len(frame)), frame...))
		return nil
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	// Imperfect link: apply loss/duplication now (seeded RNG), delay in the
	// per-direction delivery goroutine to preserve FIFO order.
	n.mu.Lock()
	drop := n.rng.Float64() < p.DropRate
	dup := n.rng.Float64() < p.DupRate
	var jitter time.Duration
	if p.Jitter > 0 {
		jitter = time.Duration(n.rng.Int63n(int64(p.Jitter)))
	}
	n.mu.Unlock()
	if drop {
		n.countDropped(false)
		return nil
	}
	delay := p.Latency + jitter
	if p.Bandwidth > 0 {
		delay += time.Duration(float64(len(cp)) / float64(p.Bandwidth) * float64(time.Second))
	}
	c.sendOnce.Do(func() {
		c.sendQ = make(chan []byte, 1024) // bounded in-flight window for the delayed path
		go c.deliveryLoop()
	})
	deliverOnce := func(b []byte) {
		env := append(delayEnvelope{}, delayHeader(delay)...)
		env = append(env, b...)
		select {
		case c.sendQ <- env:
		default:
			// Window full: a real link would also drop under overload.
			n.countDropped(false)
		}
	}
	deliverOnce(cp)
	if dup {
		cp2 := make([]byte, len(cp))
		copy(cp2, cp)
		deliverOnce(cp2)
	}
	return nil
}

// delayEnvelope prefixes a frame with its delivery delay so the single
// delivery goroutine can sleep the right amount while preserving order.
type delayEnvelope = []byte

func delayHeader(d time.Duration) []byte {
	u := uint64(d)
	return []byte{
		byte(u >> 56), byte(u >> 48), byte(u >> 40), byte(u >> 32),
		byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u),
	}
}

func parseDelayHeader(b []byte) (time.Duration, []byte) {
	u := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return time.Duration(u), b[8:]
}

func (c *simConn) deliveryLoop() {
	for {
		var held bool
		select {
		case env := <-c.sendQ:
			delay, frame := parseDelayHeader(env)
			if delay > 0 {
				// Interruptible sleep: a closed conn must release this
				// goroutine even mid-latency-spike, or every flapped link
				// leaks one.
				t := time.NewTimer(delay)
				select {
				case <-t.C:
				case <-c.done:
					t.Stop()
					held = true
				}
			}
			if !held {
				c.peer.deliver(frame)
				continue
			}
		case <-c.done:
		}
		// Conn closed: the held frame and anything still queued will never
		// arrive — count them dropped so the stats balance.
		if held {
			c.net.countDropped(false)
		}
		for {
			select {
			case <-c.sendQ:
				c.net.countDropped(false)
			default:
				return
			}
		}
	}
}

func (c *simConn) deliver(frame []byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.net.countDropped(false)
		return
	}
	c.queue = append(c.queue, frame)
	c.mu.Unlock()
	c.net.countDelivered()
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

func (c *simConn) Recv() ([]byte, error) {
	for {
		c.mu.Lock()
		if len(c.queue) > 0 {
			frame := c.queue[0]
			c.queue = c.queue[1:]
			more := len(c.queue) > 0
			c.mu.Unlock()
			if more {
				// Pass the wakeup on: another Recv may be waiting for a
				// frame whose notify signal coalesced with ours.
				c.signal()
			}
			return frame, nil
		}
		if c.closed {
			c.mu.Unlock()
			c.signal() // wake any other blocked Recv so it too sees the close
			return nil, ErrClosed
		}
		c.mu.Unlock()
		<-c.notify
	}
}

func (c *simConn) signal() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

func (c *simConn) Close() error {
	c.closeOneSide()
	if c.peer != nil {
		c.peer.closeOneSide()
	}
	return nil
}

func (c *simConn) closeOneSide() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	c.net.untrack(c)
	select {
	case c.notify <- struct{}{}:
	default:
	}
}
