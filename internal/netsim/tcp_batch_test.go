package netsim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// startPair returns a dialed client connection and the server-side
// accepted connection for the given TCP config.
func startPair(t *testing.T, cfg TCPConfig) (client, server Conn) {
	t.Helper()
	tr := NewTCPWithConfig(cfg)
	l, err := tr.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err = tr.Dial(context.Background(), l.Endpoint())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	server = <-accepted
	t.Cleanup(func() { server.Close() })
	return client, server
}

// testFrames builds a deterministic set of frames with sizes spanning
// tiny (1 byte) to larger than the read buffer, so batches cross every
// interesting boundary.
func testFrames(n int) [][]byte {
	rng := rand.New(rand.NewSource(42))
	frames := make([][]byte, n)
	for i := range frames {
		var size int
		switch i % 5 {
		case 0:
			size = 1
		case 1:
			size = 1 + rng.Intn(64)
		case 2:
			size = 1 + rng.Intn(4096)
		case 3:
			size = 32 << 10 // half the 64KB read buffer
		default:
			size = 80 << 10 // larger than the read buffer
		}
		f := make([]byte, size)
		rng.Read(f)
		frames[i] = f
	}
	return frames
}

func sameFrames(t *testing.T, label string, want, got [][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: received %d frames, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("%s: frame %d differs (len %d vs %d)", label, i, len(want[i]), len(got[i]))
		}
	}
}

// TestBatchBoundariesPreserveFrameSequence is the batching property test:
// however the sender carves the same logical frame sequence into batches
// — one frame per Send, SendBatch with every partition width, or the
// coalescing writer choosing its own boundaries — the receiver observes
// the byte-identical ordered frame sequence. Batching may only change
// syscall count, never the stream.
func TestBatchBoundariesPreserveFrameSequence(t *testing.T) {
	frames := testFrames(40)

	// Baseline: one Send per frame on the plain transport.
	client, server := startPair(t, TCPConfig{})
	done := make(chan [][]byte, 1)
	go func() { done <- recvHelper(t, server, len(frames)) }()
	for _, f := range frames {
		if err := client.Send(f); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	baseline := <-done
	sameFrames(t, "per-frame", frames, baseline)

	// SendBatch with several partition widths, including a width of 1
	// (degenerate batch) and one batch holding everything.
	for _, width := range []int{1, 2, 3, 7, len(frames)} {
		client, server := startPair(t, TCPConfig{})
		done := make(chan [][]byte, 1)
		go func() { done <- recvHelper(t, server, len(frames)) }()
		bs, ok := client.(BatchSender)
		if !ok {
			t.Fatal("tcp conn does not implement BatchSender")
		}
		for i := 0; i < len(frames); i += width {
			end := i + width
			if end > len(frames) {
				end = len(frames)
			}
			if err := bs.SendBatch(frames[i:end]); err != nil {
				t.Fatalf("SendBatch width=%d: %v", width, err)
			}
		}
		sameFrames(t, fmt.Sprintf("batch width %d", width), frames, <-done)
	}

	// Coalescing writer: the background goroutine picks its own batch
	// boundaries depending on scheduling; the sequence must still match.
	client, server = startPair(t, TCPConfig{Coalesce: true})
	done = make(chan [][]byte, 1)
	go func() { done <- recvHelper(t, server, len(frames)) }()
	for _, f := range frames {
		if err := client.Send(f); err != nil {
			t.Fatalf("coalesced Send: %v", err)
		}
	}
	if err := client.(Flusher).Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sameFrames(t, "coalesced", frames, <-done)
}

// TestSendBatchEmptyAndOversize pins the edge cases: an empty batch is a
// no-op and an oversized frame is rejected before any byte departs.
func TestSendBatchEmptyAndOversize(t *testing.T) {
	client, server := startPair(t, TCPConfig{})
	bs := client.(BatchSender)
	if err := bs.SendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	huge := make([]byte, maxFrame+1)
	if err := bs.SendBatch([][]byte{{1}, huge}); err == nil {
		t.Fatal("oversized frame in batch accepted")
	}
	// The connection is still usable and the rejected batch sent nothing.
	if err := client.Send([]byte("after")); err != nil {
		t.Fatalf("Send after rejected batch: %v", err)
	}
	f, err := server.Recv()
	if err != nil || string(f) != "after" {
		t.Fatalf("Recv = %q, %v; want \"after\"", f, err)
	}
}

// recvHelper is recvAll without t.Helper fatalities racing the sender
// goroutine: it reports failures through the returned slice length.
func recvHelper(t *testing.T, conn Conn, n int) [][]byte {
	got := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		f, err := conn.Recv()
		if err != nil {
			t.Errorf("Recv %d: %v", i, err)
			return got
		}
		got = append(got, append([]byte(nil), f...))
	}
	return got
}
