package netsim

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/naming"
)

// maxFrame bounds a single TCP frame; larger length prefixes indicate
// corruption or a hostile peer.
const maxFrame = 64 << 20

// TCPConfig configures the TCP transport.
type TCPConfig struct {
	// Coalesce enables Nagle-style batching of small outbound frames:
	// Send appends to a pending buffer that a background writer drains
	// into single large socket writes, flushing whenever the socket is
	// idle (so an isolated frame still departs immediately — there is no
	// fixed delay timer). Callers needing a hard barrier use the Flusher
	// interface. Coalescing trades per-frame syscalls for a copy and is
	// worthwhile when many goroutines share one connection. It exists
	// only on the TCP transport; the simulated transport stays
	// synchronous so experiment runs remain deterministic.
	Coalesce bool
}

// TCP is the real-network transport: frames travel length-prefixed over
// TCP connections. Endpoints have the form "tcp://host:port".
type TCP struct {
	cfg TCPConfig
}

var _ Transport = TCP{}

// NewTCP returns the TCP transport with default (uncoalesced) writes.
func NewTCP() TCP { return TCP{} }

// NewTCPWithConfig returns a TCP transport with explicit configuration.
func NewTCPWithConfig(cfg TCPConfig) TCP { return TCP{cfg: cfg} }

// Dial connects to a TCP endpoint.
func (t TCP) Dial(ctx context.Context, ep naming.Endpoint) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", ep.Address())
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", ep, err)
	}
	return newTCPConn(nc, ep, t.cfg), nil
}

// Listen opens a TCP listener. The address "tcp://127.0.0.1:0" asks the
// kernel for a free port; Listener.Endpoint reports the bound address.
func (t TCP) Listen(ep naming.Endpoint) (Listener, error) {
	nl, err := net.Listen("tcp", ep.Address())
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %s: %w", ep, err)
	}
	return &tcpListener{nl: nl, cfg: t.cfg}, nil
}

type tcpListener struct {
	nl  net.Listener
	cfg TCPConfig
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("netsim: accept: %w", err)
	}
	return newTCPConn(nc, naming.Endpoint("tcp://"+nc.RemoteAddr().String()), l.cfg), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }

func (l *tcpListener) Endpoint() naming.Endpoint {
	return naming.Endpoint("tcp://" + l.nl.Addr().String())
}

type tcpConn struct {
	nc       net.Conn
	remote   naming.Endpoint
	coalesce bool

	readMu sync.Mutex
	// br buffers reads (guarded by readMu): when the peer batches frames
	// into one segment (SendBatch/Coalesce), the whole batch is pulled
	// into the buffer with one read syscall instead of two per frame —
	// the receive-side complement of the vectored write.
	br      *bufio.Reader
	writeMu sync.Mutex
	lenBuf  [4]byte // guarded by writeMu (direct-write path)

	// Coalescing state, guarded by writeMu. Send appends length-prefixed
	// frames to pend; the writer goroutine swaps pend for spare and writes
	// the whole batch in one syscall, so frames queued while a write is in
	// flight depart together — flush-on-idle batching with no delay timer.
	cond    *sync.Cond // signals writers + Flush waiters; tied to writeMu
	pend    []byte
	spare   []byte
	writing bool
	werr    error
	closed  bool
	kick    chan struct{}

	// Vectored-write scratch, guarded by writeMu (direct path only): the
	// iovec slice handed to net.Buffers and the backing store for the
	// per-frame length prefixes, both reused across batches.
	vecScratch net.Buffers
	lenScratch []byte
}

var (
	_ Conn        = (*tcpConn)(nil)
	_ Flusher     = (*tcpConn)(nil)
	_ BatchSender = (*tcpConn)(nil)
)

func newTCPConn(nc net.Conn, remote naming.Endpoint, cfg TCPConfig) *tcpConn {
	c := &tcpConn{nc: nc, remote: remote, coalesce: cfg.Coalesce, br: bufio.NewReaderSize(nc, 64<<10)}
	if c.coalesce {
		c.cond = sync.NewCond(&c.writeMu)
		c.kick = make(chan struct{}, 1)
		go c.writerLoop()
	}
	return c
}

func (c *tcpConn) Send(frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("netsim: frame of %d bytes exceeds limit", len(frame))
	}
	if c.coalesce {
		return c.sendCoalesced(frame)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	binary.BigEndian.PutUint32(c.lenBuf[:], uint32(len(frame)))
	if _, err := c.nc.Write(c.lenBuf[:]); err != nil {
		return fmt.Errorf("netsim: write length: %w", err)
	}
	if _, err := c.nc.Write(frame); err != nil {
		return fmt.Errorf("netsim: write frame: %w", err)
	}
	return nil
}

// SendBatch implements BatchSender: the frames depart in order as one
// vectored write (writev via net.Buffers), each length-prefixed exactly as
// Send would have framed it. Under Coalesce the batch is appended to the
// pending buffer in one critical section and the background writer drains
// it, so a batch still costs one wakeup rather than one per frame.
func (c *tcpConn) SendBatch(frames [][]byte) error {
	for _, f := range frames {
		if len(f) > maxFrame {
			return fmt.Errorf("netsim: frame of %d bytes exceeds limit", len(f))
		}
	}
	if len(frames) == 0 {
		return nil
	}
	if c.coalesce {
		c.writeMu.Lock()
		if c.werr != nil {
			err := c.werr
			c.writeMu.Unlock()
			return err
		}
		if c.closed {
			c.writeMu.Unlock()
			return ErrClosed
		}
		for _, f := range frames {
			c.pend = binary.BigEndian.AppendUint32(c.pend, uint32(len(f)))
			c.pend = append(c.pend, f...)
		}
		select {
		case c.kick <- struct{}{}:
		default:
		}
		c.writeMu.Unlock()
		return nil
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// The length prefixes live in one reused scratch buffer; it must not
	// reallocate mid-loop or the already-taken sub-slices would go stale.
	if cap(c.lenScratch) < 4*len(frames) {
		c.lenScratch = make([]byte, 0, 4*len(frames))
	}
	c.lenScratch = c.lenScratch[:0]
	c.vecScratch = c.vecScratch[:0]
	for _, f := range frames {
		off := len(c.lenScratch)
		c.lenScratch = binary.BigEndian.AppendUint32(c.lenScratch, uint32(len(f)))
		c.vecScratch = append(c.vecScratch, c.lenScratch[off:off+4], f)
	}
	bufs := c.vecScratch
	_, err := bufs.WriteTo(c.nc)
	// WriteTo consumes the slice; drop the frame references so the scratch
	// does not pin recycled buffers until the next batch.
	clear(c.vecScratch)
	if err != nil {
		return fmt.Errorf("netsim: write batch: %w", err)
	}
	return nil
}

func (c *tcpConn) sendCoalesced(frame []byte) error {
	c.writeMu.Lock()
	if c.werr != nil {
		err := c.werr
		c.writeMu.Unlock()
		return err
	}
	if c.closed {
		c.writeMu.Unlock()
		return ErrClosed
	}
	c.pend = binary.BigEndian.AppendUint32(c.pend, uint32(len(frame)))
	c.pend = append(c.pend, frame...)
	// Kick under the lock: Close also closes the channel under it, so a
	// send on a closed channel is impossible.
	select {
	case c.kick <- struct{}{}:
	default: // writer already has a wakeup pending
	}
	c.writeMu.Unlock()
	return nil
}

func (c *tcpConn) writerLoop() {
	for range c.kick {
		for {
			c.writeMu.Lock()
			if len(c.pend) == 0 || c.werr != nil {
				c.writing = false
				c.cond.Broadcast() // idle: wake Flush waiters
				c.writeMu.Unlock()
				break
			}
			batch := c.pend
			c.pend = c.spare[:0]
			c.spare = nil
			c.writing = true
			c.writeMu.Unlock()

			_, err := c.nc.Write(batch)

			c.writeMu.Lock()
			c.spare = batch[:0]
			if err != nil && c.werr == nil {
				c.werr = fmt.Errorf("netsim: write batch: %w", err)
			}
			c.writeMu.Unlock()
		}
	}
}

// Flush implements Flusher: it blocks until every accepted frame has been
// written to the socket, returning the writer's sticky error if any.
func (c *tcpConn) Flush() error {
	if !c.coalesce {
		return nil
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for (len(c.pend) > 0 || c.writing) && c.werr == nil && !c.closed {
		c.cond.Wait()
	}
	return c.werr
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("netsim: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netsim: frame of %d bytes exceeds limit", n)
	}
	frame := bufpool.Get(int(n))[:n]
	if _, err := io.ReadFull(c.br, frame); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("netsim: read frame: %w", err)
	}
	return frame, nil
}

func (c *tcpConn) Close() error {
	if c.coalesce {
		_ = c.Flush() // drain accepted frames before tearing the socket down
		c.writeMu.Lock()
		if !c.closed {
			c.closed = true
			close(c.kick)
			c.cond.Broadcast()
		}
		c.writeMu.Unlock()
	}
	return c.nc.Close()
}

func (c *tcpConn) RemoteEndpoint() naming.Endpoint { return c.remote }

func (c *tcpConn) LocalEndpoint() naming.Endpoint {
	return naming.Endpoint("tcp://" + c.nc.LocalAddr().String())
}
