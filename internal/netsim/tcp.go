package netsim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/naming"
)

// maxFrame bounds a single TCP frame; larger length prefixes indicate
// corruption or a hostile peer.
const maxFrame = 64 << 20

// TCP is the real-network transport: frames travel length-prefixed over
// TCP connections. Endpoints have the form "tcp://host:port".
type TCP struct{}

var _ Transport = TCP{}

// NewTCP returns the TCP transport.
func NewTCP() TCP { return TCP{} }

// Dial connects to a TCP endpoint.
func (TCP) Dial(ctx context.Context, ep naming.Endpoint) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", ep.Address())
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", ep, err)
	}
	return newTCPConn(nc, ep), nil
}

// Listen opens a TCP listener. The address "tcp://127.0.0.1:0" asks the
// kernel for a free port; Listener.Endpoint reports the bound address.
func (TCP) Listen(ep naming.Endpoint) (Listener, error) {
	nl, err := net.Listen("tcp", ep.Address())
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %s: %w", ep, err)
	}
	return &tcpListener{nl: nl}, nil
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("netsim: accept: %w", err)
	}
	return newTCPConn(nc, naming.Endpoint("tcp://"+nc.RemoteAddr().String())), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }

func (l *tcpListener) Endpoint() naming.Endpoint {
	return naming.Endpoint("tcp://" + l.nl.Addr().String())
}

type tcpConn struct {
	nc     net.Conn
	remote naming.Endpoint

	readMu  sync.Mutex
	writeMu sync.Mutex
	lenBuf  [4]byte // guarded by writeMu
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(nc net.Conn, remote naming.Endpoint) *tcpConn {
	return &tcpConn{nc: nc, remote: remote}
}

func (c *tcpConn) Send(frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("netsim: frame of %d bytes exceeds limit", len(frame))
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	binary.BigEndian.PutUint32(c.lenBuf[:], uint32(len(frame)))
	if _, err := c.nc.Write(c.lenBuf[:]); err != nil {
		return fmt.Errorf("netsim: write length: %w", err)
	}
	if _, err := c.nc.Write(frame); err != nil {
		return fmt.Errorf("netsim: write frame: %w", err)
	}
	return nil
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.nc, lenBuf[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("netsim: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netsim: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(c.nc, frame); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("netsim: read frame: %w", err)
	}
	return frame, nil
}

func (c *tcpConn) Close() error { return c.nc.Close() }

func (c *tcpConn) RemoteEndpoint() naming.Endpoint { return c.remote }

func (c *tcpConn) LocalEndpoint() naming.Endpoint {
	return naming.Endpoint("tcp://" + c.nc.LocalAddr().String())
}
