package netsim

import "time"

// This file adds the WAN vocabulary: composable link profiles and
// host-set (federated-domain) operations. A wide-area path is a series
// of segments — access link, metro ring, long-haul — and its profile is
// the composition of theirs; Compose builds it. Domains name host sets
// so a chaos script can partition or degrade "everything west of the
// ocean" in one fault (see ChaosConfig.Domains), and SetLinkHosts /
// PartitionHosts / HealHosts / ClearLinkHosts apply pairwise operations
// between two sets directly.

// Compose stacks link profiles as path segments traversed in series:
// latencies and jitters add, loss combines as 1-∏(1-pᵢ) (a frame
// survives only if every segment delivers it), duplication combines the
// same way, and the tightest finite bandwidth wins.
func Compose(segments ...LinkProfile) LinkProfile {
	var out LinkProfile
	survive := 1.0
	unique := 1.0
	for _, s := range segments {
		out.Latency += s.Latency
		out.Jitter += s.Jitter
		survive *= 1 - s.DropRate
		unique *= 1 - s.DupRate
		if s.Bandwidth > 0 && (out.Bandwidth == 0 || s.Bandwidth < out.Bandwidth) {
			out.Bandwidth = s.Bandwidth
		}
	}
	out.DropRate = 1 - survive
	out.DupRate = 1 - unique
	return out
}

// Scale multiplies a profile's delays by f (loss, duplication and
// bandwidth are untouched: a CI-shrunk WAN is faster, not cleaner).
// Experiments use it to run one nominal WAN topology at full scale or
// shrunk to smoke-test time.
func Scale(p LinkProfile, f float64) LinkProfile {
	p.Latency = time.Duration(float64(p.Latency) * f)
	p.Jitter = time.Duration(float64(p.Jitter) * f)
	return p
}

// Nominal WAN segment profiles. They are building blocks for Compose
// and Scale, not measurements: round numbers in the right regimes.
var (
	// WANMetro is a same-metro hop: ~1ms, tight jitter, clean.
	WANMetro = LinkProfile{Latency: time.Millisecond, Jitter: 200 * time.Microsecond}
	// WANContinental is a cross-continent hop: ~30ms with a little loss.
	WANContinental = LinkProfile{Latency: 30 * time.Millisecond, Jitter: 3 * time.Millisecond, DropRate: 0.001}
	// WANIntercontinental is an ocean crossing: ~80ms, jittery, lossier.
	WANIntercontinental = LinkProfile{Latency: 80 * time.Millisecond, Jitter: 8 * time.Millisecond, DropRate: 0.005}
)

// SetLinkHosts installs forward on every a→b link and reverse on every
// b→a link for a ∈ as, b ∈ bs — an asymmetric inter-domain path (set
// reverse = forward for a symmetric one). Pairs with equal host names
// are skipped.
func (n *Network) SetLinkHosts(as, bs []string, forward, reverse LinkProfile) {
	for _, a := range as {
		for _, b := range bs {
			if a == b {
				continue
			}
			n.SetLink(a, b, forward)
			n.SetLink(b, a, reverse)
		}
	}
}

// ClearLinkHosts removes the explicit profiles between the two sets.
func (n *Network) ClearLinkHosts(as, bs []string) {
	for _, a := range as {
		for _, b := range bs {
			if a == b {
				continue
			}
			n.ClearLink(a, b)
		}
	}
}

// PartitionHosts splits every a–b pair across the two sets.
func (n *Network) PartitionHosts(as, bs []string) {
	for _, a := range as {
		for _, b := range bs {
			if a == b {
				continue
			}
			n.Partition(a, b)
		}
	}
}

// HealHosts removes every a–b partition across the two sets.
func (n *Network) HealHosts(as, bs []string) {
	for _, a := range as {
		for _, b := range bs {
			if a == b {
				continue
			}
			n.Heal(a, b)
		}
	}
}
