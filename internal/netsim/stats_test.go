package netsim

import (
	"context"
	"sync"
	"testing"

	"repro/internal/mgmt"
)

// TestStatsUnderContention sends frames from many goroutines while a
// reader polls Stats: frame counters are atomics, so concurrent reads
// are safe and the final tallies exact (run with -race).
func TestStatsUnderContention(t *testing.T) {
	n := New(11)
	startEcho(t, n, "sim://server")
	conn, err := n.DialFrom(context.Background(), "alpha", "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const workers, per = 4, 25
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				n.Stats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := conn.Send([]byte("m")); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
				if _, err := conn.Recv(); err != nil {
					t.Errorf("Recv: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)

	st := n.Stats()
	// Each round trip is two sends (request + echo), all delivered.
	want := uint64(2 * workers * per)
	if st.Sent != want || st.Delivered != want || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want sent=delivered=%d dropped=0", st, want)
	}
}

// TestPartitionDropsCounted: frames black-holed by a partition are
// tallied separately from stochastic drops, and mirror into the
// management instruments when attached.
func TestPartitionDropsCounted(t *testing.T) {
	n := New(3)
	m := mgmt.New()
	n.Instrument(m.Net("sim"))
	startEcho(t, n, "sim://server")
	conn, err := n.DialFrom(context.Background(), "alpha", "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	n.Partition("alpha", "server")
	for i := 0; i < 3; i++ {
		if err := conn.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Partitioned != 3 || st.Dropped != 3 {
		t.Fatalf("stats = %+v, want 3 partitioned drops", st)
	}
	ins := m.Net("sim")
	if ins.Dropped.Load() != 3 || ins.Partitioned.Load() != 3 {
		t.Fatalf("instruments dropped=%d partitioned=%d, want 3/3",
			ins.Dropped.Load(), ins.Partitioned.Load())
	}
}
