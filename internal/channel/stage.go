package channel

import (
	"sync"
	"sync/atomic"

	"repro/internal/naming"
	"repro/internal/wire"
)

// Direction distinguishes messages leaving this channel end from messages
// arriving at it.
type Direction int

// The two stage directions.
const (
	Outbound Direction = iota + 1
	Inbound
)

// String returns the lower-case name of the direction.
func (d Direction) String() string {
	if d == Outbound {
		return "outbound"
	}
	return "inbound"
}

// Stage is one configurable component of a channel end — a stub (when it
// uses application knowledge such as operation names) or a binder (when it
// only manages the binding). Stages may mutate the message; returning an
// error aborts the interaction. Return a *StageError to control the
// infrastructure code reported to the peer.
//
// Stages must be safe for concurrent use: one stage instance serves every
// interaction on its channel end.
type Stage interface {
	Name() string
	Process(dir Direction, m *wire.Message) error
}

// Locator resolves an interface's current location; it is the channel's
// window onto the relocator function. *relocator.Relocator implements it.
type Locator interface {
	Lookup(id naming.InterfaceID) (naming.InterfaceRef, error)
}

// LocationInvalidator is the optional Locator capability a caching
// locator exposes (*relocator.Cache implements it): drop the cached
// location for an interface. Bindings call it on staleness evidence — a
// server answering "no such interface", a dead endpoint — before
// re-resolving, so the refresh reaches the authority instead of
// re-reading the same stale cache line.
type LocationInvalidator interface {
	Invalidate(id naming.InterfaceID)
}

// ---------------------------------------------------------------------------
// Built-in stages

// AuditEntry is one record emitted by an AuditStage.
type AuditEntry struct {
	Direction   Direction
	Kind        wire.MsgKind
	Target      naming.InterfaceID
	Operation   string
	Termination string
	Seq         uint64
}

// AuditStage is the tutorial's example of a stub: "maintaining a log of
// operations for an audit trail" requires knowledge of application
// semantics (operation names), which is exactly what distinguishes a stub
// from a binder. Records are delivered to the Sink callback.
type AuditStage struct {
	Sink func(AuditEntry)
}

var _ Stage = (*AuditStage)(nil)

// Name identifies the stage.
func (*AuditStage) Name() string { return "audit-stub" }

// Process records the interaction and passes it through unchanged.
func (s *AuditStage) Process(dir Direction, m *wire.Message) error {
	if s.Sink != nil {
		s.Sink(AuditEntry{
			Direction:   dir,
			Kind:        m.Kind,
			Target:      m.Target,
			Operation:   m.Operation,
			Termination: m.Termination,
			Seq:         m.Seq,
		})
	}
	return nil
}

// MemoryAudit is a Sink that retains entries in memory for tests and the
// audit repository function.
type MemoryAudit struct {
	mu      sync.Mutex
	entries []AuditEntry
}

// Record appends an entry; pass it as the AuditStage Sink.
func (a *MemoryAudit) Record(e AuditEntry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = append(a.entries, e)
}

// Entries returns a copy of the recorded entries.
func (a *MemoryAudit) Entries() []AuditEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditEntry, len(a.entries))
	copy(out, a.entries)
	return out
}

// CountingStage counts messages through the pipeline; used by benchmarks
// to model a minimal stage and by tests to observe pipeline traversal.
type CountingStage struct {
	Label   string
	OutMsgs atomic.Uint64
	InMsgs  atomic.Uint64
}

var _ Stage = (*CountingStage)(nil)

// Name identifies the stage.
func (s *CountingStage) Name() string { return s.Label }

// Process counts the message and passes it through unchanged.
func (s *CountingStage) Process(dir Direction, m *wire.Message) error {
	if dir == Outbound {
		s.OutMsgs.Add(1)
	} else {
		s.InMsgs.Add(1)
	}
	return nil
}

// runStages applies each stage in order for outbound messages and in
// reverse order for inbound ones, mirroring how a layered channel is
// traversed in each direction.
func runStages(stages []Stage, dir Direction, m *wire.Message) error {
	if dir == Outbound {
		for _, s := range stages {
			if err := s.Process(dir, m); err != nil {
				return err
			}
		}
		return nil
	}
	for i := len(stages) - 1; i >= 0; i-- {
		if err := stages[i].Process(dir, m); err != nil {
			return err
		}
	}
	return nil
}
