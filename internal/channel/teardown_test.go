package channel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/values"
)

// gateConn is a stub connection whose writes wedge: Send blocks until the
// test releases the gate (and then succeeds), so frames accepted by the
// send queue stay stranded there — in flight or pending — for as long as
// the test wants. Recv blocks until Close, then fails, which is how the
// session's read loop observes teardown.
type gateConn struct {
	gate      chan struct{} // closed by the test to let writes through
	dead      chan struct{} // closed by Close
	entered   chan struct{} // closed when the first Send is reached
	enterOnce sync.Once
	closeOnce sync.Once
}

func newGateConn() *gateConn {
	return &gateConn{
		gate:    make(chan struct{}),
		dead:    make(chan struct{}),
		entered: make(chan struct{}),
	}
}

func (c *gateConn) Send(frame []byte) error {
	c.enterOnce.Do(func() { close(c.entered) })
	<-c.gate // wedged, not failed: teardown must not depend on a write error
	return nil
}

func (c *gateConn) Recv() ([]byte, error) {
	<-c.dead
	return nil, errors.New("gateconn: closed")
}

func (c *gateConn) Close() error {
	c.closeOnce.Do(func() { close(c.dead) })
	return nil
}

func (c *gateConn) LocalEndpoint() naming.Endpoint  { return "stub://client" }
func (c *gateConn) RemoteEndpoint() naming.Endpoint { return "stub://peer" }

// gateTransport dials the one wedged connection, whatever the endpoint.
type gateTransport struct{ conn *gateConn }

func (t *gateTransport) Dial(context.Context, naming.Endpoint) (netsim.Conn, error) {
	return t.conn, nil
}

func (t *gateTransport) Listen(naming.Endpoint) (netsim.Listener, error) {
	return nil, errors.New("gatetransport: listen unsupported")
}

// TestOneWaysStrandedAtTeardownSurfaceErrSessionClosing pins the satellite
// contract: a one-way accepted by the session's send queue but still
// unwritten when the session tears down must surface ErrSessionClosing —
// not hang, and not report success — from both the Flow and Signal paths,
// and the error must keep matching ErrDisconnected so retry policy treats
// it like any broken wire.
func TestOneWaysStrandedAtTeardownSurfaceErrSessionClosing(t *testing.T) {
	conn := newGateConn()
	tr := &gateTransport{conn: conn}
	mgr := NewSessionManager(tr)
	ref := naming.InterfaceRef{ID: ifaceID(11), TypeName: "S", Endpoint: "stub://peer"}
	b, err := Bind(ref, BindConfig{Transport: tr, Sessions: mgr})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	defer close(conn.gate) // unwedge the sender so background teardown finishes

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// First one-way: the sender goroutine takes its frame and wedges in
	// Send, leaving Flow blocked in flush.
	flowErr := make(chan error, 1)
	go func() { flowErr <- b.Flow(ctx, "video", values.Int(1)) }()
	select {
	case <-conn.entered:
	case <-ctx.Done():
		t.Fatal("sender never reached the wedged write")
	}
	// Second one-way: queued behind the wedged write, blocked in flush too.
	sigErr := make(chan error, 1)
	go func() { sigErr <- b.Signal(ctx, "hangup", nil) }()
	waitFor(t, func() bool { return b.Stats().OneWayQueued == 2 })

	// Graceful teardown with both frames stranded: flush waiters must wake
	// with the typed closing error immediately, not wait out the write.
	mgr.Close()

	for name, ch := range map[string]chan error{"Flow": flowErr, "Signal": sigErr} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrSessionClosing) {
				t.Errorf("%s stranded at teardown = %v, want ErrSessionClosing", name, err)
			}
			if !errors.Is(err, ErrDisconnected) {
				t.Errorf("%s teardown error lost ErrDisconnected: %v", name, err)
			}
		case <-ctx.Done():
			t.Fatalf("%s never returned after session teardown", name)
		}
	}
}
