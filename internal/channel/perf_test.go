package channel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/values"
	"repro/internal/wire"
)

func TestWorkerPoolDefaults(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	if env.server.cfg.Workers <= 0 {
		t.Fatalf("default Workers = %d, want > 0", env.server.cfg.Workers)
	}
	if env.server.cfg.MaxGuardBindings != 1024 {
		t.Fatalf("default MaxGuardBindings = %d, want 1024", env.server.cfg.MaxGuardBindings)
	}
}

// gateServant counts concurrent Invoke executions and answers after a
// short pause, so overlapping calls are observable.
type gateServant struct {
	cur, max atomic.Int64
}

func (g *gateServant) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	c := g.cur.Add(1)
	for {
		m := g.max.Load()
		if c <= m || g.max.CompareAndSwap(m, c) {
			break
		}
	}
	time.Sleep(time.Millisecond)
	g.cur.Add(-1)
	return "OK", nil, nil
}

// TestWorkerPoolBoundsConcurrency drives many concurrent calls down one
// connection with a single-worker pool: at most the worker plus the
// connection's read loop (inline overflow) may execute servant code at
// once, and every call must still be answered.
func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	env := newEnv(t, ServerConfig{Workers: 1})
	g := &gateServant{}
	id := ifaceID(77)
	if err := env.server.Register(id, nil, g); err != nil {
		t.Fatal(err)
	}
	bg, err := Bind(naming.InterfaceRef{ID: id, TypeName: "Gate", Endpoint: "sim://server"},
		BindConfig{Transport: env.net})
	if err != nil {
		t.Fatal(err)
	}
	defer bg.Close()

	const calls = 40
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			term, _, err := bg.Invoke(context.Background(), "Anything", nil)
			if err != nil {
				errs <- err
			} else if term != "OK" {
				errs <- fmt.Errorf("term = %q", term)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := g.max.Load(); m > 2 {
		t.Fatalf("max concurrent executions = %d, want <= 2 (1 worker + inline read loop)", m)
	}
}

// TestServerCloseDrainsWorkers ensures Close waits for queued work: after
// Close returns, no servant execution is still in flight.
func TestServerCloseDrainsWorkers(t *testing.T) {
	env := newEnv(t, ServerConfig{Workers: 2})
	b := env.bind(t, BindConfig{})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Errors are fine once the server starts closing; the point is
			// that Close below never races a worker.
			_, _, _ = b.Invoke(context.Background(), "Echo",
				[]values.Value{values.Str(fmt.Sprint(i))})
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	if err := env.server.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestGuardEviction checks the replay guard's binding bound: tracking a
// binding beyond MaxGuardBindings evicts the oldest tracked binding.
func TestGuardEviction(t *testing.T) {
	s := NewServer(nil, ServerConfig{ReplayGuard: true, MaxGuardBindings: 2})
	for bid := uint64(1); bid <= 4; bid++ {
		v, _ := s.guardCheck(&wire.Message{Kind: wire.Call, BindingID: bid, Correlation: 1})
		if v != guardFresh {
			t.Fatalf("binding %d: verdict = %v, want fresh", bid, v)
		}
	}
	if len(s.guards) != 2 {
		t.Fatalf("guards tracked = %d, want 2", len(s.guards))
	}
	if _, ok := s.guards[1]; ok {
		t.Fatal("oldest binding 1 still tracked after eviction")
	}
	if _, ok := s.guards[4]; !ok {
		t.Fatal("newest binding 4 not tracked")
	}
	// An evicted binding that reappears is tracked afresh (its correlation
	// history restarts, so the duplicate defence degrades gracefully rather
	// than growing without bound).
	if v, _ := s.guardCheck(&wire.Message{Kind: wire.Call, BindingID: 1, Correlation: 9}); v != guardFresh {
		t.Fatalf("re-tracked binding verdict = %v, want fresh", v)
	}
	if len(s.guards) != 2 {
		t.Fatalf("guards tracked after re-track = %d, want 2", len(s.guards))
	}
}

// TestPooledFrameAliasingStress hammers one server from many goroutines
// with distinct payloads while frame buffers recycle through the pool; any
// aliasing bug (a frame recycled while a decoded view or cached reply still
// needs it) surfaces as a wrong echo or a race report under -race.
func TestPooledFrameAliasingStress(t *testing.T) {
	env := newEnv(t, ServerConfig{ReplayGuard: true, ReplyCacheSize: 8})
	const goroutines = 8
	const calls = 150
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churn the frame pool from outside the invocation path to maximise
	// buffer reuse across goroutines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := wire.GetFrame(256)
			f = append(f, 0xEE)
			wire.PutFrame(f)
		}
	}()
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b, err := Bind(env.ref, BindConfig{Transport: env.net, Type: echoType()})
			if err != nil {
				errs <- err
				return
			}
			defer b.Close()
			for i := 0; i < calls; i++ {
				msg := fmt.Sprintf("g%d-call-%d-payload-%s", g, i, "0123456789abcdef")
				term, res, err := b.Invoke(context.Background(), "Echo",
					[]values.Value{values.Str(msg)})
				if err != nil {
					errs <- fmt.Errorf("g%d call %d: %v", g, i, err)
					return
				}
				if term != "OK" || len(res) != 1 {
					errs <- fmt.Errorf("g%d call %d: term=%q res=%v", g, i, term, res)
					return
				}
				if got, _ := res[0].AsString(); got != msg {
					errs <- fmt.Errorf("g%d call %d: echo corrupted: %q != %q", g, i, got, msg)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
