package channel

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	mathrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

// newBindingID draws a binding id from the OS entropy source. The global
// math/rand generator used previously is deterministic per process start
// in older Go releases, so two processes (or a process restarted within
// the same tick) could mint colliding binding ids and poison each other's
// replay-guard state at a shared server. crypto/rand cannot collide that
// way; math/rand/v2's per-process random seed is the fallback if the
// entropy source fails.
func newBindingID() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return binary.BigEndian.Uint64(b[:])
	}
	return mathrand.Uint64()
}

// BindConfig configures the client end of a channel. Transport is
// required; everything else has working defaults. The set of stages and
// the presence of Locator/MaxRetries are normally decided by the
// transparency configurator from an environment contract.
type BindConfig struct {
	// Transport dials the server's endpoint. Required.
	Transport netsim.Transport
	// Codec selects the transfer representation (default: wire.Canonical).
	Codec wire.Codec
	// Stages are the stub/binder components of this channel end, applied
	// outermost-first on outbound messages.
	Stages []Stage
	// Type enables client-side type checking of invocations (the client
	// stub's application knowledge). Optional.
	Type *types.Interface
	// Locator enables relocation transparency: when the server end reports
	// the interface unknown, or the connection fails, the binding re-resolves
	// the location and replays the interaction. Optional.
	Locator Locator
	// MaxRetries enables failure transparency: the number of additional
	// attempts after a transport failure or per-attempt timeout.
	MaxRetries int
	// CallTimeout bounds each attempt of an interrogation. Zero means the
	// invocation relies solely on the caller's context.
	CallTimeout time.Duration
	// MaxRelocations bounds location refreshes per invocation (default 3).
	MaxRelocations int
	// Instruments enables management instrumentation of this channel end:
	// stub/binder/transport spans, invocation metrics and the optional QoS
	// monitor. Nil disables it at the cost of a nil check per invocation.
	Instruments *mgmt.ChannelClientInstruments
}

// BindingStats counts channel events at the client end.
type BindingStats struct {
	Invocations uint64
	Retries     uint64
	Relocations uint64
	Reconnects  uint64
}

// Binding is the client end of an engineering channel, bound to one remote
// interface. It is safe for concurrent use; interrogations in flight are
// correlated by id, so a binding multiplexes any number of goroutines onto
// one connection.
type Binding struct {
	cfg       BindConfig
	bindingID uint64

	nextCorrel atomic.Uint64
	nextSeq    atomic.Uint64

	invocations atomic.Uint64
	retries     atomic.Uint64
	relocations atomic.Uint64
	reconnects  atomic.Uint64

	mu      sync.Mutex
	ref     naming.InterfaceRef
	conn    netsim.Conn
	pending map[uint64]chan *wire.Message
	closed  bool
}

// Bind creates a binding to the interface named by ref. The connection is
// established lazily on first use, so binding to a not-yet-started server
// is fine as long as it is up by the first invocation.
func Bind(ref naming.InterfaceRef, cfg BindConfig) (*Binding, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("channel: BindConfig.Transport is required")
	}
	if ref.IsZero() {
		return nil, fmt.Errorf("channel: cannot bind to zero reference")
	}
	if cfg.Codec == nil {
		cfg.Codec = wire.Canonical
	}
	if cfg.MaxRelocations == 0 {
		cfg.MaxRelocations = 3
	}
	return &Binding{
		cfg:       cfg,
		bindingID: newBindingID(),
		ref:       ref,
		pending:   make(map[uint64]chan *wire.Message),
	}, nil
}

// Ref returns the binding's current view of the interface reference
// (endpoint and epoch may advance as relocations are observed).
func (b *Binding) Ref() naming.InterfaceRef {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ref
}

// Stats returns a snapshot of the binding's counters.
func (b *Binding) Stats() BindingStats {
	return BindingStats{
		Invocations: b.invocations.Load(),
		Retries:     b.retries.Load(),
		Relocations: b.relocations.Load(),
		Reconnects:  b.reconnects.Load(),
	}
}

// Close tears down the binding and fails any in-flight interrogations
// with ErrDisconnected.
func (b *Binding) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	conn := b.conn
	b.conn = nil
	b.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Invoke performs an interrogation: it sends the operation with its
// arguments and blocks until a termination arrives. Application
// terminations are returned as (name, results, nil); infrastructure
// failures as a non-nil error (possibly *RemoteError).
func (b *Binding) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if err := b.typeCheckCall(op, args, false); err != nil {
		return "", nil, err
	}
	b.invocations.Add(1)
	ins := b.cfg.Instruments
	if ins == nil {
		return b.invoke(ctx, op, args)
	}
	ins.Invocations.Inc()
	ctx, sp := ins.Tracer.Start(ctx, "stub:"+op)
	start := time.Now()
	term, results, err := b.invoke(ctx, op, args)
	if err != nil {
		sp.Fail(err)
		ins.Failures.Inc()
	}
	sp.End()
	d := time.Since(start)
	ins.InvokeLatency.ObserveDuration(d)
	ins.QoS.Observe(d, err != nil)
	return term, results, err
}

// invoke is the uninstrumented interrogation body: the retry/relocation
// loop around attempt.
func (b *Binding) invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	correl := b.nextCorrel.Add(1)

	relocations := 0
	attempt := 0
	for {
		m := wire.GetMessage()
		m.Kind = wire.Call
		m.BindingID = b.bindingID
		m.Seq = b.nextSeq.Add(1)
		m.Correlation = correl
		m.Target = b.ref.ID
		m.Epoch = b.Ref().Epoch
		m.Operation = op
		m.Args = args
		reply, err := b.attempt(ctx, m)
		// attempt encodes the request and does not retain it.
		wire.PutMessage(m)
		if err != nil {
			if ctx.Err() != nil {
				return "", nil, ctx.Err()
			}
			// Transport failure or per-attempt timeout. Failure
			// transparency: retry if configured; relocation transparency:
			// re-resolve first in case the failure was a move.
			if attempt < b.cfg.MaxRetries {
				attempt++
				b.retries.Add(1)
				if ins := b.cfg.Instruments; ins != nil {
					ins.Retries.Inc()
				}
				if b.refreshLocation() {
					relocations++
					b.relocations.Add(1)
					if ins := b.cfg.Instruments; ins != nil {
						ins.Relocations.Inc()
					}
				}
				continue
			}
			return "", nil, err
		}
		switch reply.Kind {
		case wire.Reply:
			if err := b.typeCheckReply(op, reply); err != nil {
				return "", nil, err
			}
			term, results := reply.Termination, reply.Args
			// The reply was delivered solely to this call; the termination
			// string and results slice survive recycling the struct.
			wire.PutMessage(reply)
			return term, results, nil
		case wire.ErrReply:
			if reply.Termination == CodeNoSuchInterface &&
				b.cfg.Locator != nil && relocations < b.cfg.MaxRelocations {
				// The interface is not where we thought: the classic stale
				// location. Re-resolve and replay (tutorial Section 9.2).
				if b.refreshLocation() {
					relocations++
					b.relocations.Add(1)
					if ins := b.cfg.Instruments; ins != nil {
						ins.Relocations.Inc()
					}
					continue
				}
			}
			return "", nil, b.remoteError(reply)
		default:
			return "", nil, fmt.Errorf("%w: unexpected kind %v", ErrBadReply, reply.Kind)
		}
	}
}

// Announce performs an announcement: the operation is sent without waiting
// for any termination. Delivery is at-most-once.
func (b *Binding) Announce(ctx context.Context, op string, args []values.Value) error {
	if err := b.typeCheckCall(op, args, true); err != nil {
		return err
	}
	b.invocations.Add(1)
	return b.sendOneWay(ctx, &wire.Message{
		Kind:        wire.OneWay,
		BindingID:   b.bindingID,
		Seq:         b.nextSeq.Add(1),
		Correlation: b.nextCorrel.Add(1),
		Target:      b.ref.ID,
		Epoch:       b.Ref().Epoch,
		Operation:   op,
		Args:        args,
	})
}

// Flow emits one element of a stream-interface flow (producer side).
func (b *Binding) Flow(ctx context.Context, flow string, elem values.Value) error {
	if b.cfg.Type != nil {
		f, ok := b.cfg.Type.Flow(flow)
		if !ok {
			return fmt.Errorf("%w: interface %s has no flow %q", ErrTypeCheck, b.cfg.Type.Name, flow)
		}
		if err := f.Elem.Check(elem); err != nil {
			return fmt.Errorf("%w: flow %q: %v", ErrTypeCheck, flow, err)
		}
	}
	return b.sendOneWay(ctx, &wire.Message{
		Kind:        wire.FlowMsg,
		BindingID:   b.bindingID,
		Seq:         b.nextSeq.Add(1),
		Correlation: b.nextCorrel.Add(1),
		Target:      b.ref.ID,
		Epoch:       b.Ref().Epoch,
		Operation:   flow,
		Args:        []values.Value{elem},
	})
}

// Signal emits one signal-interface primitive.
func (b *Binding) Signal(ctx context.Context, name string, args []values.Value) error {
	if b.cfg.Type != nil {
		s, ok := b.cfg.Type.Signal(name)
		if !ok {
			return fmt.Errorf("%w: interface %s has no signal %q", ErrTypeCheck, b.cfg.Type.Name, name)
		}
		if len(s.Params) != len(args) {
			return fmt.Errorf("%w: signal %q expects %d args, got %d", ErrTypeCheck, name, len(s.Params), len(args))
		}
		for i, p := range s.Params {
			if err := p.Type.Check(args[i]); err != nil {
				return fmt.Errorf("%w: signal %q arg %q: %v", ErrTypeCheck, name, p.Name, err)
			}
		}
	}
	return b.sendOneWay(ctx, &wire.Message{
		Kind:        wire.SignalMsg,
		BindingID:   b.bindingID,
		Seq:         b.nextSeq.Add(1),
		Correlation: b.nextCorrel.Add(1),
		Target:      b.ref.ID,
		Epoch:       b.Ref().Epoch,
		Operation:   name,
		Args:        args,
	})
}

// Probe checks end-to-end liveness of the channel.
func (b *Binding) Probe(ctx context.Context) error {
	_, err := b.attempt(ctx, &wire.Message{
		Kind:        wire.Probe,
		BindingID:   b.bindingID,
		Seq:         b.nextSeq.Add(1),
		Correlation: b.nextCorrel.Add(1),
		Target:      b.ref.ID,
	})
	return err
}

// ---------------------------------------------------------------------------
// internals

func (b *Binding) typeCheckCall(op string, args []values.Value, announcement bool) error {
	t := b.cfg.Type
	if t == nil {
		return nil
	}
	decl, ok := t.Operation(op)
	if !ok {
		return fmt.Errorf("%w: interface %s has no operation %q", ErrTypeCheck, t.Name, op)
	}
	if announcement && !decl.IsAnnouncement() {
		return fmt.Errorf("%w: %s.%s is an interrogation, use Invoke", ErrTypeCheck, t.Name, op)
	}
	if !announcement && decl.IsAnnouncement() {
		return fmt.Errorf("%w: %s.%s is an announcement, use Announce", ErrTypeCheck, t.Name, op)
	}
	if len(args) != len(decl.Params) {
		return fmt.Errorf("%w: %s.%s expects %d args, got %d", ErrTypeCheck, t.Name, op, len(decl.Params), len(args))
	}
	for i, p := range decl.Params {
		if err := p.Type.Check(args[i]); err != nil {
			return fmt.Errorf("%w: %s.%s arg %q: %v", ErrTypeCheck, t.Name, op, p.Name, err)
		}
	}
	return nil
}

func (b *Binding) typeCheckReply(op string, reply *wire.Message) error {
	t := b.cfg.Type
	if t == nil {
		return nil
	}
	decl, ok := t.Operation(op)
	if !ok {
		return nil // checked on the way out; be lenient here
	}
	term, ok := decl.Termination(reply.Termination)
	if !ok {
		return fmt.Errorf("%w: %s.%s returned undeclared termination %q",
			ErrTypeCheck, t.Name, op, reply.Termination)
	}
	if len(reply.Args) != len(term.Results) {
		return fmt.Errorf("%w: %s.%s termination %q carries %d results, want %d",
			ErrTypeCheck, t.Name, op, reply.Termination, len(reply.Args), len(term.Results))
	}
	for i, res := range term.Results {
		if err := res.Type.Check(reply.Args[i]); err != nil {
			return fmt.Errorf("%w: %s.%s termination %q result %q: %v",
				ErrTypeCheck, t.Name, op, reply.Termination, res.Name, err)
		}
	}
	return nil
}

func (b *Binding) remoteError(reply *wire.Message) error {
	detail := ""
	if len(reply.Args) == 1 {
		if s, ok := reply.Args[0].AsString(); ok {
			detail = s
		}
	}
	return &RemoteError{Code: reply.Termination, Detail: detail}
}

// attempt performs one round trip, including the per-attempt timeout.
func (b *Binding) attempt(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	if b.cfg.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.cfg.CallTimeout)
		defer cancel()
	}
	var tr *mgmt.Tracer
	if b.cfg.Instruments != nil {
		tr = b.cfg.Instruments.Tracer
	}
	_, bsp := tr.Start(ctx, "binder")
	err := runStages(b.cfg.Stages, Outbound, m)
	bsp.Fail(err)
	bsp.End()
	if err != nil {
		return nil, err
	}
	conn, err := b.ensureConn(ctx)
	if err != nil {
		return nil, err
	}
	// The transport span covers encode, send and the wait for the reply;
	// its context rides the frame's trace extension, so the server's
	// dispatch span parents under it.
	_, tsp := tr.Start(ctx, "transport")
	if sc := tsp.Context(); !sc.IsZero() {
		m.TraceID = uint64(sc.Trace)
		m.SpanID = uint64(sc.Span)
	}
	frame, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), b.cfg.Codec)
	if err != nil {
		tsp.Fail(err)
		tsp.End()
		return nil, err
	}
	ch := make(chan *wire.Message, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.pending[m.Correlation] = ch
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.pending, m.Correlation)
		b.mu.Unlock()
	}()

	err = conn.Send(frame)
	// Send does not keep a reference past return (transports copy or write
	// synchronously), so the frame can be recycled either way.
	wire.PutFrame(frame)
	if err != nil {
		b.dropConn(conn)
		err = fmt.Errorf("%w: %v", ErrDisconnected, err)
		tsp.Fail(err)
		tsp.End()
		return nil, err
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			tsp.Fail(ErrDisconnected)
			tsp.End()
			return nil, ErrDisconnected
		}
		tsp.End()
		if err := runStages(b.cfg.Stages, Inbound, reply); err != nil {
			return nil, err
		}
		return reply, nil
	case <-ctx.Done():
		tsp.Fail(ctx.Err())
		tsp.End()
		return nil, ctx.Err()
	}
}

// sendOneWay transmits a message without expecting any reply, applying
// failure-transparency retries for transport-level send errors only.
func (b *Binding) sendOneWay(ctx context.Context, m *wire.Message) error {
	if err := runStages(b.cfg.Stages, Outbound, m); err != nil {
		return err
	}
	frame, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), b.cfg.Codec)
	if err != nil {
		return err
	}
	// The frame is resent across retries; recycle it once the loop exits.
	defer wire.PutFrame(frame)
	for attempt := 0; ; attempt++ {
		conn, err := b.ensureConn(ctx)
		if err == nil {
			if err = conn.Send(frame); err == nil {
				return nil
			}
			b.dropConn(conn)
			err = fmt.Errorf("%w: %v", ErrDisconnected, err)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= b.cfg.MaxRetries {
			return err
		}
		b.retries.Add(1)
		if b.refreshLocation() {
			b.relocations.Add(1)
		}
	}
}

// ensureConn returns the live connection, dialling the current endpoint if
// necessary and starting the read loop.
func (b *Binding) ensureConn(ctx context.Context) (netsim.Conn, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if b.conn != nil {
		conn := b.conn
		b.mu.Unlock()
		return conn, nil
	}
	ep := b.ref.Endpoint
	b.mu.Unlock()

	conn, err := b.cfg.Transport.Dial(ctx, ep)
	if err != nil {
		// The endpoint may be stale; relocation transparency refreshes it
		// for the next attempt.
		if b.refreshLocation() {
			b.relocations.Add(1)
		}
		return nil, fmt.Errorf("%w: dial %s: %v", ErrDisconnected, ep, err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if b.conn != nil {
		// Another goroutine connected first.
		existing := b.conn
		b.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	b.conn = conn
	b.reconnects.Add(1)
	b.mu.Unlock()
	go b.readLoop(conn)
	return conn, nil
}

// dropConn discards the connection if it is still current, so the next
// attempt redials.
func (b *Binding) dropConn(conn netsim.Conn) {
	b.mu.Lock()
	if b.conn == conn {
		b.conn = nil
	}
	b.mu.Unlock()
	conn.Close()
}

// refreshLocation consults the locator and adopts a newer location if one
// exists. It reports whether the binding's view changed.
func (b *Binding) refreshLocation() bool {
	if b.cfg.Locator == nil {
		return false
	}
	ref, err := b.cfg.Locator.Lookup(b.ref.ID)
	if err != nil {
		return false
	}
	b.mu.Lock()
	changed := ref.Epoch > b.ref.Epoch || ref.Endpoint != b.ref.Endpoint
	var stale netsim.Conn
	if changed {
		b.ref = ref
		stale = b.conn
		b.conn = nil
	}
	b.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	return changed
}

// readLoop delivers replies to their waiting interrogations until the
// connection dies, then fails whatever is still pending.
func (b *Binding) readLoop(conn netsim.Conn) {
	for {
		frame, err := conn.Recv()
		if err != nil {
			break
		}
		m, err := wire.Decode(frame)
		// Decode copies every escaping payload out of the frame, so the
		// buffer can be recycled immediately, whatever the outcome.
		wire.PutFrame(frame)
		if err != nil {
			continue // a corrupt frame fails its call by timeout, not panic
		}
		switch m.Kind {
		case wire.Reply, wire.ErrReply, wire.ProbeAck:
			b.mu.Lock()
			ch, ok := b.pending[m.Correlation]
			if ok {
				delete(b.pending, m.Correlation)
			}
			b.mu.Unlock()
			if ok {
				ch <- m
			}
		default:
			// Client ends do not accept requests.
		}
	}
	b.mu.Lock()
	if b.conn == conn {
		b.conn = nil
	}
	stranded := b.pending
	b.pending = make(map[uint64]chan *wire.Message)
	b.mu.Unlock()
	for _, ch := range stranded {
		close(ch)
	}
}
