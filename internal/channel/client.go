package channel

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mathrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

// newBindingID draws a binding id from the OS entropy source. The global
// math/rand generator used previously is deterministic per process start
// in older Go releases, so two processes (or a process restarted within
// the same tick) could mint colliding binding ids and poison each other's
// replay-guard state at a shared server. crypto/rand cannot collide that
// way; math/rand/v2's per-process random seed is the fallback if the
// entropy source fails.
func newBindingID() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return binary.BigEndian.Uint64(b[:])
	}
	return mathrand.Uint64()
}

// BindConfig configures the client end of a channel. Transport is
// required unless Sessions is supplied; everything else has working
// defaults. The set of stages and the presence of Locator/MaxRetries are
// normally decided by the transparency configurator from an environment
// contract.
type BindConfig struct {
	// Transport dials the server's endpoint. Required unless Sessions is
	// set (a manager carries its own transport).
	Transport netsim.Transport
	// Sessions multiplexes this binding over shared per-endpoint
	// sessions: every binding handed the same manager shares one
	// connection, read loop, failure detector and heartbeat per remote
	// endpoint. Nil gives the binding a private manager — the same code
	// path, with sessions degenerating to one per binding.
	Sessions *SessionManager
	// Codec selects the transfer representation (default: wire.Canonical).
	Codec wire.Codec
	// Stages are the stub/binder components of this channel end, applied
	// outermost-first on outbound messages.
	Stages []Stage
	// Type enables client-side type checking of invocations (the client
	// stub's application knowledge). Optional.
	Type *types.Interface
	// Locator enables relocation transparency: when the server end reports
	// the interface unknown, or the connection fails, the binding re-resolves
	// the location and replays the interaction. Optional.
	Locator Locator
	// MaxRetries enables failure transparency: the number of additional
	// attempts after a transport failure or per-attempt timeout. Ignored
	// when Policy is set.
	MaxRetries int
	// CallTimeout bounds each attempt of an interrogation. Zero means the
	// invocation relies solely on the caller's context. When Policy is set
	// with a non-zero AttemptTimeout, the policy's value wins.
	CallTimeout time.Duration
	// Policy, when set, replaces the legacy MaxRetries/CallTimeout pair
	// with the full recovery policy: attempt count, per-attempt timeout,
	// one deadline budget shared by all attempts and relocations, and
	// seeded exponential backoff between retries. Nil keeps the legacy
	// semantics exactly (immediate retries, a fresh CallTimeout per
	// attempt, no budget).
	Policy *policy.RetryPolicy
	// MaxRelocations bounds location refreshes per invocation (default 3).
	MaxRelocations int
	// MaxInFlight bounds the interrogations this binding may have
	// outstanding at once. Zero means unlimited — a binding pipelines any
	// number of concurrent Invokes onto its session. With a bound, an
	// Invoke beyond it either queues for a slot (the default, honouring the
	// caller's context) or fails fast with ErrTooManyInFlight when FailFast
	// is set.
	MaxInFlight int
	// FailFast makes an Invoke beyond MaxInFlight return
	// ErrTooManyInFlight immediately instead of waiting for a slot.
	// Ignored when MaxInFlight is zero.
	FailFast bool
	// Instruments enables management instrumentation of this channel end:
	// stub/binder/transport spans, invocation metrics and the optional QoS
	// monitor. Nil disables it at the cost of a nil check per invocation.
	Instruments *mgmt.ChannelClientInstruments
}

// BindingStats counts channel events at the client end.
type BindingStats struct {
	Invocations uint64
	Retries     uint64
	Relocations uint64
	// Reconnects counts session changes observed by this binding: the
	// first session it joins, plus one per shared-session failover.
	Reconnects uint64
	// OneWayQueued counts announcements, flow elements and signals this
	// binding handed to the session's batched send queue (each is still
	// flushed before the call returns, so send errors stay observable).
	OneWayQueued uint64
	// LastProbe is when the binding's current session last completed a
	// liveness probe (zero if never, or if the session is gone). Probes
	// are coalesced per session, so this may have been paid for by a
	// sibling binding.
	LastProbe time.Time
}

// Binding is the client end of an engineering channel, bound to one remote
// interface: the stub and binder of the tutorial's Fig 4. Transport is
// delegated to a shared per-endpoint Session (the protocol object), so a
// binding holds no connection of its own — sequencing, replay identity,
// retries and the location cache stay here, per binding; the wire moves
// down a layer. It is safe for concurrent use; interrogations in flight
// are correlated by id, so a binding multiplexes any number of goroutines
// onto its session.
type Binding struct {
	cfg       BindConfig
	bindingID uint64
	sessions  *SessionManager
	ownSess   bool // manager is private to this binding; Close closes it

	nextCorrel atomic.Uint64
	nextSeq    atomic.Uint64

	// inflight is the MaxInFlight semaphore (nil when unbounded): one
	// buffered slot per permitted outstanding interrogation.
	inflight chan struct{}

	invocations  atomic.Uint64
	retries      atomic.Uint64
	relocations  atomic.Uint64
	reconnects   atomic.Uint64
	oneWayQueued atomic.Uint64

	mu         sync.Mutex
	ref        naming.InterfaceRef
	attached   bool
	attachedEP naming.Endpoint
	lastSess   *Session
	closed     bool
}

// Bind creates a binding to the interface named by ref. The session is
// established lazily on first use, so binding to a not-yet-started server
// is fine as long as it is up by the first invocation.
func Bind(ref naming.InterfaceRef, cfg BindConfig) (*Binding, error) {
	if cfg.Transport == nil && cfg.Sessions == nil {
		return nil, fmt.Errorf("channel: BindConfig.Transport or Sessions is required")
	}
	if ref.IsZero() {
		return nil, fmt.Errorf("channel: cannot bind to zero reference")
	}
	if cfg.Codec == nil {
		cfg.Codec = wire.Canonical
	}
	if cfg.MaxRelocations == 0 {
		cfg.MaxRelocations = 3
	}
	b := &Binding{
		cfg:       cfg,
		bindingID: newBindingID(),
		ref:       ref,
	}
	if cfg.MaxInFlight > 0 {
		b.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.Sessions != nil {
		b.sessions = cfg.Sessions
	} else {
		b.sessions = NewSessionManager(cfg.Transport)
		b.ownSess = true
	}
	return b, nil
}

// Ref returns the binding's current view of the interface reference
// (endpoint and epoch may advance as relocations are observed).
func (b *Binding) Ref() naming.InterfaceRef {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ref
}

// Sessions returns the session manager this binding multiplexes over —
// its own private one, or the shared manager supplied at Bind.
func (b *Binding) Sessions() *SessionManager { return b.sessions }

// Stats returns a snapshot of the binding's counters.
func (b *Binding) Stats() BindingStats {
	st := BindingStats{
		Invocations:  b.invocations.Load(),
		Retries:      b.retries.Load(),
		Relocations:  b.relocations.Load(),
		Reconnects:   b.reconnects.Load(),
		OneWayQueued: b.oneWayQueued.Load(),
	}
	b.mu.Lock()
	attached, ep := b.attached, b.attachedEP
	b.mu.Unlock()
	if attached {
		if s := b.sessions.peek(ep); s != nil {
			if ns := s.lastProbe.Load(); ns > 0 {
				st.LastProbe = time.Unix(0, ns)
			}
		}
	}
	return st
}

// Close detaches the binding from its session (the last binding out
// closes the session, failing anything still pending on it with
// ErrDisconnected) and fails later use with ErrClosed.
func (b *Binding) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	attached, ep := b.attached, b.attachedEP
	b.attached = false
	b.mu.Unlock()
	if attached {
		b.sessions.detach(ep)
	}
	if b.ownSess {
		return b.sessions.Close()
	}
	return nil
}

// Invoke performs an interrogation: it sends the operation with its
// arguments and blocks until a termination arrives. Application
// terminations are returned as (name, results, nil); infrastructure
// failures as a non-nil error (possibly *RemoteError).
func (b *Binding) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if err := b.typeCheckCall(op, args, false); err != nil {
		return "", nil, err
	}
	if b.inflight != nil {
		// The in-flight cap covers the whole interrogation, retries
		// included, so a retry storm cannot exceed the pipelining bound.
		select {
		case b.inflight <- struct{}{}:
		default:
			if b.cfg.FailFast {
				return "", nil, fmt.Errorf("%w: binding cap %d", ErrTooManyInFlight, b.cfg.MaxInFlight)
			}
			select {
			case b.inflight <- struct{}{}:
			case <-ctx.Done():
				return "", nil, ctx.Err()
			}
		}
		defer func() { <-b.inflight }()
	}
	b.invocations.Add(1)
	ins := b.cfg.Instruments
	if ins == nil {
		return b.invoke(ctx, op, args)
	}
	ins.Invocations.Inc()
	ctx, sp := ins.Tracer.Start(ctx, "stub:"+op)
	start := time.Now()
	term, results, err := b.invoke(ctx, op, args)
	if err != nil {
		sp.Fail(err)
		ins.Failures.Inc()
	}
	sp.End()
	d := time.Since(start)
	ins.InvokeLatency.ObserveDuration(d)
	ins.QoS.Observe(d, err != nil)
	return term, results, err
}

// invoke is the uninstrumented interrogation body: the retry/relocation
// loop around attempt. With a nil Policy it behaves exactly as before the
// policy layer existed; with one, all attempts share a single deadline
// budget, retries back off with seeded jitter, and calls to an endpoint
// whose shared circuit breaker is open fail fast with ErrCircuitOpen.
func (b *Binding) invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	correl := b.nextCorrel.Add(1)

	pol := b.cfg.Policy
	maxAttempts := b.cfg.MaxRetries + 1
	attemptTimeout := b.cfg.CallTimeout
	if pol != nil {
		maxAttempts = pol.Attempts()
		if pol.AttemptTimeout > 0 {
			attemptTimeout = pol.AttemptTimeout
		}
		if pol.Budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = pol.WithBudget(ctx)
			defer cancel()
		}
	}

	relocations := 0
	attempt := 0
	for {
		ref := b.Ref()
		br := b.breakerFor(ref.Endpoint)
		if br != nil {
			if ok, _ := br.Allow(); !ok {
				return "", nil, fmt.Errorf("%w: endpoint %s", policy.ErrCircuitOpen, ref.Endpoint)
			}
		}
		m := wire.GetMessage()
		m.Kind = wire.Call
		m.BindingID = b.bindingID
		m.Seq = b.nextSeq.Add(1)
		m.Correlation = correl
		m.Target = ref.ID
		m.Epoch = ref.Epoch
		m.Operation = op
		m.Args = args
		reply, err := b.attempt(ctx, m, attemptTimeout)
		// attempt encodes the request and does not retain it.
		wire.PutMessage(m)
		if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			// The attempt's own timer fired while the call as a whole still
			// has budget: a per-attempt timeout, distinct and retryable.
			err = fmt.Errorf("%w: %s: attempt %d exceeded %v: %w",
				ErrAttemptTimeout, ref.Endpoint, attempt+1, attemptTimeout, err)
		}
		if br != nil {
			// Only endpoint-health outcomes feed the breaker: a connection
			// loss or attempt timeout says the endpoint may be dead; an
			// application or stage error says it answered.
			if err == nil {
				br.Record(true)
			} else if errors.Is(err, ErrDisconnected) || errors.Is(err, ErrAttemptTimeout) {
				br.Record(false)
			} else {
				br.Record(true)
			}
		}
		if err != nil {
			if ctx.Err() != nil {
				return "", nil, ctx.Err()
			}
			if errors.Is(err, ErrClosed) {
				return "", nil, err
			}
			// Transport failure or per-attempt timeout. Failure
			// transparency: retry if configured; relocation transparency:
			// re-resolve first in case the failure was a move.
			if attempt+1 < maxAttempts {
				attempt++
				b.retries.Add(1)
				if ins := b.cfg.Instruments; ins != nil {
					ins.Retries.Inc()
				}
				if pol != nil {
					if werr := b.backoff(ctx, pol, attempt); werr != nil {
						return "", nil, werr
					}
				}
				// A lost connection is location-staleness evidence (the
				// endpoint may be gone because the interface moved), so a
				// caching locator must be told before the re-resolve; a bare
				// attempt timeout is not — the endpoint answered slowly, the
				// cached location is probably fine.
				if errors.Is(err, ErrDisconnected) {
					b.invalidateLocation()
				}
				if b.refreshLocation() {
					relocations++
					b.relocations.Add(1)
					if ins := b.cfg.Instruments; ins != nil {
						ins.Relocations.Inc()
					}
				}
				continue
			}
			return "", nil, err
		}
		switch reply.Kind {
		case wire.Reply:
			if err := b.typeCheckReply(op, reply); err != nil {
				return "", nil, err
			}
			term, results := reply.Termination, reply.Args
			// The reply was delivered solely to this call; the termination
			// string and results slice survive recycling the struct.
			wire.PutMessage(reply)
			return term, results, nil
		case wire.ErrReply:
			if reply.Termination == CodeNoSuchInterface &&
				b.cfg.Locator != nil && relocations < b.cfg.MaxRelocations {
				// The interface is not where we thought: the classic stale
				// location. Invalidate the cached snapshot first — retrying
				// blind against a caching locator would re-read the same
				// stale line — then re-resolve and replay (Section 9.2).
				b.invalidateLocation()
				if b.refreshLocation() {
					relocations++
					b.relocations.Add(1)
					if ins := b.cfg.Instruments; ins != nil {
						ins.Relocations.Inc()
					}
					continue
				}
			}
			return "", nil, b.remoteError(reply)
		default:
			return "", nil, fmt.Errorf("%w: unexpected kind %v", ErrBadReply, reply.Kind)
		}
	}
}

// Announce performs an announcement: the operation is sent without waiting
// for any termination. Delivery is at-most-once.
func (b *Binding) Announce(ctx context.Context, op string, args []values.Value) error {
	if err := b.typeCheckCall(op, args, true); err != nil {
		return err
	}
	b.invocations.Add(1)
	ref := b.Ref()
	m := wire.GetMessage()
	m.Kind = wire.OneWay
	m.BindingID = b.bindingID
	m.Seq = b.nextSeq.Add(1)
	m.Correlation = b.nextCorrel.Add(1)
	m.Target = ref.ID
	m.Epoch = ref.Epoch
	m.Operation = op
	m.Args = args
	return b.sendOneWay(ctx, m)
}

// Flow emits one element of a stream-interface flow (producer side).
func (b *Binding) Flow(ctx context.Context, flow string, elem values.Value) error {
	if b.cfg.Type != nil {
		f, ok := b.cfg.Type.Flow(flow)
		if !ok {
			return fmt.Errorf("%w: interface %s has no flow %q", ErrTypeCheck, b.cfg.Type.Name, flow)
		}
		if err := f.Elem.Check(elem); err != nil {
			return fmt.Errorf("%w: flow %q: %v", ErrTypeCheck, flow, err)
		}
	}
	ref := b.Ref()
	m := wire.GetMessage()
	m.Kind = wire.FlowMsg
	m.BindingID = b.bindingID
	m.Seq = b.nextSeq.Add(1)
	m.Correlation = b.nextCorrel.Add(1)
	m.Target = ref.ID
	m.Epoch = ref.Epoch
	m.Operation = flow
	m.Args = []values.Value{elem}
	return b.sendOneWay(ctx, m)
}

// Signal emits one signal-interface primitive.
func (b *Binding) Signal(ctx context.Context, name string, args []values.Value) error {
	if b.cfg.Type != nil {
		s, ok := b.cfg.Type.Signal(name)
		if !ok {
			return fmt.Errorf("%w: interface %s has no signal %q", ErrTypeCheck, b.cfg.Type.Name, name)
		}
		if len(s.Params) != len(args) {
			return fmt.Errorf("%w: signal %q expects %d args, got %d", ErrTypeCheck, name, len(s.Params), len(args))
		}
		for i, p := range s.Params {
			if err := p.Type.Check(args[i]); err != nil {
				return fmt.Errorf("%w: signal %q arg %q: %v", ErrTypeCheck, name, p.Name, err)
			}
		}
	}
	ref := b.Ref()
	m := wire.GetMessage()
	m.Kind = wire.SignalMsg
	m.BindingID = b.bindingID
	m.Seq = b.nextSeq.Add(1)
	m.Correlation = b.nextCorrel.Add(1)
	m.Target = ref.ID
	m.Epoch = ref.Epoch
	m.Operation = name
	m.Args = args
	return b.sendOneWay(ctx, m)
}

// Probe checks end-to-end liveness of the channel. Probes are coalesced
// at the session: however many co-located bindings probe concurrently,
// one heartbeat goes on the wire and all of them share its outcome.
// A probe also consults the endpoint's shared circuit breaker: an open
// breaker refuses it, and after the cooling-off period the probe is
// exactly the single half-open trial whose outcome re-closes (or
// re-opens) the breaker for every binding sharing it.
func (b *Binding) Probe(ctx context.Context) error {
	timeout := b.cfg.CallTimeout
	if pol := b.cfg.Policy; pol != nil && pol.AttemptTimeout > 0 {
		timeout = pol.AttemptTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ep := b.Ref().Endpoint
	br := b.breakerFor(ep)
	if br != nil {
		if ok, _ := br.Allow(); !ok {
			return fmt.Errorf("%w: endpoint %s", policy.ErrCircuitOpen, ep)
		}
	}
	s, err := b.session(ctx)
	if err == nil {
		err = s.probeShared(ctx, b)
	}
	if br != nil {
		switch {
		case err == nil:
			br.Record(true)
		case errors.Is(err, ErrDisconnected), errors.Is(err, context.DeadlineExceeded):
			br.Record(false)
		default:
			br.Record(true) // cancelled or local error: says nothing about the endpoint
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// internals

func (b *Binding) typeCheckCall(op string, args []values.Value, announcement bool) error {
	t := b.cfg.Type
	if t == nil {
		return nil
	}
	decl, ok := t.Operation(op)
	if !ok {
		return fmt.Errorf("%w: interface %s has no operation %q", ErrTypeCheck, t.Name, op)
	}
	if announcement && !decl.IsAnnouncement() {
		return fmt.Errorf("%w: %s.%s is an interrogation, use Invoke", ErrTypeCheck, t.Name, op)
	}
	if !announcement && decl.IsAnnouncement() {
		return fmt.Errorf("%w: %s.%s is an announcement, use Announce", ErrTypeCheck, t.Name, op)
	}
	if len(args) != len(decl.Params) {
		return fmt.Errorf("%w: %s.%s expects %d args, got %d", ErrTypeCheck, t.Name, op, len(decl.Params), len(args))
	}
	for i, p := range decl.Params {
		if err := p.Type.Check(args[i]); err != nil {
			return fmt.Errorf("%w: %s.%s arg %q: %v", ErrTypeCheck, t.Name, op, p.Name, err)
		}
	}
	return nil
}

func (b *Binding) typeCheckReply(op string, reply *wire.Message) error {
	t := b.cfg.Type
	if t == nil {
		return nil
	}
	decl, ok := t.Operation(op)
	if !ok {
		return nil // checked on the way out; be lenient here
	}
	term, ok := decl.Termination(reply.Termination)
	if !ok {
		return fmt.Errorf("%w: %s.%s returned undeclared termination %q",
			ErrTypeCheck, t.Name, op, reply.Termination)
	}
	if len(reply.Args) != len(term.Results) {
		return fmt.Errorf("%w: %s.%s termination %q carries %d results, want %d",
			ErrTypeCheck, t.Name, op, reply.Termination, len(reply.Args), len(term.Results))
	}
	for i, res := range term.Results {
		if err := res.Type.Check(reply.Args[i]); err != nil {
			return fmt.Errorf("%w: %s.%s termination %q result %q: %v",
				ErrTypeCheck, t.Name, op, reply.Termination, res.Name, err)
		}
	}
	return nil
}

func (b *Binding) remoteError(reply *wire.Message) error {
	detail := ""
	if len(reply.Args) == 1 {
		if s, ok := reply.Args[0].AsString(); ok {
			detail = s
		}
	}
	return &RemoteError{Code: reply.Termination, Detail: detail}
}

// breakerFor returns the shared circuit breaker for ep, or nil when the
// session manager has no breaker set attached — a single atomic load on
// the no-policy hot path.
func (b *Binding) breakerFor(ep naming.Endpoint) *policy.Breaker {
	bs := b.sessions.Breakers()
	if bs == nil {
		return nil
	}
	return bs.For(string(ep))
}

// backoff sleeps the policy's delay before retry number retry, accounting
// the sleep into the shared policy instruments when present.
func (b *Binding) backoff(ctx context.Context, pol *policy.RetryPolicy, retry int) error {
	d := pol.Backoff(retry)
	if bs := b.sessions.Breakers(); bs != nil {
		if pins := bs.Instruments(); pins != nil {
			pins.Retries.Inc()
			pins.BackoffNs.Add(uint64(d))
		}
	}
	return policy.Wait(ctx, d)
}

// attempt performs one round trip, including the per-attempt timeout.
func (b *Binding) attempt(ctx context.Context, m *wire.Message, timeout time.Duration) (*wire.Message, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var tr *mgmt.Tracer
	if b.cfg.Instruments != nil {
		tr = b.cfg.Instruments.Tracer
	}
	_, bsp := tr.Start(ctx, "binder")
	err := runStages(b.cfg.Stages, Outbound, m)
	bsp.Fail(err)
	bsp.End()
	if err != nil {
		return nil, err
	}
	sess, err := b.session(ctx)
	if err != nil {
		return nil, err
	}
	// The transport span covers encode, send and the wait for the reply;
	// its context rides the frame's trace extension, so the server's
	// dispatch span parents under it.
	_, tsp := tr.Start(ctx, "transport")
	if sc := tsp.Context(); !sc.IsZero() {
		m.TraceID = uint64(sc.Trace)
		m.SpanID = uint64(sc.Span)
	}
	frame, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), b.cfg.Codec)
	if err != nil {
		tsp.Fail(err)
		tsp.End()
		return nil, err
	}
	ch, err := sess.register(b.bindingID, m.Correlation)
	if err != nil {
		wire.PutFrame(frame)
		tsp.Fail(err)
		tsp.End()
		return nil, err
	}

	// send takes ownership of the frame: on the batched plane it is queued
	// to the session's sender goroutine (coalescing with every concurrent
	// attempt on this session into one vectored write) and recycled after
	// the write. A send failure has already killed the session, so every
	// binding sharing it fails over together.
	if err := sess.send(frame); err != nil {
		sess.abandon(b.bindingID, m.Correlation, ch)
		tsp.Fail(err)
		tsp.End()
		return nil, err
	}
	select {
	case reply := <-ch:
		release(ch)
		if reply == nil {
			// Death notification: the session's read loop failed every
			// pending interrogation at once.
			tsp.Fail(ErrDisconnected)
			tsp.End()
			return nil, ErrDisconnected
		}
		tsp.End()
		if err := runStages(b.cfg.Stages, Inbound, reply); err != nil {
			wire.PutMessage(reply)
			return nil, err
		}
		return reply, nil
	case <-ctx.Done():
		sess.abandon(b.bindingID, m.Correlation, ch)
		tsp.Fail(ctx.Err())
		tsp.End()
		return nil, ctx.Err()
	}
}

// sendOneWay transmits a message without expecting any reply, applying
// failure-transparency retries for transport-level send errors only.
// One-ways ride the session's batched queue like calls do — concurrent
// announcements coalesce into one vectored write — but each is flushed
// before returning (group commit), so a send that can never depart still
// surfaces its error and engages the retry loop instead of vanishing.
// The caller must not touch m afterwards: it is recycled here.
func (b *Binding) sendOneWay(ctx context.Context, m *wire.Message) error {
	err := runStages(b.cfg.Stages, Outbound, m)
	if err != nil {
		wire.PutMessage(m)
		return err
	}
	// Encode once; the encoded bytes are copied into a fresh pooled frame
	// per attempt because each send consumes its frame.
	encoded, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), b.cfg.Codec)
	wire.PutMessage(m)
	if err != nil {
		return err
	}
	defer wire.PutFrame(encoded)
	pol := b.cfg.Policy
	maxAttempts := b.cfg.MaxRetries + 1
	if pol != nil {
		maxAttempts = pol.Attempts()
		if pol.Budget > 0 {
			var cancel context.CancelFunc
			ctx, cancel = pol.WithBudget(ctx)
			defer cancel()
		}
	}
	for attempt := 0; ; attempt++ {
		ep := b.Ref().Endpoint
		br := b.breakerFor(ep)
		if br != nil {
			if ok, _ := br.Allow(); !ok {
				return fmt.Errorf("%w: endpoint %s", policy.ErrCircuitOpen, ep)
			}
		}
		sess, err := b.session(ctx)
		if err == nil {
			frame := append(wire.GetFrame(len(encoded)), encoded...)
			if err = sess.send(frame); err == nil { // send owns frame
				b.oneWayQueued.Add(1)
				err = sess.flushSends()
			}
			if err == nil {
				if br != nil {
					br.Record(true)
				}
				return nil
			}
			// send/flush already killed the session and wrapped the error
			// in ErrDisconnected; fall through to the retry decision.
		} else if errors.Is(err, ErrClosed) {
			if br != nil {
				br.Record(true) // local close, not endpoint health
			}
			return err
		}
		if br != nil {
			br.Record(!errors.Is(err, ErrDisconnected))
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt+1 >= maxAttempts {
			return err
		}
		b.retries.Add(1)
		if pol != nil {
			if werr := b.backoff(ctx, pol, attempt+1); werr != nil {
				return werr
			}
		}
		if errors.Is(err, ErrDisconnected) {
			b.invalidateLocation()
		}
		if b.refreshLocation() {
			b.relocations.Add(1)
		}
	}
}

// session attaches the binding to its current endpoint and returns that
// endpoint's shared session, dialling (single-flight across bindings) if
// necessary.
func (b *Binding) session(ctx context.Context) (*Session, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	ep := b.ref.Endpoint
	if !b.attached || b.attachedEP != ep {
		// The binding moved endpoints (relocation): move its session
		// reference in one step. detach/attach only touch the manager's
		// lock, never this binding's.
		if b.attached {
			b.sessions.detach(b.attachedEP)
		}
		b.sessions.attach(ep)
		b.attached, b.attachedEP = true, ep
	}
	b.mu.Unlock()

	s, err := b.sessions.session(ctx, ep)
	if err != nil {
		if !errors.Is(err, ErrClosed) {
			// An undialable endpoint is staleness evidence too: drop the
			// cached location so the refresh reaches the authority.
			b.invalidateLocation()
			if b.refreshLocation() {
				// The endpoint may be stale; relocation transparency
				// refreshes it for the next attempt.
				b.relocations.Add(1)
				if ins := b.cfg.Instruments; ins != nil {
					ins.Relocations.Inc()
				}
			}
		}
		return nil, err
	}
	b.mu.Lock()
	if b.lastSess != s {
		b.lastSess = s
		b.reconnects.Add(1)
	}
	b.mu.Unlock()
	return s, nil
}

// invalidateLocation tells a caching locator to drop its entry for this
// binding's interface. No-op for plain locators.
func (b *Binding) invalidateLocation() {
	if inv, ok := b.cfg.Locator.(LocationInvalidator); ok {
		inv.Invalidate(b.Ref().ID)
	}
}

// refreshLocation consults the locator and adopts a newer location if one
// exists. It reports whether the binding's view changed. Adopting a move
// also fences the old endpoint's session: the first binding to learn of
// an epoch kills the stale shared session, so every sibling multiplexed
// on it fails over immediately instead of each waiting out a timeout.
func (b *Binding) refreshLocation() bool {
	if b.cfg.Locator == nil {
		return false
	}
	ref, err := b.cfg.Locator.Lookup(b.Ref().ID)
	if err != nil {
		return false
	}
	b.mu.Lock()
	changed := ref.Epoch > b.ref.Epoch || ref.Endpoint != b.ref.Endpoint
	var fenceEP naming.Endpoint
	var fenceEpoch uint64
	if changed {
		if old := b.ref.Endpoint; old != ref.Endpoint && ref.Epoch > 0 {
			fenceEP, fenceEpoch = old, ref.Epoch
		}
		b.ref = ref
	}
	b.mu.Unlock()
	if fenceEpoch > 0 {
		b.sessions.fence(fenceEP, fenceEpoch)
	}
	return changed
}
