package channel

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

// This file is the channel-level half of the streaming data plane: the
// wire endpoints that ride the session layer. A FlowStream is the client
// (producer) end of one flow stream — it sends element batches through the
// session's batched send queue and receives credit grants demultiplexed by
// the session read loop — and StreamReceiver is the contract a servant
// implements to absorb credit-managed batches at the server end. The
// credit *policy* (window sizes, when to grant, blocking vs fail-fast)
// lives one layer up in package stream; this layer only moves frames and
// routes grants.

// StreamPhase classifies one StreamBatch delivery.
type StreamPhase uint8

// The phases of a stream's life as seen by a StreamReceiver.
const (
	// StreamOpen is the producer's subscription: no elements yet. The
	// receiver answers with the initial credit grant — until then the
	// producer holds zero credit and cannot send.
	StreamOpen StreamPhase = iota + 1
	// StreamElems carries a batch of elements.
	StreamElems
	// StreamClose ends the stream: Err nil for an orderly end-of-stream
	// from the producer, non-nil (ErrDisconnected) when the carrying
	// connection died with the stream open.
	StreamClose
)

// StreamBatch is one delivery from a server connection's read loop to a
// stream servant. Deliveries for one stream arrive in wire order on the
// connection's read-loop goroutine, so per-flow FIFO is preserved by
// construction; the receiver must not block (a bounded receiver queue is
// exactly what the credit window guarantees it can afford).
type StreamBatch struct {
	Phase   StreamPhase
	Binding uint64 // producer's binding id
	Stream  uint64 // stream id (the producer's correlation space)
	Flow    string
	Seq     uint64         // cumulative elements before this batch (FIFO position)
	Elems   []values.Value // type-checked survivors; retained safely (decode allocates)

	// DroppedElems/DroppedBytes count mistyped elements the server stub
	// removed from this batch. They were sent — the producer debited
	// credit for them — so the receiver must still credit them back, or
	// the window shrinks by every drop.
	DroppedElems uint64
	DroppedBytes uint64

	// Err is the abnormal-close cause (StreamClose only).
	Err error

	// Grant sends a credit grant back to the producer on the delivering
	// connection: cumulative element and byte totals since stream open.
	// Safe to call from any goroutine until the conn dies (then it is a
	// no-op); nil on StreamClose.
	Grant func(cumElems, cumBytes uint64)
}

// StreamReceiver is implemented by servants that accept credit-managed
// flow streams (package stream's Consumer is the standard one). Servants
// that only implement FlowReceiver still get legacy single-element
// FlowMsg deliveries; FlowBatch frames require this interface.
type StreamReceiver interface {
	StreamBatch(b StreamBatch)
}

// FlowStream is the client-side wire endpoint of one flow stream, opened
// with Binding.OpenFlowStream. It is pinned to the session that carried
// its open frame: streams do not survive session failover (elements in
// flight would be lost silently), so a session death closes the stream
// and the producer reopens if it wants to continue. Not safe for
// concurrent use — one sender goroutine per stream is the per-flow FIFO
// discipline (package stream's Producer enforces it with its pump).
type FlowStream struct {
	b         *Binding
	sess      *Session
	flow      string
	streamID  uint64
	elemType  *values.DataType // non-nil when the binding's type declares the flow
	sentElems uint64           // cumulative elements handed to the session
	closed    atomic.Bool
}

// OpenFlowStream opens a credit-managed stream on the named flow. The
// onGrant callback receives every credit grant (cumulative element and
// byte totals since open) and onDead fires exactly once if the carrying
// session dies with the stream open; both run on the session's read-loop
// goroutine and must not block. Causality is checked at open when the
// binding has a type: flow directions are relative to the interface's
// owner (this binding), so only a Producer flow can be streamed out.
func (b *Binding) OpenFlowStream(ctx context.Context, flow string, onGrant func(cumElems, cumBytes uint64), onDead func(err error)) (*FlowStream, error) {
	var elemType *values.DataType
	if t := b.cfg.Type; t != nil {
		f, ok := t.Flow(flow)
		if !ok {
			return nil, fmt.Errorf("%w: interface %s has no flow %q", ErrTypeCheck, t.Name, flow)
		}
		if f.Direction != types.Producer {
			return nil, fmt.Errorf("%w: flow %s.%s is a %v flow in this binding's view; only a producer flow can be streamed out",
				ErrTypeCheck, t.Name, flow, f.Direction)
		}
		elemType = f.Elem
	}
	sess, err := b.session(ctx)
	if err != nil {
		return nil, err
	}
	fs := &FlowStream{
		b:        b,
		sess:     sess,
		flow:     flow,
		streamID: b.nextCorrel.Add(1),
		elemType: elemType,
	}
	if err := sess.registerGrants(b.bindingID, fs.streamID, &grantSink{onGrant: onGrant, onDead: onDead}); err != nil {
		return nil, err
	}
	if err := fs.sendMarker(wire.StreamOpenMark); err != nil {
		sess.unregisterGrants(b.bindingID, fs.streamID)
		return nil, err
	}
	return fs, nil
}

// Flow returns the stream's flow name.
func (fs *FlowStream) Flow() string { return fs.flow }

// StreamID returns the stream's wire id.
func (fs *FlowStream) StreamID() uint64 { return fs.streamID }

// ElemType returns the flow's declared element type (nil when untyped).
func (fs *FlowStream) ElemType() *values.DataType { return fs.elemType }

// SendBatch sends one batch of elements, riding the session's batched
// send queue (enqueue then flush: group commit, so a write error is
// observed here, not swallowed). Elements are type-checked against the
// flow's declared element type when the binding is typed. The caller is
// responsible for holding transmission credit for every element — the
// wire itself does not block; the credit gate above does.
func (fs *FlowStream) SendBatch(elems []values.Value) error {
	if fs.closed.Load() {
		return fmt.Errorf("%w: flow %q", ErrStreamClosed, fs.flow)
	}
	if fs.elemType != nil {
		for i := range elems {
			if err := fs.elemType.Check(elems[i]); err != nil {
				return fmt.Errorf("%w: flow %q element %d: %v", ErrTypeCheck, fs.flow, i, err)
			}
		}
	}
	if err := fs.sendFrame(elems, ""); err != nil {
		return err
	}
	fs.sentElems += uint64(len(elems))
	return nil
}

// SentElems returns the cumulative element count handed to the session.
func (fs *FlowStream) SentElems() uint64 { return fs.sentElems }

// Close ends the stream: an end-of-stream marker is sent (best effort —
// on a dead session the consumer learns of the close from the connection
// teardown instead) and the grant slot is released. Idempotent.
func (fs *FlowStream) Close() error {
	if !fs.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := fs.sendMarker(wire.StreamEOSMark)
	fs.sess.unregisterGrants(fs.b.bindingID, fs.streamID)
	return err
}

func (fs *FlowStream) sendMarker(mark string) error {
	return fs.sendFrame(nil, mark)
}

// sendFrame builds, encodes and group-commits one FlowBatch frame on the
// pinned session. Session-layer failures (ErrSessionClosing, a sender's
// sticky write error) are wrapped in ErrStreamClosed: the stream is dead
// either way, and the chain keeps ErrDisconnected visible for retry
// classification.
func (fs *FlowStream) sendFrame(elems []values.Value, mark string) error {
	b := fs.b
	ref := b.Ref()
	m := wire.GetMessage()
	m.Kind = wire.FlowBatch
	m.BindingID = b.bindingID
	m.Seq = fs.sentElems
	m.Correlation = fs.streamID
	m.Target = ref.ID
	m.Epoch = ref.Epoch
	m.Operation = fs.flow
	m.Termination = mark
	m.Args = elems
	err := runStages(b.cfg.Stages, Outbound, m)
	if err != nil {
		wire.PutMessage(m)
		return err
	}
	frame, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), b.cfg.Codec)
	wire.PutMessage(m)
	if err != nil {
		return err
	}
	if err := fs.sess.send(frame); err != nil { // send owns the frame
		return fmt.Errorf("%w: flow %q: %w", ErrStreamClosed, fs.flow, err)
	}
	b.oneWayQueued.Add(1)
	if err := fs.sess.flushSends(); err != nil {
		return fmt.Errorf("%w: flow %q: %w", ErrStreamClosed, fs.flow, err)
	}
	return nil
}
