package channel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/values"
)

// TestPipelinedInvokesSingleBinding drives 64 concurrent interrogations
// through ONE binding: with pipelining there is no per-binding
// serialisation, so all of them can be on the wire at once, every
// correlation resolves, and each caller gets its own reply back.
func TestPipelinedInvokesSingleBinding(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	mgr := NewSessionManager(env.net)
	b, err := Bind(env.ref, BindConfig{Sessions: mgr, MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const calls = 64
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("call-%d", i)
			term, res, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str(want)})
			if err != nil || term != "OK" {
				t.Errorf("call %d: %q %v", i, term, err)
				return
			}
			if got, _ := res[0].AsString(); got != want {
				t.Errorf("cross-delivery: call %d got %q, want %q", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	if st := mgr.Stats(); st.Dials != 1 || st.Open != 1 {
		t.Errorf("manager stats = %+v, want 1 dial / 1 open", st)
	}
}

// TestPipelinedSessionDeathFailsAllInFlight parks 64 interrogations of one
// binding in a blocked servant, kills the session, and requires every one
// of them to fail with ErrDisconnected — none hang, none succeed.
func TestPipelinedSessionDeathFailsAllInFlight(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	slow := ifaceID(78)
	block := make(chan struct{})
	defer close(block)
	if err := env.server.Register(slow, nil, HandlerFunc(
		func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "OK", args, nil
		})); err != nil {
		t.Fatal(err)
	}
	mgr := NewSessionManager(env.net)
	b, err := Bind(naming.InterfaceRef{ID: slow, Endpoint: "sim://server"},
		BindConfig{Sessions: mgr, MaxInFlight: 64, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const calls = 64
	var started atomic.Int64
	errs := make(chan error, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Add(1)
			_, _, err := b.Invoke(context.Background(), "Sleep",
				[]values.Value{values.Str(fmt.Sprintf("c%d", i))})
			errs <- err
		}(i)
	}
	waitFor(t, func() bool { return started.Load() == calls })
	time.Sleep(20 * time.Millisecond) // let the frames reach the wire
	sess := mgr.peek("sim://server")
	if sess == nil {
		t.Fatal("no live session")
	}
	sess.kill(false)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight calls hung after session kill")
	}
	close(errs)
	n := 0
	for err := range errs {
		n++
		if !errors.Is(err, ErrDisconnected) {
			t.Errorf("in-flight call = %v, want ErrDisconnected", err)
		}
	}
	if n != calls {
		t.Errorf("resolved %d calls, want %d", n, calls)
	}
}

// TestMaxInFlightFailFast fills a 2-deep binding and requires the next
// Invoke to be rejected immediately with ErrTooManyInFlight — which must
// NOT satisfy errors.Is(err, ErrDisconnected), so the retry and
// relocation machinery never treats admission rejection as link failure.
func TestMaxInFlightFailFast(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	slow := ifaceID(79)
	block := make(chan struct{})
	defer close(block)
	var parked atomic.Int64
	if err := env.server.Register(slow, nil, HandlerFunc(
		func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
			parked.Add(1)
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "OK", args, nil
		})); err != nil {
		t.Fatal(err)
	}
	mgr := NewSessionManager(env.net)
	b, err := Bind(naming.InterfaceRef{ID: slow, Endpoint: "sim://server"},
		BindConfig{Sessions: mgr, MaxInFlight: 2, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := b.Invoke(context.Background(), "Sleep", nil); err != nil {
				t.Errorf("parked call: %v", err)
			}
		}()
	}
	waitFor(t, func() bool { return parked.Load() == 2 })

	_, _, err = b.Invoke(context.Background(), "Sleep", nil)
	if !errors.Is(err, ErrTooManyInFlight) {
		t.Fatalf("over-cap invoke = %v, want ErrTooManyInFlight", err)
	}
	if errors.Is(err, ErrDisconnected) {
		t.Fatal("ErrTooManyInFlight must not match ErrDisconnected")
	}
	block <- struct{}{}
	block <- struct{}{}
	wg.Wait()

	// With the slots free again the binding admits calls normally.
	go func() { block <- struct{}{} }()
	if _, _, err := b.Invoke(context.Background(), "Sleep", nil); err != nil {
		t.Fatalf("invoke after drain: %v", err)
	}
}

// TestMaxInFlightQueueMode exercises the default (queueing) admission
// policy: an over-cap Invoke waits for a slot instead of failing, and a
// cancelled context releases the waiter with ctx.Err().
func TestMaxInFlightQueueMode(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	slow := ifaceID(80)
	block := make(chan struct{})
	var parked atomic.Int64
	if err := env.server.Register(slow, nil, HandlerFunc(
		func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
			parked.Add(1)
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "OK", args, nil
		})); err != nil {
		t.Fatal(err)
	}
	mgr := NewSessionManager(env.net)
	b, err := Bind(naming.InterfaceRef{ID: slow, Endpoint: "sim://server"},
		BindConfig{Sessions: mgr, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	first := make(chan error, 1)
	go func() {
		_, _, err := b.Invoke(context.Background(), "Sleep", nil)
		first <- err
	}()
	waitFor(t, func() bool { return parked.Load() == 1 })

	// A queued waiter with a cancelled context gives up with ctx.Err()
	// without ever taking the slot.
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, _, err := b.Invoke(ctx, "Sleep", nil)
		queued <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it park on the semaphore
	cancel()
	select {
	case err := <-queued:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter hung on the in-flight semaphore")
	}

	// A patient waiter runs once the slot frees.
	second := make(chan error, 1)
	go func() {
		_, _, err := b.Invoke(context.Background(), "Sleep", nil)
		second <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(block) // unblock everything from here on
	if err := <-first; err != nil {
		t.Fatalf("first call: %v", err)
	}
	select {
	case err := <-second:
		if err != nil {
			t.Fatalf("queued call: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued call never admitted after slot freed")
	}
}

// TestOneWayQueuedCounter sends announcements, flow elements and signals
// through the batched plane and checks BindingStats.OneWayQueued counts
// every frame handed to the send queue.
func TestOneWayQueuedCounter(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	mgr := NewSessionManager(env.net)
	b, err := Bind(env.ref, BindConfig{Sessions: mgr, Type: echoType()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const announces = 5
	for i := 0; i < announces; i++ {
		if err := b.Announce(context.Background(), "Notify", []values.Value{values.Str("x")}); err != nil {
			t.Fatalf("announce %d: %v", i, err)
		}
	}
	if got := b.Stats().OneWayQueued; got != announces {
		t.Errorf("OneWayQueued = %d, want %d", got, announces)
	}
}

// TestErrSessionClosingMatchesDisconnected pins the satellite contract:
// the typed queue-teardown error participates in every existing
// errors.Is(err, ErrDisconnected) retry decision.
func TestErrSessionClosingMatchesDisconnected(t *testing.T) {
	if !errors.Is(ErrSessionClosing, ErrDisconnected) {
		t.Fatal("ErrSessionClosing must wrap ErrDisconnected")
	}
	wrapped := fmt.Errorf("send: %w", ErrSessionClosing)
	if !errors.Is(wrapped, ErrSessionClosing) || !errors.Is(wrapped, ErrDisconnected) {
		t.Fatal("wrapped ErrSessionClosing lost sentinel identity")
	}
}
