package channel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

// Handler is the application-facing side of a servant: the server stub
// unmarshals a call, type-checks it against the interface type, and hands
// it to the Handler, which returns a termination name and its results.
type Handler interface {
	Invoke(ctx context.Context, op string, args []values.Value) (termination string, results []values.Value, err error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error)

// Invoke implements Handler.
func (f HandlerFunc) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	return f(ctx, op, args)
}

// FlowReceiver is implemented by servants that accept stream flows.
type FlowReceiver interface {
	Flow(flow string, elem values.Value)
}

// SignalReceiver is implemented by servants that accept raw signals.
type SignalReceiver interface {
	Signal(name string, args []values.Value)
}

// ServerConfig configures the server end of a channel.
type ServerConfig struct {
	// Stages are this end's stub/binder components; on inbound requests
	// they run innermost-first (mirror of the client pipeline).
	Stages []Stage
	// ReplayGuard enables the binder's capture-and-replay defence
	// (tutorial Section 6.1): duplicate calls are answered from a bounded
	// reply cache, and regressed correlation ids are rejected.
	ReplayGuard bool
	// ReplyCacheSize bounds the per-binding reply cache (default 128).
	ReplyCacheSize int
	// MaxGuardBindings bounds how many bindings the replay guard tracks
	// (default 1024). When full, the oldest binding's state is evicted, so
	// a flood of fresh binding ids cannot grow the guard without bound.
	MaxGuardBindings int
	// HandlerTimeout bounds servant execution per call (default: none).
	HandlerTimeout time.Duration
	// Workers bounds how many servant executions run concurrently
	// (default GOMAXPROCS*4). Calls and announcements are dispatched to a
	// fixed pool of worker goroutines instead of one goroutine per
	// message; when the pool's queue is full the message executes inline
	// on the connection's read loop, so every message is still handled
	// and backpressure reaches the transport naturally.
	Workers int
	// Unbatched disables the per-connection reply writer: replies go
	// straight to the connection, one write per frame. The batched writer
	// is the default — concurrent handlers answering calls from one
	// session coalesce their replies into vectored writes, mirroring the
	// client's batched send path. This switch is the measured baseline for
	// E12 and an escape hatch.
	Unbatched bool
	// SendQueueBytes and MaxBatchBytes bound the per-connection reply
	// writer exactly as SessionConfig bounds the client's (zero = same
	// defaults).
	SendQueueBytes int
	MaxBatchBytes  int
	// Instruments enables management instrumentation of this channel end:
	// dispatch spans (parented under the caller's trace extension, when
	// present) and dispatch metrics. Nil disables it.
	Instruments *mgmt.ChannelServerInstruments
}

// ServerStats counts channel events at the server end.
type ServerStats struct {
	Calls     uint64
	OneWays   uint64
	Flows     uint64
	Signals   uint64
	Errors    uint64
	Replays   uint64
	BadFrames uint64
	// FlowTypeErrors counts inbound flow traffic (FlowMsg and FlowBatch)
	// rejected by the server stub's type machinery: unknown flow name,
	// element failing the flow's element type, a servant that cannot
	// receive flows, or a malformed element count. Historically these were
	// folded into Errors and silently dropped; the dedicated counter lets
	// chaos runs assert it stayed zero.
	FlowTypeErrors uint64
	// FlowBatches counts FlowBatch frames accepted (open/elems/close) and
	// CreditGrants counts credit grants sent back to producers.
	FlowBatches  uint64
	CreditGrants uint64
	// Sessions counts connections accepted over the server's lifetime.
	// Each accepted conn is one inbound session carrying any number of
	// bindings, so with session-sharing clients this stays O(peer nodes)
	// while Calls grows O(bindings × calls).
	Sessions uint64
}

type servantEntry struct {
	typ     *types.Interface
	handler Handler
}

// Server is the server end of engineering channels at one endpoint: it
// accepts connections, runs the inbound pipeline and dispatches calls to
// registered servants by interface identity.
type Server struct {
	cfg      ServerConfig
	listener netsim.Listener

	mu         sync.RWMutex
	servants   map[naming.InterfaceID]*servantEntry
	guards     map[uint64]*bindingGuard
	guardOrder []uint64 // binding ids in creation order, for eviction
	conns      map[netsim.Conn]struct{}
	closed     bool

	wg       sync.WaitGroup
	tasks    chan task
	workerWG sync.WaitGroup

	calls          atomic.Uint64
	oneWays        atomic.Uint64
	flows          atomic.Uint64
	signals        atomic.Uint64
	errCount       atomic.Uint64
	replays        atomic.Uint64
	badFrames      atomic.Uint64
	sessions       atomic.Uint64
	flowTypeErrors atomic.Uint64
	flowBatches    atomic.Uint64
	creditGrants   atomic.Uint64
}

// NewServer wraps a listener. Call Start to begin accepting.
func NewServer(l netsim.Listener, cfg ServerConfig) *Server {
	if cfg.ReplyCacheSize <= 0 {
		cfg.ReplyCacheSize = 128
	}
	if cfg.MaxGuardBindings <= 0 {
		cfg.MaxGuardBindings = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0) * 4
	}
	return &Server{
		cfg:      cfg,
		listener: l,
		servants: make(map[naming.InterfaceID]*servantEntry),
		guards:   make(map[uint64]*bindingGuard),
		conns:    make(map[netsim.Conn]struct{}),
	}
}

// Endpoint returns the listener's endpoint.
func (s *Server) Endpoint() naming.Endpoint { return s.listener.Endpoint() }

// Register installs a servant for an interface. The interface type enables
// the server stub's type checking; pass nil to serve untyped.
func (s *Server) Register(id naming.InterfaceID, typ *types.Interface, h Handler) error {
	if h == nil {
		return fmt.Errorf("channel: nil handler for %s", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.servants[id]; exists {
		return fmt.Errorf("channel: interface %s already registered", id)
	}
	s.servants[id] = &servantEntry{typ: typ, handler: h}
	return nil
}

// Unregister removes a servant (e.g. when its cluster migrates away).
// Subsequent calls to the interface receive CodeNoSuchInterface, which is
// the signal that drives the client binder's relocation path.
func (s *Server) Unregister(id naming.InterfaceID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.servants, id)
}

// Start begins accepting connections; it returns immediately. Use Close to
// stop and wait for connection handlers to drain.
func (s *Server) Start() {
	s.tasks = make(chan task, s.cfg.Workers*4)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for t := range s.tasks {
				s.runTask(t)
			}
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := s.listener.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
}

// Close stops accepting, closes the listener and all live connections,
// and waits for in-flight handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]netsim.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	// All read loops have exited, so no more work can be queued; drain the
	// worker pool before reporting the server closed.
	if s.tasks != nil {
		close(s.tasks)
		s.workerWG.Wait()
	}
	return err
}

// task is one unit of servant work for the worker pool: a call (conn set)
// or an announcement (conn nil). A plain struct rather than a closure so
// dispatching allocates nothing. q is the connection's reply writer (nil
// when the server runs unbatched).
type task struct {
	conn netsim.Conn
	q    *frameQueue
	m    *wire.Message
}

func (s *Server) runTask(t task) {
	if t.conn != nil {
		s.handleCall(replyDest{conn: t.conn, q: t.q}, t.m)
	} else {
		s.handleOneWay(t.m)
	}
	// The request message is finished: handlers pass on operation names and
	// argument slices, never the Message itself, so it can be recycled.
	wire.PutMessage(t.m)
}

// dispatch hands work to the bounded pool, executing inline when the queue
// is full (or when Start was never called) so no message is ever lost.
func (s *Server) dispatch(t task) {
	if s.tasks == nil {
		s.runTask(t)
		return
	}
	select {
	case s.tasks <- t:
	default:
		s.runTask(t)
	}
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Calls:          s.calls.Load(),
		OneWays:        s.oneWays.Load(),
		Flows:          s.flows.Load(),
		Signals:        s.signals.Load(),
		Errors:         s.errCount.Load(),
		Replays:        s.replays.Load(),
		BadFrames:      s.badFrames.Load(),
		Sessions:       s.sessions.Load(),
		FlowTypeErrors: s.flowTypeErrors.Load(),
		FlowBatches:    s.flowBatches.Load(),
		CreditGrants:   s.creditGrants.Load(),
	}
}

func (s *Server) serveConn(conn netsim.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.sessions.Add(1)
	if ins := s.cfg.Instruments; ins != nil {
		ins.SessionsTotal.Inc()
		ins.SessionsOpen.Add(1)
	}
	// The connection's reply writer: worker-pool handlers answering calls
	// from this session enqueue here, so concurrent replies coalesce into
	// vectored writes exactly as the client's concurrent calls did on the
	// way in.
	dest := replyDest{conn: conn}
	if !s.cfg.Unbatched {
		var bi batchInstruments
		if ins := s.cfg.Instruments; ins != nil {
			bi = batchInstruments{
				framesPerWrite: ins.ReplyFramesPerWrite,
				batchBytes:     ins.ReplyBatchBytes,
				queueDepth:     ins.ReplyQueueDepth,
			}
		}
		dest.q = newFrameQueue(conn, s.cfg.SendQueueBytes, s.cfg.MaxBatchBytes, bi,
			func(error) { conn.Close() }) // a dead writer wakes the read loop
	}
	// The conn is one inbound session: the distinct binding ids seen on it
	// are its multiplexed bindings. Only this read loop touches the set.
	bindings := make(map[uint64]struct{})
	// Open flow streams carried by this conn, keyed by (binding, stream).
	// Only the read loop touches the map; the grant closures inside escape
	// to consumer goroutines but go through the thread-safe reply writer.
	streams := make(map[pendKey]*streamState)
	defer func() {
		// Streams die with their connection: tell each receiver so blocked
		// consumers wake with the disconnection instead of waiting for an
		// end-of-stream that cannot arrive.
		for key, st := range streams {
			st.recv.StreamBatch(StreamBatch{
				Phase:   StreamClose,
				Binding: key.binding,
				Stream:  key.correl,
				Flow:    st.flow,
				Err:     ErrDisconnected,
			})
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if dest.q != nil {
			// Drain accepted replies (handlers still running will see
			// ErrSessionClosing and drop theirs, as a dead conn always did).
			dest.q.close()
		}
		conn.Close()
		if ins := s.cfg.Instruments; ins != nil {
			ins.SessionsOpen.Add(-1)
			ins.BindingsPerSession.Observe(uint64(len(bindings)))
		}
	}()
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		m, err := wire.Decode(frame)
		// Decode copies every escaping payload out of the frame, so the
		// buffer can be recycled immediately, whatever the outcome.
		wire.PutFrame(frame)
		if err != nil {
			s.badFrames.Add(1)
			if ins := s.cfg.Instruments; ins != nil {
				ins.BadFrames.Inc()
			}
			continue
		}
		if m.BindingID != 0 {
			bindings[m.BindingID] = struct{}{}
		}
		if err := runStages(s.cfg.Stages, Inbound, m); err != nil {
			s.errCount.Add(1)
			if m.Kind == wire.Call {
				s.sendErr(dest, m, stageCode(err), err.Error())
			}
			wire.PutMessage(m)
			continue
		}
		switch m.Kind {
		case wire.Probe:
			ack := wire.GetMessage()
			ack.Kind = wire.ProbeAck
			ack.BindingID = m.BindingID
			ack.Correlation = m.Correlation
			ack.Target = m.Target
			s.reply(dest, m, ack)
			wire.PutMessage(ack)
			wire.PutMessage(m)
		case wire.Call:
			s.calls.Add(1)
			if s.cfg.ReplayGuard {
				switch verdict, cached := s.guardCheck(m); verdict {
				case guardReplayCached:
					// The cached frame stays owned by the reply cache.
					dest.put(cached, false)
					s.replays.Add(1)
					wire.PutMessage(m)
					continue
				case guardReplayReject:
					s.replays.Add(1)
					s.sendErr(dest, m, CodeReplay, "correlation id regressed")
					wire.PutMessage(m)
					continue
				case guardInFlight:
					s.replays.Add(1)
					wire.PutMessage(m)
					continue // original execution will answer
				}
			}
			s.dispatch(task{conn: conn, q: dest.q, m: m})
		case wire.OneWay:
			s.oneWays.Add(1)
			s.dispatch(task{m: m})
		case wire.FlowMsg:
			s.flows.Add(1)
			s.handleFlow(m)
			wire.PutMessage(m)
		case wire.FlowBatch:
			// Handled inline on the read loop, never the worker pool: wire
			// order on the conn IS per-flow FIFO order, and the credit
			// window guarantees the receiver's bounded buffer can absorb
			// the batch without blocking, so inline delivery is safe.
			s.flowBatches.Add(1)
			s.handleFlowBatch(dest, streams, m)
			wire.PutMessage(m)
		case wire.SignalMsg:
			s.signals.Add(1)
			s.handleSignal(m)
			wire.PutMessage(m)
		default:
			s.badFrames.Add(1)
			wire.PutMessage(m)
		}
	}
}

func stageCode(err error) string {
	var se *StageError
	if errors.As(err, &se) {
		return se.Code
	}
	return CodeInternal
}

func (s *Server) lookup(id naming.InterfaceID) (*servantEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.servants[id]
	return e, ok
}

func (s *Server) handleCall(dest replyDest, m *wire.Message) {
	e, ok := s.lookup(m.Target)
	if !ok {
		s.sendErr(dest, m, CodeNoSuchInterface, m.Target.String())
		return
	}
	var decl types.Operation
	if e.typ != nil {
		decl, ok = e.typ.Operation(m.Operation)
		if !ok {
			s.sendErr(dest, m, CodeNoSuchOperation, m.Operation)
			return
		}
		if err := checkArgs(decl, m.Args); err != nil {
			s.sendErr(dest, m, CodeBadArgs, err.Error())
			return
		}
	}
	ctx := context.Background()
	if s.cfg.HandlerTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.HandlerTimeout)
		defer cancel()
	}
	ins := s.cfg.Instruments
	var sp *mgmt.ActiveSpan
	if ins != nil {
		ins.Dispatches.Inc()
		// Parent under the caller's transport span when the frame carried a
		// trace extension; an untraced caller still gets a local root span.
		ctx, sp = ins.Tracer.StartRemote(ctx, "dispatch:"+m.Operation,
			mgmt.SpanContext{Trace: mgmt.TraceID(m.TraceID), Span: mgmt.SpanID(m.SpanID)})
	}
	term, results, err := e.handler.Invoke(ctx, m.Operation, m.Args)
	if ins != nil {
		sp.Fail(err)
		ins.DispatchLatency.ObserveDuration(sp.End())
	}
	if err != nil {
		// Handlers may return a *StageError to control the code (e.g. an
		// activator wrapper reporting a deactivated cluster).
		s.sendErr(dest, m, stageCode(err), err.Error())
		return
	}
	if e.typ != nil && !decl.IsAnnouncement() {
		if err := checkTermination(decl, term, results); err != nil {
			// The servant itself violated its declared type: a server bug,
			// reported as internal rather than leaking the bad payload.
			s.sendErr(dest, m, CodeInternal, err.Error())
			return
		}
	}
	rm := wire.GetMessage()
	rm.Kind = wire.Reply
	rm.BindingID = m.BindingID
	rm.Correlation = m.Correlation
	rm.Target = m.Target
	rm.Operation = m.Operation
	rm.Termination = term
	rm.Args = results
	s.reply(dest, m, rm)
	wire.PutMessage(rm)
}

func (s *Server) handleOneWay(m *wire.Message) {
	e, ok := s.lookup(m.Target)
	if !ok {
		return // announcements have no failure path back
	}
	if e.typ != nil {
		decl, ok := e.typ.Operation(m.Operation)
		if !ok || !decl.IsAnnouncement() {
			s.errCount.Add(1)
			return
		}
		if err := checkArgs(decl, m.Args); err != nil {
			s.errCount.Add(1)
			return
		}
	}
	ctx := context.Background()
	if s.cfg.HandlerTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.HandlerTimeout)
		defer cancel()
	}
	if _, _, err := e.handler.Invoke(ctx, m.Operation, m.Args); err != nil {
		s.errCount.Add(1)
	}
}

// flowTypeError records one flow interaction the server stub rejected on
// type grounds. It still counts toward Errors (the historical behaviour)
// but also the dedicated FlowTypeErrors counter and mgmt metric, so a
// chaos run can assert no element was silently dropped for type reasons.
func (s *Server) flowTypeError() {
	s.errCount.Add(1)
	s.flowTypeErrors.Add(1)
	if ins := s.cfg.Instruments; ins != nil {
		ins.FlowTypeErrors.Inc()
	}
}

func (s *Server) handleFlow(m *wire.Message) {
	e, ok := s.lookup(m.Target)
	if !ok {
		s.errCount.Add(1) // unknown interface: a routing miss, not a type error
		return
	}
	if len(m.Args) != 1 {
		s.flowTypeError()
		return
	}
	if e.typ != nil {
		f, ok := e.typ.Flow(m.Operation)
		if !ok {
			s.flowTypeError()
			return
		}
		if err := f.Elem.Check(m.Args[0]); err != nil {
			s.flowTypeError()
			return
		}
	}
	if fr, ok := e.handler.(FlowReceiver); ok {
		fr.Flow(m.Operation, m.Args[0])
		return
	}
	s.flowTypeError()
}

// streamState is the read loop's record of one open flow stream on a
// connection.
type streamState struct {
	flow     string
	recv     StreamReceiver
	elemType *values.DataType // nil when the servant is untyped
	grant    func(cumElems, cumBytes uint64)
}

// handleFlowBatch processes one FlowBatch frame inline on the conn's read
// loop: opens record the stream and hand the receiver its grant function,
// element batches are type-checked (mistyped elements are dropped but
// reported, so the consumer can still credit them back — the producer
// already debited its window for them), and end-of-stream tears the
// record down.
func (s *Server) handleFlowBatch(dest replyDest, streams map[pendKey]*streamState, m *wire.Message) {
	key := pendKey{m.BindingID, m.Correlation}
	switch m.Termination {
	case wire.StreamOpenMark:
		e, ok := s.lookup(m.Target)
		if !ok {
			s.errCount.Add(1)
			return
		}
		recv, ok := e.handler.(StreamReceiver)
		if !ok {
			s.flowTypeError()
			return
		}
		var elemType *values.DataType
		if e.typ != nil {
			f, ok := e.typ.Flow(m.Operation)
			if !ok {
				s.flowTypeError()
				return
			}
			elemType = f.Elem
		}
		// The grant closure captures the conn's reply writer (thread-safe),
		// the stream's wire coordinates and the producer's codec, so the
		// consumer can grant from any goroutine for the conn's lifetime.
		binding, stream, codecID := m.BindingID, m.Correlation, m.Codec
		grant := func(cumElems, cumBytes uint64) {
			s.sendGrant(dest, binding, stream, codecID, cumElems, cumBytes)
		}
		st := &streamState{flow: m.Operation, recv: recv, elemType: elemType, grant: grant}
		streams[key] = st
		recv.StreamBatch(StreamBatch{
			Phase:   StreamOpen,
			Binding: binding,
			Stream:  stream,
			Flow:    m.Operation,
			Grant:   grant,
		})
	case wire.StreamEOSMark:
		st, ok := streams[key]
		if !ok {
			return // close of an unopened (or refused) stream: nothing to do
		}
		delete(streams, key)
		st.recv.StreamBatch(StreamBatch{
			Phase:   StreamClose,
			Binding: key.binding,
			Stream:  key.correl,
			Flow:    st.flow,
			Seq:     m.Seq,
		})
	default:
		st, ok := streams[key]
		if !ok {
			// Elements for a stream the server never opened (refused open,
			// or a protocol bug): there is no receiver to credit them, so
			// they are dropped and counted.
			s.errCount.Add(1)
			return
		}
		elems := m.Args
		var dropped, droppedBytes uint64
		if st.elemType != nil {
			kept := elems[:0]
			for _, v := range elems {
				if err := st.elemType.Check(v); err != nil {
					dropped++
					droppedBytes += uint64(wire.ValueSizeHint(v))
					s.flowTypeError()
					continue
				}
				kept = append(kept, v)
			}
			elems = kept
		}
		st.recv.StreamBatch(StreamBatch{
			Phase:        StreamElems,
			Binding:      key.binding,
			Stream:       key.correl,
			Flow:         st.flow,
			Seq:          m.Seq,
			Elems:        elems,
			DroppedElems: dropped,
			DroppedBytes: droppedBytes,
			Grant:        st.grant,
		})
	}
}

// sendGrant transmits one credit grant on a connection's reply path. The
// grant is a bare header — stream id in Correlation, cumulative element
// credit in Seq, cumulative byte credit in Epoch — encoded with the
// producer's own codec.
func (s *Server) sendGrant(dest replyDest, binding, stream uint64, codecID wire.CodecID, cumElems, cumBytes uint64) {
	s.creditGrants.Add(1)
	m := wire.GetMessage()
	m.Kind = wire.CreditGrant
	m.BindingID = binding
	m.Correlation = stream
	m.Seq = cumElems
	m.Epoch = cumBytes
	codec, err := wire.ByID(codecID)
	if err != nil {
		codec = wire.Canonical
	}
	frame, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), codec)
	wire.PutMessage(m)
	if err != nil {
		s.errCount.Add(1)
		wire.PutFrame(frame)
		return
	}
	dest.put(frame, true)
}

func (s *Server) handleSignal(m *wire.Message) {
	e, ok := s.lookup(m.Target)
	if !ok {
		s.errCount.Add(1)
		return
	}
	if sr, ok := e.handler.(SignalReceiver); ok {
		sr.Signal(m.Operation, m.Args)
		return
	}
	s.errCount.Add(1)
}

func checkArgs(decl types.Operation, args []values.Value) error {
	if len(args) != len(decl.Params) {
		return fmt.Errorf("operation %s expects %d args, got %d", decl.Name, len(decl.Params), len(args))
	}
	for i, p := range decl.Params {
		if err := p.Type.Check(args[i]); err != nil {
			return fmt.Errorf("arg %q: %v", p.Name, err)
		}
	}
	return nil
}

func checkTermination(decl types.Operation, term string, results []values.Value) error {
	t, ok := decl.Termination(term)
	if !ok {
		return fmt.Errorf("operation %s has no termination %q", decl.Name, term)
	}
	if len(results) != len(t.Results) {
		return fmt.Errorf("termination %q expects %d results, got %d", term, len(t.Results), len(results))
	}
	for i, r := range t.Results {
		if err := r.Type.Check(results[i]); err != nil {
			return fmt.Errorf("termination %q result %q: %v", term, r.Name, err)
		}
	}
	return nil
}

// replyDest is where one connection's outbound frames go: through the
// connection's batched reply writer when it has one, straight to the
// connection otherwise.
type replyDest struct {
	conn netsim.Conn
	q    *frameQueue
}

// put transmits one frame, best-effort — a dead conn fails the client's
// call by timeout, exactly as before. own marks the frame as the send
// path's to recycle (false when the replay-guard cache retains it).
func (d replyDest) put(frame []byte, own bool) {
	if d.q != nil {
		_ = d.q.enqueue(frame, own)
		return
	}
	_ = d.conn.Send(frame)
	if own {
		// Send does not keep a reference past return, so the buffer can go
		// back to the pool unless the replay cache holds it.
		wire.PutFrame(frame)
	}
}

func (s *Server) sendErr(dest replyDest, req *wire.Message, code, detail string) {
	s.errCount.Add(1)
	if ins := s.cfg.Instruments; ins != nil {
		ins.Errors.Inc()
	}
	rm := wire.GetMessage()
	rm.Kind = wire.ErrReply
	rm.BindingID = req.BindingID
	rm.Correlation = req.Correlation
	rm.Target = req.Target
	rm.Operation = req.Operation
	rm.Termination = code
	rm.Args = []values.Value{values.Str(detail)}
	s.reply(dest, req, rm)
	wire.PutMessage(rm)
}

// reply runs the outbound pipeline, mirrors the request codec and sends,
// recording the frame in the replay guard's reply cache when enabled.
func (s *Server) reply(dest replyDest, req, m *wire.Message) {
	if err := runStages(s.cfg.Stages, Outbound, m); err != nil {
		s.errCount.Add(1)
		return
	}
	codec, err := wire.ByID(req.Codec)
	if err != nil {
		codec = wire.Canonical
	}
	frame, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), codec)
	if err != nil {
		s.errCount.Add(1)
		wire.PutFrame(frame)
		return
	}
	retained := false
	if s.cfg.ReplayGuard && req.Kind == wire.Call {
		retained = s.guardStore(req, frame)
	}
	dest.put(frame, !retained)
}

// ---------------------------------------------------------------------------
// replay guard (binder): at-most-once execution per (binding, correlation)

type guardVerdict int

const (
	guardFresh guardVerdict = iota
	guardInFlight
	guardReplayCached
	guardReplayReject
)

type bindingGuard struct {
	maxSeen uint64
	replies map[uint64][]byte // correlation -> cached reply frame (nil = in flight)
	order   []uint64          // FIFO for eviction
}

func (s *Server) guardCheck(m *wire.Message) (guardVerdict, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.guards[m.BindingID]
	if !ok {
		// Bound the number of tracked bindings: evict oldest-first so a
		// flood of fresh binding ids cannot grow the guard without bound.
		for len(s.guards) >= s.cfg.MaxGuardBindings && len(s.guardOrder) > 0 {
			evict := s.guardOrder[0]
			s.guardOrder = s.guardOrder[1:]
			delete(s.guards, evict)
		}
		g = &bindingGuard{replies: make(map[uint64][]byte)}
		s.guards[m.BindingID] = g
		s.guardOrder = append(s.guardOrder, m.BindingID)
	}
	if frame, seen := g.replies[m.Correlation]; seen {
		if frame == nil {
			return guardInFlight, nil
		}
		return guardReplayCached, frame
	}
	if m.Correlation <= g.maxSeen {
		// Already seen and evicted (or forged out of order): reject rather
		// than re-execute — this is the capture-and-replay defence.
		return guardReplayReject, nil
	}
	g.maxSeen = m.Correlation
	g.replies[m.Correlation] = nil // mark in flight
	g.order = append(g.order, m.Correlation)
	for len(g.order) > s.cfg.ReplyCacheSize {
		evict := g.order[0]
		g.order = g.order[1:]
		delete(g.replies, evict)
	}
	return guardFresh, nil
}

// guardStore records the reply frame for replay answering. It reports
// whether the frame was retained: a retained frame is owned by the cache
// and must not be recycled by the caller.
func (s *Server) guardStore(req *wire.Message, frame []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.guards[req.BindingID]
	if !ok {
		return false
	}
	if _, tracked := g.replies[req.Correlation]; tracked {
		g.replies[req.Correlation] = frame
		return true
	}
	return false
}
