package channel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/values"
	"repro/internal/wire"
)

// sharedEnv builds a server plus a shared SessionManager and n bindings
// to the same echo interface over it.
func sharedEnv(t *testing.T, scfg ServerConfig, n int, cfg BindConfig) (*testEnv, *SessionManager, []*Binding) {
	t.Helper()
	env := newEnv(t, scfg)
	mgr := NewSessionManager(env.net)
	bindings := make([]*Binding, n)
	for i := range bindings {
		c := cfg
		c.Sessions = mgr
		b, err := Bind(env.ref, c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		bindings[i] = b
	}
	return env, mgr, bindings
}

func TestSharedSessionSingleConn(t *testing.T) {
	// 8 bindings over one manager: one dial, one server-side session, and
	// concurrent interrogations demux by (BindingID, Correlation) with no
	// cross-delivery.
	env, mgr, bindings := sharedEnv(t, ServerConfig{}, 8, BindConfig{Type: echoType()})
	var wg sync.WaitGroup
	for i, b := range bindings {
		wg.Add(1)
		go func(i int, b *Binding) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				want := fmt.Sprintf("b%d-c%d", i, j)
				term, res, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str(want)})
				if err != nil || term != "OK" {
					t.Errorf("binding %d: %q %v", i, term, err)
					return
				}
				if got, _ := res[0].AsString(); got != want {
					t.Errorf("cross-delivery: binding %d got %q, want %q", i, got, want)
					return
				}
			}
		}(i, b)
	}
	wg.Wait()
	if st := mgr.Stats(); st.Dials != 1 || st.Open != 1 {
		t.Errorf("manager stats = %+v, want 1 dial / 1 open", st)
	}
	if st := env.server.Stats(); st.Sessions != 1 {
		t.Errorf("server sessions = %d, want 1 (8 bindings, one conn)", st.Sessions)
	}
	// Reference counting: closing 7 bindings keeps the session; the last
	// one out closes it.
	for _, b := range bindings[:7] {
		b.Close()
	}
	if st := mgr.Stats(); st.Open != 1 {
		t.Errorf("open after 7 closes = %d, want 1", st.Open)
	}
	bindings[7].Close()
	waitFor(t, func() bool { return mgr.Stats().Open == 0 })
}

func TestSessionKillMidFlightFailsAllPending(t *testing.T) {
	// Concurrent Invokes across 8 bindings sharing one session while the
	// session is killed mid-flight: every pending call fails with
	// ErrDisconnected — none hang, none receive another call's reply.
	env := newEnv(t, ServerConfig{})
	slow := ifaceID(77)
	block := make(chan struct{})
	if err := env.server.Register(slow, nil, HandlerFunc(
		func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "OK", args, nil
		})); err != nil {
		t.Fatal(err)
	}
	mgr := NewSessionManager(env.net)
	const nb = 8
	bindings := make([]*Binding, nb)
	for i := range bindings {
		b, err := Bind(naming.InterfaceRef{ID: slow, Endpoint: "sim://server"},
			BindConfig{Sessions: mgr, MaxRetries: 0})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		bindings[i] = b
	}

	var inflight atomic.Int64
	errs := make(chan error, nb*2)
	var wg sync.WaitGroup
	for i, b := range bindings {
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func(i, j int, b *Binding) {
				defer wg.Done()
				inflight.Add(1)
				_, _, err := b.Invoke(context.Background(), "Sleep",
					[]values.Value{values.Str(fmt.Sprintf("b%d-c%d", i, j))})
				errs <- err
			}(i, j, b)
		}
	}
	waitFor(t, func() bool { return inflight.Load() == nb*2 })
	time.Sleep(20 * time.Millisecond) // let the calls reach the wire
	sess := mgr.peek("sim://server")
	if sess == nil {
		t.Fatal("no live session")
	}
	sess.kill(false)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pending calls hung after session kill")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrDisconnected) {
			t.Errorf("pending call = %v, want ErrDisconnected", err)
		}
	}
	if st := mgr.Stats(); st.Deaths != 1 {
		t.Errorf("deaths = %d, want 1 shared failover", st.Deaths)
	}
	// The shared failure detector does not wedge the manager: the next
	// invocation redials one fresh session for everyone.
	close(block) // let the handler answer promptly from here on
	if _, _, err := bindings[0].Invoke(context.Background(), "Sleep", nil); err != nil {
		t.Fatalf("invoke after failover: %v", err)
	}
	if st := mgr.Stats(); st.Dials != 2 {
		t.Errorf("dials = %d, want 2 (one per session establishment)", st.Dials)
	}
	_ = env
}

func TestSessionCorruptFrameDoesNotStrandOthers(t *testing.T) {
	// A corrupt frame on a shared session fails only its own call (by
	// per-call timeout) and never strands or misroutes the other bindings'
	// pending calls.
	n := netsim.New(3)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A raw wire-speaking server: echoes every call, except that the
	// operation "bad" is answered with garbage bytes.
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					frame, err := conn.Recv()
					if err != nil {
						return
					}
					m, err := wire.Decode(frame)
					if err != nil {
						continue
					}
					if m.Operation == "bad" {
						_ = conn.Send([]byte{0xde, 0xad, 0xbe, 0xef})
						continue
					}
					rm := &wire.Message{
						Kind:        wire.Reply,
						BindingID:   m.BindingID,
						Correlation: m.Correlation,
						Target:      m.Target,
						Operation:   m.Operation,
						Termination: "OK",
						Args:        m.Args,
					}
					out, err := rm.Encode(wire.Canonical)
					if err != nil {
						continue
					}
					_ = conn.Send(out)
				}
			}()
		}
	}()

	mgr := NewSessionManager(n)
	const nb = 4
	bindings := make([]*Binding, nb)
	for i := range bindings {
		b, err := Bind(naming.InterfaceRef{ID: ifaceID(9), Endpoint: "sim://server"},
			BindConfig{Sessions: mgr, CallTimeout: 150 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		bindings[i] = b
	}

	var wg sync.WaitGroup
	// Binding 0 sends the poisoned call; the rest keep invoking while the
	// corrupt frame arrives and after.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := bindings[0].Invoke(context.Background(), "bad", nil)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("poisoned call = %v, want DeadlineExceeded", err)
		}
	}()
	for i, b := range bindings[1:] {
		wg.Add(1)
		go func(i int, b *Binding) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				want := fmt.Sprintf("ok-%d-%d", i, j)
				term, res, err := b.Invoke(context.Background(), "echo", []values.Value{values.Str(want)})
				if err != nil || term != "OK" {
					t.Errorf("sibling %d stranded: %q %v", i, term, err)
					return
				}
				if got, _ := res[0].AsString(); got != want {
					t.Errorf("sibling %d misrouted: got %q want %q", i, got, want)
					return
				}
			}
		}(i, b)
	}
	wg.Wait()
	if st := mgr.Stats(); st.Dials != 1 || st.Deaths != 0 {
		t.Errorf("manager stats = %+v: corrupt frame must not kill the session", st)
	}
	sess := mgr.peek("sim://server")
	if sess == nil {
		t.Fatal("session gone after corrupt frame")
	}
	if got := sess.badFrames.Load(); got != 1 {
		t.Errorf("badFrames = %d, want 1", got)
	}
}

func TestRelocationMovesWholeSessionUnderLoad(t *testing.T) {
	// 8 bindings share one session to server A while invoking under load;
	// the interface migrates to server B. Epoch fencing kills the stale
	// session once, every binding fails over, and the replay guard at B
	// sees no sequence regressions (no ERR_REPLAY terminations).
	n := netsim.New(4)
	mkServer := func(host string) (*Server, *echoServant) {
		l, err := n.Listen(naming.Endpoint("sim://" + host))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(l, ServerConfig{ReplayGuard: true})
		srv.Start()
		t.Cleanup(func() { srv.Close() })
		return srv, &echoServant{}
	}
	srvA, servantA := mkServer("alpha")
	srvB, servantB := mkServer("beta")

	loc := newFakeLocator()
	const nb = 8
	ids := make([]naming.InterfaceID, nb)
	for i := range ids {
		ids[i] = ifaceID(uint64(1000 + i))
		if err := srvA.Register(ids[i], nil, servantA); err != nil {
			t.Fatal(err)
		}
		loc.set(naming.InterfaceRef{ID: ids[i], Endpoint: "sim://alpha"})
	}

	mgr := NewSessionManager(n)
	bindings := make([]*Binding, nb)
	for i := range bindings {
		ref, _ := loc.Lookup(ids[i])
		b, err := Bind(ref, BindConfig{
			Sessions:    mgr,
			Locator:     loc,
			MaxRetries:  8,
			CallTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		bindings[i] = b
	}

	stop := make(chan struct{})
	var calls, replayErrs atomic.Uint64
	var wg sync.WaitGroup
	for i, b := range bindings {
		wg.Add(1)
		go func(i int, b *Binding) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				want := fmt.Sprintf("b%d-%d", i, j)
				term, res, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str(want)})
				if err != nil {
					if IsRemote(err, CodeReplay) {
						replayErrs.Add(1)
					}
					t.Errorf("binding %d call %d: %v", i, j, err)
					return
				}
				if got, _ := res[0].AsString(); term != "OK" || got != want {
					t.Errorf("binding %d: misrouted %q/%q", i, term, got)
					return
				}
				calls.Add(1)
			}
		}(i, b)
	}

	waitFor(t, func() bool { return calls.Load() > 50 })
	// Migrate: register everything at beta, publish the new epoch, then
	// withdraw from alpha (calls landing at alpha now draw
	// CodeNoSuchInterface, the relocation signal).
	for _, id := range ids {
		if err := srvB.Register(id, nil, servantB); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		loc.move(id, "sim://beta")
		srvA.Unregister(id)
	}
	// Let the fleet run on the new endpoint for a while.
	moved := calls.Load()
	waitFor(t, func() bool { return calls.Load() > moved+200 })
	close(stop)
	wg.Wait()

	if replayErrs.Load() != 0 {
		t.Errorf("replay guard rejections after migration = %d, want 0", replayErrs.Load())
	}
	if st := srvB.Stats(); st.Sessions != 1 {
		t.Errorf("server B sessions = %d, want 1 (whole fleet on one session)", st.Sessions)
	}
	if st := mgr.Stats(); st.Open != 1 {
		t.Errorf("manager open sessions = %d, want 1 after migration", st.Open)
	}
	for i, b := range bindings {
		if got := b.Ref().Endpoint; got != "sim://beta" {
			t.Errorf("binding %d still at %s", i, got)
		}
	}
}

func TestProbeSingleFlight(t *testing.T) {
	// 8 bindings probing concurrently cost one heartbeat on the wire; the
	// rest coalesce onto it, and every binding's stats surface the probe.
	n := netsim.New(5)
	lat := netsim.LinkProfile{Latency: 25 * time.Millisecond}
	n.SetLink("client", "server", lat)
	n.SetLink("server", "client", lat)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{})
	srv.Start()
	t.Cleanup(func() { srv.Close() })

	mgr := NewSessionManager(n)
	const nb = 8
	bindings := make([]*Binding, nb)
	for i := range bindings {
		b, err := Bind(naming.InterfaceRef{ID: ifaceID(1), Endpoint: "sim://server"},
			BindConfig{Sessions: mgr, CallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		bindings[i] = b
	}
	// Establish the session first so the probes race only each other, not
	// the single-flight dial.
	if err := bindings[0].Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := mgr.Stats()

	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, b := range bindings {
		wg.Add(1)
		go func(b *Binding) {
			defer wg.Done()
			<-start
			if err := b.Probe(context.Background()); err != nil {
				t.Errorf("probe: %v", err)
			}
		}(b)
	}
	close(start)
	wg.Wait()

	st := mgr.Stats()
	sent := st.ProbesSent - first.ProbesSent
	coalesced := st.ProbesCoalesced - first.ProbesCoalesced
	if sent != 1 || coalesced != nb-1 {
		t.Errorf("probes sent=%d coalesced=%d, want 1/%d (one heartbeat for the fleet)",
			sent, coalesced, nb-1)
	}
	for i, b := range bindings {
		if b.Stats().LastProbe.IsZero() {
			t.Errorf("binding %d LastProbe is zero after shared probe", i)
		}
	}
}

func TestSingleFlightDial(t *testing.T) {
	// All bindings racing to first use share one dial.
	env, mgr, bindings := sharedEnv(t, ServerConfig{}, 8, BindConfig{})
	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, b := range bindings {
		wg.Add(1)
		go func(b *Binding) {
			defer wg.Done()
			<-start
			if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}(b)
	}
	close(start)
	wg.Wait()
	if st := mgr.Stats(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1 (single-flight)", st.Dials)
	}
	if st := env.server.Stats(); st.Sessions != 1 {
		t.Errorf("server sessions = %d, want 1", st.Sessions)
	}
}
