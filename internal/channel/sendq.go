package channel

import (
	"fmt"
	"sync"

	"repro/internal/mgmt"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// This file is the batched send path shared by both channel ends: a
// bounded queue of encoded frames drained by one sender goroutine per
// connection into vectored writes. The batching is adaptive — the sender
// takes whatever is queued the moment it looks, so an isolated frame
// departs immediately (no delay timer) while concurrent senders coalesce
// into large writes under load — with MaxBatchBytes bounding a single
// write and the queue's byte bound providing backpressure to enqueuers.
// Client side the queue belongs to a Session (every binding multiplexed
// over the session shares it); server side each accepted connection gets
// one so concurrent replies to a session batch the same way.

// Default bounds for the batched send path. The queue bound is the
// backpressure point (enqueuers block when this many bytes are waiting);
// the batch bound caps one vectored write so a burst cannot form a
// multi-megabyte iovec.
const (
	defaultSendQueueBytes = 1 << 20
	defaultMaxBatchBytes  = 256 << 10
)

// batchInstruments are the nil-safe management hooks of one send queue.
type batchInstruments struct {
	framesPerWrite *mgmt.Histogram
	batchBytes     *mgmt.Histogram
	queueDepth     *mgmt.Gauge
}

// qframe is one queued frame. own marks frames the queue is responsible
// for recycling after the write (almost all of them); a frame retained
// elsewhere — the server's replay-guard reply cache — is queued with
// own=false so the cache keeps its buffer.
type qframe struct {
	frame []byte
	own   bool
}

// frameQueue is the bounded queue plus its sender goroutine. All fields
// below mu are guarded by it; scratch is touched only by the sender.
type frameQueue struct {
	conn          netsim.Conn
	batcher       netsim.BatchSender // nil when the transport has no vectored write
	flusher       netsim.Flusher     // nil when the transport does not coalesce
	maxQueueBytes int
	maxBatchBytes int
	onDead        func(error) // called once, off-lock, when a write fails
	ins           batchInstruments

	mu        sync.Mutex
	cond      *sync.Cond // space, drain and close transitions
	pend      []qframe
	pendBytes int
	spare     []qframe // recycled pend backing array
	writing   bool
	closed    bool
	err       error
	kick      chan struct{}
	done      chan struct{}

	deadOnce sync.Once

	scratch [][]byte // sender-only: the frame slice handed to SendBatch
}

func newFrameQueue(conn netsim.Conn, maxQueue, maxBatch int, ins batchInstruments, onDead func(error)) *frameQueue {
	if maxQueue <= 0 {
		maxQueue = defaultSendQueueBytes
	}
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatchBytes
	}
	q := &frameQueue{
		conn:          conn,
		maxQueueBytes: maxQueue,
		maxBatchBytes: maxBatch,
		onDead:        onDead,
		ins:           ins,
		kick:          make(chan struct{}, 1),
		done:          make(chan struct{}),
	}
	q.batcher, _ = conn.(netsim.BatchSender)
	q.flusher, _ = conn.(netsim.Flusher)
	q.cond = sync.NewCond(&q.mu)
	go q.senderLoop()
	return q
}

// enqueue hands one frame to the sender, taking ownership of it: the
// queue recycles the buffer after the write (or on failure) when own is
// true. Enqueue blocks while the queue is at its byte bound — that is the
// backpressure path — and fails with ErrSessionClosing once the queue has
// closed, or with the sender's sticky write error once the connection has
// failed; both match errors.Is(err, ErrDisconnected), so retry policy
// treats a frame lost to a mid-close race exactly like a broken wire.
func (q *frameQueue) enqueue(frame []byte, own bool) error {
	q.mu.Lock()
	for q.pendBytes >= q.maxQueueBytes && !q.closed && q.err == nil {
		q.cond.Wait()
	}
	if q.err != nil || q.closed {
		err := q.err
		q.mu.Unlock()
		if own {
			wire.PutFrame(frame)
		}
		if err != nil {
			return err
		}
		return ErrSessionClosing
	}
	q.pend = append(q.pend, qframe{frame: frame, own: own})
	q.pendBytes += len(frame)
	if q.ins.queueDepth != nil {
		q.ins.queueDepth.Add(1)
	}
	select {
	case q.kick <- struct{}{}:
	default: // sender already has a wakeup pending
	}
	q.mu.Unlock()
	return nil
}

// flush blocks until every frame accepted so far has been written (and,
// on a coalescing transport, pushed down to the socket), returning the
// sender's sticky error if the connection failed along the way.
func (q *frameQueue) flush() error {
	q.mu.Lock()
	for (len(q.pend) > 0 || q.writing) && q.err == nil && !q.closed {
		q.cond.Wait()
	}
	err := q.err
	drained := len(q.pend) == 0 && !q.writing
	q.mu.Unlock()
	if err != nil {
		return err
	}
	if !drained {
		// Closed mid-flush with frames still queued: the final drain may
		// still write them, but the connection is going away — report the
		// uncertainty as a retriable disconnect.
		return ErrSessionClosing
	}
	if q.flusher != nil {
		if ferr := q.flusher.Flush(); ferr != nil {
			return fmt.Errorf("%w: %v", ErrDisconnected, ferr)
		}
	}
	return nil
}

// close stops the queue and waits for the sender to exit. Frames already
// accepted are still written (best effort — on a dead connection the
// writes fail instantly and the buffers are recycled), so a graceful
// session teardown flushes its tail.
func (q *frameQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	close(q.kick) // enqueue kicks only under mu with closed==false
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.done
}

// senderLoop is the per-connection sender goroutine: the netchan-style
// drain loop. Each pass takes everything queued up to maxBatchBytes and
// writes it as one vectored batch; when the queue runs dry it flushes a
// coalescing transport so no frame waits on a timer.
func (q *frameQueue) senderLoop() {
	defer close(q.done)
	for range q.kick {
		q.drain()
	}
	// Queue closed: write whatever was accepted before the close.
	q.drain()
}

func (q *frameQueue) drain() {
	for {
		q.mu.Lock()
		if len(q.pend) == 0 || q.err != nil {
			if q.err != nil {
				q.dropLocked()
			}
			q.writing = false
			q.cond.Broadcast() // idle: wake flush waiters and blocked enqueuers
			q.mu.Unlock()
			return
		}
		// Take whatever is queued now, bounded by maxBatchBytes. The whole
		// slice swap is the common case; a byte-bound split leaves the tail
		// for the next pass.
		take := len(q.pend)
		bytes := 0
		for i := range q.pend {
			if i > 0 && bytes+len(q.pend[i].frame) > q.maxBatchBytes {
				take = i
				break
			}
			bytes += len(q.pend[i].frame)
		}
		var batch []qframe
		if take == len(q.pend) {
			batch = q.pend
			if q.spare != nil {
				q.pend = q.spare[:0]
				q.spare = nil
			} else {
				q.pend = nil
			}
		} else {
			// Byte-bound split: move the tail onto a fresh queue slice so
			// the batch owns its backing array exclusively — enqueuers
			// appending to pend while the write is in flight must never
			// touch the slots the sender is reading.
			var np []qframe
			if q.spare != nil {
				np = q.spare[:0]
				q.spare = nil
			}
			np = append(np, q.pend[take:]...)
			clear(q.pend[take:])
			batch = q.pend[:take]
			q.pend = np
		}
		q.pendBytes -= bytes
		q.writing = true
		if q.ins.queueDepth != nil {
			q.ins.queueDepth.Add(-int64(take))
		}
		q.cond.Broadcast() // space freed: wake enqueuers blocked on the bound
		q.mu.Unlock()

		err := q.write(batch, bytes)

		q.mu.Lock()
		if cap(batch) > 0 && q.spare == nil {
			q.spare = batch[:0]
		}
		if err != nil && q.err == nil {
			q.err = fmt.Errorf("%w: %v", ErrDisconnected, err)
		}
		q.mu.Unlock()
		if err != nil {
			q.deadOnce.Do(func() {
				if q.onDead != nil {
					q.onDead(err)
				}
			})
		}
	}
}

// dropLocked recycles everything still queued after a write error; the
// frames can never depart.
func (q *frameQueue) dropLocked() {
	for i := range q.pend {
		if q.pend[i].own {
			wire.PutFrame(q.pend[i].frame)
		}
		q.pend[i] = qframe{}
	}
	if q.ins.queueDepth != nil && len(q.pend) > 0 {
		q.ins.queueDepth.Add(-int64(len(q.pend)))
	}
	q.pend = q.pend[:0]
	q.pendBytes = 0
}

// write puts one batch on the wire — a single vectored write when the
// transport supports it — then recycles the owned frames.
func (q *frameQueue) write(batch []qframe, bytes int) error {
	q.scratch = q.scratch[:0]
	owned := 0
	for i := range batch {
		q.scratch = append(q.scratch, batch[i].frame)
		if batch[i].own {
			owned++
		}
	}
	var err error
	if q.batcher != nil && len(batch) > 1 {
		err = q.batcher.SendBatch(q.scratch)
	} else {
		for _, f := range q.scratch {
			if err = q.conn.Send(f); err != nil {
				break
			}
		}
	}
	if q.ins.framesPerWrite != nil {
		q.ins.framesPerWrite.Observe(uint64(len(batch)))
	}
	if q.ins.batchBytes != nil {
		q.ins.batchBytes.Observe(uint64(bytes))
	}
	if owned == len(batch) {
		wire.PutFrames(q.scratch) // recycles and nils every entry
	} else {
		for i := range batch {
			if batch[i].own {
				wire.PutFrame(batch[i].frame)
			}
		}
		clear(q.scratch)
	}
	for i := range batch {
		batch[i] = qframe{}
	}
	return err
}
