package channel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

func echoType() *types.Interface {
	return types.OpInterface("Echo",
		types.Op("Echo",
			types.Params(types.P("x", values.TString())),
			types.Term("OK", types.P("x", values.TString())),
		),
		types.Op("Add",
			types.Params(types.P("a", values.TInt()), types.P("b", values.TInt())),
			types.Term("OK", types.P("sum", values.TInt())),
			types.Term("Negative", types.P("reason", values.TString())),
		),
		types.Announce("Notify", types.P("msg", values.TString())),
	)
}

// echoServant implements Handler, FlowReceiver and SignalReceiver.
type echoServant struct {
	mu       sync.Mutex
	notified []string
	flows    []values.Value
	signals  []string
	invoked  int
}

func (e *echoServant) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	e.mu.Lock()
	e.invoked++
	e.mu.Unlock()
	switch op {
	case "Echo":
		return "OK", []values.Value{args[0]}, nil
	case "Add":
		a, _ := args[0].AsInt()
		b, _ := args[1].AsInt()
		if a+b < 0 {
			return "Negative", []values.Value{values.Str("sum is negative")}, nil
		}
		return "OK", []values.Value{values.Int(a + b)}, nil
	case "Notify":
		msg, _ := args[0].AsString()
		e.mu.Lock()
		e.notified = append(e.notified, msg)
		e.mu.Unlock()
		return "", nil, nil
	case "Boom":
		return "", nil, errors.New("servant exploded")
	case "BadTerm":
		return "Undeclared", nil, nil
	}
	return "", nil, fmt.Errorf("unhandled op %q", op)
}

func (e *echoServant) Flow(flow string, elem values.Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.flows = append(e.flows, elem)
}

func (e *echoServant) Signal(name string, _ []values.Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.signals = append(e.signals, name)
}

func (e *echoServant) invokedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.invoked
}

func ifaceID(nonce uint64) naming.InterfaceID {
	return naming.InterfaceID{
		Object: naming.ObjectID{
			Cluster: naming.ClusterID{Capsule: naming.CapsuleID{Node: "server", Seq: 0}, Seq: 0},
			Seq:     0,
		},
		Seq:   0,
		Nonce: nonce,
	}
}

type testEnv struct {
	net     *netsim.Network
	server  *Server
	servant *echoServant
	ref     naming.InterfaceRef
}

func newEnv(t *testing.T, scfg ServerConfig) *testEnv {
	t.Helper()
	n := netsim.New(1)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, scfg)
	servant := &echoServant{}
	id := ifaceID(42)
	if err := srv.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Close() })
	return &testEnv{
		net:     n,
		server:  srv,
		servant: servant,
		ref: naming.InterfaceRef{
			ID:       id,
			TypeName: "Echo",
			Endpoint: "sim://server",
		},
	}
}

func (e *testEnv) bind(t *testing.T, cfg BindConfig) *Binding {
	t.Helper()
	if cfg.Transport == nil {
		cfg.Transport = e.net
	}
	b, err := Bind(e.ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestInvokeRoundTrip(t *testing.T) {
	for _, codec := range []wire.Codec{wire.Canonical, wire.Native} {
		t.Run(codec.Name(), func(t *testing.T) {
			env := newEnv(t, ServerConfig{})
			b := env.bind(t, BindConfig{Codec: codec, Type: echoType()})
			term, res, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("hi")})
			if err != nil {
				t.Fatalf("Invoke: %v", err)
			}
			if term != "OK" || len(res) != 1 {
				t.Fatalf("term=%q res=%v", term, res)
			}
			if s, _ := res[0].AsString(); s != "hi" {
				t.Errorf("result = %v", res[0])
			}
		})
	}
}

func TestInvokeMultipleTerminations(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Type: echoType()})
	term, res, err := b.Invoke(context.Background(), "Add", []values.Value{values.Int(2), values.Int(3)})
	if err != nil || term != "OK" {
		t.Fatalf("Add = %q, %v, %v", term, res, err)
	}
	if sum, _ := res[0].AsInt(); sum != 5 {
		t.Errorf("sum = %v", res[0])
	}
	term, res, err = b.Invoke(context.Background(), "Add", []values.Value{values.Int(-7), values.Int(3)})
	if err != nil || term != "Negative" {
		t.Fatalf("Add = %q, %v, %v", term, res, err)
	}
}

func TestAnnouncement(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Type: echoType()})
	if err := b.Announce(context.Background(), "Notify", []values.Value{values.Str("ping")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		env.servant.mu.Lock()
		defer env.servant.mu.Unlock()
		return len(env.servant.notified) == 1 && env.servant.notified[0] == "ping"
	})
}

func TestClientTypeChecking(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Type: echoType()})
	ctx := context.Background()
	cases := []struct {
		name string
		call func() error
	}{
		{"unknown-op", func() error { _, _, err := b.Invoke(ctx, "Nope", nil); return err }},
		{"arity", func() error { _, _, err := b.Invoke(ctx, "Echo", nil); return err }},
		{"arg-type", func() error { _, _, err := b.Invoke(ctx, "Echo", []values.Value{values.Int(1)}); return err }},
		{"invoke-announcement", func() error {
			_, _, err := b.Invoke(ctx, "Notify", []values.Value{values.Str("x")})
			return err
		}},
		{"announce-interrogation", func() error {
			return b.Announce(ctx, "Echo", []values.Value{values.Str("x")})
		}},
		{"announce-unknown", func() error { return b.Announce(ctx, "Nope", nil) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.call(); !errors.Is(err, ErrTypeCheck) {
				t.Errorf("err = %v, want ErrTypeCheck", err)
			}
		})
	}
}

func TestServerTypeChecking(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	// Untyped client: bad interactions must be caught by the server stub.
	b := env.bind(t, BindConfig{})
	ctx := context.Background()

	if _, _, err := b.Invoke(ctx, "Nope", nil); !IsRemote(err, CodeNoSuchOperation) {
		t.Errorf("unknown op = %v", err)
	}
	if _, _, err := b.Invoke(ctx, "Echo", []values.Value{values.Int(3)}); !IsRemote(err, CodeBadArgs) {
		t.Errorf("bad arg = %v", err)
	}
	if _, _, err := b.Invoke(ctx, "Echo", nil); !IsRemote(err, CodeBadArgs) {
		t.Errorf("bad arity = %v", err)
	}
}

func TestUnknownInterface(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	ref := env.ref
	ref.ID.Nonce = 999 // right node, wrong interface
	b, err := Bind(ref, BindConfig{Transport: env.net})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); !IsRemote(err, CodeNoSuchInterface) {
		t.Errorf("err = %v", err)
	}
}

func TestServantError(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	// Register an untyped servant so "Boom" reaches application code.
	id := ifaceID(901)
	if err := env.server.Register(id, nil, &echoServant{}); err != nil {
		t.Fatal(err)
	}
	ref := naming.InterfaceRef{ID: id, Endpoint: "sim://server"}
	b, err := Bind(ref, BindConfig{Transport: env.net})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, _, err = b.Invoke(context.Background(), "Boom", nil)
	if !IsRemote(err, CodeInternal) {
		t.Fatalf("err = %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Detail, "servant exploded") {
		t.Errorf("detail = %v", err)
	}
}

func TestServerRejectsUndeclaredTermination(t *testing.T) {
	// The servant answers with a termination missing from the type: the
	// server stub must catch its own side's bug.
	n := netsim.New(1)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{})
	id := ifaceID(1)
	typ := types.OpInterface("T", types.Op("BadTerm", nil, types.Term("OK")))
	if err := srv.Register(id, typ, &echoServant{}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	b, err := Bind(naming.InterfaceRef{ID: id, TypeName: "T", Endpoint: "sim://server"},
		BindConfig{Transport: n})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, _, err := b.Invoke(context.Background(), "BadTerm", nil); !IsRemote(err, CodeInternal) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Type: echoType()})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				want := fmt.Sprintf("m-%d-%d", i, j)
				term, res, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str(want)})
				if err != nil || term != "OK" {
					t.Errorf("Invoke: %q %v", term, err)
					return
				}
				if got, _ := res[0].AsString(); got != want {
					t.Errorf("cross-talk: got %q, want %q", got, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := b.Stats(); st.Invocations != 16*25 {
		t.Errorf("invocations = %d", st.Invocations)
	}
}

func TestFlowsAndSignals(t *testing.T) {
	streamType := types.StreamInterface("S", types.FlowOf("video", types.Producer, values.TBytes()))
	n := netsim.New(1)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{})
	servant := &echoServant{}
	id := ifaceID(7)
	if err := srv.Register(id, streamType, servant); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	b, err := Bind(naming.InterfaceRef{ID: id, TypeName: "S", Endpoint: "sim://server"},
		BindConfig{Transport: n, Type: streamType})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := b.Flow(ctx, "video", values.BytesVal([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flow(ctx, "nope", values.BytesVal(nil)); !errors.Is(err, ErrTypeCheck) {
		t.Errorf("unknown flow = %v", err)
	}
	if err := b.Flow(ctx, "video", values.Str("wrong")); !errors.Is(err, ErrTypeCheck) {
		t.Errorf("mistyped flow = %v", err)
	}
	waitFor(t, func() bool {
		servant.mu.Lock()
		defer servant.mu.Unlock()
		return len(servant.flows) == 3
	})

	// Signals go through an untyped binding (the stream type declares no
	// signals, and a typed binding enforces that).
	ub, err := Bind(naming.InterfaceRef{ID: id, TypeName: "S", Endpoint: "sim://server"},
		BindConfig{Transport: n})
	if err != nil {
		t.Fatal(err)
	}
	defer ub.Close()
	if err := ub.Signal(ctx, "connect", nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		servant.mu.Lock()
		defer servant.mu.Unlock()
		return len(servant.signals) == 1
	})
}

func TestSignalTypeCheck(t *testing.T) {
	sigType := types.SignalInterface("G",
		types.Sig("connect", types.Request, types.P("addr", values.TString())))
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Type: sigType})
	ctx := context.Background()
	if err := b.Signal(ctx, "nope", nil); !errors.Is(err, ErrTypeCheck) {
		t.Errorf("unknown signal = %v", err)
	}
	if err := b.Signal(ctx, "connect", nil); !errors.Is(err, ErrTypeCheck) {
		t.Errorf("arity = %v", err)
	}
	if err := b.Signal(ctx, "connect", []values.Value{values.Int(1)}); !errors.Is(err, ErrTypeCheck) {
		t.Errorf("arg type = %v", err)
	}
	if err := b.Signal(ctx, "connect", []values.Value{values.Str("x")}); err != nil {
		t.Errorf("valid signal = %v", err)
	}
}

func TestProbe(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{})
	if err := b.Probe(context.Background()); err != nil {
		t.Fatalf("Probe: %v", err)
	}
}

func TestStagesTraversedBothEnds(t *testing.T) {
	clientStage := &CountingStage{Label: "client-binder"}
	serverStage := &CountingStage{Label: "server-binder"}
	env := newEnv(t, ServerConfig{Stages: []Stage{serverStage}})
	b := env.bind(t, BindConfig{Stages: []Stage{clientStage}})
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if clientStage.OutMsgs.Load() != 1 || clientStage.InMsgs.Load() != 1 {
		t.Errorf("client stage: out=%d in=%d", clientStage.OutMsgs.Load(), clientStage.InMsgs.Load())
	}
	if serverStage.InMsgs.Load() != 1 || serverStage.OutMsgs.Load() != 1 {
		t.Errorf("server stage: out=%d in=%d", serverStage.OutMsgs.Load(), serverStage.InMsgs.Load())
	}
}

func TestAuditStubRecordsOperations(t *testing.T) {
	audit := &MemoryAudit{}
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Stages: []Stage{&AuditStage{Sink: audit.Record}}})
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	entries := audit.Entries()
	if len(entries) != 2 {
		t.Fatalf("audit entries = %d, want 2 (call+reply)", len(entries))
	}
	if entries[0].Direction != Outbound || entries[0].Operation != "Echo" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Direction != Inbound || entries[1].Termination != "OK" {
		t.Errorf("entry 1 = %+v", entries[1])
	}
}

type rejectStage struct{ code string }

func (r *rejectStage) Name() string { return "reject" }
func (r *rejectStage) Process(dir Direction, m *wire.Message) error {
	if dir == Inbound && m.Kind == wire.Call {
		return &StageError{Code: r.code, Detail: "computer says no"}
	}
	return nil
}

func TestServerStageRejection(t *testing.T) {
	env := newEnv(t, ServerConfig{Stages: []Stage{&rejectStage{code: CodeAuth}}})
	b := env.bind(t, BindConfig{})
	_, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")})
	if !IsRemote(err, CodeAuth) {
		t.Errorf("err = %v", err)
	}
}

func TestRelocationTransparency(t *testing.T) {
	// Figure 4 + Section 9.2: the object moves, the binder re-resolves via
	// the relocator and replays; the client code never notices.
	n := netsim.New(1)
	reloc := newFakeLocator()

	l1, err := n.Listen("sim://home1")
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(l1, ServerConfig{})
	servant := &echoServant{}
	id := ifaceID(11)
	if err := srv1.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	defer srv1.Close()

	ref := naming.InterfaceRef{ID: id, TypeName: "Echo", Endpoint: "sim://home1"}
	reloc.set(ref)

	b, err := Bind(ref, BindConfig{Transport: n, Locator: reloc, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if _, _, err := b.Invoke(ctx, "Echo", []values.Value{values.Str("before")}); err != nil {
		t.Fatal(err)
	}

	// Relocate: start the new home, move the servant, update the relocator,
	// deregister at the old home.
	l2, err := n.Listen("sim://home2")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(l2, ServerConfig{})
	if err := srv2.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	defer srv2.Close()
	reloc.move(id, "sim://home2")
	srv1.Unregister(id)

	term, res, err := b.Invoke(ctx, "Echo", []values.Value{values.Str("after")})
	if err != nil {
		t.Fatalf("invoke after relocation: %v", err)
	}
	if s, _ := res[0].AsString(); term != "OK" || s != "after" {
		t.Errorf("reply = %q %v", term, res)
	}
	if st := b.Stats(); st.Relocations == 0 {
		t.Errorf("stats should count a relocation: %+v", st)
	}
	if b.Ref().Endpoint != "sim://home2" {
		t.Errorf("binding ref endpoint = %s", b.Ref().Endpoint)
	}

	// Also transparent when the old home is entirely gone (dial failure).
	reloc.move(id, "sim://home3")
	l3, err := n.Listen("sim://home3")
	if err != nil {
		t.Fatal(err)
	}
	srv3 := NewServer(l3, ServerConfig{})
	if err := srv3.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv3.Start()
	defer srv3.Close()
	srv2.Close()
	if _, _, err := b.Invoke(ctx, "Echo", []values.Value{values.Str("third")}); err != nil {
		t.Fatalf("invoke after second relocation: %v", err)
	}
}

func TestNoRelocationWithoutLocator(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	ref := env.ref
	ref.Endpoint = "sim://nowhere"
	b, err := Bind(ref, BindConfig{Transport: env.net})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); !errors.Is(err, ErrDisconnected) {
		t.Errorf("err = %v", err)
	}
}

func TestFailureTransparencyRetries(t *testing.T) {
	// A lossy link drops most frames; with retries the invocation still
	// succeeds, and the replay guard keeps execution at-most-once.
	n := netsim.New(1234)
	n.SetLink("client", "server", netsim.LinkProfile{DropRate: 0.5})
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{ReplayGuard: true})
	servant := &echoServant{}
	id := ifaceID(5)
	if err := srv.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	b, err := Bind(naming.InterfaceRef{ID: id, TypeName: "Echo", Endpoint: "sim://server"},
		BindConfig{
			Transport:   n,
			MaxRetries:  50,
			CallTimeout: 20 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const calls = 10
	for i := 0; i < calls; i++ {
		term, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")})
		if err != nil || term != "OK" {
			t.Fatalf("call %d: %q, %v", i, term, err)
		}
	}
	if servant.invokedCount() > calls {
		t.Errorf("servant executed %d times for %d calls: at-most-once violated", servant.invokedCount(), calls)
	}
	if st := b.Stats(); st.Retries == 0 {
		t.Error("expected retries on a lossy link")
	}
}

func TestReplayGuardRejectsCapturedFrame(t *testing.T) {
	// An attacker captures a frame and replays it on a fresh connection.
	env2 := newEnv(t, ServerConfig{ReplayGuard: true})
	m := &wire.Message{
		Kind:        wire.Call,
		BindingID:   777,
		Seq:         1,
		Correlation: 5,
		Target:      env2.ref.ID,
		Operation:   "Echo",
		Args:        []values.Value{values.Str("x")},
	}
	frame, err := m.Encode(wire.Canonical)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := env2.net.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(frame); err != nil {
		t.Fatal(err)
	}
	first, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	fm, err := wire.Decode(first)
	if err != nil || fm.Kind != wire.Reply {
		t.Fatalf("first reply = %+v, %v", fm, err)
	}
	// Replay the identical frame: served from cache, not re-executed.
	if err := conn.Send(frame); err != nil {
		t.Fatal(err)
	}
	second, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	sm, err := wire.Decode(second)
	if err != nil || sm.Kind != wire.Reply {
		t.Fatalf("replayed reply = %+v, %v", sm, err)
	}
	if env2.servant.invokedCount() != 1 {
		t.Errorf("servant executed %d times, want 1", env2.servant.invokedCount())
	}
	// A regressed correlation id (older than anything cached after wrap) is
	// rejected outright.
	old := &wire.Message{
		Kind:        wire.Call,
		BindingID:   777,
		Seq:         2,
		Correlation: 3, // behind maxSeen=5 and not cached
		Target:      env2.ref.ID,
		Operation:   "Echo",
		Args:        []values.Value{values.Str("y")},
	}
	oldFrame, err := old.Encode(wire.Canonical)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(oldFrame); err != nil {
		t.Fatal(err)
	}
	third, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := wire.Decode(third)
	if err != nil || tm.Kind != wire.ErrReply || tm.Termination != CodeReplay {
		t.Fatalf("regressed call reply = %+v, %v", tm, err)
	}
}

func TestCloseFailsPending(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{})
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke after close = %v", err)
	}
}

func TestBindValidation(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	if _, err := Bind(env.ref, BindConfig{}); err == nil {
		t.Error("missing transport should fail")
	}
	if _, err := Bind(naming.InterfaceRef{}, BindConfig{Transport: env.net}); err == nil {
		t.Error("zero ref should fail")
	}
}

func TestServerRegisterValidation(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	if err := env.server.Register(env.ref.ID, nil, nil); err == nil {
		t.Error("nil handler should fail")
	}
	if err := env.server.Register(env.ref.ID, nil, &echoServant{}); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	// The whole channel stack over real TCP loopback.
	tcp := netsim.NewTCP()
	l, err := tcp.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{ReplayGuard: true})
	servant := &echoServant{}
	id := ifaceID(21)
	if err := srv.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	b, err := Bind(naming.InterfaceRef{ID: id, TypeName: "Echo", Endpoint: l.Endpoint()},
		BindConfig{Transport: tcp, Type: echoType()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	term, res, err := b.Invoke(context.Background(), "Add", []values.Value{values.Int(20), values.Int(22)})
	if err != nil || term != "OK" {
		t.Fatalf("Add over TCP = %q, %v, %v", term, res, err)
	}
	if sum, _ := res[0].AsInt(); sum != 42 {
		t.Errorf("sum = %v", res[0])
	}
}

// fakeLocator is a minimal in-test location registry; the real relocator
// (package relocator) layers on top of channel and is tested there.
type fakeLocator struct {
	mu   sync.Mutex
	refs map[naming.InterfaceID]naming.InterfaceRef
}

func newFakeLocator() *fakeLocator {
	return &fakeLocator{refs: make(map[naming.InterfaceID]naming.InterfaceRef)}
}

func (f *fakeLocator) set(ref naming.InterfaceRef) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refs[ref.ID] = ref
}

func (f *fakeLocator) move(id naming.InterfaceID, to naming.Endpoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ref := f.refs[id]
	ref.Endpoint = to
	ref.Epoch++
	f.refs[id] = ref
}

func (f *fakeLocator) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ref, ok := f.refs[id]
	if !ok {
		return naming.InterfaceRef{}, errors.New("fake locator: unknown interface")
	}
	return ref, nil
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// cachingLocator serves a stale snapshot until Invalidate is called —
// the shape of a real relocation cache. A binding that retries blind
// (without invalidating) re-reads the stale line forever.
type cachingLocator struct {
	mu          sync.Mutex
	stale       naming.InterfaceRef
	fresh       naming.InterfaceRef
	invalidated int
}

func (c *cachingLocator) Lookup(id naming.InterfaceID) (naming.InterfaceRef, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.invalidated == 0 {
		return c.stale, nil
	}
	return c.fresh, nil
}

func (c *cachingLocator) Invalidate(id naming.InterfaceID) {
	c.mu.Lock()
	c.invalidated++
	c.mu.Unlock()
}

func TestStaleLocationInvalidatedNotRetriedBlind(t *testing.T) {
	// Section 9.2 meets the client-side cache: on "no such interface" the
	// binding must push the staleness evidence into its locator (via
	// LocationInvalidator) so the refresh reaches the authority, instead
	// of replaying against the same cached endpoint.
	n := netsim.New(1)
	l1, err := n.Listen("sim://home1")
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(l1, ServerConfig{})
	srv1.Start()
	defer srv1.Close()

	l2, err := n.Listen("sim://home2")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(l2, ServerConfig{})
	servant := &echoServant{}
	id := ifaceID(21)
	if err := srv2.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	defer srv2.Close()

	// The cache still claims home1 (where the interface never was, i.e. a
	// stale snapshot); the authority knows home2.
	staleRef := naming.InterfaceRef{ID: id, TypeName: "Echo", Endpoint: "sim://home1"}
	loc := &cachingLocator{
		stale: staleRef,
		fresh: naming.InterfaceRef{ID: id, TypeName: "Echo", Endpoint: "sim://home2", Epoch: 1},
	}
	b, err := Bind(staleRef, BindConfig{Transport: n, Locator: loc, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	term, res, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")})
	if err != nil || term != "OK" {
		t.Fatalf("invoke via stale cache = %q, %v, %v", term, res, err)
	}
	loc.mu.Lock()
	inv := loc.invalidated
	loc.mu.Unlock()
	if inv == 0 {
		t.Fatal("binding never invalidated the stale cache line")
	}
	if b.Ref().Endpoint != "sim://home2" {
		t.Errorf("binding ref endpoint = %s", b.Ref().Endpoint)
	}
}
