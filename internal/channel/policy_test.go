package channel

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/values"
)

func refTo(ep string) naming.InterfaceRef {
	return naming.InterfaceRef{ID: ifaceID(99), TypeName: "Echo", Endpoint: naming.Endpoint(ep)}
}

// TestPolicyBudgetBoundsTotalTime is the regression test for the
// pre-policy bug: each retry re-armed a fresh full CallTimeout, so a call
// with MaxRetries=3 could block for 4× the configured timeout. Under a
// policy the budget bounds the whole interaction — attempts, backoff and
// relocations together.
func TestPolicyBudgetBoundsTotalTime(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	env.net.Partition("client", "server") // dials black-hole: every attempt times out
	b := env.bind(t, BindConfig{
		Type: echoType(),
		Policy: &policy.RetryPolicy{
			MaxAttempts:    4,
			AttemptTimeout: 60 * time.Millisecond,
			Budget:         100 * time.Millisecond,
		},
	})
	start := time.Now()
	_, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("hi")})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected failure through a partition")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget exhaustion should surface the deadline, got %v", err)
	}
	// Legacy behavior would run 4 × 60ms = 240ms. The budget caps it.
	if elapsed >= 200*time.Millisecond {
		t.Fatalf("call took %v; budget of 100ms not enforced (legacy 4×timeout behavior?)", elapsed)
	}
}

// TestAttemptTimeoutSentinel: a per-attempt timeout is a distinct,
// retryable failure carrying the endpoint, matched with errors.Is.
func TestAttemptTimeoutSentinel(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	env.net.Partition("client", "server")
	b := env.bind(t, BindConfig{
		Type: echoType(),
		Policy: &policy.RetryPolicy{
			MaxAttempts:    1,
			AttemptTimeout: 40 * time.Millisecond,
		},
	})
	_, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("hi")})
	if !errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("want ErrAttemptTimeout, got %v", err)
	}
	if !strings.Contains(err.Error(), "sim://server") {
		t.Fatalf("attempt timeout should name the endpoint: %v", err)
	}
}

// TestPolicyBackoffPacesRetries: retries against a dead endpoint are
// paced by the policy's backoff instead of spinning.
func TestPolicyBackoffPacesRetries(t *testing.T) {
	n := netsim.New(1)
	b, err := Bind(refTo("sim://nowhere"), BindConfig{
		Transport: n,
		Policy: &policy.RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 30 * time.Millisecond,
			Multiplier:  2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	start := time.Now()
	_, _, err = b.Invoke(context.Background(), "Echo", []values.Value{values.Str("hi")})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	// Two retries: backoffs of 30ms and 60ms. Zero-delay spinning would
	// return in microseconds.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("3 attempts finished in %v; retries are not backed off", elapsed)
	}
	if got := b.Stats().Retries; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestDialErrorTaxonomy: a dial failure keeps both the channel sentinel
// and the transport's cause visible to errors.Is.
func TestDialErrorTaxonomy(t *testing.T) {
	n := netsim.New(1)
	b, err := Bind(refTo("sim://nowhere"), BindConfig{Transport: n})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, _, err = b.Invoke(context.Background(), "Echo", nil)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	if !errors.Is(err, netsim.ErrNoSuchHost) {
		t.Fatalf("dial cause lost from the chain: %v", err)
	}
}

// TestBreakerFailFastShared: a breaker set attached to a shared session
// manager opens once for a dead endpoint and every binding to it then
// fails fast with ErrCircuitOpen — no further dials. After the
// cooling-off period one call probes the (revived) endpoint and
// re-closes the breaker for everyone.
func TestBreakerFailFastShared(t *testing.T) {
	n := netsim.New(1)
	mgr := NewSessionManager(n)
	defer mgr.Close()
	bs := policy.NewBreakerSet(policy.BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             50 * time.Millisecond,
	})
	mgr.SetBreakers(bs)

	pol := &policy.RetryPolicy{MaxAttempts: 1, AttemptTimeout: 100 * time.Millisecond}
	ref := refTo("sim://server")
	b1, err := Bind(ref, BindConfig{Sessions: mgr, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	b2, err := Bind(ref, BindConfig{Sessions: mgr, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	// Two failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, _, err := b1.Invoke(context.Background(), "Echo", nil); err == nil {
			t.Fatal("invoke against a dead host succeeded")
		}
	}
	if st := bs.For("sim://server").State(); st != policy.Open {
		t.Fatalf("breaker state = %v, want open", st)
	}
	dialsWhenOpen := mgr.Stats().Dials

	// The sibling binding fails fast without touching the wire.
	_, _, err = b2.Invoke(context.Background(), "Echo", nil)
	if !errors.Is(err, policy.ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if got := mgr.Stats().Dials; got != dialsWhenOpen {
		t.Fatalf("open breaker still dialled: %d -> %d", dialsWhenOpen, got)
	}

	// Bring the endpoint up; after cooling off one probe call re-closes.
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{})
	if err := srv.Register(ifaceID(99), echoType(), &echoServant{}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	time.Sleep(60 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, err = b2.Invoke(context.Background(), "Echo", []values.Value{values.Str("hi")})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := bs.For("sim://server").State(); st != policy.Closed {
		t.Fatalf("breaker state after recovery = %v, want closed", st)
	}
	if stats := bs.For("sim://server").Stats(); stats.Opens != 1 {
		t.Fatalf("breaker opened %d times, want exactly 1", stats.Opens)
	}
}
