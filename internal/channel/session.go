package channel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/wire"
)

// This file is the session layer of the engineering channel: the protocol
// object of the tutorial's Fig 4, factored out of the binder. A Session is
// one transport connection to one endpoint, shared by every binding the
// client holds to interfaces behind that endpoint; the SessionManager maps
// (Transport, Endpoint) to at most one live Session with reference-counted
// acquire/release and single-flight dialling. Replies are demultiplexed by
// (BindingID, Correlation) — both already carried in every wire header —
// so any number of bindings can interleave interrogations on one
// connection. Failure detection is shared: when the session's read loop
// dies, every pending call on every binding fails at once with
// ErrDisconnected, and relocation epoch fencing lets the first binding
// that observes a move kill the stale session so its siblings fail over
// in one step instead of one timeout each.

// SessionStats is a snapshot of a SessionManager's counters.
type SessionStats struct {
	Open            int    // live sessions right now
	Dials           uint64 // transport dials performed (single-flight: one per establishment)
	Deaths          uint64 // sessions that failed under bindings (shared failover events)
	ProbesSent      uint64 // liveness probes put on the wire
	ProbesCoalesced uint64 // probes satisfied by one already in flight
}

// SessionConfig tunes the session data plane. The zero value is the
// default: batched sends with the bounds from sendq.go.
type SessionConfig struct {
	// Unbatched disables the per-session sender goroutine: Send calls go
	// straight to the connection, one write per frame, as before the
	// batched path existed. It exists as the measured baseline for E12 and
	// as an escape hatch; the batched path is the default because it is
	// never slower once more than one frame is in flight.
	Unbatched bool
	// SendQueueBytes bounds the bytes queued to the sender before
	// enqueuers block (backpressure). Zero means the default (1 MiB).
	SendQueueBytes int
	// MaxBatchBytes bounds one vectored write. Zero means the default
	// (256 KiB).
	MaxBatchBytes int
}

// SessionManager multiplexes all bindings that share one Transport onto
// per-endpoint sessions. The zero value is not usable; use
// NewSessionManager. All methods are safe for concurrent use.
type SessionManager struct {
	transport netsim.Transport
	cfg       SessionConfig

	mu      sync.Mutex
	entries map[naming.Endpoint]*sessionEntry
	// fences records the highest relocation epoch seen leaving each
	// endpoint, so one epoch announcement kills the stale session exactly
	// once rather than once per binding that notices the move.
	fences map[naming.Endpoint]uint64
	closed bool

	dials           atomic.Uint64
	deaths          atomic.Uint64
	probesSent      atomic.Uint64
	probesCoalesced atomic.Uint64

	insp     atomic.Pointer[mgmt.SessionInstruments]
	breakers atomic.Pointer[policy.BreakerSet]
}

// sessionEntry is the manager's per-endpoint slot: the binding reference
// count, the live session if any, and the single-flight dial latch.
type sessionEntry struct {
	refs    int
	sess    *Session
	dialing chan struct{} // non-nil while a dial is in flight; closed when it resolves
}

// NewSessionManager creates a session manager dialling over t with the
// default (batched) data plane.
func NewSessionManager(t netsim.Transport) *SessionManager {
	return NewSessionManagerWithConfig(t, SessionConfig{})
}

// NewSessionManagerWithConfig creates a session manager with an explicit
// data-plane configuration.
func NewSessionManagerWithConfig(t netsim.Transport, cfg SessionConfig) *SessionManager {
	return &SessionManager{
		transport: t,
		cfg:       cfg,
		entries:   make(map[naming.Endpoint]*sessionEntry),
		fences:    make(map[naming.Endpoint]uint64),
	}
}

// Instrument attaches (or, with nil, detaches) management instrumentation.
func (m *SessionManager) Instrument(ins *mgmt.SessionInstruments) {
	m.insp.Store(ins)
}

// SetBreakers shares a circuit-breaker set across every binding
// multiplexed over this manager: all bindings to one endpoint consult
// one breaker, so a node death opens the circuit once for everyone and
// a single half-open probe re-closes it. Nil detaches (no breakers).
func (m *SessionManager) SetBreakers(bs *policy.BreakerSet) {
	m.breakers.Store(bs)
}

// Breakers returns the attached breaker set, or nil.
func (m *SessionManager) Breakers() *policy.BreakerSet {
	return m.breakers.Load()
}

// Stats returns a snapshot of the manager's counters.
func (m *SessionManager) Stats() SessionStats {
	m.mu.Lock()
	open := 0
	for _, e := range m.entries {
		if e.sess != nil {
			open++
		}
	}
	m.mu.Unlock()
	return SessionStats{
		Open:            open,
		Dials:           m.dials.Load(),
		Deaths:          m.deaths.Load(),
		ProbesSent:      m.probesSent.Load(),
		ProbesCoalesced: m.probesCoalesced.Load(),
	}
}

// Close tears down every live session. Bindings still attached observe
// ErrDisconnected on their pending calls and ErrClosed on later attempts.
func (m *SessionManager) Close() error {
	m.mu.Lock()
	m.closed = true
	var live []*Session
	for _, e := range m.entries {
		if e.sess != nil {
			live = append(live, e.sess)
		}
	}
	m.mu.Unlock()
	for _, s := range live {
		s.kill(true)
	}
	return nil
}

// attach registers one binding against ep, keeping the endpoint's session
// alive while any binding references it.
func (m *SessionManager) attach(ep naming.Endpoint) {
	m.mu.Lock()
	e := m.entries[ep]
	if e == nil {
		e = &sessionEntry{}
		m.entries[ep] = e
	}
	e.refs++
	m.mu.Unlock()
}

// detach drops one binding's reference to ep; the last reference out
// closes the endpoint's session.
func (m *SessionManager) detach(ep naming.Endpoint) {
	m.mu.Lock()
	e := m.entries[ep]
	if e == nil {
		m.mu.Unlock()
		return
	}
	e.refs--
	var last *Session
	if e.refs <= 0 {
		last = e.sess
		if e.dialing == nil {
			delete(m.entries, ep)
		}
	}
	m.mu.Unlock()
	if last != nil {
		last.kill(true)
	}
}

// session returns the live session for ep, dialling it if necessary.
// Concurrent callers single-flight: one dials, the rest wait on the
// latch, and everyone shares the resulting connection.
func (m *SessionManager) session(ctx context.Context, ep naming.Endpoint) (*Session, error) {
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrClosed
		}
		e := m.entries[ep]
		if e == nil {
			// No binding is attached here any more: the requester detached
			// (closed) concurrently. Don't dial a connection nobody owns.
			m.mu.Unlock()
			return nil, ErrClosed
		}
		if e.sess != nil && !e.sess.isClosed() {
			s := e.sess
			m.mu.Unlock()
			return s, nil
		}
		if e.dialing != nil {
			latch := e.dialing
			m.mu.Unlock()
			select {
			case <-latch:
				continue // re-check: adopt the dialled session or its error
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		latch := make(chan struct{})
		e.dialing = latch
		m.mu.Unlock()

		conn, err := m.transport.Dial(ctx, ep)
		if err == nil {
			m.dials.Add(1)
		}

		m.mu.Lock()
		e.dialing = nil
		if m.entries[ep] != e || m.closed {
			// Every binding detached (or the manager closed) mid-dial;
			// nobody wants this connection.
			if m.entries[ep] == e && e.refs <= 0 {
				delete(m.entries, ep)
			}
			m.mu.Unlock()
			close(latch)
			if err == nil {
				conn.Close()
			}
			return nil, ErrClosed
		}
		if err != nil {
			m.mu.Unlock()
			close(latch)
			// Both sentinels stay visible to errors.Is: ErrDisconnected for
			// the channel layer, and the transport's cause (ErrNoSuchHost,
			// ErrBacklogFull, …) for the error taxonomy.
			return nil, fmt.Errorf("%w: dial %s: %w", ErrDisconnected, ep, err)
		}
		s := newSession(m, ep, conn)
		e.sess = s
		m.mu.Unlock()
		close(latch)
		if ins := m.insp.Load(); ins != nil {
			ins.Dials.Inc()
			ins.SessionsOpen.Add(1)
		}
		go s.readLoop()
		return s, nil
	}
}

// fence records that interfaces behind ep relocated at epoch and, the
// first time a given epoch is seen, kills the stale session so every
// binding still multiplexed on it fails over immediately rather than
// waiting out its own timeout. Correctness never depends on the fence —
// each binding's own locator refresh is the authority — this only turns
// N discovery timeouts into one.
func (m *SessionManager) fence(ep naming.Endpoint, epoch uint64) {
	if epoch == 0 {
		return
	}
	m.mu.Lock()
	if m.fences[ep] >= epoch {
		m.mu.Unlock()
		return
	}
	m.fences[ep] = epoch
	var stale *Session
	if e := m.entries[ep]; e != nil {
		stale = e.sess
	}
	m.mu.Unlock()
	if stale != nil {
		stale.kill(false)
	}
}

// peek returns the live session for ep without dialling, or nil.
func (m *SessionManager) peek(ep naming.Endpoint) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[ep]; e != nil {
		return e.sess
	}
	return nil
}

// sessionDied is the read loop's exit notification: unpublish the session
// and account for the shared failover.
func (m *SessionManager) sessionDied(s *Session, graceful bool) {
	m.mu.Lock()
	refs := 0
	if e := m.entries[s.ep]; e != nil && e.sess == s {
		e.sess = nil
		refs = e.refs
		if e.refs <= 0 && e.dialing == nil {
			delete(m.entries, s.ep)
		}
	}
	m.mu.Unlock()
	if !graceful {
		m.deaths.Add(1)
	}
	if ins := m.insp.Load(); ins != nil {
		ins.SessionsOpen.Add(-1)
		ins.BindingsAtDeath.Observe(uint64(refs))
		if !graceful {
			ins.Reconnects.Inc()
		}
	}
}

// ---------------------------------------------------------------------------

// pendKey is the session demux key. Correlations are allocated per
// binding, so the pair is unique across every binding on the session.
type pendKey struct {
	binding uint64
	correl  uint64
}

// probeFlight is the latch for one in-flight liveness probe shared by all
// bindings on the session.
type probeFlight struct {
	done chan struct{}
	err  error
}

// Session is one shared transport connection: one conn, one read loop,
// one demux table for every binding multiplexed over it, and (unless the
// manager was configured Unbatched) one sender goroutine that drains the
// frame queue into vectored writes.
type Session struct {
	mgr  *SessionManager
	ep   naming.Endpoint
	conn netsim.Conn
	q    *frameQueue // nil when the data plane is unbatched

	mu       sync.Mutex
	pending  map[pendKey]chan *wire.Message
	grants   map[pendKey]*grantSink
	closed   bool
	graceful bool

	badFrames atomic.Uint64
	lastProbe atomic.Int64 // unix nanos of the last completed probe

	probeMu sync.Mutex
	probe   *probeFlight
}

func newSession(m *SessionManager, ep naming.Endpoint, conn netsim.Conn) *Session {
	s := &Session{
		mgr:     m,
		ep:      ep,
		conn:    conn,
		pending: make(map[pendKey]chan *wire.Message),
		grants:  make(map[pendKey]*grantSink),
	}
	if !m.cfg.Unbatched {
		var bi batchInstruments
		if ins := m.insp.Load(); ins != nil {
			bi = batchInstruments{
				framesPerWrite: ins.FramesPerWrite,
				batchBytes:     ins.BatchBytes,
				queueDepth:     ins.SendQueueDepth,
			}
		}
		s.q = newFrameQueue(conn, m.cfg.SendQueueBytes, m.cfg.MaxBatchBytes, bi,
			func(error) { s.kill(false) })
	}
	return s
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// waiterPool recycles the one-shot reply channels of register. The
// ownership protocol makes pooling safe: whichever party removes a key
// from the pending map sends exactly one value on its channel (a reply,
// or nil at session death), except the registering caller itself, which
// on unregister-success owns a channel nothing will ever send on. release
// drains the one possible value before pooling, so a recycled channel is
// always empty.
var waiterPool = sync.Pool{New: func() any { return make(chan *wire.Message, 1) }}

// release drains and recycles a reply channel once its interrogation is
// over and the caller is certain no further send can target it (its key
// is out of the pending map).
func release(ch chan *wire.Message) {
	select {
	case m := <-ch:
		if m != nil {
			wire.PutMessage(m)
		}
	default:
	}
	waiterPool.Put(ch)
}

// grantSink is the session-side delivery point for one flow stream's
// credit grants: the read loop routes inbound CreditGrant frames keyed by
// (binding, stream id) to onGrant, and session death fires onDead once so
// a producer blocked at zero credit wakes with ErrStreamClosed instead of
// hanging on a session that will never grant again. Both callbacks run on
// the session's read-loop goroutine and must not block.
type grantSink struct {
	onGrant func(cumElems, cumBytes uint64)
	onDead  func(err error)
}

// registerGrants claims the grant demux slot for one flow stream.
func (s *Session) registerGrants(binding, stream uint64, sink *grantSink) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrStreamClosed
	}
	s.grants[pendKey{binding, stream}] = sink
	s.mu.Unlock()
	return nil
}

// unregisterGrants drops a stream's grant slot (stream close). After it
// returns no callback will fire for the stream again.
func (s *Session) unregisterGrants(binding, stream uint64) {
	s.mu.Lock()
	delete(s.grants, pendKey{binding, stream})
	s.mu.Unlock()
}

// register claims the demux slot for one interrogation. The returned
// channel receives exactly one value: the reply, or nil when the session
// dies first. The caller must hand the channel back with release (after
// unregistering if no value was received).
func (s *Session) register(binding, correl uint64) (chan *wire.Message, error) {
	ch := waiterPool.Get().(chan *wire.Message)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		waiterPool.Put(ch)
		return nil, ErrDisconnected
	}
	s.pending[pendKey{binding, correl}] = ch
	s.mu.Unlock()
	return ch, nil
}

// unregister abandons an interrogation (timeout, cancellation). It
// reports whether the slot was still claimed: true means no send will
// ever reach the channel; false means a reply or death notification was
// already (or is being) delivered and the caller must receive it before
// releasing the channel.
func (s *Session) unregister(binding, correl uint64) bool {
	s.mu.Lock()
	k := pendKey{binding, correl}
	_, ok := s.pending[k]
	if ok {
		delete(s.pending, k)
	}
	s.mu.Unlock()
	return ok
}

// abandon gives up on an interrogation and reclaims its reply channel.
// If the slot was still claimed, no send can reach the channel and it
// pools immediately; otherwise the delivering side removed the key first,
// so exactly one value is on its way — wait for it (the send trails the
// map delete by at most a few instructions) so a pooled channel is always
// empty.
func (s *Session) abandon(binding, correl uint64, ch chan *wire.Message) {
	if s.unregister(binding, correl) {
		release(ch)
		return
	}
	if m := <-ch; m != nil {
		wire.PutMessage(m)
	}
	waiterPool.Put(ch)
}

// send transmits one frame, taking ownership of it: the buffer is
// recycled by the send path whatever the outcome, so callers must not
// touch it after the call. On the batched plane the frame is queued to
// the session's sender goroutine — many bindings' frames coalesce into
// one vectored write — and a connection failure surfaces either here (as
// the sender's sticky error) or on the reply channel. A send failure
// kills the session so every sibling binding fails over together.
func (s *Session) send(frame []byte) error {
	if s.q != nil {
		return s.q.enqueue(frame, true)
	}
	err := s.conn.Send(frame)
	wire.PutFrame(frame)
	if err != nil {
		s.kill(false)
		return fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	return nil
}

// flushSends blocks until every frame handed to send so far is on the
// wire (one-way interactions use it for group commit: enqueue then flush
// keeps write errors observable without a write per announcement).
func (s *Session) flushSends() error {
	if s.q != nil {
		return s.q.flush()
	}
	return nil
}

// kill tears the session down; the read loop's exit performs the
// cleanup. graceful marks an orderly release (last binding out, manager
// close) rather than a failure, so it is not counted as a reconnect.
func (s *Session) kill(graceful bool) {
	s.mu.Lock()
	if graceful && !s.closed {
		s.graceful = true
	}
	s.mu.Unlock()
	s.conn.Close()
}

// readLoop demultiplexes inbound replies by (BindingID, Correlation)
// until the connection dies, then fails every pending call on every
// binding at once — the shared failure detector.
func (s *Session) readLoop() {
	for {
		frame, err := s.conn.Recv()
		if err != nil {
			break
		}
		m, err := wire.Decode(frame)
		// Decode copies every escaping payload out of the frame, so the
		// buffer can be recycled immediately, whatever the outcome.
		wire.PutFrame(frame)
		if err != nil {
			// A corrupt frame fails only its own call, by that call's
			// timeout; the session and its other bindings keep going.
			s.badFrames.Add(1)
			continue
		}
		switch m.Kind {
		case wire.Reply, wire.ErrReply, wire.ProbeAck:
			k := pendKey{m.BindingID, m.Correlation}
			s.mu.Lock()
			ch, ok := s.pending[k]
			if ok {
				delete(s.pending, k)
			}
			s.mu.Unlock()
			if ok {
				// Removing the key made this goroutine the channel's sole
				// sender; cap 1 means the send cannot block.
				ch <- m
			} else {
				wire.PutMessage(m) // late or unsolicited; nobody will read it
			}
		case wire.CreditGrant:
			// The streaming back-channel: route the grant to its stream's
			// sink. Grants for unknown streams (late, or the stream closed)
			// are dropped — cumulative credit makes the next grant subsume
			// them.
			s.mu.Lock()
			g := s.grants[pendKey{m.BindingID, m.Correlation}]
			s.mu.Unlock()
			if g != nil {
				g.onGrant(m.Seq, m.Epoch)
			}
			wire.PutMessage(m)
		default:
			// Client ends do not accept requests.
		}
	}
	s.mu.Lock()
	s.closed = true
	stranded := s.pending
	s.pending = nil
	strandedGrants := s.grants
	s.grants = nil
	graceful := s.graceful
	s.mu.Unlock()
	// Account the death before waking anyone: a caller that observes
	// ErrDisconnected must also observe the death in SessionStats.
	s.mgr.sessionDied(s, graceful)
	// The map swap removed every key at once, making this goroutine the
	// sole sender for each stranded channel: nil is the death notification
	// (channels are pooled, so they are never closed).
	for _, ch := range stranded {
		ch <- nil
	}
	// Streams die with their session: wake every producer blocked on
	// credit so it observes ErrStreamClosed rather than waiting for a
	// grant that can never arrive.
	for _, g := range strandedGrants {
		if g.onDead != nil {
			g.onDead(ErrStreamClosed)
		}
	}
	if s.q != nil {
		s.q.close() // conn is dead; the sender drains by failing fast
	}
}

// probeShared coalesces liveness probes: however many bindings probe a
// session concurrently, one Probe frame goes on the wire and everyone
// shares its outcome. b supplies the wire identity (binding id, seq,
// correlation) for the probe that is actually sent.
func (s *Session) probeShared(ctx context.Context, b *Binding) error {
	for {
		s.probeMu.Lock()
		if f := s.probe; f != nil {
			s.probeMu.Unlock()
			s.mgr.probesCoalesced.Add(1)
			if ins := s.mgr.insp.Load(); ins != nil {
				ins.ProbesCoalesced.Inc()
			}
			select {
			case <-f.done:
				// If the probe owner's context (not ours) was cancelled,
				// the shared result says nothing about liveness; retry as
				// the new owner.
				if f.err != nil && ctx.Err() == nil &&
					(errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
					continue
				}
				return f.err
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		f := &probeFlight{done: make(chan struct{})}
		s.probe = f
		s.probeMu.Unlock()

		err := s.probeOnce(ctx, b)
		if err == nil {
			s.lastProbe.Store(time.Now().UnixNano())
		}

		s.probeMu.Lock()
		s.probe = nil
		s.probeMu.Unlock()
		f.err = err
		close(f.done)
		return err
	}
}

// probeOnce performs one probe round trip on this session, running the
// owning binding's stages so secured channels probe like they invoke.
func (s *Session) probeOnce(ctx context.Context, b *Binding) error {
	s.mgr.probesSent.Add(1)
	if ins := s.mgr.insp.Load(); ins != nil {
		ins.Probes.Inc()
	}
	correl := b.nextCorrel.Add(1)
	m := wire.GetMessage()
	m.Kind = wire.Probe
	m.BindingID = b.bindingID
	m.Seq = b.nextSeq.Add(1)
	m.Correlation = correl
	m.Target = b.Ref().ID
	if err := runStages(b.cfg.Stages, Outbound, m); err != nil {
		wire.PutMessage(m)
		return err
	}
	frame, err := m.EncodeAppend(wire.GetFrame(m.SizeHint()), b.cfg.Codec)
	wire.PutMessage(m)
	if err != nil {
		return err
	}
	ch, err := s.register(b.bindingID, correl)
	if err != nil {
		wire.PutFrame(frame)
		return err
	}
	if err := s.send(frame); err != nil { // send owns the frame now
		s.abandon(b.bindingID, correl, ch)
		return err
	}
	select {
	case reply := <-ch:
		release(ch)
		if reply == nil {
			return ErrDisconnected
		}
		err := runStages(b.cfg.Stages, Inbound, reply)
		wire.PutMessage(reply)
		return err
	case <-ctx.Done():
		s.abandon(b.bindingID, correl, ch)
		return ctx.Err()
	}
}
