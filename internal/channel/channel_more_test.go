package channel

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

func TestServerAccessors(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	if env.server.Endpoint() != "sim://server" {
		t.Errorf("endpoint = %q", env.server.Endpoint())
	}
	b := env.bind(t, BindConfig{})
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	st := env.server.Stats()
	if st.Calls != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHandlerFunc(t *testing.T) {
	h := HandlerFunc(func(_ context.Context, op string, _ []values.Value) (string, []values.Value, error) {
		return "OK", []values.Value{values.Str(op)}, nil
	})
	term, res, err := h.Invoke(context.Background(), "Ping", nil)
	if err != nil || term != "OK" || len(res) != 1 {
		t.Errorf("HandlerFunc = %q, %v, %v", term, res, err)
	}
}

func TestErrorStrings(t *testing.T) {
	re := &RemoteError{Code: CodeAuth}
	if re.Error() != "channel: remote error ERR_AUTH" {
		t.Errorf("bare = %q", re.Error())
	}
	re2 := &RemoteError{Code: CodeAuth, Detail: "nope"}
	if re2.Error() != "channel: remote error ERR_AUTH: nope" {
		t.Errorf("detailed = %q", re2.Error())
	}
	se := &StageError{Code: CodeReplay, Detail: "old"}
	if se.Error() == "" {
		t.Error("StageError empty")
	}
	if Outbound.String() != "outbound" || Inbound.String() != "inbound" {
		t.Error("direction strings")
	}
	if (&AuditStage{}).Name() != "audit-stub" {
		t.Error("audit stage name")
	}
	if (&CountingStage{Label: "x"}).Name() != "x" {
		t.Error("counting stage name")
	}
	if (&SignalTraceStage{}).Name() != "signal-trace" {
		t.Error("signal trace stage name")
	}
}

func TestAnnouncementRetriesOnDisconnect(t *testing.T) {
	// Kill the server between announcements: with retries the announce
	// reconnects, without retries it errors.
	n := netsim.New(8)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{})
	servant := &echoServant{}
	id := ifaceID(3)
	if err := srv.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	b, err := Bind(refFor(id, "Echo"), BindConfig{Transport: n, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.Announce(ctx, "Notify", []values.Value{values.Str("one")}); err != nil {
		t.Fatal(err)
	}
	// Announcements are asynchronous: wait for delivery before the restart
	// tears the connection down.
	waitFor(t, func() bool {
		servant.mu.Lock()
		defer servant.mu.Unlock()
		return len(servant.notified) == 1
	})
	// Restart the server (conn dies; the binder must redial).
	srv.Close()
	l2, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(l2, ServerConfig{})
	if err := srv2.Register(id, echoType(), servant); err != nil {
		t.Fatal(err)
	}
	srv2.Start()
	defer srv2.Close()
	if err := b.Announce(ctx, "Notify", []values.Value{values.Str("two")}); err != nil {
		t.Fatalf("announce after restart: %v", err)
	}
	waitFor(t, func() bool {
		servant.mu.Lock()
		defer servant.mu.Unlock()
		return len(servant.notified) == 2
	})
	// Depending on when the read loop observes the close, the binder either
	// redials pre-emptively (a reconnect) or fails the send and retries;
	// both are the failure-transparency path.
	if st := b.Stats(); st.Reconnects < 2 && st.Retries == 0 {
		t.Errorf("stats should show recovery: %+v", st)
	}
}

func refFor(id naming.InterfaceID, typeName string) naming.InterfaceRef {
	return naming.InterfaceRef{ID: id, TypeName: typeName, Endpoint: "sim://server"}
}

func TestServerRejectsBadOneWaysAndFlows(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{}) // untyped client: server-side checks engage
	ctx := context.Background()

	// OneWay for an interrogation op: dropped and counted.
	if err := b.Announce(ctx, "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	// OneWay with bad args: dropped.
	if err := b.Announce(ctx, "Notify", []values.Value{values.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// Flow against an operational interface: dropped.
	if err := b.Flow(ctx, "video", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Flow with a mistyped element against a typed stream servant.
	// Signal against a servant that accepts signals passes; against the
	// typed echo servant it is delivered (echoServant implements
	// SignalReceiver), so use an unknown target for the error path.
	ghost := env.ref
	ghost.ID.Nonce = 424242
	gb, err := Bind(ghost, BindConfig{Transport: env.net})
	if err != nil {
		t.Fatal(err)
	}
	defer gb.Close()
	if err := gb.Signal(ctx, "sig", nil); err != nil {
		t.Fatal(err)
	}
	if err := gb.Flow(ctx, "f", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := gb.Announce(ctx, "Notify", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return env.server.Stats().Errors >= 3 })
	// The good announcement path still works.
	if err := b.Announce(ctx, "Notify", []values.Value{values.Str("ok")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		env.servant.mu.Lock()
		defer env.servant.mu.Unlock()
		return len(env.servant.notified) == 1
	})
}

// flowOnlyServant handles operations but not flows/signals.
type flowlessServant struct{}

func (flowlessServant) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "OK", nil, nil
}

func TestFlowToNonReceiverCountsError(t *testing.T) {
	n := netsim.New(9)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, ServerConfig{})
	id := ifaceID(4)
	st := types.StreamInterface("S", types.FlowOf("f", types.Consumer, values.TInt()))
	if err := srv.Register(id, st, flowlessServant{}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	b, err := Bind(refFor(id, "S"), BindConfig{Transport: n})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.Flow(ctx, "f", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Signal(ctx, "s", nil); err != nil {
		t.Fatal(err)
	}
	// Typed flow with a bad element type: rejected server-side.
	if err := b.Flow(ctx, "f", values.Str("wrong")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Stats().Errors >= 3 })
	// The satellite counter: the mistyped element and the flow-to-non-
	// receiver are type errors, not just anonymous Errors.
	waitFor(t, func() bool { return srv.Stats().FlowTypeErrors >= 2 })
}

func TestInvokeContextCancelled(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.Invoke(ctx, "Echo", []values.Value{values.Str("x")}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestProbeTimeout(t *testing.T) {
	// A probe against a black-holed endpoint times out via CallTimeout.
	n := netsim.New(10)
	l, err := n.Listen("sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() // accept but never serve
	b, err := Bind(refFor(ifaceID(1), "X"), BindConfig{
		Transport:   n,
		CallTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Probe(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("probe = %v", err)
	}
}

func TestBadFrameCounted(t *testing.T) {
	env := newEnv(t, ServerConfig{})
	conn, err := env.net.Dial(context.Background(), "sim://server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return env.server.Stats().BadFrames == 1 })
	// An unroutable-but-valid frame (a Reply arriving at a server) is also
	// counted as bad.
	m := &wire.Message{Kind: wire.MsgKind(99)}
	frame, err := m.Encode(wire.Canonical)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(frame); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return env.server.Stats().BadFrames == 2 })
}
