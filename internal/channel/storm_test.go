package channel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/values"
)

// TestSessionDeathStorm: 64 bindings spread across 8 nodes share one
// session manager with a breaker set; 4 nodes are killed mid-flight.
// The storm must stay contained: each dead endpoint's breaker opens
// exactly once and every binding to it fails fast from then on, redials
// stay bounded (no thundering redial herd — the breaker gates the wire,
// the policy's backoff paces what little gets through), and bindings to
// the surviving nodes never see a single error.
func TestSessionDeathStorm(t *testing.T) {
	const (
		hosts    = 8
		perHost  = 8
		deadN    = 4
		warmup   = 50 * time.Millisecond
		stormFor = 300 * time.Millisecond
	)
	net := netsim.New(13)
	mgr := NewSessionManager(net)
	defer mgr.Close()
	bs := policy.NewBreakerSet(policy.BreakerConfig{
		ConsecutiveFailures: 3,
		OpenFor:             time.Hour, // stays open for the test's lifetime
	})
	mgr.SetBreakers(bs)

	servers := make([]*Server, hosts)
	for i := 0; i < hosts; i++ {
		l, err := net.Listen(naming.Endpoint(fmt.Sprintf("sim://s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(l, ServerConfig{ReplayGuard: true})
		if err := srv.Register(ifaceID(uint64(200+i)), nil, &echoServant{}); err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[i] = srv
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	pol := &policy.RetryPolicy{
		MaxAttempts:    2,
		AttemptTimeout: 100 * time.Millisecond,
		BaseBackoff:    5 * time.Millisecond,
		Seed:           13,
	}
	bindings := make([]*Binding, 0, hosts*perHost)
	for i := 0; i < hosts; i++ {
		for j := 0; j < perHost; j++ {
			b, err := Bind(naming.InterfaceRef{
				ID:       ifaceID(uint64(200 + i)),
				Endpoint: naming.Endpoint(fmt.Sprintf("sim://s%d", i)),
			}, BindConfig{Sessions: mgr, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			bindings = append(bindings, b)
		}
	}

	// The workload: every binding invokes in a loop until told to stop,
	// tallying per-host successes and errors.
	var (
		okByHost  [hosts]atomic.Int64
		errByHost [hosts]atomic.Int64
		badErrs   atomic.Int64 // errors outside the published taxonomy
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	for idx, b := range bindings {
		host := idx / perHost
		wg.Add(1)
		go func(host int, b *Binding) {
			defer wg.Done()
			arg := []values.Value{values.Str("x")}
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				_, _, err := b.Invoke(ctx, "Echo", arg)
				cancel()
				if err == nil {
					okByHost[host].Add(1)
				} else {
					errByHost[host].Add(1)
					if !errors.Is(err, ErrDisconnected) &&
						!errors.Is(err, policy.ErrCircuitOpen) &&
						!errors.Is(err, ErrAttemptTimeout) &&
						!errors.Is(err, context.DeadlineExceeded) {
						badErrs.Add(1)
						t.Errorf("host s%d: unclassified error %v", host, err)
					}
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(host, b)
	}

	time.Sleep(warmup)
	dialsBefore := mgr.Stats().Dials
	for i := 0; i < deadN; i++ {
		net.CrashHost(fmt.Sprintf("s%d", i))
		servers[i].Close()
	}
	time.Sleep(stormFor)
	close(stop)
	wg.Wait()

	// Survivors never failed.
	for i := deadN; i < hosts; i++ {
		if n := errByHost[i].Load(); n != 0 {
			t.Errorf("surviving host s%d saw %d errors", i, n)
		}
		if okByHost[i].Load() == 0 {
			t.Errorf("surviving host s%d did no work", i)
		}
	}
	// Each dead endpoint's breaker is open and tripped exactly once —
	// 16 bindings' worth of failures collapsed into one transition.
	for i := 0; i < deadN; i++ {
		br := bs.Peek(fmt.Sprintf("sim://s%d", i))
		if br == nil {
			t.Fatalf("no breaker minted for dead host s%d", i)
		}
		st := br.Stats()
		if st.State != policy.Open {
			t.Errorf("dead host s%d breaker = %v, want open", i, st.State)
		}
		if st.Opens != 1 {
			t.Errorf("dead host s%d breaker opened %d times, want exactly 1", i, st.Opens)
		}
		if st.Rejected == 0 {
			t.Errorf("dead host s%d breaker never rejected a call — bindings kept dialling", i)
		}
		if errByHost[i].Load() == 0 {
			t.Errorf("dead host s%d reported no errors; kill happened too late?", i)
		}
	}
	// Redials stay bounded: the single-flight dial coalesces each dead
	// session's reconnect attempts and the breaker cuts them off after
	// ConsecutiveFailures, so the storm adds at most a handful of dial
	// attempts per dead host — nothing like 16 bindings × retries.
	st := mgr.Stats()
	added := st.Dials - dialsBefore
	if maxAdded := uint64(deadN * 8); added > maxAdded {
		t.Errorf("storm added %d dial attempts, want ≤ %d (breaker+single-flight must bound redials)",
			added, maxAdded)
	}
	if st.Deaths < deadN {
		t.Errorf("session deaths = %d, want ≥ %d (one per killed node)", st.Deaths, deadN)
	}
}
