package channel

import (
	"context"
	"testing"

	"repro/internal/types"
	"repro/internal/values"
)

func TestSignalRefinementOfInterrogation(t *testing.T) {
	// An interrogation refines onto the four OSI primitives, split across
	// the two channel ends (Section 5.1).
	clientTrace := &SignalTrace{}
	serverTrace := &SignalTrace{}
	env := newEnv(t, ServerConfig{Stages: []Stage{&SignalTraceStage{Sink: serverTrace.Record}}})
	b := env.bind(t, BindConfig{Stages: []Stage{&SignalTraceStage{Sink: clientTrace.Record}}})
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	wantClient := []types.SignalPrimitive{types.Request, types.Confirm}
	wantServer := []types.SignalPrimitive{types.Indicate, types.Response}
	checkTrace(t, "client", clientTrace.Events(), "Echo", wantClient)
	checkTrace(t, "server", serverTrace.Events(), "Echo", wantServer)
}

func TestSignalRefinementOfAnnouncement(t *testing.T) {
	clientTrace := &SignalTrace{}
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Stages: []Stage{&SignalTraceStage{Sink: clientTrace.Record}}})
	if err := b.Announce(context.Background(), "Notify", []values.Value{values.Str("x")}); err != nil {
		t.Fatal(err)
	}
	// Announcements are REQUEST-only at the initiating end.
	checkTrace(t, "client", clientTrace.Events(), "Notify", []types.SignalPrimitive{types.Request})
}

func TestSignalTraceNilSink(t *testing.T) {
	s := &SignalTraceStage{}
	env := newEnv(t, ServerConfig{})
	b := env.bind(t, BindConfig{Stages: []Stage{s}})
	if _, _, err := b.Invoke(context.Background(), "Echo", []values.Value{values.Str("x")}); err != nil {
		t.Fatalf("nil sink must be harmless: %v", err)
	}
}

func checkTrace(t *testing.T, end string, got []SignalEvent, op string, want []types.SignalPrimitive) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s trace = %v, want %d events", end, got, len(want))
	}
	for i, ev := range got {
		if ev.Operation != op && ev.Operation != "" {
			t.Errorf("%s event %d operation = %q", end, i, ev.Operation)
		}
		if ev.Primitive != want[i] {
			t.Errorf("%s event %d = %v, want %v", end, i, ev.Primitive, want[i])
		}
	}
}
