package channel

import (
	"sync"

	"repro/internal/types"
	"repro/internal/wire"
)

// The tutorial (Section 5.1) layers the interaction forms: "underlying
// both operational interfaces and stream interfaces are signal interfaces
// which provide very low-level communications actions. The OSI service
// primitives (REQUEST, INDICATE, RESPONSE, and CONFIRM) are examples of
// signals." This file makes that refinement observable: SignalTraceStage
// maps every channel message to the OSI primitive it realises at this
// channel end, so an interrogation traces as the canonical four-primitive
// exchange:
//
//	client: Greet REQUEST        server: Greet INDICATE
//	server: Greet RESPONSE       client: Greet CONFIRM
//
// Announcements, flows and raw signals trace as REQUEST/INDICATE only.

// SignalEvent is one primitive observed at a channel end.
type SignalEvent struct {
	Operation string
	Primitive types.SignalPrimitive
}

// SignalTraceStage records the OSI-primitive view of the channel's
// traffic. Install it at either end (or both); each end sees its own half
// of the four-primitive exchange.
type SignalTraceStage struct {
	Sink func(SignalEvent)
}

var _ Stage = (*SignalTraceStage)(nil)

// Name identifies the stage.
func (*SignalTraceStage) Name() string { return "signal-trace" }

// Process maps the message to its primitive and passes it through.
func (s *SignalTraceStage) Process(dir Direction, m *wire.Message) error {
	if s.Sink == nil {
		return nil
	}
	var prim types.SignalPrimitive
	switch m.Kind {
	case wire.Call, wire.OneWay, wire.FlowMsg, wire.SignalMsg, wire.Probe, wire.FlowBatch:
		if dir == Outbound {
			prim = types.Request
		} else {
			prim = types.Indicate
		}
	case wire.Reply, wire.ErrReply, wire.ProbeAck, wire.CreditGrant:
		if dir == Outbound {
			prim = types.Response
		} else {
			prim = types.Confirm
		}
	default:
		return nil
	}
	s.Sink(SignalEvent{Operation: m.Operation, Primitive: prim})
	return nil
}

// SignalTrace is a concurrency-safe Sink that retains events.
type SignalTrace struct {
	mu     sync.Mutex
	events []SignalEvent
}

// Record appends an event; pass it as the stage's Sink.
func (t *SignalTrace) Record(e SignalEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events.
func (t *SignalTrace) Events() []SignalEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SignalEvent, len(t.events))
	copy(out, t.events)
	return out
}
