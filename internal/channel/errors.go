// Package channel implements the RM-ODP engineering channel of Figure 4:
// the composable pipeline of stubs, binders and protocol objects that
// connects basic engineering objects across nodes.
//
//	Client Object                           Server Object
//	     |                                        ^
//	   [stub stages]   — application-aware —  [stub stages]
//	   [binder]        — replay, relocation — [binder]
//	   [protocol obj]  — frames over conn —   [protocol obj]
//	          \________ communications ________/
//
// The client end is a Binding (obtained with Bind); the server end is a
// Server hosting servants for engineering object interfaces. Stubs and
// binders are Stage values configured per channel; which stages appear is
// decided by the transparency configurator (package transparency) from the
// binding's environment contract.
package channel

import (
	"errors"
	"fmt"
)

// Client-side channel error sentinels.
var (
	ErrClosed       = errors.New("channel: binding closed")
	ErrDisconnected = errors.New("channel: connection lost")
	ErrBadReply     = errors.New("channel: malformed reply")
	ErrTypeCheck    = errors.New("channel: interaction violates interface type")
	// ErrAttemptTimeout marks one attempt of an interrogation exceeding its
	// per-attempt bound while the call as a whole still had budget left, so
	// the retry loop may try again. The wrapped error carries the endpoint
	// and attempt index; match with errors.Is.
	ErrAttemptTimeout = errors.New("channel: attempt timed out")
)

// ErrSessionClosing reports that a frame was handed to a session whose send
// path had already begun shutting down, so the frame was never written.
// Before the batched sender existed this window was a silent drop: Send on
// a mid-close connection could return nil for a frame that would never
// depart. The sentinel wraps ErrDisconnected so every existing
// errors.Is(err, ErrDisconnected) retry/relocation policy treats it as the
// retriable connection loss it is, while errors.Is(err, ErrSessionClosing)
// still distinguishes the local-race case from a broken wire.
var ErrSessionClosing = fmt.Errorf("%w: session closing, frame not sent", ErrDisconnected)

// ErrStreamClosed reports that a flow stream's session died (or the stream
// was torn down) with the interaction unsent. It wraps ErrDisconnected so
// the retry/relocation machinery classifies it as the connection loss it
// is, while errors.Is(err, ErrStreamClosed) lets stream producers
// distinguish "this stream is gone, reopen it" from transient send errors.
var ErrStreamClosed = fmt.Errorf("channel: stream closed: %w", ErrDisconnected)

// ErrTooManyInFlight reports that an Invoke was refused because the binding
// already had BindConfig.MaxInFlight interrogations outstanding and the
// binding is configured to fail fast rather than queue. It is not a
// connection failure — errors.Is(err, ErrDisconnected) is false — so retry
// policies do not burn attempts on it.
var ErrTooManyInFlight = errors.New("channel: too many in-flight invocations")

// Infrastructure error codes carried in ErrReply frames. These are channel
// failures, distinct from application terminations (which are ordinary
// Reply frames with a termination name from the interface type).
const (
	CodeNoSuchInterface = "ERR_NO_SUCH_INTERFACE"
	CodeNoSuchOperation = "ERR_NO_SUCH_OPERATION"
	CodeBadArgs         = "ERR_BAD_ARGS"
	CodeReplay          = "ERR_REPLAY"
	CodeAuth            = "ERR_AUTH"
	CodeInternal        = "ERR_INTERNAL"
	CodeUnavailable     = "ERR_UNAVAILABLE"
)

// RemoteError is an infrastructure failure reported by the server end of
// the channel.
type RemoteError struct {
	Code   string // one of the Code* constants
	Detail string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	if e.Detail == "" {
		return "channel: remote error " + e.Code
	}
	return fmt.Sprintf("channel: remote error %s: %s", e.Code, e.Detail)
}

// IsRemote reports whether err is a RemoteError with the given code.
func IsRemote(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == code
}

// StageError is returned by a Stage to abort an interaction with a
// specific infrastructure code; the server end converts it to an ErrReply
// with that code rather than the generic CodeInternal.
type StageError struct {
	Code   string
	Detail string
}

// Error implements the error interface.
func (e *StageError) Error() string {
	return fmt.Sprintf("channel: stage rejected message: %s: %s", e.Code, e.Detail)
}
