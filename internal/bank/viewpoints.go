package bank

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enterprise"
	"repro/internal/information"
	"repro/internal/values"
)

// NewCommunity builds the enterprise specification of the branch
// (Section 3 of the tutorial): roles, example members, the deposit
// permission, the $500/day prohibition, and the obligation rule that a
// rate change obliges the manager to advise customers — plus the
// performative action SetInterestRate that triggers it.
func NewCommunity(name string) (*enterprise.Community, error) {
	c := enterprise.NewCommunity(name, "provide banking services to a geographical area")
	for _, role := range []string{"manager", "teller", "loans-officer", "customer"} {
		if err := c.DeclareRole(role); err != nil {
			return nil, err
		}
	}
	policies := []enterprise.Policy{
		{ID: "permit-deposit", Kind: enterprise.Permission, Role: "customer", Action: "Deposit",
			Condition: "account_open"},
		{ID: "permit-withdraw", Kind: enterprise.Permission, Role: "customer", Action: "Withdraw",
			Condition: "account_open"},
		{ID: "prohibit-over-limit", Kind: enterprise.Prohibition, Role: "customer", Action: "Withdraw",
			Condition: fmt.Sprintf("amount + withdrawn_today > %d", DailyLimit)},
		{ID: "permit-balance", Kind: enterprise.Permission, Role: "customer", Action: "Balance"},
		{ID: "permit-create", Kind: enterprise.Permission, Role: "manager", Action: "CreateAccount"},
		{ID: "permit-set-rate", Kind: enterprise.Permission, Role: "manager", Action: "SetInterestRate"},
		{ID: "oblige-rate-notice", Kind: enterprise.ObligationRule, Role: "manager", Action: "SetInterestRate",
			Duty: "NotifyCustomers"},
		{ID: "permit-approve-loan", Kind: enterprise.Permission, Role: "loans-officer", Action: "ApproveLoan"},
	}
	for _, p := range policies {
		if err := c.AddPolicy(p); err != nil {
			return nil, err
		}
	}
	err := c.DeclarePerformative(enterprise.PerformativeAction{
		Name: "SetInterestRate",
		Role: "manager",
		Effect: func(m *enterprise.Mutator, params values.Value) error {
			// The rate change is performative because it creates an
			// obligation; reading a balance, by contrast, changes no policy
			// and so does not appear here.
			m.Oblige("manager", "NotifyCustomers", "SetInterestRate")
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// NewModel builds the information specification of the branch
// (Section 4): the account schema with its invariant and dynamic schemas,
// and the owns-account relationship.
func NewModel() (*information.Model, error) {
	m := information.NewModel()
	if err := m.AddInvariant(information.InvariantSchema{
		Name: "daily-limit", Object: "Account",
		Condition: fmt.Sprintf("withdrawn_today <= %d", DailyLimit),
	}); err != nil {
		return nil, err
	}
	if err := m.AddInvariant(information.InvariantSchema{
		Name: "withdrawn-non-negative", Object: "Account",
		Condition: "withdrawn_today >= 0",
	}); err != nil {
		return nil, err
	}
	if err := m.AddInvariant(information.InvariantSchema{
		Name: "balance-non-negative", Object: "Account",
		Condition: "balance >= 0",
	}); err != nil {
		return nil, err
	}
	dynamics := []information.DynamicSchema{
		{
			Name: "Withdraw", Object: "Account",
			Guard: "d > 0 and balance >= d and open",
			Assignments: []information.Assignment{
				{Field: "balance", Expr: "balance - d"},
				{Field: "withdrawn_today", Expr: "withdrawn_today + d"},
			},
		},
		{
			Name: "Deposit", Object: "Account",
			Guard: "d > 0 and open",
			Assignments: []information.Assignment{
				{Field: "balance", Expr: "balance + d"},
			},
		},
		{
			Name: "ResetDay", Object: "Account",
			Assignments: []information.Assignment{
				{Field: "withdrawn_today", Expr: "0"},
			},
		},
		{
			Name: "CloseAccount", Object: "Account",
			Assignments: []information.Assignment{
				{Field: "open", Expr: "false"},
			},
		},
	}
	for _, d := range dynamics {
		if err := m.AddDynamic(d); err != nil {
			return nil, err
		}
	}
	if err := m.AddStatic(information.StaticSchema{
		Name: "midnight", Object: "Account",
		Condition: "withdrawn_today == 0",
	}); err != nil {
		return nil, err
	}
	// "The static schema owns-account could associate each account with a
	// customer": an account has exactly one owner.
	if err := m.DeclareRelation(information.RelationDecl{Name: "owns_account", MaxFrom: 1}); err != nil {
		return nil, err
	}
	return m, nil
}

// NewAccountState builds a fresh account state record for the
// information model.
func NewAccountState(balance int64) values.Value {
	return values.Record(
		values.F("balance", values.Int(balance)),
		values.F("withdrawn_today", values.Int(0)),
		values.F("open", values.Bool(true)),
	)
}

// Template is the computational object template of the branch: the
// behaviour plus its three interfaces (Figure 2 + Figure 3), each with
// the environment contract the tutorial's Section 5.3 motivates — secure,
// transactional interaction over a relocatable channel.
func Template(name string) core.ObjectTemplate {
	contract := core.Contract{
		Require: core.TransparencySet(core.Access | core.Location | core.Relocation |
			core.Failure | core.Transaction),
	}
	return core.ObjectTemplate{
		Name:     name,
		Behavior: "bank.branch",
		Arg:      values.Null(),
		Interfaces: []core.InterfaceDecl{
			{Type: TellerType(), Contract: contract},
			{Type: ManagerType(), Contract: contract},
			{Type: LoansOfficerType(), Contract: contract},
		},
	}
}
