// Package bank implements the tutorial's running example: the bank branch
// that threads through every section of the paper.
//
//   - Section 3 (enterprise): the branch community — manager, tellers,
//     customers; the $500/day prohibition; the interest-rate obligation
//     (NewCommunity).
//   - Section 4 (information): account schemas — the invariant
//     "withdrawn_today <= 500" constraining the Withdraw dynamic schema
//     (NewModel).
//   - Section 5 (computational, Figure 2): the branch object offering
//     BankTeller and BankManager interfaces, with LoansOfficer as the
//     second subtype of Figure 3 (TellerType, ManagerType,
//     LoansOfficerType, Behavior).
//   - Engineering: the behaviour's state lives in a transactional store,
//     refined for transaction transparency with transparency.Transactional,
//     and deploys onto nodes like any other engineering object.
package bank

import (
	"repro/internal/types"
	"repro/internal/values"
)

// DailyLimit is the tutorial's withdrawal limit: "customers must not
// withdraw more than $500 per day".
const DailyLimit = 500

// Dollars is the data type of money amounts.
func Dollars() *values.DataType { return values.TInt() }

// CustomerID is the data type of customer identifiers.
func CustomerID() *values.DataType { return values.TString() }

// AccountID is the data type of account identifiers.
func AccountID() *values.DataType { return values.TString() }

// TellerType is the BankTeller interface exactly as the tutorial writes
// it (Section 5.1), plus the Balance interrogation the tutorial assigns to
// the computational specification ("obtaining an account balance ... will
// be identified in the computational specification").
func TellerType() *types.Interface {
	return types.OpInterface("BankTeller",
		types.Op("Deposit",
			types.Params(
				types.P("c", CustomerID()),
				types.P("a", AccountID()),
				types.P("d", Dollars()),
			),
			types.Term("OK", types.P("new_balance", Dollars())),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Withdraw",
			types.Params(
				types.P("c", CustomerID()),
				types.P("a", AccountID()),
				types.P("d", Dollars()),
			),
			types.Term("OK", types.P("new_balance", Dollars())),
			types.Term("NotToday", types.P("today", Dollars()), types.P("daily_limit", Dollars())),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("Balance",
			types.Params(
				types.P("c", CustomerID()),
				types.P("a", AccountID()),
			),
			types.Term("OK", types.P("balance", Dollars())),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

// ManagerType is the BankManager interface: everything a teller can do
// plus CreateAccount — "accounts can be created only through the bank
// manager interface" (Figure 2).
func ManagerType() *types.Interface {
	return types.Extend("BankManager", TellerType(),
		types.Op("CreateAccount",
			types.Params(types.P("c", CustomerID())),
			types.Term("OK", types.P("a", AccountID())),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("CloseAccount",
			types.Params(types.P("a", AccountID())),
			types.Term("OK"),
			types.Term("Error", types.P("reason", values.TString())),
		),
		types.Op("ResetDay",
			types.Params(types.P("a", AccountID())),
			types.Term("OK"),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}

// LoansOfficerType is the second subtype of Figure 3: a teller that can
// also approve loans (but cannot create accounts).
func LoansOfficerType() *types.Interface {
	return types.Extend("LoansOfficer", TellerType(),
		types.Op("ApproveLoan",
			types.Params(
				types.P("c", CustomerID()),
				types.P("a", AccountID()),
				types.P("amount", Dollars()),
			),
			types.Term("OK", types.P("new_balance", Dollars())),
			types.Term("Declined", types.P("reason", values.TString())),
			types.Term("Error", types.P("reason", values.TString())),
		),
	)
}
