package bank

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/transactions"
	"repro/internal/types"
	"repro/internal/values"
)

// figure2 deploys the branch on a node and returns typed bindings to its
// teller, manager and loans-officer interfaces — the exact object
// configuration of Figure 2.
type figure2 struct {
	node    *engineering.Node
	store   *transactions.Store
	teller  *channel.Binding
	manager *channel.Binding
	loans   *channel.Binding
}

func deployFigure2(t *testing.T) *figure2 {
	t.Helper()
	net := netsim.New(1)
	reloc := relocator.New()
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID: "bank", Endpoint: "sim://bank", Transport: net.From("bank"), Locations: reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	coord := transactions.NewCoordinator()
	store := transactions.NewStore("branch-cbd", nil)
	RegisterBehavior(node.Behaviors(), coord, store)

	capsule, err := node.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cluster.CreateObject("bank.branch", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	bind := func(it *types.Interface) *channel.Binding {
		ref, err := obj.AddInterface(it)
		if err != nil {
			t.Fatal(err)
		}
		b, err := node.Bind(ref, channel.BindConfig{Type: it, Locator: reloc})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}
	return &figure2{
		node:    node,
		store:   store,
		teller:  bind(TellerType()),
		manager: bind(ManagerType()),
		loans:   bind(LoansOfficerType()),
	}
}

func call(t *testing.T, b *channel.Binding, op string, args ...values.Value) (string, []values.Value) {
	t.Helper()
	term, res, err := b.Invoke(context.Background(), op, args)
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return term, res
}

func str(s string) values.Value { return values.Str(s) }
func amt(d int64) values.Value  { return values.Int(d) }

func TestFigure2Scenario(t *testing.T) {
	f := deployFigure2(t)

	// Accounts can be created only through the bank manager interface.
	term, res := call(t, f.manager, "CreateAccount", str("alice"))
	if term != "OK" {
		t.Fatalf("CreateAccount = %q %v", term, res)
	}
	acct, _ := res[0].AsString()

	// The teller interface simply has no CreateAccount operation: the
	// client stub rejects it before it even reaches the wire.
	if _, _, err := f.teller.Invoke(context.Background(), "CreateAccount", []values.Value{str("bob")}); err == nil {
		t.Fatal("CreateAccount via teller interface should be impossible")
	}

	// Both interfaces can be used to deposit and withdraw money.
	if term, res := call(t, f.teller, "Deposit", str("alice"), str(acct), amt(1000)); term != "OK" {
		t.Fatalf("teller Deposit = %q %v", term, res)
	}
	if term, res := call(t, f.manager, "Withdraw", str("alice"), str(acct), amt(100)); term != "OK" {
		t.Fatalf("manager Withdraw = %q %v", term, res)
	}
	// And the loans officer substitutes for a teller too (Figure 3).
	if term, res := call(t, f.loans, "Withdraw", str("alice"), str(acct), amt(300)); term != "OK" {
		t.Fatalf("loans Withdraw = %q %v", term, res)
	}

	// The daily limit: 400 withdrawn so far; another 200 hits NotToday.
	term, res = call(t, f.teller, "Withdraw", str("alice"), str(acct), amt(200))
	if term != "NotToday" {
		t.Fatalf("over-limit withdrawal = %q %v", term, res)
	}
	if today, _ := res[0].AsInt(); today != 400 {
		t.Errorf("today = %d", today)
	}
	if limit, _ := res[1].AsInt(); limit != DailyLimit {
		t.Errorf("limit = %d", limit)
	}

	// Balance shows the aborted withdrawal did not touch the account.
	term, res = call(t, f.teller, "Balance", str("alice"), str(acct))
	if term != "OK" {
		t.Fatalf("Balance = %q", term)
	}
	if bal, _ := res[0].AsInt(); bal != 600 {
		t.Errorf("balance = %d, want 600", bal)
	}

	// Midnight reset (manager only) re-opens the day.
	if term, _ := call(t, f.manager, "ResetDay", str(acct)); term != "OK" {
		t.Fatalf("ResetDay = %q", term)
	}
	if term, _ = call(t, f.teller, "Withdraw", str("alice"), str(acct), amt(200)); term != "OK" {
		t.Fatalf("withdraw after reset = %q", term)
	}

	// Loans: the officer approves within the credit limit and declines
	// beyond it.
	term, res = call(t, f.loans, "ApproveLoan", str("alice"), str(acct), amt(1000))
	if term != "OK" {
		t.Fatalf("ApproveLoan = %q %v", term, res)
	}
	if term, _ := call(t, f.loans, "ApproveLoan", str("alice"), str(acct), amt(1_000_000)); term != "Declined" {
		t.Errorf("oversized loan = %q", term)
	}

	// Closing the account stops deposits (the enterprise permission's
	// "open account" condition).
	if term, _ := call(t, f.manager, "CloseAccount", str(acct)); term != "OK" {
		t.Fatal("CloseAccount failed")
	}
	if term, _ := call(t, f.teller, "Deposit", str("alice"), str(acct), amt(10)); term != "Error" {
		t.Errorf("deposit to closed account = %q", term)
	}
}

func TestBranchErrorCases(t *testing.T) {
	f := deployFigure2(t)
	term, res := call(t, f.manager, "CreateAccount", str("alice"))
	if term != "OK" {
		t.Fatal("CreateAccount failed")
	}
	acct, _ := res[0].AsString()

	cases := []struct {
		name string
		b    *channel.Binding
		op   string
		args []values.Value
		want string
	}{
		{"deposit-unknown-account", f.teller, "Deposit", []values.Value{str("x"), str("ghost"), amt(1)}, "Error"},
		{"deposit-negative", f.teller, "Deposit", []values.Value{str("x"), str(acct), amt(-5)}, "Error"},
		{"withdraw-unknown", f.teller, "Withdraw", []values.Value{str("x"), str("ghost"), amt(1)}, "Error"},
		{"withdraw-negative", f.teller, "Withdraw", []values.Value{str("x"), str(acct), amt(0)}, "Error"},
		{"withdraw-insufficient", f.teller, "Withdraw", []values.Value{str("x"), str(acct), amt(10)}, "Error"},
		{"balance-unknown", f.teller, "Balance", []values.Value{str("x"), str("ghost")}, "Error"},
		{"close-unknown", f.manager, "CloseAccount", []values.Value{str("ghost")}, "Error"},
		{"reset-unknown", f.manager, "ResetDay", []values.Value{str("ghost")}, "Error"},
		{"loan-unknown", f.loans, "ApproveLoan", []values.Value{str("x"), str("ghost"), amt(1)}, "Error"},
		{"loan-negative", f.loans, "ApproveLoan", []values.Value{str("x"), str(acct), amt(-1)}, "Error"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			term, _, err := c.b.Invoke(context.Background(), c.op, c.args)
			if err != nil || term != c.want {
				t.Errorf("%s = %q, %v; want %q", c.op, term, err, c.want)
			}
		})
	}
	// Unknown operation via an untyped direct handler call.
	coord := transactions.NewCoordinator()
	h := NewBranchHandler(coord, transactions.NewStore("x", nil))
	if _, _, err := h.Invoke(context.Background(), "Nope", nil); err == nil || !strings.Contains(err.Error(), "no operation") {
		t.Errorf("unknown op = %v", err)
	}
	// Without the Transactional refinement the behaviour refuses to run.
	raw := NewBranch(transactions.NewStore("y", nil))
	if _, _, err := raw.Invoke(context.Background(), "Balance", []values.Value{str("c"), str("a")}); err == nil {
		t.Error("un-refined branch should fail")
	}
}

func TestConcurrentCustomersConserveMoney(t *testing.T) {
	// Many customers hammer one account pair with transfers composed of
	// Withdraw+Deposit in application code; the ACID refinement keeps each
	// operation atomic, and the error terminations roll back cleanly.
	f := deployFigure2(t)
	_, res := call(t, f.manager, "CreateAccount", str("alice"))
	acctA, _ := res[0].AsString()
	_, res = call(t, f.manager, "CreateAccount", str("bob"))
	acctB, _ := res[0].AsString()
	call(t, f.teller, "Deposit", str("alice"), str(acctA), amt(250))
	call(t, f.teller, "Deposit", str("bob"), str(acctB), amt(250))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				from, to := acctA, acctB
				if (w+i)%2 == 0 {
					from, to = acctB, acctA
				}
				term, _, err := f.teller.Invoke(context.Background(), "Withdraw",
					[]values.Value{str("c"), str(from), amt(1)})
				if err != nil {
					t.Errorf("withdraw: %v", err)
					return
				}
				if term != "OK" {
					continue // limit reached or drained; nothing moved
				}
				if _, _, err := f.teller.Invoke(context.Background(), "Deposit",
					[]values.Value{str("c"), str(to), amt(1)}); err != nil {
					t.Errorf("deposit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_, resA := call(t, f.teller, "Balance", str("c"), str(acctA))
	_, resB := call(t, f.teller, "Balance", str("c"), str(acctB))
	balA, _ := resA[0].AsInt()
	balB, _ := resB[0].AsInt()
	if balA+balB != 500 {
		t.Errorf("total = %d, want 500 (money not conserved)", balA+balB)
	}
}

func TestInterfaceSubtypingMatchesFigure3(t *testing.T) {
	teller, manager, loans := TellerType(), ManagerType(), LoansOfficerType()
	if err := types.Subtype(manager, teller); err != nil {
		t.Errorf("manager ≤ teller: %v", err)
	}
	if err := types.Subtype(loans, teller); err != nil {
		t.Errorf("loans ≤ teller: %v", err)
	}
	if types.IsSubtype(teller, manager) || types.IsSubtype(loans, manager) {
		t.Error("nothing should substitute for the manager")
	}
}

func TestViewpointBuilders(t *testing.T) {
	c, err := NewCommunity("branch-cbd")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddObject("kerry", 1); err != nil { // enterprise.Active
		t.Fatal(err)
	}
	if err := c.Assign("kerry", "manager"); err != nil {
		t.Fatal(err)
	}
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject("acct", "Account", NewAccountState(100)); err != nil {
		t.Fatal(err)
	}
	// The model rejects what the branch rejects.
	if err := m.Apply("acct", "Withdraw", values.Record(values.F("d", values.Int(600)))); err == nil {
		t.Error("over-limit withdrawal should violate the information model")
	}
	tmpl := Template("branch-cbd")
	if err := tmpl.Validate(); err != nil {
		t.Errorf("template: %v", err)
	}
	if _, ok := tmpl.Interface("BankManager"); !ok {
		t.Error("template should offer BankManager")
	}
}

func TestStorePersistsAcrossBehaviorInstances(t *testing.T) {
	// The branch's state outlives the behaviour instance (it lives in the
	// store), so deactivation or migration of the object keeps accounts.
	coord := transactions.NewCoordinator()
	log := transactions.NewLog()
	store := transactions.NewStore("branch", log)
	h1 := NewBranchHandler(coord, store)
	ctx := context.Background()
	term, res, err := h1.Invoke(ctx, "CreateAccount", []values.Value{str("alice")})
	if err != nil || term != "OK" {
		t.Fatal(err)
	}
	acct, _ := res[0].AsString()
	if term, _, err := h1.Invoke(ctx, "Deposit", []values.Value{str("alice"), str(acct), amt(42)}); err != nil || term != "OK" {
		t.Fatal(err)
	}
	// "Crash": rebuild the store from its log, then a new behaviour.
	recovered := transactions.Recover("branch", log, func(tx uint64) bool {
		committed, _ := coord.Decided(tx)
		return committed
	})
	h2 := NewBranchHandler(coord, recovered)
	term, res, err = h2.Invoke(ctx, "Balance", []values.Value{str("alice"), str(acct)})
	if err != nil || term != "OK" {
		t.Fatal(err)
	}
	if bal, _ := res[0].AsInt(); bal != 42 {
		t.Errorf("recovered balance = %d", bal)
	}
}
