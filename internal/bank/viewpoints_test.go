package bank

import (
	"testing"

	"repro/internal/enterprise"
	"repro/internal/values"
)

func TestCommunityPoliciesMatchPaper(t *testing.T) {
	c, err := NewCommunity("branch")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddObject("kerry", enterprise.Active); err != nil {
		t.Fatal(err)
	}
	if err := c.AddObject("alice", enterprise.Active); err != nil {
		t.Fatal(err)
	}
	if err := c.Assign("kerry", "manager"); err != nil {
		t.Fatal(err)
	}
	if err := c.Assign("alice", "customer"); err != nil {
		t.Fatal(err)
	}

	// Permission: deposit into an open account.
	v, err := c.Check("alice", "Deposit", values.Record(
		values.F("account_open", values.Bool(true)),
	))
	if err != nil || !v.Allowed {
		t.Errorf("open deposit = %+v, %v", v, err)
	}
	// Not into a closed one.
	if _, err := c.Check("alice", "Deposit", values.Record(
		values.F("account_open", values.Bool(false)),
	)); err == nil {
		t.Error("closed deposit should be denied")
	}
	// The $500/day prohibition, at the paper's exact numbers.
	if _, err := c.Check("alice", "Withdraw", values.Record(
		values.F("amount", values.Int(200)),
		values.F("withdrawn_today", values.Int(400)),
		values.F("account_open", values.Bool(true)),
	)); err == nil {
		t.Error("over-limit withdrawal should be prohibited")
	}
	// The performative rate change creates the notification obligation.
	if err := c.Perform("kerry", "SetInterestRate", values.Record(
		values.F("rate", values.Float(5.25)),
	)); err != nil {
		t.Fatal(err)
	}
	obls := c.Outstanding("manager")
	if len(obls) != 1 || obls[0].Duty != "NotifyCustomers" {
		t.Errorf("obligations = %+v", obls)
	}
	// Customers cannot perform it.
	if err := c.Perform("alice", "SetInterestRate", values.Record(
		values.F("rate", values.Float(0)),
	)); err == nil {
		t.Error("customer rate change should be denied")
	}
}

func TestModelStaticAndRelationship(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject("acct", "Account", NewAccountState(100)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject("alice", "Customer", values.Record(values.F("name", values.Str("Alice")))); err != nil {
		t.Fatal(err)
	}
	// Midnight holds initially, breaks after a withdrawal, and holds again
	// after the reset schema.
	if err := m.CheckStatic("midnight", "acct"); err != nil {
		t.Errorf("fresh account midnight = %v", err)
	}
	if err := m.Apply("acct", "Withdraw", values.Record(values.F("d", values.Int(50)))); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckStatic("midnight", "acct"); err == nil {
		t.Error("midnight should fail after a withdrawal")
	}
	if err := m.Apply("acct", "ResetDay", values.Null()); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckStatic("midnight", "acct"); err != nil {
		t.Errorf("midnight after reset = %v", err)
	}
	// Deposits into a closed account violate the schema guard.
	if err := m.Apply("acct", "CloseAccount", values.Null()); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply("acct", "Deposit", values.Record(values.F("d", values.Int(1)))); err == nil {
		t.Error("deposit into closed account should fail")
	}
	// owns_account: one owner per account.
	if err := m.Relate("owns_account", "alice", "acct"); err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject("bob", "Customer", values.Record(values.F("name", values.Str("Bob")))); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate("owns_account", "bob", "acct"); err == nil {
		t.Error("second owner should violate cardinality")
	}
}
