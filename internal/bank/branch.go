package bank

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/channel"
	"repro/internal/engineering"
	"repro/internal/transactions"
	"repro/internal/transparency"
	"repro/internal/values"
)

// ErrNoTransaction is returned when the branch runs without its
// transaction-transparency refinement.
var ErrNoTransaction = errors.New("bank: no ambient transaction (wrap with transparency.Transactional)")

// Branch is the bank branch computational object of Figure 2. Its state —
// accounts and the account counter — lives in a transactional store, and
// every operation reads and writes it through the ambient transaction
// (the transaction-transparency refinement of Section 9.3), so concurrent
// operations through any of the branch's interfaces are ACID.
//
// The same behaviour serves all three interface types; which operations a
// client can reach is governed by the interface type it is bound to
// (CreateAccount exists only on the BankManager interface), exactly as in
// Figure 2.
type Branch struct {
	store *transactions.Store
	limit int64
}

// NewBranch creates the branch behaviour over a transactional store.
func NewBranch(store *transactions.Store) *Branch {
	return &Branch{store: store, limit: DailyLimit}
}

// NewBranchHandler builds the deployable, transaction-transparent branch:
// the behaviour refined by transparency.Transactional over a fresh store.
func NewBranchHandler(coord *transactions.Coordinator, store *transactions.Store) channel.Handler {
	return transparency.Transactional(coord, NewBranch(store))
}

// RegisterBehavior installs the branch behaviour factory under
// "bank.branch" in a node's registry. Each object instance shares the
// given store and coordinator (a branch's accounts survive the object, as
// a real bank's would).
func RegisterBehavior(reg *engineering.BehaviorRegistry, coord *transactions.Coordinator, store *transactions.Store) {
	reg.Register("bank.branch", func(values.Value) (engineering.Behavior, error) {
		return handlerBehavior{NewBranchHandler(coord, store)}, nil
	})
}

// handlerBehavior adapts a channel.Handler to engineering.Behavior.
type handlerBehavior struct {
	channel.Handler
}

const (
	fieldBalance   = "balance"
	fieldWithdrawn = "withdrawn_today"
	fieldOpen      = "open"
	fieldOwner     = "owner"
)

func accountKey(a string) string { return "acct/" + a }

// Invoke dispatches the branch operations. It expects the ambient
// transaction installed by the Transactional refinement.
func (b *Branch) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	tx := transparency.TxFrom(ctx)
	if tx == nil {
		return "", nil, ErrNoTransaction
	}
	switch op {
	case "Deposit":
		return b.deposit(tx, args)
	case "Withdraw":
		return b.withdraw(tx, args)
	case "Balance":
		return b.balance(tx, args)
	case "CreateAccount":
		return b.createAccount(tx, args)
	case "CloseAccount":
		return b.closeAccount(tx, args)
	case "ResetDay":
		return b.resetDay(tx, args)
	case "ApproveLoan":
		return b.approveLoan(tx, args)
	}
	return "", nil, fmt.Errorf("bank: branch has no operation %q", op)
}

type account struct {
	balance   int64
	withdrawn int64
	open      bool
	owner     string
}

// load reads the account stored under key (an accountKey value, computed
// once per operation so load/save pairs share it).
func (b *Branch) load(tx *transactions.Tx, key string) (account, error) {
	v, err := tx.Read(b.store, key)
	if err != nil {
		return account{}, err
	}
	var a account
	if f, ok := v.FieldByName(fieldBalance); ok {
		a.balance, _ = f.AsInt()
	}
	if f, ok := v.FieldByName(fieldWithdrawn); ok {
		a.withdrawn, _ = f.AsInt()
	}
	if f, ok := v.FieldByName(fieldOpen); ok {
		a.open, _ = f.AsBool()
	}
	if f, ok := v.FieldByName(fieldOwner); ok {
		a.owner, _ = f.AsString()
	}
	return a, nil
}

func (b *Branch) save(tx *transactions.Tx, key string, a account) error {
	// The field slice is built solely for this record, so handing over
	// ownership (no defensive copy) is safe and saves an allocation on the
	// hottest write path in the repository.
	return tx.Write(b.store, key, values.RecordOwned([]values.Field{
		values.F(fieldBalance, values.Int(a.balance)),
		values.F(fieldWithdrawn, values.Int(a.withdrawn)),
		values.F(fieldOpen, values.Bool(a.open)),
		values.F(fieldOwner, values.Str(a.owner)),
	}))
}

func errorTerm(reason string) (string, []values.Value, error) {
	return "Error", []values.Value{values.Str(reason)}, nil
}

func (b *Branch) deposit(tx *transactions.Tx, args []values.Value) (string, []values.Value, error) {
	a, _ := args[1].AsString()
	d, _ := args[2].AsInt()
	if d <= 0 {
		return errorTerm("deposit amount must be positive")
	}
	key := accountKey(a)
	acct, err := b.load(tx, key)
	if err != nil {
		return errorTerm("no such account: " + a)
	}
	if !acct.open {
		// Enterprise permission: "money can be deposited into an open
		// account" — the computational behaviour honours the policy.
		return errorTerm("account closed: " + a)
	}
	acct.balance += d
	if err := b.save(tx, key, acct); err != nil {
		return "", nil, err
	}
	return "OK", []values.Value{values.Int(acct.balance)}, nil
}

func (b *Branch) withdraw(tx *transactions.Tx, args []values.Value) (string, []values.Value, error) {
	a, _ := args[1].AsString()
	d, _ := args[2].AsInt()
	if d <= 0 {
		return errorTerm("withdrawal amount must be positive")
	}
	key := accountKey(a)
	acct, err := b.load(tx, key)
	if err != nil {
		return errorTerm("no such account: " + a)
	}
	if !acct.open {
		return errorTerm("account closed: " + a)
	}
	if acct.balance < d {
		return errorTerm("insufficient funds")
	}
	if acct.withdrawn+d > b.limit {
		// The information viewpoint's invariant surfaces computationally
		// as the NotToday termination (Section 5.1's signature).
		return "NotToday", []values.Value{
			values.Int(acct.withdrawn),
			values.Int(b.limit),
		}, nil
	}
	acct.balance -= d
	acct.withdrawn += d
	if err := b.save(tx, key, acct); err != nil {
		return "", nil, err
	}
	return "OK", []values.Value{values.Int(acct.balance)}, nil
}

func (b *Branch) balance(tx *transactions.Tx, args []values.Value) (string, []values.Value, error) {
	a, _ := args[1].AsString()
	key := accountKey(a)
	acct, err := b.load(tx, key)
	if err != nil {
		return errorTerm("no such account: " + a)
	}
	return "OK", []values.Value{values.Int(acct.balance)}, nil
}

func (b *Branch) createAccount(tx *transactions.Tx, args []values.Value) (string, []values.Value, error) {
	c, _ := args[0].AsString()
	next := int64(1)
	if v, err := tx.Read(b.store, "meta/next_account"); err == nil {
		next, _ = v.AsInt()
	}
	id := fmt.Sprintf("acct-%d", next)
	if err := tx.Write(b.store, "meta/next_account", values.Int(next+1)); err != nil {
		return "", nil, err
	}
	if err := b.save(tx, accountKey(id), account{open: true, owner: c}); err != nil {
		return "", nil, err
	}
	return "OK", []values.Value{values.Str(id)}, nil
}

func (b *Branch) closeAccount(tx *transactions.Tx, args []values.Value) (string, []values.Value, error) {
	a, _ := args[0].AsString()
	key := accountKey(a)
	acct, err := b.load(tx, key)
	if err != nil {
		return errorTerm("no such account: " + a)
	}
	acct.open = false
	if err := b.save(tx, key, acct); err != nil {
		return "", nil, err
	}
	return "OK", nil, nil
}

func (b *Branch) resetDay(tx *transactions.Tx, args []values.Value) (string, []values.Value, error) {
	a, _ := args[0].AsString()
	key := accountKey(a)
	acct, err := b.load(tx, key)
	if err != nil {
		return errorTerm("no such account: " + a)
	}
	acct.withdrawn = 0
	if err := b.save(tx, key, acct); err != nil {
		return "", nil, err
	}
	return "OK", nil, nil
}

func (b *Branch) approveLoan(tx *transactions.Tx, args []values.Value) (string, []values.Value, error) {
	a, _ := args[1].AsString()
	amount, _ := args[2].AsInt()
	if amount <= 0 {
		return errorTerm("loan amount must be positive")
	}
	key := accountKey(a)
	acct, err := b.load(tx, key)
	if err != nil {
		return errorTerm("no such account: " + a)
	}
	if !acct.open {
		return errorTerm("account closed: " + a)
	}
	// Credit policy: loans up to 10× the current balance.
	if amount > acct.balance*10 {
		return "Declined", []values.Value{values.Str("amount exceeds credit limit")}, nil
	}
	acct.balance += amount
	if err := b.save(tx, key, acct); err != nil {
		return "", nil, err
	}
	return "OK", []values.Value{values.Int(acct.balance)}, nil
}
