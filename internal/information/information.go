// Package information implements the RM-ODP information viewpoint
// (Section 4 of the tutorial): the semantics of information and
// information processing, expressed as schemas over object state.
//
//   - a static schema captures state at a particular instant ("at
//     midnight, the amount-withdrawn-today is $0");
//   - an invariant schema restricts state at all times ("the
//     amount-withdrawn-today is less than or equal to $500");
//   - a dynamic schema defines a permitted change of state ("a withdrawal
//     of $X decreases the balance by $X and increases the
//     amount-withdrawn-today by $X") — and "a dynamic schema is always
//     constrained by the invariant schemas": an update that would violate
//     an invariant is rejected and the state unchanged.
//
// Schemas also describe relationships between objects (the static schema
// "owns account" associating accounts with customers) and compose into
// schemas of composite objects (a branch as customers + accounts + the
// ownership relation).
//
// A Model is an executable information specification: it holds object
// states (record values), enforces invariants on every dynamic change,
// and maintains declared relationships with cardinality constraints.
package information

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/constraint"
	"repro/internal/values"
)

// Information error sentinels.
var (
	ErrNoSuchObject    = errors.New("information: no such object")
	ErrNoSuchSchema    = errors.New("information: no such schema")
	ErrNoSuchRelation  = errors.New("information: no such relation")
	ErrDuplicate       = errors.New("information: duplicate declaration")
	ErrBadSchema       = errors.New("information: invalid schema")
	ErrInvariant       = errors.New("information: invariant violated")
	ErrGuard           = errors.New("information: dynamic schema guard not satisfied")
	ErrStatic          = errors.New("information: static schema does not hold")
	ErrCardinality     = errors.New("information: relation cardinality violated")
	ErrNameCollision   = errors.New("information: state and parameter names collide")
	ErrNotRelatable    = errors.New("information: relation endpoints must exist")
	ErrCompositeMember = errors.New("information: composite member must exist")
)

// Assignment is one declarative field update of a dynamic schema: the
// expression is evaluated over the object's pre-state merged with the
// change parameters, and its result becomes the field's new value.
type Assignment struct {
	Field string
	Expr  string

	expr *constraint.Expr
}

// DynamicSchema is a permitted state change.
type DynamicSchema struct {
	Name string
	// Object names the object (or composite) kind this change applies to;
	// "" applies to any object.
	Object string
	// Guard is a pre-condition over pre-state + parameters ("" = always).
	Guard string
	// Assignments compute the post-state.
	Assignments []Assignment
	// Post is an optional post-condition over the post-state + parameters.
	Post string

	guard *constraint.Expr
	post  *constraint.Expr
}

// InvariantSchema restricts an object's state at all times.
type InvariantSchema struct {
	Name      string
	Object    string // "" = every object
	Condition string

	cond *constraint.Expr
}

// StaticSchema captures a state assertion at some instant, checked on
// demand (e.g. by the midnight reset job).
type StaticSchema struct {
	Name      string
	Object    string
	Condition string

	cond *constraint.Expr
}

// RelationDecl declares a named relationship with optional cardinality
// bounds: MaxTo bounds how many targets one source may have, MaxFrom how
// many sources may point at one target (owns-account: MaxFrom = 1 — an
// account has exactly one owning customer).
type RelationDecl struct {
	Name    string
	MaxTo   int // 0 = unbounded
	MaxFrom int // 0 = unbounded
}

// Model is an executable information specification.
type Model struct {
	mu         sync.Mutex
	objects    map[string]values.Value
	kinds      map[string]string // object -> kind (schema scope)
	invariants []*InvariantSchema
	statics    map[string]*StaticSchema
	dynamics   map[string]*DynamicSchema
	relations  map[string]*RelationDecl
	links      map[string]map[string]map[string]bool // rel -> from -> to
	composites map[string][]string

	changes    uint64
	rejections uint64
}

// NewModel returns an empty information model.
func NewModel() *Model {
	return &Model{
		objects:    make(map[string]values.Value),
		kinds:      make(map[string]string),
		statics:    make(map[string]*StaticSchema),
		dynamics:   make(map[string]*DynamicSchema),
		relations:  make(map[string]*RelationDecl),
		links:      make(map[string]map[string]map[string]bool),
		composites: make(map[string][]string),
	}
}

// PutObject introduces (or replaces) an object of the given kind with an
// initial state, which must satisfy the applicable invariants.
func (m *Model) PutObject(name, kind string, state values.Value) error {
	if state.Kind() != values.KindRecord {
		return fmt.Errorf("%w: state of %q must be a record", ErrBadSchema, name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkInvariantsLocked(kind, state); err != nil {
		return err
	}
	m.objects[name] = state
	m.kinds[name] = kind
	return nil
}

// Object returns the current state of an object.
func (m *Model) Object(name string) (values.Value, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.objects[name]
	if !ok {
		return values.Value{}, fmt.Errorf("%w: %q", ErrNoSuchObject, name)
	}
	return st, nil
}

// Objects returns the sorted names of all objects.
func (m *Model) Objects() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.objects))
	for n := range m.objects {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddInvariant installs an invariant schema. Every existing object of the
// schema's kind must already satisfy it.
func (m *Model) AddInvariant(s InvariantSchema) error {
	if s.Name == "" || s.Condition == "" {
		return fmt.Errorf("%w: invariant needs a name and a condition", ErrBadSchema)
	}
	expr, err := constraint.Parse(s.Condition)
	if err != nil {
		return fmt.Errorf("%w: invariant %q: %v", ErrBadSchema, s.Name, err)
	}
	s.cond = expr
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, inv := range m.invariants {
		if inv.Name == s.Name {
			return fmt.Errorf("%w: invariant %q", ErrDuplicate, s.Name)
		}
	}
	// Retroactive check: an invariant that existing state violates is
	// rejected, keeping the model consistent by construction.
	for name, st := range m.objects {
		if s.Object != "" && m.kinds[name] != s.Object {
			continue
		}
		full := m.stateForChecks(name, st)
		ok, err := expr.Matches(full)
		if err == nil && !ok {
			return fmt.Errorf("%w: existing object %q violates new invariant %q", ErrInvariant, name, s.Name)
		}
	}
	cp := s
	m.invariants = append(m.invariants, &cp)
	return nil
}

// AddStatic installs a static schema, checkable with CheckStatic.
func (m *Model) AddStatic(s StaticSchema) error {
	if s.Name == "" || s.Condition == "" {
		return fmt.Errorf("%w: static schema needs a name and a condition", ErrBadSchema)
	}
	expr, err := constraint.Parse(s.Condition)
	if err != nil {
		return fmt.Errorf("%w: static %q: %v", ErrBadSchema, s.Name, err)
	}
	s.cond = expr
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.statics[s.Name]; ok {
		return fmt.Errorf("%w: static %q", ErrDuplicate, s.Name)
	}
	cp := s
	m.statics[s.Name] = &cp
	return nil
}

// CheckStatic verifies a static schema against an object's current state.
func (m *Model) CheckStatic(schemaName, object string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.statics[schemaName]
	if !ok {
		return fmt.Errorf("%w: static %q", ErrNoSuchSchema, schemaName)
	}
	st, ok := m.objects[object]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchObject, object)
	}
	hold, err := s.cond.Matches(m.stateForChecks(object, st))
	if err != nil {
		return fmt.Errorf("%w: static %q on %q: %v", ErrStatic, schemaName, object, err)
	}
	if !hold {
		return fmt.Errorf("%w: %q on %q", ErrStatic, schemaName, object)
	}
	return nil
}

// AddDynamic installs a dynamic schema.
func (m *Model) AddDynamic(s DynamicSchema) error {
	if s.Name == "" {
		return fmt.Errorf("%w: dynamic schema needs a name", ErrBadSchema)
	}
	if len(s.Assignments) == 0 {
		return fmt.Errorf("%w: dynamic %q changes nothing", ErrBadSchema, s.Name)
	}
	var err error
	if s.guard, err = constraint.Parse(s.Guard); err != nil {
		return fmt.Errorf("%w: dynamic %q guard: %v", ErrBadSchema, s.Name, err)
	}
	if s.post, err = constraint.Parse(s.Post); err != nil {
		return fmt.Errorf("%w: dynamic %q post: %v", ErrBadSchema, s.Name, err)
	}
	for i := range s.Assignments {
		a := &s.Assignments[i]
		if a.Field == "" {
			return fmt.Errorf("%w: dynamic %q assignment %d has no field", ErrBadSchema, s.Name, i)
		}
		if a.expr, err = constraint.Parse(a.Expr); err != nil {
			return fmt.Errorf("%w: dynamic %q assignment %q: %v", ErrBadSchema, s.Name, a.Field, err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dynamics[s.Name]; ok {
		return fmt.Errorf("%w: dynamic %q", ErrDuplicate, s.Name)
	}
	cp := s
	cp.Assignments = append([]Assignment(nil), s.Assignments...)
	m.dynamics[s.Name] = &cp
	return nil
}

// Apply performs a dynamic schema on an object: evaluate the guard over
// pre-state + parameters, compute the post-state from the assignments,
// check the post-condition and every invariant, and only then install the
// new state. On any failure the state is unchanged.
func (m *Model) Apply(object, schemaName string, params values.Value) error {
	if params.IsNull() {
		params = values.Record()
	}
	if params.Kind() != values.KindRecord {
		return fmt.Errorf("%w: params must be a record", ErrBadSchema)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.changes++
	s, ok := m.dynamics[schemaName]
	if !ok {
		m.rejections++
		return fmt.Errorf("%w: dynamic %q", ErrNoSuchSchema, schemaName)
	}
	st, ok := m.objects[object]
	if !ok {
		m.rejections++
		return fmt.Errorf("%w: %q", ErrNoSuchObject, object)
	}
	if s.Object != "" && m.kinds[object] != s.Object {
		m.rejections++
		return fmt.Errorf("%w: dynamic %q applies to %q objects, %q is %q",
			ErrBadSchema, schemaName, s.Object, object, m.kinds[object])
	}
	// Merge pre-state and parameters into the evaluation environment;
	// name collisions are rejected rather than silently shadowed.
	env, err := mergeRecords(st, params)
	if err != nil {
		m.rejections++
		return err
	}
	if hold, err := s.guard.Matches(env); err != nil || !hold {
		m.rejections++
		if err != nil {
			return fmt.Errorf("%w: %q on %q: %v", ErrGuard, schemaName, object, err)
		}
		return fmt.Errorf("%w: %q on %q", ErrGuard, schemaName, object)
	}
	// Compute the post-state.
	post := st
	for _, a := range s.Assignments {
		v, err := a.expr.Eval(env)
		if err != nil {
			m.rejections++
			return fmt.Errorf("%w: dynamic %q assignment %q: %v", ErrBadSchema, schemaName, a.Field, err)
		}
		post = setField(post, a.Field, v)
	}
	// Post-condition over post-state + params.
	postEnv, err := mergeRecords(post, params)
	if err != nil {
		m.rejections++
		return err
	}
	if hold, err := s.post.Matches(postEnv); err != nil || !hold {
		m.rejections++
		return fmt.Errorf("%w: post-condition of %q on %q", ErrGuard, schemaName, object)
	}
	// "A dynamic schema is always constrained by the invariant schemas."
	if err := m.checkInvariantsForLocked(object, post); err != nil {
		m.rejections++
		return err
	}
	m.objects[object] = post
	return nil
}

func (m *Model) checkInvariantsForLocked(object string, state values.Value) error {
	return m.checkInvariantsNamedLocked(m.kinds[object], object, state)
}

func (m *Model) checkInvariantsLocked(kind string, state values.Value) error {
	return m.checkInvariantsNamedLocked(kind, "", state)
}

func (m *Model) checkInvariantsNamedLocked(kind, object string, state values.Value) error {
	for _, inv := range m.invariants {
		if inv.Object != "" && inv.Object != kind {
			continue
		}
		env := state
		if object != "" {
			env = m.stateForChecksPost(object, state)
		}
		hold, err := inv.cond.Matches(env)
		if err != nil {
			// An invariant that does not apply to this state shape is
			// treated as violated: schemas must be total over their kind.
			return fmt.Errorf("%w: %q: %v", ErrInvariant, inv.Name, err)
		}
		if !hold {
			return fmt.Errorf("%w: %q", ErrInvariant, inv.Name)
		}
	}
	return nil
}

// stateForChecks augments an object's state record for schema evaluation.
// Currently the state itself; composites are expanded member-wise.
func (m *Model) stateForChecks(name string, st values.Value) values.Value {
	if members, ok := m.composites[name]; ok {
		fields := make([]values.Field, 0, len(members))
		for _, mem := range members {
			fields = append(fields, values.F(mem, m.objects[mem]))
		}
		return values.Record(fields...)
	}
	return st
}

func (m *Model) stateForChecksPost(name string, st values.Value) values.Value {
	if _, ok := m.composites[name]; ok {
		return m.stateForChecks(name, st)
	}
	return st
}

// DeclareComposite declares a composite object whose state, for schema
// purposes, is the record of its members' states ("a bank branch consists
// of a set of customers, a set of accounts, and the owns-account
// relationships").
func (m *Model) DeclareComposite(name string, members ...string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objects[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	for _, mem := range members {
		if _, ok := m.objects[mem]; !ok {
			return fmt.Errorf("%w: %q", ErrCompositeMember, mem)
		}
	}
	m.composites[name] = append([]string(nil), members...)
	m.objects[name] = values.Record() // state materialised on demand
	m.kinds[name] = "composite:" + name
	return nil
}

// ---------------------------------------------------------------------------
// relationships

// DeclareRelation introduces a named relationship.
func (m *Model) DeclareRelation(d RelationDecl) error {
	if d.Name == "" {
		return fmt.Errorf("%w: relation needs a name", ErrBadSchema)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.relations[d.Name]; ok {
		return fmt.Errorf("%w: relation %q", ErrDuplicate, d.Name)
	}
	cp := d
	m.relations[d.Name] = &cp
	m.links[d.Name] = make(map[string]map[string]bool)
	return nil
}

// Relate records (from, to) in a relation, enforcing its cardinality.
func (m *Model) Relate(rel, from, to string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.relations[rel]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchRelation, rel)
	}
	if _, ok := m.objects[from]; !ok {
		return fmt.Errorf("%w: %q", ErrNotRelatable, from)
	}
	if _, ok := m.objects[to]; !ok {
		return fmt.Errorf("%w: %q", ErrNotRelatable, to)
	}
	links := m.links[rel]
	if links[from][to] {
		return nil // idempotent
	}
	if d.MaxTo > 0 && len(links[from]) >= d.MaxTo {
		return fmt.Errorf("%w: %q may relate to at most %d objects via %q", ErrCardinality, from, d.MaxTo, rel)
	}
	if d.MaxFrom > 0 {
		count := 0
		for _, tos := range links {
			if tos[to] {
				count++
			}
		}
		if count >= d.MaxFrom {
			return fmt.Errorf("%w: %q may be related from at most %d objects via %q", ErrCardinality, to, d.MaxFrom, rel)
		}
	}
	set, ok := links[from]
	if !ok {
		set = make(map[string]bool)
		links[from] = set
	}
	set[to] = true
	return nil
}

// Unrelate removes (from, to) from a relation.
func (m *Model) Unrelate(rel, from, to string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.relations[rel]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchRelation, rel)
	}
	delete(m.links[rel][from], to)
	return nil
}

// Related returns the sorted targets of from under rel.
func (m *Model) Related(rel, from string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for to := range m.links[rel][from] {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

// Owners returns the sorted sources relating to `to` under rel (the
// inverse query: which customer owns this account?).
func (m *Model) Owners(rel, to string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for from, tos := range m.links[rel] {
		if tos[to] {
			out = append(out, from)
		}
	}
	sort.Strings(out)
	return out
}

// Dynamics returns the sorted names of declared dynamic schemas.
func (m *Model) Dynamics() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.dynamics))
	for n := range m.dynamics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasDynamic reports whether a dynamic schema is declared.
func (m *Model) HasDynamic(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.dynamics[name]
	return ok
}

// Stats returns (dynamic changes attempted, rejected).
func (m *Model) Stats() (changes, rejections uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.changes, m.rejections
}

// ---------------------------------------------------------------------------
// record helpers

func mergeRecords(a, b values.Value) (values.Value, error) {
	fields := make([]values.Field, 0, a.NumFields()+b.NumFields())
	seen := make(map[string]bool, a.NumFields())
	for i := 0; i < a.NumFields(); i++ {
		f := a.FieldAt(i)
		fields = append(fields, f)
		seen[f.Name] = true
	}
	for i := 0; i < b.NumFields(); i++ {
		f := b.FieldAt(i)
		if seen[f.Name] {
			return values.Value{}, fmt.Errorf("%w: %q", ErrNameCollision, f.Name)
		}
		fields = append(fields, f)
	}
	return values.Record(fields...), nil
}

func setField(rec values.Value, name string, v values.Value) values.Value {
	fields := make([]values.Field, 0, rec.NumFields()+1)
	replaced := false
	for i := 0; i < rec.NumFields(); i++ {
		f := rec.FieldAt(i)
		if f.Name == name {
			fields = append(fields, values.F(name, v))
			replaced = true
		} else {
			fields = append(fields, f)
		}
	}
	if !replaced {
		fields = append(fields, values.F(name, v))
	}
	return values.Record(fields...)
}
