package information

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/values"
)

// bankModel is the tutorial's Section 4 example, executable: accounts
// with balance and withdrawn-today, the $500 invariant, withdrawal and
// deposit dynamic schemas, the midnight static schema and the
// owns-account relationship.
func bankModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	acct := func(balance, withdrawn int64) values.Value {
		return values.Record(
			values.F("balance", values.Int(balance)),
			values.F("withdrawn_today", values.Int(withdrawn)),
		)
	}
	if err := m.PutObject("acct-alice", "Account", acct(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject("acct-bob", "Account", acct(50, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject("alice", "Customer", values.Record(values.F("name", values.Str("Alice")))); err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(InvariantSchema{
		Name: "daily-limit", Object: "Account",
		Condition: "withdrawn_today <= 500",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(InvariantSchema{
		Name: "withdrawn-non-negative", Object: "Account",
		Condition: "withdrawn_today >= 0",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDynamic(DynamicSchema{
		Name: "Withdraw", Object: "Account",
		Guard: "x > 0 and balance >= x",
		Assignments: []Assignment{
			{Field: "balance", Expr: "balance - x"},
			{Field: "withdrawn_today", Expr: "withdrawn_today + x"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDynamic(DynamicSchema{
		Name: "Deposit", Object: "Account",
		Guard: "x > 0",
		Assignments: []Assignment{
			{Field: "balance", Expr: "balance + x"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDynamic(DynamicSchema{
		Name: "MidnightReset", Object: "Account",
		Assignments: []Assignment{
			{Field: "withdrawn_today", Expr: "0"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddStatic(StaticSchema{
		Name: "midnight", Object: "Account",
		Condition: "withdrawn_today == 0",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.DeclareRelation(RelationDecl{Name: "owns_account", MaxFrom: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate("owns_account", "alice", "acct-alice"); err != nil {
		t.Fatal(err)
	}
	return m
}

func x(n int64) values.Value { return values.Record(values.F("x", values.Int(n))) }

func balance(t *testing.T, m *Model, obj string) int64 {
	t.Helper()
	st, err := m.Object(obj)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := st.FieldByName("balance")
	i, _ := b.AsInt()
	return i
}

func withdrawn(t *testing.T, m *Model, obj string) int64 {
	t.Helper()
	st, err := m.Object(obj)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := st.FieldByName("withdrawn_today")
	i, _ := w.AsInt()
	return i
}

func TestTutorialWithdrawalScenario(t *testing.T) {
	// "$400 could be withdrawn in the morning but an additional $200 could
	// not be withdrawn in the afternoon as the amount-withdrawn-today
	// cannot exceed $500."
	m := bankModel(t)
	if err := m.Apply("acct-alice", "Withdraw", x(400)); err != nil {
		t.Fatalf("morning withdrawal: %v", err)
	}
	if got := balance(t, m, "acct-alice"); got != 600 {
		t.Errorf("balance = %d", got)
	}
	if got := withdrawn(t, m, "acct-alice"); got != 400 {
		t.Errorf("withdrawn = %d", got)
	}
	err := m.Apply("acct-alice", "Withdraw", x(200))
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("afternoon withdrawal = %v, want invariant violation", err)
	}
	// State unchanged by the rejected change.
	if got := balance(t, m, "acct-alice"); got != 600 {
		t.Errorf("balance after rejection = %d", got)
	}
	if got := withdrawn(t, m, "acct-alice"); got != 400 {
		t.Errorf("withdrawn after rejection = %d", got)
	}
	// A $100 withdrawal still fits under the limit.
	if err := m.Apply("acct-alice", "Withdraw", x(100)); err != nil {
		t.Errorf("final withdrawal: %v", err)
	}
	// The midnight static schema does not hold now...
	if err := m.CheckStatic("midnight", "acct-alice"); !errors.Is(err, ErrStatic) {
		t.Errorf("midnight before reset = %v", err)
	}
	// ...but does after the reset dynamic schema.
	if err := m.Apply("acct-alice", "MidnightReset", values.Null()); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckStatic("midnight", "acct-alice"); err != nil {
		t.Errorf("midnight after reset = %v", err)
	}
	changes, rejections := m.Stats()
	if changes != 4 || rejections != 1 {
		t.Errorf("stats = %d/%d", changes, rejections)
	}
}

func TestGuardRejections(t *testing.T) {
	m := bankModel(t)
	// Overdraw: guard balance >= x fails.
	if err := m.Apply("acct-bob", "Withdraw", x(100)); !errors.Is(err, ErrGuard) {
		t.Errorf("overdraw = %v", err)
	}
	// Non-positive amounts.
	if err := m.Apply("acct-bob", "Withdraw", x(0)); !errors.Is(err, ErrGuard) {
		t.Errorf("zero withdrawal = %v", err)
	}
	if err := m.Apply("acct-bob", "Deposit", x(-5)); !errors.Is(err, ErrGuard) {
		t.Errorf("negative deposit = %v", err)
	}
	if got := balance(t, m, "acct-bob"); got != 50 {
		t.Errorf("balance = %d", got)
	}
}

func TestApplyErrors(t *testing.T) {
	m := bankModel(t)
	if err := m.Apply("ghost", "Withdraw", x(1)); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("ghost object = %v", err)
	}
	if err := m.Apply("acct-alice", "Ghost", x(1)); !errors.Is(err, ErrNoSuchSchema) {
		t.Errorf("ghost schema = %v", err)
	}
	// Schema scoped to Account cannot run on a Customer.
	if err := m.Apply("alice", "Withdraw", x(1)); !errors.Is(err, ErrBadSchema) {
		t.Errorf("wrong kind = %v", err)
	}
	// Parameter names colliding with state names are rejected.
	if err := m.Apply("acct-alice", "Withdraw",
		values.Record(values.F("balance", values.Int(1)))); !errors.Is(err, ErrNameCollision) {
		t.Errorf("collision = %v", err)
	}
	// Params must be a record.
	if err := m.Apply("acct-alice", "Withdraw", values.Int(4)); !errors.Is(err, ErrBadSchema) {
		t.Errorf("non-record params = %v", err)
	}
}

func TestSchemaValidation(t *testing.T) {
	m := NewModel()
	if err := m.PutObject("o", "K", values.Int(1)); !errors.Is(err, ErrBadSchema) {
		t.Errorf("non-record state = %v", err)
	}
	if err := m.AddInvariant(InvariantSchema{Name: "", Condition: "true"}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("unnamed invariant = %v", err)
	}
	if err := m.AddInvariant(InvariantSchema{Name: "x", Condition: "(("}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad invariant condition = %v", err)
	}
	if err := m.AddStatic(StaticSchema{Name: "", Condition: "true"}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("unnamed static = %v", err)
	}
	if err := m.AddStatic(StaticSchema{Name: "s", Condition: "(("}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad static = %v", err)
	}
	if err := m.AddDynamic(DynamicSchema{Name: ""}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("unnamed dynamic = %v", err)
	}
	if err := m.AddDynamic(DynamicSchema{Name: "d"}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("empty dynamic = %v", err)
	}
	if err := m.AddDynamic(DynamicSchema{Name: "d", Guard: "((", Assignments: []Assignment{{Field: "f", Expr: "1"}}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad guard = %v", err)
	}
	if err := m.AddDynamic(DynamicSchema{Name: "d", Assignments: []Assignment{{Field: "", Expr: "1"}}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("unnamed field = %v", err)
	}
	if err := m.AddDynamic(DynamicSchema{Name: "d", Assignments: []Assignment{{Field: "f", Expr: "(("}}}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad assignment = %v", err)
	}
	// Duplicates.
	ok := DynamicSchema{Name: "d", Assignments: []Assignment{{Field: "f", Expr: "1"}}}
	if err := m.AddDynamic(ok); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDynamic(ok); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup dynamic = %v", err)
	}
	if err := m.AddStatic(StaticSchema{Name: "s", Condition: "true"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddStatic(StaticSchema{Name: "s", Condition: "true"}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup static = %v", err)
	}
	if err := m.AddInvariant(InvariantSchema{Name: "i", Condition: "true"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddInvariant(InvariantSchema{Name: "i", Condition: "true"}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup invariant = %v", err)
	}
}

func TestRetroactiveInvariantRejected(t *testing.T) {
	m := bankModel(t)
	// acct-alice has balance 1000; an invariant demanding balance < 100 is
	// rejected because existing state violates it.
	err := m.AddInvariant(InvariantSchema{Name: "tiny", Object: "Account", Condition: "balance < 100"})
	if !errors.Is(err, ErrInvariant) {
		t.Errorf("retroactive invariant = %v", err)
	}
	// New objects must satisfy the invariants immediately.
	err = m.PutObject("acct-evil", "Account", values.Record(
		values.F("balance", values.Int(0)),
		values.F("withdrawn_today", values.Int(9999)),
	))
	if !errors.Is(err, ErrInvariant) {
		t.Errorf("bad initial state = %v", err)
	}
}

func TestPostCondition(t *testing.T) {
	m := bankModel(t)
	if err := m.AddDynamic(DynamicSchema{
		Name: "SafeDouble", Object: "Account",
		Assignments: []Assignment{{Field: "balance", Expr: "balance * 2"}},
		Post:        "balance <= 1500",
	}); err != nil {
		t.Fatal(err)
	}
	// bob: 50 -> 100 fine.
	if err := m.Apply("acct-bob", "SafeDouble", values.Null()); err != nil {
		t.Errorf("bob double = %v", err)
	}
	// alice: 1000 -> 2000 violates the post-condition.
	if err := m.Apply("acct-alice", "SafeDouble", values.Null()); !errors.Is(err, ErrGuard) {
		t.Errorf("alice double = %v", err)
	}
	if got := balance(t, m, "acct-alice"); got != 1000 {
		t.Errorf("alice balance = %d", got)
	}
}

func TestRelationships(t *testing.T) {
	m := bankModel(t)
	if got := m.Related("owns_account", "alice"); len(got) != 1 || got[0] != "acct-alice" {
		t.Errorf("Related = %v", got)
	}
	if got := m.Owners("owns_account", "acct-alice"); len(got) != 1 || got[0] != "alice" {
		t.Errorf("Owners = %v", got)
	}
	// MaxFrom=1: a second customer cannot own alice's account.
	if err := m.PutObject("bob", "Customer", values.Record(values.F("name", values.Str("Bob")))); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate("owns_account", "bob", "acct-alice"); !errors.Is(err, ErrCardinality) {
		t.Errorf("second owner = %v", err)
	}
	// But alice may own more accounts (MaxTo unbounded).
	if err := m.Relate("owns_account", "alice", "acct-bob"); err != nil {
		t.Errorf("second account = %v", err)
	}
	// Idempotent relate.
	if err := m.Relate("owns_account", "alice", "acct-alice"); err != nil {
		t.Errorf("idempotent relate = %v", err)
	}
	// Unrelate.
	if err := m.Unrelate("owns_account", "alice", "acct-bob"); err != nil {
		t.Fatal(err)
	}
	if got := m.Related("owns_account", "alice"); len(got) != 1 {
		t.Errorf("after unrelate = %v", got)
	}
	// Errors.
	if err := m.Relate("ghost", "alice", "acct-alice"); !errors.Is(err, ErrNoSuchRelation) {
		t.Errorf("ghost relation = %v", err)
	}
	if err := m.Relate("owns_account", "ghost", "acct-alice"); !errors.Is(err, ErrNotRelatable) {
		t.Errorf("ghost from = %v", err)
	}
	if err := m.Relate("owns_account", "alice", "ghost"); !errors.Is(err, ErrNotRelatable) {
		t.Errorf("ghost to = %v", err)
	}
	if err := m.Unrelate("ghost", "a", "b"); !errors.Is(err, ErrNoSuchRelation) {
		t.Errorf("ghost unrelate = %v", err)
	}
	if err := m.DeclareRelation(RelationDecl{Name: "owns_account"}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup relation = %v", err)
	}
	if err := m.DeclareRelation(RelationDecl{}); !errors.Is(err, ErrBadSchema) {
		t.Errorf("unnamed relation = %v", err)
	}
}

func TestMaxToCardinality(t *testing.T) {
	m := NewModel()
	for _, o := range []string{"a", "b", "c"} {
		if err := m.PutObject(o, "K", values.Record()); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DeclareRelation(RelationDecl{Name: "r", MaxTo: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate("r", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.Relate("r", "a", "c"); !errors.Is(err, ErrCardinality) {
		t.Errorf("MaxTo = %v", err)
	}
}

func TestComposite(t *testing.T) {
	// Composite member names must be expression identifiers (no hyphens),
	// since composite schemas reference members by dotted paths.
	m := bankModel(t)
	acct := func(balance int64) values.Value {
		return values.Record(
			values.F("balance", values.Int(balance)),
			values.F("withdrawn_today", values.Int(0)),
		)
	}
	if err := m.PutObject("acct_a", "Account", acct(900)); err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject("acct_b", "Account", acct(100)); err != nil {
		t.Fatal(err)
	}
	if err := m.DeclareComposite("branch", "acct_a", "acct_b"); err != nil {
		t.Fatal(err)
	}
	// A composite invariant over member states: total branch balance stays
	// positive.
	if err := m.AddInvariant(InvariantSchema{
		Name: "branch-solvent", Object: "composite:branch",
		Condition: "acct_a.balance + acct_b.balance > 0",
	}); err != nil {
		t.Fatal(err)
	}
	// Static check of the composite is possible too.
	if err := m.AddStatic(StaticSchema{
		Name: "solvency-now", Object: "composite:branch",
		Condition: "acct_a.balance + acct_b.balance >= 1000",
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckStatic("solvency-now", "branch"); err != nil {
		t.Errorf("composite static = %v", err)
	}
	// Errors.
	if err := m.DeclareComposite("branch", "acct_a"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup composite = %v", err)
	}
	if err := m.DeclareComposite("b2", "ghost"); !errors.Is(err, ErrCompositeMember) {
		t.Errorf("ghost member = %v", err)
	}
}

func TestObjectListingAndLookup(t *testing.T) {
	m := bankModel(t)
	objs := m.Objects()
	if len(objs) != 3 {
		t.Errorf("objects = %v", objs)
	}
	if _, err := m.Object("ghost"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("ghost object = %v", err)
	}
	if err := m.CheckStatic("ghost", "acct-alice"); !errors.Is(err, ErrNoSuchSchema) {
		t.Errorf("ghost static = %v", err)
	}
	if err := m.CheckStatic("midnight", "ghost"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("static on ghost = %v", err)
	}
}

// Property: no sequence of Withdraw/Deposit applications can ever drive
// withdrawn_today above 500 or balance below 0 — the invariants hold under
// arbitrary interleavings (the model's core guarantee).
func TestInvariantPreservationProperty(t *testing.T) {
	f := func(amounts []int16) bool {
		m := NewModel()
		if err := m.PutObject("acct", "Account", values.Record(
			values.F("balance", values.Int(500)),
			values.F("withdrawn_today", values.Int(0)),
		)); err != nil {
			return false
		}
		if err := m.AddInvariant(InvariantSchema{Name: "limit", Object: "Account", Condition: "withdrawn_today <= 500"}); err != nil {
			return false
		}
		if err := m.AddInvariant(InvariantSchema{Name: "nonneg", Object: "Account", Condition: "balance >= 0"}); err != nil {
			return false
		}
		if err := m.AddDynamic(DynamicSchema{
			Name: "Withdraw", Object: "Account",
			Guard: "x > 0",
			Assignments: []Assignment{
				{Field: "balance", Expr: "balance - x"},
				{Field: "withdrawn_today", Expr: "withdrawn_today + x"},
			},
		}); err != nil {
			return false
		}
		if err := m.AddDynamic(DynamicSchema{
			Name: "Deposit", Object: "Account",
			Guard:       "x > 0",
			Assignments: []Assignment{{Field: "balance", Expr: "balance + x"}},
		}); err != nil {
			return false
		}
		for _, a := range amounts {
			amt := int64(a)
			if amt%2 == 0 {
				_ = m.Apply("acct", "Deposit", x(amt))
			} else {
				_ = m.Apply("acct", "Withdraw", x(amt))
			}
			st, err := m.Object("acct")
			if err != nil {
				return false
			}
			b, _ := st.FieldByName("balance")
			w, _ := st.FieldByName("withdrawn_today")
			bi, _ := b.AsInt()
			wi, _ := w.AsInt()
			if bi < 0 || wi > 500 || wi < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
