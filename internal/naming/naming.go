// Package naming defines the identifier space of the engineering viewpoint
// and the interface references exchanged between objects.
//
// RM-ODP structures an ODP system as nodes containing capsules containing
// clusters containing basic engineering objects, each of which may offer
// several interfaces (Figure 5 of the tutorial). Every level gets an
// identifier here, forming a containment path, and interfaces are referred
// to by InterfaceRef values that carry the interface's identity, its
// declared type name and a (possibly stale) location hint. Binders resolve
// stale hints through the relocator; application code never sees raw
// addresses, which is the essence of location transparency.
package naming

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/values"
)

// ErrBadRef is wrapped by reference-parsing failures.
var ErrBadRef = errors.New("naming: malformed interface reference")

// NodeID identifies a node: a computer system with a nucleus.
type NodeID string

// CapsuleID identifies a capsule within a node.
type CapsuleID struct {
	Node NodeID
	Seq  uint32
}

// String renders the capsule identifier as node/cN.
func (c CapsuleID) String() string { return fmt.Sprintf("%s/c%d", c.Node, c.Seq) }

// ClusterID identifies a cluster within a capsule. Clusters are the unit
// of checkpointing, deactivation and migration, so a cluster's identity is
// stable across moves: Seq is allocated once and travels with the cluster.
type ClusterID struct {
	Capsule CapsuleID
	Seq     uint32
}

// String renders the cluster identifier as node/cN/kN.
func (c ClusterID) String() string { return fmt.Sprintf("%s/k%d", c.Capsule, c.Seq) }

// ObjectID identifies a basic engineering object within a cluster.
type ObjectID struct {
	Cluster ClusterID
	Seq     uint32
}

// String renders the object identifier as node/cN/kN/oN.
func (o ObjectID) String() string { return fmt.Sprintf("%s/o%d", o.Cluster, o.Seq) }

// InterfaceID identifies one interface of an engineering object. The
// identity survives relocation and migration of the supporting object;
// only the location hint in an InterfaceRef changes.
type InterfaceID struct {
	Object ObjectID
	Seq    uint32
	Nonce  uint64 // unpredictable component, so identifiers cannot be forged by guessing
}

// String renders the interface identifier as node/cN/kN/oN/iN#nonce.
func (i InterfaceID) String() string {
	return fmt.Sprintf("%s/i%d#%x", i.Object, i.Seq, i.Nonce)
}

// Endpoint is a transport address understood by a protocol object,
// e.g. "sim://nodeA" for the simulated network or "tcp://127.0.0.1:9000".
type Endpoint string

// Scheme returns the transport scheme of the endpoint ("sim", "tcp", ...).
func (e Endpoint) Scheme() string {
	if i := strings.Index(string(e), "://"); i >= 0 {
		return string(e)[:i]
	}
	return ""
}

// Address returns the scheme-specific address part of the endpoint.
func (e Endpoint) Address() string {
	if i := strings.Index(string(e), "://"); i >= 0 {
		return string(e)[i+3:]
	}
	return string(e)
}

// InterfaceRef is the engineering realisation of a computational binding
// endpoint: everything a channel needs to reach an interface. The Endpoint
// is a hint — it names where the interface was when the reference was
// created (Epoch counts relocations). A binder that finds the hint stale
// consults the relocator for the current location.
type InterfaceRef struct {
	ID       InterfaceID
	TypeName string   // declared interface type, checked against the type repository
	Endpoint Endpoint // location hint
	Epoch    uint64   // relocation epoch at which the hint was valid
}

// IsZero reports whether the reference is the zero reference.
func (r InterfaceRef) IsZero() bool { return r == InterfaceRef{} }

// String renders the reference for diagnostics.
func (r InterfaceRef) String() string {
	return fmt.Sprintf("%s:%s@%s/e%d", r.TypeName, r.ID, r.Endpoint, r.Epoch)
}

// refType is the wire shape of an InterfaceRef when passed as a value in
// an invocation (e.g. a customer passing its callback interface).
var refType = values.TRecord("InterfaceRef",
	values.FT("node", values.TString()),
	values.FT("capsule", values.TUint()),
	values.FT("cluster", values.TUint()),
	values.FT("object", values.TUint()),
	values.FT("iface", values.TUint()),
	values.FT("nonce", values.TUint()),
	values.FT("type", values.TString()),
	values.FT("endpoint", values.TString()),
	values.FT("epoch", values.TUint()),
)

// RefDataType returns the data type of a marshalled interface reference.
func RefDataType() *values.DataType { return refType }

// ToValue marshals the reference into the value model so it can cross a
// channel like any other datum.
func (r InterfaceRef) ToValue() values.Value {
	return values.Record(
		values.F("node", values.Str(string(r.ID.Object.Cluster.Capsule.Node))),
		values.F("capsule", values.Uint(uint64(r.ID.Object.Cluster.Capsule.Seq))),
		values.F("cluster", values.Uint(uint64(r.ID.Object.Cluster.Seq))),
		values.F("object", values.Uint(uint64(r.ID.Object.Seq))),
		values.F("iface", values.Uint(uint64(r.ID.Seq))),
		values.F("nonce", values.Uint(r.ID.Nonce)),
		values.F("type", values.Str(r.TypeName)),
		values.F("endpoint", values.Str(string(r.Endpoint))),
		values.F("epoch", values.Uint(r.Epoch)),
	)
}

// RefFromValue unmarshals a reference previously produced by ToValue.
func RefFromValue(v values.Value) (InterfaceRef, error) {
	if err := refType.Check(v); err != nil {
		return InterfaceRef{}, fmt.Errorf("%w: %v", ErrBadRef, err)
	}
	get := func(name string) values.Value {
		f, _ := v.FieldByName(name)
		return f
	}
	str := func(name string) string { s, _ := get(name).AsString(); return s }
	u64 := func(name string) uint64 { u, _ := get(name).AsUint(); return u }
	u32 := func(name string) uint32 { return uint32(u64(name)) }

	return InterfaceRef{
		ID: InterfaceID{
			Object: ObjectID{
				Cluster: ClusterID{
					Capsule: CapsuleID{Node: NodeID(str("node")), Seq: u32("capsule")},
					Seq:     u32("cluster"),
				},
				Seq: u32("object"),
			},
			Seq:   u32("iface"),
			Nonce: u64("nonce"),
		},
		TypeName: str("type"),
		Endpoint: Endpoint(str("endpoint")),
		Epoch:    u64("epoch"),
	}, nil
}

// ParseInterfaceID parses the String form of an InterfaceID
// ("node/cN/kN/oN/iN#nonce"). It is the inverse of InterfaceID.String and
// is used by command-line tools.
func ParseInterfaceID(s string) (InterfaceID, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 5 {
		return InterfaceID{}, fmt.Errorf("%w: %q", ErrBadRef, s)
	}
	capSeq, err := parseSeq(parts[1], 'c')
	if err != nil {
		return InterfaceID{}, fmt.Errorf("%w: capsule in %q: %v", ErrBadRef, s, err)
	}
	cluSeq, err := parseSeq(parts[2], 'k')
	if err != nil {
		return InterfaceID{}, fmt.Errorf("%w: cluster in %q: %v", ErrBadRef, s, err)
	}
	objSeq, err := parseSeq(parts[3], 'o')
	if err != nil {
		return InterfaceID{}, fmt.Errorf("%w: object in %q: %v", ErrBadRef, s, err)
	}
	last := parts[4]
	hash := strings.IndexByte(last, '#')
	if hash < 0 {
		return InterfaceID{}, fmt.Errorf("%w: missing nonce in %q", ErrBadRef, s)
	}
	ifSeq, err := parseSeq(last[:hash], 'i')
	if err != nil {
		return InterfaceID{}, fmt.Errorf("%w: interface in %q: %v", ErrBadRef, s, err)
	}
	nonce, err := strconv.ParseUint(last[hash+1:], 16, 64)
	if err != nil {
		return InterfaceID{}, fmt.Errorf("%w: nonce in %q: %v", ErrBadRef, s, err)
	}
	return InterfaceID{
		Object: ObjectID{
			Cluster: ClusterID{
				Capsule: CapsuleID{Node: NodeID(parts[0]), Seq: capSeq},
				Seq:     cluSeq,
			},
			Seq: objSeq,
		},
		Seq:   ifSeq,
		Nonce: nonce,
	}, nil
}

func parseSeq(s string, prefix byte) (uint32, error) {
	if len(s) < 2 || s[0] != prefix {
		return 0, fmt.Errorf("expected %c-prefixed segment, got %q", prefix, s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 32)
	if err != nil {
		return 0, err
	}
	return uint32(n), nil
}
