package naming

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/values"
)

func sampleID() InterfaceID {
	return InterfaceID{
		Object: ObjectID{
			Cluster: ClusterID{
				Capsule: CapsuleID{Node: "alpha", Seq: 2},
				Seq:     7,
			},
			Seq: 3,
		},
		Seq:   1,
		Nonce: 0xdeadbeef,
	}
}

func TestIDStrings(t *testing.T) {
	id := sampleID()
	if got, want := id.Object.Cluster.Capsule.String(), "alpha/c2"; got != want {
		t.Errorf("CapsuleID = %q, want %q", got, want)
	}
	if got, want := id.Object.Cluster.String(), "alpha/c2/k7"; got != want {
		t.Errorf("ClusterID = %q, want %q", got, want)
	}
	if got, want := id.Object.String(), "alpha/c2/k7/o3"; got != want {
		t.Errorf("ObjectID = %q, want %q", got, want)
	}
	if got, want := id.String(), "alpha/c2/k7/o3/i1#deadbeef"; got != want {
		t.Errorf("InterfaceID = %q, want %q", got, want)
	}
}

func TestEndpoint(t *testing.T) {
	e := Endpoint("tcp://127.0.0.1:9000")
	if e.Scheme() != "tcp" {
		t.Errorf("Scheme = %q", e.Scheme())
	}
	if e.Address() != "127.0.0.1:9000" {
		t.Errorf("Address = %q", e.Address())
	}
	bare := Endpoint("nodeA")
	if bare.Scheme() != "" || bare.Address() != "nodeA" {
		t.Errorf("bare endpoint: scheme=%q address=%q", bare.Scheme(), bare.Address())
	}
}

func TestRefRoundTripValue(t *testing.T) {
	ref := InterfaceRef{
		ID:       sampleID(),
		TypeName: "BankTeller",
		Endpoint: "sim://alpha",
		Epoch:    4,
	}
	v := ref.ToValue()
	if err := RefDataType().Check(v); err != nil {
		t.Fatalf("marshalled ref fails its own type: %v", err)
	}
	got, err := RefFromValue(v)
	if err != nil {
		t.Fatalf("RefFromValue: %v", err)
	}
	if got != ref {
		t.Errorf("round trip: got %+v, want %+v", got, ref)
	}
}

func TestRefFromValueRejectsGarbage(t *testing.T) {
	_, err := RefFromValue(values.Int(3))
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, ErrBadRef) {
		t.Errorf("error %v should wrap ErrBadRef", err)
	}
}

func TestRefIsZero(t *testing.T) {
	var zero InterfaceRef
	if !zero.IsZero() {
		t.Error("zero ref should be zero")
	}
	ref := InterfaceRef{TypeName: "X"}
	if ref.IsZero() {
		t.Error("non-zero ref reported zero")
	}
}

func TestRefString(t *testing.T) {
	ref := InterfaceRef{ID: sampleID(), TypeName: "BankTeller", Endpoint: "sim://alpha", Epoch: 1}
	want := "BankTeller:alpha/c2/k7/o3/i1#deadbeef@sim://alpha/e1"
	if got := ref.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParseInterfaceIDRoundTrip(t *testing.T) {
	id := sampleID()
	got, err := ParseInterfaceID(id.String())
	if err != nil {
		t.Fatalf("ParseInterfaceID: %v", err)
	}
	if got != id {
		t.Errorf("round trip: got %+v, want %+v", got, id)
	}
}

func TestParseInterfaceIDErrors(t *testing.T) {
	bad := []string{
		"",
		"alpha",
		"alpha/c2/k7/o3",             // too few segments
		"alpha/x2/k7/o3/i1#1",        // wrong capsule prefix
		"alpha/c2/x7/o3/i1#1",        // wrong cluster prefix
		"alpha/c2/k7/x3/i1#1",        // wrong object prefix
		"alpha/c2/k7/o3/x1#1",        // wrong interface prefix
		"alpha/c2/k7/o3/i1",          // missing nonce
		"alpha/c2/k7/o3/i1#zzzz_not", // bad nonce
		"alpha/cX/k7/o3/i1#1",        // non-numeric seq
		"alpha/c2/k7/o3/i1#1/extra",  // too many segments
	}
	for _, s := range bad {
		if _, err := ParseInterfaceID(s); err == nil {
			t.Errorf("ParseInterfaceID(%q) should fail", s)
		} else if !errors.Is(err, ErrBadRef) {
			t.Errorf("ParseInterfaceID(%q) error %v should wrap ErrBadRef", s, err)
		}
	}
}

func TestParseInterfaceIDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		id := InterfaceID{
			Object: ObjectID{
				Cluster: ClusterID{
					Capsule: CapsuleID{Node: NodeID(randName(r)), Seq: r.Uint32()},
					Seq:     r.Uint32(),
				},
				Seq: r.Uint32(),
			},
			Seq:   r.Uint32(),
			Nonce: r.Uint64(),
		}
		got, err := ParseInterfaceID(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randName(r *rand.Rand) string {
	b := make([]byte, 1+r.Intn(8))
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}
