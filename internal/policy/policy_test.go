package policy

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/mgmt"
)

func TestAttemptsDefaults(t *testing.T) {
	if got := (RetryPolicy{}).Attempts(); got != 1 {
		t.Fatalf("zero policy attempts = %d, want 1", got)
	}
	if got := (RetryPolicy{MaxAttempts: -3}).Attempts(); got != 1 {
		t.Fatalf("negative attempts = %d, want 1", got)
	}
	if got := (RetryPolicy{MaxAttempts: 4}).Attempts(); got != 4 {
		t.Fatalf("attempts = %d, want 4", got)
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, Multiplier: 2, MaxBackoff: 50 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if got := (RetryPolicy{}).Backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}
	// Default cap is 16×base.
	p2 := RetryPolicy{BaseBackoff: time.Millisecond}
	if got := p2.Backoff(30); got != 16*time.Millisecond {
		t.Errorf("default cap backoff = %v, want 16ms", got)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, Jitter: 0.5, Seed: 42}
	for retry := 1; retry <= 8; retry++ {
		a, b := p.Backoff(retry), p.Backoff(retry)
		if a != b {
			t.Fatalf("jittered backoff not deterministic at retry %d: %v vs %v", retry, a, b)
		}
		full := RetryPolicy{BaseBackoff: p.BaseBackoff}.Backoff(retry)
		if a > full || a < full/2 {
			t.Fatalf("retry %d: jittered %v outside [%v, %v]", retry, a, full/2, full)
		}
	}
	// Different seeds disagree somewhere (decorrelated storms).
	other := RetryPolicy{BaseBackoff: 10 * time.Millisecond, Jitter: 0.5, Seed: 43}
	same := true
	for retry := 1; retry <= 8; retry++ {
		if p.Backoff(retry) != other.Backoff(retry) {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced identical jitter everywhere")
	}
}

func TestWaitHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Wait(ctx, time.Second); err != context.Canceled {
		t.Fatalf("Wait on dead ctx = %v, want Canceled", err)
	}
	start := time.Now()
	if err := Wait(context.Background(), 5*time.Millisecond); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Wait returned early")
	}
}

func TestWithBudget(t *testing.T) {
	ctx, cancel := (RetryPolicy{}).WithBudget(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero budget should not set a deadline")
	}
	ctx2, cancel2 := (RetryPolicy{Budget: time.Minute}).WithBudget(context.Background())
	defer cancel2()
	if _, ok := ctx2.Deadline(); !ok {
		t.Fatal("budget should set a deadline")
	}
}

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	cfg.Clock = clk.Now
	return NewBreaker(cfg), clk
}

func TestBreakerConsecutiveFailuresOpen(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{ConsecutiveFailures: 3, OpenFor: time.Second})
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatal("closed breaker refused")
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker allowed a call before OpenFor")
	}
	if st := b.Stats(); st.Opens != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want Opens=1 Rejected=1", st)
	}
	// Cooling off: exactly one probe is admitted.
	clk.Advance(time.Second)
	ok1, probe1 := b.Allow()
	ok2, _ := b.Allow()
	if !ok1 || !probe1 {
		t.Fatalf("first caller after OpenFor: ok=%v probe=%v, want probe", ok1, probe1)
	}
	if ok2 {
		t.Fatal("second caller admitted while probe in flight")
	}
	// Probe fails: re-open, full cooling-off again.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker allowed a call immediately")
	}
	// Probe succeeds: close.
	clk.Advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("no probe admitted after second cooling-off")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatal("closed breaker should allow without probing")
	}
}

func TestBreakerFailureRateWindow(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{
		MinSamples: 10, FailureRate: 0.5, ConsecutiveFailures: -1, Window: time.Minute,
	})
	// 5 successes + 4 failures: 9 samples, below MinSamples.
	for i := 0; i < 5; i++ {
		b.Record(true)
	}
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("below MinSamples tripped: %v", b.State())
	}
	// 10th sample takes the rate to 5/10 = 0.5 ≥ 0.5: trip.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("rate 0.5 did not trip: %v", b.State())
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{
		MinSamples: 4, FailureRate: 0.5, ConsecutiveFailures: -1, Window: 10 * time.Second,
	})
	b.Record(false)
	b.Record(false)
	// A full window later those failures have aged out entirely.
	clk.Advance(11 * time.Second)
	b.Record(true)
	b.Record(true)
	b.Record(false)
	b.Record(false) // window: 2 ok, 2 fail → rate 0.5 over 4 ≥ MinSamples… trips
	if b.State() != Open {
		t.Fatalf("fresh-window rate should trip: %v", b.State())
	}
}

func TestBreakerSetSharing(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{ConsecutiveFailures: 1})
	a1, a2 := s.For("sim://a"), s.For("sim://a")
	if a1 != a2 {
		t.Fatal("same key minted two breakers")
	}
	if s.For("sim://b") == a1 {
		t.Fatal("distinct keys share a breaker")
	}
	a1.Record(false)
	if got := s.For("sim://a").State(); got != Open {
		t.Fatalf("shared breaker state = %v, want open", got)
	}
	if s.Peek("sim://c") != nil {
		t.Fatal("Peek minted a breaker")
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap["sim://a"].Opens != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestBreakerInstrumentation(t *testing.T) {
	m := mgmt.New()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := NewBreakerSet(BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Second, Clock: clk.Now})
	s.Instrument(m.Policy("t"))
	br := s.For("x")
	br.Record(false) // open
	if ok, _ := br.Allow(); ok {
		t.Fatal("open breaker allowed before OpenFor")
	}
	clk.Advance(time.Second)
	ok, probe := br.Allow()
	if !ok || !probe {
		t.Fatalf("expected probe admission, got ok=%v probe=%v", ok, probe)
	}
	br.Record(true) // close
	if got := m.Registry.Counter("policy.t.breaker.open").Load(); got != 1 {
		t.Fatalf("breaker.open counter = %d, want 1", got)
	}
	if got := m.Registry.Counter("policy.t.breaker.close").Load(); got != 1 {
		t.Fatalf("breaker.close counter = %d, want 1", got)
	}
	if got := m.Registry.Gauge("policy.t.breaker.open_now").Load(); got != 0 {
		t.Fatalf("breaker.open_now gauge = %d, want 0", got)
	}
}

func TestBreakerConcurrency(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{ConsecutiveFailures: 3, OpenFor: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				br := s.For("ep")
				if ok, _ := br.Allow(); ok {
					br.Record(i%3 == 0)
				}
				br.State()
			}
		}(g)
	}
	wg.Wait()
	st := s.For("ep").Stats()
	if st.Successes+st.Failures+st.Rejected == 0 {
		t.Fatal("no outcomes recorded")
	}
}
