// Package policy is the recovery-policy layer of failure transparency
// (Section 9 of the tutorial): the rules that decide *when* the channel
// retries, how long a whole interaction may take, and when an endpoint is
// declared dead and calls to it fail fast. The tutorial's channel objects
// "provide services transparently" — the mechanisms live in package
// channel (replay), coordination (failover) and engineering (recovery);
// this package holds only the policy those mechanisms consult, so one
// composable value can be shared by a binding, a replica group and a
// trader federation link.
//
// Two policies are provided. RetryPolicy bounds one interaction: a total
// attempt count, a per-attempt timeout, a single deadline *budget* shared
// by every attempt and relocation (instead of N independent call
// timeouts), and exponential backoff with deterministic seeded jitter
// between attempts. CircuitBreaker bounds an endpoint: a windowed failure
// rate trips it open, calls then fail fast without touching the wire, and
// after a cooling-off period a single half-open probe decides whether to
// close it again. Breakers are shared per endpoint (see BreakerSet) so
// every binding to a dead node learns of the death at the price of one
// timeout, not one each.
package policy

import (
	"context"
	"errors"
	"time"
)

// Policy error sentinels, designed for errors.Is across the stack.
var (
	// ErrCircuitOpen rejects a call because the endpoint's circuit breaker
	// is open: the endpoint failed recently and is presumed still dead.
	ErrCircuitOpen = errors.New("policy: circuit open")
)

// RetryPolicy bounds the attempts of one interaction. The zero value
// means "one attempt, no timeout, no backoff" — the degenerate policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try + retries).
	// Values below 1 mean 1.
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt. Zero leaves attempts
	// bounded only by the budget and the caller's context.
	AttemptTimeout time.Duration
	// Budget bounds the whole interaction — every attempt, every backoff
	// sleep and every relocation refresh shares this one deadline. Zero
	// means the interaction is bounded only by the caller's context.
	Budget time.Duration
	// BaseBackoff is the delay before the first retry; each further retry
	// multiplies it by Multiplier. Zero disables backoff (retries are
	// immediate, the pre-policy behaviour).
	BaseBackoff time.Duration
	// MaxBackoff caps the grown delay. Zero means 16×BaseBackoff.
	MaxBackoff time.Duration
	// Multiplier grows the delay between consecutive retries. Values
	// below 1 mean 2.
	Multiplier float64
	// Jitter in [0, 1] subtracts up to that fraction of the delay,
	// deterministically from Seed and the retry index, so co-ordinated
	// retry storms decorrelate yet every run with the same seed sleeps
	// identically (the chaos experiments depend on this).
	Jitter float64
	// Seed feeds the deterministic jitter.
	Seed uint64
}

// Attempts returns the effective total attempt count (≥ 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay to sleep before retry number retry (1-based:
// Backoff(1) precedes the first retry). Deterministic in (policy, retry).
func (p RetryPolicy) Backoff(retry int) time.Duration {
	if p.BaseBackoff <= 0 || retry < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 16 * p.BaseBackoff
	}
	d := float64(p.BaseBackoff)
	for i := 1; i < retry; i++ {
		d *= mult
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		d *= 1 - j*seededFrac(p.Seed, uint64(retry))
	}
	return time.Duration(d)
}

// WithBudget derives the interaction's budget context: the deadline every
// attempt and backoff of one call shares. With a zero budget it returns
// ctx unchanged and a no-op cancel.
func (p RetryPolicy) WithBudget(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.Budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, p.Budget)
}

// Wait sleeps for d or until ctx is done, whichever is first, returning
// ctx's error in the latter case. A non-positive d only checks ctx.
func Wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// seededFrac maps (seed, k) to a uniform fraction in [0, 1) with a
// splitmix64 finaliser — deterministic, allocation-free, and independent
// across retry indices.
func seededFrac(seed, k uint64) float64 {
	z := seed + k*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
