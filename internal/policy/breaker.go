package policy

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mgmt"
)

// State is a circuit breaker's position.
type State int32

// The breaker states: Closed passes calls, Open rejects them, HalfOpen
// admits exactly one probe whose outcome decides the next state.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String returns the state's name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "state(?)"
}

// BreakerConfig tunes a circuit breaker. The zero value gets working
// defaults (see the field comments).
type BreakerConfig struct {
	// Window is the sliding window over which the failure rate is
	// computed (two half-window buckets). Default 10s.
	Window time.Duration
	// MinSamples is the minimum window population before the failure
	// rate can trip the breaker. Default 5.
	MinSamples int
	// FailureRate in (0, 1]: the windowed rate at or above which the
	// breaker opens. Default 0.5.
	FailureRate float64
	// ConsecutiveFailures opens the breaker regardless of rate after
	// this many back-to-back failures. Default 5; negative disables.
	ConsecutiveFailures int
	// OnTransition, when set, is called after a breaker trips Open or
	// re-closes (the implicit Open -> HalfOpen probe admission is not a
	// transition in this sense). key is the breaker's key within its set
	// ("" for a breaker minted directly). The hook runs outside the
	// breaker's lock, on the goroutine whose Record caused the
	// transition — odp uses it to publish breaker events on the system
	// event bus.
	OnTransition func(key string, to State)
	// OpenFor is the cooling-off period before an open breaker admits a
	// half-open probe. Default 1s.
	OpenFor time.Duration
	// Clock substitutes the time source (tests). Default time.Now.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.ConsecutiveFailures == 0 {
		c.ConsecutiveFailures = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// BreakerStats is a snapshot of one breaker's lifetime counters.
type BreakerStats struct {
	State     State
	Opens     uint64 // transitions into Open
	Probes    uint64 // half-open probes admitted
	Rejected  uint64 // calls refused while Open/HalfOpen
	Successes uint64
	Failures  uint64
}

// Breaker is one endpoint's circuit breaker. Callers ask Allow before
// touching the endpoint and Record the outcome afterwards; a caller that
// was refused must not Record. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	ins *instrRef
	key string // the breaker's key within its set; "" when standalone

	mu       sync.Mutex
	state    State
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	consec   int  // consecutive failures while Closed

	// Two-bucket sliding window of outcomes.
	bucketAt time.Time
	curOK    int
	curFail  int
	prevOK   int
	prevFail int

	opens    atomic.Uint64
	probes   atomic.Uint64
	rejected atomic.Uint64
	succ     atomic.Uint64
	fails    atomic.Uint64
}

// NewBreaker creates a breaker with the given (defaulted) configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), ins: &instrRef{}}
}

// State returns the breaker's current position, accounting for an
// elapsed cooling-off period (an Open breaker whose OpenFor has passed
// reports HalfOpen).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenFor {
		return HalfOpen
	}
	return b.state
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	return BreakerStats{
		State:     b.State(),
		Opens:     b.opens.Load(),
		Probes:    b.probes.Load(),
		Rejected:  b.rejected.Load(),
		Successes: b.succ.Load(),
		Failures:  b.fails.Load(),
	}
}

// Allow reports whether a call may proceed. While Open it refuses until
// OpenFor has elapsed; then exactly one caller is admitted as the
// half-open probe (probe=true) and everyone else keeps getting refused
// until that probe's Record resolves the state. A refused caller must
// fail fast with ErrCircuitOpen and must not call Record.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true, false
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenFor {
			b.mu.Unlock()
			b.rejected.Add(1)
			if ins := b.ins.load(); ins != nil {
				ins.Rejected.Inc()
			}
			return false, false
		}
		b.state = HalfOpen
		fallthrough
	case HalfOpen:
		if b.probing {
			b.mu.Unlock()
			b.rejected.Add(1)
			if ins := b.ins.load(); ins != nil {
				ins.Rejected.Inc()
			}
			return false, false
		}
		b.probing = true
		b.mu.Unlock()
		b.probes.Add(1)
		if ins := b.ins.load(); ins != nil {
			ins.Probes.Inc()
		}
		return true, true
	}
	b.mu.Unlock()
	return true, false
}

// ReturnProbe hands back an unused half-open probe token without
// recording an outcome: the breaker stays half-open and the next Allow
// may admit a different caller as the probe. For callers that obtained
// probe=true from Allow but must not be the one to re-admit the
// endpoint — a read path that cannot perform the rejoin work a probe's
// success implies — this is the alternative to Record.
func (b *Breaker) ReturnProbe() {
	b.mu.Lock()
	if b.state == HalfOpen && b.probing {
		b.probing = false
	}
	b.mu.Unlock()
}

// Record reports the outcome of an allowed call. In half-open state the
// probe's outcome closes (success) or re-opens (failure) the breaker; in
// closed state outcomes feed the failure window. A state transition
// fires cfg.OnTransition after the lock is released.
func (b *Breaker) Record(success bool) {
	if success {
		b.succ.Add(1)
	} else {
		b.fails.Add(1)
	}
	now := b.cfg.Clock()
	var fired State
	transitioned := false
	b.mu.Lock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		if success {
			b.toClosedLocked()
			fired, transitioned = Closed, true
		} else {
			b.toOpenLocked(now)
			fired, transitioned = Open, true
		}
	case Open:
		// A straggler from before the trip; the window restarts on close.
	default: // Closed
		b.rollWindowLocked(now)
		if success {
			b.curOK++
			b.consec = 0
			break
		}
		b.curFail++
		b.consec++
		fails := b.curFail + b.prevFail
		total := fails + b.curOK + b.prevOK
		if (b.cfg.ConsecutiveFailures > 0 && b.consec >= b.cfg.ConsecutiveFailures) ||
			(total >= b.cfg.MinSamples && float64(fails)/float64(total) >= b.cfg.FailureRate) {
			b.toOpenLocked(now)
			fired, transitioned = Open, true
		}
	}
	b.mu.Unlock()
	if transitioned && b.cfg.OnTransition != nil {
		b.cfg.OnTransition(b.key, fired)
	}
}

// toOpenLocked trips the breaker; callers hold b.mu.
func (b *Breaker) toOpenLocked(now time.Time) {
	b.state = Open
	b.openedAt = now
	b.consec = 0
	b.curOK, b.curFail, b.prevOK, b.prevFail = 0, 0, 0, 0
	b.opens.Add(1)
	if ins := b.ins.load(); ins != nil {
		ins.BreakerOpens.Inc()
		ins.BreakersOpen.Add(1)
	}
}

// toClosedLocked re-closes the breaker after a successful probe.
func (b *Breaker) toClosedLocked() {
	b.state = Closed
	b.consec = 0
	b.curOK, b.curFail, b.prevOK, b.prevFail = 0, 0, 0, 0
	b.bucketAt = time.Time{}
	if ins := b.ins.load(); ins != nil {
		ins.BreakerCloses.Inc()
		ins.BreakersOpen.Add(-1)
	}
}

// rollWindowLocked shifts the two-bucket window forward when a
// half-window has elapsed.
func (b *Breaker) rollWindowLocked(now time.Time) {
	half := b.cfg.Window / 2
	if b.bucketAt.IsZero() {
		b.bucketAt = now
		return
	}
	elapsed := now.Sub(b.bucketAt)
	if elapsed < half {
		return
	}
	if elapsed < b.cfg.Window {
		b.prevOK, b.prevFail = b.curOK, b.curFail
	} else {
		b.prevOK, b.prevFail = 0, 0
	}
	b.curOK, b.curFail = 0, 0
	b.bucketAt = now
}

// instrRef is the nil-safe instrument pointer a BreakerSet shares with
// its breakers.
type instrRef struct {
	p atomic.Pointer[mgmt.PolicyInstruments]
}

func (r *instrRef) load() *mgmt.PolicyInstruments {
	if r == nil {
		return nil
	}
	return r.p.Load()
}

// BreakerSet shares circuit breakers across callers, keyed by endpoint
// (or any identity string): every binding, replica proxy or federation
// link naming the same key consults the same breaker, so one endpoint
// death opens one breaker for everyone. Safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig
	ins *instrRef

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet creates a set minting breakers with cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), ins: &instrRef{}, m: make(map[string]*Breaker)}
}

// Instrument attaches (nil detaches) management instrumentation, shared
// by every breaker in the set — existing and future.
func (s *BreakerSet) Instrument(ins *mgmt.PolicyInstruments) {
	s.ins.p.Store(ins)
}

// Instruments returns the currently attached bundle (nil when detached),
// so the components applying retry policies alongside this set can
// account their backoff into the same metric family.
func (s *BreakerSet) Instruments() *mgmt.PolicyInstruments {
	return s.ins.load()
}

// For returns the breaker for key, minting a closed one on first use.
func (s *BreakerSet) For(key string) *Breaker {
	s.mu.Lock()
	b := s.m[key]
	if b == nil {
		b = NewBreaker(s.cfg)
		b.ins = s.ins
		b.key = key
		s.m[key] = b
	}
	s.mu.Unlock()
	return b
}

// Peek returns the breaker for key without minting one, or nil.
func (s *BreakerSet) Peek(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[key]
}

// Snapshot returns per-key breaker statistics.
func (s *BreakerSet) Snapshot() map[string]BreakerStats {
	s.mu.Lock()
	keys := make([]string, 0, len(s.m))
	brs := make([]*Breaker, 0, len(s.m))
	for k, b := range s.m {
		keys = append(keys, k)
		brs = append(brs, b)
	}
	s.mu.Unlock()
	out := make(map[string]BreakerStats, len(keys))
	for i, k := range keys {
		out[k] = brs[i].Stats()
	}
	return out
}
