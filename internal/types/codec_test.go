package types

import (
	"errors"
	"testing"

	"repro/internal/values"
)

func TestDataTypeValueRoundTrip(t *testing.T) {
	cases := []*values.DataType{
		values.TBool(),
		values.TInt(),
		values.TUint(),
		values.TFloat(),
		values.TString(),
		values.TBytes(),
		values.TAny(),
		values.TEnum("Result", "OK", "Error"),
		values.TSeq(values.TString()),
		values.TRecord("Account",
			values.FT("balance", values.TInt()),
			values.FT("history", values.TSeq(values.TRecord("Entry", values.FT("delta", values.TInt())))),
		),
		nil,
	}
	for _, dt := range cases {
		v := DataTypeToValue(dt)
		got, err := DataTypeFromValue(v)
		if err != nil {
			t.Fatalf("DataTypeFromValue(%s): %v", dt, err)
		}
		if dt == nil {
			if got != nil {
				t.Errorf("nil type round-trip = %v", got)
			}
			continue
		}
		if !got.Equal(dt) {
			t.Errorf("round trip: got %s, want %s", got, dt)
		}
		if got.Name != dt.Name {
			t.Errorf("name lost: got %q, want %q", got.Name, dt.Name)
		}
	}
}

func TestDataTypeFromValueErrors(t *testing.T) {
	bad := []values.Value{
		values.Int(1),
		values.Record(), // missing kind
		values.Record(values.F("kind", values.Str("x"))),
		values.Record(values.F("kind", values.Uint(200))),
		values.Record(values.F("kind", values.Uint(uint64(values.KindEnum)))),                                                    // enum missing symbols
		values.Record(values.F("kind", values.Uint(uint64(values.KindRecord)))),                                                  // record missing fields
		values.Record(values.F("kind", values.Uint(uint64(values.KindSeq)))),                                                     // seq missing elem
		values.Record(values.F("kind", values.Uint(uint64(values.KindEnum))), values.F("symbols", values.Seq(values.Int(1)))),    // symbol not string
		values.Record(values.F("kind", values.Uint(uint64(values.KindRecord))), values.F("fields", values.Seq(values.Record()))), // field missing name
	}
	for i, v := range bad {
		if _, err := DataTypeFromValue(v); err == nil {
			t.Errorf("case %d: expected error for %v", i, v)
		} else if !errors.Is(err, ErrBadTypeValue) {
			t.Errorf("case %d: error %v should wrap ErrBadTypeValue", i, err)
		}
	}
}

func TestInterfaceValueRoundTrip(t *testing.T) {
	cases := []*Interface{
		tellerType(),
		managerType(),
		loansOfficerType(),
		StreamInterface("AV",
			FlowOf("video", Producer, values.TBytes()),
			FlowOf("control", Consumer, values.TString()),
		),
		SignalInterface("OSI",
			Sig("connect", Request, P("addr", values.TString())),
			Sig("connectInd", Indicate, P("addr", values.TString())),
			Sig("connectRsp", Response),
			Sig("connectCnf", Confirm),
		),
		OpInterface("Empty"),
	}
	for _, it := range cases {
		v := it.ToValue()
		got, err := InterfaceFromValue(v)
		if err != nil {
			t.Fatalf("InterfaceFromValue(%s): %v", it.Name, err)
		}
		if got.Name != it.Name || got.Kind != it.Kind {
			t.Errorf("identity lost: got %s/%v, want %s/%v", got.Name, got.Kind, it.Name, it.Kind)
		}
		// Mutual substitutability is the right equality for interface types.
		if !Equal(got, it) {
			t.Errorf("%s: decoded type not equal to original", it.Name)
		}
		if len(got.Operations) != len(it.Operations) ||
			len(got.Flows) != len(it.Flows) ||
			len(got.Signals) != len(it.Signals) {
			t.Errorf("%s: member counts differ", it.Name)
		}
	}
}

func TestInterfaceFromValueErrors(t *testing.T) {
	bad := []values.Value{
		values.Int(1),
		values.Record(), // missing name
		values.Record(values.F("name", values.Str("X"))),                                    // missing kind
		values.Record(values.F("name", values.Str("X")), values.F("kind", values.Str("s"))), // kind not uint
		values.Record(values.F("name", values.Str("X")), values.F("kind", values.Uint(99))), // invalid decoded interface
	}
	for i, v := range bad {
		if _, err := InterfaceFromValue(v); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestInterfaceFromValueValidates(t *testing.T) {
	// Encode a valid interface, then corrupt it into a duplicate-operation
	// interface; decoding must reject it.
	dup := values.Record(
		values.F("name", values.Str("X")),
		values.F("kind", values.Uint(uint64(Operational))),
		values.F("operations", values.Seq(
			values.Record(
				values.F("name", values.Str("a")),
				values.F("params", values.Seq()),
				values.F("terminations", values.Seq()),
			),
			values.Record(
				values.F("name", values.Str("a")),
				values.F("params", values.Seq()),
				values.F("terminations", values.Seq()),
			),
		)),
		values.F("flows", values.Seq()),
		values.F("signals", values.Seq()),
	)
	if _, err := InterfaceFromValue(dup); err == nil {
		t.Error("duplicate operations should be rejected at decode")
	}
}
