package types

import "repro/internal/values"

// This file provides the concise construction API for interface types.
// The tutorial's own notation (Section 5.1) is "merely illustrative"; this
// builder is its Go embedding. The paper's BankTeller example reads:
//
//	teller := types.OpInterface("BankTeller",
//		types.Op("Deposit",
//			types.Params(types.P("c", customer), types.P("a", account), types.P("d", dollars)),
//			types.Term("OK", types.P("new_balance", dollars)),
//			types.Term("Error", types.P("reason", values.TString())),
//		),
//		...
//	)

// OpInterface constructs an operational interface type.
func OpInterface(name string, ops ...Operation) *Interface {
	cp := make([]Operation, len(ops))
	copy(cp, ops)
	return &Interface{Name: name, Kind: Operational, Operations: cp}
}

// StreamInterface constructs a stream interface type.
func StreamInterface(name string, flows ...Flow) *Interface {
	cp := make([]Flow, len(flows))
	copy(cp, flows)
	return &Interface{Name: name, Kind: Stream, Flows: cp}
}

// SignalInterface constructs a signal interface type.
func SignalInterface(name string, signals ...SignalDecl) *Interface {
	cp := make([]SignalDecl, len(signals))
	copy(cp, signals)
	return &Interface{Name: name, Kind: Signal, Signals: cp}
}

// Params collects operation parameters; it exists purely to make Op calls
// read naturally.
func Params(ps ...Parameter) []Parameter { return ps }

// Op constructs an interrogation with the given parameters and terminations.
func Op(name string, params []Parameter, terms ...Termination) Operation {
	cp := make([]Termination, len(terms))
	copy(cp, terms)
	return Operation{Name: name, Params: params, Terminations: cp}
}

// Announce constructs an announcement (an operation with no terminations).
func Announce(name string, params ...Parameter) Operation {
	return Operation{Name: name, Params: params}
}

// Term constructs a named termination with the given results.
func Term(name string, results ...Parameter) Termination {
	return Termination{Name: name, Results: results}
}

// FlowOf constructs a flow with the given direction and element type.
func FlowOf(name string, dir FlowDirection, elem *values.DataType) Flow {
	return Flow{Name: name, Direction: dir, Elem: elem}
}

// Sig constructs a signal declaration.
func Sig(name string, prim SignalPrimitive, params ...Parameter) SignalDecl {
	return SignalDecl{Name: name, Primitive: prim, Params: params}
}

// Extend derives a subtype by copying base and appending the extra
// operations — the inheritance mechanism the tutorial describes as
// "inheritance of an interface type (usually) creates a subtype
// relationship". The result is a structural subtype of base provided the
// extra operations do not clash with inherited ones (Validate will catch
// clashes).
func Extend(name string, base *Interface, extra ...Operation) *Interface {
	ops := make([]Operation, 0, len(base.Operations)+len(extra))
	ops = append(ops, base.Operations...)
	ops = append(ops, extra...)
	return &Interface{Name: name, Kind: base.Kind, Operations: ops}
}
