// Package types implements RM-ODP computational interface types and the
// structural subtype relation of Section 5.1.1 (Figure 3) of the tutorial.
//
// RM-ODP interfaces are strongly typed and come in three forms:
//
//   - operational interfaces: named operations, each either an
//     interrogation (returns one of a set of named terminations carrying
//     results) or an announcement (returns nothing);
//   - stream interfaces: named flows of typed elements between producer
//     and consumer;
//   - signal interfaces: the low-level primitives underlying both, modelled
//     on the OSI service primitives REQUEST, INDICATE, RESPONSE, CONFIRM.
//
// Subtyping is structural and substitutable: a subtype can be used wherever
// a supertype is expected (a BankManager can serve as a BankTeller). The
// rules implemented by Subtype are the standard variance rules:
// parameters are contravariant, termination results are covariant, and a
// subtype may not introduce terminations the supertype's clients do not
// expect.
package types

import (
	"errors"
	"fmt"

	"repro/internal/values"
)

// ErrNotSubtype is wrapped by every Subtype failure, with details of the
// first violated rule.
var ErrNotSubtype = errors.New("types: not a subtype")

// ErrBadInterface is wrapped by Validate failures.
var ErrBadInterface = errors.New("types: invalid interface type")

// InterfaceKind distinguishes the three forms of computational interface.
type InterfaceKind int

// The three interface kinds of the computational viewpoint.
const (
	Operational InterfaceKind = iota + 1
	Stream
	Signal
)

// String returns the lower-case name of the kind.
func (k InterfaceKind) String() string {
	switch k {
	case Operational:
		return "operational"
	case Stream:
		return "stream"
	case Signal:
		return "signal"
	}
	return fmt.Sprintf("interfacekind(%d)", int(k))
}

// Parameter is a named, typed operation parameter or termination result.
type Parameter struct {
	Name string
	Type *values.DataType
}

// P is shorthand for constructing a Parameter.
func P(name string, t *values.DataType) Parameter { return Parameter{Name: name, Type: t} }

// Termination is one of the named outcomes of an interrogation, e.g.
// "OK(new_balance: Dollars)" or "NotToday(today, daily_limit: Dollars)".
type Termination struct {
	Name    string
	Results []Parameter
}

// Operation is a named operation of an operational interface. An operation
// with no terminations is an announcement (invoked without waiting for an
// outcome); an operation with one or more terminations is an interrogation.
type Operation struct {
	Name         string
	Params       []Parameter
	Terminations []Termination
}

// IsAnnouncement reports whether the operation returns no termination.
func (o Operation) IsAnnouncement() bool { return len(o.Terminations) == 0 }

// Termination returns the named termination, if declared.
func (o Operation) Termination(name string) (Termination, bool) {
	for _, t := range o.Terminations {
		if t.Name == name {
			return t, true
		}
	}
	return Termination{}, false
}

// FlowDirection states which side of a stream interface emits the flow.
type FlowDirection int

// Flow directions relative to the interface's owner: a Producer flow is
// emitted by the owner, a Consumer flow is absorbed by it.
const (
	Producer FlowDirection = iota + 1
	Consumer
)

// String returns the lower-case name of the direction.
func (d FlowDirection) String() string {
	switch d {
	case Producer:
		return "producer"
	case Consumer:
		return "consumer"
	}
	return fmt.Sprintf("flowdirection(%d)", int(d))
}

// Flow is one logically continuous stream of typed elements within a
// stream interface; several flows (e.g. audio plus video) can be grouped
// in one interface.
type Flow struct {
	Name      string
	Direction FlowDirection
	Elem      *values.DataType
}

// SignalPrimitive is one of the four OSI service primitives the tutorial
// cites as examples of signals.
type SignalPrimitive int

// The OSI service primitives.
const (
	Request SignalPrimitive = iota + 1
	Indicate
	Response
	Confirm
)

// String returns the upper-case OSI name of the primitive.
func (p SignalPrimitive) String() string {
	switch p {
	case Request:
		return "REQUEST"
	case Indicate:
		return "INDICATE"
	case Response:
		return "RESPONSE"
	case Confirm:
		return "CONFIRM"
	}
	return fmt.Sprintf("signalprimitive(%d)", int(p))
}

// Outgoing reports whether the primitive is emitted by the interface's
// owner (REQUEST, RESPONSE) rather than delivered to it (INDICATE, CONFIRM).
func (p SignalPrimitive) Outgoing() bool { return p == Request || p == Response }

// SignalDecl is one signal of a signal interface.
type SignalDecl struct {
	Name      string
	Primitive SignalPrimitive
	Params    []Parameter
}

// Interface is a computational interface type. Exactly one of the
// Operations, Flows or Signals sets is populated, according to Kind.
type Interface struct {
	Name       string
	Kind       InterfaceKind
	Operations []Operation
	Flows      []Flow
	Signals    []SignalDecl
}

// Operation returns the named operation, if declared.
func (it *Interface) Operation(name string) (Operation, bool) {
	for _, op := range it.Operations {
		if op.Name == name {
			return op, true
		}
	}
	return Operation{}, false
}

// Flow returns the named flow, if declared.
func (it *Interface) Flow(name string) (Flow, bool) {
	for _, f := range it.Flows {
		if f.Name == name {
			return f, true
		}
	}
	return Flow{}, false
}

// Signal returns the named signal, if declared.
func (it *Interface) Signal(name string) (SignalDecl, bool) {
	for _, s := range it.Signals {
		if s.Name == name {
			return s, true
		}
	}
	return SignalDecl{}, false
}

// Validate checks internal consistency: a known kind, members only of the
// matching sort, unique member names, unique termination names per
// operation, and non-nil types throughout.
func (it *Interface) Validate() error {
	if it.Name == "" {
		return fmt.Errorf("%w: empty interface name", ErrBadInterface)
	}
	switch it.Kind {
	case Operational:
		if len(it.Flows) != 0 || len(it.Signals) != 0 {
			return fmt.Errorf("%w: %s: operational interface with flows or signals", ErrBadInterface, it.Name)
		}
		seen := map[string]bool{}
		for _, op := range it.Operations {
			if op.Name == "" {
				return fmt.Errorf("%w: %s: unnamed operation", ErrBadInterface, it.Name)
			}
			if seen[op.Name] {
				return fmt.Errorf("%w: %s: duplicate operation %q", ErrBadInterface, it.Name, op.Name)
			}
			seen[op.Name] = true
			if err := validateParams(op.Params); err != nil {
				return fmt.Errorf("%w: %s.%s: %v", ErrBadInterface, it.Name, op.Name, err)
			}
			tseen := map[string]bool{}
			for _, term := range op.Terminations {
				if term.Name == "" {
					return fmt.Errorf("%w: %s.%s: unnamed termination", ErrBadInterface, it.Name, op.Name)
				}
				if tseen[term.Name] {
					return fmt.Errorf("%w: %s.%s: duplicate termination %q", ErrBadInterface, it.Name, op.Name, term.Name)
				}
				tseen[term.Name] = true
				if err := validateParams(term.Results); err != nil {
					return fmt.Errorf("%w: %s.%s returns %s: %v", ErrBadInterface, it.Name, op.Name, term.Name, err)
				}
			}
		}
	case Stream:
		if len(it.Operations) != 0 || len(it.Signals) != 0 {
			return fmt.Errorf("%w: %s: stream interface with operations or signals", ErrBadInterface, it.Name)
		}
		seen := map[string]bool{}
		for _, f := range it.Flows {
			if f.Name == "" {
				return fmt.Errorf("%w: %s: unnamed flow", ErrBadInterface, it.Name)
			}
			if seen[f.Name] {
				return fmt.Errorf("%w: %s: duplicate flow %q", ErrBadInterface, it.Name, f.Name)
			}
			seen[f.Name] = true
			if f.Direction != Producer && f.Direction != Consumer {
				return fmt.Errorf("%w: %s: flow %q has invalid direction", ErrBadInterface, it.Name, f.Name)
			}
			if f.Elem == nil {
				return fmt.Errorf("%w: %s: flow %q has nil element type", ErrBadInterface, it.Name, f.Name)
			}
		}
	case Signal:
		if len(it.Operations) != 0 || len(it.Flows) != 0 {
			return fmt.Errorf("%w: %s: signal interface with operations or flows", ErrBadInterface, it.Name)
		}
		seen := map[string]bool{}
		for _, s := range it.Signals {
			if s.Name == "" {
				return fmt.Errorf("%w: %s: unnamed signal", ErrBadInterface, it.Name)
			}
			if seen[s.Name] {
				return fmt.Errorf("%w: %s: duplicate signal %q", ErrBadInterface, it.Name, s.Name)
			}
			seen[s.Name] = true
			switch s.Primitive {
			case Request, Indicate, Response, Confirm:
			default:
				return fmt.Errorf("%w: %s: signal %q has invalid primitive", ErrBadInterface, it.Name, s.Name)
			}
			if err := validateParams(s.Params); err != nil {
				return fmt.Errorf("%w: %s!%s: %v", ErrBadInterface, it.Name, s.Name, err)
			}
		}
	default:
		return fmt.Errorf("%w: %s: unknown kind %v", ErrBadInterface, it.Name, it.Kind)
	}
	return nil
}

func validateParams(ps []Parameter) error {
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" {
			return errors.New("unnamed parameter")
		}
		if seen[p.Name] {
			return fmt.Errorf("duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if p.Type == nil {
			return fmt.Errorf("parameter %q has nil type", p.Name)
		}
	}
	return nil
}

// Subtype reports whether sub is a structural subtype of super — i.e.
// whether an interface of type sub is substitutable wherever super is
// expected. On failure it returns an error wrapping ErrNotSubtype that
// explains the first violated rule.
//
// The rules:
//
//   - kinds must match;
//   - operational: sub must declare every operation of super, announcements
//     stay announcements, parameter lists have equal arity with
//     contravariant element types, and the terminations sub may produce for
//     a shared operation must be a subset of super's, with covariant
//     results (sub may also declare extra operations — width subtyping);
//   - stream: sub must declare every flow of super with the same direction;
//     producer flows are covariant, consumer flows contravariant;
//   - signal: sub must declare every signal of super with the same
//     primitive; outgoing signals are covariant, incoming contravariant.
func Subtype(sub, super *Interface) error {
	if sub == nil || super == nil {
		return fmt.Errorf("%w: nil interface", ErrNotSubtype)
	}
	if sub.Kind != super.Kind {
		return fmt.Errorf("%w: %s is %v, %s is %v", ErrNotSubtype, sub.Name, sub.Kind, super.Name, super.Kind)
	}
	switch super.Kind {
	case Operational:
		for _, sop := range super.Operations {
			bop, ok := sub.Operation(sop.Name)
			if !ok {
				return fmt.Errorf("%w: %s lacks operation %q required by %s",
					ErrNotSubtype, sub.Name, sop.Name, super.Name)
			}
			if err := operationConforms(bop, sop); err != nil {
				return fmt.Errorf("%w: %s.%s: %v", ErrNotSubtype, sub.Name, sop.Name, err)
			}
		}
	case Stream:
		for _, sf := range super.Flows {
			bf, ok := sub.Flow(sf.Name)
			if !ok {
				return fmt.Errorf("%w: %s lacks flow %q required by %s",
					ErrNotSubtype, sub.Name, sf.Name, super.Name)
			}
			if bf.Direction != sf.Direction {
				return fmt.Errorf("%w: flow %q: direction %v, want %v",
					ErrNotSubtype, sf.Name, bf.Direction, sf.Direction)
			}
			switch sf.Direction {
			case Producer: // sub produces: what it emits must fit what super promises
				if !bf.Elem.AssignableTo(sf.Elem) {
					return fmt.Errorf("%w: producer flow %q: %s not assignable to %s",
						ErrNotSubtype, sf.Name, bf.Elem, sf.Elem)
				}
			case Consumer: // sub consumes: it must accept everything super accepts
				if !sf.Elem.AssignableTo(bf.Elem) {
					return fmt.Errorf("%w: consumer flow %q: %s not assignable to %s",
						ErrNotSubtype, sf.Name, sf.Elem, bf.Elem)
				}
			}
		}
	case Signal:
		for _, ss := range super.Signals {
			bs, ok := sub.Signal(ss.Name)
			if !ok {
				return fmt.Errorf("%w: %s lacks signal %q required by %s",
					ErrNotSubtype, sub.Name, ss.Name, super.Name)
			}
			if bs.Primitive != ss.Primitive {
				return fmt.Errorf("%w: signal %q: primitive %v, want %v",
					ErrNotSubtype, ss.Name, bs.Primitive, ss.Primitive)
			}
			if len(bs.Params) != len(ss.Params) {
				return fmt.Errorf("%w: signal %q: arity %d, want %d",
					ErrNotSubtype, ss.Name, len(bs.Params), len(ss.Params))
			}
			for i := range ss.Params {
				if ss.Primitive.Outgoing() {
					if !bs.Params[i].Type.AssignableTo(ss.Params[i].Type) {
						return fmt.Errorf("%w: signal %q param %q: covariance violated",
							ErrNotSubtype, ss.Name, ss.Params[i].Name)
					}
				} else {
					if !ss.Params[i].Type.AssignableTo(bs.Params[i].Type) {
						return fmt.Errorf("%w: signal %q param %q: contravariance violated",
							ErrNotSubtype, ss.Name, ss.Params[i].Name)
					}
				}
			}
		}
	default:
		return fmt.Errorf("%w: unknown kind %v", ErrNotSubtype, super.Kind)
	}
	return nil
}

func operationConforms(sub, super Operation) error {
	if sub.IsAnnouncement() != super.IsAnnouncement() {
		return errors.New("announcement/interrogation mismatch")
	}
	if len(sub.Params) != len(super.Params) {
		return fmt.Errorf("parameter arity %d, want %d", len(sub.Params), len(super.Params))
	}
	// Contravariance: the subtype must accept every argument the supertype's
	// clients may pass, so super's parameter types must be assignable to sub's.
	for i := range super.Params {
		if !super.Params[i].Type.AssignableTo(sub.Params[i].Type) {
			return fmt.Errorf("parameter %d (%q): contravariance violated: %s not assignable to %s",
				i, super.Params[i].Name, super.Params[i].Type, sub.Params[i].Type)
		}
	}
	// Termination containment: anything sub can reply with must be expected
	// by super's clients.
	for _, bt := range sub.Terminations {
		st, ok := super.Termination(bt.Name)
		if !ok {
			return fmt.Errorf("termination %q not declared by supertype", bt.Name)
		}
		if len(bt.Results) != len(st.Results) {
			return fmt.Errorf("termination %q: result arity %d, want %d",
				bt.Name, len(bt.Results), len(st.Results))
		}
		// Covariance: what sub returns must fit what super promised.
		for i := range bt.Results {
			if !bt.Results[i].Type.AssignableTo(st.Results[i].Type) {
				return fmt.Errorf("termination %q result %d (%q): covariance violated: %s not assignable to %s",
					bt.Name, i, st.Results[i].Name, bt.Results[i].Type, st.Results[i].Type)
			}
		}
	}
	return nil
}

// IsSubtype is the boolean form of Subtype.
func IsSubtype(sub, super *Interface) bool { return Subtype(sub, super) == nil }

// Equal reports whether two interface types are mutually substitutable.
func Equal(a, b *Interface) bool { return IsSubtype(a, b) && IsSubtype(b, a) }

// Complement returns the causal mirror of a stream interface: the type of
// the peer that would bind to it, with every flow's direction flipped
// (what one end produces the other consumes). Non-stream interfaces are
// returned unchanged; the receiver is never mutated.
func Complement(it *Interface) *Interface {
	if it == nil || it.Kind != Stream {
		return it
	}
	out := &Interface{Name: it.Name + "~", Kind: Stream, Flows: make([]Flow, len(it.Flows))}
	copy(out.Flows, it.Flows)
	for i := range out.Flows {
		switch out.Flows[i].Direction {
		case Producer:
			out.Flows[i].Direction = Consumer
		case Consumer:
			out.Flows[i].Direction = Producer
		}
	}
	return out
}

// FlowCausality checks that a stream binding on the named flow is causally
// well-formed: the producer's interface declares the flow as Producer (it
// emits), the consumer's declares it as Consumer (it absorbs), and every
// element the producer may emit is acceptable to the consumer (producer
// element type assignable to the consumer's — the covariance direction of
// the stream subtype rule, applied across the binding rather than down a
// type hierarchy). Either interface may be the same type at both ends; the
// check is then that the flow is declared with complementary readings.
func FlowCausality(producer, consumer *Interface, flow string) error {
	if producer == nil || consumer == nil {
		return fmt.Errorf("%w: nil interface", ErrBadInterface)
	}
	if producer.Kind != Stream {
		return fmt.Errorf("%w: %s: producer end is %v, not stream", ErrBadInterface, producer.Name, producer.Kind)
	}
	if consumer.Kind != Stream {
		return fmt.Errorf("%w: %s: consumer end is %v, not stream", ErrBadInterface, consumer.Name, consumer.Kind)
	}
	pf, ok := producer.Flow(flow)
	if !ok {
		return fmt.Errorf("%w: %s has no flow %q", ErrBadInterface, producer.Name, flow)
	}
	cf, ok := consumer.Flow(flow)
	if !ok {
		return fmt.Errorf("%w: %s has no flow %q", ErrBadInterface, consumer.Name, flow)
	}
	if pf.Direction != Producer {
		return fmt.Errorf("%w: flow %s.%s is declared %v at the producing end", ErrBadInterface, producer.Name, flow, pf.Direction)
	}
	if cf.Direction != Consumer {
		return fmt.Errorf("%w: flow %s.%s is declared %v at the consuming end", ErrBadInterface, consumer.Name, flow, cf.Direction)
	}
	if !pf.Elem.AssignableTo(cf.Elem) {
		return fmt.Errorf("%w: flow %q: produced element type %s not assignable to consumed %s",
			ErrBadInterface, flow, pf.Elem, cf.Elem)
	}
	return nil
}
