package types

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/values"
)

// The Figure 3 fixture: BankTeller with BankManager and LoansOfficer
// subtypes, exactly as in the tutorial.

func dollars() *values.DataType { return values.TInt() }

func tellerType() *Interface {
	return OpInterface("BankTeller",
		Op("Deposit",
			Params(P("c", values.TString()), P("a", values.TString()), P("d", dollars())),
			Term("OK", P("new_balance", dollars())),
			Term("Error", P("reason", values.TString())),
		),
		Op("Withdraw",
			Params(P("c", values.TString()), P("a", values.TString()), P("d", dollars())),
			Term("OK", P("new_balance", dollars())),
			Term("NotToday", P("today", dollars()), P("daily_limit", dollars())),
			Term("Error", P("reason", values.TString())),
		),
	)
}

func managerType() *Interface {
	return Extend("BankManager", tellerType(),
		Op("CreateAccount",
			Params(P("c", values.TString())),
			Term("OK", P("a", values.TString())),
			Term("Error", P("reason", values.TString())),
		),
	)
}

func loansOfficerType() *Interface {
	return Extend("LoansOfficer", tellerType(),
		Op("ApproveLoan",
			Params(P("c", values.TString()), P("amount", dollars())),
			Term("OK"),
			Term("Error", P("reason", values.TString())),
		),
	)
}

func TestFigure3Subtyping(t *testing.T) {
	teller := tellerType()
	manager := managerType()
	loans := loansOfficerType()

	for _, it := range []*Interface{teller, manager, loans} {
		if err := it.Validate(); err != nil {
			t.Fatalf("Validate(%s): %v", it.Name, err)
		}
	}

	// "Either can substitute for a BankTeller."
	if err := Subtype(manager, teller); err != nil {
		t.Errorf("BankManager should be subtype of BankTeller: %v", err)
	}
	if err := Subtype(loans, teller); err != nil {
		t.Errorf("LoansOfficer should be subtype of BankTeller: %v", err)
	}
	// "Neither a BankTeller nor a LoansOfficer can replace a BankManager."
	if IsSubtype(teller, manager) {
		t.Error("BankTeller must not be subtype of BankManager")
	}
	if IsSubtype(loans, manager) {
		t.Error("LoansOfficer must not be subtype of BankManager")
	}
	// And symmetric checks for LoansOfficer.
	if IsSubtype(teller, loans) {
		t.Error("BankTeller must not be subtype of LoansOfficer")
	}
	if IsSubtype(manager, loans) {
		t.Error("BankManager must not be subtype of LoansOfficer")
	}
}

func TestSubtypeReflexive(t *testing.T) {
	for _, it := range []*Interface{tellerType(), managerType(), loansOfficerType()} {
		if err := Subtype(it, it); err != nil {
			t.Errorf("%s not subtype of itself: %v", it.Name, err)
		}
		if !Equal(it, it) {
			t.Errorf("%s not Equal to itself", it.Name)
		}
	}
}

func TestSubtypeTransitive(t *testing.T) {
	// manager ≤ teller and a further extension ≤ manager implies ≤ teller.
	regional := Extend("RegionalManager", managerType(),
		Announce("CloseBranch"),
	)
	if err := Subtype(regional, managerType()); err != nil {
		t.Fatalf("regional ≤ manager: %v", err)
	}
	if err := Subtype(regional, tellerType()); err != nil {
		t.Errorf("transitivity violated: %v", err)
	}
}

func TestSubtypeErrors(t *testing.T) {
	teller := tellerType()
	tests := []struct {
		name    string
		sub     *Interface
		super   *Interface
		errPart string
	}{
		{
			"missing-operation",
			OpInterface("T"),
			teller, "lacks operation",
		},
		{
			"kind-mismatch",
			StreamInterface("S"), teller, "is stream",
		},
		{
			"nil", nil, teller, "nil interface",
		},
		{
			"announcement-mismatch",
			OpInterface("T", Announce("Ping")),
			OpInterface("U", Op("Ping", nil, Term("OK"))),
			"announcement/interrogation mismatch",
		},
		{
			"param-arity",
			OpInterface("T", Op("Get", Params(P("a", values.TInt())), Term("OK"))),
			OpInterface("U", Op("Get", nil, Term("OK"))),
			"parameter arity",
		},
		{
			"param-contravariance",
			// sub accepts only enum{a}; super promises clients may pass enum{a,b}.
			OpInterface("T", Op("Get", Params(P("x", values.TEnum("E", "a"))), Term("OK"))),
			OpInterface("U", Op("Get", Params(P("x", values.TEnum("E", "a", "b"))), Term("OK"))),
			"contravariance violated",
		},
		{
			"extra-termination",
			OpInterface("T", Op("Get", nil, Term("OK"), Term("Surprise"))),
			OpInterface("U", Op("Get", nil, Term("OK"))),
			"not declared by supertype",
		},
		{
			"termination-result-arity",
			OpInterface("T", Op("Get", nil, Term("OK", P("x", values.TInt()), P("y", values.TInt())))),
			OpInterface("U", Op("Get", nil, Term("OK", P("x", values.TInt())))),
			"result arity",
		},
		{
			"termination-covariance",
			// sub returns enum{a,b}; super promised only enum{a}.
			OpInterface("T", Op("Get", nil, Term("OK", P("x", values.TEnum("E", "a", "b"))))),
			OpInterface("U", Op("Get", nil, Term("OK", P("x", values.TEnum("E", "a"))))),
			"covariance violated",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Subtype(tt.sub, tt.super)
			if err == nil {
				t.Fatal("Subtype should fail")
			}
			if !errors.Is(err, ErrNotSubtype) {
				t.Errorf("error %v should wrap ErrNotSubtype", err)
			}
			if !strings.Contains(err.Error(), tt.errPart) {
				t.Errorf("error %q should mention %q", err, tt.errPart)
			}
		})
	}
}

func TestStreamSubtyping(t *testing.T) {
	frame := values.TRecord("Frame", values.FT("seq", values.TUint()), values.FT("data", values.TBytes()))
	frameWide := values.TRecord("FrameWide",
		values.FT("seq", values.TUint()), values.FT("data", values.TBytes()), values.FT("ts", values.TUint()))

	av := StreamInterface("AV",
		FlowOf("video", Producer, frame),
		FlowOf("control", Consumer, frameWide),
	)
	if err := av.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Producer covariance: producing a wider frame is fine.
	sub := StreamInterface("AVPlus",
		FlowOf("video", Producer, frameWide),
		FlowOf("control", Consumer, frameWide),
		FlowOf("audio", Producer, frame),
	)
	if err := Subtype(sub, av); err != nil {
		t.Errorf("AVPlus should be subtype: %v", err)
	}
	// Consumer contravariance: consuming only the wide frame when super
	// promises clients may send narrow frames is not allowed.
	narrowControl := StreamInterface("AV2",
		FlowOf("video", Producer, frame),
		FlowOf("control", Consumer, frame),
	)
	bad := StreamInterface("Bad",
		FlowOf("video", Producer, frame),
		FlowOf("control", Consumer, frameWide),
	)
	if IsSubtype(bad, narrowControl) {
		// bad consumes frameWide; narrowControl clients send frame; frame is
		// not assignable to frameWide (missing ts), so this must fail.
		t.Error("consumer contravariance violated")
	}
	// Direction mismatch.
	flipped := StreamInterface("Flipped", FlowOf("video", Consumer, frame), FlowOf("control", Consumer, frameWide))
	if IsSubtype(flipped, av) {
		t.Error("direction mismatch must fail")
	}
	// Missing flow.
	missing := StreamInterface("Missing", FlowOf("video", Producer, frame))
	if IsSubtype(missing, av) {
		t.Error("missing flow must fail")
	}
}

func TestSignalSubtyping(t *testing.T) {
	osi := SignalInterface("OSI",
		Sig("connect", Request, P("addr", values.TString())),
		Sig("connectInd", Indicate, P("addr", values.TString())),
	)
	if err := osi.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := Subtype(osi, osi); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	// Extra signals in the subtype are fine.
	ext := SignalInterface("OSIX",
		Sig("connect", Request, P("addr", values.TString())),
		Sig("connectInd", Indicate, P("addr", values.TString())),
		Sig("reset", Request),
	)
	if err := Subtype(ext, osi); err != nil {
		t.Errorf("extension: %v", err)
	}
	// Primitive mismatch fails.
	wrongPrim := SignalInterface("W",
		Sig("connect", Indicate, P("addr", values.TString())),
		Sig("connectInd", Indicate, P("addr", values.TString())),
	)
	if IsSubtype(wrongPrim, osi) {
		t.Error("primitive mismatch must fail")
	}
	// Arity mismatch fails.
	wrongArity := SignalInterface("W2",
		Sig("connect", Request),
		Sig("connectInd", Indicate, P("addr", values.TString())),
	)
	if IsSubtype(wrongArity, osi) {
		t.Error("arity mismatch must fail")
	}
	// Outgoing covariance: emitting a subset enum is fine.
	superOut := SignalInterface("SO", Sig("code", Request, P("c", values.TEnum("E", "a", "b"))))
	subOut := SignalInterface("SU", Sig("code", Request, P("c", values.TEnum("E", "a"))))
	if err := Subtype(subOut, superOut); err != nil {
		t.Errorf("outgoing covariance: %v", err)
	}
	if IsSubtype(superOut, subOut) {
		t.Error("outgoing covariance reverse must fail")
	}
	// Incoming contravariance: accepting a superset enum is fine.
	superIn := SignalInterface("SI", Sig("code", Indicate, P("c", values.TEnum("E", "a"))))
	subIn := SignalInterface("SJ", Sig("code", Indicate, P("c", values.TEnum("E", "a", "b"))))
	if err := Subtype(subIn, superIn); err != nil {
		t.Errorf("incoming contravariance: %v", err)
	}
	if IsSubtype(superIn, subIn) {
		t.Error("incoming contravariance reverse must fail")
	}
	// Missing signal fails.
	if IsSubtype(SignalInterface("Empty"), osi) {
		t.Error("missing signal must fail")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		it   *Interface
	}{
		{"empty-name", &Interface{Kind: Operational}},
		{"unknown-kind", &Interface{Name: "X", Kind: InterfaceKind(9)}},
		{"operational-with-flows", &Interface{Name: "X", Kind: Operational, Flows: []Flow{{Name: "f", Direction: Producer, Elem: values.TInt()}}}},
		{"stream-with-ops", &Interface{Name: "X", Kind: Stream, Operations: []Operation{Announce("a")}}},
		{"signal-with-ops", &Interface{Name: "X", Kind: Signal, Operations: []Operation{Announce("a")}}},
		{"dup-op", OpInterface("X", Announce("a"), Announce("a"))},
		{"unnamed-op", OpInterface("X", Announce(""))},
		{"dup-param", OpInterface("X", Announce("a", P("p", values.TInt()), P("p", values.TInt())))},
		{"unnamed-param", OpInterface("X", Announce("a", P("", values.TInt())))},
		{"nil-param-type", OpInterface("X", Announce("a", P("p", nil)))},
		{"dup-term", OpInterface("X", Op("a", nil, Term("T"), Term("T")))},
		{"unnamed-term", OpInterface("X", Op("a", nil, Term("")))},
		{"bad-term-result", OpInterface("X", Op("a", nil, Term("T", P("", values.TInt()))))},
		{"dup-flow", StreamInterface("X", FlowOf("f", Producer, values.TInt()), FlowOf("f", Consumer, values.TInt()))},
		{"unnamed-flow", StreamInterface("X", FlowOf("", Producer, values.TInt()))},
		{"bad-flow-dir", StreamInterface("X", Flow{Name: "f", Elem: values.TInt()})},
		{"nil-flow-elem", StreamInterface("X", Flow{Name: "f", Direction: Producer})},
		{"dup-signal", SignalInterface("X", Sig("s", Request), Sig("s", Confirm))},
		{"unnamed-signal", SignalInterface("X", Sig("", Request))},
		{"bad-signal-prim", SignalInterface("X", SignalDecl{Name: "s"})},
		{"bad-signal-param", SignalInterface("X", Sig("s", Request, P("", values.TInt())))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.it.Validate()
			if err == nil {
				t.Fatal("Validate should fail")
			}
			if !errors.Is(err, ErrBadInterface) {
				t.Errorf("error %v should wrap ErrBadInterface", err)
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	teller := tellerType()
	if _, ok := teller.Operation("Withdraw"); !ok {
		t.Error("Operation(Withdraw) not found")
	}
	if _, ok := teller.Operation("Nope"); ok {
		t.Error("Operation(Nope) should not be found")
	}
	op, _ := teller.Operation("Withdraw")
	if term, ok := op.Termination("NotToday"); !ok || len(term.Results) != 2 {
		t.Errorf("Termination(NotToday) = %+v, %v", term, ok)
	}
	if _, ok := op.Termination("Nope"); ok {
		t.Error("Termination(Nope) should not be found")
	}
	if op.IsAnnouncement() {
		t.Error("Withdraw is not an announcement")
	}
	if !Announce("Ping").IsAnnouncement() {
		t.Error("Announce should produce an announcement")
	}
	st := StreamInterface("S", FlowOf("f", Producer, values.TInt()))
	if _, ok := st.Flow("f"); !ok {
		t.Error("Flow(f) not found")
	}
	if _, ok := st.Flow("g"); ok {
		t.Error("Flow(g) should not be found")
	}
	si := SignalInterface("G", Sig("s", Request))
	if _, ok := si.Signal("s"); !ok {
		t.Error("Signal(s) not found")
	}
	if _, ok := si.Signal("t"); ok {
		t.Error("Signal(t) should not be found")
	}
}

func TestEnumStrings(t *testing.T) {
	if Operational.String() != "operational" || Stream.String() != "stream" || Signal.String() != "signal" {
		t.Error("InterfaceKind strings")
	}
	if InterfaceKind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
	if Producer.String() != "producer" || Consumer.String() != "consumer" {
		t.Error("FlowDirection strings")
	}
	if FlowDirection(9).String() == "" {
		t.Error("unknown direction string empty")
	}
	for p, want := range map[SignalPrimitive]string{
		Request: "REQUEST", Indicate: "INDICATE", Response: "RESPONSE", Confirm: "CONFIRM",
	} {
		if p.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if SignalPrimitive(9).String() == "" {
		t.Error("unknown primitive string empty")
	}
	if !Request.Outgoing() || !Response.Outgoing() || Indicate.Outgoing() || Confirm.Outgoing() {
		t.Error("Outgoing classification wrong")
	}
}
