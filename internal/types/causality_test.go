package types

import (
	"errors"
	"testing"

	"repro/internal/values"
)

func TestComplement(t *testing.T) {
	av := StreamInterface("AV",
		FlowOf("video", Producer, values.TBytes()),
		FlowOf("control", Consumer, values.TInt()))
	mirror := Complement(av)
	if mirror == av {
		t.Fatal("Complement returned the receiver")
	}
	if f, _ := mirror.Flow("video"); f.Direction != Consumer {
		t.Fatalf("video direction = %v", f.Direction)
	}
	if f, _ := mirror.Flow("control"); f.Direction != Producer {
		t.Fatalf("control direction = %v", f.Direction)
	}
	// The original is untouched.
	if f, _ := av.Flow("video"); f.Direction != Producer {
		t.Fatal("Complement mutated its argument")
	}
	// Complement is an involution up to naming.
	back := Complement(mirror)
	for _, f := range av.Flows {
		bf, ok := back.Flow(f.Name)
		if !ok || bf.Direction != f.Direction {
			t.Fatalf("double complement changed flow %s", f.Name)
		}
	}
	// Non-stream interfaces pass through unchanged.
	op := OpInterface("Ops")
	if Complement(op) != op {
		t.Fatal("Complement of operational interface should be identity")
	}
	if Complement(nil) != nil {
		t.Fatal("Complement(nil) should be nil")
	}
}

func TestFlowCausality(t *testing.T) {
	wide := values.TInt()
	prod := StreamInterface("Feed", FlowOf("ticks", Producer, wide))
	cons := Complement(prod)

	if err := FlowCausality(prod, cons, "ticks"); err != nil {
		t.Fatalf("well-formed binding rejected: %v", err)
	}
	// Missing flow.
	if err := FlowCausality(prod, cons, "nope"); !errors.Is(err, ErrBadInterface) {
		t.Fatalf("missing flow: %v", err)
	}
	// Producer end declares the flow Consumer: causality violated.
	if err := FlowCausality(cons, cons, "ticks"); !errors.Is(err, ErrBadInterface) {
		t.Fatalf("consumer-as-producer: %v", err)
	}
	// Consumer end declares the flow Producer: two emitters, no absorber.
	if err := FlowCausality(prod, prod, "ticks"); !errors.Is(err, ErrBadInterface) {
		t.Fatalf("producer-as-consumer: %v", err)
	}
	// Non-stream ends.
	op := OpInterface("Ops")
	if err := FlowCausality(op, cons, "ticks"); !errors.Is(err, ErrBadInterface) {
		t.Fatalf("operational producer: %v", err)
	}
	if err := FlowCausality(prod, op, "ticks"); !errors.Is(err, ErrBadInterface) {
		t.Fatalf("operational consumer: %v", err)
	}
	if err := FlowCausality(nil, cons, "ticks"); !errors.Is(err, ErrBadInterface) {
		t.Fatalf("nil producer: %v", err)
	}
	// Element-type mismatch: producing records into an int-consuming flow.
	recElem := values.TRecord("R", values.FT("x", values.TInt()))
	prodRec := StreamInterface("FeedRec", FlowOf("ticks", Producer, recElem))
	if err := FlowCausality(prodRec, cons, "ticks"); !errors.Is(err, ErrBadInterface) {
		t.Fatalf("element mismatch: %v", err)
	}
}
