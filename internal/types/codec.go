package types

// Interface types must themselves travel through the ODP system — the type
// repository (Section 8.3.1) serves them to traders and binders at run
// time. This file maps Interface and values.DataType to and from the value
// model, so a type definition is just another value on the wire.

import (
	"errors"
	"fmt"

	"repro/internal/values"
)

// ErrBadTypeValue is wrapped by decoding failures.
var ErrBadTypeValue = errors.New("types: malformed encoded type")

// DataTypeToValue encodes a data type as a value.
func DataTypeToValue(t *values.DataType) values.Value {
	if t == nil {
		return values.Null()
	}
	fields := []values.Field{
		values.F("kind", values.Uint(uint64(t.Kind))),
		values.F("name", values.Str(t.Name)),
	}
	switch t.Kind {
	case values.KindEnum:
		syms := make([]values.Value, len(t.Symbols))
		for i, s := range t.Symbols {
			syms[i] = values.Str(s)
		}
		fields = append(fields, values.F("symbols", values.Seq(syms...)))
	case values.KindRecord:
		fs := make([]values.Value, len(t.Fields))
		for i, f := range t.Fields {
			fs[i] = values.Record(
				values.F("name", values.Str(f.Name)),
				values.F("type", DataTypeToValue(f.Type)),
			)
		}
		fields = append(fields, values.F("fields", values.Seq(fs...)))
	case values.KindSeq:
		fields = append(fields, values.F("elem", DataTypeToValue(t.Elem)))
	}
	return values.Record(fields...)
}

// DataTypeFromValue decodes a data type previously encoded by
// DataTypeToValue.
func DataTypeFromValue(v values.Value) (*values.DataType, error) {
	if v.IsNull() {
		return nil, nil
	}
	if v.Kind() != values.KindRecord {
		return nil, fmt.Errorf("%w: data type must be a record, got %v", ErrBadTypeValue, v.Kind())
	}
	kindV, ok := v.FieldByName("kind")
	if !ok {
		return nil, fmt.Errorf("%w: missing kind", ErrBadTypeValue)
	}
	kindU, ok := kindV.AsUint()
	if !ok {
		return nil, fmt.Errorf("%w: kind must be uint", ErrBadTypeValue)
	}
	kind := values.Kind(kindU)
	if !kind.Valid() {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadTypeValue, kindU)
	}
	name := ""
	if nv, ok := v.FieldByName("name"); ok {
		name, _ = nv.AsString()
	}
	dt := &values.DataType{Kind: kind, Name: name}
	switch kind {
	case values.KindEnum:
		sv, ok := v.FieldByName("symbols")
		if !ok || sv.Kind() != values.KindSeq {
			return nil, fmt.Errorf("%w: enum missing symbols", ErrBadTypeValue)
		}
		for i := 0; i < sv.Len(); i++ {
			s, ok := sv.ElemAt(i).AsString()
			if !ok {
				return nil, fmt.Errorf("%w: enum symbol %d not a string", ErrBadTypeValue, i)
			}
			dt.Symbols = append(dt.Symbols, s)
		}
	case values.KindRecord:
		fv, ok := v.FieldByName("fields")
		if !ok || fv.Kind() != values.KindSeq {
			return nil, fmt.Errorf("%w: record missing fields", ErrBadTypeValue)
		}
		for i := 0; i < fv.Len(); i++ {
			f := fv.ElemAt(i)
			nameV, ok := f.FieldByName("name")
			if !ok {
				return nil, fmt.Errorf("%w: record field %d missing name", ErrBadTypeValue, i)
			}
			fname, ok := nameV.AsString()
			if !ok {
				return nil, fmt.Errorf("%w: record field %d name not a string", ErrBadTypeValue, i)
			}
			tv, ok := f.FieldByName("type")
			if !ok {
				return nil, fmt.Errorf("%w: record field %q missing type", ErrBadTypeValue, fname)
			}
			ft, err := DataTypeFromValue(tv)
			if err != nil {
				return nil, fmt.Errorf("record field %q: %w", fname, err)
			}
			dt.Fields = append(dt.Fields, values.FT(fname, ft))
		}
	case values.KindSeq:
		ev, ok := v.FieldByName("elem")
		if !ok {
			return nil, fmt.Errorf("%w: seq missing elem", ErrBadTypeValue)
		}
		elem, err := DataTypeFromValue(ev)
		if err != nil {
			return nil, fmt.Errorf("seq elem: %w", err)
		}
		dt.Elem = elem
	}
	return dt, nil
}

func paramsToValue(ps []Parameter) values.Value {
	out := make([]values.Value, len(ps))
	for i, p := range ps {
		out[i] = values.Record(
			values.F("name", values.Str(p.Name)),
			values.F("type", DataTypeToValue(p.Type)),
		)
	}
	return values.Seq(out...)
}

func paramsFromValue(v values.Value) ([]Parameter, error) {
	if v.Kind() != values.KindSeq {
		return nil, fmt.Errorf("%w: parameters must be a seq", ErrBadTypeValue)
	}
	var ps []Parameter
	for i := 0; i < v.Len(); i++ {
		pv := v.ElemAt(i)
		nv, ok := pv.FieldByName("name")
		if !ok {
			return nil, fmt.Errorf("%w: parameter %d missing name", ErrBadTypeValue, i)
		}
		name, ok := nv.AsString()
		if !ok {
			return nil, fmt.Errorf("%w: parameter %d name not a string", ErrBadTypeValue, i)
		}
		tv, ok := pv.FieldByName("type")
		if !ok {
			return nil, fmt.Errorf("%w: parameter %q missing type", ErrBadTypeValue, name)
		}
		t, err := DataTypeFromValue(tv)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", name, err)
		}
		ps = append(ps, P(name, t))
	}
	return ps, nil
}

// ToValue encodes the interface type as a value for transmission.
func (it *Interface) ToValue() values.Value {
	ops := make([]values.Value, len(it.Operations))
	for i, op := range it.Operations {
		terms := make([]values.Value, len(op.Terminations))
		for j, term := range op.Terminations {
			terms[j] = values.Record(
				values.F("name", values.Str(term.Name)),
				values.F("results", paramsToValue(term.Results)),
			)
		}
		ops[i] = values.Record(
			values.F("name", values.Str(op.Name)),
			values.F("params", paramsToValue(op.Params)),
			values.F("terminations", values.Seq(terms...)),
		)
	}
	flows := make([]values.Value, len(it.Flows))
	for i, f := range it.Flows {
		flows[i] = values.Record(
			values.F("name", values.Str(f.Name)),
			values.F("direction", values.Uint(uint64(f.Direction))),
			values.F("elem", DataTypeToValue(f.Elem)),
		)
	}
	sigs := make([]values.Value, len(it.Signals))
	for i, s := range it.Signals {
		sigs[i] = values.Record(
			values.F("name", values.Str(s.Name)),
			values.F("primitive", values.Uint(uint64(s.Primitive))),
			values.F("params", paramsToValue(s.Params)),
		)
	}
	return values.Record(
		values.F("name", values.Str(it.Name)),
		values.F("kind", values.Uint(uint64(it.Kind))),
		values.F("operations", values.Seq(ops...)),
		values.F("flows", values.Seq(flows...)),
		values.F("signals", values.Seq(sigs...)),
	)
}

// InterfaceFromValue decodes an interface type previously encoded by
// ToValue and validates it.
func InterfaceFromValue(v values.Value) (*Interface, error) {
	if v.Kind() != values.KindRecord {
		return nil, fmt.Errorf("%w: interface must be a record", ErrBadTypeValue)
	}
	strField := func(name string) (string, error) {
		fv, ok := v.FieldByName(name)
		if !ok {
			return "", fmt.Errorf("%w: missing %s", ErrBadTypeValue, name)
		}
		s, ok := fv.AsString()
		if !ok {
			return "", fmt.Errorf("%w: %s not a string", ErrBadTypeValue, name)
		}
		return s, nil
	}
	name, err := strField("name")
	if err != nil {
		return nil, err
	}
	kv, ok := v.FieldByName("kind")
	if !ok {
		return nil, fmt.Errorf("%w: missing kind", ErrBadTypeValue)
	}
	ku, ok := kv.AsUint()
	if !ok {
		return nil, fmt.Errorf("%w: kind not a uint", ErrBadTypeValue)
	}
	it := &Interface{Name: name, Kind: InterfaceKind(ku)}

	if ov, ok := v.FieldByName("operations"); ok && ov.Kind() == values.KindSeq {
		for i := 0; i < ov.Len(); i++ {
			opv := ov.ElemAt(i)
			onv, _ := opv.FieldByName("name")
			oname, _ := onv.AsString()
			pv, ok := opv.FieldByName("params")
			if !ok {
				return nil, fmt.Errorf("%w: operation %q missing params", ErrBadTypeValue, oname)
			}
			params, err := paramsFromValue(pv)
			if err != nil {
				return nil, fmt.Errorf("operation %q: %w", oname, err)
			}
			var terms []Termination
			if tv, ok := opv.FieldByName("terminations"); ok && tv.Kind() == values.KindSeq {
				for j := 0; j < tv.Len(); j++ {
					termv := tv.ElemAt(j)
					tnv, _ := termv.FieldByName("name")
					tname, _ := tnv.AsString()
					rv, ok := termv.FieldByName("results")
					if !ok {
						return nil, fmt.Errorf("%w: termination %q missing results", ErrBadTypeValue, tname)
					}
					results, err := paramsFromValue(rv)
					if err != nil {
						return nil, fmt.Errorf("termination %q: %w", tname, err)
					}
					terms = append(terms, Termination{Name: tname, Results: results})
				}
			}
			it.Operations = append(it.Operations, Operation{Name: oname, Params: params, Terminations: terms})
		}
	}
	if fv, ok := v.FieldByName("flows"); ok && fv.Kind() == values.KindSeq {
		for i := 0; i < fv.Len(); i++ {
			flv := fv.ElemAt(i)
			fnv, _ := flv.FieldByName("name")
			fname, _ := fnv.AsString()
			dv, ok := flv.FieldByName("direction")
			if !ok {
				return nil, fmt.Errorf("%w: flow %q missing direction", ErrBadTypeValue, fname)
			}
			du, _ := dv.AsUint()
			ev, ok := flv.FieldByName("elem")
			if !ok {
				return nil, fmt.Errorf("%w: flow %q missing elem", ErrBadTypeValue, fname)
			}
			elem, err := DataTypeFromValue(ev)
			if err != nil {
				return nil, fmt.Errorf("flow %q: %w", fname, err)
			}
			it.Flows = append(it.Flows, Flow{Name: fname, Direction: FlowDirection(du), Elem: elem})
		}
	}
	if sv, ok := v.FieldByName("signals"); ok && sv.Kind() == values.KindSeq {
		for i := 0; i < sv.Len(); i++ {
			sgv := sv.ElemAt(i)
			snv, _ := sgv.FieldByName("name")
			sname, _ := snv.AsString()
			prv, ok := sgv.FieldByName("primitive")
			if !ok {
				return nil, fmt.Errorf("%w: signal %q missing primitive", ErrBadTypeValue, sname)
			}
			pru, _ := prv.AsUint()
			pv, ok := sgv.FieldByName("params")
			if !ok {
				return nil, fmt.Errorf("%w: signal %q missing params", ErrBadTypeValue, sname)
			}
			params, err := paramsFromValue(pv)
			if err != nil {
				return nil, fmt.Errorf("signal %q: %w", sname, err)
			}
			it.Signals = append(it.Signals, SignalDecl{Name: sname, Primitive: SignalPrimitive(pru), Params: params})
		}
	}
	if err := it.Validate(); err != nil {
		return nil, fmt.Errorf("%w: decoded interface invalid: %v", ErrBadTypeValue, err)
	}
	return it, nil
}
