// Package leakcheck is the shared goroutine leak check used by
// chaos-style tests: snapshot the goroutine count before the scenario,
// then assert afterwards — with grace retries, because teardown
// (session readers, netsim delivery loops, probe loops) unwinds
// asynchronously — that the count returned to the snapshot's
// neighbourhood.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Now returns the current goroutine count.
func Now() int { return runtime.NumGoroutine() }

// Check fails tb when, after retrying for up to grace, the goroutine
// count is still more than slack above before. On failure it dumps all
// goroutine stacks so the leaked loop is identifiable.
func Check(tb testing.TB, before, slack int, grace time.Duration) {
	tb.Helper()
	deadline := time.Now().Add(grace)
	now := runtime.NumGoroutine()
	for now > before+slack && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		now = runtime.NumGoroutine()
	}
	if now <= before+slack {
		return
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	tb.Fatalf("goroutine leak: %d before, %d after %v grace (slack %d)\n%s",
		before, now, grace, slack, buf[:n])
}

// Guard snapshots the goroutine count and returns the deferred check:
//
//	defer leakcheck.Guard(t, 2, 5*time.Second)()
func Guard(tb testing.TB, slack int, grace time.Duration) func() {
	before := Now()
	return func() { Check(tb, before, slack, grace) }
}
