package engineering

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/naming"
)

// Capsule is a set of clusters with their cluster managers plus the
// capsule manager. The Capsule type *is* the capsule manager's interface:
// its methods are the capsule-management functions of Section 8.1
// (instantiating, checkpointing and deactivating clusters).
type Capsule struct {
	node *Node
	id   naming.CapsuleID

	mu          sync.Mutex
	clusters    map[uint32]*Cluster
	nextCluster uint32
	deleted     bool
}

// ID returns the capsule identifier.
func (c *Capsule) ID() naming.CapsuleID { return c.id }

// Node returns the node supporting this capsule.
func (c *Capsule) Node() *Node { return c.node }

// ClusterOptions configures a new cluster.
type ClusterOptions struct {
	// AutoReactivate makes the cluster reactivate on demand when a call
	// arrives while it is deactivated — the engineering mechanism behind
	// persistence transparency (Section 9). Without it, calls to a
	// deactivated cluster fail with channel.CodeUnavailable.
	AutoReactivate bool
}

// CreateCluster instantiates an empty cluster (with its cluster manager).
func (c *Capsule) CreateCluster(opts ClusterOptions) (*Cluster, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deleted {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchCapsule, c.id)
	}
	if max := c.node.cfg.MaxClustersPerCapsule; max > 0 && len(c.clusters) >= max {
		return nil, fmt.Errorf("%w: capsule %s allows %d clusters", ErrStructuringLimit, c.id, max)
	}
	seq := c.nextCluster
	c.nextCluster++
	k := &Cluster{
		capsule: c,
		id:      naming.ClusterID{Capsule: c.id, Seq: seq},
		opts:    opts,
		objects: make(map[uint32]*Object),
		state:   clusterActive,
	}
	c.clusters[seq] = k
	return k, nil
}

// Cluster returns the cluster with the given sequence number.
func (c *Capsule) Cluster(seq uint32) (*Cluster, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k, ok := c.clusters[seq]
	if !ok {
		return nil, fmt.Errorf("%w: %d in capsule %s", ErrNoSuchCluster, seq, c.id)
	}
	return k, nil
}

// Clusters returns the capsule's clusters ordered by sequence number.
func (c *Capsule) Clusters() []*Cluster {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Cluster, 0, len(c.clusters))
	for _, k := range c.clusters {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Seq < out[j].id.Seq })
	return out
}

// Checkpoint captures every cluster in the capsule (the capsule-management
// checkpoint function).
func (c *Capsule) Checkpoint() ([]*ClusterCheckpoint, error) {
	var out []*ClusterCheckpoint
	for _, k := range c.Clusters() {
		ck, err := k.Checkpoint()
		if err != nil {
			return nil, err
		}
		out = append(out, ck)
	}
	return out, nil
}

// Instantiate re-creates a cluster from a checkpoint — the other half of
// migration and of reactivating a deactivated capsule on a new node. The
// re-created cluster preserves every interface identity from the
// checkpoint; interface locations are moved to this node in the location
// registry so that bindings elsewhere can re-resolve.
func (c *Capsule) Instantiate(ck *ClusterCheckpoint, opts ClusterOptions) (*Cluster, error) {
	k, err := c.CreateCluster(opts)
	if err != nil {
		return nil, err
	}
	if err := k.restore(ck, true); err != nil {
		// Leave no half-built cluster behind.
		_ = c.DeleteCluster(k.id.Seq)
		return nil, err
	}
	return k, nil
}

// DeleteCluster deletes a cluster and all its objects.
func (c *Capsule) DeleteCluster(seq uint32) error {
	c.mu.Lock()
	k, ok := c.clusters[seq]
	if ok {
		delete(c.clusters, seq)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d in capsule %s", ErrNoSuchCluster, seq, c.id)
	}
	k.delete()
	return nil
}

// removeCluster detaches a cluster that migrated away.
func (c *Capsule) removeCluster(seq uint32) {
	c.mu.Lock()
	delete(c.clusters, seq)
	c.mu.Unlock()
}

// deleteAll tears down every cluster (used when the capsule or node dies).
func (c *Capsule) deleteAll() {
	c.mu.Lock()
	c.deleted = true
	ks := make([]*Cluster, 0, len(c.clusters))
	for _, k := range c.clusters {
		ks = append(ks, k)
	}
	c.clusters = map[uint32]*Cluster{}
	c.mu.Unlock()
	for _, k := range ks {
		k.delete()
	}
}
