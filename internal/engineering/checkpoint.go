package engineering

import (
	"errors"
	"fmt"

	"repro/internal/naming"
	"repro/internal/values"
)

// ErrBadCheckpoint is wrapped by checkpoint decoding failures.
var ErrBadCheckpoint = errors.New("engineering: malformed checkpoint")

// InterfaceCheckpoint captures one interface's identity and type, enough
// to re-register it after reactivation or migration. The full reference is
// recorded (not just the local slot) because interface identity must
// survive any number of migrations: the identity minted at creation is the
// name clients hold forever.
type InterfaceCheckpoint struct {
	Seq  uint32              // local slot within the object
	Ref  naming.InterfaceRef // original identity (+ last-known location)
	Type values.Value        // encoded types.Interface
}

// ObjectCheckpoint captures one basic engineering object.
type ObjectCheckpoint struct {
	Seq        uint32
	Behavior   string       // behaviour-registry name
	Arg        values.Value // creation argument
	State      values.Value // captured state (when HasState)
	HasState   bool
	Interfaces []InterfaceCheckpoint
}

// ClusterCheckpoint captures a whole cluster: the unit of deactivation,
// reactivation, migration and failure recovery. Checkpoints serialise to
// values (ToValue/ClusterCheckpointFromValue) so they can be shipped over
// ordinary channels between nodes.
type ClusterCheckpoint struct {
	Origin         naming.ClusterID // identity at capture time
	NextObject     uint32
	AutoReactivate bool
	Objects        []ObjectCheckpoint
}

// ToValue encodes the checkpoint for transmission or storage.
func (c *ClusterCheckpoint) ToValue() values.Value {
	objs := make([]values.Value, len(c.Objects))
	for i, oc := range c.Objects {
		ifaces := make([]values.Value, len(oc.Interfaces))
		for j, ic := range oc.Interfaces {
			ifaces[j] = values.Record(
				values.F("seq", values.Uint(uint64(ic.Seq))),
				values.F("ref", ic.Ref.ToValue()),
				values.F("type", ic.Type),
			)
		}
		objs[i] = values.Record(
			values.F("seq", values.Uint(uint64(oc.Seq))),
			values.F("behavior", values.Str(oc.Behavior)),
			values.F("arg", oc.Arg),
			values.F("state", oc.State),
			values.F("has_state", values.Bool(oc.HasState)),
			values.F("interfaces", values.Seq(ifaces...)),
		)
	}
	return values.Record(
		values.F("node", values.Str(string(c.Origin.Capsule.Node))),
		values.F("capsule", values.Uint(uint64(c.Origin.Capsule.Seq))),
		values.F("cluster", values.Uint(uint64(c.Origin.Seq))),
		values.F("next_object", values.Uint(uint64(c.NextObject))),
		values.F("auto_reactivate", values.Bool(c.AutoReactivate)),
		values.F("objects", values.Seq(objs...)),
	)
}

// ClusterCheckpointFromValue decodes a checkpoint produced by ToValue.
func ClusterCheckpointFromValue(v values.Value) (*ClusterCheckpoint, error) {
	if v.Kind() != values.KindRecord {
		return nil, fmt.Errorf("%w: not a record", ErrBadCheckpoint)
	}
	str := func(name string) (string, error) {
		fv, ok := v.FieldByName(name)
		if !ok {
			return "", fmt.Errorf("%w: missing %s", ErrBadCheckpoint, name)
		}
		s, ok := fv.AsString()
		if !ok {
			return "", fmt.Errorf("%w: %s not a string", ErrBadCheckpoint, name)
		}
		return s, nil
	}
	u64 := func(name string) (uint64, error) {
		fv, ok := v.FieldByName(name)
		if !ok {
			return 0, fmt.Errorf("%w: missing %s", ErrBadCheckpoint, name)
		}
		u, ok := fv.AsUint()
		if !ok {
			return 0, fmt.Errorf("%w: %s not a uint", ErrBadCheckpoint, name)
		}
		return u, nil
	}
	node, err := str("node")
	if err != nil {
		return nil, err
	}
	capSeq, err := u64("capsule")
	if err != nil {
		return nil, err
	}
	cluSeq, err := u64("cluster")
	if err != nil {
		return nil, err
	}
	nextObj, err := u64("next_object")
	if err != nil {
		return nil, err
	}
	auto := false
	if av, ok := v.FieldByName("auto_reactivate"); ok {
		auto, _ = av.AsBool()
	}
	ck := &ClusterCheckpoint{
		Origin: naming.ClusterID{
			Capsule: naming.CapsuleID{Node: naming.NodeID(node), Seq: uint32(capSeq)},
			Seq:     uint32(cluSeq),
		},
		NextObject:     uint32(nextObj),
		AutoReactivate: auto,
	}
	objsV, ok := v.FieldByName("objects")
	if !ok || objsV.Kind() != values.KindSeq {
		return nil, fmt.Errorf("%w: missing objects", ErrBadCheckpoint)
	}
	for i := 0; i < objsV.Len(); i++ {
		ov := objsV.ElemAt(i)
		seqV, ok := ov.FieldByName("seq")
		if !ok {
			return nil, fmt.Errorf("%w: object %d missing seq", ErrBadCheckpoint, i)
		}
		seq, _ := seqV.AsUint()
		behV, ok := ov.FieldByName("behavior")
		if !ok {
			return nil, fmt.Errorf("%w: object %d missing behavior", ErrBadCheckpoint, i)
		}
		beh, _ := behV.AsString()
		arg, _ := ov.FieldByName("arg")
		state, _ := ov.FieldByName("state")
		hasStateV, _ := ov.FieldByName("has_state")
		hasState, _ := hasStateV.AsBool()
		oc := ObjectCheckpoint{
			Seq:      uint32(seq),
			Behavior: beh,
			Arg:      arg,
			State:    state,
			HasState: hasState,
		}
		ifacesV, ok := ov.FieldByName("interfaces")
		if !ok || ifacesV.Kind() != values.KindSeq {
			return nil, fmt.Errorf("%w: object %d missing interfaces", ErrBadCheckpoint, i)
		}
		for j := 0; j < ifacesV.Len(); j++ {
			iv := ifacesV.ElemAt(j)
			isV, ok := iv.FieldByName("seq")
			if !ok {
				return nil, fmt.Errorf("%w: object %d interface %d missing seq", ErrBadCheckpoint, i, j)
			}
			iseq, _ := isV.AsUint()
			rV, ok := iv.FieldByName("ref")
			if !ok {
				return nil, fmt.Errorf("%w: object %d interface %d missing ref", ErrBadCheckpoint, i, j)
			}
			ref, err := naming.RefFromValue(rV)
			if err != nil {
				return nil, fmt.Errorf("%w: object %d interface %d: %v", ErrBadCheckpoint, i, j, err)
			}
			tV, ok := iv.FieldByName("type")
			if !ok {
				return nil, fmt.Errorf("%w: object %d interface %d missing type", ErrBadCheckpoint, i, j)
			}
			oc.Interfaces = append(oc.Interfaces, InterfaceCheckpoint{
				Seq:  uint32(iseq),
				Ref:  ref,
				Type: tV,
			})
		}
		ck.Objects = append(ck.Objects, oc)
	}
	return ck, nil
}
