package engineering

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/types"
	"repro/internal/values"
)

// counterBehavior is a checkpointable behaviour: Inc bumps a counter, Get
// reads it. Its whole state is the counter.
type counterBehavior struct {
	mu sync.Mutex
	n  int64
}

func newCounter(arg values.Value) (Behavior, error) {
	c := &counterBehavior{}
	if i, ok := arg.AsInt(); ok {
		c.n = i
	}
	return c, nil
}

func (c *counterBehavior) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "Inc":
		d, _ := args[0].AsInt()
		c.n += d
		return "OK", []values.Value{values.Int(c.n)}, nil
	case "Get":
		return "OK", []values.Value{values.Int(c.n)}, nil
	}
	return "", nil, fmt.Errorf("unknown op %q", op)
}

func (c *counterBehavior) CheckpointState() (values.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return values.Int(c.n), nil
}

func (c *counterBehavior) RestoreState(state values.Value) error {
	n, ok := state.AsInt()
	if !ok {
		return errors.New("counter state must be an int")
	}
	c.mu.Lock()
	c.n = n
	c.mu.Unlock()
	return nil
}

// volatileBehavior has no checkpoint support.
type volatileBehavior struct{}

func newVolatile(values.Value) (Behavior, error) { return volatileBehavior{}, nil }

func (volatileBehavior) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "OK", nil, nil
}

func counterType() *types.Interface {
	return types.OpInterface("Counter",
		types.Op("Inc",
			types.Params(types.P("d", values.TInt())),
			types.Term("OK", types.P("n", values.TInt())),
		),
		types.Op("Get", nil, types.Term("OK", types.P("n", values.TInt()))),
	)
}

type fixture struct {
	net   *netsim.Network
	reloc *relocator.Relocator
}

func newFixture() *fixture {
	return &fixture{net: netsim.New(1), reloc: relocator.New()}
}

func (f *fixture) node(t *testing.T, name string, cfg NodeConfig) *Node {
	t.Helper()
	cfg.ID = naming.NodeID(name)
	cfg.Endpoint = naming.Endpoint("sim://" + name)
	cfg.Transport = f.net.From(name)
	cfg.Locations = f.reloc
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatalf("NewNode(%s): %v", name, err)
	}
	n.Behaviors().Register("counter", newCounter)
	n.Behaviors().Register("volatile", newVolatile)
	t.Cleanup(func() { n.Close() })
	return n
}

// deploy creates capsule/cluster/object with a Counter interface.
func deploy(t *testing.T, n *Node, opts ClusterOptions, start int64) (*Cluster, naming.InterfaceRef) {
	t.Helper()
	cap1, err := n.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	k, err := cap1.CreateCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	o, err := k.CreateObject("counter", values.Int(start))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := o.AddInterface(counterType())
	if err != nil {
		t.Fatal(err)
	}
	return k, ref
}

func (f *fixture) bind(t *testing.T, n *Node, ref naming.InterfaceRef) *channel.Binding {
	t.Helper()
	b, err := n.Bind(ref, channel.BindConfig{Locator: f.reloc, MaxRetries: 3, Type: counterType()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestNodeValidation(t *testing.T) {
	f := newFixture()
	if _, err := NewNode(NodeConfig{Endpoint: "sim://x", Transport: f.net}); err == nil {
		t.Error("missing ID should fail")
	}
	if _, err := NewNode(NodeConfig{ID: "x", Transport: f.net}); err == nil {
		t.Error("missing endpoint should fail")
	}
	if _, err := NewNode(NodeConfig{ID: "x", Endpoint: "sim://x"}); err == nil {
		t.Error("missing transport should fail")
	}
	n := f.node(t, "alpha", NodeConfig{})
	if n.ID() != "alpha" || n.Endpoint() != "sim://alpha" {
		t.Errorf("node identity: %s %s", n.ID(), n.Endpoint())
	}
	// The endpoint is taken: a second node there must fail.
	if _, err := NewNode(NodeConfig{ID: "alpha2", Endpoint: "sim://alpha", Transport: f.net}); err == nil {
		t.Error("duplicate endpoint should fail")
	}
}

func TestFigure5Structure(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})

	// nucleus supports many capsules
	c1, err := n.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	if c1.ID() == c2.ID() {
		t.Error("capsule ids must differ")
	}
	if got := len(n.Capsules()); got != 2 {
		t.Errorf("capsules = %d", got)
	}
	// capsule contains many clusters
	k1, err := c1.CreateCluster(ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := c1.CreateCluster(ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if k1.ID() == k2.ID() {
		t.Error("cluster ids must differ")
	}
	if got := len(c1.Clusters()); got != 2 {
		t.Errorf("clusters = %d", got)
	}
	// cluster contains many objects
	o1, err := k1.CreateObject("counter", values.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := k1.CreateObject("counter", values.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if o1.ID() == o2.ID() {
		t.Error("object ids must differ")
	}
	if got := len(k1.Objects()); got != 2 {
		t.Errorf("objects = %d", got)
	}
	// objects offer many interfaces
	r1, err := o1.AddInterface(counterType())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o1.AddInterface(counterType())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID == r2.ID {
		t.Error("interface ids must differ")
	}
	if got := len(o1.Interfaces()); got != 2 {
		t.Errorf("interfaces = %d", got)
	}
	// containment paths embed the hierarchy
	if r1.ID.Object.Cluster.Capsule.Node != "alpha" {
		t.Errorf("interface id path = %s", r1.ID)
	}
	// lookups
	if _, err := n.Capsule(c1.ID().Seq); err != nil {
		t.Errorf("Capsule lookup: %v", err)
	}
	if _, err := n.Capsule(99); !errors.Is(err, ErrNoSuchCapsule) {
		t.Errorf("missing capsule = %v", err)
	}
	if _, err := c1.Cluster(k1.ID().Seq); err != nil {
		t.Errorf("Cluster lookup: %v", err)
	}
	if _, err := c1.Cluster(99); !errors.Is(err, ErrNoSuchCluster) {
		t.Errorf("missing cluster = %v", err)
	}
	if _, err := k1.Object(o1.ID().Seq); err != nil {
		t.Errorf("Object lookup: %v", err)
	}
	if _, err := k1.Object(99); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("missing object = %v", err)
	}
}

func TestStructuringConstraints(t *testing.T) {
	// "An implementation of an ODP system can choose to constrain the
	// structuring: only one object per cluster, only one cluster per
	// capsule."
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{MaxClustersPerCapsule: 1, MaxObjectsPerCluster: 1})
	c, err := n.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	k, err := c.CreateCluster(ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateCluster(ClusterOptions{}); !errors.Is(err, ErrStructuringLimit) {
		t.Errorf("second cluster = %v", err)
	}
	if _, err := k.CreateObject("counter", values.Int(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateObject("counter", values.Int(0)); !errors.Is(err, ErrStructuringLimit) {
		t.Errorf("second object = %v", err)
	}
}

func TestInvokeThroughNode(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	_, ref := deploy(t, n, ClusterOptions{}, 10)
	b := f.bind(t, n, ref)
	term, res, err := b.Invoke(context.Background(), "Inc", []values.Value{values.Int(5)})
	if err != nil || term != "OK" {
		t.Fatalf("Inc = %q, %v, %v", term, res, err)
	}
	if v, _ := res[0].AsInt(); v != 15 {
		t.Errorf("counter = %d, want 15", v)
	}
}

func TestUnknownBehavior(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	c, _ := n.CreateCapsule()
	k, _ := c.CreateCluster(ClusterOptions{})
	if _, err := k.CreateObject("ghost", values.Null()); !errors.Is(err, ErrNoSuchBehavior) {
		t.Errorf("err = %v", err)
	}
}

func TestDeactivateReactivate(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	k, ref := deploy(t, n, ClusterOptions{}, 0)
	b := f.bind(t, n, ref)
	ctx := context.Background()
	if _, _, err := b.Invoke(ctx, "Inc", []values.Value{values.Int(7)}); err != nil {
		t.Fatal(err)
	}

	if err := k.Deactivate(); err != nil {
		t.Fatal(err)
	}
	if k.Active() {
		t.Error("cluster should be inactive")
	}
	if err := k.Deactivate(); !errors.Is(err, ErrDeactivated) {
		t.Errorf("double deactivate = %v", err)
	}
	// Without AutoReactivate, calls fail with ERR_UNAVAILABLE.
	if _, _, err := b.Invoke(ctx, "Get", nil); !channel.IsRemote(err, channel.CodeUnavailable) {
		t.Errorf("call while deactivated = %v", err)
	}

	if err := k.Reactivate(); err != nil {
		t.Fatal(err)
	}
	if err := k.Reactivate(); !errors.Is(err, ErrActive) {
		t.Errorf("double reactivate = %v", err)
	}
	_, res, err := b.Invoke(ctx, "Get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res[0].AsInt(); v != 7 {
		t.Errorf("state after reactivation = %d, want 7", v)
	}
}

func TestPersistenceTransparencyAutoReactivate(t *testing.T) {
	// Section 9: persistence transparency masks deactivation and
	// reactivation — the client just calls, the cluster wakes up.
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	k, ref := deploy(t, n, ClusterOptions{AutoReactivate: true}, 0)
	b := f.bind(t, n, ref)
	ctx := context.Background()
	if _, _, err := b.Invoke(ctx, "Inc", []values.Value{values.Int(3)}); err != nil {
		t.Fatal(err)
	}
	if err := k.Deactivate(); err != nil {
		t.Fatal(err)
	}
	_, res, err := b.Invoke(ctx, "Get", nil)
	if err != nil {
		t.Fatalf("call should have reactivated the cluster: %v", err)
	}
	if v, _ := res[0].AsInt(); v != 3 {
		t.Errorf("state = %d, want 3", v)
	}
	if !k.Active() {
		t.Error("cluster should be active again")
	}
}

func TestMigrationPreservesStateAndBindings(t *testing.T) {
	// The headline engineering scenario: a cluster migrates between nodes
	// while a client holds a live binding. Interface identity is preserved,
	// the relocator learns the new location, the binder re-resolves.
	f := newFixture()
	src := f.node(t, "alpha", NodeConfig{})
	dst := f.node(t, "beta", NodeConfig{})
	k, ref := deploy(t, src, ClusterOptions{}, 0)
	b := f.bind(t, src, ref)
	ctx := context.Background()
	if _, _, err := b.Invoke(ctx, "Inc", []values.Value{values.Int(41)}); err != nil {
		t.Fatal(err)
	}

	dstCapsule, err := dst.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	nk, err := k.MigrateTo(dstCapsule)
	if err != nil {
		t.Fatalf("MigrateTo: %v", err)
	}
	if nk.ID().Capsule.Node != "beta" {
		t.Errorf("migrated cluster lives at %s", nk.ID())
	}
	// The old cluster is gone from the source capsule.
	srcCapsules := src.Capsules()
	if len(srcCapsules) != 1 || len(srcCapsules[0].Clusters()) != 0 {
		t.Error("source capsule should be empty after migration")
	}
	// The relocator points at beta now.
	moved, err := f.reloc.Lookup(ref.ID)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Endpoint != "sim://beta" || moved.Epoch != 1 {
		t.Errorf("relocated ref = %+v", moved)
	}
	// The live binding keeps working and the state moved too.
	term, res, err := b.Invoke(ctx, "Inc", []values.Value{values.Int(1)})
	if err != nil || term != "OK" {
		t.Fatalf("post-migration Inc = %q, %v, %v", term, res, err)
	}
	if v, _ := res[0].AsInt(); v != 42 {
		t.Errorf("counter after migration = %d, want 42", v)
	}
	if st := b.Stats(); st.Relocations == 0 {
		t.Errorf("binding stats should show a relocation: %+v", st)
	}
}

func TestMigrationRequiresBehaviorAtDestination(t *testing.T) {
	f := newFixture()
	src := f.node(t, "alpha", NodeConfig{})
	dst := f.node(t, "beta", NodeConfig{})
	// Strip the destination registry.
	dst.Behaviors().Register("counter", nil) // overwrite with nil factory is invalid; use fresh node instead
	dst2, err := NewNode(NodeConfig{
		ID: "gamma", Endpoint: "sim://gamma", Transport: f.net.From("gamma"), Locations: f.reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst2.Close()
	k, _ := deploy(t, src, ClusterOptions{}, 0)
	cap2, err := dst2.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.MigrateTo(cap2); !errors.Is(err, ErrNoSuchBehavior) {
		t.Errorf("migration without behaviour = %v", err)
	}
	_ = dst
}

func TestCheckpointValueRoundTrip(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	k, _ := deploy(t, n, ClusterOptions{AutoReactivate: true}, 9)
	ck, err := k.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	v := ck.ToValue()
	got, err := ClusterCheckpointFromValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != ck.Origin || got.NextObject != ck.NextObject || got.AutoReactivate != ck.AutoReactivate {
		t.Errorf("header mismatch: %+v vs %+v", got, ck)
	}
	if len(got.Objects) != len(ck.Objects) {
		t.Fatalf("objects = %d, want %d", len(got.Objects), len(ck.Objects))
	}
	o0, w0 := got.Objects[0], ck.Objects[0]
	if o0.Behavior != w0.Behavior || o0.HasState != w0.HasState || !o0.State.Equal(w0.State) {
		t.Errorf("object mismatch: %+v vs %+v", o0, w0)
	}
	if len(o0.Interfaces) != 1 || o0.Interfaces[0].Ref != w0.Interfaces[0].Ref {
		t.Errorf("interfaces mismatch")
	}
}

func TestCheckpointFromValueErrors(t *testing.T) {
	bad := []values.Value{
		values.Int(1),
		values.Record(),
		values.Record(values.F("node", values.Str("a"))),
	}
	for i, v := range bad {
		if _, err := ClusterCheckpointFromValue(v); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestInstantiateFromShippedCheckpoint(t *testing.T) {
	// Checkpoint on alpha, serialise to a value (as if sent over a
	// channel), instantiate on beta.
	f := newFixture()
	src := f.node(t, "alpha", NodeConfig{})
	dst := f.node(t, "beta", NodeConfig{})
	k, ref := deploy(t, src, ClusterOptions{}, 123)
	ck, err := k.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := ClusterCheckpointFromValue(ck.ToValue())
	if err != nil {
		t.Fatal(err)
	}
	// Tear down the source (simulating a node failure after checkpoint).
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	capB, err := dst.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := capB.Instantiate(shipped, ClusterOptions{}); err != nil {
		t.Fatal(err)
	}
	// The same interface identity now answers at beta.
	b, err := dst.Bind(ref, channel.BindConfig{Locator: f.reloc, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_, res, err := b.Invoke(context.Background(), "Get", nil)
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if v, _ := res[0].AsInt(); v != 123 {
		t.Errorf("recovered state = %d, want 123", v)
	}
}

func TestVolatileObjectsCheckpointWithoutState(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	c, _ := n.CreateCapsule()
	k, _ := c.CreateCluster(ClusterOptions{})
	if _, err := k.CreateObject("volatile", values.Null()); err != nil {
		t.Fatal(err)
	}
	ck, err := k.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Objects[0].HasState {
		t.Error("volatile object should have no state")
	}
	// Deactivate/reactivate re-creates it from the factory.
	if err := k.Deactivate(); err != nil {
		t.Fatal(err)
	}
	if err := k.Reactivate(); err != nil {
		t.Fatal(err)
	}
	o, err := k.Object(0)
	if err != nil || o.Behavior() == nil {
		t.Errorf("volatile object not re-created: %v", err)
	}
}

func TestDeleteObjectAndCluster(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	k, ref := deploy(t, n, ClusterOptions{}, 0)
	b := f.bind(t, n, ref)
	ctx := context.Background()
	if _, _, err := b.Invoke(ctx, "Get", nil); err != nil {
		t.Fatal(err)
	}
	if err := k.DeleteObject(0); err != nil {
		t.Fatal(err)
	}
	if err := k.DeleteObject(0); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("double delete = %v", err)
	}
	// The interface is gone from server and relocator.
	if _, _, err := b.Invoke(ctx, "Get", nil); err == nil {
		t.Error("call to deleted object should fail")
	}
	if _, err := f.reloc.Lookup(ref.ID); !errors.Is(err, relocator.ErrUnknown) {
		t.Errorf("relocator entry should be removed: %v", err)
	}
	// Delete the cluster and capsule too.
	c, _ := n.Capsule(0)
	if err := c.DeleteCluster(k.ID().Seq); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteCluster(k.ID().Seq); !errors.Is(err, ErrNoSuchCluster) {
		t.Errorf("double cluster delete = %v", err)
	}
	if err := n.DeleteCapsule(0); err != nil {
		t.Fatal(err)
	}
	if err := n.DeleteCapsule(0); !errors.Is(err, ErrNoSuchCapsule) {
		t.Errorf("double capsule delete = %v", err)
	}
}

func TestCreateObjectOnDeactivatedCluster(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	k, _ := deploy(t, n, ClusterOptions{}, 0)
	if err := k.Deactivate(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateObject("counter", values.Int(0)); !errors.Is(err, ErrDeactivated) {
		t.Errorf("create on deactivated = %v", err)
	}
}

func TestNodeCloseIsIdempotentAndTearsDown(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	_, ref := deploy(t, n, ClusterOptions{}, 0)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := n.CreateCapsule(); !errors.Is(err, ErrNodeClosed) {
		t.Errorf("create after close = %v", err)
	}
	if _, err := f.reloc.Lookup(ref.ID); !errors.Is(err, relocator.ErrUnknown) {
		t.Errorf("locations should be cleaned up: %v", err)
	}
}
