// Package engineering implements the RM-ODP engineering viewpoint
// structures of Figure 5 of the tutorial:
//
//	node ⊇ nucleus ⊇ capsules ⊇ clusters ⊇ basic engineering objects
//
// together with the management functions of Section 8.1 — node management
// (capsule and channel creation, provided by the nucleus), capsule
// management (cluster instantiation, checkpointing, deactivation), cluster
// management (checkpointing, deactivation, migration) and object
// management (checkpointing, deletion).
//
// The structuring rules of Section 6.2 are enforced:
//
//   - a node has a nucleus (by construction: NewNode creates it),
//   - a nucleus can support many capsules,
//   - a capsule can contain many clusters,
//   - a cluster can contain many basic engineering objects,
//   - a basic engineering object can contain many activities (package core),
//   - all inter-cluster communication is via channels (object interfaces
//     are only reachable through naming.InterfaceRef values bound with
//     package channel — there is no way to obtain a direct reference to
//     another cluster's object).
//
// An implementation may constrain the structuring ("only one object per
// cluster, only one cluster per capsule"); the Max* fields of NodeConfig
// model exactly that.
package engineering

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/types"
)

// Engineering error sentinels.
var (
	ErrNodeClosed        = errors.New("engineering: node closed")
	ErrNoSuchCapsule     = errors.New("engineering: no such capsule")
	ErrNoSuchCluster     = errors.New("engineering: no such cluster")
	ErrNoSuchObject      = errors.New("engineering: no such object")
	ErrNoSuchBehavior    = errors.New("engineering: no such behaviour in registry")
	ErrDeactivated       = errors.New("engineering: cluster is deactivated")
	ErrActive            = errors.New("engineering: cluster is active")
	ErrStructuringLimit  = errors.New("engineering: structuring constraint violated")
	ErrNotCheckpointable = errors.New("engineering: behaviour does not support checkpointing")
)

// LocationRegistry is the node's window onto the relocator function;
// *relocator.Relocator implements it. A nil registry disables location
// registration (and with it relocation transparency for this node's
// interfaces).
type LocationRegistry interface {
	Register(ref naming.InterfaceRef) error
	Move(id naming.InterfaceID, to naming.Endpoint) (naming.InterfaceRef, error)
	Remove(id naming.InterfaceID)
}

// NodeConfig configures a node.
type NodeConfig struct {
	// ID names the node. Required.
	ID naming.NodeID
	// Endpoint is where the node's channel endpoint listens, e.g.
	// "sim://alpha" or "tcp://127.0.0.1:0". Required.
	Endpoint naming.Endpoint
	// Transport provides connectivity. Required.
	Transport netsim.Transport
	// Locations, when set, receives a registration for every interface
	// created at this node and a Move for every migration.
	Locations LocationRegistry
	// Server configures the node's channel endpoint (stages, replay guard).
	Server channel.ServerConfig
	// MaxClustersPerCapsule and MaxObjectsPerCluster, when positive,
	// constrain the structuring as Section 6.2 permits.
	MaxClustersPerCapsule int
	MaxObjectsPerCluster  int
	// Seed makes interface nonces reproducible in tests. Zero means the
	// node derives a seed from its ID.
	Seed int64
}

// Node is a computer system in the engineering viewpoint: a nucleus plus
// the capsules it supports, sharing one channel endpoint.
type Node struct {
	cfg      NodeConfig
	server   *channel.Server
	endpoint naming.Endpoint
	registry *BehaviorRegistry
	// sessions multiplexes every outbound binding the nucleus creates
	// (Node.Bind) over one shared transport session per peer node.
	sessions *channel.SessionManager

	mu          sync.Mutex
	rng         *rand.Rand
	capsules    map[uint32]*Capsule
	nextCapsule uint32
	closed      bool
}

// NewNode starts a node: it creates the nucleus, opens the channel
// endpoint and begins serving.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("engineering: NodeConfig.ID is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("engineering: NodeConfig.Transport is required")
	}
	if cfg.Endpoint == "" {
		return nil, errors.New("engineering: NodeConfig.Endpoint is required")
	}
	l, err := cfg.Transport.Listen(cfg.Endpoint)
	if err != nil {
		return nil, fmt.Errorf("engineering: node %s: %w", cfg.ID, err)
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.ID {
			seed = seed*31 + int64(c)
		}
	}
	n := &Node{
		cfg:      cfg,
		server:   channel.NewServer(l, cfg.Server),
		endpoint: l.Endpoint(), // may differ from cfg.Endpoint (tcp port 0)
		registry: NewBehaviorRegistry(),
		sessions: channel.NewSessionManager(cfg.Transport),
		rng:      rand.New(rand.NewSource(seed)),
		capsules: make(map[uint32]*Capsule),
	}
	n.server.Start()
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() naming.NodeID { return n.cfg.ID }

// Endpoint returns the node's bound channel endpoint.
func (n *Node) Endpoint() naming.Endpoint { return n.endpoint }

// Behaviors returns the node's behaviour registry, used to instantiate
// objects (and to re-instantiate them after migration or reactivation).
func (n *Node) Behaviors() *BehaviorRegistry { return n.registry }

// Server exposes the node's channel endpoint, mainly so infrastructure
// stages can be inspected in tests.
func (n *Node) Server() *channel.Server { return n.server }

// Close shuts down the node: all capsules are deleted and the channel
// endpoint closes.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	caps := make([]*Capsule, 0, len(n.capsules))
	for _, c := range n.capsules {
		caps = append(caps, c)
	}
	n.capsules = map[uint32]*Capsule{}
	n.mu.Unlock()
	for _, c := range caps {
		c.deleteAll()
	}
	// The session manager is left open: bindings created through this
	// nucleus may outlive it (failing over to recovered clusters on other
	// nodes), and their sessions are reclaimed as each binding closes.
	return n.server.Close()
}

// CreateCapsule is the node-management function provided by the nucleus:
// it creates a capsule (with its capsule manager).
func (n *Node) CreateCapsule() (*Capsule, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNodeClosed
	}
	seq := n.nextCapsule
	n.nextCapsule++
	c := &Capsule{
		node:     n,
		id:       naming.CapsuleID{Node: n.cfg.ID, Seq: seq},
		clusters: make(map[uint32]*Cluster),
	}
	n.capsules[seq] = c
	return c, nil
}

// Capsule returns the capsule with the given sequence number.
func (n *Node) Capsule(seq uint32) (*Capsule, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.capsules[seq]
	if !ok {
		return nil, fmt.Errorf("%w: %d at node %s", ErrNoSuchCapsule, seq, n.cfg.ID)
	}
	return c, nil
}

// Capsules returns the node's capsules ordered by sequence number.
func (n *Node) Capsules() []*Capsule {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Capsule, 0, len(n.capsules))
	for _, c := range n.capsules {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Seq < out[j].id.Seq })
	return out
}

// DeleteCapsule removes a capsule and everything in it.
func (n *Node) DeleteCapsule(seq uint32) error {
	n.mu.Lock()
	c, ok := n.capsules[seq]
	if ok {
		delete(n.capsules, seq)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d at node %s", ErrNoSuchCapsule, seq, n.cfg.ID)
	}
	c.deleteAll()
	return nil
}

// Bind is the nucleus's channel-creation function: it creates the client
// end of a channel to ref using this node's transport. Additional
// configuration (stages, locator, retries) comes from cfg; its Transport
// field is overridden with the node's own, and unless cfg supplies a
// session manager the binding joins the node's shared one, so all of the
// node's outbound channels multiplex over one session per peer.
func (n *Node) Bind(ref naming.InterfaceRef, cfg channel.BindConfig) (*channel.Binding, error) {
	cfg.Transport = n.cfg.Transport
	if cfg.Sessions == nil {
		cfg.Sessions = n.sessions
	}
	return channel.Bind(ref, cfg)
}

// RegisterServant installs a standalone servant on the node's channel
// endpoint, outside the capsule/cluster machinery: an infrastructure-side
// interface (e.g. a stream consumer end) that needs a routable reference
// but no object lifecycle. The reference is minted under a synthetic
// object id (capsule/cluster/object all zero — real objects never collide
// because the nonce disambiguates) and registered with the location
// registry so relocation-aware clients can find it.
func (n *Node) RegisterServant(it *types.Interface, h channel.Handler) (naming.InterfaceRef, error) {
	if it != nil {
		if err := it.Validate(); err != nil {
			return naming.InterfaceRef{}, err
		}
	}
	id := naming.InterfaceID{
		Object: naming.ObjectID{Cluster: naming.ClusterID{Capsule: naming.CapsuleID{Node: n.cfg.ID}}},
		Nonce:  n.nonce(),
	}
	var typeName string
	if it != nil {
		typeName = it.Name
	}
	ref := naming.InterfaceRef{ID: id, TypeName: typeName, Endpoint: n.endpoint}
	if err := n.server.Register(id, it, h); err != nil {
		return naming.InterfaceRef{}, err
	}
	if err := n.registerLocation(ref); err != nil {
		n.server.Unregister(id)
		return naming.InterfaceRef{}, err
	}
	return ref, nil
}

// nonce draws a fresh interface nonce.
func (n *Node) nonce() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Uint64()
}

// registerLocation records a new interface location, if a registry is
// configured.
func (n *Node) registerLocation(ref naming.InterfaceRef) error {
	if n.cfg.Locations == nil {
		return nil
	}
	return n.cfg.Locations.Register(ref)
}

// moveLocation relocates an interface to this node in the registry,
// falling back to a fresh registration when the old entry is gone (e.g.
// the source node died after taking the checkpoint we restored from).
func (n *Node) moveLocation(ref naming.InterfaceRef) (naming.InterfaceRef, error) {
	if n.cfg.Locations == nil {
		return ref, nil
	}
	moved, err := n.cfg.Locations.Move(ref.ID, n.endpoint)
	if err == nil {
		return moved, nil
	}
	ref.Endpoint = n.endpoint
	if regErr := n.cfg.Locations.Register(ref); regErr != nil {
		return ref, regErr
	}
	return ref, nil
}

func (n *Node) removeLocation(id naming.InterfaceID) {
	if n.cfg.Locations != nil {
		n.cfg.Locations.Remove(id)
	}
}
