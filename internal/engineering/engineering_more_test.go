package engineering

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/types"
	"repro/internal/values"
)

// mediaBehavior accepts flows and signals.
type mediaBehavior struct {
	mu      sync.Mutex
	flows   int
	signals int
}

func newMedia(values.Value) (Behavior, error) { return &mediaBehavior{}, nil }

func (m *mediaBehavior) Invoke(context.Context, string, []values.Value) (string, []values.Value, error) {
	return "OK", nil, nil
}

func (m *mediaBehavior) Flow(string, values.Value) {
	m.mu.Lock()
	m.flows++
	m.mu.Unlock()
}

func (m *mediaBehavior) Signal(string, []values.Value) {
	m.mu.Lock()
	m.signals++
	m.mu.Unlock()
}

func TestFlowsAndSignalsThroughObjects(t *testing.T) {
	// Flows and signals route through the engineering object handler to
	// behaviours that accept them, including across deactivation with
	// auto-reactivation.
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	n.Behaviors().Register("media", newMedia)
	capsule, err := n.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := capsule.CreateCluster(ClusterOptions{AutoReactivate: true})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cluster.CreateObject("media", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	st := types.StreamInterface("Media", types.FlowOf("video", types.Consumer, values.TBytes()))
	ref, err := obj.AddInterface(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Bind(ref, channel.BindConfig{Locator: f.reloc, Type: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	ctx := context.Background()
	if err := b.Flow(ctx, "video", values.BytesVal([]byte{1})); err != nil {
		t.Fatal(err)
	}
	// Signals travel through an untyped binding (the stream type declares
	// no signals, and a typed binding enforces that).
	ub, err := n.Bind(ref, channel.BindConfig{Locator: f.reloc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ub.Close() })
	if err := ub.Signal(ctx, "tick", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m := obj.Behavior().(*mediaBehavior)
		m.mu.Lock()
		got := m.flows == 1 && m.signals == 1
		m.mu.Unlock()
		if got {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m := obj.Behavior().(*mediaBehavior)
	m.mu.Lock()
	flows, signals := m.flows, m.signals
	m.mu.Unlock()
	if flows != 1 || signals != 1 {
		t.Fatalf("flows=%d signals=%d", flows, signals)
	}

	// Deactivate: the next flow reactivates the cluster on demand.
	if err := cluster.Deactivate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flow(ctx, "video", values.BytesVal([]byte{2})); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cluster.Active() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !cluster.Active() {
		t.Fatal("flow did not reactivate the cluster")
	}
}

func TestCapsuleAccessorsAndCheckpoint(t *testing.T) {
	f := newFixture()
	n := f.node(t, "alpha", NodeConfig{})
	capsule, err := n.CreateCapsule()
	if err != nil {
		t.Fatal(err)
	}
	if capsule.Node() != n {
		t.Error("capsule.Node mismatch")
	}
	for i := 0; i < 2; i++ {
		k, err := capsule.CreateCluster(ClusterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.CreateObject("counter", values.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	cks, err := capsule.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 {
		t.Fatalf("capsule checkpoint = %d clusters", len(cks))
	}
	if !n.Behaviors().Known("counter") || n.Behaviors().Known("ghost") {
		t.Error("Known()")
	}
	if n.Server() == nil {
		t.Error("Server() nil")
	}
}
