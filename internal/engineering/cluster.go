package engineering

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/channel"
	"repro/internal/naming"
	"repro/internal/types"
	"repro/internal/values"
)

type clusterState int

const (
	clusterActive clusterState = iota
	clusterDeactivated
	clusterGone // deleted or migrated away
)

// Cluster is a set of related basic engineering objects that are always
// co-located; it is the unit of checkpointing, deactivation and migration.
// The Cluster type is also the cluster manager's interface (Section 8.1).
type Cluster struct {
	capsule *Capsule
	id      naming.ClusterID
	opts    ClusterOptions

	mu         sync.Mutex
	state      clusterState
	objects    map[uint32]*Object
	nextObject uint32
	// lastCheckpoint holds the state captured at deactivation, consumed by
	// Reactivate (possibly triggered on demand by an incoming call).
	lastCheckpoint *ClusterCheckpoint
}

// ID returns the cluster identifier.
func (k *Cluster) ID() naming.ClusterID { return k.id }

// Active reports whether the cluster is active (instantiated and callable).
func (k *Cluster) Active() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.state == clusterActive
}

// CreateObject instantiates a basic engineering object inside the cluster
// from a registered behaviour. The behaviour name and arg are recorded so
// checkpoints can re-create the object elsewhere.
func (k *Cluster) CreateObject(behavior string, arg values.Value) (*Object, error) {
	node := k.capsule.node
	b, err := node.registry.New(behavior, arg)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.state != clusterActive {
		return nil, fmt.Errorf("%w: %s", ErrDeactivated, k.id)
	}
	if max := node.cfg.MaxObjectsPerCluster; max > 0 && len(k.objects) >= max {
		return nil, fmt.Errorf("%w: cluster %s allows %d objects", ErrStructuringLimit, k.id, max)
	}
	seq := k.nextObject
	k.nextObject++
	o := &Object{
		cluster:    k,
		id:         naming.ObjectID{Cluster: k.id, Seq: seq},
		behavior:   b,
		factory:    behavior,
		factoryArg: arg,
		interfaces: make(map[uint32]*objectInterface),
	}
	k.objects[seq] = o
	return o, nil
}

// Object returns the object with the given sequence number.
func (k *Cluster) Object(seq uint32) (*Object, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	o, ok := k.objects[seq]
	if !ok {
		return nil, fmt.Errorf("%w: %d in cluster %s", ErrNoSuchObject, seq, k.id)
	}
	return o, nil
}

// Objects returns the cluster's objects ordered by sequence number.
func (k *Cluster) Objects() []*Object {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Object, 0, len(k.objects))
	for _, o := range k.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id.Seq < out[j].id.Seq })
	return out
}

// Checkpoint captures the cluster: for every object, its behaviour name,
// creation argument, state (when the behaviour is Checkpointable) and
// interface identities. The cluster keeps running.
func (k *Cluster) Checkpoint() (*ClusterCheckpoint, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.checkpointLocked()
}

func (k *Cluster) checkpointLocked() (*ClusterCheckpoint, error) {
	ck := &ClusterCheckpoint{
		Origin:         k.id,
		NextObject:     k.nextObject,
		AutoReactivate: k.opts.AutoReactivate,
	}
	for _, seq := range sortedKeys(k.objects) {
		o := k.objects[seq]
		oc, err := o.checkpoint()
		if err != nil {
			return nil, err
		}
		ck.Objects = append(ck.Objects, oc)
	}
	return ck, nil
}

// Deactivate checkpoints the cluster and releases its behaviours. The
// node keeps serving the interface identities: incoming calls either
// trigger reactivation (AutoReactivate) or fail with
// channel.CodeUnavailable until Reactivate is called.
func (k *Cluster) Deactivate() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.state != clusterActive {
		return fmt.Errorf("%w: %s", ErrDeactivated, k.id)
	}
	ck, err := k.checkpointLocked()
	if err != nil {
		return err
	}
	k.lastCheckpoint = ck
	k.state = clusterDeactivated
	for _, o := range k.objects {
		o.mu.Lock()
		o.behavior = nil // release application state
		o.mu.Unlock()
	}
	return nil
}

// Reactivate restores the cluster from its deactivation checkpoint.
func (k *Cluster) Reactivate() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.reactivateLocked()
}

func (k *Cluster) reactivateLocked() error {
	if k.state == clusterActive {
		return fmt.Errorf("%w: %s", ErrActive, k.id)
	}
	if k.state == clusterGone || k.lastCheckpoint == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchCluster, k.id)
	}
	registry := k.capsule.node.registry
	for _, oc := range k.lastCheckpoint.Objects {
		o, ok := k.objects[oc.Seq]
		if !ok {
			return fmt.Errorf("%w: object %d vanished from cluster %s", ErrNoSuchObject, oc.Seq, k.id)
		}
		b, err := registry.New(oc.Behavior, oc.Arg)
		if err != nil {
			return err
		}
		if oc.HasState {
			cb, ok := b.(Checkpointable)
			if !ok {
				return fmt.Errorf("%w: behaviour %q", ErrNotCheckpointable, oc.Behavior)
			}
			if err := cb.RestoreState(oc.State); err != nil {
				return fmt.Errorf("engineering: restoring object %d: %w", oc.Seq, err)
			}
		}
		o.mu.Lock()
		o.behavior = b
		o.mu.Unlock()
	}
	k.state = clusterActive
	k.lastCheckpoint = nil
	return nil
}

// MigrateTo moves the cluster to another capsule (possibly on another
// node): checkpoint, deregister here, re-instantiate there, update the
// location registry. Interface identities are preserved, so bindings held
// by clients remain valid — their binders re-resolve through the
// relocator on the next call (relocation transparency) or fail over if
// configured. Returns the new cluster.
func (k *Cluster) MigrateTo(dst *Capsule) (*Cluster, error) {
	k.mu.Lock()
	if k.state == clusterGone {
		k.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchCluster, k.id)
	}
	ck, err := k.checkpointLocked()
	if err != nil {
		k.mu.Unlock()
		return nil, err
	}
	opts := k.opts
	// Stop serving here: unregister the interfaces so stale calls get
	// CodeNoSuchInterface, which is what triggers client-side relocation.
	srcServer := k.capsule.node.server
	for _, o := range k.objects {
		o.mu.Lock()
		for _, oi := range o.interfaces {
			srcServer.Unregister(oi.ref.ID)
		}
		o.mu.Unlock()
	}
	k.state = clusterGone
	k.mu.Unlock()
	k.capsule.removeCluster(k.id.Seq)

	nk, err := dst.Instantiate(ck, opts)
	if err != nil {
		return nil, fmt.Errorf("engineering: migration of %s failed at destination: %w", k.id, err)
	}
	return nk, nil
}

// delete tears the cluster down permanently.
func (k *Cluster) delete() {
	k.mu.Lock()
	objs := make([]*Object, 0, len(k.objects))
	for _, o := range k.objects {
		objs = append(objs, o)
	}
	k.objects = map[uint32]*Object{}
	k.state = clusterGone
	k.mu.Unlock()
	for _, o := range objs {
		o.remove()
	}
}

// DeleteObject removes one object (the object-management deletion
// function).
func (k *Cluster) DeleteObject(seq uint32) error {
	k.mu.Lock()
	o, ok := k.objects[seq]
	if ok {
		delete(k.objects, seq)
	}
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d in cluster %s", ErrNoSuchObject, seq, k.id)
	}
	o.remove()
	return nil
}

// restore populates a fresh cluster from a checkpoint. When move is true
// the interface identities from the checkpoint are preserved and their
// locations moved to this node.
func (k *Cluster) restore(ck *ClusterCheckpoint, move bool) error {
	node := k.capsule.node
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.state != clusterActive {
		return fmt.Errorf("%w: %s", ErrDeactivated, k.id)
	}
	k.nextObject = ck.NextObject
	k.opts.AutoReactivate = ck.AutoReactivate
	for _, oc := range ck.Objects {
		b, err := node.registry.New(oc.Behavior, oc.Arg)
		if err != nil {
			return err
		}
		if oc.HasState {
			cb, ok := b.(Checkpointable)
			if !ok {
				return fmt.Errorf("%w: behaviour %q", ErrNotCheckpointable, oc.Behavior)
			}
			if err := cb.RestoreState(oc.State); err != nil {
				return fmt.Errorf("engineering: restoring object %d: %w", oc.Seq, err)
			}
		}
		o := &Object{
			cluster:    k,
			id:         naming.ObjectID{Cluster: k.id, Seq: oc.Seq},
			behavior:   b,
			factory:    oc.Behavior,
			factoryArg: oc.Arg,
			interfaces: make(map[uint32]*objectInterface),
		}
		for _, ic := range oc.Interfaces {
			it, err := types.InterfaceFromValue(ic.Type)
			if err != nil {
				return fmt.Errorf("engineering: object %d interface %d: %w", oc.Seq, ic.Seq, err)
			}
			var ifID naming.InterfaceID
			if move {
				// Identity is preserved verbatim across any number of
				// moves: clients hold this name forever.
				ifID = ic.Ref.ID
			} else {
				ifID = naming.InterfaceID{Object: o.id, Seq: ic.Seq, Nonce: node.nonce()}
			}
			oi := &objectInterface{
				typ: it,
				ref: naming.InterfaceRef{
					ID:       ifID,
					TypeName: it.Name,
					Endpoint: node.endpoint,
				},
			}
			if err := node.server.Register(ifID, it, &objectHandler{object: o}); err != nil {
				return err
			}
			if move {
				moved, err := node.moveLocation(oi.ref)
				if err != nil {
					return err
				}
				oi.ref = moved
			} else if err := node.registerLocation(oi.ref); err != nil {
				return err
			}
			o.interfaces[ic.Seq] = oi
			if ic.Seq >= o.nextInterface {
				o.nextInterface = ic.Seq + 1
			}
		}
		k.objects[oc.Seq] = o
	}
	return nil
}

// ---------------------------------------------------------------------------
// Object: basic engineering object

type objectInterface struct {
	typ *types.Interface
	ref naming.InterfaceRef
}

// Object is a basic engineering object: a behaviour plus the interfaces it
// offers. Its methods are the object-management functions.
type Object struct {
	cluster    *Cluster
	id         naming.ObjectID
	factory    string
	factoryArg values.Value

	mu            sync.Mutex
	behavior      Behavior
	interfaces    map[uint32]*objectInterface
	nextInterface uint32
}

// ID returns the object identifier.
func (o *Object) ID() naming.ObjectID { return o.id }

// AddInterface creates a new interface of the given type on the object,
// registers it with the node's channel endpoint and the location registry,
// and returns its reference.
func (o *Object) AddInterface(it *types.Interface) (naming.InterfaceRef, error) {
	if err := it.Validate(); err != nil {
		return naming.InterfaceRef{}, err
	}
	node := o.cluster.capsule.node
	o.mu.Lock()
	seq := o.nextInterface
	o.nextInterface++
	id := naming.InterfaceID{Object: o.id, Seq: seq, Nonce: node.nonce()}
	ref := naming.InterfaceRef{ID: id, TypeName: it.Name, Endpoint: node.endpoint}
	oi := &objectInterface{typ: it, ref: ref}
	o.interfaces[seq] = oi
	o.mu.Unlock()

	if err := node.server.Register(id, it, &objectHandler{object: o}); err != nil {
		o.mu.Lock()
		delete(o.interfaces, seq)
		o.mu.Unlock()
		return naming.InterfaceRef{}, err
	}
	if err := node.registerLocation(ref); err != nil {
		node.server.Unregister(id)
		o.mu.Lock()
		delete(o.interfaces, seq)
		o.mu.Unlock()
		return naming.InterfaceRef{}, err
	}
	return ref, nil
}

// Interfaces returns the object's interface references ordered by sequence.
func (o *Object) Interfaces() []naming.InterfaceRef {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]naming.InterfaceRef, 0, len(o.interfaces))
	for _, seq := range sortedKeys(o.interfaces) {
		out = append(out, o.interfaces[seq].ref)
	}
	return out
}

// Behavior returns the object's live behaviour (nil while deactivated).
func (o *Object) Behavior() Behavior {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.behavior
}

// checkpoint captures the object (object-management checkpoint function).
func (o *Object) checkpoint() (ObjectCheckpoint, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	oc := ObjectCheckpoint{
		Seq:      o.id.Seq,
		Behavior: o.factory,
		Arg:      o.factoryArg,
	}
	if cb, ok := o.behavior.(Checkpointable); ok && o.behavior != nil {
		state, err := cb.CheckpointState()
		if err != nil {
			return ObjectCheckpoint{}, fmt.Errorf("engineering: checkpointing %s: %w", o.id, err)
		}
		oc.State = state
		oc.HasState = true
	}
	for _, seq := range sortedKeys(o.interfaces) {
		oi := o.interfaces[seq]
		oc.Interfaces = append(oc.Interfaces, InterfaceCheckpoint{
			Seq:  seq,
			Ref:  oi.ref,
			Type: oi.typ.ToValue(),
		})
	}
	return oc, nil
}

// remove deregisters all interfaces and drops the behaviour.
func (o *Object) remove() {
	node := o.cluster.capsule.node
	o.mu.Lock()
	ifaces := make([]*objectInterface, 0, len(o.interfaces))
	for _, oi := range o.interfaces {
		ifaces = append(ifaces, oi)
	}
	o.interfaces = map[uint32]*objectInterface{}
	o.behavior = nil
	o.mu.Unlock()
	for _, oi := range ifaces {
		node.server.Unregister(oi.ref.ID)
		node.removeLocation(oi.ref.ID)
	}
}

// objectHandler adapts an Object to channel.Handler, adding the
// activation check: it is the node-side half of persistence transparency.
type objectHandler struct {
	object *Object
}

var (
	_ channel.Handler        = (*objectHandler)(nil)
	_ channel.FlowReceiver   = (*objectHandler)(nil)
	_ channel.SignalReceiver = (*objectHandler)(nil)
)

func (h *objectHandler) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	b, err := h.object.liveBehavior()
	if err != nil {
		return "", nil, err
	}
	return b.Invoke(ctx, op, args)
}

func (h *objectHandler) Flow(flow string, elem values.Value) {
	b, err := h.object.liveBehavior()
	if err != nil {
		return
	}
	if fr, ok := b.(channel.FlowReceiver); ok {
		fr.Flow(flow, elem)
	}
}

func (h *objectHandler) Signal(name string, args []values.Value) {
	b, err := h.object.liveBehavior()
	if err != nil {
		return
	}
	if sr, ok := b.(channel.SignalReceiver); ok {
		sr.Signal(name, args)
	}
}

// liveBehavior returns the object's behaviour, reactivating the cluster on
// demand when it is configured to.
func (o *Object) liveBehavior() (Behavior, error) {
	k := o.cluster
	k.mu.Lock()
	switch k.state {
	case clusterActive:
	case clusterDeactivated:
		if !k.opts.AutoReactivate {
			k.mu.Unlock()
			return nil, &channel.StageError{Code: channel.CodeUnavailable, Detail: k.id.String() + " is deactivated"}
		}
		if err := k.reactivateLocked(); err != nil {
			k.mu.Unlock()
			return nil, err
		}
	default:
		k.mu.Unlock()
		return nil, &channel.StageError{Code: channel.CodeUnavailable, Detail: k.id.String() + " is gone"}
	}
	k.mu.Unlock()
	o.mu.Lock()
	b := o.behavior
	o.mu.Unlock()
	if b == nil {
		return nil, &channel.StageError{Code: channel.CodeUnavailable, Detail: o.id.String() + " has no behaviour"}
	}
	return b, nil
}

func sortedKeys[M ~map[uint32]V, V any](m M) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
