package engineering

import (
	"fmt"
	"sync"

	"repro/internal/channel"
	"repro/internal/values"
)

// Behavior is the application code of a basic engineering object — the
// "data and processing" the computational viewpoint says an object
// encapsulates. A Behavior handles operation invocations; it may
// additionally implement channel.FlowReceiver and channel.SignalReceiver
// for stream and signal interfaces, and Checkpointable to participate in
// the checkpoint, deactivation, migration and recovery functions.
type Behavior interface {
	channel.Handler
}

// Checkpointable is implemented by behaviours whose state can be captured
// and restored. The state travels as a value, so checkpoints can cross
// channels (that is how migration ships a cluster between nodes).
type Checkpointable interface {
	CheckpointState() (values.Value, error)
	RestoreState(state values.Value) error
}

// BehaviorFactory creates a fresh behaviour instance. The arg value is
// supplied at object creation (and recorded in checkpoints so migration
// can re-create the object).
type BehaviorFactory func(arg values.Value) (Behavior, error)

// BehaviorRegistry maps behaviour names to factories. Checkpoints record
// behaviour names, not code, so a destination node can re-instantiate a
// migrated cluster only if its registry knows the same names — the
// engineering-viewpoint equivalent of "the code must already be installed".
type BehaviorRegistry struct {
	mu        sync.RWMutex
	factories map[string]BehaviorFactory
}

// NewBehaviorRegistry returns an empty registry.
func NewBehaviorRegistry() *BehaviorRegistry {
	return &BehaviorRegistry{factories: make(map[string]BehaviorFactory)}
}

// Register installs a factory under name, replacing any previous one.
func (r *BehaviorRegistry) Register(name string, f BehaviorFactory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[name] = f
}

// New instantiates the named behaviour.
func (r *BehaviorRegistry) New(name string, arg values.Value) (Behavior, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchBehavior, name)
	}
	b, err := f(arg)
	if err != nil {
		return nil, fmt.Errorf("engineering: instantiating %q: %w", name, err)
	}
	return b, nil
}

// Known reports whether name is registered.
func (r *BehaviorRegistry) Known(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.factories[name]
	return ok
}
