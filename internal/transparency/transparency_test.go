package transparency

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/security"
	"repro/internal/transactions"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

func baseEnv() Env {
	return Env{Transport: netsim.New(1)}
}

func TestClientConfigAccess(t *testing.T) {
	cfg, err := ClientConfig(core.Contract{Require: core.TransparencySet(core.Access)}, baseEnv())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Codec != wire.Canonical {
		t.Error("access transparency should select the canonical codec")
	}
	cfg, err = ClientConfig(core.Contract{}, baseEnv())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Codec != wire.Native {
		t.Error("no access transparency should select the native codec")
	}
}

func TestClientConfigLocator(t *testing.T) {
	for _, tr := range []core.Transparency{core.Location, core.Relocation, core.Migration} {
		contract := core.Contract{Require: core.TransparencySet(tr)}
		if _, err := ClientConfig(contract, baseEnv()); !errors.Is(err, ErrNeedLocator) {
			t.Errorf("%v without locator = %v", tr, err)
		}
		env := baseEnv()
		env.Locator = relocator.New()
		cfg, err := ClientConfig(contract, env)
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if cfg.Locator == nil {
			t.Errorf("%v should set the locator", tr)
		}
	}
}

func TestClientConfigFailure(t *testing.T) {
	cfg, err := ClientConfig(core.Contract{Require: core.TransparencySet(core.Failure)}, baseEnv())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxRetries != 3 || cfg.CallTimeout != 2*time.Second {
		t.Errorf("failure defaults: retries=%d timeout=%v", cfg.MaxRetries, cfg.CallTimeout)
	}
	cfg, err = ClientConfig(core.Contract{
		Require:    core.TransparencySet(core.Failure),
		MaxRetries: 7,
		MaxLatency: 100 * time.Millisecond,
	}, baseEnv())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxRetries != 7 || cfg.CallTimeout != 100*time.Millisecond {
		t.Errorf("explicit: retries=%d timeout=%v", cfg.MaxRetries, cfg.CallTimeout)
	}
	// Latency bound applies even without failure transparency.
	cfg, err = ClientConfig(core.Contract{MaxLatency: 50 * time.Millisecond}, baseEnv())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CallTimeout != 50*time.Millisecond || cfg.MaxRetries != 0 {
		t.Errorf("latency only: %v, %d", cfg.CallTimeout, cfg.MaxRetries)
	}
}

func TestClientConfigSecurity(t *testing.T) {
	if _, err := ClientConfig(core.Contract{Security: core.SecurityAuthenticated}, baseEnv()); !errors.Is(err, ErrNeedCredseed) {
		t.Errorf("missing creds = %v", err)
	}
	env := baseEnv()
	env.Principal = "alice"
	env.Secret = []byte("s")
	cfg, err := ClientConfig(core.Contract{Security: core.SecurityAuthenticated}, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Stages) != 1 || cfg.Stages[0].Name() != "security-sign" {
		t.Errorf("stages = %v", stageNames(cfg.Stages))
	}
	cfg, err = ClientConfig(core.Contract{Security: core.SecurityAudited}, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Stages) != 2 || cfg.Stages[0].Name() != "audit-stub" || cfg.Stages[1].Name() != "security-sign" {
		t.Errorf("stages = %v", stageNames(cfg.Stages))
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := ClientConfig(core.Contract{MaxLatency: -1}, baseEnv()); !errors.Is(err, core.ErrBadContract) {
		t.Errorf("bad contract = %v", err)
	}
	if _, err := ClientConfig(core.Contract{}, Env{}); !errors.Is(err, ErrNeedTransport) {
		t.Errorf("no transport = %v", err)
	}
}

func stageNames(stages []channel.Stage) []string {
	out := make([]string, len(stages))
	for i, s := range stages {
		out[i] = s.Name()
	}
	return out
}

func TestClusterOptions(t *testing.T) {
	if !ClusterOptions(core.Contract{Require: core.TransparencySet(core.Persistence)}).AutoReactivate {
		t.Error("persistence should enable auto-reactivation")
	}
	if ClusterOptions(core.Contract{}).AutoReactivate {
		t.Error("no persistence should not auto-reactivate")
	}
}

func TestServerConfig(t *testing.T) {
	cfg := ServerConfig(ServerEnv{})
	if !cfg.ReplayGuard || len(cfg.Stages) != 0 {
		t.Errorf("default server config = %+v", cfg)
	}
	cfg = ServerConfig(ServerEnv{Realm: security.NewRealm(), DisableReplayGuard: true})
	if cfg.ReplayGuard || len(cfg.Stages) != 1 {
		t.Errorf("secured server config = %+v", cfg)
	}
}

func TestMechanismNames(t *testing.T) {
	all := []core.Transparency{
		core.Access, core.Location, core.Relocation, core.Migration,
		core.Persistence, core.Failure, core.Replication, core.Transaction,
	}
	seen := map[string]bool{}
	for _, tr := range all {
		m := Mechanism(tr)
		if m == "" || m == "unknown" {
			t.Errorf("Mechanism(%v) = %q", tr, m)
		}
		if seen[m] {
			t.Errorf("mechanism %q duplicated", m)
		}
		seen[m] = true
	}
	if Mechanism(core.Transparency(1<<12)) != "unknown" {
		t.Error("unknown transparency should say so")
	}
}

// ---------------------------------------------------------------------------
// end-to-end: contract-driven binding against a real deployment

type counter struct{ n int64 }

func (c *counter) Invoke(_ context.Context, op string, args []values.Value) (string, []values.Value, error) {
	if op == "Inc" {
		d, _ := args[0].AsInt()
		c.n += d
	}
	return "OK", []values.Value{values.Int(c.n)}, nil
}

func counterIface() *types.Interface {
	return types.OpInterface("Counter",
		types.Op("Inc", types.Params(types.P("d", values.TInt())), types.Term("OK", types.P("n", values.TInt()))),
		types.Op("Get", nil, types.Term("OK", types.P("n", values.TInt()))),
	)
}

func TestBindWithContractEndToEnd(t *testing.T) {
	net := netsim.New(1)
	reloc := relocator.New()
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID: "alpha", Endpoint: "sim://alpha", Transport: net.From("alpha"), Locations: reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) { return &counter{}, nil })
	capsule, _ := node.CreateCapsule()
	contract := core.Contract{
		Require: core.TransparencySet(core.Access | core.Location | core.Relocation | core.Failure | core.Persistence),
	}
	cluster, err := capsule.CreateCluster(ClusterOptions(contract))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cluster.CreateObject("counter", values.Null())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := obj.AddInterface(counterIface())
	if err != nil {
		t.Fatal(err)
	}

	// Location transparency: bind with a deliberately wrong endpoint hint;
	// the configurator resolves through the relocator.
	staleRef := ref
	staleRef.Endpoint = "sim://nowhere"
	env := Env{Transport: net.From("client"), Locator: reloc, Type: counterIface()}
	b, err := Bind(staleRef, contract, env)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	term, res, err := b.Invoke(context.Background(), "Inc", []values.Value{values.Int(5)})
	if err != nil || term != "OK" {
		t.Fatalf("Invoke = %q, %v, %v", term, res, err)
	}
	if n, _ := res[0].AsInt(); n != 5 {
		t.Errorf("n = %d", n)
	}
}

func TestReplicateEndToEnd(t *testing.T) {
	net := netsim.New(2)
	reloc := relocator.New()
	contract := core.Contract{
		Require:  core.TransparencySet(core.Replication | core.Relocation),
		Replicas: 3,
	}
	var refs []naming.InterfaceRef
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		node, err := engineering.NewNode(engineering.NodeConfig{
			ID: naming.NodeID(name), Endpoint: naming.Endpoint("sim://" + name),
			Transport: net.From(name), Locations: reloc,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		node.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) { return &counter{}, nil })
		capsule, _ := node.CreateCapsule()
		cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		obj, err := cluster.CreateObject("counter", values.Null())
		if err != nil {
			t.Fatal(err)
		}
		ref, err := obj.AddInterface(counterIface())
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	env := Env{Transport: net.From("client"), Locator: reloc}
	// Too few replicas is an error.
	if _, err := Replicate(refs[:2], contract, env); err == nil {
		t.Error("undersized replica set should fail")
	}
	g, err := Replicate(refs, contract, env)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Size() != 3 {
		t.Errorf("group size = %d", g.Size())
	}
	term, res, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(2)})
	if err != nil || term != "OK" {
		t.Fatalf("group invoke = %q, %v, %v", term, res, err)
	}
	if n, _ := res[0].AsInt(); n != 2 {
		t.Errorf("replicated n = %d", n)
	}
	var _ = coordination.GroupStats{} // package participates in this test's contract
}

// ---------------------------------------------------------------------------
// transaction transparency refinement

// txCounter keeps its state in a transactional store and reports every
// read and write through the ambient transaction — the refinement of
// Section 9.3.
type txCounter struct {
	store *transactions.Store
}

func (c *txCounter) Invoke(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
	tx := TxFrom(ctx)
	if tx == nil {
		return "", nil, errors.New("no ambient transaction")
	}
	cur := int64(0)
	if v, err := tx.Read(c.store, "n"); err == nil {
		cur, _ = v.AsInt()
	}
	switch op {
	case "Inc":
		d, _ := args[0].AsInt()
		cur += d
		if err := tx.Write(c.store, "n", values.Int(cur)); err != nil {
			return "", nil, err
		}
		if cur < 0 {
			// Business rule: counters may not go negative — the Error
			// termination rolls the write back.
			return "ErrorNegative", nil, nil
		}
		return "OK", []values.Value{values.Int(cur)}, nil
	case "Get":
		return "OK", []values.Value{values.Int(cur)}, nil
	}
	return "", nil, fmt.Errorf("unknown op %s", op)
}

func TestTransactionalRefinement(t *testing.T) {
	coord := transactions.NewCoordinator()
	store := transactions.NewStore("counters", nil)
	h := Transactional(coord, &txCounter{store: store})
	ctx := context.Background()

	term, res, err := h.Invoke(ctx, "Inc", []values.Value{values.Int(10)})
	if err != nil || term != "OK" {
		t.Fatalf("Inc = %q, %v, %v", term, res, err)
	}
	// Committed: visible to a fresh transaction.
	if v, ok := store.Snapshot()["n"]; !ok || !v.Equal(values.Int(10)) {
		t.Errorf("committed state = %v", store.Snapshot())
	}

	// An Error* termination aborts: the write must not stick.
	term, _, err = h.Invoke(ctx, "Inc", []values.Value{values.Int(-100)})
	if err != nil || term != "ErrorNegative" {
		t.Fatalf("negative Inc = %q, %v", term, err)
	}
	if v := store.Snapshot()["n"]; !v.Equal(values.Int(10)) {
		t.Errorf("state after aborted termination = %v, want 10", v)
	}

	// A handler error also aborts and surfaces.
	_, _, err = h.Invoke(ctx, "Nope", nil)
	if err == nil {
		t.Error("unknown op should error")
	}
	commits, aborts := coord.Stats()
	if commits != 1 || aborts != 2 {
		t.Errorf("coordinator stats = %d commits, %d aborts", commits, aborts)
	}
}

func TestTxFromWithoutTransaction(t *testing.T) {
	if TxFrom(context.Background()) != nil {
		t.Error("TxFrom on bare context should be nil")
	}
	coord := transactions.NewCoordinator()
	tx := coord.Begin(context.Background())
	defer tx.Abort()
	ctx := WithTx(context.Background(), tx)
	if TxFrom(ctx) != tx {
		t.Error("WithTx/TxFrom round trip failed")
	}
}
