// Package transparency realises the distribution transparencies of
// Section 9 of the tutorial by configuring engineering-viewpoint
// mechanisms from computational-viewpoint environment contracts.
//
// "The aim of transparencies is to shift the complexities of distributed
// systems from the applications developers to the supporting
// infrastructure." Concretely, each prescribed transparency maps to a
// mechanism built elsewhere in this repository:
//
//	access       → marshalling stubs using the canonical transfer syntax (wire)
//	location     → interface references resolved via the relocator, never raw addresses
//	relocation   → binder re-resolves and replays on stale locations (channel)
//	migration    → cluster migration with preserved interface identity (engineering)
//	persistence  → auto-reactivation of deactivated clusters (engineering)
//	failure      → retry/failover binder + checkpoint recovery (channel, coordination)
//	replication  → replica group behind a sequencing proxy (coordination)
//	transaction  → object refinement reporting reads/writes to the
//	               transaction function (this package + transactions)
//
// Transaction transparency is deliberately NOT a channel stage: as
// Section 9.3 explains, the actions of interest happen inside objects and
// are invisible to stubs and binders, so it "must involve the refinement
// of a transaction-transparent specification" — here, the Transactional
// handler wrapper plus the Tx context accessor.
package transparency

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/mgmt"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/security"
	"repro/internal/transactions"
	"repro/internal/types"
	"repro/internal/values"
	"repro/internal/wire"
)

// Configuration error sentinels.
var (
	ErrNeedLocator   = errors.New("transparency: contract requires a locator (relocation/location/migration)")
	ErrNeedCredseed  = errors.New("transparency: contract requires credentials (authenticated security)")
	ErrNeedTransport = errors.New("transparency: environment provides no transport")
)

// Env is what the engineering environment offers a binding: transport,
// relocator access, credentials and audit sink. The configurator combines
// it with a contract to produce channel configurations.
type Env struct {
	Transport netsim.Transport
	// Sessions multiplexes every binding created under this environment
	// over shared per-endpoint transport sessions (one connection, one
	// read loop and one heartbeat per remote node, however many bindings
	// and replica proxies point there). Optional; nil gives each binding
	// a private session.
	Sessions *channel.SessionManager
	Locator  channel.Locator
	// Principal and Secret authenticate this end when the contract asks
	// for SecurityAuthenticated or stronger.
	Principal string
	Secret    []byte
	// AuditSink receives audit-stub records when the contract asks for
	// SecurityAudited.
	AuditSink func(channel.AuditEntry)
	// Type enables client-side type checking when known.
	Type *types.Interface
	// Instruments enables management instrumentation of bindings created
	// under this environment (tracing, metrics, QoS). Optional.
	Instruments *mgmt.ChannelClientInstruments
	// Policy, when set, is the recovery policy applied to every binding
	// created under this environment whose contract asks for failure
	// transparency: seeded exponential backoff between retries and one
	// deadline budget shared by all attempts, instead of the legacy
	// immediate retries with a fresh CallTimeout each. An engineering
	// choice, not part of the computational contract, so it lives on the
	// environment. Optional; nil keeps the legacy semantics.
	Policy *policy.RetryPolicy
}

// Mechanism names the engineering mechanism realising a transparency, for
// documentation and tooling.
func Mechanism(t core.Transparency) string {
	switch t {
	case core.Access:
		return "canonical transfer syntax in marshalling stubs"
	case core.Location:
		return "relocator-resolved interface references"
	case core.Relocation:
		return "binder re-resolution and replay on stale location"
	case core.Migration:
		return "cluster migration with preserved interface identity"
	case core.Persistence:
		return "on-demand cluster reactivation"
	case core.Failure:
		return "retry/failover binder and checkpoint recovery"
	case core.Replication:
		return "sequenced replica group proxy"
	case core.Transaction:
		return "object refinement reporting to the transaction function"
	}
	return "unknown"
}

// ClientConfig assembles the client channel configuration that realises
// the contract in the given environment.
func ClientConfig(contract core.Contract, env Env) (channel.BindConfig, error) {
	if err := contract.Validate(); err != nil {
		return channel.BindConfig{}, err
	}
	if env.Transport == nil && env.Sessions == nil {
		return channel.BindConfig{}, ErrNeedTransport
	}
	cfg := channel.BindConfig{
		Transport:   env.Transport,
		Sessions:    env.Sessions,
		Type:        env.Type,
		Instruments: env.Instruments,
	}
	req := contract.Require

	// Access transparency: marshal through the canonical representation so
	// heterogeneous peers interwork. Without it, both ends must share the
	// native host representation (cheaper, non-portable).
	if req.Has(core.Access) {
		cfg.Codec = wire.Canonical
	} else {
		cfg.Codec = wire.Native
	}

	// Location, relocation and migration transparency all need the
	// relocator: location to avoid raw addresses, relocation/migration to
	// chase moves.
	if req.Has(core.Location) || req.Has(core.Relocation) || req.Has(core.Migration) {
		if env.Locator == nil {
			return channel.BindConfig{}, ErrNeedLocator
		}
		cfg.Locator = env.Locator
	}

	// Failure transparency: retries with a per-attempt bound. The legacy
	// MaxRetries/CallTimeout pair is always derived (callers inspect it);
	// when the environment carries a recovery policy, the policy governs
	// and the pair is only its fallback documentation.
	if req.Has(core.Failure) {
		cfg.MaxRetries = contract.EffectiveRetries()
		if contract.MaxLatency > 0 {
			cfg.CallTimeout = contract.MaxLatency
		} else {
			cfg.CallTimeout = 2 * time.Second
		}
		if env.Policy != nil {
			p := *env.Policy
			if p.MaxAttempts == 0 {
				p.MaxAttempts = cfg.MaxRetries + 1
			}
			if p.AttemptTimeout == 0 {
				p.AttemptTimeout = cfg.CallTimeout
			}
			cfg.Policy = &p
		}
	} else if contract.MaxLatency > 0 {
		cfg.CallTimeout = contract.MaxLatency
	}

	// Security: credentials first (innermost), audit outermost so it sees
	// exactly what the application attempted.
	if contract.Security >= core.SecurityAudited {
		cfg.Stages = append(cfg.Stages, &channel.AuditStage{Sink: env.AuditSink})
	}
	if contract.Security >= core.SecurityAuthenticated {
		if env.Principal == "" || len(env.Secret) == 0 {
			return channel.BindConfig{}, ErrNeedCredseed
		}
		cfg.Stages = append(cfg.Stages, &security.SignStage{Principal: env.Principal, Secret: env.Secret})
	}
	return cfg, nil
}

// Bind resolves ref (through the locator when location transparency is
// required) and creates the contract-configured binding.
func Bind(ref naming.InterfaceRef, contract core.Contract, env Env) (*channel.Binding, error) {
	cfg, err := ClientConfig(contract, env)
	if err != nil {
		return nil, err
	}
	if cfg.Locator != nil {
		// Location transparency: the reference's embedded endpoint is only
		// a hint; the authoritative location comes from the relocator.
		if fresh, err := cfg.Locator.Lookup(ref.ID); err == nil {
			ref = fresh
		}
	}
	return channel.Bind(ref, cfg)
}

// ClusterOptions derives engineering cluster options from a contract:
// persistence transparency turns on auto-reactivation.
func ClusterOptions(contract core.Contract) engineering.ClusterOptions {
	return engineering.ClusterOptions{
		AutoReactivate: contract.Require.Has(core.Persistence),
	}
}

// ServerEnv configures the server end of a node's channels.
type ServerEnv struct {
	Realm  *security.Realm
	Policy *security.Policy
	Audit  func(security.Decision)
	// ReplayGuard defends against capture-and-replay; on unless disabled.
	DisableReplayGuard bool
	// Instruments enables management instrumentation of the server end.
	Instruments *mgmt.ChannelServerInstruments
}

// ServerConfig assembles the node-wide server channel configuration.
func ServerConfig(env ServerEnv) channel.ServerConfig {
	cfg := channel.ServerConfig{ReplayGuard: !env.DisableReplayGuard, Instruments: env.Instruments}
	if env.Realm != nil {
		cfg.Stages = append(cfg.Stages, &security.VerifyStage{
			Realm:  env.Realm,
			Policy: env.Policy,
			Audit:  env.Audit,
		})
	}
	return cfg
}

// Replicate builds the replication-transparency proxy: one binding per
// replica reference, assembled into a sequencing group that presents the
// common interface. The group size must meet the contract's replica
// degree.
func Replicate(refs []naming.InterfaceRef, contract core.Contract, env Env) (*coordination.ReplicaGroup, error) {
	want := contract.EffectiveReplicas()
	if len(refs) < want {
		return nil, fmt.Errorf("transparency: contract requires %d replicas, got %d", want, len(refs))
	}
	g := coordination.NewReplicaGroup()
	for _, ref := range refs {
		b, err := Bind(ref, contract, env)
		if err != nil {
			_ = g.Close()
			return nil, err
		}
		if err := g.Add(ref.ID.String(), b); err != nil {
			_ = b.Close()
			_ = g.Close()
			return nil, err
		}
	}
	return g, nil
}

// ---------------------------------------------------------------------------
// transaction transparency: object refinement

type txCtxKey struct{}

// TxFrom extracts the ambient transaction installed by Transactional. A
// refined object uses it to report its reads and writes to the
// transaction function:
//
//	func (b *branch) Invoke(ctx context.Context, op string, args []values.Value) (...) {
//		tx := transparency.TxFrom(ctx)
//		bal, err := tx.Read(b.store, key)
//		...
//	}
func TxFrom(ctx context.Context) *transactions.Tx {
	tx, _ := ctx.Value(txCtxKey{}).(*transactions.Tx)
	return tx
}

// WithTx installs a transaction into a context (exposed for tests and for
// callers composing their own refinements).
func WithTx(ctx context.Context, tx *transactions.Tx) context.Context {
	return context.WithValue(ctx, txCtxKey{}, tx)
}

// Transactional refines a handler into a transaction-transparent one:
// every invocation runs inside its own ACID transaction, committed when
// the handler succeeds and aborted when it fails (an application
// termination whose name starts with "Error" also aborts, so failed
// business outcomes roll back). Deadlocks retry via the coordinator.
func Transactional(coord *transactions.Coordinator, inner channel.Handler) channel.Handler {
	return channel.HandlerFunc(func(ctx context.Context, op string, args []values.Value) (string, []values.Value, error) {
		var term string
		var results []values.Value
		err := coord.Atomically(ctx, func(tx *transactions.Tx) error {
			var err error
			term, results, err = inner.Invoke(WithTx(ctx, tx), op, args)
			if err != nil {
				return err
			}
			if len(term) >= 5 && term[:5] == "Error" {
				return errAbortTermination
			}
			return nil
		})
		if err != nil && !errors.Is(err, errAbortTermination) {
			return "", nil, err
		}
		return term, results, nil
	})
}

// errAbortTermination signals "abort the transaction but deliver the
// application termination" inside Transactional.
var errAbortTermination = errors.New("transparency: abort on error termination")
