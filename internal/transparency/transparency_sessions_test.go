package transparency

import (
	"context"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/engineering"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/relocator"
	"repro/internal/values"
)

func TestReplicateSharesSessionPerNode(t *testing.T) {
	// Three replicas co-located on one node, bound through a shared session
	// manager: the replica group fans out over three bindings but exactly
	// one transport session (one dial, one server-side connection).
	net := netsim.New(7)
	reloc := relocator.New()
	node, err := engineering.NewNode(engineering.NodeConfig{
		ID: "r0", Endpoint: "sim://r0",
		Transport: net.From("r0"), Locations: reloc,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Behaviors().Register("counter", func(values.Value) (engineering.Behavior, error) { return &counter{}, nil })
	capsule, _ := node.CreateCapsule()
	var refs []naming.InterfaceRef
	for i := 0; i < 3; i++ {
		cluster, err := capsule.CreateCluster(engineering.ClusterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		obj, err := cluster.CreateObject("counter", values.Null())
		if err != nil {
			t.Fatal(err)
		}
		ref, err := obj.AddInterface(counterIface())
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}

	sessions := channel.NewSessionManager(net.From("client"))
	defer sessions.Close()
	env := Env{Sessions: sessions, Locator: reloc}
	contract := core.Contract{
		Require:  core.TransparencySet(core.Replication | core.Relocation),
		Replicas: 3,
	}
	g, err := Replicate(refs, contract, env)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 5; i++ {
		term, _, err := g.Invoke(context.Background(), "Inc", []values.Value{values.Int(1)})
		if err != nil || term != "OK" {
			t.Fatalf("group invoke %d = %q, %v", i, term, err)
		}
	}
	if st := sessions.Stats(); st.Dials != 1 || st.Open != 1 {
		t.Errorf("session stats = %+v, want one shared session for the whole group", st)
	}
	if st := node.Server().Stats(); st.Sessions != 1 {
		t.Errorf("server sessions = %d, want 1 connection for 3 replica bindings", st.Sessions)
	}
}
