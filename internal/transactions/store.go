package transactions

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/values"
)

// Store error sentinels.
var (
	ErrNotFound    = errors.New("transactions: key not found")
	ErrNotPrepared = errors.New("transactions: commit without prepare")
)

// Participant is one party in a two-phase commit: it votes in Prepare and
// then obeys the coordinator's Commit or Abort decision. *Store implements
// it; so could any other transactional resource.
type Participant interface {
	Name() string
	Prepare(txID uint64) error
	Commit(txID uint64) error
	Abort(txID uint64) error
}

// Store is a transactional key/value resource holding values. Reads take
// shared locks, writes exclusive locks (strict 2PL); updates are deferred
// into a per-transaction write set and applied at commit, after a forced
// prepare record makes them durable.
type Store struct {
	name   string
	lm     *lockManager
	log    *Log
	forced *FileLog // non-nil when the WAL is file-backed

	mu        sync.Mutex
	committed map[string]values.Value
	writeSets map[uint64]map[string]WriteOp
	prepared  map[uint64]bool
	// wsFree recycles write-set maps between transactions (cleared, so the
	// bucket arrays are reused instead of reallocated every transaction).
	wsFree []map[string]WriteOp
}

var _ Participant = (*Store)(nil)

// NewStore creates a store writing its WAL to log (a fresh log if nil).
func NewStore(name string, log *Log) *Store {
	if log == nil {
		log = NewLog()
	}
	return &Store{
		name:      name,
		lm:        newLockManager(),
		log:       log,
		committed: make(map[string]values.Value),
		writeSets: make(map[uint64]map[string]WriteOp),
		prepared:  make(map[uint64]bool),
	}
}

// Name returns the store's name.
func (s *Store) Name() string { return s.name }

// Log exposes the store's write-ahead log (for Recover).
func (s *Store) Log() *Log { return s.log }

// get reads a key under a shared lock, seeing the transaction's own
// pending writes first.
func (s *Store) get(ctx context.Context, txID uint64, key string) (values.Value, error) {
	if err := s.lm.acquire(ctx, txID, key, lockShared); err != nil {
		return values.Value{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ws, ok := s.writeSets[txID]; ok {
		if op, ok := ws[key]; ok {
			if op.Delete {
				return values.Value{}, fmt.Errorf("%w: %q", ErrNotFound, key)
			}
			return op.Value, nil
		}
	}
	v, ok := s.committed[key]
	if !ok {
		return values.Value{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return v, nil
}

// put stages a write under an exclusive lock.
func (s *Store) put(ctx context.Context, txID uint64, key string, v values.Value) error {
	if err := s.lm.acquire(ctx, txID, key, lockExclusive); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, ok := s.writeSets[txID]
	if !ok {
		ws = s.newWriteSet()
		s.writeSets[txID] = ws
	}
	ws[key] = WriteOp{Key: key, Value: v}
	return nil
}

// newWriteSet returns an empty write-set map, reusing a recycled one when
// available. Callers hold s.mu.
func (s *Store) newWriteSet() map[string]WriteOp {
	if n := len(s.wsFree); n > 0 {
		ws := s.wsFree[n-1]
		s.wsFree = s.wsFree[:n-1]
		return ws
	}
	return make(map[string]WriteOp)
}

// recycleWriteSet clears a finished transaction's write set and keeps it
// for reuse. Callers hold s.mu.
func (s *Store) recycleWriteSet(ws map[string]WriteOp) {
	if ws == nil || len(s.wsFree) >= 16 {
		return
	}
	clear(ws)
	s.wsFree = append(s.wsFree, ws)
}

// del stages a deletion under an exclusive lock.
func (s *Store) del(ctx context.Context, txID uint64, key string) error {
	if err := s.lm.acquire(ctx, txID, key, lockExclusive); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, ok := s.writeSets[txID]
	if !ok {
		ws = s.newWriteSet()
		s.writeSets[txID] = ws
	}
	ws[key] = WriteOp{Key: key, Delete: true}
	return nil
}

// Prepare forces the transaction's write set to the log and votes yes.
// A transaction that never touched this store may still be prepared (it
// votes yes with an empty write set).
func (s *Store) Prepare(txID uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prepared[txID] {
		return nil // idempotent
	}
	ws := s.writeSets[txID]
	ops := make([]WriteOp, 0, len(ws))
	for _, op := range ws {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	if err := s.appendLog(Record{Kind: RecPrepare, TxID: txID, Writes: ops}); err != nil {
		return err
	}
	s.prepared[txID] = true
	return nil
}

// appendLog forces the record to stable storage when the WAL is
// file-backed, and always mirrors it in memory.
func (s *Store) appendLog(r Record) error {
	if s.forced != nil {
		return s.forced.Append(r) // mirrors into s.log
	}
	s.log.Append(r)
	return nil
}

// Commit applies the prepared write set and releases the locks.
func (s *Store) Commit(txID uint64) error {
	s.mu.Lock()
	if !s.prepared[txID] {
		s.mu.Unlock()
		return fmt.Errorf("%w: tx %d at %s", ErrNotPrepared, txID, s.name)
	}
	if err := s.appendLog(Record{Kind: RecCommit, TxID: txID}); err != nil {
		s.mu.Unlock()
		return err
	}
	ws := s.writeSets[txID]
	for key, op := range ws {
		if op.Delete {
			delete(s.committed, key)
		} else {
			s.committed[key] = op.Value
		}
	}
	delete(s.writeSets, txID)
	delete(s.prepared, txID)
	s.recycleWriteSet(ws)
	s.mu.Unlock()
	s.lm.releaseAll(txID)
	return nil
}

// Abort discards the write set and releases the locks. Aborting a
// transaction the store has never seen is a no-op.
func (s *Store) Abort(txID uint64) error {
	s.mu.Lock()
	ws, hadWrites := s.writeSets[txID]
	if hadWrites || s.prepared[txID] {
		_ = s.appendLog(Record{Kind: RecAbort, TxID: txID}) // abort is presumed anyway
	}
	delete(s.writeSets, txID)
	delete(s.prepared, txID)
	s.recycleWriteSet(ws)
	s.mu.Unlock()
	s.lm.releaseAll(txID)
	return nil
}

// Snapshot returns a copy of the committed state (non-transactional read,
// for tests and tooling).
func (s *Store) Snapshot() map[string]values.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]values.Value, len(s.committed))
	for k, v := range s.committed {
		out[k] = v
	}
	return out
}

// InDoubt lists transactions that prepared at this store but have no
// recorded outcome — after a crash these must be resolved against the
// coordinator's decision log.
func InDoubt(log *Log) []uint64 {
	state := map[uint64]RecordKind{}
	for _, r := range log.Records() {
		state[r.TxID] = r.Kind
	}
	var out []uint64
	for tx, k := range state {
		if k == RecPrepare {
			out = append(out, tx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recover rebuilds a store from its write-ahead log, redoing the write
// sets of committed transactions. In-doubt transactions (prepared, no
// outcome) are resolved by the decide callback — normally a lookup in the
// coordinator's decision log; deciding false aborts them.
func Recover(name string, log *Log, decide func(txID uint64) bool) *Store {
	return recoverInto(name, log, decide, nil)
}

func recoverInto(name string, log *Log, decide func(txID uint64) bool, forced *FileLog) *Store {
	s := NewStore(name, log)
	s.forced = forced
	prepared := map[uint64][]WriteOp{}
	for _, r := range log.Records() {
		switch r.Kind {
		case RecPrepare:
			prepared[r.TxID] = r.Writes
		case RecCommit:
			for _, op := range prepared[r.TxID] {
				if op.Delete {
					delete(s.committed, op.Key)
				} else {
					s.committed[op.Key] = op.Value
				}
			}
			delete(prepared, r.TxID)
		case RecAbort:
			delete(prepared, r.TxID)
		}
	}
	// Resolve in-doubt transactions, deterministically ordered.
	var inDoubt []uint64
	for tx := range prepared {
		inDoubt = append(inDoubt, tx)
	}
	sort.Slice(inDoubt, func(i, j int) bool { return inDoubt[i] < inDoubt[j] })
	for _, tx := range inDoubt {
		if decide != nil && decide(tx) {
			_ = s.appendLog(Record{Kind: RecCommit, TxID: tx})
			for _, op := range prepared[tx] {
				if op.Delete {
					delete(s.committed, op.Key)
				} else {
					s.committed[op.Key] = op.Value
				}
			}
		} else {
			_ = s.appendLog(Record{Kind: RecAbort, TxID: tx})
		}
	}
	return s
}
