package transactions

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mgmt"
	"repro/internal/values"
)

// Transaction error sentinels.
var (
	ErrTxDone = errors.New("transactions: transaction already finished")
	ErrVetoed = errors.New("transactions: a participant vetoed commit")
)

// Decision is a coordinator-log entry: the durable commit/abort verdict
// for one transaction, consulted when recovering in-doubt participants.
type Decision struct {
	TxID      uint64
	Committed bool
}

// Coordinator is the ACID transaction function: it creates transactions
// and drives two-phase commit across their participants, recording every
// decision durably before announcing it (the standard presumed-abort
// discipline: no decision record means abort).
type Coordinator struct {
	mu        sync.Mutex
	nextTx    uint64
	decisions map[uint64]bool
	active    map[uint64]*Tx

	commits uint64
	aborts  uint64

	insp atomic.Pointer[mgmt.TxInstruments]
}

// Instrument attaches management instruments to the coordinator: commit
// spans with per-participant children, and commit/abort/veto metrics.
// Safe to call at any time; nil detaches.
func (c *Coordinator) Instrument(ins *mgmt.TxInstruments) {
	c.insp.Store(ins)
}

// NewCoordinator returns a coordinator with an empty decision log.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		decisions: make(map[uint64]bool),
		active:    make(map[uint64]*Tx),
	}
}

// Begin starts a transaction. The context bounds every lock wait inside
// the transaction.
func (c *Coordinator) Begin(ctx context.Context) *Tx {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextTx++
	t := &Tx{
		id:    c.nextTx,
		ctx:   ctx,
		coord: c,
	}
	t.participants = t.partBuf[:0]
	c.active[t.id] = t
	return t
}

// Decided reports the durable outcome of a transaction: committed, and
// whether any decision exists. Recovery uses it as the decide callback:
//
//	transactions.Recover("bank", log, func(tx uint64) bool {
//		committed, _ := coord.Decided(tx)
//		return committed
//	})
func (c *Coordinator) Decided(txID uint64) (committed, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.decisions[txID]
	return v, ok
}

// Stats returns the numbers of committed and aborted transactions.
func (c *Coordinator) Stats() (commits, aborts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits, c.aborts
}

func (c *Coordinator) finish(t *Tx, committed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.active, t.id)
	if committed {
		c.decisions[t.id] = true
		c.commits++
	} else {
		c.aborts++
	}
}

type txState int

const (
	txActive txState = iota
	txCommitted
	txAborted
)

// Tx is one ACID transaction. It is not safe for concurrent use by
// multiple goroutines (like database transactions generally); run
// concurrent work in separate transactions.
type Tx struct {
	id    uint64
	ctx   context.Context
	coord *Coordinator
	// participants is deduplicated by name. Most transactions touch one or
	// two resources, so it lives in a small inline buffer and a linear scan
	// replaces the map a general registry would use.
	participants []Participant
	partBuf      [4]Participant
	state        txState
}

// ID returns the transaction identifier.
func (t *Tx) ID() uint64 { return t.id }

// enlist registers a participant, replacing any previous one of the same
// name (matching the map semantics this list replaces).
func (t *Tx) enlist(p Participant) {
	name := p.Name()
	for i, q := range t.participants {
		if q.Name() == name {
			t.participants[i] = p
			return
		}
	}
	t.participants = append(t.participants, p)
}

// Enlist adds a participant; stores enlist automatically on first touch.
func (t *Tx) Enlist(p Participant) error {
	if t.state != txActive {
		return ErrTxDone
	}
	t.enlist(p)
	return nil
}

// Read reads a key from a store within the transaction.
func (t *Tx) Read(s *Store, key string) (values.Value, error) {
	if t.state != txActive {
		return values.Value{}, ErrTxDone
	}
	t.enlist(s)
	return s.get(t.ctx, t.id, key)
}

// Write stages a write to a store within the transaction.
func (t *Tx) Write(s *Store, key string, v values.Value) error {
	if t.state != txActive {
		return ErrTxDone
	}
	t.enlist(s)
	return s.put(t.ctx, t.id, key, v)
}

// Delete stages a deletion within the transaction.
func (t *Tx) Delete(s *Store, key string) error {
	if t.state != txActive {
		return ErrTxDone
	}
	t.enlist(s)
	return s.del(t.ctx, t.id, key)
}

// maxCommitFanout bounds the goroutines a single commit or abort spawns;
// wider participant lists are served by this many workers pulling from a
// shared cursor.
const maxCommitFanout = 16

// fanoutParticipants calls fn on every participant concurrently (bounded
// at maxCommitFanout goroutines; a single participant is called inline)
// and returns the index-aligned errors. When stopOnErr is set, a failure
// makes the not-yet-started calls return errSkipped instead of running —
// the first veto cancels the rest of the voting round.
func fanoutParticipants(ps []Participant, stopOnErr bool, fn func(Participant) error) []error {
	errs := make([]error, len(ps))
	if len(ps) == 0 {
		return errs
	}
	if len(ps) == 1 {
		errs[0] = fn(ps[0])
		return errs
	}
	workers := len(ps)
	if workers > maxCommitFanout {
		workers = maxCommitFanout
	}
	var cursor atomic.Int64
	var failed atomic.Bool
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(ps) {
				return
			}
			if stopOnErr && failed.Load() {
				errs[i] = errSkipped
				continue
			}
			if err := fn(ps[i]); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	// The calling goroutine is one of the workers, so a fan-out of width w
	// spawns only w-1 goroutines.
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return errs
}

// errSkipped marks a vote that was never solicited because an earlier
// participant had already vetoed. A skipped participant holds no prepare
// record, so the presumed-abort rollback covers it.
var errSkipped = errors.New("transactions: prepare skipped after veto")

// Commit runs two-phase commit: every participant prepares concurrently
// (forcing its redo log); if all vote yes the decision is logged — exactly
// once, before any participant learns it — and the commits fan out
// concurrently; otherwise everything aborts and ErrVetoed (wrapping the
// first veto) is returned. Concurrency changes only the wall-clock shape
// (max of the participant costs instead of their sum); the log discipline
// is untouched: prepare records are forced before voting yes, the
// decision record is the commit point, and participants that prepared
// recover forward from it.
func (t *Tx) Commit() error {
	if t.state != txActive {
		return ErrTxDone
	}
	ins := t.coord.insp.Load()
	var tr *mgmt.Tracer
	if ins != nil {
		tr = ins.Tracer
	}
	// The commit span parents under whatever trace rides the transaction's
	// context (typically a server dispatch span); each participant's
	// prepare and completion legs are child spans.
	cctx, csp := tr.Start(t.ctx, "tx.commit")
	// Phase 1: voting.
	errs := fanoutParticipants(t.participants, true, func(p Participant) error {
		// Span names are built only when tracing: the concatenation would
		// otherwise allocate on every uninstrumented commit.
		var sp *mgmt.ActiveSpan
		if tr != nil {
			_, sp = tr.Start(cctx, "tx.prepare:"+p.Name())
		}
		err := p.Prepare(t.id)
		sp.Fail(err)
		sp.End()
		return err
	})
	for i, err := range errs {
		if err != nil && !errors.Is(err, errSkipped) {
			if ins != nil {
				ins.Vetoes.Inc()
			}
			t.rollback()
			verr := fmt.Errorf("%w: %s: %v", ErrVetoed, t.participants[i].Name(), err)
			csp.Fail(verr)
			csp.End()
			return verr
		}
	}
	// Decision point: once logged, the transaction IS committed, whatever
	// happens to individual participants afterwards (they hold prepare
	// records and recover forward).
	t.coord.finish(t, true)
	t.state = txCommitted
	if ins != nil {
		ins.Commits.Inc()
	}
	// Phase 2: completion.
	errs = fanoutParticipants(t.participants, false, func(p Participant) error {
		var sp *mgmt.ActiveSpan
		if tr != nil {
			_, sp = tr.Start(cctx, "tx.complete:"+p.Name())
		}
		err := p.Commit(t.id)
		sp.Fail(err)
		sp.End()
		return err
	})
	var after error
	for i, err := range errs {
		if err != nil {
			after = fmt.Errorf("transactions: participant %s failed after decision: %w", t.participants[i].Name(), err)
			break
		}
	}
	csp.Fail(after)
	d := csp.End()
	if ins != nil {
		ins.CommitLatency.ObserveDuration(d)
	}
	return after
}

// Abort rolls the transaction back everywhere.
func (t *Tx) Abort() error {
	if t.state != txActive {
		return ErrTxDone
	}
	t.rollback()
	return nil
}

func (t *Tx) rollback() {
	if ins := t.coord.insp.Load(); ins != nil {
		ins.Aborts.Inc()
	}
	// Aborts fan out concurrently too: rollback latency also tracks the
	// slowest participant, not the sum. Abort is idempotent and aborting a
	// participant that never prepared is a no-op (presumed abort), so no
	// ordering is required.
	fanoutParticipants(t.participants, false, func(p Participant) error {
		return p.Abort(t.id)
	})
	t.coord.finish(t, false)
	t.state = txAborted
}

// Atomically runs fn inside a transaction, committing on nil and aborting
// on error; deadlock aborts are retried up to 10 times with fresh
// transactions, which is the standard application-level response to
// ErrDeadlock.
func (c *Coordinator) Atomically(ctx context.Context, fn func(tx *Tx) error) error {
	const maxAttempts = 10
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		tx := c.Begin(ctx)
		err := fn(tx)
		if err == nil {
			return tx.Commit()
		}
		_ = tx.Abort()
		if !errors.Is(err, ErrDeadlock) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("transactions: giving up after %d deadlock retries: %w", maxAttempts, lastErr)
}
