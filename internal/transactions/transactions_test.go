package transactions

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/values"
)

func ctxT() context.Context { return context.Background() }

func seeded(t *testing.T, name string, kv map[string]int64) (*Coordinator, *Store) {
	t.Helper()
	c := NewCoordinator()
	s := NewStore(name, nil)
	tx := c.Begin(ctxT())
	for k, v := range kv {
		if err := tx.Write(s, k, values.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return c, s
}

func readInt(t *testing.T, tx *Tx, s *Store, key string) int64 {
	t.Helper()
	v, err := tx.Read(s, key)
	if err != nil {
		t.Fatalf("Read(%s): %v", key, err)
	}
	i, _ := v.AsInt()
	return i
}

func TestCommitMakesWritesVisible(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"alice": 100})
	tx := c.Begin(ctxT())
	if got := readInt(t, tx, s, "alice"); got != 100 {
		t.Errorf("alice = %d", got)
	}
	if err := tx.Write(s, "alice", values.Int(150)); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes inside the transaction.
	if got := readInt(t, tx, s, "alice"); got != 150 {
		t.Errorf("own write = %d", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := c.Begin(ctxT())
	defer tx2.Abort()
	if got := readInt(t, tx2, s, "alice"); got != 150 {
		t.Errorf("after commit = %d", got)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"alice": 100})
	tx := c.Begin(ctxT())
	if err := tx.Write(s, "alice", values.Int(0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx2 := c.Begin(ctxT())
	defer tx2.Abort()
	if got := readInt(t, tx2, s, "alice"); got != 100 {
		t.Errorf("after abort = %d (recoverability violated)", got)
	}
	// Locks are gone.
	if s.lm.heldKeys(tx.ID()) != 0 {
		t.Error("aborted tx still holds locks")
	}
}

func TestDelete(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"alice": 100})
	tx := c.Begin(ctxT())
	if err := tx.Delete(s, "alice"); err != nil {
		t.Fatal(err)
	}
	// Deleted within the transaction.
	if _, err := tx.Read(s, "alice"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read of own delete = %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := c.Begin(ctxT())
	defer tx2.Abort()
	if _, err := tx2.Read(s, "alice"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read after committed delete = %v", err)
	}
}

func TestTxDoneGuards(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"a": 1})
	tx := c.Begin(ctxT())
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("abort after commit = %v", err)
	}
	if _, err := tx.Read(s, "a"); !errors.Is(err, ErrTxDone) {
		t.Errorf("read after commit = %v", err)
	}
	if err := tx.Write(s, "a", values.Int(2)); !errors.Is(err, ErrTxDone) {
		t.Errorf("write after commit = %v", err)
	}
	if err := tx.Delete(s, "a"); !errors.Is(err, ErrTxDone) {
		t.Errorf("delete after commit = %v", err)
	}
	if err := tx.Enlist(s); !errors.Is(err, ErrTxDone) {
		t.Errorf("enlist after commit = %v", err)
	}
}

func TestVisibilityIsolation(t *testing.T) {
	// "visibility: the degree to which the intermediate effects of an
	// operation are visible to other operations" — with strict 2PL the
	// degree is zero: a reader blocks until the writer finishes.
	c, s := seeded(t, "bank", map[string]int64{"alice": 100})
	writer := c.Begin(ctxT())
	if err := writer.Write(s, "alice", values.Int(999)); err != nil {
		t.Fatal(err)
	}
	readerDone := make(chan int64, 1)
	go func() {
		reader := c.Begin(ctxT())
		defer reader.Abort()
		v, err := reader.Read(s, "alice")
		if err != nil {
			readerDone <- -1
			return
		}
		i, _ := v.AsInt()
		readerDone <- i
	}()
	// The reader must be blocked, not observing 999 or 100.
	select {
	case v := <-readerDone:
		t.Fatalf("reader returned %d while writer uncommitted", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-readerDone:
		if v != 999 {
			t.Errorf("reader saw %d, want 999", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader never unblocked")
	}
}

func TestSharedReadersDoNotBlock(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"alice": 100})
	t1 := c.Begin(ctxT())
	t2 := c.Begin(ctxT())
	defer t1.Abort()
	defer t2.Abort()
	if got := readInt(t, t1, s, "alice"); got != 100 {
		t.Errorf("t1 = %d", got)
	}
	if got := readInt(t, t2, s, "alice"); got != 100 {
		t.Errorf("t2 = %d", got)
	}
}

func TestLockUpgrade(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"alice": 100})
	tx := c.Begin(ctxT())
	defer tx.Abort()
	if got := readInt(t, tx, s, "alice"); got != 100 {
		t.Fatal("read failed")
	}
	// Sole shared holder upgrades to exclusive without deadlocking itself.
	if err := tx.Write(s, "alice", values.Int(1)); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"a": 1, "b": 2})
	t1 := c.Begin(ctxT())
	t2 := c.Begin(ctxT())
	if err := t1.Write(s, "a", values.Int(10)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(s, "b", values.Int(20)); err != nil {
		t.Fatal(err)
	}
	// t1 blocks on b.
	t1err := make(chan error, 1)
	go func() { t1err <- t1.Write(s, "b", values.Int(11)) }()
	time.Sleep(10 * time.Millisecond)
	// t2 requests a: cycle — must fail fast with ErrDeadlock.
	err := t2.Write(s, "a", values.Int(21))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("t2 write = %v, want deadlock", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	// t1 now gets b and completes.
	if err := <-t1err; err != nil {
		t.Fatalf("t1 blocked write = %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLockWaitRespectsContext(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"a": 1})
	holder := c.Begin(ctxT())
	if err := holder.Write(s, "a", values.Int(2)); err != nil {
		t.Fatal(err)
	}
	defer holder.Abort()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	waiter := c.Begin(ctx)
	defer waiter.Abort()
	if _, err := waiter.Read(s, "a"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked read = %v", err)
	}
}

func TestTwoPhaseCommitAcrossStores(t *testing.T) {
	c := NewCoordinator()
	s1 := NewStore("accounts", nil)
	s2 := NewStore("ledger", nil)
	tx := c.Begin(ctxT())
	if err := tx.Write(s1, "alice", values.Int(50)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(s2, "entry-1", values.Str("alice-50")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(s1.Snapshot()) != 1 || len(s2.Snapshot()) != 1 {
		t.Error("both stores should have committed")
	}
	// Each store's log carries prepare+commit.
	for _, s := range []*Store{s1, s2} {
		recs := s.Log().Records()
		if len(recs) != 2 || recs[0].Kind != RecPrepare || recs[1].Kind != RecCommit {
			t.Errorf("%s log = %v", s.Name(), recs)
		}
	}
	if commits, aborts := c.Stats(); commits != 1 || aborts != 0 {
		t.Errorf("stats = %d/%d", commits, aborts)
	}
}

// vetoParticipant votes no in phase 1.
type vetoParticipant struct{ aborted bool }

func (v *vetoParticipant) Name() string         { return "veto" }
func (v *vetoParticipant) Prepare(uint64) error { return errors.New("cannot prepare") }
func (v *vetoParticipant) Commit(uint64) error  { return nil }
func (v *vetoParticipant) Abort(uint64) error   { v.aborted = true; return nil }

func TestVetoAbortsEverywhere(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"alice": 100})
	veto := &vetoParticipant{}
	tx := c.Begin(ctxT())
	if err := tx.Write(s, "alice", values.Int(0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Enlist(veto); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrVetoed) {
		t.Fatalf("commit = %v", err)
	}
	if !veto.aborted {
		t.Error("veto participant should see Abort")
	}
	tx2 := c.Begin(ctxT())
	defer tx2.Abort()
	if got := readInt(t, tx2, s, "alice"); got != 100 {
		t.Errorf("store state after veto = %d (atomicity violated)", got)
	}
	if committed, known := c.Decided(tx.ID()); committed || known {
		t.Error("vetoed tx must have no commit decision (presumed abort)")
	}
}

func TestRecoveryReplaysCommitted(t *testing.T) {
	// Commit, "crash" the store, recover from the log: permanence.
	c := NewCoordinator()
	log := NewLog()
	s := NewStore("bank", log)
	tx := c.Begin(ctxT())
	if err := tx.Write(s, "alice", values.Int(77)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(s, "bob", values.Int(33)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx1b := c.Begin(ctxT())
	if err := tx1b.Delete(s, "bob"); err != nil {
		t.Fatal(err)
	}
	if err := tx1b.Commit(); err != nil {
		t.Fatal(err)
	}
	// An aborted transaction must not reappear.
	tx2 := c.Begin(ctxT())
	if err := tx2.Write(s, "alice", values.Int(0)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	recovered := Recover("bank", log, func(txID uint64) bool {
		committed, _ := c.Decided(txID)
		return committed
	})
	snap := recovered.Snapshot()
	if v, ok := snap["alice"]; !ok || !v.Equal(values.Int(77)) {
		t.Errorf("alice = %v", snap["alice"])
	}
	if _, ok := snap["bob"]; ok {
		t.Error("bob should stay deleted")
	}
}

func TestRecoveryResolvesInDoubt(t *testing.T) {
	// A participant prepares, then crashes before learning the outcome.
	c := NewCoordinator()
	log := NewLog()
	s := NewStore("bank", log)
	tx := c.Begin(ctxT())
	if err := tx.Write(s, "x", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare(tx.ID()); err != nil { // phase 1 reached the store...
		t.Fatal(err)
	}
	// ...but the commit decision was taken at the coordinator only.
	c.mu.Lock()
	c.decisions[tx.ID()] = true
	c.mu.Unlock()

	if got := InDoubt(log); len(got) != 1 || got[0] != tx.ID() {
		t.Fatalf("InDoubt = %v", got)
	}
	recovered := Recover("bank", log, func(txID uint64) bool {
		committed, _ := c.Decided(txID)
		return committed
	})
	if v, ok := recovered.Snapshot()["x"]; !ok || !v.Equal(values.Int(1)) {
		t.Error("in-doubt commit not applied")
	}
	// And the other way: no decision means presumed abort.
	log2 := NewLog()
	s2 := NewStore("bank2", log2)
	tx2 := c.Begin(ctxT())
	if err := tx2.Write(s2, "y", values.Int(9)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Prepare(tx2.ID()); err != nil {
		t.Fatal(err)
	}
	recovered2 := Recover("bank2", log2, func(txID uint64) bool {
		committed, _ := c.Decided(txID)
		return committed
	})
	if _, ok := recovered2.Snapshot()["y"]; ok {
		t.Error("presumed-abort tx must not be applied")
	}
	if got := InDoubt(log2); len(got) != 0 {
		t.Errorf("in-doubt after recovery = %v", got)
	}
}

func TestCommitWithoutPrepare(t *testing.T) {
	s := NewStore("bank", nil)
	if err := s.Commit(42); !errors.Is(err, ErrNotPrepared) {
		t.Errorf("commit without prepare = %v", err)
	}
}

func TestConcurrentTransfersPreserveInvariant(t *testing.T) {
	// The classic: concurrent transfers between accounts must conserve the
	// total. This exercises locking, deadlock retry and atomicity at once.
	c, s := seeded(t, "bank", map[string]int64{"a": 100, "b": 100, "c": 100})
	const workers, transfers = 4, 25
	var wg sync.WaitGroup
	accounts := []string{"a", "b", "c"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := accounts[(w+i)%3]
				to := accounts[(w+i+1)%3]
				err := c.Atomically(ctxT(), func(tx *Tx) error {
					fv, err := tx.Read(s, from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(s, to)
					if err != nil {
						return err
					}
					f, _ := fv.AsInt()
					g, _ := tv.AsInt()
					if err := tx.Write(s, from, values.Int(f-1)); err != nil {
						return err
					}
					return tx.Write(s, to, values.Int(g+1))
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	tx := c.Begin(ctxT())
	defer tx.Abort()
	total := readInt(t, tx, s, "a") + readInt(t, tx, s, "b") + readInt(t, tx, s, "c")
	if total != 300 {
		t.Errorf("total = %d, want 300 (atomicity/isolation violated)", total)
	}
}

func TestAtomicallyPropagatesApplicationError(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"a": 1})
	sentinel := errors.New("app failure")
	err := c.Atomically(ctxT(), func(tx *Tx) error {
		if err := tx.Write(s, "a", values.Int(9)); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	tx := c.Begin(ctxT())
	defer tx.Abort()
	if got := readInt(t, tx, s, "a"); got != 1 {
		t.Errorf("state = %d, want 1", got)
	}
}

func TestRecordKindString(t *testing.T) {
	for k, want := range map[RecordKind]string{
		RecPrepare: "prepare", RecCommit: "commit", RecAbort: "abort", RecordKind(0): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
}

func TestStoreAbortUnknownTxIsNoop(t *testing.T) {
	s := NewStore("bank", nil)
	if err := s.Abort(99); err != nil {
		t.Errorf("abort unknown = %v", err)
	}
	if s.Log().Len() != 0 {
		t.Error("no-op abort should not be logged")
	}
}

func TestPrepareIdempotent(t *testing.T) {
	c, s := seeded(t, "bank", map[string]int64{"a": 1})
	tx := c.Begin(ctxT())
	if err := tx.Write(s, "a", values.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare(tx.ID()); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare(tx.ID()); err != nil {
		t.Fatal(err)
	}
	prepares := 0
	for _, r := range s.Log().Records() {
		if r.Kind == RecPrepare && r.TxID == tx.ID() {
			prepares++
		}
	}
	if prepares != 1 {
		t.Errorf("prepare records = %d, want 1", prepares)
	}
	if err := s.Commit(tx.ID()); err != nil {
		t.Fatal(err)
	}
	c.finish(tx, true)
}

func BenchmarkLocalCommit(b *testing.B) {
	c := NewCoordinator()
	s := NewStore("bank", nil)
	for i := 0; i < b.N; i++ {
		tx := c.Begin(context.Background())
		key := fmt.Sprintf("k%d", i%64)
		if err := tx.Write(s, key, values.Int(int64(i))); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
