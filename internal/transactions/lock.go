// Package transactions implements the ODP transaction function of
// Section 8.2.1 of the tutorial.
//
// RM-ODP defines a "very generalised" transaction function characterised
// by three degrees of coordination — visibility (are intermediate effects
// visible to others?), recoverability (what state holds after a failed
// operation?) and permanence (can failure disturb completed operations?) —
// and then, because "the ACID transaction model will be the only style of
// transaction mechanism supported by most ODP systems for a number of
// years", prescribes an ACID transaction function as its specialisation.
// That specialisation is what this package builds:
//
//   - visibility: strict two-phase locking with shared/exclusive modes and
//     waits-for deadlock detection (this file) — no intermediate effect is
//     visible before commit;
//   - recoverability: deferred write sets — an aborted transaction's
//     effects are simply discarded;
//   - permanence: a write-ahead redo log per store, replayed by Recover,
//     with prepared-but-undecided transactions resolved against the
//     coordinator's decision log;
//   - atomicity across stores: a two-phase commit coordinator.
package transactions

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrDeadlock is returned when granting a lock would close a waits-for
// cycle; the requesting transaction should abort and retry.
var ErrDeadlock = errors.New("transactions: deadlock detected")

// lockMode is shared (readers) or exclusive (writers).
type lockMode int

const (
	lockShared lockMode = iota + 1
	lockExclusive
)

type waitReq struct {
	tx      uint64
	mode    lockMode
	ready   chan struct{}
	granted bool
}

type lockEntry struct {
	holders map[uint64]lockMode
	queue   []*waitReq
}

// lockManager implements strict two-phase locking over string keys with
// upgrade support and waits-for-graph deadlock detection. Locks are held
// until releaseAll at commit or abort time (strictness).
type lockManager struct {
	mu    sync.Mutex
	locks map[string]*lockEntry
	// waits[a] is the set of transactions a is currently waiting on.
	waits map[uint64]map[uint64]struct{}
	// free recycles lock entries: strict 2PL creates and destroys an entry
	// per key per transaction lifetime, so reuse (keeping the holders map's
	// buckets) makes acquire/release allocation-free in steady state.
	free []*lockEntry
}

func newLockManager() *lockManager {
	return &lockManager{
		locks: make(map[string]*lockEntry),
		waits: make(map[uint64]map[uint64]struct{}),
	}
}

// acquire blocks until tx holds the key in the given mode, upgrading a
// shared lock in place when possible. It fails with ErrDeadlock when
// waiting would close a cycle in the waits-for graph, and with ctx.Err()
// when the context expires first.
func (lm *lockManager) acquire(ctx context.Context, tx uint64, key string, mode lockMode) error {
	lm.mu.Lock()
	e, ok := lm.locks[key]
	if !ok {
		if n := len(lm.free); n > 0 {
			e = lm.free[n-1]
			lm.free = lm.free[:n-1]
		} else {
			e = &lockEntry{holders: make(map[uint64]lockMode)}
		}
		lm.locks[key] = e
	}
	if lm.grantable(e, tx, mode) {
		e.holders[tx] = maxMode(e.holders[tx], mode)
		lm.mu.Unlock()
		return nil
	}
	// Would wait: record edges and check for a cycle.
	blockers := lm.blockers(e, tx)
	edges, ok := lm.waits[tx]
	if !ok {
		edges = make(map[uint64]struct{})
		lm.waits[tx] = edges
	}
	for _, b := range blockers {
		edges[b] = struct{}{}
	}
	if lm.cycleFrom(tx, tx, make(map[uint64]bool)) {
		for _, b := range blockers {
			delete(edges, b)
		}
		if len(edges) == 0 {
			delete(lm.waits, tx)
		}
		lm.mu.Unlock()
		return fmt.Errorf("%w: tx %d on key %q", ErrDeadlock, tx, key)
	}
	req := &waitReq{tx: tx, mode: mode, ready: make(chan struct{})}
	e.queue = append(e.queue, req)
	lm.mu.Unlock()

	select {
	case <-req.ready:
		return nil
	case <-ctx.Done():
		lm.mu.Lock()
		if req.granted {
			// Granted concurrently with expiry: keep the lock; the
			// transaction will release it at its end.
			lm.mu.Unlock()
			return nil
		}
		for i, q := range e.queue {
			if q == req {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		delete(lm.waits, tx)
		lm.mu.Unlock()
		return ctx.Err()
	}
}

// grantable reports whether tx can take key in mode right now.
func (lm *lockManager) grantable(e *lockEntry, tx uint64, mode lockMode) bool {
	held, isHolder := e.holders[tx]
	if isHolder && held >= mode {
		return true // already strong enough
	}
	switch mode {
	case lockShared:
		// Grantable if no other exclusive holder and no queued writer
		// (queue priority prevents writer starvation).
		for other, m := range e.holders {
			if other != tx && m == lockExclusive {
				return false
			}
		}
		for _, q := range e.queue {
			if q.mode == lockExclusive && q.tx != tx {
				return false
			}
		}
		return true
	case lockExclusive:
		// Grantable if tx is the only holder (upgrade) or there are none.
		for other := range e.holders {
			if other != tx {
				return false
			}
		}
		return true
	}
	return false
}

// blockers lists the transactions tx would wait on.
func (lm *lockManager) blockers(e *lockEntry, tx uint64) []uint64 {
	var out []uint64
	for other := range e.holders {
		if other != tx {
			out = append(out, other)
		}
	}
	for _, q := range e.queue {
		if q.tx != tx && q.mode == lockExclusive {
			out = append(out, q.tx)
		}
	}
	return out
}

// cycleFrom reports whether target is reachable from cur via waits edges.
func (lm *lockManager) cycleFrom(cur, target uint64, seen map[uint64]bool) bool {
	for next := range lm.waits[cur] {
		if next == target {
			return true
		}
		if seen[next] {
			continue
		}
		seen[next] = true
		if lm.cycleFrom(next, target, seen) {
			return true
		}
	}
	return false
}

// releaseAll drops every lock held or awaited by tx and grants whatever
// became available.
func (lm *lockManager) releaseAll(tx uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.waits, tx)
	for key, e := range lm.locks {
		delete(e.holders, tx)
		for i := 0; i < len(e.queue); {
			if e.queue[i].tx == tx {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				continue
			}
			i++
		}
		lm.grantQueued(e)
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(lm.locks, key)
			if len(lm.free) < 64 {
				clear(e.holders)
				e.queue = e.queue[:0]
				lm.free = append(lm.free, e)
			}
		}
	}
}

// grantQueued grants queued requests in FIFO order while they remain
// compatible.
func (lm *lockManager) grantQueued(e *lockEntry) {
	for len(e.queue) > 0 {
		req := e.queue[0]
		if !lm.grantableQueued(e, req) {
			return
		}
		e.queue = e.queue[1:]
		e.holders[req.tx] = maxMode(e.holders[req.tx], req.mode)
		delete(lm.waits, req.tx)
		req.granted = true
		close(req.ready)
	}
}

// grantableQueued is grantable without the queue-priority rule (the
// request at the head of the queue IS the priority).
func (lm *lockManager) grantableQueued(e *lockEntry, req *waitReq) bool {
	switch req.mode {
	case lockShared:
		for other, m := range e.holders {
			if other != req.tx && m == lockExclusive {
				return false
			}
		}
		return true
	case lockExclusive:
		for other := range e.holders {
			if other != req.tx {
				return false
			}
		}
		return true
	}
	return false
}

func maxMode(a, b lockMode) lockMode {
	if a > b {
		return a
	}
	return b
}

// heldKeys returns the number of keys tx currently holds (for tests).
func (lm *lockManager) heldKeys(tx uint64) int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	n := 0
	for _, e := range lm.locks {
		if _, ok := e.holders[tx]; ok {
			n++
		}
	}
	return n
}
