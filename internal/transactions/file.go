package transactions

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/values"
	"repro/internal/wire"
)

// FileLog is the durable form of the write-ahead log: every record is
// appended to a file (length-prefixed, canonical transfer syntax) and
// synced before Append returns, which is the force-write discipline
// two-phase commit's prepare step requires. OpenFileLog replays an
// existing file, so a store recovered after a crash is
//
//	log, _ := transactions.OpenFileLog(path)
//	store := transactions.Recover("bank", log.Log(), decide)
//
// with the in-memory Log carrying the replayed history and the file
// continuing to receive new records.
type FileLog struct {
	mu   sync.Mutex
	mem  *Log
	file *os.File
}

// OpenFileLog opens (creating if absent) a durable log at path and
// replays its records into memory.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("transactions: open log: %w", err)
	}
	fl := &FileLog{mem: NewLog(), file: f}
	if err := fl.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return fl, nil
}

// Log returns the in-memory view (replayed history plus everything
// appended since), suitable for Recover and InDoubt.
func (fl *FileLog) Log() *Log { return fl.mem }

// Append forces a record to disk and mirrors it in memory.
func (fl *FileLog) Append(r Record) error {
	frame, err := encodeRecord(r)
	if err != nil {
		return err
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := fl.file.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("transactions: log write: %w", err)
	}
	if _, err := fl.file.Write(frame); err != nil {
		return fmt.Errorf("transactions: log write: %w", err)
	}
	if err := fl.file.Sync(); err != nil {
		return fmt.Errorf("transactions: log sync: %w", err)
	}
	fl.mem.Append(r)
	return nil
}

// Close releases the file handle.
func (fl *FileLog) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.file.Close()
}

// replay loads existing records. A truncated trailing record (torn write
// during a crash) is tolerated: replay stops there, matching standard WAL
// recovery semantics.
func (fl *FileLog) replay() error {
	if _, err := fl.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(fl.file, lenBuf[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			return fmt.Errorf("transactions: log replay: %w", err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		frame := make([]byte, n)
		if _, err := io.ReadFull(fl.file, frame); err != nil {
			break // torn record: stop replay here
		}
		r, err := decodeRecord(frame)
		if err != nil {
			break // corrupt tail
		}
		fl.mem.Append(r)
	}
	// Position at the end for subsequent appends.
	_, err := fl.file.Seek(0, io.SeekEnd)
	return err
}

// encodeRecord serialises a record with the canonical transfer syntax.
func encodeRecord(r Record) ([]byte, error) {
	writes := make([]values.Value, len(r.Writes))
	for i, w := range r.Writes {
		writes[i] = values.Record(
			values.F("key", values.Str(w.Key)),
			values.F("value", values.Any(values.TypeOf(w.Value), w.Value)),
			values.F("delete", values.Bool(w.Delete)),
		)
	}
	v := values.Record(
		values.F("kind", values.Uint(uint64(r.Kind))),
		values.F("tx", values.Uint(r.TxID)),
		values.F("writes", values.Seq(writes...)),
	)
	return wire.Canonical.AppendValue(nil, v)
}

// decodeRecord is the inverse of encodeRecord.
func decodeRecord(frame []byte) (Record, error) {
	v, n, err := wire.Canonical.ReadValue(frame, 0)
	if err != nil {
		return Record{}, err
	}
	if n != len(frame) {
		return Record{}, fmt.Errorf("%w: trailing bytes", ErrBadLog)
	}
	kindV, ok := v.FieldByName("kind")
	if !ok {
		return Record{}, fmt.Errorf("%w: missing kind", ErrBadLog)
	}
	kind, _ := kindV.AsUint()
	txV, ok := v.FieldByName("tx")
	if !ok {
		return Record{}, fmt.Errorf("%w: missing tx", ErrBadLog)
	}
	tx, _ := txV.AsUint()
	r := Record{Kind: RecordKind(kind), TxID: tx}
	if wsV, ok := v.FieldByName("writes"); ok && wsV.Kind() == values.KindSeq {
		for i := 0; i < wsV.Len(); i++ {
			wv := wsV.ElemAt(i)
			keyV, ok := wv.FieldByName("key")
			if !ok {
				return Record{}, fmt.Errorf("%w: write %d missing key", ErrBadLog, i)
			}
			key, _ := keyV.AsString()
			valV, ok := wv.FieldByName("value")
			if !ok {
				return Record{}, fmt.Errorf("%w: write %d missing value", ErrBadLog, i)
			}
			var val values.Value
			if _, inner, isAny := valV.AsAny(); isAny {
				val = inner
			} else {
				val = valV
			}
			delV, _ := wv.FieldByName("delete")
			del, _ := delV.AsBool()
			r.Writes = append(r.Writes, WriteOp{Key: key, Value: val, Delete: del})
		}
	}
	return r, nil
}

// NewDurableStore creates a store whose WAL is forced to the file at
// path; the returned FileLog must be closed by the caller. The store's
// in-memory committed state starts empty — use RecoverDurable to also
// replay history.
func NewDurableStore(name, path string) (*Store, *FileLog, error) {
	fl, err := OpenFileLog(path)
	if err != nil {
		return nil, nil, err
	}
	s := NewStore(name, fl.mem)
	s.forced = fl
	return s, fl, nil
}

// RecoverDurable rebuilds a store from the durable log at path, replaying
// committed transactions and resolving in-doubt ones via decide, then
// keeps logging to the same file.
func RecoverDurable(name, path string, decide func(txID uint64) bool) (*Store, *FileLog, error) {
	fl, err := OpenFileLog(path)
	if err != nil {
		return nil, nil, err
	}
	s := recoverInto(name, fl.mem, decide, fl)
	return s, fl, nil
}
