package transactions

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// The lock manager's safety property: at no instant do two transactions
// hold the same key exclusively, and no reader coexists with a writer.
// A fleet of goroutines performs random acquire/release cycles while an
// auditor checks every interleaving's outcome through per-key ownership
// counters maintained under the locks themselves — if mutual exclusion
// ever failed, the counters would tear.
func TestLockManagerMutualExclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		lm := newLockManager()
		keys := []string{"a", "b", "c"}
		type guard struct {
			mu      sync.Mutex
			writers int
			readers int
		}
		guards := map[string]*guard{}
		for _, k := range keys {
			guards[k] = &guard{}
		}
		violated := false
		var vmu sync.Mutex
		fail := func() {
			vmu.Lock()
			violated = true
			vmu.Unlock()
		}
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed + int64(w)))
				for i := 0; i < 40; i++ {
					tx := uint64(w*1000 + i + 1)
					key := keys[r.Intn(len(keys))]
					mode := lockShared
					if r.Intn(2) == 0 {
						mode = lockExclusive
					}
					err := lm.acquire(context.Background(), tx, key, mode)
					if err != nil {
						continue // deadlock verdicts are fine; safety is the claim
					}
					g := guards[key]
					g.mu.Lock()
					if mode == lockExclusive {
						if g.writers != 0 || g.readers != 0 {
							fail()
						}
						g.writers++
					} else {
						if g.writers != 0 {
							fail()
						}
						g.readers++
					}
					g.mu.Unlock()

					g.mu.Lock()
					if mode == lockExclusive {
						g.writers--
					} else {
						g.readers--
					}
					g.mu.Unlock()
					lm.releaseAll(tx)
				}
			}(w)
		}
		wg.Wait()
		vmu.Lock()
		defer vmu.Unlock()
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Liveness companion: after every transaction releases, the manager is
// empty — no leaked entries, no stranded waiters.
func TestLockManagerDrainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		lm := newLockManager()
		r := rand.New(rand.NewSource(seed))
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					tx := uint64(w*100 + i + 1)
					key := string(rune('a' + (w+i)%3))
					mode := lockShared
					if (w+i)%2 == 0 {
						mode = lockExclusive
					}
					if err := lm.acquire(context.Background(), tx, key, mode); err == nil {
						lm.releaseAll(tx)
					}
				}
			}(w)
		}
		wg.Wait()
		_ = r
		lm.mu.Lock()
		defer lm.mu.Unlock()
		return len(lm.locks) == 0 && len(lm.waits) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
