package transactions

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/values"
)

func TestDurableStoreSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bank.wal")
	coord := NewCoordinator()

	store, fl, err := NewDurableStore("bank", path)
	if err != nil {
		t.Fatal(err)
	}
	tx := coord.Begin(context.Background())
	if err := tx.Write(store, "alice", values.Int(77)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(store, "payload", values.Record(
		values.F("note", values.Str("rent")),
		values.F("cents", values.Int(12345)),
	)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// An aborted transaction leaves a durable abort record too.
	tx2 := coord.Begin(context.Background())
	if err := tx2.Write(store, "alice", values.Int(0)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart the process": recover purely from the file.
	recovered, fl2, err := RecoverDurable("bank", path, func(txID uint64) bool {
		committed, _ := coord.Decided(txID)
		return committed
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	snap := recovered.Snapshot()
	if v, ok := snap["alice"]; !ok || !v.Equal(values.Int(77)) {
		t.Errorf("alice = %v", snap["alice"])
	}
	if v, ok := snap["payload"]; !ok {
		t.Error("payload missing")
	} else if note, _ := v.FieldByName("note"); !note.Equal(values.Str("rent")) {
		t.Errorf("payload = %v", v)
	}

	// And the recovered store keeps logging durably.
	tx3 := coord.Begin(context.Background())
	if err := tx3.Write(recovered, "bob", values.Int(5)); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	fl2.Close()
	again, fl3, err := RecoverDurable("bank", path, func(txID uint64) bool {
		committed, _ := coord.Decided(txID)
		return committed
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl3.Close()
	if v, ok := again.Snapshot()["bob"]; !ok || !v.Equal(values.Int(5)) {
		t.Errorf("bob after second restart = %v", v)
	}
}

func TestFileLogInDoubtResolution(t *testing.T) {
	path := filepath.Join(t.TempDir(), "indoubt.wal")
	coord := NewCoordinator()
	store, fl, err := NewDurableStore("s", path)
	if err != nil {
		t.Fatal(err)
	}
	tx := coord.Begin(context.Background())
	if err := tx.Write(store, "x", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	// Prepared but never decided: the crash window of 2PC.
	if err := store.Prepare(tx.ID()); err != nil {
		t.Fatal(err)
	}
	fl.Close()

	if got, _, err := RecoverDurable("s", path, func(uint64) bool { return false }); err != nil {
		t.Fatal(err)
	} else if _, ok := got.Snapshot()["x"]; ok {
		t.Error("presumed-abort tx must not apply")
	}
}

func TestFileLogToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	coord := NewCoordinator()
	store, fl, err := NewDurableStore("s", path)
	if err != nil {
		t.Fatal(err)
	}
	tx := coord.Begin(context.Background())
	if err := tx.Write(store, "x", values.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	fl.Close()

	// Simulate a torn write: append garbage length prefix + partial data.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered, fl2, err := RecoverDurable("s", path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	if v, ok := recovered.Snapshot()["x"]; !ok || !v.Equal(values.Int(1)) {
		t.Errorf("state after torn tail = %v", recovered.Snapshot())
	}
}

func TestOpenFileLogBadPath(t *testing.T) {
	if _, err := OpenFileLog(filepath.Join(t.TempDir(), "no", "such", "dir", "x.wal")); err == nil {
		t.Error("expected error for unreachable path")
	}
	if _, _, err := NewDurableStore("s", "/dev/null/nope"); err == nil {
		t.Error("expected error")
	}
	if _, _, err := RecoverDurable("s", "/dev/null/nope", nil); err == nil {
		t.Error("expected error")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: RecPrepare, TxID: 7, Writes: []WriteOp{
			{Key: "a", Value: values.Int(1)},
			{Key: "b", Value: values.Str("x"), Delete: false},
			{Key: "c", Delete: true},
		}},
		{Kind: RecCommit, TxID: 7},
		{Kind: RecAbort, TxID: 9},
	}
	for _, r := range recs {
		frame, err := encodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRecord(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != r.Kind || got.TxID != r.TxID || len(got.Writes) != len(r.Writes) {
			t.Errorf("round trip: %+v vs %+v", got, r)
		}
		for i := range r.Writes {
			if got.Writes[i].Key != r.Writes[i].Key || got.Writes[i].Delete != r.Writes[i].Delete {
				t.Errorf("write %d: %+v vs %+v", i, got.Writes[i], r.Writes[i])
			}
			if !r.Writes[i].Delete && !got.Writes[i].Value.Equal(r.Writes[i].Value) {
				t.Errorf("write %d value: %v vs %v", i, got.Writes[i].Value, r.Writes[i].Value)
			}
		}
	}
	if _, err := decodeRecord([]byte{0xff}); err == nil {
		t.Error("garbage frame should fail")
	}
}
