package transactions

import (
	"errors"
	"sync"

	"repro/internal/values"
)

// ErrBadLog is returned when replaying a corrupt log.
var ErrBadLog = errors.New("transactions: malformed log")

// RecordKind classifies write-ahead-log records.
type RecordKind int

// The log record kinds. A store's log carries Prepare (with the redo
// write set), Commit and Abort records; the coordinator's decision log
// carries Commit/Abort decisions only.
const (
	RecPrepare RecordKind = iota + 1
	RecCommit
	RecAbort
)

// String returns the record kind's name.
func (k RecordKind) String() string {
	switch k {
	case RecPrepare:
		return "prepare"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	}
	return "unknown"
}

// WriteOp is one redo operation in a prepare record.
type WriteOp struct {
	Key    string
	Value  values.Value
	Delete bool
}

// Record is one write-ahead-log entry.
type Record struct {
	Kind   RecordKind
	TxID   uint64
	Writes []WriteOp // RecPrepare only
}

// Log is an append-only record log. The in-memory implementation stands
// in for stable storage: it deliberately lives outside the Store so a
// "crashed" store can be reconstructed from it (see Recover), which is
// exactly the permanence property the transaction function requires.
type Log struct {
	mu   sync.Mutex
	recs []Record
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append appends a record. It models a forced (synchronous) log write:
// when Append returns, the record is durable.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Deep-copy the write set so later mutation cannot corrupt history.
	cp := r
	cp.Writes = make([]WriteOp, len(r.Writes))
	copy(cp.Writes, r.Writes)
	l.recs = append(l.recs, cp)
}

// Records returns a copy of the log contents.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}
