package transactions

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/values"
)

// vetoPart votes no in phase 1. Commit must never reach it.
type vetoPart struct{ committed bool }

func (v *vetoPart) Name() string { return "veto" }
func (v *vetoPart) Prepare(txID uint64) error {
	return errors.New("resource refuses")
}
func (v *vetoPart) Commit(txID uint64) error {
	v.committed = true
	return nil
}
func (v *vetoPart) Abort(txID uint64) error { return nil }

// TestConcurrentPrepareVetoLeavesNoOrphans commits a transaction across
// seven stores plus one vetoing participant, so phase 1 runs eight
// prepares concurrently and one of them says no. Every store must end up
// clean: nothing in doubt, no prepare record without a matching abort, no
// locks held, and no durable decision for the transaction (presumed
// abort). Repeated to vary the goroutine schedule.
func TestConcurrentPrepareVetoLeavesNoOrphans(t *testing.T) {
	const rounds = 20
	for round := 0; round < rounds; round++ {
		c := NewCoordinator()
		logs := make([]*Log, 7)
		stores := make([]*Store, 7)
		for i := range stores {
			logs[i] = NewLog()
			stores[i] = NewStore(fmt.Sprintf("s%d", i), logs[i])
		}
		veto := &vetoPart{}

		tx := c.Begin(ctxT())
		for i, s := range stores {
			if err := tx.Write(s, "k", values.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Enlist(veto); err != nil {
			t.Fatal(err)
		}
		err := tx.Commit()
		if !errors.Is(err, ErrVetoed) {
			t.Fatalf("round %d: Commit = %v, want ErrVetoed", round, err)
		}
		if veto.committed {
			t.Fatalf("round %d: vetoing participant received Commit", round)
		}
		if committed, known := c.Decided(tx.ID()); committed || known {
			t.Fatalf("round %d: decision log has (%v,%v) for a vetoed tx", round, committed, known)
		}
		for i, s := range stores {
			// No orphans: a store either never prepared (its prepare was
			// skipped after the veto) or its prepare record is matched by an
			// abort record, which is exactly what InDoubt computes.
			if doubted := InDoubt(logs[i]); len(doubted) != 0 {
				t.Fatalf("round %d: store %d in doubt: %v", round, i, doubted)
			}
			var prepared, aborted bool
			for _, rec := range logs[i].Records() {
				if rec.TxID != tx.ID() {
					continue
				}
				switch rec.Kind {
				case RecPrepare:
					prepared = true
				case RecCommit:
					t.Fatalf("round %d: store %d logged a commit for a vetoed tx", round, i)
				case RecAbort:
					aborted = true
				}
			}
			if prepared && !aborted {
				t.Fatalf("round %d: store %d holds an orphan prepare record", round, i)
			}
			if held := s.lm.heldKeys(tx.ID()); held != 0 {
				t.Fatalf("round %d: store %d still holds %d locks", round, i, held)
			}
			// The store must be writable again immediately.
			tx2 := c.Begin(ctxT())
			if err := tx2.Write(s, "k", values.Int(99)); err != nil {
				t.Fatalf("round %d: store %d rejects writes after abort: %v", round, i, err)
			}
			if err := tx2.Abort(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConcurrentTransfersConserveMoney runs concurrent transfers between
// accounts split across two stores — every commit is a genuine two-store
// 2PC, now with concurrent prepares and commits — and checks the invariant
// the tutorial's bank example is built on: money is neither created nor
// destroyed.
func TestConcurrentTransfersConserveMoney(t *testing.T) {
	const (
		goroutines = 8
		transfers  = 25
		initial    = 500
	)
	c := NewCoordinator()
	logA, logB := NewLog(), NewLog()
	sa := NewStore("bankA", logA)
	sb := NewStore("bankB", logB)
	seedTx := c.Begin(ctxT())
	if err := seedTx.Write(sa, "alice", values.Int(initial)); err != nil {
		t.Fatal(err)
	}
	if err := seedTx.Write(sb, "bob", values.Int(initial)); err != nil {
		t.Fatal(err)
	}
	if err := seedTx.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for j := 0; j < transfers; j++ {
				amount := int64(1 + (gi+j)%7)
				// Alternate direction so both stores see debits and credits.
				delta := amount
				if (gi+j)%2 == 1 {
					delta = -amount
				}
				// Each store detects waits-for cycles among its own keys, but
				// a cycle spanning both stores is invisible to either, so the
				// application must keep cross-store waits acyclic itself: touch
				// the accounts in one global order (alice's store before
				// bob's), finishing with each store before moving on. Balances
				// may go negative; conservation is the invariant under test.
				err := c.Atomically(ctxT(), func(tx *Tx) error {
					av, err := tx.Read(sa, "alice")
					if err != nil {
						return err
					}
					a, _ := av.AsInt()
					if err := tx.Write(sa, "alice", values.Int(a-delta)); err != nil {
						return err
					}
					bv, err := tx.Read(sb, "bob")
					if err != nil {
						return err
					}
					b, _ := bv.AsInt()
					return tx.Write(sb, "bob", values.Int(b+delta))
				})
				// A transfer that gives up after repeated deadlocks (shared
				// holders of alice racing to upgrade) was cleanly aborted —
				// conservation is unaffected — so only other failures count.
				if err != nil && !errors.Is(err, ErrDeadlock) {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(gi)
	}
	wg.Wait()

	check := c.Begin(ctxT())
	defer check.Abort()
	av, err := check.Read(sa, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bv, err := check.Read(sb, "bob")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := av.AsInt()
	b, _ := bv.AsInt()
	if a+b != 2*initial {
		t.Fatalf("money not conserved: alice=%d bob=%d sum=%d want %d", a, b, a+b, 2*initial)
	}
	if doubted := InDoubt(logA); len(doubted) != 0 {
		t.Errorf("store A in doubt after workload: %v", doubted)
	}
	if doubted := InDoubt(logB); len(doubted) != 0 {
		t.Errorf("store B in doubt after workload: %v", doubted)
	}
}
