package enterprise

import (
	"errors"
	"testing"

	"repro/internal/values"
)

// bankCommunity builds the tutorial's Section 3 example: a bank branch
// with manager, tellers, customers and accounts, the $500/day prohibition
// and the interest-rate obligation.
func bankCommunity(t *testing.T) *Community {
	t.Helper()
	c := NewCommunity("branch-cbd", "provide banking services to a geographical area")
	for _, role := range []string{"manager", "teller", "customer"} {
		if err := c.DeclareRole(role); err != nil {
			t.Fatal(err)
		}
	}
	for _, obj := range []struct {
		name string
		kind ObjectKind
	}{
		{"kerry", Active}, {"tom", Active}, {"alice", Active}, {"bob", Active},
		{"acct-alice", Passive}, {"money", Passive},
	} {
		if err := c.AddObject(obj.name, obj.kind); err != nil {
			t.Fatal(err)
		}
	}
	assign := map[string]string{"kerry": "manager", "tom": "teller", "alice": "customer", "bob": "customer"}
	for obj, role := range assign {
		if err := c.Assign(obj, role); err != nil {
			t.Fatal(err)
		}
	}
	policies := []Policy{
		// Permission: money can be deposited into an open account.
		{ID: "p-deposit", Kind: Permission, Role: "customer", Action: "Deposit", Condition: "account_open"},
		// Permission: withdrawals up to the daily limit.
		{ID: "p-withdraw", Kind: Permission, Role: "customer", Action: "Withdraw"},
		// Prohibition: customers must not withdraw more than $500 per day.
		{ID: "n-daily-limit", Kind: Prohibition, Role: "customer", Action: "Withdraw",
			Condition: "amount + withdrawn_today > 500"},
		// Obligation rule: a rate change obliges the manager to advise customers.
		{ID: "o-rate-change", Kind: ObligationRule, Role: "manager", Action: "SetInterestRate",
			Duty: "NotifyCustomers"},
		// Manager may set rates.
		{ID: "p-set-rate", Kind: Permission, Role: "manager", Action: "SetInterestRate"},
	}
	for _, p := range policies {
		if err := c.AddPolicy(p); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func params(fs ...values.Field) values.Value { return values.Record(fs...) }

func TestCommunityIdentity(t *testing.T) {
	c := bankCommunity(t)
	if c.Name() != "branch-cbd" || c.Purpose() == "" {
		t.Errorf("identity: %s / %s", c.Name(), c.Purpose())
	}
	if got := c.Members("customer"); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Errorf("customers = %v", got)
	}
	role, err := c.RoleOf("kerry")
	if err != nil || role != "manager" {
		t.Errorf("RoleOf(kerry) = %q, %v", role, err)
	}
	if _, err := c.RoleOf("ghost"); !errors.Is(err, ErrNoSuchMember) {
		t.Errorf("RoleOf(ghost) = %v", err)
	}
}

func TestDeclarationErrors(t *testing.T) {
	c := bankCommunity(t)
	if err := c.DeclareRole("manager"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup role = %v", err)
	}
	if err := c.AddObject("kerry", Active); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup object = %v", err)
	}
	if err := c.Assign("kerry", "ghost-role"); !errors.Is(err, ErrNoSuchRole) {
		t.Errorf("assign ghost role = %v", err)
	}
	if err := c.Assign("ghost", "teller"); !errors.Is(err, ErrNoSuchMember) {
		t.Errorf("assign ghost object = %v", err)
	}
	if err := c.Assign("acct-alice", "teller"); err == nil {
		t.Error("passive object must not fill a role")
	}
}

func TestPolicyValidation(t *testing.T) {
	c := bankCommunity(t)
	bad := []Policy{
		{Kind: Permission, Role: "teller", Action: "X"},                           // no id
		{ID: "x", Kind: Permission, Role: "teller"},                               // no action
		{ID: "x", Kind: PolicyKind(9), Role: "teller", Action: "X"},               // bad kind
		{ID: "x", Kind: Permission, Role: "ghost", Action: "X"},                   // unknown role
		{ID: "p-deposit", Kind: Permission, Role: "teller", Action: "X"},          // dup id
		{ID: "x", Kind: Permission, Role: "teller", Action: "X", Condition: "(("}, // bad condition
		{ID: "x", Kind: ObligationRule, Role: "teller", Action: "X"},              // no duty
		{ID: "x", Kind: Permission, Role: "teller", Action: "X", Duty: "Y"},       // permission with duty
		{ID: "x", Kind: Prohibition, Role: "teller", Action: "X", Duty: "Y"},      // prohibition with duty
	}
	for i, p := range bad {
		if err := c.AddPolicy(p); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestCheckPermissionAndProhibition(t *testing.T) {
	c := bankCommunity(t)
	// Deposit into an open account: permitted.
	v, err := c.Check("alice", "Deposit", params(values.F("account_open", values.Bool(true))))
	if err != nil || !v.Allowed || v.Policy != "p-deposit" {
		t.Errorf("deposit open = %+v, %v", v, err)
	}
	// Deposit into a closed account: the permission's condition fails.
	if _, err := c.Check("alice", "Deposit", params(values.F("account_open", values.Bool(false)))); !errors.Is(err, ErrNotPermitted) {
		t.Errorf("deposit closed = %v", err)
	}
	// The tutorial's exact arithmetic: $400 in the morning is fine...
	v, err = c.Check("alice", "Withdraw", params(
		values.F("amount", values.Int(400)), values.F("withdrawn_today", values.Int(0))))
	if err != nil || !v.Allowed {
		t.Errorf("morning withdrawal = %+v, %v", v, err)
	}
	// ...but an additional $200 in the afternoon exceeds $500/day.
	v, err = c.Check("alice", "Withdraw", params(
		values.F("amount", values.Int(200)), values.F("withdrawn_today", values.Int(400))))
	if !errors.Is(err, ErrProhibited) || v.Policy != "n-daily-limit" {
		t.Errorf("afternoon withdrawal = %+v, %v", v, err)
	}
	// Tellers have no withdraw permission at all: default deny.
	if _, err := c.Check("tom", "Withdraw", params(
		values.F("amount", values.Int(1)), values.F("withdrawn_today", values.Int(0)))); !errors.Is(err, ErrNotPermitted) {
		t.Errorf("teller withdraw = %v", err)
	}
	// Unknown actor.
	if _, err := c.Check("ghost", "Withdraw", values.Record()); !errors.Is(err, ErrNoSuchMember) {
		t.Errorf("ghost check = %v", err)
	}
	// Six checks (including the unknown actor, which is counted and
	// denied), four denials: closed deposit, afternoon limit, teller, ghost.
	checks, denials := c.Stats()
	if checks != 6 || denials != 4 {
		t.Errorf("stats = %d checks, %d denials", checks, denials)
	}
}

func TestObligationRuleFires(t *testing.T) {
	c := bankCommunity(t)
	// The manager changes the interest rate (an action governed by an
	// obligation rule): the duty to notify customers is created.
	v, err := c.Check("kerry", "SetInterestRate", params(values.F("rate", values.Float(4.5))))
	if err != nil || !v.Allowed {
		t.Fatalf("rate change = %+v, %v", v, err)
	}
	obls := c.Outstanding("manager")
	if len(obls) != 1 || obls[0].Duty != "NotifyCustomers" || obls[0].Origin != "o-rate-change" {
		t.Fatalf("obligations = %+v", obls)
	}
	// Discharge it.
	if err := c.Discharge(obls[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Discharge(obls[0].ID); !errors.Is(err, ErrAlreadyDischarged) {
		t.Errorf("double discharge = %v", err)
	}
	if err := c.Discharge(999); !errors.Is(err, ErrNoSuchObligation) {
		t.Errorf("ghost discharge = %v", err)
	}
	if got := c.Outstanding(""); len(got) != 0 {
		t.Errorf("outstanding after discharge = %+v", got)
	}
}

func TestPerformativeActionChangesPolicy(t *testing.T) {
	// "Obtaining an account balance is not a performative action...
	// the changing of interest rates is": model opening withdraw rights
	// for tellers as a performative action and verify the policy set
	// actually changes.
	c := bankCommunity(t)
	if err := c.DeclarePerformative(PerformativeAction{
		Name: "GrantTellerWithdraw",
		Role: "manager",
		Effect: func(m *Mutator, params values.Value) error {
			if err := m.Grant(Policy{
				ID: "p-teller-withdraw", Kind: Permission, Role: "teller", Action: "Withdraw",
			}); err != nil {
				return err
			}
			m.Oblige("manager", "AuditTellerWithdrawals", "GrantTellerWithdraw")
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Before: denied.
	if _, err := c.Check("tom", "Withdraw", params(
		values.F("amount", values.Int(10)), values.F("withdrawn_today", values.Int(0)))); err == nil {
		t.Fatal("teller withdraw should start denied")
	}
	// Customers may not perform it.
	if err := c.Perform("alice", "GrantTellerWithdraw", values.Record()); !errors.Is(err, ErrNotPermitted) {
		t.Errorf("customer performative = %v", err)
	}
	if err := c.Perform("kerry", "GrantTellerWithdraw", values.Record()); err != nil {
		t.Fatal(err)
	}
	// After: permitted, and the side obligation exists.
	if _, err := c.Check("tom", "Withdraw", params(
		values.F("amount", values.Int(10)), values.F("withdrawn_today", values.Int(0)))); err != nil {
		t.Errorf("teller withdraw after grant = %v", err)
	}
	if obls := c.Outstanding("manager"); len(obls) != 1 || obls[0].Duty != "AuditTellerWithdrawals" {
		t.Errorf("obligations = %+v", obls)
	}
	// Revocation via a second performative.
	if err := c.DeclarePerformative(PerformativeAction{
		Name: "RevokeTellerWithdraw",
		Role: "manager",
		Effect: func(m *Mutator, _ values.Value) error {
			return m.Revoke("p-teller-withdraw")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Perform("kerry", "RevokeTellerWithdraw", values.Record()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check("tom", "Withdraw", params(
		values.F("amount", values.Int(10)), values.F("withdrawn_today", values.Int(0)))); err == nil {
		t.Error("teller withdraw should be denied after revocation")
	}
}

func TestPerformativeErrors(t *testing.T) {
	c := bankCommunity(t)
	if err := c.DeclarePerformative(PerformativeAction{}); !errors.Is(err, ErrBadPolicy) {
		t.Errorf("empty performative = %v", err)
	}
	ok := PerformativeAction{Name: "X", Effect: func(*Mutator, values.Value) error { return nil }}
	if err := c.DeclarePerformative(ok); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclarePerformative(ok); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup performative = %v", err)
	}
	if err := c.Perform("kerry", "Ghost", values.Record()); !errors.Is(err, ErrNoSuchAction) {
		t.Errorf("ghost performative = %v", err)
	}
	if err := c.Perform("ghost", "X", values.Record()); !errors.Is(err, ErrNoSuchMember) {
		t.Errorf("ghost actor = %v", err)
	}
	// Any-role performative works for anyone.
	if err := c.Perform("alice", "X", values.Record()); err != nil {
		t.Errorf("any-role performative = %v", err)
	}
}

func TestMutatorGrantValidation(t *testing.T) {
	c := bankCommunity(t)
	cases := []Policy{
		{},
		{ID: "z", Action: "A", Role: "ghost"},
		{ID: "p-deposit", Action: "A", Role: "teller"},
		{ID: "z", Action: "A", Role: "teller", Condition: "(("},
	}
	for i, p := range cases {
		p := p
		err := c.DeclarePerformative(PerformativeAction{
			Name:   string(rune('a' + i)),
			Effect: func(m *Mutator, _ values.Value) error { return m.Grant(p) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Perform("kerry", string(rune('a'+i)), values.Record()); err == nil {
			t.Errorf("bad grant %d accepted", i)
		}
	}
	// Revoke of missing policy errors.
	if err := c.RevokePolicy("nope"); !errors.Is(err, ErrNoSuchPolicy) {
		t.Errorf("revoke missing = %v", err)
	}
}

func TestPoliciesListing(t *testing.T) {
	c := bankCommunity(t)
	ps := c.Policies()
	if len(ps) != 5 || ps[0].ID != "p-deposit" {
		t.Errorf("policies = %d, first %q", len(ps), ps[0].ID)
	}
	if err := c.RevokePolicy("p-deposit"); err != nil {
		t.Fatal(err)
	}
	ps = c.Policies()
	if len(ps) != 4 || ps[0].ID != "p-withdraw" {
		t.Errorf("after revoke = %d, first %q", len(ps), ps[0].ID)
	}
}

func TestKindStrings(t *testing.T) {
	if Active.String() != "active" || Passive.String() != "passive" {
		t.Error("ObjectKind strings")
	}
	for k, want := range map[PolicyKind]string{
		Permission: "permission", Prohibition: "prohibition", ObligationRule: "obligation",
		PolicyKind(9): "policykind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", int(k), got, want)
		}
	}
}
